// Metrics-registry units: sharded counters and histograms under concurrent
// writers, log-bucket geometry, quantile estimation, and the Prometheus
// text exposition.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"

namespace dissodb {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricsRegistry;

TEST(CounterTest, AddsAndReads) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(CounterTest, ConcurrentIncrementsAreLossless) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetAndRelativeAdd) {
  Gauge g;
  g.Set(10);
  g.Add(5);
  g.Add(-12);
  EXPECT_EQ(g.Value(), 3);
}

TEST(HistogramTest, SmallValuesMapExactly) {
  for (uint64_t v = 0; v < 16; ++v) {
    unsigned idx = Histogram::BucketIndex(v);
    EXPECT_EQ(Histogram::BucketLowerBound(idx), v);
    EXPECT_EQ(Histogram::BucketUpperBound(idx), v + 1);
  }
}

TEST(HistogramTest, BucketBoundsContainTheirValues) {
  // Every probed value must fall inside [lower, upper) of its own bucket,
  // and indices must be monotone in the value.
  unsigned prev = 0;
  for (uint64_t v = 0; v < 1u << 22; v = v < 16 ? v + 1 : v + v / 3 + 1) {
    unsigned idx = Histogram::BucketIndex(v);
    EXPECT_GE(idx, prev) << "value " << v;
    EXPECT_LE(Histogram::BucketLowerBound(idx), v) << "value " << v;
    EXPECT_GT(Histogram::BucketUpperBound(idx), v) << "value " << v;
    prev = idx;
  }
  // Huge values saturate into the last bucket instead of overflowing.
  EXPECT_LT(Histogram::BucketIndex(~uint64_t{0}), Histogram::kBuckets);
}

TEST(HistogramTest, SnapshotCountSumMax) {
  Histogram h;
  h.Record(3);
  h.Record(7);
  h.Record(1000);
  auto s = h.Snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.sum, 1010u);
  EXPECT_EQ(s.max, 1000u);
}

TEST(HistogramTest, QuantilesOfUniformSamples) {
  Histogram h;
  for (uint64_t v = 1; v <= 10000; ++v) h.Record(v);
  auto s = h.Snapshot();
  // Log buckets above 16 have <= 25% relative width, so interpolated
  // quantiles land within ~13% of the true value.
  EXPECT_NEAR(s.p50(), 5000.0, 5000.0 * 0.15);
  EXPECT_NEAR(s.p95(), 9500.0, 9500.0 * 0.15);
  EXPECT_NEAR(s.p99(), 9900.0, 9900.0 * 0.15);
  // q >= 1 is the exact observed max; empty histograms read 0.
  EXPECT_EQ(s.Quantile(1.0), 10000.0);
  EXPECT_EQ(Histogram().Snapshot().Quantile(0.5), 0.0);
}

TEST(HistogramTest, QuantileNeverExceedsMax) {
  Histogram h;
  h.Record(100);
  auto s = h.Snapshot();
  EXPECT_LE(s.p99(), 100.0);
  EXPECT_EQ(s.Quantile(0.0), Histogram::BucketLowerBound(
                                 Histogram::BucketIndex(100)));
}

TEST(HistogramTest, ConcurrentRecordsAreLossless) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(t) * 1000 + 5);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.Snapshot().count,
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(RegistryTest, HandlesAreStableAndNamed) {
  MetricsRegistry reg;
  Counter* a = reg.counter("x.hits");
  Counter* b = reg.counter("x.hits");
  Counter* c = reg.counter("x.misses");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // Same name in different metric kinds are distinct objects.
  EXPECT_NE(static_cast<void*>(reg.gauge("x.hits")), static_cast<void*>(a));
  // Handles survive registry growth (deque storage).
  for (int i = 0; i < 1000; ++i) {
    reg.counter("filler." + std::to_string(i));
  }
  a->Add(7);
  EXPECT_EQ(reg.counter("x.hits")->Value(), 7u);
}

TEST(RegistryTest, PrometheusTextFormat) {
  MetricsRegistry reg;
  reg.counter("engine.queries")->Add(3);
  reg.gauge("pool-threads")->Set(8);
  reg.histogram("exec.latency_ns")->Record(100);
  std::string text = reg.PrometheusText();

  // Names are prefixed and sanitized to [a-zA-Z0-9_:].
  EXPECT_NE(text.find("dissodb_engine_queries 3"), std::string::npos) << text;
  EXPECT_NE(text.find("dissodb_pool_threads 8"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE dissodb_engine_queries counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE dissodb_pool_threads gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE dissodb_exec_latency_ns histogram"),
            std::string::npos);
  // Histograms expose cumulative le buckets plus +Inf, _sum and _count.
  EXPECT_NE(text.find("dissodb_exec_latency_ns_bucket{le=\"+Inf\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("dissodb_exec_latency_ns_sum 100"), std::string::npos);
  EXPECT_NE(text.find("dissodb_exec_latency_ns_count 1"), std::string::npos);
}

TEST(RegistryTest, GlobalIsAProcessSingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

TEST(NowNanosTest, Monotonic) {
  uint64_t a = obs::NowNanos();
  uint64_t b = obs::NowNanos();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace dissodb
