// The Figure 2 table: numbers of minimal plans, total plans and
// dissociations for k-star and k-chain queries, matching the OEIS rows the
// paper cites (k! and A000670 for stars; A000108 Catalan and A001003
// super-Catalan for chains; 2^K for the lattice sizes).
#include <gtest/gtest.h>

#include "src/dissociation/counting.h"
#include "src/workload/synthetic.h"
#include "tests/test_util.h"

namespace dissodb {
namespace {

using testing_util::Q;

TEST(CountingTest, StarMinimalPlansAreFactorials) {
  const uint64_t expected[] = {1, 2, 6, 24, 120, 720};  // k = 1..6
  for (int k = 1; k <= 6; ++k) {
    auto c = CountMinimalPlans(MakeStarQuery(k));
    ASSERT_TRUE(c.ok()) << k;
    EXPECT_EQ(*c, expected[k - 1]) << "k=" << k;
  }
}

TEST(CountingTest, StarTotalPlansAreFubiniNumbers) {
  // A000670: 1, 3, 13, 75, 541, 4683, 47293.
  const uint64_t expected[] = {1, 3, 13, 75, 541, 4683, 47293};
  for (int k = 1; k <= 7; ++k) {
    auto c = CountTotalPlans(MakeStarQuery(k));
    ASSERT_TRUE(c.ok()) << k;
    EXPECT_EQ(*c, expected[k - 1]) << "k=" << k;
  }
}

TEST(CountingTest, StarDissociationExponent) {
  // #Delta = 2^(k(k-1)): exponents 0, 2, 6, 12, 20, 30, 42.
  for (int k = 1; k <= 7; ++k) {
    EXPECT_EQ(DissociationExponent(MakeStarQuery(k)), k * (k - 1)) << k;
  }
  auto c = CountAllDissociations(MakeStarQuery(4));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, 4096u);
}

TEST(CountingTest, ChainMinimalPlansAreCatalanNumbers) {
  // A000108 shifted: k=2 -> 1, 3 -> 2, 4 -> 5, 5 -> 14, 6 -> 42, 7 -> 132,
  // 8 -> 429 (the paper's "429 minimal plans for the 8-chain").
  const uint64_t expected[] = {1, 2, 5, 14, 42, 132, 429};
  for (int k = 2; k <= 8; ++k) {
    auto c = CountMinimalPlans(MakeChainQuery(k));
    ASSERT_TRUE(c.ok()) << k;
    EXPECT_EQ(*c, expected[k - 2]) << "k=" << k;
  }
}

TEST(CountingTest, ChainTotalPlansAreSuperCatalanNumbers) {
  // A001003: k=2 -> 1, 3 -> 3, 4 -> 11, 5 -> 45, 6 -> 197, 7 -> 903,
  // 8 -> 4279 (the paper's "4279 safe dissociations for the 8-chain").
  const uint64_t expected[] = {1, 3, 11, 45, 197, 903, 4279};
  for (int k = 2; k <= 8; ++k) {
    auto c = CountTotalPlans(MakeChainQuery(k));
    ASSERT_TRUE(c.ok()) << k;
    EXPECT_EQ(*c, expected[k - 2]) << "k=" << k;
  }
}

TEST(CountingTest, ChainDissociationExponent) {
  // #Delta = 2^((k-1)(k-2)): 1, 4, 64, 4096 for k = 2..5.
  for (int k = 2; k <= 8; ++k) {
    EXPECT_EQ(DissociationExponent(MakeChainQuery(k)), (k - 1) * (k - 2)) << k;
  }
  auto c = CountAllDissociations(MakeChainQuery(5));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, 4096u);
}

TEST(CountingTest, DissociationOverflowGuard) {
  auto q = MakeStarQuery(9);  // 2^72 dissociations
  auto c = CountAllDissociations(q);
  EXPECT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), Status::Code::kOutOfRange);
}

TEST(CountingTest, SafeQueryHasOnePlanOfEachKind) {
  auto q = Q("q() :- R(x), S(x,y)");
  auto mp = CountMinimalPlans(q);
  ASSERT_TRUE(mp.ok());
  EXPECT_EQ(*mp, 1u);
}

TEST(CountingTest, TpchStyleQueryHasTwoMinimalPlans) {
  // The Section 5 TPC-H query shape has exactly two minimal plans.
  auto q = Q("q(a) :- S(s,a), PS(s,u), P(u,m)");
  auto mp = CountMinimalPlans(q);
  ASSERT_TRUE(mp.ok());
  EXPECT_EQ(*mp, 2u);
}

TEST(CountingTest, DisconnectedQueryMultipliesCounts) {
  // Two independent unsafe RST chains: minimal plans multiply (2 * 2).
  auto q = Q("q() :- R(x), S(x,y), T(y), A(u), B(u,v), C(v)");
  auto mp = CountMinimalPlans(q);
  ASSERT_TRUE(mp.ok());
  EXPECT_EQ(*mp, 4u);
}

TEST(CountingTest, Example17Counts) {
  auto q = Q("q() :- R(x), S(x), T(x,y), U(y)");
  auto mp = CountMinimalPlans(q);
  ASSERT_TRUE(mp.ok());
  EXPECT_EQ(*mp, 2u);
  // Figure 1 counts 5 plans = 5 safe dissociations; two of them (plans 5
  // and 6) join components merged by the dissociation, so the component-
  // only plan space of Figure 2's closed forms sees just 3.
  auto sd = CountSafeDissociations(q);
  ASSERT_TRUE(sd.ok());
  EXPECT_EQ(*sd, 5u);
  auto tp = CountTotalPlans(q);
  ASSERT_TRUE(tp.ok());
  EXPECT_EQ(*tp, 3u);
  EXPECT_EQ(DissociationExponent(q), 3);
}

TEST(CountingTest, SafeDissociationsCanExceedFigure2PlanCounts) {
  // Reproduction finding (see EXPERIMENTS.md): for k >= 4 chains there are
  // hierarchical dissociations differing only in projection placement over
  // one join shape; Figure 2's A001003 row excludes them.
  auto q4 = MakeChainQuery(4);
  auto sd = CountSafeDissociations(q4);
  ASSERT_TRUE(sd.ok());
  EXPECT_EQ(*sd, 17u);  // vs Figure 2's 11
  auto s3 = CountSafeDissociations(MakeStarQuery(3));
  ASSERT_TRUE(s3.ok());
  EXPECT_EQ(*s3, 19u);  // vs Figure 2's 13
  // For 3-atom chains/2-star the two counts agree.
  EXPECT_EQ(*CountSafeDissociations(MakeChainQuery(3)),
            *CountTotalPlans(MakeChainQuery(3)));
  EXPECT_EQ(*CountSafeDissociations(MakeStarQuery(2)),
            *CountTotalPlans(MakeStarQuery(2)));
}

}  // namespace
}  // namespace dissodb
