// Tests for AP@k with analytic tie handling and MAP aggregation.
#include <gtest/gtest.h>

#include "src/metrics/ap.h"

namespace dissodb {
namespace {

TEST(TopKMembershipTest, NoTies) {
  std::vector<double> scores = {0.9, 0.5, 0.7};
  auto p = TopKMembershipProbability(scores, 2);
  EXPECT_DOUBLE_EQ(p[0], 1.0);
  EXPECT_DOUBLE_EQ(p[1], 0.0);
  EXPECT_DOUBLE_EQ(p[2], 1.0);
}

TEST(TopKMembershipTest, TieAtBoundary) {
  // Scores: 0.9, then three tied at 0.5; k = 2 -> one slot among three.
  std::vector<double> scores = {0.9, 0.5, 0.5, 0.5};
  auto p = TopKMembershipProbability(scores, 2);
  EXPECT_DOUBLE_EQ(p[0], 1.0);
  EXPECT_NEAR(p[1], 1.0 / 3, 1e-12);
  EXPECT_NEAR(p[2], 1.0 / 3, 1e-12);
  EXPECT_NEAR(p[3], 1.0 / 3, 1e-12);
}

TEST(TopKMembershipTest, AllTied) {
  std::vector<double> scores(10, 1.0);
  auto p = TopKMembershipProbability(scores, 3);
  for (double x : p) EXPECT_NEAR(x, 0.3, 1e-12);
}

TEST(TopKMembershipTest, KLargerThanN) {
  std::vector<double> scores = {0.5, 0.4};
  auto p = TopKMembershipProbability(scores, 10);
  EXPECT_DOUBLE_EQ(p[0], 1.0);
  EXPECT_DOUBLE_EQ(p[1], 1.0);
}

TEST(ApTest, PerfectRankingScoresOne) {
  std::vector<double> gt = {10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0.5, 0.4};
  EXPECT_NEAR(AveragePrecisionAtK(gt, gt), 1.0, 1e-12);
}

TEST(ApTest, MonotoneTransformationKeepsPerfectScore) {
  std::vector<double> gt = {10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0.5, 0.4};
  std::vector<double> sys;
  for (double g : gt) sys.push_back(g * g);  // same order
  EXPECT_NEAR(AveragePrecisionAtK(gt, sys), 1.0, 1e-12);
}

TEST(ApTest, RandomBaselineFor25AnswersIsPoint22) {
  // The paper: "random average precision for 25 answers ... MAP@10 ~ 0.220".
  EXPECT_NEAR(RandomBaselineAP(25), 0.22, 1e-12);
  // All-tied system scores achieve exactly the baseline.
  std::vector<double> gt, sys;
  for (int i = 0; i < 25; ++i) {
    gt.push_back(25 - i);
    sys.push_back(1.0);
  }
  EXPECT_NEAR(AveragePrecisionAtK(gt, sys), 0.22, 1e-12);
}

TEST(ApTest, ReversedRankingIsBad) {
  std::vector<double> gt, sys;
  for (int i = 0; i < 25; ++i) {
    gt.push_back(25 - i);
    sys.push_back(i);  // exactly reversed
  }
  double ap = AveragePrecisionAtK(gt, sys);
  EXPECT_LT(ap, 0.05);  // worse than random
}

TEST(ApTest, SwapOutsideTopTenIsFree) {
  std::vector<double> gt, sys;
  for (int i = 0; i < 25; ++i) {
    gt.push_back(25 - i);
    sys.push_back(25 - i);
  }
  std::swap(sys[15], sys[20]);
  EXPECT_NEAR(AveragePrecisionAtK(gt, sys), 1.0, 1e-12);
}

TEST(ApTest, SwapAtTopCostsMore) {
  std::vector<double> gt;
  for (int i = 0; i < 25; ++i) gt.push_back(25 - i);
  std::vector<double> swap_top = gt;
  std::swap(swap_top[0], swap_top[9]);
  std::vector<double> swap_lower = gt;
  std::swap(swap_lower[8], swap_lower[9]);
  double top = AveragePrecisionAtK(gt, swap_top);
  double lower = AveragePrecisionAtK(gt, swap_lower);
  EXPECT_LT(top, lower);
  EXPECT_LT(lower, 1.0);
}

TEST(ApTest, GtTiesHandledInExpectation) {
  // Two GT-tied answers: any system order of the pair is equally good.
  std::vector<double> gt = {5, 4, 4, 3, 2, 1, 0.9, 0.8, 0.7, 0.6, 0.5};
  std::vector<double> sys_a = {11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1};
  std::vector<double> sys_b = sys_a;
  std::swap(sys_b[1], sys_b[2]);
  EXPECT_NEAR(AveragePrecisionAtK(gt, sys_a), AveragePrecisionAtK(gt, sys_b),
              1e-12);
}

TEST(ApTest, EmptyAndMismatchedInputs) {
  EXPECT_DOUBLE_EQ(AveragePrecisionAtK({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(AveragePrecisionAtK({1.0}, {1.0, 2.0}), 0.0);
}

TEST(ApTest, FewerThanTenAnswers) {
  std::vector<double> gt = {3, 2, 1};
  // Perfect ranking of 3 answers: P@k = 1 for k <= 3, then 3/k beyond.
  double expected = 0.0;
  for (int k = 1; k <= 10; ++k) expected += std::min(3.0, double(k)) / k;
  expected /= 10;
  EXPECT_NEAR(AveragePrecisionAtK(gt, gt), expected, 1e-12);
}

TEST(MeanStdTest, MeanAndStdDev) {
  MeanStd ms;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) ms.Add(x);
  EXPECT_EQ(ms.count(), 8u);
  EXPECT_NEAR(ms.mean(), 5.0, 1e-12);
  EXPECT_NEAR(ms.stddev(), 2.138, 1e-3);  // sample stddev
}

TEST(MeanStdTest, SingleValueHasZeroStd) {
  MeanStd ms;
  ms.Add(3.0);
  EXPECT_DOUBLE_EQ(ms.stddev(), 0.0);
}

}  // namespace
}  // namespace dissodb
