// Unit tests for src/storage: schemas, tables, FDs, database catalog.
#include <gtest/gtest.h>

#include "src/storage/database.h"
#include "src/storage/schema.h"
#include "src/storage/table.h"
#include "tests/test_util.h"

namespace dissodb {
namespace {

using testing_util::AddTable;

TEST(SchemaTest, AllInt64Factory) {
  RelationSchema s = RelationSchema::AllInt64("R", 3);
  EXPECT_EQ(s.arity(), 3);
  EXPECT_EQ(s.name, "R");
  EXPECT_FALSE(s.deterministic);
  EXPECT_EQ(s.column_names[2], "c2");
}

TEST(SchemaTest, ToStringMarksDeterministic) {
  RelationSchema s = RelationSchema::AllInt64("T", 1, /*deterministic=*/true);
  EXPECT_NE(s.ToString().find("T^d"), std::string::npos);
}

TEST(TableTest, AddAndReadRows) {
  Table t(RelationSchema::AllInt64("R", 2));
  t.AddRow({Value::Int64(1), Value::Int64(2)}, 0.5);
  t.AddRow({Value::Int64(3), Value::Int64(4)}, 0.25);
  ASSERT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.At(0, 0), Value::Int64(1));
  EXPECT_EQ(t.At(1, 1), Value::Int64(4));
  EXPECT_DOUBLE_EQ(t.Prob(0), 0.5);
  EXPECT_DOUBLE_EQ(t.Prob(1), 0.25);
}

TEST(TableTest, DeterministicForcesProbabilityOne) {
  Table t(RelationSchema::AllInt64("T", 1, /*deterministic=*/true));
  t.AddRow({Value::Int64(1)}, 0.3);
  EXPECT_DOUBLE_EQ(t.Prob(0), 1.0);
  t.SetProb(0, 0.7);
  EXPECT_DOUBLE_EQ(t.Prob(0), 1.0);
}

TEST(TableTest, ZeroArityTableCountsRows) {
  Table t(RelationSchema::AllInt64("B", 0));
  t.AddRow(std::span<const Value>{}, 0.5);
  t.AddRow(std::span<const Value>{}, 0.6);
  EXPECT_EQ(t.NumRows(), 2u);
}

TEST(TableTest, FilterKeepsMatchingRows) {
  Table t(RelationSchema::AllInt64("R", 1));
  for (int i = 0; i < 10; ++i) t.AddRow({Value::Int64(i)}, 0.1 * i);
  Table f = t.Filter([](std::span<const Value> row) {
    return row[0].AsInt64() % 2 == 0;
  });
  EXPECT_EQ(f.NumRows(), 5u);
  EXPECT_DOUBLE_EQ(f.Prob(1), 0.2);  // row with value 2
}

TEST(TableTest, ScaleProbabilitiesClampsAndSkipsDeterministic) {
  Table t(RelationSchema::AllInt64("R", 1));
  t.AddRow({Value::Int64(1)}, 0.8);
  t.ScaleProbabilities(0.5);
  EXPECT_DOUBLE_EQ(t.Prob(0), 0.4);

  Table d(RelationSchema::AllInt64("T", 1, true));
  d.AddRow({Value::Int64(1)}, 1.0);
  d.ScaleProbabilities(0.5);
  EXPECT_DOUBLE_EQ(d.Prob(0), 1.0);
}

TEST(TableTest, SatisfiesFDDetectsViolation) {
  Table t(RelationSchema::AllInt64("S", 2));
  t.AddRow({Value::Int64(1), Value::Int64(10)}, 1.0);
  t.AddRow({Value::Int64(2), Value::Int64(20)}, 1.0);
  FunctionalDependency fd{{0}, {1}};
  EXPECT_TRUE(t.SatisfiesFD(fd));
  t.AddRow({Value::Int64(1), Value::Int64(99)}, 1.0);
  EXPECT_FALSE(t.SatisfiesFD(fd));
}

TEST(TableTest, ValidateFDsUsesSchemaDeclarations) {
  RelationSchema s = RelationSchema::AllInt64("S", 2);
  s.fds.push_back(FunctionalDependency{{0}, {1}});
  Table t(s);
  t.AddRow({Value::Int64(1), Value::Int64(2)}, 1.0);
  t.AddRow({Value::Int64(1), Value::Int64(2)}, 1.0);
  EXPECT_TRUE(t.ValidateFDs().ok());
  t.AddRow({Value::Int64(1), Value::Int64(3)}, 1.0);
  auto st = t.ValidateFDs();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kInvalidArgument);
}

TEST(StringPoolTest, InternIsIdempotent) {
  StringPool pool;
  int64_t a = pool.Intern("red");
  int64_t b = pool.Intern("green");
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.Intern("red"), a);
  EXPECT_EQ(pool.Get(a), "red");
  EXPECT_EQ(pool.Find("green"), b);
  EXPECT_EQ(pool.Find("blue"), -1);
}

TEST(DatabaseTest, AddAndLookupTables) {
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.5}});
  AddTable(&db, "S", 2, {{{1, 2}, 0.25}});
  EXPECT_EQ(db.NumTables(), 2);
  EXPECT_EQ(db.FindTable("R"), 0);
  EXPECT_EQ(db.FindTable("S"), 1);
  EXPECT_EQ(db.FindTable("T"), -1);
  auto t = db.GetTable("S");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->NumRows(), 1u);
  EXPECT_FALSE(db.GetTable("T").ok());
}

TEST(DatabaseTest, DuplicateTableNameRejected) {
  Database db;
  AddTable(&db, "R", 1, {});
  auto r = db.AddTable(Table(RelationSchema::AllInt64("R", 2)));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kAlreadyExists);
}

TEST(DatabaseTest, TupleProbLookup) {
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.5}, {{2}, 0.75}});
  EXPECT_DOUBLE_EQ(db.TupleProb(TupleId{0, 1}), 0.75);
  EXPECT_FALSE(db.TupleDeterministic(TupleId{0, 0}));
}

TEST(DatabaseTest, CloneIsDeep) {
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.5}});
  Database copy = db.Clone();
  copy.mutable_table(0)->SetProb(0, 0.9);
  EXPECT_DOUBLE_EQ(db.table(0).Prob(0), 0.5);
  EXPECT_DOUBLE_EQ(copy.table(0).Prob(0), 0.9);
}

TEST(DatabaseTest, ScaleProbabilitiesAppliesToAllTables) {
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.5}});
  AddTable(&db, "S", 1, {{{1}, 0.8}});
  db.ScaleProbabilities(0.5);
  EXPECT_DOUBLE_EQ(db.table(0).Prob(0), 0.25);
  EXPECT_DOUBLE_EQ(db.table(1).Prob(0), 0.4);
}

TEST(DatabaseTest, StrInternsIntoPool) {
  Database db;
  Value v = db.Str("hello");
  EXPECT_EQ(v.type(), ValueType::kString);
  EXPECT_EQ(db.strings()->Get(v.AsStringCode()), "hello");
}

}  // namespace
}  // namespace dissodb
