// Unit tests for the datalog query parser.
#include <gtest/gtest.h>

#include "src/query/parser.h"
#include "src/storage/database.h"

namespace dissodb {
namespace {

TEST(ParserTest, SimpleBooleanQuery) {
  auto q = ParseQuery("q() :- R(x), S(x,y)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->IsBoolean());
  EXPECT_EQ(q->num_atoms(), 2);
  EXPECT_EQ(q->num_vars(), 2);
  EXPECT_EQ(q->atom(0).relation, "R");
  EXPECT_EQ(q->atom(1).relation, "S");
}

TEST(ParserTest, HeadVariables) {
  auto q = ParseQuery("q(z) :- R(z,x), S(x,y), T(y)");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->head_vars().size(), 1u);
  EXPECT_EQ(q->var_name(q->head_vars()[0]), "z");
  EXPECT_EQ(MaskCount(q->EVarMask()), 2);
}

TEST(ParserTest, TrailingPeriodAllowed) {
  EXPECT_TRUE(ParseQuery("q() :- R(x).").ok());
}

TEST(ParserTest, WhitespaceInsensitive) {
  auto q = ParseQuery("  q ( x )  :-  R ( x , y ) ,  S ( y )  ");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->num_atoms(), 2);
}

TEST(ParserTest, IntegerConstants) {
  auto q = ParseQuery("q() :- R(x, 42), S(-3)");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(q->atom(0).terms[1].is_var);
  EXPECT_EQ(q->atom(0).terms[1].constant, Value::Int64(42));
  EXPECT_EQ(q->atom(1).terms[0].constant, Value::Int64(-3));
}

TEST(ParserTest, DoubleConstants) {
  auto q = ParseQuery("q() :- R(1.5)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->atom(0).terms[0].constant.type(), ValueType::kDouble);
}

TEST(ParserTest, StringConstantsNeedPool) {
  EXPECT_FALSE(ParseQuery("q() :- R('a')").ok());
  StringPool pool;
  auto q = ParseQuery("q() :- R('a', x)", &pool);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(pool.Get(q->atom(0).terms[0].constant.AsStringCode()), "a");
}

TEST(ParserTest, RepeatedVariableInAtom) {
  auto q = ParseQuery("q() :- R(x,x)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->num_vars(), 1);
  EXPECT_EQ(MaskCount(q->AtomMask(0)), 1);
}

TEST(ParserTest, SelfJoinRejected) {
  auto q = ParseQuery("q() :- R(x), R(y)");
  EXPECT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("self-join"), std::string::npos);
}

TEST(ParserTest, HeadVariableMustOccurInBody) {
  EXPECT_FALSE(ParseQuery("q(z) :- R(x)").ok());
}

TEST(ParserTest, ZeroArityAtom) {
  auto q = ParseQuery("q() :- R()");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->atom(0).arity(), 0);
}

TEST(ParserTest, MissingBodyRejected) {
  EXPECT_FALSE(ParseQuery("q(x)").ok());
  EXPECT_FALSE(ParseQuery("q(x) :-").ok());
}

TEST(ParserTest, BadHeadRejected) {
  EXPECT_FALSE(ParseQuery("(x) :- R(x)").ok());
  EXPECT_FALSE(ParseQuery("q(X) :- R(X)").ok());  // uppercase head var
  EXPECT_FALSE(ParseQuery("q(3) :- R(x)").ok());  // constant in head
}

TEST(ParserTest, UnterminatedAtomRejected) {
  EXPECT_FALSE(ParseQuery("q() :- R(x").ok());
  EXPECT_FALSE(ParseQuery("q() :- R(x,)").ok());
}

TEST(ParserTest, TrailingGarbageRejected) {
  EXPECT_FALSE(ParseQuery("q() :- R(x) garbage").ok());
}

TEST(ParserTest, UppercaseTermsAreNotVariables) {
  EXPECT_FALSE(ParseQuery("q() :- R(Foo)").ok());
}

TEST(ParserTest, UnterminatedStringRejected) {
  StringPool pool;
  EXPECT_FALSE(ParseQuery("q() :- R('abc)", &pool).ok());
}

TEST(ParserTest, SharedVariablesGetSameId) {
  auto q = ParseQuery("q() :- R(x,y), S(y,z)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->num_vars(), 3);
  EXPECT_NE(q->AtomMask(0) & q->AtomMask(1), 0u);
}

TEST(ParserTest, ToStringRoundTripsStructure) {
  auto q = ParseQuery("q(z) :- R(z,x), S(x,y)");
  ASSERT_TRUE(q.ok());
  std::string s = q->ToString();
  auto q2 = ParseQuery(s);
  ASSERT_TRUE(q2.ok()) << s;
  EXPECT_EQ(q2->num_atoms(), q->num_atoms());
  EXPECT_EQ(q2->head_vars().size(), q->head_vars().size());
}

TEST(ParserTest, PaperIntroQueries) {
  // q1(z) :- R(z,x), S(x,y), K(x,y)  and  q2(z) :- R(z,x), S(x,y), T(y)
  auto q1 = ParseQuery("q1(z) :- R(z,x), S(x,y), K(x,y)");
  auto q2 = ParseQuery("q2(z) :- R(z,x), S(x,y), T(y)");
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q1->num_atoms(), 3);
  EXPECT_EQ(q2->num_atoms(), 3);
}

}  // namespace
}  // namespace dissodb
