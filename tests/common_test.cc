// Unit tests for src/common: Status/Result, Value, Rng, string utilities.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/string_util.h"
#include "src/common/value.h"

namespace dissodb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<Status::Code> codes = {
      Status::InvalidArgument("").code(), Status::NotFound("").code(),
      Status::AlreadyExists("").code(),   Status::OutOfRange("").code(),
      Status::Unimplemented("").code(),   Status::Internal("").code()};
  EXPECT_EQ(codes.size(), 6u);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(ValueTest, Int64RoundTrip) {
  Value v = Value::Int64(-7);
  EXPECT_EQ(v.type(), ValueType::kInt64);
  EXPECT_EQ(v.AsInt64(), -7);
  EXPECT_EQ(v.ToString(), "-7");
}

TEST(ValueTest, DoubleRoundTrip) {
  Value v = Value::Double(2.5);
  EXPECT_EQ(v.type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(v.AsDouble(), 2.5);
}

TEST(ValueTest, StringCodeRoundTrip) {
  Value v = Value::StringCode(12);
  EXPECT_EQ(v.type(), ValueType::kString);
  EXPECT_EQ(v.AsStringCode(), 12);
}

TEST(ValueTest, EqualityRequiresSameType) {
  EXPECT_NE(Value::Int64(1), Value::StringCode(1));
  EXPECT_EQ(Value::Int64(5), Value::Int64(5));
  EXPECT_NE(Value::Int64(5), Value::Int64(6));
}

TEST(ValueTest, OrderingIsTotalWithinType) {
  EXPECT_LT(Value::Int64(1), Value::Int64(2));
  EXPECT_LT(Value::Double(1.0), Value::Double(1.5));
  EXPECT_LT(Value::StringCode(0), Value::StringCode(1));
}

TEST(ValueTest, HashDiffersAcrossTypes) {
  EXPECT_NE(Value::Int64(3).Hash(), Value::StringCode(3).Hash());
}

TEST(ValueTest, HashSpreadsSmallIntegers) {
  std::unordered_set<size_t> hashes;
  for (int i = 0; i < 1000; ++i) hashes.insert(Value::Int64(i).Hash());
  EXPECT_EQ(hashes.size(), 1000u);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next() ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsAboutHalf) {
  Rng r(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextBoundedCoversRange) {
  Rng r(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = r.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(StringUtilTest, SplitKeepsEmptyPieces) {
  auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringUtilTest, TrimBothEnds) {
  EXPECT_EQ(Trim("  x y \t\n"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, JoinWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(LikeMatchTest, ExactMatchWithoutWildcards) {
  EXPECT_TRUE(LikeMatch("red", "red"));
  EXPECT_FALSE(LikeMatch("red", "blue"));
  EXPECT_FALSE(LikeMatch("redd", "red"));
}

TEST(LikeMatchTest, PercentMatchesAnySequence) {
  EXPECT_TRUE(LikeMatch("anything", "%"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_TRUE(LikeMatch("dark red metallic", "%red%"));
  EXPECT_FALSE(LikeMatch("dark blue", "%red%"));
}

TEST(LikeMatchTest, OrderedPatterns) {
  // The paper's '%red%green%' pattern requires red before green.
  EXPECT_TRUE(LikeMatch("pale red forest green", "%red%green%"));
  EXPECT_FALSE(LikeMatch("green then red", "%red%green%"));
}

TEST(LikeMatchTest, UnderscoreMatchesExactlyOneChar) {
  EXPECT_TRUE(LikeMatch("cat", "c_t"));
  EXPECT_FALSE(LikeMatch("ct", "c_t"));
  EXPECT_FALSE(LikeMatch("cart", "c_t"));
}

TEST(LikeMatchTest, BacktrackingAcrossRepeats) {
  EXPECT_TRUE(LikeMatch("abcabcabd", "%abd"));
  EXPECT_TRUE(LikeMatch("aaab", "%a_b"));
  EXPECT_FALSE(LikeMatch("aaac", "%a_b"));
}

TEST(StringUtilTest, StrFormatFormats) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
}

}  // namespace
}  // namespace dissodb
