// Append-only delta maintenance of result-cache entries
// (src/serve/delta_maintenance.h): after an append-only commit, hot cached
// subplans are rolled forward to the new version instead of swept, and the
// maintained relation must be *bit-identical* to evaluating the same
// subplan from scratch at the new version — same rows, same order, same
// score bits. Covers chunk-seam append batches (cap-1 / cap / cap+1),
// fallback-to-sweep for non-append commits, partial maintenance when a
// commit touches several tables, and a readers-vs-writer stress.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/engine/query_engine.h"
#include "tests/test_util.h"

namespace dissodb {
namespace {

using testing_util::AddTable;
using testing_util::ChunkCapOverride;
using testing_util::Q;

void ExpectBitIdentical(const std::vector<RankedAnswer>& expect,
                        const std::vector<RankedAnswer>& got,
                        const std::string& what) {
  ASSERT_EQ(expect.size(), got.size()) << what;
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(expect[i].tuple, got[i].tuple) << what << " row " << i;
    // EXPECT_EQ, not EXPECT_DOUBLE_EQ: delta maintenance must reproduce
    // the exact multiply sequence of a from-scratch evaluation.
    EXPECT_EQ(expect[i].score, got[i].score) << what << " row " << i;
  }
}

// R(a,b) joins S(b). Weights step in 1/16 so products are exact enough to
// expose any reordered accumulation as a bit difference (they are exact in
// binary FP, so equal values imply equal operation sequences).
Database MakeDb(size_t r_rows, Rng* rng) {
  Database db;
  std::vector<std::pair<std::vector<int64_t>, double>> rows;
  for (size_t i = 0; i < r_rows; ++i) {
    rows.push_back({{static_cast<int64_t>(rng->NextBounded(5)),
                     static_cast<int64_t>(rng->NextBounded(6))},
                    static_cast<double>(rng->NextBounded(15) + 1) / 16.0});
  }
  AddTable(&db, "R", 2, rows);
  AddTable(&db, "S", 1,
           {{{0}, 0.5},
            {{1}, 0.25},
            {{2}, 0.75},
            {{3}, 0.125},
            {{4}, 0.9375},
            {{5}, 0.0625}});
  return db;
}

// Appends `n` random rows to table `idx` in one writer transaction.
void AppendRows(Database* db, int idx, size_t n, int arity, Rng* rng) {
  auto w = db->BeginWrite();
  for (size_t i = 0; i < n; ++i) {
    std::vector<Value> row;
    for (int c = 0; c < arity; ++c) {
      row.push_back(Value::Int64(static_cast<int64_t>(rng->NextBounded(6))));
    }
    w.AppendRow(idx, row,
                static_cast<double>(rng->NextBounded(15) + 1) / 16.0);
  }
  w.Commit();
}

TEST(DeltaMaintenanceTest, MaintainedEntriesBitIdenticalAcrossChunkSeams) {
  // cap 4 so the append batches below straddle chunk seams: 3 = cap-1
  // (fills the tail chunk exactly), 4 = cap (fills and opens a new chunk),
  // 5 = cap+1 (crosses a seam mid-batch).
  ChunkCapOverride cap(4);
  Rng rng(42);
  Database db = MakeDb(10, &rng);

  QueryEngine engine = QueryEngine::Borrow(db);
  // Both maintainable root shapes: project(join(scan, scan)) and
  // project(scan).
  ConjunctiveQuery qj = Q("q(x) :- R(x,y), S(y)");
  ConjunctiveQuery qp = Q("q(x) :- R(x,y)");
  const std::vector<ConjunctiveQuery> batch{qj, qp};
  ASSERT_TRUE(engine.RunBatch(batch).ok());

  size_t maintained = engine.stats().result_cache_delta_maintained;
  for (size_t delta : {size_t{3}, size_t{4}, size_t{5}, size_t{1},
                       size_t{9}}) {
    AppendRows(&db, /*idx=*/0, delta, /*arity=*/2, &rng);

    // The commit hook ran synchronously inside Commit(): the hot entries
    // were rolled forward, not swept.
    EXPECT_GT(engine.stats().result_cache_delta_maintained, maintained)
        << "delta " << delta;
    maintained = engine.stats().result_cache_delta_maintained;

    // From-scratch reference: a cold engine at the new version.
    QueryEngine fresh = QueryEngine::Borrow(db);
    auto expect = fresh.RunBatch(batch);
    ASSERT_TRUE(expect.ok());

    auto got = engine.RunBatch(batch);
    ASSERT_TRUE(got.ok());
    for (size_t i = 0; i < batch.size(); ++i) {
      EXPECT_GT((*got)[i].result_cache_hits, 0u)
          << "delta " << delta << " query " << i
          << ": maintained entry must serve as a hit at the new version";
      ExpectBitIdentical((*expect)[i].answers, (*got)[i].answers,
                         "delta " + std::to_string(delta) + " query " +
                             std::to_string(i));
    }
  }
}

TEST(DeltaMaintenanceTest, MaintainedRootIsServedWithoutRecomputation) {
  Rng rng(7);
  Database db = MakeDb(12, &rng);
  QueryEngine engine = QueryEngine::Borrow(db);
  ConjunctiveQuery q = Q("q(x) :- R(x,y), S(y)");
  ASSERT_TRUE(engine.RunBatch(std::vector<ConjunctiveQuery>{q}).ok());

  AppendRows(&db, /*idx=*/0, 2, /*arity=*/2, &rng);
  ASSERT_GT(engine.stats().result_cache_delta_maintained, 0u);

  auto got = engine.RunBatch(std::vector<ConjunctiveQuery>{q});
  ASSERT_TRUE(got.ok());
  // The root subplan hits at the new version, so the execution evaluates
  // zero plan nodes — served, not recomputed.
  EXPECT_GT((*got)[0].result_cache_hits, 0u);
  EXPECT_EQ((*got)[0].nodes_evaluated, 0u);
}

TEST(DeltaMaintenanceTest, NonAppendCommitSweepsInsteadOfMaintaining) {
  Rng rng(19);
  Database db = MakeDb(10, &rng);
  QueryEngine engine = QueryEngine::Borrow(db);
  ConjunctiveQuery q = Q("q(x) :- R(x,y), S(y)");
  ASSERT_TRUE(engine.RunBatch(std::vector<ConjunctiveQuery>{q}).ok());

  const size_t maintained = engine.stats().result_cache_delta_maintained;
  {
    auto w = db.BeginWrite();
    w.mutable_table(0)->SetProb(0, 0.125);  // overwrite, not append
    w.Commit();
  }
  EXPECT_EQ(engine.stats().result_cache_delta_maintained, maintained);
  EXPECT_GT(engine.stats().result_cache_swept, 0u);

  // The first post-commit batch recomputes (no stale hits) and matches a
  // cold engine exactly.
  auto got = engine.RunBatch(std::vector<ConjunctiveQuery>{q});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)[0].result_cache_hits, 0u);
  QueryEngine fresh = QueryEngine::Borrow(db);
  auto expect = fresh.RunBatch(std::vector<ConjunctiveQuery>{q});
  ASSERT_TRUE(expect.ok());
  ExpectBitIdentical((*expect)[0].answers, (*got)[0].answers, "post-sweep");
}

TEST(DeltaMaintenanceTest, MultiTableAppendMaintainsWhatItCanProve) {
  Rng rng(23);
  Database db = MakeDb(10, &rng);
  QueryEngine engine = QueryEngine::Borrow(db);
  // qp reads only R; qj reads R and S.
  ConjunctiveQuery qj = Q("q(x) :- R(x,y), S(y)");
  ConjunctiveQuery qp = Q("q(x) :- R(x,y)");
  const std::vector<ConjunctiveQuery> batch{qj, qp};
  ASSERT_TRUE(engine.RunBatch(batch).ok());

  const size_t maintained = engine.stats().result_cache_delta_maintained;
  {
    // One commit appending to both tables: qp's entry sees exactly one
    // grown scan and rolls forward; qj's entry sees two and falls back.
    auto w = db.BeginWrite();
    w.AppendRow(0, std::vector<Value>{Value::Int64(1), Value::Int64(2)},
                0.4375);
    w.AppendRow(1, std::vector<Value>{Value::Int64(9)}, 0.3125);
    w.Commit();
  }
  EXPECT_GT(engine.stats().result_cache_delta_maintained, maintained);

  // Either way, every answer matches a from-scratch evaluation bit for
  // bit — maintained entries served from cache, fallen-back ones
  // recomputed at the new version.
  QueryEngine fresh = QueryEngine::Borrow(db);
  auto expect = fresh.RunBatch(batch);
  ASSERT_TRUE(expect.ok());
  auto got = engine.RunBatch(batch);
  ASSERT_TRUE(got.ok());
  for (size_t i = 0; i < batch.size(); ++i) {
    ExpectBitIdentical((*expect)[i].answers, (*got)[i].answers,
                       "query " + std::to_string(i));
  }
}

TEST(DeltaMaintenanceTest, ReadersRaceAppendOnlyWriterWithMaintenanceOn) {
  ChunkCapOverride cap(8);
  Rng rng(101);
  Database db = MakeDb(64, &rng);
  QueryEngine engine = QueryEngine::Borrow(db);
  ConjunctiveQuery q = Q("q(x) :- R(x,y), S(y)");
  ASSERT_TRUE(engine.RunBatch(std::vector<ConjunctiveQuery>{q}).ok());

  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&engine, &q, &failures] {
      for (int i = 0; i < 8; ++i) {
        auto r = engine.RunBatch(std::vector<ConjunctiveQuery>{q});
        if (!r.ok() || (*r)[0].answers.empty()) failures.fetch_add(1);
      }
    });
  }
  std::thread writer([&db] {
    Rng wrng(7);
    for (int c = 0; c < 16; ++c) {
      AppendRows(&db, /*idx=*/0, 3, /*arity=*/2, &wrng);
    }
  });
  for (auto& t : readers) t.join();
  writer.join();
  EXPECT_EQ(failures.load(), 0);

  // Settle: the final state still serves bit-identically to a cold engine.
  QueryEngine fresh = QueryEngine::Borrow(db);
  auto expect = fresh.RunBatch(std::vector<ConjunctiveQuery>{q});
  ASSERT_TRUE(expect.ok());
  auto got = engine.RunBatch(std::vector<ConjunctiveQuery>{q});
  ASSERT_TRUE(got.ok());
  ExpectBitIdentical((*expect)[0].answers, (*got)[0].answers, "settled");
}

}  // namespace
}  // namespace dissodb
