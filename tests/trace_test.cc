// Query tracing: span-tree shape against the evaluated plan, per-operator
// row counts against the reference operators, balanced nesting under
// pooled parallel execution, export formats, and the guarantee that
// tracing-off executions are bit-identical to the untraced engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/dissociation/dissociation.h"
#include "src/dissociation/single_plan.h"
#include "src/engine/query_engine.h"
#include "src/exec/evaluator.h"
#include "src/exec/operators.h"
#include "src/exec/semijoin.h"
#include "src/obs/trace.h"
#include "src/plan/plan.h"
#include "src/query/analysis.h"
#include "tests/reference_ops.h"
#include "tests/test_util.h"

namespace dissodb {
namespace {

using testing_util::AddTable;
using testing_util::Canonical;
using testing_util::Q;
using testing_util::RefJoin;
using testing_util::ToRef;

Database RstDatabase() {
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.7}, {{2}, 0.5}});
  AddTable(&db, "S", 2, {{{1, 10}, 0.9}, {{1, 20}, 0.4}, {{2, 20}, 0.8}});
  AddTable(&db, "T", 1, {{{10}, 0.6}, {{20}, 0.3}});
  return db;
}

const obs::TraceSpan* FindSpan(const obs::QueryTrace& trace,
                               const std::string& name) {
  for (const auto& s : trace.spans) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const std::string* Arg(const obs::TraceSpan& s, const std::string& key) {
  for (const auto& [k, v] : s.args) {
    if (k == key) return &v;
  }
  return nullptr;
}

/// Spans in the subtree rooted at `root` (excluding `root` itself).
size_t SubtreeSize(const obs::QueryTrace& trace, uint32_t root) {
  size_t n = 0;
  for (const auto* child : trace.ChildrenOf(root)) {
    n += 1 + SubtreeSize(trace, child->id);
  }
  return n;
}

/// Every span tree invariant tracing promises: ids are dense and 1-based,
/// parents precede children, every span is closed, and a child's interval
/// nests inside its parent's.
void ExpectBalanced(const obs::QueryTrace& trace) {
  size_t roots = 0;
  for (size_t i = 0; i < trace.spans.size(); ++i) {
    const obs::TraceSpan& s = trace.spans[i];
    EXPECT_EQ(s.id, i + 1);
    EXPECT_NE(s.end_ns, 0u) << s.name;
    EXPECT_GE(s.end_ns, s.start_ns) << s.name;
    if (s.parent == 0) {
      ++roots;
      continue;
    }
    ASSERT_LT(s.parent, s.id) << s.name << ": parent must open first";
    const obs::TraceSpan& p = trace.spans[s.parent - 1];
    EXPECT_GE(s.start_ns, p.start_ns) << s.name << " under " << p.name;
    EXPECT_LE(s.end_ns, p.end_ns) << s.name << " under " << p.name;
  }
  EXPECT_EQ(roots, 1u);
}

// ---------------------------------------------------------------------------
// TraceContext / ScopedSpan units
// ---------------------------------------------------------------------------

TEST(TraceContextTest, SpansNestAndFinishClosesOpenOnes) {
  obs::TraceContext ctx;
  uint32_t root = ctx.BeginSpan("root", 0);
  uint32_t child = ctx.BeginSpan("child", root);
  ctx.Annotate(child, "rows_out", uint64_t{42});
  ctx.EndSpan(child);
  // `root` is left open on purpose: Finish must close it.
  obs::QueryTrace trace = ctx.Finish();
  ASSERT_EQ(trace.spans.size(), 2u);
  EXPECT_EQ(trace.spans[0].name, "root");
  EXPECT_NE(trace.spans[0].end_ns, 0u);
  EXPECT_EQ(trace.spans[1].parent, root);
  ASSERT_NE(Arg(trace.spans[1], "rows_out"), nullptr);
  EXPECT_EQ(*Arg(trace.spans[1], "rows_out"), "42");
  ASSERT_EQ(trace.ChildrenOf(root).size(), 1u);
  EXPECT_EQ(trace.ChildrenOf(root)[0]->name, "child");
}

TEST(TraceContextTest, ScopedSpanIsNullContextSafe) {
  {
    obs::ScopedSpan span(nullptr, "ignored", 0);
    EXPECT_EQ(span.id(), 0u);
  }
  obs::TraceContext ctx;
  {
    obs::ScopedSpan span(&ctx, "real", 0);
    EXPECT_NE(span.id(), 0u);
  }
  obs::QueryTrace trace = ctx.Finish();
  ASSERT_EQ(trace.spans.size(), 1u);
  EXPECT_NE(trace.spans[0].end_ns, 0u);
}

TEST(TraceExportTest, ChromeJsonHasOneCompleteEventPerSpan) {
  obs::TraceContext ctx;
  uint32_t root = ctx.BeginSpan("execute q() :- R(\"x\\y\")", 0);
  ctx.EndSpan(ctx.BeginSpan("scan R", root));
  ctx.EndSpan(root);
  obs::QueryTrace trace = ctx.Finish();
  std::string json = trace.ToChromeJson();
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u) << json;
  size_t events = 0;
  for (size_t pos = 0; (pos = json.find("\"ph\":\"X\"", pos)) !=
                       std::string::npos;
       ++pos) {
    ++events;
  }
  EXPECT_EQ(events, trace.spans.size());
  // The quote and backslash in the span name must arrive escaped.
  EXPECT_NE(json.find("\\\"x\\\\y\\\""), std::string::npos) << json;
}

TEST(TraceExportTest, TextTreeIndentsChildren) {
  obs::TraceContext ctx;
  uint32_t root = ctx.BeginSpan("execute", 0);
  uint32_t eval = ctx.BeginSpan("evaluate", root);
  ctx.EndSpan(ctx.BeginSpan("scan R", eval));
  ctx.EndSpan(eval);
  ctx.EndSpan(root);
  std::string text = ctx.Finish().ToText();
  EXPECT_NE(text.find("execute"), std::string::npos);
  EXPECT_NE(text.find("evaluate"), std::string::npos);
  EXPECT_NE(text.find("scan R"), std::string::npos);
  EXPECT_LT(text.find("execute"), text.find("evaluate"));
  EXPECT_LT(text.find("evaluate"), text.find("scan R"));
}

// ---------------------------------------------------------------------------
// Evaluator: span tree vs. plan tree
// ---------------------------------------------------------------------------

TEST(TraceShapeTest, SpanTreeExpandsToPlanTreeShape) {
  // Example 17: the dissociated safe plan has DAG-shared nodes under Opt. 2;
  // reused nodes must still emit (reference) spans, so the span tree always
  // matches the plan's *tree* expansion.
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.5}, {{2}, 0.5}});
  AddTable(&db, "S", 1, {{{1}, 0.5}, {{2}, 0.5}});
  AddTable(&db, "T", 2, {{{1, 1}, 0.5}, {{1, 2}, 0.5}, {{2, 2}, 0.5}});
  AddTable(&db, "U", 1, {{{1}, 0.5}, {{2}, 0.5}});
  auto q = Q("q() :- R(x), S(x), T(x,y), U(y)");

  auto sk = SchemaKnowledge::FromSnapshot(q, db.snapshot());
  ASSERT_TRUE(sk.ok());
  SinglePlanOptions sp;
  sp.reuse_common_subplans = true;
  auto plan = BuildSinglePlan(q, *sk, sp);
  ASSERT_TRUE(plan.ok());
  const size_t tree_nodes = MeasurePlan(*plan).tree_nodes;

  obs::TraceContext ctx;
  uint32_t root = ctx.BeginSpan("evaluate", 0);
  PlanEvaluator ev(db.snapshot(), q);
  ev.SetTrace(&ctx, root);
  auto rel = ev.Evaluate(*plan);
  ASSERT_TRUE(rel.ok());
  ctx.EndSpan(root);
  obs::QueryTrace trace = ctx.Finish();

  ExpectBalanced(trace);
  EXPECT_EQ(SubtreeSize(trace, root), tree_nodes);
  // Opt. 2 means strictly fewer evaluations than tree nodes; the reused
  // nodes appear as zero-work reference spans.
  EXPECT_LT(ev.nodes_evaluated(), tree_nodes);
  size_t reused = 0;
  for (const auto& s : trace.spans) {
    if (Arg(s, "reused") != nullptr) ++reused;
  }
  // Each of the tree_nodes plan spans is either a real evaluation or a
  // zero-work reference to a DAG-shared result.
  EXPECT_EQ(reused, tree_nodes - ev.nodes_evaluated());
}

// ---------------------------------------------------------------------------
// Engine-level tracing
// ---------------------------------------------------------------------------

TEST(EngineTraceTest, OffByDefaultAndBitIdenticalWhenOn) {
  Database db = RstDatabase();
  QueryEngine engine = QueryEngine::Borrow(db);
  auto prepared = engine.Prepare("q(x) :- R(x), S(x,y), T(y)");
  ASSERT_TRUE(prepared.ok());

  auto plain = engine.Execute(*prepared);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->trace, nullptr);
  EXPECT_EQ(engine.stats().traces_recorded, 0u);

  auto traced = engine.Execute(*prepared, Bindings().EnableTrace());
  ASSERT_TRUE(traced.ok());
  ASSERT_NE(traced->trace, nullptr);
  EXPECT_EQ(engine.stats().traces_recorded, 1u);

  // Tracing must not perturb results in any way.
  ASSERT_EQ(traced->answers.size(), plain->answers.size());
  for (size_t i = 0; i < plain->answers.size(); ++i) {
    EXPECT_EQ(traced->answers[i].tuple, plain->answers[i].tuple);
    EXPECT_EQ(traced->answers[i].score, plain->answers[i].score);
  }
  EXPECT_EQ(traced->nodes_evaluated, plain->nodes_evaluated);
}

TEST(EngineTraceTest, RootSpanAnnotatesSafePlanRouting) {
  // The execute root span records how the safe-plan router resolved the
  // query: "exact" for a lifted safe plan, "dissociated" otherwise — in
  // ToText() and in the Chrome JSON args.
  Database db = RstDatabase();
  QueryEngine engine = QueryEngine::Borrow(db);

  auto safe = engine.Prepare("q(x) :- R(x), S(x,y), T(y)");  // y hierarchical
  ASSERT_TRUE(safe.ok());
  auto st = engine.Execute(*safe, Bindings().EnableTrace());
  ASSERT_TRUE(st.ok());
  ASSERT_NE(st->trace, nullptr);
  EXPECT_TRUE(st->exact);
  EXPECT_NE(st->trace->ToText().find("safe_plan=exact"), std::string::npos);
  EXPECT_NE(st->trace->ToChromeJson().find("safe_plan"), std::string::npos);

  auto unsafe_q = engine.Prepare("q() :- R(x), S(x,y), T(y)");  // 3-chain
  ASSERT_TRUE(unsafe_q.ok());
  auto ut = engine.Execute(*unsafe_q, Bindings().EnableTrace());
  ASSERT_TRUE(ut.ok());
  ASSERT_NE(ut->trace, nullptr);
  EXPECT_FALSE(ut->exact);
  EXPECT_NE(ut->trace->ToText().find("safe_plan=dissociated"),
            std::string::npos);
}

TEST(EngineTraceTest, SpanRowCountsMatchReferenceOperators) {
  Database db = RstDatabase();
  QueryEngine engine = QueryEngine::Borrow(db);
  auto prepared = engine.Prepare("q(x) :- R(x), S(x,y), T(y)");
  ASSERT_TRUE(prepared.ok());
  auto res = engine.Execute(*prepared, Bindings().EnableTrace());
  ASSERT_TRUE(res.ok());
  ASSERT_NE(res->trace, nullptr);
  const obs::QueryTrace& trace = *res->trace;
  ExpectBalanced(trace);

  // Scan spans report exactly the table row counts.
  const auto scan_rows = [&](const std::string& rel) -> uint64_t {
    const obs::TraceSpan* s = FindSpan(trace, "scan " + rel);
    EXPECT_NE(s, nullptr) << rel;
    if (s == nullptr) return 0;
    const std::string* rows = Arg(*s, "rows_out");
    EXPECT_NE(rows, nullptr) << rel;
    return rows != nullptr ? std::stoull(*rows) : 0;
  };
  EXPECT_EQ(scan_rows("R"), 2u);
  EXPECT_EQ(scan_rows("S"), 3u);
  EXPECT_EQ(scan_rows("T"), 2u);

  // Join spans: rows_in is the sum of the children's outputs, rows_out
  // matches the reference nested-loop join on the child spans' relations.
  bool checked_join = false;
  for (const auto& s : trace.spans) {
    if (s.name != "join") continue;
    auto children = trace.ChildrenOf(s.id);
    uint64_t child_rows = 0;
    for (const auto* c : children) {
      const std::string* rows = Arg(*c, "rows_out");
      ASSERT_NE(rows, nullptr) << c->name;
      child_rows += std::stoull(*rows);
    }
    const std::string* rows_in = Arg(s, "rows_in");
    ASSERT_NE(rows_in, nullptr);
    EXPECT_EQ(std::stoull(*rows_in), child_rows);
    checked_join = true;
  }
  EXPECT_TRUE(checked_join);

  // The root aggregates the execution: answers count must agree.
  const obs::TraceSpan& root = trace.spans[0];
  EXPECT_EQ(root.parent, 0u);
  ASSERT_NE(Arg(root, "answers"), nullptr);
  EXPECT_EQ(std::stoull(*Arg(root, "answers")), res->answers.size());
  ASSERT_NE(Arg(root, "nodes_evaluated"), nullptr);
  EXPECT_EQ(std::stoull(*Arg(root, "nodes_evaluated")),
            res->nodes_evaluated);
}

TEST(EngineTraceTest, JoinOutputMatchesReferenceJoin) {
  // Direct cross-check against tests/reference_ops.h: evaluate R(x) ⋈
  // S(x,y) through a traced plan and compare the join span's rows_out with
  // RefJoin on the scanned inputs.
  Database db = RstDatabase();
  auto q = Q("q(x,y) :- R(x), S(x,y)");
  auto sk = SchemaKnowledge::FromSnapshot(q, db.snapshot());
  ASSERT_TRUE(sk.ok());
  auto plan = BuildSinglePlan(q, *sk, SinglePlanOptions{});
  ASSERT_TRUE(plan.ok());

  obs::TraceContext ctx;
  uint32_t root = ctx.BeginSpan("evaluate", 0);
  PlanEvaluator ev(db.snapshot(), q);
  ev.SetTrace(&ctx, root);
  auto rel = ev.Evaluate(*plan);
  ASSERT_TRUE(rel.ok());
  ctx.EndSpan(root);
  obs::QueryTrace trace = ctx.Finish();

  // Reference join of the two scan relations.
  auto r_scan = ScanAtom(db.snapshot(), q, 0);
  auto s_scan = ScanAtom(db.snapshot(), q, 1);
  ASSERT_TRUE(r_scan.ok() && s_scan.ok());
  const auto ref = RefJoin(ToRef(*r_scan), ToRef(*s_scan));

  const obs::TraceSpan* join = FindSpan(trace, "join");
  ASSERT_NE(join, nullptr);
  ASSERT_NE(Arg(*join, "rows_out"), nullptr);
  EXPECT_EQ(std::stoull(*Arg(*join, "rows_out")), ref.rows.size());
  ASSERT_NE(Arg(*join, "rows_in"), nullptr);
  EXPECT_EQ(std::stoull(*Arg(*join, "rows_in")),
            ToRef(*r_scan).rows.size() + ToRef(*s_scan).rows.size());
}

TEST(EngineTraceTest, BalancedNestingUnderPooledParallelExecution) {
  // Large-ish inputs + a 4-thread pool: executions run on pool threads and
  // operators fan out morsels, yet every trace must stay a balanced tree.
  Database db;
  std::vector<std::pair<std::vector<int64_t>, double>> r_rows, s_rows;
  for (int64_t i = 0; i < 3000; ++i) {
    r_rows.push_back({{i}, 0.5});
    s_rows.push_back({{i, i % 97}, 0.5});
  }
  AddTable(&db, "R", 1, r_rows);
  AddTable(&db, "S", 2, s_rows);

  EngineOptions opts;
  opts.num_threads = 4;
  QueryEngine engine = QueryEngine::Borrow(db, opts);
  auto prepared = engine.Prepare("q(y) :- R(x), S(x,y)");
  ASSERT_TRUE(prepared.ok());

  std::vector<PreparedQuery> batch(8, *prepared);
  std::vector<Bindings> bindings(8, Bindings().EnableTrace());
  auto results = engine.ExecuteBatch(batch, bindings);
  ASSERT_EQ(results.size(), 8u);
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_NE(r->trace, nullptr);
    ExpectBalanced(*r->trace);
    EXPECT_NE(FindSpan(*r->trace, "evaluate"), nullptr);
    EXPECT_NE(FindSpan(*r->trace, "rank"), nullptr);
  }
  EXPECT_EQ(engine.stats().traces_recorded, 8u);
}

TEST(EngineTraceTest, SampledTracingRecordsOneInN) {
  Database db = RstDatabase();
  EngineOptions opts;
  opts.trace_sample_every = 2;
  QueryEngine engine = QueryEngine::Borrow(db, opts);
  auto prepared = engine.Prepare("q(x) :- R(x), S(x,y), T(y)");
  ASSERT_TRUE(prepared.ok());
  size_t with_trace = 0;
  for (int i = 0; i < 6; ++i) {
    auto r = engine.Execute(*prepared);
    ASSERT_TRUE(r.ok());
    if (r->trace != nullptr) ++with_trace;
  }
  EXPECT_EQ(with_trace, 3u);
  EXPECT_EQ(engine.stats().traces_recorded, 3u);
}

TEST(EngineTraceTest, SemiJoinSpanAndBloomStatsFlowIntoEngineStats) {
  // Satellite: the reduction's Bloom counters used to be dropped per-call;
  // they must now land in EngineStats and on the semijoin-reduce span.
  SetSemiJoinBloomMinRowsForTesting(1);
  Database db = RstDatabase();
  EngineOptions opts;
  opts.propagation.opt3_semijoin_reduction = true;
  QueryEngine engine = QueryEngine::Borrow(db, opts);
  auto prepared = engine.Prepare("q(x) :- R(x), S(x,y), T(y)");
  ASSERT_TRUE(prepared.ok());
  auto res = engine.Execute(*prepared, Bindings().EnableTrace());
  SetSemiJoinBloomMinRowsForTesting(4096);  // restore the default
  ASSERT_TRUE(res.ok());

  EngineStats stats = engine.stats();
  EXPECT_EQ(stats.semijoin_reductions, 1u);
  EXPECT_GT(stats.bloom_filters_built, 0u);

  ASSERT_NE(res->trace, nullptr);
  const obs::TraceSpan* sj = FindSpan(*res->trace, "semijoin-reduce");
  ASSERT_NE(sj, nullptr);
  ASSERT_NE(Arg(*sj, "bloom_filters_built"), nullptr);
  EXPECT_EQ(std::stoull(*Arg(*sj, "bloom_filters_built")),
            stats.bloom_filters_built);
}

TEST(EngineTraceTest, PrometheusDumpCoversEngineSchedulerAndScans) {
  Database db = RstDatabase();
  EngineOptions opts;
  opts.num_threads = 2;
  QueryEngine engine = QueryEngine::Borrow(db, opts);
  auto prepared = engine.Prepare("q(x) :- R(x), S(x,y), T(y)");
  ASSERT_TRUE(prepared.ok());
  auto results = engine.ExecuteBatch({*prepared, *prepared});
  for (const auto& r : results) ASSERT_TRUE(r.ok());

  std::string text = engine.metrics().PrometheusText();
  EXPECT_NE(text.find("dissodb_engine_queries 2"), std::string::npos) << text;
  EXPECT_NE(text.find("dissodb_engine_execute_ns_count 2"),
            std::string::npos);
  EXPECT_NE(text.find("dissodb_scheduler_tasks_executed"), std::string::npos);
  EXPECT_NE(text.find("dissodb_scheduler_queue_wait_ns_query"),
            std::string::npos);
  EXPECT_NE(text.find("dissodb_scheduler_run_ns_query"), std::string::npos);

  // Registry-homed EngineStats agree with the registry.
  EngineStats stats = engine.stats();
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.batch_queries, 2u);
  EXPECT_GT(stats.tasks_executed, 0u);
}

TEST(EngineTraceTest, SchedulerQueueWaitHistogramsPopulate) {
  Database db = RstDatabase();
  EngineOptions opts;
  opts.num_threads = 2;
  QueryEngine engine = QueryEngine::Borrow(db, opts);
  auto prepared = engine.Prepare("q(x) :- R(x), S(x,y), T(y)");
  ASSERT_TRUE(prepared.ok());
  auto results = engine.ExecuteBatch(
      std::vector<PreparedQuery>(4, *prepared));
  for (const auto& r : results) ASSERT_TRUE(r.ok());

  auto snap =
      engine.metrics().histogram("scheduler.queue_wait_ns.query")->Snapshot();
  EXPECT_EQ(snap.count, 4u);  // one queue task per batch execution
  EXPECT_GE(snap.p99(), snap.p50());
  auto run =
      engine.metrics().histogram("scheduler.run_ns.query")->Snapshot();
  EXPECT_EQ(run.count, 4u);
  EXPECT_GT(run.sum, 0u);
}

}  // namespace
}  // namespace dissodb
