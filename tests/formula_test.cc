// Unit tests for DNF formulas and the brute-force reference probability.
#include <gtest/gtest.h>

#include "src/lineage/formula.h"

namespace dissodb {
namespace {

TEST(DnfTest, EvaluateBasics) {
  Dnf f;
  f.probs = {0.5, 0.5, 0.5};
  f.terms = {{0, 1}, {2}};
  EXPECT_TRUE(f.Evaluate({true, true, false}));
  EXPECT_TRUE(f.Evaluate({false, false, true}));
  EXPECT_FALSE(f.Evaluate({true, false, false}));
}

TEST(DnfTest, EmptyFormulaIsFalse) {
  Dnf f;
  EXPECT_FALSE(f.Evaluate({}));
  auto p = BruteForceProbability(f);
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(*p, 0.0);
}

TEST(DnfTest, EmptyTermIsTrue) {
  Dnf f;
  f.probs = {0.5};
  f.terms = {{}};
  EXPECT_TRUE(f.Evaluate({false}));
  auto p = BruteForceProbability(f);
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(*p, 1.0);
}

TEST(DnfTest, NormalizeDeduplicates) {
  Dnf f;
  f.probs = {0.5, 0.5};
  f.terms = {{1, 0}, {0, 1}, {0, 0, 1}};
  f.Normalize();
  EXPECT_EQ(f.terms.size(), 1u);
  EXPECT_EQ(f.terms[0], (std::vector<int>{0, 1}));
}

TEST(DnfTest, ToStringReadable) {
  Dnf f;
  f.probs = {0.5, 0.5};
  f.terms = {{0, 1}, {1}};
  EXPECT_EQ(f.ToString(), "x0.x1 v x1");
}

TEST(BruteForceTest, Example7XYvXZ) {
  // F = XY v XZ: P = pq + pr - pqr (Example 7 with p=q=r values).
  Dnf f;
  f.probs = {0.5, 0.4, 0.3};  // X, Y, Z
  f.terms = {{0, 1}, {0, 2}};
  auto prob = BruteForceProbability(f);
  ASSERT_TRUE(prob.ok());
  double p = 0.5, q = 0.4, r = 0.3;
  EXPECT_NEAR(*prob, p * q + p * r - p * q * r, 1e-12);
}

TEST(BruteForceTest, Example9Dissociation) {
  // F' = X'Y v X''Z: P = 1 - (1-pq)(1-pr) = pq + pr - p^2 qr, an upper
  // bound on Example 7's F (Theorem 8).
  Dnf f;
  f.probs = {0.5, 0.4, 0.5, 0.3};  // X', Y, X'', Z
  f.terms = {{0, 1}, {2, 3}};
  auto prob = BruteForceProbability(f);
  ASSERT_TRUE(prob.ok());
  double p = 0.5, q = 0.4, r = 0.3;
  EXPECT_NEAR(*prob, p * q + p * r - p * p * q * r, 1e-12);
  EXPECT_GE(*prob, p * q + p * r - p * q * r);
}

TEST(BruteForceTest, NonExampleDissociationCanViolateBounds) {
  // Example 9's caveat: F' = X'X'' dissociates F = X but P(F') = p^2 < p.
  // (Two dissociations of one variable in the same prime implicant.)
  Dnf f;
  f.probs = {0.5};
  f.terms = {{0}};
  Dnf fp;
  fp.probs = {0.5, 0.5};
  fp.terms = {{0, 1}};
  auto p = BruteForceProbability(f);
  auto pp = BruteForceProbability(fp);
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(pp.ok());
  EXPECT_LT(*pp, *p);
}

TEST(BruteForceTest, TooManyVariablesRejected) {
  Dnf f;
  f.probs.assign(26, 0.5);
  f.terms = {{0}};
  EXPECT_FALSE(BruteForceProbability(f).ok());
}

}  // namespace
}  // namespace dissodb
