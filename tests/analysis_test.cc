// Unit tests for query graph analysis: connectivity, hierarchy (Def. 1),
// separators, FD closure, schema knowledge extraction.
#include <gtest/gtest.h>

#include "src/query/analysis.h"
#include "src/workload/synthetic.h"
#include "tests/test_util.h"

namespace dissodb {
namespace {

using testing_util::AddTable;
using testing_util::Q;
using testing_util::Vars;

std::vector<WorkAtom> Atoms(const ConjunctiveQuery& q) {
  SchemaKnowledge none = SchemaKnowledge::None(q);
  return MakeWorkAtoms(q, none);
}

TEST(HierarchyTest, PaperExampleHierarchical) {
  // q1 :- R(x,y), S(y,z), T(y,z,u) is hierarchical (Section 2).
  EXPECT_TRUE(IsHierarchical(Q("q() :- R(x,y), S(y,z), T(y,z,u)")));
}

TEST(HierarchyTest, PaperExampleNonHierarchical) {
  // q2 :- R(x,y), S(y,z), T(z,u) is not hierarchical (y and z overlap).
  EXPECT_FALSE(IsHierarchical(Q("q() :- R(x,y), S(y,z), T(z,u)")));
}

TEST(HierarchyTest, SingleAtomIsHierarchical) {
  EXPECT_TRUE(IsHierarchical(Q("q() :- R(x,y,z)")));
}

TEST(HierarchyTest, ClassicUnsafeRST) {
  // The canonical #P-hard query R(x), S(x,y), T(y).
  EXPECT_FALSE(IsHierarchical(Q("q() :- R(x), S(x,y), T(y)")));
}

TEST(HierarchyTest, HeadVariablesDoNotCount) {
  // With y as head variable, only x is existential: hierarchical.
  EXPECT_TRUE(IsHierarchical(Q("q(y) :- R(x), S(x,y), T(y)")));
}

TEST(HierarchyTest, DisconnectedHierarchical) {
  EXPECT_TRUE(IsHierarchical(Q("q() :- R(x), S(y)")));
}

TEST(HierarchyTest, ChainQueriesSafeOnlyAtLengthTwo) {
  // The 2-chain has a single existential variable and is safe (Figure 2
  // lists exactly one plan for it); longer chains are #P-hard.
  EXPECT_TRUE(IsHierarchical(MakeChainQuery(2)));
  EXPECT_FALSE(IsHierarchical(MakeChainQuery(3)));
  EXPECT_FALSE(IsHierarchical(MakeChainQuery(5)));
}

TEST(HierarchyTest, StarQueriesUnsafe) {
  EXPECT_FALSE(IsHierarchical(MakeStarQuery(2)));
  EXPECT_FALSE(IsHierarchical(MakeStarQuery(4)));
}

TEST(ConnectivityTest, ComponentsViaExistentialVars) {
  auto q = Q("q() :- R(x,y), S(z,u), T(u,v)");
  auto atoms = Atoms(q);
  auto comps = ConnectedComponents(atoms, q.EVarMask());
  ASSERT_EQ(comps.size(), 2u);
  EXPECT_EQ(comps[0], (std::vector<int>{0}));
  EXPECT_EQ(comps[1], (std::vector<int>{1, 2}));
}

TEST(ConnectivityTest, HeadVarsDoNotConnect) {
  auto q = Q("q(x) :- R(x,y), S(x,z)");
  auto atoms = Atoms(q);
  // Connect only through existential variables: y, z do not join the atoms.
  EXPECT_EQ(ConnectedComponents(atoms, q.EVarMask()).size(), 2u);
  // Through all variables they are connected.
  EXPECT_TRUE(IsConnected(atoms, q.AllVarsMask()));
}

TEST(ConnectivityTest, SingleAtomConnected) {
  auto q = Q("q() :- R(x)");
  auto atoms = Atoms(q);
  EXPECT_TRUE(IsConnected(atoms, q.EVarMask()));
}

TEST(SeparatorTest, SeparatorOfSimpleJoin) {
  auto q = Q("q() :- R(x), S(x,y)");
  auto atoms = Atoms(q);
  EXPECT_EQ(SeparatorVars(atoms, q.EVarMask()), Vars(q, {"x"}));
}

TEST(SeparatorTest, NoSeparatorForChain) {
  auto q = Q("q() :- R(x), S(x,y), T(y)");
  auto atoms = Atoms(q);
  EXPECT_EQ(SeparatorVars(atoms, q.EVarMask()), 0u);
}

TEST(FDClosureTest, TransitiveClosure) {
  // x -> y, y -> z.
  auto q = Q("q() :- R(x,y,z)");
  std::vector<QueryFD> fds = {
      {Vars(q, {"x"}), Vars(q, {"y"})},
      {Vars(q, {"y"}), Vars(q, {"z"})},
  };
  EXPECT_EQ(FDClosure(Vars(q, {"x"}), fds), Vars(q, {"x", "y", "z"}));
  EXPECT_EQ(FDClosure(Vars(q, {"y"}), fds), Vars(q, {"y", "z"}));
  EXPECT_EQ(FDClosure(Vars(q, {"z"}), fds), Vars(q, {"z"}));
}

TEST(FDClosureTest, CompositeLhsNeedsAllVars) {
  auto q = Q("q() :- R(x,y,z)");
  std::vector<QueryFD> fds = {{Vars(q, {"x", "y"}), Vars(q, {"z"})}};
  EXPECT_EQ(FDClosure(Vars(q, {"x"}), fds), Vars(q, {"x"}));
  EXPECT_EQ(FDClosure(Vars(q, {"x", "y"}), fds), Vars(q, {"x", "y", "z"}));
}

TEST(SchemaKnowledgeTest, FromDatabaseReadsDeterministicFlags) {
  auto q = Q("q() :- R(x), T(x)");
  Database db;
  AddTable(&db, "R", 1, {});
  {
    Table t(RelationSchema::AllInt64("T", 1, /*deterministic=*/true));
    auto r = db.AddTable(std::move(t));
    ASSERT_TRUE(r.ok());
  }
  auto sk = SchemaKnowledge::FromDatabase(q, db);
  ASSERT_TRUE(sk.ok());
  EXPECT_FALSE(sk->IsDeterministic(0));
  EXPECT_TRUE(sk->IsDeterministic(1));
}

TEST(SchemaKnowledgeTest, FromDatabaseLiftsFDsToVariables) {
  auto q = Q("q() :- S(x,y)");
  Database db;
  RelationSchema s = RelationSchema::AllInt64("S", 2);
  s.fds.push_back(FunctionalDependency{{0}, {1}});
  auto r = db.AddTable(Table(s));
  ASSERT_TRUE(r.ok());
  auto sk = SchemaKnowledge::FromDatabase(q, db);
  ASSERT_TRUE(sk.ok());
  ASSERT_EQ(sk->fds.size(), 1u);
  EXPECT_EQ(sk->fds[0].lhs, Vars(*&const_cast<ConjunctiveQuery&>(q), {"x"}));
  EXPECT_EQ(sk->fds[0].rhs, Vars(q, {"y"}));
}

TEST(SchemaKnowledgeTest, ConstantLhsPositionMakesFdStronger) {
  // R('a', y) with FD {0}->{1}: position 0 is fixed by the atom, so the FD
  // lifts to {} -> {y}, i.e. y is determined.
  StringPool pool;
  auto q = Q("q() :- R('a', y), S(y)", &pool);
  Database db;
  RelationSchema r;
  r.name = "R";
  r.column_names = {"c0", "c1"};
  r.column_types = {ValueType::kString, ValueType::kInt64};
  r.fds.push_back(FunctionalDependency{{0}, {1}});
  auto add = db.AddTable(Table(r));
  ASSERT_TRUE(add.ok());
  AddTable(&db, "S", 1, {});
  auto sk = SchemaKnowledge::FromDatabase(q, db);
  ASSERT_TRUE(sk.ok());
  ASSERT_EQ(sk->fds.size(), 1u);
  EXPECT_EQ(sk->fds[0].lhs, 0u);
  EXPECT_EQ(sk->fds[0].rhs, Vars(q, {"y"}));
}

TEST(SchemaKnowledgeTest, ArityMismatchRejected) {
  auto q = Q("q() :- R(x,y)");
  Database db;
  AddTable(&db, "R", 1, {});
  EXPECT_FALSE(SchemaKnowledge::FromDatabase(q, db).ok());
}

}  // namespace
}  // namespace dissodb
