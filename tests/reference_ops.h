// Naive row-at-a-time reference implementations of the relational
// operators, kept deliberately simple (nested loops, std::map grouping) so
// the vectorized columnar operators in src/exec can be checked against them
// on random instances. These mirror the extensional semantics of Def. 4:
// joins multiply scores, independent projection combines as 1 - prod(1-s),
// distinct projection forces 1, MinMerge takes per-row minima.
#ifndef DISSODB_TESTS_REFERENCE_OPS_H_
#define DISSODB_TESTS_REFERENCE_OPS_H_

#include <algorithm>
#include <map>
#include <vector>

#include "src/exec/rel.h"
#include "src/query/cq.h"

namespace dissodb {
namespace testing_util {

/// A reference relation: materialized rows in canonical (ascending VarId)
/// column order plus scores.
struct RefRel {
  std::vector<VarId> vars;
  std::vector<std::vector<Value>> rows;
  std::vector<double> scores;
};

inline RefRel ToRef(const Rel& r) {
  RefRel out;
  out.vars = r.vars();
  for (size_t i = 0; i < r.NumRows(); ++i) {
    std::vector<Value> row(r.arity());
    for (int c = 0; c < r.arity(); ++c) row[c] = r.At(i, c);
    out.rows.push_back(std::move(row));
    out.scores.push_back(r.Score(i));
  }
  return out;
}

/// Sorted (row, score) pairs for order-insensitive comparison.
inline std::vector<std::pair<std::vector<Value>, double>> Canonical(
    const RefRel& r) {
  std::vector<std::pair<std::vector<Value>, double>> out;
  for (size_t i = 0; i < r.rows.size(); ++i) {
    out.emplace_back(r.rows[i], r.scores[i]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

inline int RefColIndex(const RefRel& r, VarId v) {
  auto it = std::lower_bound(r.vars.begin(), r.vars.end(), v);
  if (it == r.vars.end() || *it != v) return -1;
  return static_cast<int>(it - r.vars.begin());
}

/// Nested-loop natural join; scores multiply.
inline RefRel RefJoin(const RefRel& a, const RefRel& b) {
  VarMask ma = 0, mb = 0;
  for (VarId v : a.vars) ma |= MaskOf(v);
  for (VarId v : b.vars) mb |= MaskOf(v);
  std::vector<VarId> shared = MaskToVars(ma & mb);
  RefRel out;
  out.vars = MaskToVars(ma | mb);
  for (size_t i = 0; i < a.rows.size(); ++i) {
    for (size_t j = 0; j < b.rows.size(); ++j) {
      bool match = true;
      for (VarId v : shared) {
        if (a.rows[i][RefColIndex(a, v)] != b.rows[j][RefColIndex(b, v)]) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      std::vector<Value> row;
      for (VarId v : out.vars) {
        int ca = RefColIndex(a, v);
        row.push_back(ca >= 0 ? a.rows[i][ca] : b.rows[j][RefColIndex(b, v)]);
      }
      out.rows.push_back(std::move(row));
      out.scores.push_back(a.scores[i] * b.scores[j]);
    }
  }
  return out;
}

/// Projection with duplicate elimination; `independent` combines scores as
/// 1 - prod(1 - s), otherwise scores are forced to 1 (distinct).
inline RefRel RefProject(const RefRel& in, VarMask keep, bool independent) {
  RefRel out;
  out.vars = MaskToVars(keep);
  std::map<std::vector<Value>, double> groups;  // key -> prod(1 - s)
  std::vector<std::vector<Value>> order;
  for (size_t i = 0; i < in.rows.size(); ++i) {
    std::vector<Value> key;
    for (VarId v : out.vars) key.push_back(in.rows[i][RefColIndex(in, v)]);
    auto [it, inserted] = groups.try_emplace(key, 1.0);
    if (inserted) order.push_back(key);
    it->second *= 1.0 - in.scores[i];
  }
  for (const auto& key : order) {
    out.rows.push_back(key);
    out.scores.push_back(independent ? 1.0 - groups[key] : 1.0);
  }
  return out;
}

/// Per-row minimum across inputs over the same variable set.
inline RefRel RefMinMerge(const std::vector<RefRel>& inputs) {
  RefRel out;
  out.vars = inputs[0].vars;
  std::map<std::vector<Value>, double> best;
  std::vector<std::vector<Value>> order;
  for (const auto& in : inputs) {
    for (size_t i = 0; i < in.rows.size(); ++i) {
      auto [it, inserted] = best.try_emplace(in.rows[i], in.scores[i]);
      if (inserted) {
        order.push_back(in.rows[i]);
      } else {
        it->second = std::min(it->second, in.scores[i]);
      }
    }
  }
  for (const auto& key : order) {
    out.rows.push_back(key);
    out.scores.push_back(best[key]);
  }
  return out;
}

}  // namespace testing_util
}  // namespace dissodb

#endif  // DISSODB_TESTS_REFERENCE_OPS_H_
