// Unit tests for dissociations: validation, partial orders, materialization
// (Definition 10, Example 11), plan <-> dissociation mappings (Theorem 18).
#include <gtest/gtest.h>

#include <algorithm>

#include "src/dissociation/dissociation.h"
#include "src/plan/plan_print.h"
#include "tests/test_util.h"

namespace dissodb {
namespace {

using testing_util::AddTable;
using testing_util::Q;
using testing_util::Vars;

TEST(DissociationTest, EmptyAndTop) {
  auto q = Q("q() :- R(x), S(x,y)");
  Dissociation empty = Dissociation::Empty(q);
  EXPECT_TRUE(empty.IsEmpty());
  Dissociation top = Dissociation::Top(q);
  EXPECT_EQ(top.extra[0], Vars(q, {"y"}));  // R gains y
  EXPECT_EQ(top.extra[1], 0u);              // S already has all evars
}

TEST(DissociationTest, ValidateRejectsOwnVariable) {
  auto q = Q("q() :- R(x), S(x,y)");
  Dissociation d = Dissociation::Empty(q);
  d.extra[0] = Vars(q, {"x"});  // R already contains x
  EXPECT_FALSE(ValidateDissociation(q, d).ok());
}

TEST(DissociationTest, ValidateRejectsHeadVariable) {
  auto q = Q("q(z) :- R(z,x), S(x,y)");
  Dissociation d = Dissociation::Empty(q);
  d.extra[1] = Vars(q, {"z"});  // z is a head variable
  EXPECT_FALSE(ValidateDissociation(q, d).ok());
}

TEST(DissociationTest, PartialOrder) {
  auto q = Q("q() :- R(x), S(x,y), T(y)");
  Dissociation bottom = Dissociation::Empty(q);
  Dissociation mid = Dissociation::Empty(q);
  mid.extra[0] = Vars(q, {"y"});
  Dissociation top = Dissociation::Top(q);
  EXPECT_TRUE(DissociationLeq(bottom, mid));
  EXPECT_TRUE(DissociationLeq(mid, top));
  EXPECT_TRUE(DissociationLeq(bottom, top));
  EXPECT_FALSE(DissociationLeq(mid, bottom));
  Dissociation other = Dissociation::Empty(q);
  other.extra[2] = Vars(q, {"x"});
  EXPECT_FALSE(DissociationLeq(mid, other));
  EXPECT_FALSE(DissociationLeq(other, mid));
}

TEST(DissociationTest, ProbabilisticPreorderIgnoresDeterministicAtoms) {
  auto q = Q("q() :- R(x), S(x,y), T(y)");
  SchemaKnowledge sk = SchemaKnowledge::None(q);
  sk.deterministic = {false, false, true};  // T^d
  Dissociation d1 = Dissociation::Empty(q);
  d1.extra[2] = Vars(q, {"x"});  // dissociates only T^d
  Dissociation d0 = Dissociation::Empty(q);
  // Under <=p, d1 and d0 are equivalent (Lemma 22).
  EXPECT_TRUE(DissociationLeqP(q, sk, d0, d1));
  EXPECT_TRUE(DissociationLeqP(q, sk, d1, d0));
  // Under the plain order they are not.
  EXPECT_FALSE(DissociationLeq(d1, d0));
}

TEST(DissociationTest, PreorderQuotientsByFDClosure) {
  // With x -> y on S, dissociating R on y is "free" (Lemma 25).
  auto q = Q("q() :- R(x), S(x,y), T(y)");
  SchemaKnowledge sk = SchemaKnowledge::None(q);
  sk.fds.push_back(QueryFD{Vars(q, {"x"}), Vars(q, {"y"})});
  Dissociation d = Dissociation::Empty(q);
  d.extra[0] = Vars(q, {"y"});  // R^y: y in closure(x)
  EXPECT_TRUE(DissociationLeqP(q, sk, d, Dissociation::Empty(q)));
  EXPECT_TRUE(DissociationLeqP(q, sk, Dissociation::Empty(q), d));
}

TEST(DissociationTest, SafeDissociationDetection) {
  auto q = Q("q() :- R(x), S(x,y), T(y)");  // unsafe as-is
  EXPECT_FALSE(IsSafeDissociation(q, Dissociation::Empty(q)));
  Dissociation d = Dissociation::Empty(q);
  d.extra[2] = Vars(q, {"x"});  // T^x: hierarchical
  EXPECT_TRUE(IsSafeDissociation(q, d));
  EXPECT_TRUE(IsSafeDissociation(q, Dissociation::Top(q)));
}

TEST(DissociationTest, SafeUnsafeCanToggleUpTheLattice) {
  // Paper Section 3.1: q :- R(x), S(x), T(y) is safe; dissociating S on y
  // makes it unsafe; also dissociating T on x makes it safe again.
  auto q = Q("q() :- R(x), S(x), T(y)");
  EXPECT_TRUE(IsSafeDissociation(q, Dissociation::Empty(q)));
  Dissociation d1 = Dissociation::Empty(q);
  d1.extra[1] = Vars(q, {"y"});
  EXPECT_FALSE(IsSafeDissociation(q, d1));
  Dissociation d2 = d1;
  d2.extra[2] = Vars(q, {"x"});
  EXPECT_TRUE(IsSafeDissociation(q, d2));
}

TEST(MaterializeTest, Example11) {
  // q :- R(x), S(x,y) with R = {1,2}, S = {(1,4),(1,5)};
  // Delta = ({y}, {}) gives R^y = {1,2} x {4,5} (Example 11).
  auto q = Q("q() :- R(x), S(x,y)");
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.5}, {{2}, 0.6}});
  AddTable(&db, "S", 2, {{{1, 4}, 0.7}, {{1, 5}, 0.8}});
  Dissociation d = Dissociation::Empty(q);
  d.extra[0] = Vars(q, {"y"});
  auto mat = MaterializeDissociation(db, q, d);
  ASSERT_TRUE(mat.ok()) << mat.status().ToString();
  auto rd = mat->db.GetTable("R__d0");
  ASSERT_TRUE(rd.ok());
  EXPECT_EQ((*rd)->NumRows(), 4u);  // {1,2} x ADom(y)={4,5}
  EXPECT_EQ((*rd)->arity(), 2);
  // Probabilities copy the original tuple's probability.
  for (size_t r = 0; r < (*rd)->NumRows(); ++r) {
    double p = (*rd)->Prob(r);
    EXPECT_TRUE(p == 0.5 || p == 0.6);
  }
  // The dissociated query uses the new relations and extends the terms.
  EXPECT_EQ(mat->query.atom(0).relation, "R__d0");
  EXPECT_EQ(mat->query.atom(0).arity(), 2);
  EXPECT_EQ(mat->query.atom(1).relation, "S__d1");
  EXPECT_EQ(mat->query.atom(1).arity(), 2);
}

TEST(MaterializeTest, EmptyDissociationCopiesTables) {
  auto q = Q("q() :- R(x)");
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.5}});
  auto mat = MaterializeDissociation(db, q, Dissociation::Empty(q));
  ASSERT_TRUE(mat.ok());
  auto rd = mat->db.GetTable("R__d0");
  ASSERT_TRUE(rd.ok());
  EXPECT_EQ((*rd)->NumRows(), 1u);
  EXPECT_EQ((*rd)->arity(), 1);
}

TEST(MaterializeTest, BlowupGuard) {
  auto q = Q("q() :- R(x), S(x,y)");
  Database db;
  Table r(RelationSchema::AllInt64("R", 1));
  Table s(RelationSchema::AllInt64("S", 2));
  for (int i = 0; i < 1000; ++i) {
    r.AddRow({Value::Int64(i)}, 0.5);
    s.AddRow({Value::Int64(i), Value::Int64(i)}, 0.5);
  }
  ASSERT_TRUE(db.AddTable(std::move(r)).ok());
  ASSERT_TRUE(db.AddTable(std::move(s)).ok());
  Dissociation d = Dissociation::Empty(q);
  d.extra[0] = Vars(q, {"y"});
  auto mat = MaterializeDissociation(db, q, d, /*max_rows=*/100);
  EXPECT_FALSE(mat.ok());
  EXPECT_EQ(mat.status().code(), Status::Code::kOutOfRange);
}

TEST(SafePlanTest, SafeQueryGetsUniquePlanShape) {
  // q1(z) :- R(z,x), S(x,y), K(x,y): safe; plan P1 from the paper's intro:
  // pi_z( R(z,x) |x| pi_x( S |x,y| K ) ).
  auto q = Q("q1(z) :- R(z,x), S(x,y), K(x,y)");
  auto plan = SafePlanForQuery(q);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(IsSafePlan(*plan, q.HeadMask()));
  std::string s = PlanToString(*plan, q);
  EXPECT_NE(s.find("pi_{-x}"), std::string::npos);
  EXPECT_NE(s.find("pi_{-y}"), std::string::npos);
}

TEST(SafePlanTest, UnsafeQueryRejected) {
  auto q = Q("q() :- R(x), S(x,y), T(y)");
  auto plan = SafePlanForQuery(q);
  EXPECT_FALSE(plan.ok());
}

TEST(SafePlanTest, SafeDissociationYieldsSafePlanWithVirtualVars) {
  auto q = Q("q() :- R(x), S(x,y), T(y)");
  Dissociation d = Dissociation::Empty(q);
  d.extra[2] = Vars(q, {"x"});  // T^x
  auto plan = SafePlanForDissociation(q, d);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(IsSafePlan(*plan));
  // Round trip: extracting the dissociation from the plan returns d.
  Dissociation back = ExtractDissociation(*plan, q);
  EXPECT_EQ(back, d);
}

TEST(ExtractTest, TopDissociationFromJoinAllPlan) {
  auto q = Q("q() :- R(x), S(x,y), T(y)");
  // pi_{}(Join[R,S,T]) joins on all variables: the top dissociation.
  PlanPtr p = MakeProject(
      0, MakeJoin({MakeScan(0, q.AtomMask(0)), MakeScan(1, q.AtomMask(1)),
                   MakeScan(2, q.AtomMask(2))}));
  Dissociation d = ExtractDissociation(p, q);
  EXPECT_EQ(d, Dissociation::Top(q));
}

TEST(ExtractTest, HeadVariablesNeverDissociate) {
  // P''2 from the intro: pi_z((pi_{zy}(R |x| S)) |y| T). T misses z but z is
  // a head variable, so T must not dissociate on it.
  auto q = Q("q2(z) :- R(z,x), S(x,y), T(y)");
  PlanPtr inner = MakeProject(
      Vars(q, {"z", "y"}),
      MakeJoin({MakeScan(0, q.AtomMask(0)), MakeScan(1, q.AtomMask(1))}));
  PlanPtr p = MakeProject(Vars(q, {"z"}),
                          MakeJoin({inner, MakeScan(2, q.AtomMask(2))}));
  Dissociation d = ExtractDissociation(p, q);
  EXPECT_EQ(d.extra[2], 0u);               // T untouched
  EXPECT_EQ(d.extra[0], Vars(q, {"y"}));   // R' gains y
  EXPECT_EQ(d.extra[1], 0u);
  EXPECT_TRUE(ValidateDissociation(q, d).ok());
}

}  // namespace
}  // namespace dissodb
