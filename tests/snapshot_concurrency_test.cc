// Concurrent readers-while-writing: the supported serving scenario of the
// snapshot-isolated Database API, run under the CI tsan job.
//
// N reader threads execute (synchronously and via Submit) against
// snapshots while a writer thread commits row appends and probability
// scalings. Assertions:
//   - a pinned snapshot returns bit-identical rankings across commits,
//   - every result observed against a fresh snapshot matches the
//     per-version reference ranking recorded right after the publishing
//     commit — readers never see a half-published state,
//   - the version-stale result-cache sweep runs concurrently with all of
//     the above without disturbing either.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/engine/query_engine.h"
#include "src/storage/database.h"
#include "src/storage/snapshot.h"
#include "tests/test_util.h"

namespace dissodb {
namespace {

using testing_util::AddTable;

Value I(int64_t v) { return Value::Int64(v); }

void ExpectBitIdentical(const std::vector<RankedAnswer>& a,
                        const std::vector<RankedAnswer>& b,
                        const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tuple, b[i].tuple) << what << " row " << i;
    EXPECT_EQ(a[i].score, b[i].score) << what << " row " << i;
  }
}

Database MakeServingDatabase() {
  Database db;
  std::vector<std::pair<std::vector<int64_t>, double>> r_rows;
  for (int64_t x = 0; x < 8; ++x) {
    r_rows.push_back({{x, x % 4}, 0.2 + 0.08 * static_cast<double>(x)});
  }
  AddTable(&db, "R", 2, r_rows);
  AddTable(&db, "S", 1, {{{0}, 0.9}, {{1}, 0.8}, {{2}, 0.7}, {{3}, 0.6}});
  return db;
}

TEST(SnapshotConcurrencyTest, PinnedSnapshotIsBitIdenticalUnderCommits) {
  Database db = MakeServingDatabase();
  EngineOptions opts;
  opts.num_threads = 4;
  QueryEngine engine = QueryEngine::Borrow(db, opts);
  auto prepared = engine.Prepare("q(x) :- R(x,y), S(y)");
  ASSERT_TRUE(prepared.ok());

  Snapshot pinned = db.snapshot();
  auto baseline = engine.Execute(*prepared, {}, pinned);
  ASSERT_TRUE(baseline.ok());
  ASSERT_FALSE(baseline->answers.empty());

  constexpr int kReaders = 4;
  constexpr int kCommits = 24;
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    for (int k = 0; k < kCommits; ++k) {
      Database::Writer w = db.BeginWrite();
      w.AppendRow(0, std::vector<Value>{I(100 + k), I(k % 4)}, 0.5);
      if (k % 3 == 0) w.ScaleProbabilities(0.995);
      w.Commit();
    }
    stop.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      int round = 0;
      while (!stop.load(std::memory_order_acquire) || round < 4) {
        if (t % 2 == 0) {
          auto r = engine.Execute(*prepared, {}, pinned);
          ASSERT_TRUE(r.ok()) << r.status().ToString();
          ExpectBitIdentical(r->answers, baseline->answers, "sync pinned");
        } else {
          // Async path: pooled execution sharing subplans through the
          // result cache under the pinned snapshot's version stamp.
          auto fut = engine.Submit(*prepared, {}, pinned);
          auto r = fut.get();
          ASSERT_TRUE(r.ok()) << r.status().ToString();
          ExpectBitIdentical(r->answers, baseline->answers, "submit pinned");
        }
        ++round;
      }
    });
  }
  writer.join();
  for (auto& th : readers) th.join();

  // The pinned snapshot still reads its original state...
  EXPECT_EQ(pinned.table(0).NumRows(), 8u);
  // ...while the live head took every commit.
  EXPECT_EQ(db.table(0).NumRows(), 8u + kCommits);

  // Sweep semantics end-to-end: the Submit readers populated the result
  // cache under the pinned version; while the snapshot is held, commits
  // must not sweep those entries.
  ASSERT_GT(engine.stats().result_cache_entries, 0u);
  db.ScaleProbabilities(0.999);
  EXPECT_EQ(engine.stats().result_cache_stale_evictions, 0u);
  EXPECT_GT(engine.stats().result_cache_entries, 0u);

  // Once every handle drops, commits sweep them. Release is *eventual*:
  // a pool worker may still be tearing down the last task's captured
  // snapshot for a moment after its future resolved, so a commit landing
  // inside that window legitimately keeps the version alive — retry.
  pinned = Snapshot();
  bool swept = false;
  for (int i = 0; i < 100 && !swept; ++i) {
    db.ScaleProbabilities(0.999);
    swept = engine.stats().result_cache_entries == 0;
    if (!swept) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(swept) << "stale entries survived 100 commits after the last "
                        "snapshot handle dropped";
  EXPECT_GT(engine.stats().result_cache_stale_evictions, 0u);
}

TEST(SnapshotConcurrencyTest, ReadersSeeOnlyFullyPublishedVersions) {
  Database db = MakeServingDatabase();
  EngineOptions opts;
  opts.num_threads = 4;
  QueryEngine engine = QueryEngine::Borrow(db, opts);
  auto prepared = engine.Prepare("q(x) :- R(x,y), S(y)");
  ASSERT_TRUE(prepared.ok());

  // Reference rankings per published version, recorded by whoever publishes
  // (initially here, then the writer thread after each commit).
  std::mutex ref_mu;
  std::map<uint64_t, std::vector<RankedAnswer>> reference;
  auto record = [&] {
    Snapshot s = db.snapshot();
    auto r = engine.Execute(*prepared, {}, s);
    ASSERT_TRUE(r.ok());
    std::lock_guard lock(ref_mu);
    reference.emplace(s.version(), r->answers);
  };
  record();

  constexpr int kReaders = 4;
  constexpr int kCommits = 16;
  std::atomic<bool> stop{false};
  std::atomic<size_t> verified{0};

  std::thread writer([&] {
    for (int k = 0; k < kCommits; ++k) {
      {
        Database::Writer w = db.BeginWrite();
        w.AppendRow(0, std::vector<Value>{I(200 + k), I(k % 4)}, 0.4);
        if (k % 4 == 1) w.ScaleProbabilities(0.99);
        w.Commit();
      }
      record();
    }
    stop.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      int round = 0;
      while (!stop.load(std::memory_order_acquire) || round < 4) {
        Snapshot s = db.snapshot();
        auto r = engine.Execute(*prepared, {}, s);
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        std::vector<RankedAnswer> expected;
        bool have = false;
        {
          std::lock_guard lock(ref_mu);
          auto it = reference.find(s.version());
          if (it != reference.end()) {
            expected = it->second;
            have = true;
          }
        }
        // The reference for this version may not be recorded yet (the
        // writer records after Commit returns); when it is, the reader's
        // result must be bit-identical — i.e. the snapshot was a fully
        // published state, never a torn one.
        if (have) {
          ExpectBitIdentical(r->answers, expected, "per-version reference");
          verified.fetch_add(1, std::memory_order_relaxed);
        }
        ++round;
      }
    });
  }
  writer.join();
  for (auto& th : readers) th.join();
  EXPECT_GT(verified.load(), 0u);
}

TEST(SnapshotConcurrencyTest, ConcurrentWritersSerializeCleanly) {
  Database db = MakeServingDatabase();
  constexpr int kWriters = 4;
  constexpr int kCommitsEach = 8;
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&db, t] {
      for (int k = 0; k < kCommitsEach; ++k) {
        Database::Writer w = db.BeginWrite();
        w.AppendRow(0, std::vector<Value>{I(1000 + t * 100 + k), I(k % 4)},
                    0.5);
        w.Commit();
      }
    });
  }
  for (auto& th : writers) th.join();
  EXPECT_EQ(db.table(0).NumRows(), 8u + kWriters * kCommitsEach);
  // Every commit bumped the version exactly once.
  EXPECT_EQ(db.version(), 2u + kWriters * kCommitsEach);
}

}  // namespace
}  // namespace dissodb
