// Tests for the exact WMC engine against hand-computed values and the
// brute-force reference on random formulas.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/infer/exact.h"
#include "src/lineage/formula.h"

namespace dissodb {
namespace {

Dnf RandomDnf(Rng* rng, int max_vars, int max_terms, int max_len) {
  Dnf f;
  const int n = 1 + static_cast<int>(rng->NextBounded(max_vars));
  for (int v = 0; v < n; ++v) f.probs.push_back(rng->NextDouble());
  const int t = 1 + static_cast<int>(rng->NextBounded(max_terms));
  for (int i = 0; i < t; ++i) {
    std::vector<int> term;
    const int len = 1 + static_cast<int>(rng->NextBounded(max_len));
    for (int j = 0; j < len; ++j) {
      term.push_back(static_cast<int>(rng->NextBounded(n)));
    }
    f.terms.push_back(std::move(term));
  }
  f.Normalize();
  return f;
}

TEST(ExactTest, SingleTermIsProduct) {
  Dnf f;
  f.probs = {0.5, 0.25};
  f.terms = {{0, 1}};
  auto p = ExactDnfProbability(f);
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(*p, 0.125);
}

TEST(ExactTest, Example7) {
  Dnf f;
  f.probs = {0.5, 0.4, 0.3};
  f.terms = {{0, 1}, {0, 2}};
  auto p = ExactDnfProbability(f);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, 0.5 * 0.4 + 0.5 * 0.3 - 0.5 * 0.4 * 0.3, 1e-12);
}

TEST(ExactTest, IndependentTermsDecompose) {
  Dnf f;
  f.probs = {0.5, 0.5, 0.5, 0.5};
  f.terms = {{0, 1}, {2, 3}};
  auto p = ExactDnfProbability(f);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, 1.0 - (1.0 - 0.25) * (1.0 - 0.25), 1e-12);
  EXPECT_GE(LastWmcStats().components_split, 1u);
}

TEST(ExactTest, EmptyFormulaAndEmptyTerm) {
  Dnf f;
  auto p = ExactDnfProbability(f);
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(*p, 0.0);
  f.probs = {0.5};
  f.terms = {{}};
  p = ExactDnfProbability(f);
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(*p, 1.0);
}

TEST(ExactTest, ZeroAndOneProbabilitiesSimplify) {
  Dnf f;
  f.probs = {0.0, 1.0, 0.5};
  // First term dead (p=0 var); second term reduces to x2 alone.
  f.terms = {{0, 2}, {1, 2}};
  auto p = ExactDnfProbability(f);
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(*p, 0.5);
}

TEST(ExactTest, AbsorptionOfSubsumedTerms) {
  Dnf f;
  f.probs = {0.5, 0.5};
  f.terms = {{0}, {0, 1}};  // {0,1} absorbed by {0}
  auto p = ExactDnfProbability(f);
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(*p, 0.5);
}

TEST(ExactTest, MatchesBruteForceOnRandomFormulas) {
  Rng rng(987654);
  for (int trial = 0; trial < 300; ++trial) {
    Dnf f = RandomDnf(&rng, 10, 8, 4);
    auto exact = ExactDnfProbability(f);
    auto brute = BruteForceProbability(f);
    ASSERT_TRUE(exact.ok());
    ASSERT_TRUE(brute.ok());
    EXPECT_NEAR(*exact, *brute, 1e-10) << f.ToString();
  }
}

TEST(ExactTest, MatchesBruteForceOnWiderFormulas) {
  Rng rng(13579);
  for (int trial = 0; trial < 50; ++trial) {
    Dnf f = RandomDnf(&rng, 20, 20, 5);
    auto exact = ExactDnfProbability(f);
    auto brute = BruteForceProbability(f);
    ASSERT_TRUE(exact.ok());
    ASSERT_TRUE(brute.ok());
    EXPECT_NEAR(*exact, *brute, 1e-10);
  }
}

TEST(ExactTest, HandlesManyIndependentBlocksQuickly) {
  // 40 independent two-variable blocks: decomposition makes this linear,
  // Shannon alone would take 2^40 steps.
  Dnf f;
  for (int b = 0; b < 40; ++b) {
    f.probs.push_back(0.5);
    f.probs.push_back(0.5);
    f.terms.push_back({2 * b, 2 * b + 1});
  }
  WmcOptions opts;
  opts.max_calls = 100000;
  auto p = ExactDnfProbability(f, opts);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, 1.0 - std::pow(0.75, 40), 1e-9);
}

TEST(ExactTest, BudgetGuardTriggers) {
  // A dense random formula with a tiny budget must fail cleanly.
  Rng rng(5);
  Dnf f = RandomDnf(&rng, 24, 40, 3);
  WmcOptions opts;
  opts.max_calls = 3;
  auto p = ExactDnfProbability(f, opts);
  EXPECT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), Status::Code::kOutOfRange);
}

TEST(ExactTest, MemoizationHitsOnRepeatedSubformulas) {
  // A ladder formula with heavy subformula sharing.
  Dnf f;
  const int n = 14;
  for (int i = 0; i < n; ++i) f.probs.push_back(0.5);
  for (int i = 0; i + 2 < n; ++i) f.terms.push_back({i, i + 1, i + 2});
  auto p = ExactDnfProbability(f);
  ASSERT_TRUE(p.ok());
  auto brute = BruteForceProbability(f);
  ASSERT_TRUE(brute.ok());
  EXPECT_NEAR(*p, *brute, 1e-10);
}

}  // namespace
}  // namespace dissodb
