// End-to-end integration tests: the TPC-H scenario (Setup 1) with ranking
// quality, plus the full facade on paper queries.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/dissociation/propagation.h"
#include "src/exec/deterministic.h"
#include "src/infer/query_inference.h"
#include "src/metrics/ap.h"
#include "src/plan/plan_print.h"
#include "src/plan/sql_gen.h"
#include "src/workload/tpch.h"
#include "tests/test_util.h"

namespace dissodb {
namespace {

using testing_util::Q;

std::vector<double> Align(const std::vector<RankedAnswer>& ref,
                          const std::vector<RankedAnswer>& scores) {
  return AlignScores(ref, scores);
}

TEST(TpchIntegrationTest, DissociationRanksAlmostExactly) {
  TpchOptions opts;
  opts.scale = 0.05;  // 500 suppliers, 10000 parts
  opts.pi_max = 0.4;
  Database db = MakeTpchDatabase(opts);
  ConjunctiveQuery q = TpchQuery();
  auto sel = MakeTpchSelections(db, 400, "%red%green%");
  ASSERT_TRUE(sel.ok());
  const auto& overrides = (*sel)->overrides;

  auto exact = ExactProbabilities(db, q, overrides);
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  ASSERT_GT(exact->size(), 3u);

  PropagationOptions popts;
  popts.opt3_semijoin_reduction = true;
  auto diss = PropagationScore(db, q, popts, overrides);
  ASSERT_TRUE(diss.ok());
  EXPECT_EQ(diss->num_minimal_plans, 2u);

  auto gt_scores = Align(*exact, *exact);
  auto diss_scores = Align(*exact, diss->answers);
  double ap = AveragePrecisionAtK(gt_scores, diss_scores);
  EXPECT_GT(ap, 0.95);  // the paper reports ~0.997 MAP for dissociation

  // Upper-bound property per answer.
  for (size_t i = 0; i < exact->size(); ++i) {
    EXPECT_GE(diss_scores[i], gt_scores[i] - 1e-9);
  }
}

TEST(TpchIntegrationTest, DissociationBeatsLineageRanking) {
  TpchOptions opts;
  opts.scale = 0.02;
  opts.pi_max = 0.5;
  opts.seed = 7;
  Database db = MakeTpchDatabase(opts);
  ConjunctiveQuery q = TpchQuery();
  auto sel = MakeTpchSelections(db, 150, "%red%");
  ASSERT_TRUE(sel.ok());
  const auto& overrides = (*sel)->overrides;

  auto lineage = ComputeLineage(db, q, overrides);
  ASSERT_TRUE(lineage.ok());
  auto exact = ExactFromLineage(*lineage);
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();

  auto diss = PropagationScore(db, q, {}, overrides);
  ASSERT_TRUE(diss.ok());
  auto lin_rank = LineageSizeRanking(*lineage);

  auto gt = Align(*exact, *exact);
  double ap_diss = AveragePrecisionAtK(gt, Align(*exact, diss->answers));
  double ap_lin = AveragePrecisionAtK(gt, Align(*exact, lin_rank));
  EXPECT_GE(ap_diss, ap_lin);
  EXPECT_GT(ap_diss, 0.9);
}

TEST(TpchIntegrationTest, DeterministicAnswersMatchProbabilisticSupport) {
  TpchOptions opts;
  opts.scale = 0.01;
  Database db = MakeTpchDatabase(opts);
  ConjunctiveQuery q = TpchQuery();
  auto sel = MakeTpchSelections(db, 50, "%red%");
  ASSERT_TRUE(sel.ok());
  auto det = EvaluateDeterministic(db, q, (*sel)->overrides);
  ASSERT_TRUE(det.ok());
  auto diss = PropagationScore(db, q, {}, (*sel)->overrides);
  ASSERT_TRUE(diss.ok());
  EXPECT_EQ(det->NumRows(), diss->answers.size());
}

TEST(TpchIntegrationTest, McRanksWorseOrEqualWithFewSamples) {
  TpchOptions opts;
  opts.scale = 0.01;
  opts.pi_max = 0.4;
  Database db = MakeTpchDatabase(opts);
  ConjunctiveQuery q = TpchQuery();
  auto sel = MakeTpchSelections(db, 100, "%red%green%");
  ASSERT_TRUE(sel.ok());
  auto lineage = ComputeLineage(db, q, (*sel)->overrides);
  ASSERT_TRUE(lineage.ok());
  auto exact = ExactFromLineage(*lineage);
  ASSERT_TRUE(exact.ok());
  auto gt = Align(*exact, *exact);

  auto diss = PropagationScore(db, q, {}, (*sel)->overrides);
  ASSERT_TRUE(diss.ok());
  double ap_diss = AveragePrecisionAtK(gt, Align(*exact, diss->answers));

  // MC(10) is noisy; average its AP over repetitions (as the paper does).
  MeanStd mc_ap;
  for (int rep = 0; rep < 5; ++rep) {
    Rng rng(1000 + rep);
    auto mc = McFromLineage(*lineage, 10, &rng);
    mc_ap.Add(AveragePrecisionAtK(gt, Align(*exact, mc)));
  }
  EXPECT_GE(ap_diss + 1e-9, mc_ap.mean());
}

TEST(FacadeTest, SqlGenerationForMinimalPlans) {
  Database db = MakeTpchDatabase({.scale = 0.005});
  ConjunctiveQuery q = TpchQuery();
  auto sk = SchemaKnowledge::FromDatabase(q, db);
  ASSERT_TRUE(sk.ok());
  auto plans = EnumerateMinimalPlans(q, *sk);
  ASSERT_TRUE(plans.ok());
  ASSERT_EQ(plans->size(), 2u);
  for (const auto& p : *plans) {
    std::string sql = PlanToSql(p, q, db);
    EXPECT_NE(sql.find("Supplier"), std::string::npos);
    EXPECT_NE(sql.find("Partsupp"), std::string::npos);
    EXPECT_NE(sql.find("Part"), std::string::npos);
    std::string printed = PlanToString(p, q);
    EXPECT_FALSE(printed.empty());
  }
}

TEST(FacadeTest, BooleanFacadeOnEmptyAnswer) {
  auto q = Q("q() :- R(x), S(x)");
  Database db;
  testing_util::AddTable(&db, "R", 1, {{{1}, 0.5}});
  testing_util::AddTable(&db, "S", 1, {{{2}, 0.5}});
  auto rho = PropagationScoreBoolean(db, q);
  ASSERT_TRUE(rho.ok());
  EXPECT_DOUBLE_EQ(*rho, 0.0);
}

TEST(FacadeTest, NonBooleanRejectedByBooleanFacade) {
  auto q = Q("q(x) :- R(x)");
  Database db;
  testing_util::AddTable(&db, "R", 1, {{{1}, 0.5}});
  EXPECT_FALSE(PropagationScoreBoolean(db, q).ok());
}

}  // namespace
}  // namespace dissodb
