// The project's strongest cross-validation suite. On random queries and
// random small instances:
//  (1) Corollary 19: every plan's score upper-bounds the exact probability;
//  (2) Definition 14 / Theorem 20: the propagation score equals the
//      brute-force minimum over ALL safe dissociations, where each
//      P(q^Delta) is computed independently by materializing D^Delta and
//      running exact WMC on its lineage;
//  (3) Proposition 6: safe queries are computed exactly by their unique plan;
//  (4) Theorem 18(2): score(P^Delta) == P(q^Delta) for every safe Delta;
//  (5) Proposition 21: the relative error vanishes as probabilities scale
//      down.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "src/dissociation/counting.h"
#include "src/dissociation/lattice.h"
#include "src/dissociation/minimal_plans.h"
#include "src/dissociation/propagation.h"
#include "src/exec/evaluator.h"
#include "src/infer/query_inference.h"
#include "src/workload/random_instance.h"
#include "tests/test_util.h"

namespace dissodb {
namespace {

using testing_util::Q;

std::map<std::vector<Value>, double> ToMap(
    const std::vector<RankedAnswer>& answers) {
  std::map<std::vector<Value>, double> m;
  for (const auto& a : answers) m[a.tuple] = a.score;
  return m;
}

TEST(BoundsPropertyTest, EveryPlanUpperBoundsExactProbability) {
  Rng rng(20150601);
  RandomQuerySpec qspec;
  qspec.max_atoms = 4;
  qspec.max_vars = 4;
  int plans_checked = 0;
  for (int trial = 0; trial < 60; ++trial) {
    ConjunctiveQuery q = RandomQuery(&rng, qspec);
    if (DissociationExponent(q) > 10) continue;
    Database db = RandomDatabaseFor(q, &rng);
    auto exact = ExactProbabilities(db, q);
    ASSERT_TRUE(exact.ok()) << q.ToString();
    auto exact_map = ToMap(*exact);

    auto plans = EnumerateAllPlans(q);
    ASSERT_TRUE(plans.ok()) << q.ToString();
    for (const auto& plan : *plans) {
      auto scores = PlanScore(db, q, plan);
      ASSERT_TRUE(scores.ok()) << q.ToString();
      auto score_map = ToMap(*scores);
      ASSERT_EQ(score_map.size(), exact_map.size()) << q.ToString();
      for (const auto& [tuple, p] : exact_map) {
        auto it = score_map.find(tuple);
        ASSERT_NE(it, score_map.end()) << q.ToString();
        EXPECT_GE(it->second, p - 1e-9) << q.ToString();
        ++plans_checked;
      }
    }
  }
  EXPECT_GE(plans_checked, 200);
}

TEST(BoundsPropertyTest, PropagationEqualsBruteForceLatticeMinimum) {
  Rng rng(918273);
  RandomQuerySpec qspec;
  qspec.max_atoms = 3;
  qspec.max_vars = 4;
  RandomInstanceSpec ispec;
  ispec.max_rows = 3;
  ispec.domain = 2;
  int checked = 0;
  for (int trial = 0; trial < 40 && checked < 15; ++trial) {
    ConjunctiveQuery q = RandomQuery(&rng, qspec);
    if (DissociationExponent(q) > 6) continue;
    if (!q.IsBoolean()) continue;  // keep the brute force manageable
    Database db = RandomDatabaseFor(q, &rng, ispec);

    // Brute force: min over all safe dissociations of P(q^Delta), each
    // computed by materializing D^Delta and running exact WMC.
    auto safe = EnumerateSafeDissociations(q);
    ASSERT_TRUE(safe.ok());
    double best = 2.0;
    for (const auto& d : *safe) {
      auto mat = MaterializeDissociation(db, q, d);
      ASSERT_TRUE(mat.ok()) << q.ToString();
      auto p = ExactProbabilities(mat->db, mat->query);
      ASSERT_TRUE(p.ok());
      double prob = p->empty() ? 0.0 : (*p)[0].score;
      best = std::min(best, prob);
    }

    auto rho = PropagationScoreBoolean(db, q);
    ASSERT_TRUE(rho.ok()) << q.ToString();
    EXPECT_NEAR(*rho, best, 1e-9) << q.ToString();
    ++checked;
  }
  EXPECT_GE(checked, 10);
}

TEST(BoundsPropertyTest, Theorem18ScoreMatchesMaterializedDissociation) {
  Rng rng(555777);
  RandomQuerySpec qspec;
  qspec.max_atoms = 3;
  qspec.max_vars = 4;
  RandomInstanceSpec ispec;
  ispec.max_rows = 3;
  ispec.domain = 2;
  int checked = 0;
  for (int trial = 0; trial < 40 && checked < 12; ++trial) {
    ConjunctiveQuery q = RandomQuery(&rng, qspec);
    if (DissociationExponent(q) > 6) continue;
    Database db = RandomDatabaseFor(q, &rng, ispec);
    auto safe = EnumerateSafeDissociations(q);
    ASSERT_TRUE(safe.ok());
    for (const auto& d : *safe) {
      auto plan = SafePlanForDissociation(q, d);
      ASSERT_TRUE(plan.ok()) << q.ToString();
      auto scores = PlanScore(db, q, *plan);
      ASSERT_TRUE(scores.ok());

      auto mat = MaterializeDissociation(db, q, d);
      ASSERT_TRUE(mat.ok());
      auto exact = ExactProbabilities(mat->db, mat->query);
      ASSERT_TRUE(exact.ok());

      auto score_map = ToMap(*scores);
      auto exact_map = ToMap(*exact);
      // Some answers may be missing from one side only if score is 0.
      for (const auto& [tuple, p] : exact_map) {
        auto it = score_map.find(tuple);
        ASSERT_NE(it, score_map.end());
        EXPECT_NEAR(it->second, p, 1e-9)
            << q.ToString() << " " << d.ToString(q);
      }
    }
    ++checked;
  }
  EXPECT_GE(checked, 8);
}

TEST(BoundsPropertyTest, SafeQueriesComputedExactly) {
  Rng rng(246810);
  RandomQuerySpec qspec;
  qspec.max_atoms = 4;
  qspec.max_vars = 4;
  int safe_seen = 0;
  for (int trial = 0; trial < 150 && safe_seen < 25; ++trial) {
    ConjunctiveQuery q = RandomQuery(&rng, qspec);
    if (!IsHierarchical(q)) continue;
    ++safe_seen;
    Database db = RandomDatabaseFor(q, &rng);
    auto res = PropagationScore(db, q);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res->num_minimal_plans, 1u) << q.ToString();
    auto exact = ExactProbabilities(db, q);
    ASSERT_TRUE(exact.ok());
    auto a = ToMap(res->answers);
    auto b = ToMap(*exact);
    ASSERT_EQ(a.size(), b.size()) << q.ToString();
    for (const auto& [tuple, p] : b) {
      EXPECT_NEAR(a[tuple], p, 1e-9) << q.ToString();
    }
  }
  EXPECT_GE(safe_seen, 25);
}

TEST(BoundsPropertyTest, Proposition21RelativeErrorVanishes) {
  // Scaling all probabilities by f -> 0 drives rho/P -> 1.
  auto q = Q("q() :- R(x), S(x,y), T(y)");
  Rng rng(11235);
  Database db;
  {
    Table r(RelationSchema::AllInt64("R", 1));
    Table s(RelationSchema::AllInt64("S", 2));
    Table t(RelationSchema::AllInt64("T", 1));
    for (int i = 0; i < 4; ++i) {
      r.AddRow({Value::Int64(i)}, 0.9);
      t.AddRow({Value::Int64(i)}, 0.9);
      for (int j = 0; j < 4; ++j) {
        s.AddRow({Value::Int64(i), Value::Int64(j)}, 0.9);
      }
    }
    ASSERT_TRUE(db.AddTable(std::move(r)).ok());
    ASSERT_TRUE(db.AddTable(std::move(s)).ok());
    ASSERT_TRUE(db.AddTable(std::move(t)).ok());
  }
  double prev_rel_err = 1e9;
  // Start below the saturation regime: with f close to 1 the answer
  // probability is ~1 and both bounds collapse, masking the trend.
  for (double f : {0.3, 0.1, 0.03, 0.01}) {
    Database scaled = db.Clone();
    scaled.ScaleProbabilities(f);
    auto rho = PropagationScoreBoolean(scaled, q);
    auto exact = ExactProbabilities(scaled, q);
    ASSERT_TRUE(rho.ok());
    ASSERT_TRUE(exact.ok());
    double p = (*exact)[0].score;
    ASSERT_GT(p, 0.0);
    double rel_err = (*rho - p) / p;
    EXPECT_GE(rel_err, -1e-9);         // upper bound
    EXPECT_LE(rel_err, prev_rel_err + 1e-12);  // decreasing in f
    prev_rel_err = rel_err;
  }
  EXPECT_LT(prev_rel_err, 0.01);  // nearly exact at f = 0.01
}

TEST(BoundsPropertyTest, MinimalPlansSufficeForTheMinimum) {
  // The min over minimal plans equals the min over ALL plans (monotonicity
  // along the dissociation order, Corollary 16).
  Rng rng(777);
  RandomQuerySpec qspec;
  qspec.max_atoms = 3;
  qspec.max_vars = 4;
  int checked = 0;
  for (int trial = 0; trial < 40 && checked < 15; ++trial) {
    ConjunctiveQuery q = RandomQuery(&rng, qspec);
    if (DissociationExponent(q) > 8) continue;
    Database db = RandomDatabaseFor(q, &rng);
    auto all = EnumerateAllPlans(q);
    ASSERT_TRUE(all.ok());
    auto minimal = EnumerateMinimalPlans(q);
    ASSERT_TRUE(minimal.ok());
    ASSERT_LE(minimal->size(), all->size());

    auto min_over = [&](const std::vector<PlanPtr>& plans) {
      std::map<std::vector<Value>, double> best;
      for (const auto& p : plans) {
        auto scores = PlanScore(db, q, p);
        EXPECT_TRUE(scores.ok());
        for (const auto& a : *scores) {
          auto it = best.find(a.tuple);
          if (it == best.end()) {
            best[a.tuple] = a.score;
          } else {
            it->second = std::min(it->second, a.score);
          }
        }
      }
      return best;
    };
    auto a = min_over(*all);
    auto b = min_over(*minimal);
    ASSERT_EQ(a.size(), b.size()) << q.ToString();
    for (const auto& [tuple, score] : a) {
      EXPECT_NEAR(b[tuple], score, 1e-9) << q.ToString();
    }
    ++checked;
  }
  EXPECT_GE(checked, 10);
}

}  // namespace
}  // namespace dissodb
