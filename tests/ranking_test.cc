// Unit tests for ranking utilities (RankAnswers, AlignScores) and the
// Corollary 16 monotonicity property of the dissociation order.
#include <gtest/gtest.h>

#include "src/dissociation/counting.h"
#include "src/dissociation/lattice.h"
#include "src/dissociation/propagation.h"
#include "src/exec/ranking.h"
#include "src/infer/query_inference.h"
#include "src/workload/random_instance.h"
#include "tests/test_util.h"

namespace dissodb {
namespace {

using testing_util::AddTable;
using testing_util::Q;

TEST(RankAnswersTest, SortsByScoreDescending) {
  Rel rel({0});
  rel.AddRow(std::vector<Value>{Value::Int64(1)}, 0.2);
  rel.AddRow(std::vector<Value>{Value::Int64(2)}, 0.9);
  rel.AddRow(std::vector<Value>{Value::Int64(3)}, 0.5);
  auto ranked = RankAnswers(rel);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].tuple[0], Value::Int64(2));
  EXPECT_EQ(ranked[1].tuple[0], Value::Int64(3));
  EXPECT_EQ(ranked[2].tuple[0], Value::Int64(1));
}

TEST(RankAnswersTest, TiesBrokenByTupleValueDeterministically) {
  Rel rel({0});
  rel.AddRow(std::vector<Value>{Value::Int64(5)}, 0.5);
  rel.AddRow(std::vector<Value>{Value::Int64(1)}, 0.5);
  auto ranked = RankAnswers(rel);
  EXPECT_EQ(ranked[0].tuple[0], Value::Int64(1));
  EXPECT_EQ(ranked[1].tuple[0], Value::Int64(5));
}

TEST(AlignScoresTest, ReordersToReference) {
  std::vector<RankedAnswer> ref = {{{Value::Int64(1)}, 0.9},
                                   {{Value::Int64(2)}, 0.5}};
  std::vector<RankedAnswer> sys = {{{Value::Int64(2)}, 0.7},
                                   {{Value::Int64(1)}, 0.3}};
  auto aligned = AlignScores(ref, sys);
  ASSERT_EQ(aligned.size(), 2u);
  EXPECT_DOUBLE_EQ(aligned[0], 0.3);
  EXPECT_DOUBLE_EQ(aligned[1], 0.7);
}

TEST(AlignScoresTest, MissingAnswersGetDefault) {
  std::vector<RankedAnswer> ref = {{{Value::Int64(1)}, 0.9},
                                   {{Value::Int64(2)}, 0.5}};
  std::vector<RankedAnswer> sys = {{{Value::Int64(1)}, 0.4}};
  auto aligned = AlignScores(ref, sys, -1.0);
  EXPECT_DOUBLE_EQ(aligned[0], 0.4);
  EXPECT_DOUBLE_EQ(aligned[1], -1.0);
}

TEST(RankingToStringTest, ResolvesStringsThroughPool) {
  Database db;
  std::vector<RankedAnswer> ranking = {{{db.Str("paris")}, 0.75}};
  std::string s = RankingToString(ranking, db);
  EXPECT_NE(s.find("paris"), std::string::npos);
  EXPECT_NE(s.find("0.75"), std::string::npos);
}

// Corollary 16: along the dissociation order, probabilities are monotone:
// Delta <= Delta'  =>  P(q^Delta) <= P(q^Delta').
TEST(DissociationOrderTest, Corollary16MonotonicityOnRandomInstances) {
  Rng rng(161616);
  RandomQuerySpec qspec;
  qspec.max_atoms = 3;
  qspec.max_vars = 4;
  RandomInstanceSpec ispec;
  ispec.max_rows = 3;
  ispec.domain = 2;
  int pairs_checked = 0;
  for (int trial = 0; trial < 200 && pairs_checked < 60; ++trial) {
    ConjunctiveQuery q = RandomQuery(&rng, qspec);
    if (DissociationExponent(q) > 5 || !q.IsBoolean()) continue;
    Database db = RandomDatabaseFor(q, &rng, ispec);
    auto all = EnumerateAllDissociations(q);
    ASSERT_TRUE(all.ok());
    std::vector<double> probs(all->size());
    for (size_t i = 0; i < all->size(); ++i) {
      auto mat = MaterializeDissociation(db, q, (*all)[i]);
      ASSERT_TRUE(mat.ok());
      auto p = ExactProbabilities(mat->db, mat->query);
      ASSERT_TRUE(p.ok());
      probs[i] = p->empty() ? 0.0 : (*p)[0].score;
    }
    for (size_t i = 0; i < all->size(); ++i) {
      for (size_t j = 0; j < all->size(); ++j) {
        if (i == j || !DissociationLeq((*all)[i], (*all)[j])) continue;
        EXPECT_LE(probs[i], probs[j] + 1e-9)
            << q.ToString() << " " << (*all)[i].ToString(q) << " vs "
            << (*all)[j].ToString(q);
        ++pairs_checked;
      }
    }
  }
  EXPECT_GE(pairs_checked, 60);
}

// Lemma 22 as data: dissociating a deterministic relation leaves the
// probability unchanged.
TEST(DissociationOrderTest, Lemma22DeterministicDissociationIsFree) {
  auto q = Q("q() :- R(x), S(x,y), T(y)");
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.4}, {{2}, 0.9}});
  AddTable(&db, "S", 2, {{{1, 4}, 0.7}, {{2, 4}, 0.2}, {{2, 5}, 0.6}});
  AddTable(&db, "T", 1, {{{4}, 1.0}, {{5}, 1.0}}, /*deterministic=*/true);

  Dissociation none = Dissociation::Empty(q);
  Dissociation t_diss = Dissociation::Empty(q);
  t_diss.extra[2] = MaskOf(q.FindVar("x"));

  auto p = [&](const Dissociation& d) {
    auto mat = MaterializeDissociation(db, q, d);
    EXPECT_TRUE(mat.ok());
    // Deterministic flags survive materialization via the copied schema.
    auto e = ExactProbabilities(mat->db, mat->query);
    EXPECT_TRUE(e.ok());
    return e->empty() ? 0.0 : (*e)[0].score;
  };
  EXPECT_NEAR(p(none), p(t_diss), 1e-12);
}

}  // namespace
}  // namespace dissodb
