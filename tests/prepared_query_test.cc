// Prepared-query API: canonicalization (variable-renaming invariance of
// plan handles, fingerprints, and remapped answers), fingerprintable
// Bindings (parameters + tagged atom selections), async Submit, per-query
// batch errors, and the Opt. 3 / isomorphic-batch result-sharing
// acceptance criteria.
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "src/dissociation/single_plan.h"
#include "src/engine/query_engine.h"
#include "src/query/canonicalize.h"
#include "src/workload/random_instance.h"
#include "src/workload/synthetic.h"
#include "tests/test_util.h"

namespace dissodb {
namespace {

using testing_util::AddTable;
using testing_util::Q;

void ExpectSameRankings(const std::vector<RankedAnswer>& a,
                        const std::vector<RankedAnswer>& b,
                        const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tuple, b[i].tuple) << what << " row " << i;
    // Bit-identical: the canonical path must perform the same
    // floating-point operations in the same order as the legacy path.
    EXPECT_EQ(a[i].score, b[i].score) << what << " row " << i;
  }
}

/// Rebuilds `q` with its variables interned in the order given by `order`
/// (a permutation of 0..num_vars-1, listing original ids) and renamed with
/// `prefix`. The result is isomorphic to `q`: same atoms, same head
/// positions, permuted variable ids.
ConjunctiveQuery PermuteVars(const ConjunctiveQuery& q,
                             const std::vector<int>& order,
                             const std::string& prefix) {
  ConjunctiveQuery out;
  out.SetName(q.name());
  std::vector<VarId> newid(q.num_vars(), -1);
  for (int old : order) newid[old] = out.AddVar(prefix + q.var_name(old));
  for (VarId h : q.head_vars()) EXPECT_TRUE(out.AddHeadVar(newid[h]).ok());
  for (int i = 0; i < q.num_atoms(); ++i) {
    Atom atom = q.atom(i);
    for (Term& t : atom.terms) {
      if (t.is_var) t.var = newid[t.var];
    }
    EXPECT_TRUE(out.AddAtom(std::move(atom)).ok());
  }
  return out;
}

std::vector<int> RandomOrder(Rng* rng, int n) {
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (int i = n - 1; i > 0; --i) {
    int j = static_cast<int>(rng->NextBounded(i + 1));
    std::swap(order[i], order[j]);
  }
  return order;
}

TEST(CanonicalizeTest, IsomorphicQueriesShareOneCanonicalForm) {
  ConjunctiveQuery q1 = Q("q(x) :- R(x,y), S(y,z)");
  ConjunctiveQuery q2 = Q("foo(b) :- R(b,a), S(a,c)");
  auto c1 = CanonicalizeQuery(q1);
  auto c2 = CanonicalizeQuery(q2);
  ASSERT_TRUE(c1.ok() && c2.ok());
  EXPECT_EQ(c1->query.ToString(), c2->query.ToString());
  EXPECT_TRUE(c1->identity);  // x,y,z already intern in occurrence order
  EXPECT_TRUE(c2->identity);

  // Head interned before body: y occurs first in the body, so ids permute.
  ConjunctiveQuery q3 = Q("q(x) :- R(y,x)");
  auto c3 = CanonicalizeQuery(q3);
  ASSERT_TRUE(c3.ok());
  EXPECT_FALSE(c3->identity);
  EXPECT_EQ(c3->orig_to_canon[q3.FindVar("y")], 0);
  EXPECT_EQ(c3->orig_to_canon[q3.FindVar("x")], 1);
  EXPECT_EQ(c3->canon_to_orig[0], q3.FindVar("y"));
  // Same canonical text as the straight spelling.
  auto c4 = CanonicalizeQuery(Q("q(b) :- R(a,b)"));
  ASSERT_TRUE(c4.ok());
  EXPECT_EQ(c3->query.ToString(), c4->query.ToString());
}

TEST(CanonicalizeTest, ConstantsAndParamsSurviveCanonicalization) {
  ConjunctiveQuery q = Q("q(x) :- R(x,7,$0), S(x,?)");
  auto c = CanonicalizeQuery(q);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->query.num_params(), 2);
  EXPECT_EQ(c->query.ToString(), "q(v0) :- R(v0,7,$0), S(v0,$1)");
}

TEST(PreparedQueryTest, RenamingInvarianceOfPlanFingerprints) {
  Rng rng(411);
  for (int seed = 0; seed < 40; ++seed) {
    Rng qrng(5100 + seed);
    RandomQuerySpec qs;
    qs.min_atoms = 1;
    qs.max_atoms = 3;
    ConjunctiveQuery q = RandomQuery(&qrng, qs);
    ConjunctiveQuery renamed =
        PermuteVars(q, RandomOrder(&rng, q.num_vars()), "r_");

    auto c1 = CanonicalizeQuery(q);
    auto c2 = CanonicalizeQuery(renamed);
    ASSERT_TRUE(c1.ok() && c2.ok());
    ASSERT_EQ(c1->query.ToString(), c2->query.ToString()) << "seed " << seed;

    // The compiled single plans fingerprint identically, so isomorphic
    // subplans key into the same ResultCache entries.
    SinglePlanOptions sp;
    auto p1 = BuildSinglePlan(c1->query, SchemaKnowledge::None(c1->query), sp);
    auto p2 = BuildSinglePlan(c2->query, SchemaKnowledge::None(c2->query), sp);
    ASSERT_EQ(p1.ok(), p2.ok()) << "seed " << seed;
    if (!p1.ok()) continue;
    EXPECT_EQ(PlanFingerprint(*p1, c1->query), PlanFingerprint(*p2, c2->query))
        << "seed " << seed;
  }
}

TEST(PreparedQueryTest, RenamedExecutionMatchesLegacyRunBitExactly) {
  // Differential: prepared execution of a renamed query (evaluated in
  // canonical space, answers column-remapped) against the un-prepared
  // legacy path (canonicalize off, evaluated in the caller's space).
  Rng rng(902);
  for (int seed = 0; seed < 40; ++seed) {
    Rng qrng(6200 + seed);
    RandomQuerySpec qs;
    qs.min_atoms = 1;
    qs.max_atoms = 3;
    ConjunctiveQuery q = RandomQuery(&qrng, qs);
    ConjunctiveQuery renamed =
        PermuteVars(q, RandomOrder(&rng, q.num_vars()), "z");
    Database db = RandomDatabaseFor(q, &qrng);

    EngineOptions legacy_opts;
    legacy_opts.canonicalize = false;
    QueryEngine legacy = QueryEngine::Borrow(db, legacy_opts);
    auto expected = legacy.Run(renamed);

    QueryEngine engine = QueryEngine::Borrow(db);
    auto prepared = engine.Prepare(renamed);
    ASSERT_EQ(expected.ok(), prepared.ok()) << "seed " << seed;
    if (!expected.ok()) continue;
    auto got = engine.Execute(*prepared);
    ASSERT_TRUE(got.ok()) << got.status().ToString() << " seed " << seed;
    ExpectSameRankings(expected->answers, got->answers,
                       "seed " + std::to_string(seed));
    EXPECT_EQ(expected->num_minimal_plans, got->num_minimal_plans);
  }
}

TEST(PreparedQueryTest, IsomorphicQueriesHitOnePlanCacheEntry) {
  Database db;
  AddTable(&db, "R", 2, {{{1, 2}, 0.5}});
  AddTable(&db, "S", 2, {{{2, 3}, 0.5}});
  QueryEngine engine = QueryEngine::Borrow(db);

  auto p1 = engine.Prepare("q(x) :- R(x,y), S(y,z)");
  ASSERT_TRUE(p1.ok());
  EXPECT_FALSE(p1->from_plan_cache());
  // Different names, different interning order, different head name.
  auto p2 = engine.Prepare("other(u) :- R(u,w), S(w,t)");
  ASSERT_TRUE(p2.ok());
  EXPECT_TRUE(p2->from_plan_cache());
  EXPECT_EQ(p1->cache_key(), p2->cache_key());
  EXPECT_EQ(engine.stats().plan_cache_misses, 1u);
  EXPECT_EQ(engine.stats().plan_cache_hits, 1u);

  // A renaming that permutes ids still hits (and reports the remap).
  auto p3 = engine.Prepare("q(x) :- R(y,x), S(x,z)");
  ASSERT_TRUE(p3.ok());
  EXPECT_NE(p3->cache_key(), p1->cache_key());  // different structure
  auto p4 = engine.Prepare("q(b) :- R(a,b), S(b,c)");
  ASSERT_TRUE(p4.ok());
  EXPECT_TRUE(p4->from_plan_cache());
  EXPECT_EQ(p4->cache_key(), p3->cache_key());
  EXPECT_TRUE(p3->needs_remap());
  EXPECT_GE(engine.stats().canonical_remap_hits, 1u);
}

TEST(CanonicalizeTest, BodyPermutedSpellingsShareOneCanonicalForm) {
  // Atom-order canonicalization: atoms sort by relation symbol before
  // variable renaming, so body permutations of one query are isomorphic.
  ConjunctiveQuery q1 = Q("q(x) :- R(x,y), S(y,z)");
  ConjunctiveQuery q2 = Q("q(u) :- S(w,t), R(u,w)");
  auto c1 = CanonicalizeQuery(q1);
  auto c2 = CanonicalizeQuery(q2);
  ASSERT_TRUE(c1.ok() && c2.ok());
  EXPECT_EQ(c1->query.ToString(), c2->query.ToString());
  EXPECT_FALSE(c1->atoms_reordered);
  EXPECT_TRUE(c2->atoms_reordered);
  // q2's original atom 0 (S) lands at canonical position 1 and vice versa.
  EXPECT_EQ(c2->atom_orig_to_canon, (std::vector<int>{1, 0}));
  EXPECT_EQ(c2->atom_canon_to_orig, (std::vector<int>{1, 0}));
  // A three-atom permutation sorts fully by relation symbol.
  ConjunctiveQuery q3 = Q("q(x) :- T(x,y), S(y,1), R(x,2)");
  auto c3 = CanonicalizeQuery(q3);
  ASSERT_TRUE(c3.ok());
  EXPECT_EQ(c3->atom_canon_to_orig, (std::vector<int>{2, 1, 0}));
  EXPECT_EQ(c3->query.ToString(),
            CanonicalizeQuery(Q("q(x) :- R(x,2), S(y,1), T(x,y)"))
                ->query.ToString());
}

TEST(PreparedQueryTest, BodyPermutedSpellingsShareOnePlanCacheEntry) {
  Database db;
  AddTable(&db, "R", 2, {{{1, 10}, 0.5}, {{2, 20}, 0.6}});
  AddTable(&db, "S", 2, {{{10, 7}, 0.9}, {{20, 7}, 0.8}});
  QueryEngine engine = QueryEngine::Borrow(db);

  auto p1 = engine.Prepare("q(x) :- R(x,y), S(y,z)");
  ASSERT_TRUE(p1.ok());
  EXPECT_FALSE(p1->from_plan_cache());
  auto p2 = engine.Prepare("q(a) :- S(b,c), R(a,b)");
  ASSERT_TRUE(p2.ok());
  EXPECT_TRUE(p2->from_plan_cache());
  EXPECT_EQ(p1->cache_key(), p2->cache_key());
  EXPECT_EQ(engine.stats().plan_cache_misses, 1u);

  // Both spellings execute the one compiled artifact and agree bit-exactly.
  auto r1 = engine.Execute(*p1);
  auto r2 = engine.Execute(*p2);
  ASSERT_TRUE(r1.ok() && r2.ok());
  ExpectSameRankings(r1->answers, r2->answers, "body-permuted spellings");
}

TEST(PreparedQueryTest, AtomBindingsRemapThroughTheCanonicalBodyOrder) {
  Database db;
  AddTable(&db, "R", 1, {{{10}, 0.9}, {{20}, 0.8}});
  AddTable(&db, "S", 2, {{{1, 10}, 0.5}, {{2, 20}, 0.6}, {{3, 10}, 0.7}});
  QueryEngine engine = QueryEngine::Borrow(db);

  // Only keep R(10): binding expressed against each spelling's own body
  // order must reach the R atom in both.
  Table r_small(RelationSchema::AllInt64("R", 1));
  r_small.AddRow({Value::Int64(10)}, 0.9);

  // Spelling A: R is original atom 1 (canonical atom 0 after sorting).
  auto pa = engine.Prepare("q(x) :- S(x,y), R(y)");
  ASSERT_TRUE(pa.ok());
  auto ra = engine.Execute(*pa, Bindings().SetAtomTable(1, &r_small));
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  // Spelling B: R is original atom 0 (already canonical).
  auto pb = engine.Prepare("q(x) :- R(y), S(x,y)");
  ASSERT_TRUE(pb.ok());
  auto rb = engine.Execute(*pb, Bindings().SetAtomTable(0, &r_small));
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();

  ExpectSameRankings(ra->answers, rb->answers, "remapped atom bindings");
  // Only x=1 and x=3 join R(10).
  ASSERT_EQ(ra->answers.size(), 2u);

  // A misdirected binding (arity mismatch with the canonical atom) would
  // have failed the scan — guard that the remap really targeted R.
  Table wrong(RelationSchema::AllInt64("X", 2));
  wrong.AddRow({Value::Int64(1), Value::Int64(1)}, 0.5);
  EXPECT_FALSE(engine.Execute(*pa, Bindings().SetAtomTable(1, &wrong)).ok());
}

TEST(PreparedQueryTest, ParametersPrepareOnceExecuteMany) {
  Database db;
  AddTable(&db, "R", 2,
           {{{1, 10}, 0.9}, {{2, 10}, 0.8}, {{3, 20}, 0.7}});
  QueryEngine engine = QueryEngine::Borrow(db);

  auto prepared = engine.Prepare("q(x) :- R(x,$0)");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_EQ(prepared->num_params(), 1);

  auto r10 = engine.Execute(*prepared, Bindings().Set(0, Value::Int64(10)));
  ASSERT_TRUE(r10.ok()) << r10.status().ToString();
  EXPECT_EQ(r10->answers.size(), 2u);
  auto r20 = engine.Execute(*prepared, Bindings().Set(0, Value::Int64(20)));
  ASSERT_TRUE(r20.ok());
  ASSERT_EQ(r20->answers.size(), 1u);
  EXPECT_EQ(r20->answers[0].tuple[0], Value::Int64(3));
  auto r99 = engine.Execute(*prepared, Bindings().Set(0, Value::Int64(99)));
  ASSERT_TRUE(r99.ok());
  EXPECT_TRUE(r99->answers.empty());

  // One compile served every binding.
  EXPECT_EQ(engine.stats().plan_cache_misses, 1u);

  // "?" is an auto-indexed placeholder: same canonical form, cache hit.
  auto anon = engine.Prepare("q(x) :- R(x,?)");
  ASSERT_TRUE(anon.ok());
  EXPECT_TRUE(anon->from_plan_cache());

  // Oversized parameter indices are parse errors, not allocation requests.
  EXPECT_FALSE(engine.Prepare("q(x) :- R(x,$9999)").ok());
  EXPECT_FALSE(engine.Prepare("q(x) :- R(x,$99999999999999999999)").ok());

  // Unbound / out-of-range / spurious parameters are per-execution errors.
  EXPECT_FALSE(engine.Execute(*prepared).ok());
  EXPECT_FALSE(
      engine.Execute(*prepared, Bindings().Set(1, Value::Int64(1))).ok());
  auto noparam = engine.Prepare("q(x) :- R(x,y)");
  ASSERT_TRUE(noparam.ok());
  EXPECT_FALSE(
      engine.Execute(*noparam, Bindings().Set(0, Value::Int64(1))).ok());
}

TEST(PreparedQueryTest, DistinctParameterValuesNeverCollideInResultCache) {
  Database db;
  AddTable(&db, "R", 2, {{{1, 10}, 0.9}, {{2, 20}, 0.8}});
  AddTable(&db, "S", 1, {{{1}, 0.5}, {{2}, 0.6}});
  QueryEngine engine = QueryEngine::Borrow(db);
  auto prepared = engine.Prepare("q(x) :- S(x), R(x,$0)");
  ASSERT_TRUE(prepared.ok());

  std::vector<PreparedQuery> batch(4, *prepared);
  std::vector<Bindings> bindings{
      Bindings().Set(0, Value::Int64(10)), Bindings().Set(0, Value::Int64(20)),
      Bindings().Set(0, Value::Int64(10)), Bindings().Set(0, Value::Int64(20))};
  auto results = engine.ExecuteBatch(batch, bindings);
  ASSERT_EQ(results.size(), 4u);
  for (auto& r : results) ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(results[0]->answers.size(), 1u);
  EXPECT_EQ(results[0]->answers[0].tuple[0], Value::Int64(1));
  ASSERT_EQ(results[1]->answers.size(), 1u);
  EXPECT_EQ(results[1]->answers[0].tuple[0], Value::Int64(2));
  ExpectSameRankings(results[0]->answers, results[2]->answers, "param 10");
  ExpectSameRankings(results[1]->answers, results[3]->answers, "param 20");
}

TEST(PreparedQueryTest, ExecuteBatchDeliversErrorsPerQuery) {
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.5}});
  QueryEngine engine = QueryEngine::Borrow(db);
  auto good = engine.Prepare("q() :- R(x)");
  auto param = engine.Prepare("q() :- R($0)");
  ASSERT_TRUE(good.ok() && param.ok());

  // Query 1 lacks its parameter binding: it alone fails.
  auto results = engine.ExecuteBatch({*good, *param, *good},
                                     {Bindings{}, Bindings{}, Bindings{}});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_TRUE(results[2].ok());

  // The legacy wrapper keeps all-or-nothing semantics.
  auto bad = engine.RunBatch(std::vector<std::string>{"q() :- R(x)", "q() :-"});
  EXPECT_FALSE(bad.ok());
}

TEST(PreparedQueryTest, SubmitIsAsyncAndSharesResults) {
  ChainSpec spec;
  spec.k = 3;
  spec.n = 200;
  spec.seed = 77;
  auto db = std::make_shared<const Database>(MakeChainDatabase(spec));
  QueryEngine engine(db);
  ConjunctiveQuery q = MakeChainQuery(3);
  auto prepared = engine.Prepare(q);
  ASSERT_TRUE(prepared.ok());
  auto expected = engine.Execute(*prepared);
  ASSERT_TRUE(expected.ok());

  auto warm = engine.Submit(*prepared);
  auto warm_result = warm.get();
  ASSERT_TRUE(warm_result.ok()) << warm_result.status().ToString();

  std::vector<std::future<Result<QueryResult>>> futures;
  for (int i = 0; i < 4; ++i) futures.push_back(engine.Submit(*prepared));
  for (auto& f : futures) {
    auto r = f.get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ExpectSameRankings(expected->answers, r->answers, "submit");
  }
  // Pooled executions share subplans through the result cache; the warmed
  // duplicates are served without recomputation.
  EXPECT_GT(engine.stats().result_cache_hits, 0u);
  EXPECT_EQ(engine.stats().batch_queries, 5u);
}

TEST(PreparedQueryTest, EngineDestructionDrainsPendingSubmits) {
  ChainSpec spec;
  spec.k = 3;
  spec.n = 150;
  spec.seed = 3;
  auto db = std::make_shared<const Database>(MakeChainDatabase(spec));
  std::future<Result<QueryResult>> orphan;
  {
    EngineOptions opts;
    opts.num_threads = 2;
    QueryEngine engine(db, opts);
    auto prepared = engine.Prepare(MakeChainQuery(3));
    ASSERT_TRUE(prepared.ok());
    // Dropped futures: the tasks may still be queued when the engine dies;
    // the pool (destroyed first) must run them while caches/stats live.
    for (int i = 0; i < 4; ++i) (void)engine.Submit(*prepared);
    orphan = engine.Submit(*prepared);
  }
  auto r = orphan.get();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->answers.empty());
}

TEST(PreparedQueryTest, TaggedAtomBindingsKeepResultSharing) {
  ChainSpec spec;
  spec.k = 3;
  spec.n = 250;
  spec.seed = 13;
  Database db = MakeChainDatabase(spec);
  ConjunctiveQuery q = MakeChainQuery(3);
  auto table = db.GetTable("R1");
  ASSERT_TRUE(table.ok());

  {
    // Untagged selection: subplans touching atom 0 are tainted — every
    // execution re-evaluates them (subplans over untouched atoms may still
    // hit, but the root never does).
    QueryEngine engine = QueryEngine::Borrow(db);
    auto prepared = engine.Prepare(q);
    ASSERT_TRUE(prepared.ok());
    Bindings untagged;
    untagged.SetAtomTable(0, *table);
    std::vector<PreparedQuery> batch(1, *prepared);
    std::vector<Bindings> bindings(1, untagged);
    for (auto& r : engine.ExecuteBatch(batch, bindings)) ASSERT_TRUE(r.ok());
    auto repeats = engine.ExecuteBatch({*prepared, *prepared},
                                       {untagged, untagged});
    for (auto& r : repeats) {
      ASSERT_TRUE(r.ok());
      EXPECT_GT((*r).nodes_evaluated, 0u)
          << "tainted subplans must be re-evaluated";
    }
  }
  {
    // The same workload with a content tag shares every repeated subplan:
    // after the warm-up, a repeat is served entirely from the cache (its
    // root subplan hits, so zero plan nodes evaluate).
    QueryEngine engine = QueryEngine::Borrow(db);
    auto prepared = engine.Prepare(q);
    ASSERT_TRUE(prepared.ok());
    Bindings tagged;
    tagged.SetAtomTable(0, *table, "R1@full");
    ASSERT_TRUE(tagged.Fingerprint().has_value());
    std::vector<PreparedQuery> batch(1, *prepared);
    std::vector<Bindings> bindings(1, tagged);
    for (auto& r : engine.ExecuteBatch(batch, bindings)) ASSERT_TRUE(r.ok());
    auto repeats = engine.ExecuteBatch({*prepared, *prepared},
                                       {tagged, tagged});
    for (auto& r : repeats) {
      ASSERT_TRUE(r.ok());
      EXPECT_EQ((*r).nodes_evaluated, 0u)
          << "tagged bound subplans must be served from the result cache";
      EXPECT_GT((*r).result_cache_hits, 0u);
    }

    // Legacy Run with the same table bound must agree.
    QueryEngine reference = QueryEngine::Borrow(db);
    auto expected = reference.Run(q, {{0, *table}});
    ASSERT_TRUE(expected.ok());
    auto got = engine.Execute(*prepared, tagged);
    ASSERT_TRUE(got.ok());
    ExpectSameRankings(expected->answers, got->answers, "tagged binding");
  }
}

// Acceptance: a batch of 64 pairwise variable-renamed (isomorphic) chain
// queries shows the same result-cache sharing as 64 identical copies,
// while the legacy (un-canonicalized) engine shares nothing.
TEST(PreparedQueryTest, IsomorphicBatchSharesLikeIdenticalBatch) {
  ChainSpec spec;
  spec.k = 4;
  spec.n = 400;
  spec.seed = 21;
  Database db = MakeChainDatabase(spec);
  ConjunctiveQuery base = MakeChainQuery(4);

  constexpr int kBatch = 64;
  Rng rng(33);
  std::vector<ConjunctiveQuery> renamed;
  renamed.reserve(kBatch);
  for (int i = 0; i < kBatch; ++i) {
    renamed.push_back(PermuteVars(base, RandomOrder(&rng, base.num_vars()),
                                  "n" + std::to_string(i) + "_"));
  }
  std::vector<ConjunctiveQuery> identical(kBatch, base);

  auto served = [&](const std::vector<ConjunctiveQuery>& workload,
                    bool canonicalize) {
    EngineOptions opts;
    opts.canonicalize = canonicalize;
    QueryEngine engine = QueryEngine::Borrow(db, opts);
    // Warm with a single-query batch so hit counts are deterministic.
    auto warm = engine.RunBatch(std::vector<ConjunctiveQuery>{base});
    EXPECT_TRUE(warm.ok());
    auto results = engine.RunBatch(workload);
    EXPECT_TRUE(results.ok()) << results.status().ToString();
    EngineStats s = engine.stats();
    return s.result_cache_hits + s.result_cache_in_flight_waits;
  };

  const size_t hits_identical = served(identical, /*canonicalize=*/true);
  const size_t hits_renamed = served(renamed, /*canonicalize=*/true);
  const size_t hits_legacy = served(renamed, /*canonicalize=*/false);

  EXPECT_GT(hits_identical, 0u);
  // Sharing restored: the renamed batch behaves exactly like the identical
  // one (every query keys into the same canonical fingerprints).
  EXPECT_EQ(hits_renamed, hits_identical);
  // Without canonicalization, sharing only happens when a random renaming
  // coincidentally reproduces the same variable ids on a subplan — well
  // under half of the restored sharing (empirically ~0.3x; the exact count
  // is timing-dependent because a hit at a plan's root skips the lookups
  // below it).
  EXPECT_LT(hits_legacy * 2, hits_identical);

  // And the remapped answers are the legacy answers, query by query.
  EngineOptions legacy_opts;
  legacy_opts.canonicalize = false;
  QueryEngine legacy = QueryEngine::Borrow(db, legacy_opts);
  QueryEngine engine = QueryEngine::Borrow(db);
  for (int i = 0; i < kBatch; i += 16) {
    auto expected = legacy.Run(renamed[i]);
    auto got = engine.Run(renamed[i]);
    ASSERT_TRUE(expected.ok() && got.ok());
    ExpectSameRankings(expected->answers, got->answers,
                       "renamed " + std::to_string(i));
  }
}

// Acceptance: with Opt. 3 enabled, reduced inputs are fingerprinted as
// reduction(query, db version) instead of tainting every subplan — batches
// share results again, and repeated reductions are served from the
// reduction cache.
TEST(PreparedQueryTest, Opt3BatchSharesResultsAndReductions) {
  ChainSpec spec;
  spec.k = 4;
  spec.n = 300;
  spec.seed = 5;
  Database db = MakeChainDatabase(spec);
  ConjunctiveQuery q = MakeChainQuery(4);

  EngineOptions opts;
  opts.propagation.opt3_semijoin_reduction = true;
  QueryEngine engine = QueryEngine::Borrow(db, opts);
  auto warm = engine.RunBatch(std::vector<ConjunctiveQuery>{q});
  ASSERT_TRUE(warm.ok());
  auto results = engine.RunBatch(std::vector<ConjunctiveQuery>(8, q));
  ASSERT_TRUE(results.ok()) << results.status().ToString();

  EngineStats s = engine.stats();
  EXPECT_GT(s.result_cache_hits, 0u)
      << "opt3 executions must participate in result sharing";
  EXPECT_GT(s.reduction_cache_hits, 0u)
      << "repeated identical reductions must be served from cache";

  // Scores are unchanged by the reduction: compare against opt3-off Run.
  QueryEngine plain = QueryEngine::Borrow(db);
  auto expected = plain.Run(q);
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(expected->answers.size(), (*results)[0].answers.size());
  for (size_t i = 0; i < expected->answers.size(); ++i) {
    EXPECT_EQ(expected->answers[i].tuple, (*results)[0].answers[i].tuple);
    EXPECT_DOUBLE_EQ(expected->answers[i].score,
                     (*results)[0].answers[i].score);
  }
}

TEST(PreparedQueryTest, RunBooleanRoutesThroughBindings) {
  Database db;
  AddTable(&db, "R", 2, {{{1, 10}, 0.25}, {{2, 20}, 0.75}});
  QueryEngine engine = QueryEngine::Borrow(db);

  auto r = engine.RunBoolean("q() :- R($0,y)", Bindings().Set(0, Value::Int64(2)));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_DOUBLE_EQ(*r, 0.75);
  auto miss = engine.RunBoolean("q() :- R($0,y)", Bindings().Set(0, Value::Int64(3)));
  ASSERT_TRUE(miss.ok());
  EXPECT_DOUBLE_EQ(*miss, 0.0);
  // Boolean queries share the plan cache with their isomorphic siblings.
  EXPECT_EQ(engine.stats().plan_cache_misses, 1u);
  EXPECT_FALSE(engine.RunBoolean("q(x) :- R(x,y)").ok());
}

}  // namespace
}  // namespace dissodb
