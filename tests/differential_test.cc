// Differential testing: the vectorized columnar operators must agree with
// the naive row-at-a-time reference implementations on seeded random
// instances — 100+ instances per operator (joins, both projections,
// MinMerge, semi-join reduction).
#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/exec/operators.h"
#include "src/exec/semijoin.h"
#include "src/workload/random_instance.h"
#include "tests/reference_ops.h"
#include "tests/test_util.h"

namespace dissodb {
namespace {

using testing_util::Canonical;
using testing_util::RefJoin;
using testing_util::RefMinMerge;
using testing_util::RefProject;
using testing_util::RefRel;
using testing_util::ToRef;

constexpr int kInstances = 120;

/// Random relation over `vars` with values in [1, domain] and U[0,1] scores.
Rel RandomRel(Rng* rng, const std::vector<VarId>& vars, size_t max_rows,
              int64_t domain) {
  Rel out(vars);
  size_t rows = rng->NextBounded(max_rows + 1);
  std::vector<Value> row(vars.size());
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < vars.size(); ++c) {
      row[c] = Value::Int64(1 + static_cast<int64_t>(rng->NextBounded(domain)));
    }
    out.AddRow(row, rng->NextDouble());
  }
  return out;
}

/// Random sorted variable subset of 0..pool_size-1 with `count` members.
std::vector<VarId> RandomVars(Rng* rng, int pool_size, int count) {
  std::vector<VarId> all(pool_size);
  for (int i = 0; i < pool_size; ++i) all[i] = i;
  for (int i = pool_size - 1; i > 0; --i) {
    std::swap(all[i], all[rng->NextBounded(i + 1)]);
  }
  all.resize(count);
  std::sort(all.begin(), all.end());
  return all;
}

void ExpectSameRelation(const RefRel& got, const RefRel& want,
                        const std::string& context) {
  auto g = Canonical(got);
  auto w = Canonical(want);
  ASSERT_EQ(g.size(), w.size()) << context;
  for (size_t i = 0; i < g.size(); ++i) {
    EXPECT_EQ(g[i].first, w[i].first) << context << " row " << i;
    EXPECT_NEAR(g[i].second, w[i].second, 1e-12) << context << " row " << i;
  }
}

TEST(DifferentialTest, HashJoinMatchesNestedLoopReference) {
  for (int seed = 0; seed < kInstances; ++seed) {
    Rng rng(1000 + seed);
    int pool = 2 + static_cast<int>(rng.NextBounded(4));  // 2..5 variables
    int la = 1 + static_cast<int>(rng.NextBounded(pool));
    int lb = 1 + static_cast<int>(rng.NextBounded(pool));
    Rel a = RandomRel(&rng, RandomVars(&rng, pool, la), 24, 3);
    Rel b = RandomRel(&rng, RandomVars(&rng, pool, lb), 24, 3);
    Rel joined = HashJoin(a, b);
    ExpectSameRelation(ToRef(joined), RefJoin(ToRef(a), ToRef(b)),
                       "join seed " + std::to_string(seed));
  }
}

TEST(DifferentialTest, ProjectIndependentMatchesReference) {
  for (int seed = 0; seed < kInstances; ++seed) {
    Rng rng(2000 + seed);
    int arity = 1 + static_cast<int>(rng.NextBounded(3));
    std::vector<VarId> vars = RandomVars(&rng, 5, arity);
    Rel in = RandomRel(&rng, vars, 40, 3);
    // Random subset of the variables (possibly empty: Boolean projection).
    VarMask keep = 0;
    for (VarId v : vars) {
      if (rng.NextBounded(2)) keep |= MaskOf(v);
    }
    Rel out = ProjectIndependent(in, keep);
    ExpectSameRelation(ToRef(out), RefProject(ToRef(in), keep, true),
                       "pi seed " + std::to_string(seed));
  }
}

TEST(DifferentialTest, ProjectDistinctMatchesReference) {
  for (int seed = 0; seed < kInstances; ++seed) {
    Rng rng(3000 + seed);
    int arity = 1 + static_cast<int>(rng.NextBounded(3));
    std::vector<VarId> vars = RandomVars(&rng, 5, arity);
    Rel in = RandomRel(&rng, vars, 40, 3);
    VarMask keep = 0;
    for (VarId v : vars) {
      if (rng.NextBounded(2)) keep |= MaskOf(v);
    }
    Rel out = ProjectDistinct(in, keep);
    ExpectSameRelation(ToRef(out), RefProject(ToRef(in), keep, false),
                       "distinct seed " + std::to_string(seed));
  }
}

TEST(DifferentialTest, MinMergeMatchesReference) {
  for (int seed = 0; seed < kInstances; ++seed) {
    Rng rng(4000 + seed);
    int arity = static_cast<int>(rng.NextBounded(3));  // 0..2 (incl Boolean)
    std::vector<VarId> vars = RandomVars(&rng, 4, arity);
    size_t k = 2 + rng.NextBounded(3);
    std::vector<Rel> inputs;
    std::vector<RefRel> ref_inputs;
    for (size_t i = 0; i < k; ++i) {
      inputs.push_back(RandomRel(&rng, vars, 16, 3));
      ref_inputs.push_back(ToRef(inputs.back()));
    }
    auto merged = MinMerge(inputs);
    ASSERT_TRUE(merged.ok());
    ExpectSameRelation(ToRef(*merged), RefMinMerge(ref_inputs),
                       "min seed " + std::to_string(seed));
  }
}

// ---------------------------------------------------------------------------
// Chunk-boundary pinning: every operator must be bit-compatible with the
// reference on inputs sized exactly at, one below, and one above the chunk
// capacity, and on multi-chunk inputs whose gathers span chunk seams.
// ---------------------------------------------------------------------------

using testing_util::ChunkCapOverride;

/// Random relation over `vars` with exactly `rows` rows.
Rel ExactRel(Rng* rng, const std::vector<VarId>& vars, size_t rows,
             int64_t domain) {
  Rel out(vars);
  std::vector<Value> row(vars.size());
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < vars.size(); ++c) {
      row[c] =
          Value::Int64(1 + static_cast<int64_t>(rng->NextBounded(domain)));
    }
    out.AddRow(row, rng->NextDouble());
  }
  return out;
}

TEST(ChunkBoundaryDifferentialTest, OperatorsAgreeAtAndAroundChunkCapacity) {
  constexpr size_t kCap = 128;
  ChunkCapOverride cap(kCap);
  // Sizes pinned to the seams: one below, exactly at, one above capacity,
  // and a multi-chunk size crossing two seams.
  const size_t sizes[] = {kCap - 1, kCap, kCap + 1, 2 * kCap + 1};
  int seed = 0;
  for (size_t rows : sizes) {
    Rng rng(7000 + seed++);
    Rel a = ExactRel(&rng, {0, 1}, rows, 12);
    Rel b = ExactRel(&rng, {1, 2}, rows, 12);

    Rel joined = HashJoin(a, b);
    EXPECT_GT(joined.NumRows(), 0u) << rows;
    ExpectSameRelation(ToRef(joined), RefJoin(ToRef(a), ToRef(b)),
                       "boundary join rows=" + std::to_string(rows));

    Rel pi = ProjectIndependent(a, MaskOf(0));
    ExpectSameRelation(ToRef(pi), RefProject(ToRef(a), MaskOf(0), true),
                       "boundary pi rows=" + std::to_string(rows));

    Rel pd = ProjectDistinct(a, MaskOf(1));
    ExpectSameRelation(ToRef(pd), RefProject(ToRef(a), MaskOf(1), false),
                       "boundary distinct rows=" + std::to_string(rows));

    Rel c = ExactRel(&rng, {0, 1}, rows, 12);
    auto merged = MinMerge({a, c});
    ASSERT_TRUE(merged.ok());
    ExpectSameRelation(ToRef(*merged), RefMinMerge({ToRef(a), ToRef(c)}),
                       "boundary min rows=" + std::to_string(rows));
  }
}

TEST(ChunkBoundaryDifferentialTest, MultiChunkGatherSpansChunkSeams) {
  constexpr size_t kCap = 64;
  ChunkCapOverride cap(kCap);
  Rng rng(8123);
  // A gather whose selection jumps back and forth across 5 chunks, sized
  // so the *output* also crosses several seams.
  Rel src = ExactRel(&rng, {0, 1}, 5 * kCap + 7, 1000);
  std::vector<uint32_t> sel;
  for (size_t k = 0; k < 3 * kCap + 5; ++k) {
    sel.push_back(static_cast<uint32_t>(rng.NextBounded(src.NumRows())));
  }
  for (int c = 0; c < src.arity(); ++c) {
    Column seq;
    seq.AppendGather(*src.col(c), sel);
    Column built = Column::Gathered(*src.col(c), sel);
    ASSERT_EQ(seq.size(), sel.size());
    ASSERT_EQ(built.size(), sel.size());
    for (size_t k = 0; k < sel.size(); ++k) {
      EXPECT_EQ(seq.Get(k), src.col(c)->Get(sel[k])) << "col " << c << " " << k;
      EXPECT_EQ(built.Get(k), seq.Get(k)) << "col " << c << " " << k;
    }
  }
}

/// Reference semi-join reduction: same pass structure as SemiJoinReduce but
/// with naive row-at-a-time membership checks.
std::vector<std::vector<size_t>> RefSemiJoinRows(const Database& db,
                                                 const ConjunctiveQuery& q,
                                                 int max_passes) {
  const int m = q.num_atoms();
  // Kept row indices per atom (into the original table), after the
  // constant / repeated-variable filter.
  std::vector<const Table*> tables(m);
  std::vector<std::vector<size_t>> kept(m);
  for (int i = 0; i < m; ++i) {
    tables[i] = *db.GetTable(q.atom(i).relation);
    const Atom& a = q.atom(i);
    for (size_t r = 0; r < tables[i]->NumRows(); ++r) {
      bool pass = true;
      std::map<VarId, Value> bound;
      for (int p = 0; p < a.arity() && pass; ++p) {
        const Term& t = a.terms[p];
        Value v = tables[i]->At(r, p);
        if (!t.is_var) {
          pass = v == t.constant;
        } else {
          auto [it, inserted] = bound.try_emplace(t.var, v);
          if (!inserted) pass = it->second == v;
        }
      }
      if (pass) kept[i].push_back(r);
    }
  }
  auto positions = [&](int atom_idx, const std::vector<VarId>& vars) {
    const Atom& a = q.atom(atom_idx);
    std::vector<int> pos;
    for (VarId v : vars) {
      for (int p = 0; p < a.arity(); ++p) {
        if (a.terms[p].is_var && a.terms[p].var == v) {
          pos.push_back(p);
          break;
        }
      }
    }
    return pos;
  };
  bool changed = true;
  int pass = 0;
  while (changed && pass < max_passes) {
    changed = false;
    ++pass;
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < m; ++j) {
        if (i == j) continue;
        VarMask shared = q.AtomMask(i) & q.AtomMask(j);
        if (!shared) continue;
        std::vector<VarId> vars = MaskToVars(shared);
        std::vector<int> pi = positions(i, vars);
        std::vector<int> pj = positions(j, vars);
        std::vector<size_t> still;
        for (size_t r : kept[i]) {
          bool found = false;
          for (size_t s : kept[j]) {
            bool eq = true;
            for (size_t kk = 0; kk < pi.size(); ++kk) {
              if (tables[i]->At(r, pi[kk]) != tables[j]->At(s, pj[kk])) {
                eq = false;
                break;
              }
            }
            if (eq) {
              found = true;
              break;
            }
          }
          if (found) still.push_back(r);
        }
        if (still.size() != kept[i].size()) {
          kept[i] = std::move(still);
          changed = true;
        }
      }
    }
  }
  return kept;
}

TEST(DifferentialTest, SemiJoinReduceMatchesReference) {
  for (int seed = 0; seed < kInstances; ++seed) {
    Rng rng(5000 + seed);
    RandomQuerySpec qs;
    qs.min_atoms = 2;
    qs.max_atoms = 4;
    ConjunctiveQuery q = RandomQuery(&rng, qs);
    RandomInstanceSpec is;
    is.max_rows = 8;
    is.domain = 3;
    Database db = RandomDatabaseFor(q, &rng, is);

    auto reduced = SemiJoinReduce(db, q);
    ASSERT_TRUE(reduced.ok()) << seed;
    auto ref = RefSemiJoinRows(db, q, 4);

    for (int i = 0; i < q.num_atoms(); ++i) {
      const Table* orig = *db.GetTable(q.atom(i).relation);
      ASSERT_EQ((*reduced)[i].NumRows(), ref[i].size())
          << "atom " << i << " seed " << seed;
      for (size_t k = 0; k < ref[i].size(); ++k) {
        for (int c = 0; c < orig->arity(); ++c) {
          EXPECT_EQ((*reduced)[i].At(k, c), orig->At(ref[i][k], c))
              << "atom " << i << " row " << k << " seed " << seed;
        }
        EXPECT_DOUBLE_EQ((*reduced)[i].Prob(k), orig->Prob(ref[i][k]))
            << "atom " << i << " row " << k << " seed " << seed;
      }
    }
  }
}

}  // namespace
}  // namespace dissodb
