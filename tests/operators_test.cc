// Unit tests for the execution operators: scan, hash join, projections, min.
#include <gtest/gtest.h>

#include <span>
#include <utility>

#include "src/common/rng.h"
#include "src/common/simd.h"
#include "src/exec/operators.h"
#include "src/serve/scheduler.h"
#include "tests/test_util.h"

namespace dissodb {
namespace {

using testing_util::AddTable;
using testing_util::Q;
using testing_util::Vars;

TEST(ScanTest, EmitsVariablesInAscendingOrder) {
  auto q = Q("q() :- R(y,x)");  // y gets id 0, x gets id 1
  Database db;
  AddTable(&db, "R", 2, {{{7, 8}, 0.5}});
  auto rel = ScanAtom(db, q, 0);
  ASSERT_TRUE(rel.ok());
  ASSERT_EQ(rel->NumRows(), 1u);
  ASSERT_EQ(rel->arity(), 2);
  // Column order follows VarId order (y=0 then x=1), values from positions.
  EXPECT_EQ(rel->At(0, 0), Value::Int64(7));  // y
  EXPECT_EQ(rel->At(0, 1), Value::Int64(8));  // x
  EXPECT_DOUBLE_EQ(rel->Score(0), 0.5);
}

TEST(ScanTest, ConstantSelection) {
  auto q = Q("q() :- R(x, 5)");
  Database db;
  AddTable(&db, "R", 2, {{{1, 5}, 0.3}, {{2, 6}, 0.4}, {{3, 5}, 0.5}});
  auto rel = ScanAtom(db, q, 0);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->NumRows(), 2u);
}

TEST(ScanTest, RepeatedVariableSelection) {
  auto q = Q("q() :- R(x, x)");
  Database db;
  AddTable(&db, "R", 2, {{{1, 1}, 0.3}, {{1, 2}, 0.4}, {{2, 2}, 0.5}});
  auto rel = ScanAtom(db, q, 0);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->NumRows(), 2u);
  EXPECT_EQ(rel->arity(), 1);
}

TEST(ScanTest, OverrideTableUsed) {
  auto q = Q("q() :- R(x)");
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.5}, {{2}, 0.5}});
  Table small(RelationSchema::AllInt64("R", 1));
  small.AddRow({Value::Int64(9)}, 0.9);
  auto rel = ScanAtom(db, q, 0, &small);
  ASSERT_TRUE(rel.ok());
  ASSERT_EQ(rel->NumRows(), 1u);
  EXPECT_EQ(rel->At(0, 0), Value::Int64(9));
}

TEST(ScanTest, MissingTableFails) {
  auto q = Q("q() :- Nope(x)");
  Database db;
  EXPECT_FALSE(ScanAtom(db, q, 0).ok());
}

TEST(HashJoinTest, ScoresMultiply) {
  auto q = Q("q() :- R(x), S(x,y)");
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.5}, {{2}, 0.25}});
  AddTable(&db, "S", 2, {{{1, 4}, 0.4}, {{1, 5}, 0.8}, {{3, 6}, 0.9}});
  auto r = ScanAtom(db, q, 0);
  auto s = ScanAtom(db, q, 1);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(s.ok());
  Rel joined = HashJoin(*r, *s);
  ASSERT_EQ(joined.NumRows(), 2u);  // x=1 matches two S rows; x=2,3 none
  for (size_t i = 0; i < joined.NumRows(); ++i) {
    double expected = joined.At(i, joined.ColIndex(q.FindVar("y"))) ==
                              Value::Int64(4)
                          ? 0.5 * 0.4
                          : 0.5 * 0.8;
    EXPECT_DOUBLE_EQ(joined.Score(i), expected);
  }
}

TEST(HashJoinTest, CartesianWhenNoSharedVars) {
  auto q = Q("q() :- R(x), S(y)");
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.5}, {{2}, 0.5}});
  AddTable(&db, "S", 1, {{{7}, 0.5}, {{8}, 0.5}, {{9}, 0.5}});
  auto r = ScanAtom(db, q, 0);
  auto s = ScanAtom(db, q, 1);
  Rel joined = HashJoin(*r, *s);
  EXPECT_EQ(joined.NumRows(), 6u);
}

TEST(HashJoinTest, MultiColumnKeys) {
  auto q = Q("q() :- R(x,y), S(x,y)");
  Database db;
  AddTable(&db, "R", 2, {{{1, 1}, 0.5}, {{1, 2}, 0.5}});
  AddTable(&db, "S", 2, {{{1, 1}, 0.5}, {{2, 2}, 0.5}});
  auto r = ScanAtom(db, q, 0);
  auto s = ScanAtom(db, q, 1);
  Rel joined = HashJoin(*r, *s);
  ASSERT_EQ(joined.NumRows(), 1u);
  EXPECT_EQ(joined.At(0, 0), Value::Int64(1));
  EXPECT_EQ(joined.At(0, 1), Value::Int64(1));
}

TEST(ProjectIndependentTest, CombinesGroupScores) {
  auto q = Q("q() :- S(x,y)");
  Database db;
  AddTable(&db, "S", 2, {{{1, 4}, 0.5}, {{1, 5}, 0.5}, {{2, 6}, 0.25}});
  auto s = ScanAtom(db, q, 0);
  Rel projected = ProjectIndependent(*s, Vars(q, {"x"}));
  ASSERT_EQ(projected.NumRows(), 2u);
  for (size_t i = 0; i < projected.NumRows(); ++i) {
    if (projected.At(i, 0) == Value::Int64(1)) {
      EXPECT_DOUBLE_EQ(projected.Score(i), 1.0 - 0.5 * 0.5);  // 0.75
    } else {
      EXPECT_DOUBLE_EQ(projected.Score(i), 0.25);
    }
  }
}

TEST(ProjectIndependentTest, BooleanProjection) {
  auto q = Q("q() :- R(x)");
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.5}, {{2}, 0.5}});
  auto r = ScanAtom(db, q, 0);
  Rel b = ProjectIndependent(*r, 0);
  ASSERT_EQ(b.NumRows(), 1u);
  EXPECT_EQ(b.arity(), 0);
  EXPECT_DOUBLE_EQ(b.Score(0), 0.75);
}

TEST(ProjectDistinctTest, DropsScores) {
  auto q = Q("q() :- S(x,y)");
  Database db;
  AddTable(&db, "S", 2, {{{1, 4}, 0.5}, {{1, 5}, 0.5}});
  auto s = ScanAtom(db, q, 0);
  Rel d = ProjectDistinct(*s, Vars(q, {"x"}));
  ASSERT_EQ(d.NumRows(), 1u);
  EXPECT_DOUBLE_EQ(d.Score(0), 1.0);
}

TEST(MinMergeTest, TakesPerRowMinimum) {
  Rel a({0});
  a.AddRow(std::vector<Value>{Value::Int64(1)}, 0.5);
  a.AddRow(std::vector<Value>{Value::Int64(2)}, 0.9);
  Rel b({0});
  b.AddRow(std::vector<Value>{Value::Int64(1)}, 0.3);
  b.AddRow(std::vector<Value>{Value::Int64(2)}, 0.95);
  auto m = MinMerge({a, b});
  ASSERT_TRUE(m.ok());
  ASSERT_EQ(m->NumRows(), 2u);
  for (size_t i = 0; i < m->NumRows(); ++i) {
    double expect = m->At(i, 0) == Value::Int64(1) ? 0.3 : 0.9;
    EXPECT_DOUBLE_EQ(m->Score(i), expect);
  }
}

TEST(MinMergeTest, MismatchedVarsRejected) {
  Rel a({0});
  Rel b({1});
  EXPECT_FALSE(MinMerge({a, b}).ok());
}

TEST(MinMergeTest, BooleanRelations) {
  Rel a({});
  a.AddRow({}, 0.8);
  Rel b({});
  b.AddRow({}, 0.6);
  auto m = MinMerge({a, b});
  ASSERT_TRUE(m.ok());
  ASSERT_EQ(m->NumRows(), 1u);
  EXPECT_DOUBLE_EQ(m->Score(0), 0.6);
}

TEST(RelTest, ColIndexBinarySearch) {
  Rel r({0, 3, 5});
  EXPECT_EQ(r.ColIndex(0), 0);
  EXPECT_EQ(r.ColIndex(3), 1);
  EXPECT_EQ(r.ColIndex(5), 2);
  EXPECT_EQ(r.ColIndex(4), -1);
}

// ---------------------------------------------------------------------------
// Morsel-parallel operator paths must be bit-identical to the sequential
// ones: same rows, same order, same floating-point fold order.
// ---------------------------------------------------------------------------

Rel RandomBinaryRel(VarId a, VarId b, size_t rows, int64_t domain,
                    uint64_t seed) {
  Rng rng(seed);
  Rel r(std::vector<VarId>{a, b});
  r.Reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    std::vector<Value> row = {
        Value::Int64(rng.NextInt(0, domain - 1)),
        Value::Int64(rng.NextInt(0, domain - 1))};
    r.AddRow(row, 0.05 + 0.9 * rng.NextDouble());
  }
  return r;
}

void ExpectBitIdentical(const Rel& a, const Rel& b) {
  ASSERT_EQ(a.NumRows(), b.NumRows());
  ASSERT_EQ(a.vars(), b.vars());
  for (size_t r = 0; r < a.NumRows(); ++r) {
    for (int c = 0; c < a.arity(); ++c) {
      ASSERT_EQ(a.At(r, c), b.At(r, c)) << "row " << r << " col " << c;
    }
    ASSERT_EQ(a.Score(r), b.Score(r)) << "row " << r;
  }
}

TEST(ParallelOperatorsTest, HashJoinMatchesSequentialBitForBit) {
  // Large enough to trip both the partitioned build (>= 16Ki rows) and the
  // morsel-parallel probe (>= 32Ki rows).
  Rel left = RandomBinaryRel(0, 1, 36'000, 18'000, 41);
  Rel right = RandomBinaryRel(1, 2, 40'000, 18'000, 42);

  Rel sequential = HashJoin(left, right);
  Scheduler pool(4);
  Rel parallel = HashJoin(left, right, &pool);
  EXPECT_GT(sequential.NumRows(), 0u);
  ExpectBitIdentical(sequential, parallel);
  EXPECT_GT(pool.tasks_executed(), 1u);
}

TEST(ParallelOperatorsTest, ProjectIndependentMatchesSequentialBitForBit) {
  Rel in = RandomBinaryRel(0, 1, 50'000, 700, 43);
  Rel sequential = ProjectIndependent(in, MaskOf(0));
  Scheduler pool(4);
  Rel parallel = ProjectIndependent(in, MaskOf(0), &pool);
  EXPECT_GT(sequential.NumRows(), 0u);
  ExpectBitIdentical(sequential, parallel);
}

TEST(ParallelOperatorsTest, ProjectDistinctMatchesSequentialBitForBit) {
  Rel in = RandomBinaryRel(0, 1, 40'000, 120, 44);
  Rel sequential = ProjectDistinct(in, MaskOf(0) | MaskOf(1));
  Scheduler pool(3);
  Rel parallel = ProjectDistinct(in, MaskOf(0) | MaskOf(1), &pool);
  ExpectBitIdentical(sequential, parallel);
}

TEST(ParallelOperatorsTest, SmallInputsBypassTheParallelPath) {
  // Below the morsel threshold the scheduler must be ignored entirely.
  Rel left = RandomBinaryRel(0, 1, 100, 20, 45);
  Rel right = RandomBinaryRel(1, 2, 80, 20, 46);
  Scheduler pool(2);
  ExpectBitIdentical(HashJoin(left, right), HashJoin(left, right, &pool));
  ExpectBitIdentical(ProjectIndependent(left, MaskOf(0)),
                     ProjectIndependent(left, MaskOf(0), &pool));
}

// ---------------------------------------------------------------------------
// Chunked filtered scans: chunk-parallel selection and zone-map pruning
// must emit exactly the sequential relation (row order included).
// ---------------------------------------------------------------------------

using testing_util::ChunkCapOverride;

/// R(a, b) with `rows` rows: column a clustered (row i gets i / cluster),
/// column b pseudo-random in [0, domain).
Database ClusteredDatabase(size_t rows, int64_t cluster, int64_t domain,
                           uint64_t seed) {
  Rng rng(seed);
  Database db;
  Table t(RelationSchema::AllInt64("R", 2));
  for (size_t i = 0; i < rows; ++i) {
    t.AddRow({Value::Int64(static_cast<int64_t>(i) / cluster),
              Value::Int64(rng.NextInt(0, domain - 1))},
             0.05 + 0.9 * rng.NextDouble());
  }
  auto r = db.AddTable(std::move(t));
  EXPECT_TRUE(r.ok());
  return db;
}

TEST(ChunkedScanTest, ParallelFilteredScanIsBitIdenticalToSequential) {
  ChunkCapOverride cap(1024);
  // 40k rows = 40 chunks, above the parallel threshold; the predicate on
  // the random column keeps every chunk alive (no pruning interference).
  Database db = ClusteredDatabase(40'000, 1'000'000, 50, 7);
  auto q = Q("q(x) :- R(x, 5)");

  ChunkedScanStats seq_stats;
  auto sequential = ScanAtom(db, q, 0, nullptr, nullptr, &seq_stats);
  ASSERT_TRUE(sequential.ok());
  EXPECT_GT(sequential->NumRows(), 0u);
  EXPECT_EQ(seq_stats.parallel_scans, 0u);
  EXPECT_EQ(seq_stats.filtered_scans, 1u);

  Scheduler pool(4);
  ChunkedScanStats par_stats;
  auto parallel = ScanAtom(db, q, 0, nullptr, &pool, &par_stats);
  ASSERT_TRUE(parallel.ok());
  ExpectBitIdentical(*sequential, *parallel);
  EXPECT_EQ(par_stats.parallel_scans, 1u);
  EXPECT_EQ(par_stats.rows_selected, sequential->NumRows());
  EXPECT_EQ(par_stats.chunks_scanned + par_stats.chunks_pruned, 40u);
}

TEST(ChunkedScanTest, ZoneMapsPruneChunksOnClusteredConstants) {
  ChunkCapOverride cap(1024);
  // Column a is monotone (i / 1000): the constant 17 lives in rows
  // 17000..17999, i.e. at most 2 of the 40 chunks; zone maps must skip
  // at least 90% of the chunks without changing the result.
  Database db = ClusteredDatabase(40'000, 1'000, 50, 11);
  auto q = Q("q(x) :- R(17, x)");

  ChunkedScanStats stats;
  auto rel = ScanAtom(db, q, 0, nullptr, nullptr, &stats);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->NumRows(), 1000u);
  const size_t total = stats.chunks_scanned + stats.chunks_pruned;
  ASSERT_EQ(total, 40u);
  EXPECT_GE(stats.chunks_pruned, (total * 9) / 10);

  // Pruning must be invisible in the output: same result as the same scan
  // over an unclustered copy of the data where nothing can be pruned.
  Scheduler pool(4);
  ChunkedScanStats par_stats;
  auto par = ScanAtom(db, q, 0, nullptr, &pool, &par_stats);
  ASSERT_TRUE(par.ok());
  ExpectBitIdentical(*rel, *par);
  EXPECT_EQ(par_stats.chunks_pruned, stats.chunks_pruned);
}

TEST(ChunkedScanTest, ZoneMapTypeMismatchPrunesEverything) {
  ChunkCapOverride cap(64);
  Database db = ClusteredDatabase(1'000, 10, 50, 13);
  StringPool pool;
  // Constant of a different type than the uniform INT64 column: the scan
  // must produce an empty relation with every chunk pruned.
  auto q = Q("q(x) :- R('nope', x)", &pool);
  ChunkedScanStats stats;
  auto rel = ScanAtom(db, q, 0, nullptr, nullptr, &stats);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->NumRows(), 0u);
  EXPECT_EQ(stats.chunks_scanned, 0u);
  EXPECT_GT(stats.chunks_pruned, 0u);
}

// ---------------------------------------------------------------------------
// SIMD kernels vs their scalar references. Hashing and gathers must be
// bit-exact; the fused Boolean accumulator is reassociated and gets a
// pinned ULP tolerance. Sizes straddle the 4-wide AVX2 lane boundary
// (0, 1, W-1, W, W+1, 2W+1) and — with an 8-payload chunk cap — the
// chunk seams the range kernels iterate over.
// ---------------------------------------------------------------------------

/// Pins the scalar reference path for its scope; the destructor restores
/// the startup dispatch decision (which may still be scalar on non-AVX2
/// hosts — the comparisons below are then trivially true but still valid).
class ScopedScalarFallback {
 public:
  ScopedScalarFallback() { simd::SetSimdEnabledForTesting(false); }
  ~ScopedScalarFallback() { simd::SetSimdEnabledForTesting(true); }
};

TEST(SimdDifferentialTest, HashKeyColumnsMatchesScalarAtLaneBoundaries) {
  ChunkCapOverride cap(8);
  const std::vector<int> keys = {0, 1};
  for (size_t n : {0u, 1u, 3u, 4u, 5u, 7u, 8u, 9u, 15u, 16u, 17u, 33u}) {
    Rel in = RandomBinaryRel(0, 1, n, 1'000'000, 100 + n);
    HashVector vec = HashKeyColumns(in, keys);
    ScopedScalarFallback scalar;
    HashVector ref = HashKeyColumns(in, keys);
    ASSERT_EQ(vec.size(), n);
    ASSERT_EQ(ref.size(), n);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(vec[i], ref[i]) << "n=" << n << " row " << i;
    }
  }
}

TEST(SimdDifferentialTest, HashCombineRangeMatchesScalarAcrossChunkSeams) {
  ChunkCapOverride cap(8);
  // 33 rows = 5 chunks; ranges chosen to start/end mid-chunk and mid-lane.
  Rel in = RandomBinaryRel(0, 1, 33, 1'000'000, 7);
  const Column& col = *in.col(0);
  for (auto [begin, len] : std::initializer_list<std::pair<size_t, size_t>>{
           {0, 33}, {1, 31}, {3, 9}, {7, 4}, {8, 8}, {15, 17}, {30, 3}}) {
    HashVector vec(len, kHashSeed);
    col.HashCombineRange(begin, vec);
    ScopedScalarFallback scalar;
    HashVector ref(len, kHashSeed);
    col.HashCombineRange(begin, ref);
    for (size_t i = 0; i < len; ++i) {
      ASSERT_EQ(vec[i], ref[i]) << "begin=" << begin << " i=" << i;
    }
    // init=true must ignore prior contents and start from kHashSeed.
    HashVector from_seed(len, 0xdeadbeefULL);
    col.HashCombineRange(begin, from_seed, /*init=*/true);
    for (size_t i = 0; i < len; ++i) {
      ASSERT_EQ(from_seed[i], ref[i]) << "begin=" << begin << " i=" << i;
    }
  }
}

TEST(SimdDifferentialTest, GatheredHardwareKernelMatchesScalar) {
  ChunkCapOverride cap(8);
  Rel in = RandomBinaryRel(0, 1, 43, 1'000'000, 9);  // 6 chunks
  const Column& src = *in.col(1);
  // Out-of-order, duplicated, seam-crossing selection at a lane-odd size.
  std::vector<uint32_t> sel;
  for (uint32_t k = 0; k < 37; ++k) sel.push_back((k * 19 + 5) % 43);
  sel.push_back(7);
  sel.push_back(7);

  simd::SetHardwareGatherForTesting(false);
  Column scalar = Column::Gathered(src, sel);
  simd::SetHardwareGatherForTesting(true);
  Column hw = Column::Gathered(src, sel);
  simd::SetHardwareGatherForTesting(false);

  ASSERT_EQ(scalar.size(), sel.size());
  ASSERT_EQ(hw.size(), sel.size());
  for (size_t i = 0; i < sel.size(); ++i) {
    ASSERT_EQ(hw.RawBits(i), scalar.RawBits(i)) << "i=" << i;
    ASSERT_EQ(hw.RawBits(i), src.RawBits(sel[i])) << "i=" << i;
  }
  // Zone maps are rebuilt by the gather and must agree exactly too.
  ASSERT_EQ(hw.num_chunks(), scalar.num_chunks());
  for (size_t ci = 0; ci < hw.num_chunks(); ++ci) {
    EXPECT_EQ(hw.ChunkMinBits(ci), scalar.ChunkMinBits(ci)) << "chunk " << ci;
    EXPECT_EQ(hw.ChunkMaxBits(ci), scalar.ChunkMaxBits(ci)) << "chunk " << ci;
  }
}

TEST(SimdDifferentialTest, HashJoinMatchesScalarBitForBit) {
  // Big enough to engage the prefetched + Bloom-filtered probe path and
  // the partitioned build; seeded so most probes miss (Bloom stays on).
  Rel left = RandomBinaryRel(0, 1, 36'000, 200'000, 51);
  Rel right = RandomBinaryRel(1, 2, 40'000, 200'000, 52);
  Rel vec = HashJoin(left, right);
  ScopedScalarFallback scalar;
  Rel ref = HashJoin(left, right);
  ExpectBitIdentical(ref, vec);
}

TEST(SimdDifferentialTest, KeyedProjectionMatchesScalarBitForBit) {
  Rel in = RandomBinaryRel(0, 1, 50'000, 700, 53);
  Rel vec = ProjectIndependent(in, MaskOf(0));
  ScopedScalarFallback scalar;
  Rel ref = ProjectIndependent(in, MaskOf(0));
  EXPECT_GT(ref.NumRows(), 0u);
  ExpectBitIdentical(ref, vec);
}

TEST(SimdDifferentialTest, FusedBooleanScoreWithinPinnedTolerance) {
  // The fused accumulator reassociates the complement product across four
  // lanes; this pins the documented tolerance vs the sequential scalar
  // fold. Sizes straddle the kFusedMinRows=256 engagement threshold and
  // the lane tail (n % 4 != 0).
  for (size_t n : {255u, 256u, 257u, 511u, 513u, 1023u, 1024u, 1025u}) {
    Rng rng(60 + n);
    Rel in(std::vector<VarId>{0});
    in.Reserve(n);
    for (size_t i = 0; i < n; ++i) {
      // Small probabilities keep the product well away from underflow so
      // only lane reassociation separates the two paths.
      in.AddRow(std::vector<Value>{Value::Int64(static_cast<int64_t>(i))},
                0.00001 + 0.0001 * rng.NextDouble());
    }
    Rel vec = ProjectIndependent(in, 0);
    ScopedScalarFallback scalar;
    Rel ref = ProjectIndependent(in, 0);
    ASSERT_EQ(vec.NumRows(), 1u);
    ASSERT_EQ(ref.NumRows(), 1u);
    EXPECT_NEAR(vec.Score(0), ref.Score(0), 1e-12) << "n=" << n;
  }
}

TEST(SimdDifferentialTest, FusedBooleanScoreSurvivesLogSpaceFlush) {
  // High per-row probabilities drive every complement-product lane below
  // the 1e-128 flush threshold (0.05^128 per lane at the first check):
  // the fused path must drain into log space instead of underflowing,
  // and both paths must agree the query is certainly true.
  const size_t n = 2048;
  Rng rng(61);
  Rel in(std::vector<VarId>{0});
  in.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    in.AddRow(std::vector<Value>{Value::Int64(static_cast<int64_t>(i))},
              0.94 + 0.05 * rng.NextDouble());
  }
  Rel vec = ProjectIndependent(in, 0);
  ScopedScalarFallback scalar;
  Rel ref = ProjectIndependent(in, 0);
  ASSERT_EQ(vec.NumRows(), 1u);
  EXPECT_DOUBLE_EQ(ref.Score(0), 1.0);
  EXPECT_DOUBLE_EQ(vec.Score(0), 1.0);
}

// ---------------------------------------------------------------------------
// Fully pruned inputs must short-circuit before any parallel fan-out:
// no per-chunk scan tasks, no hash tasks, no gather tasks.
// ---------------------------------------------------------------------------

TEST(PrunedInputTest, FullyPrunedScanSpawnsNoTasks) {
  ChunkCapOverride cap(64);
  Database db = ClusteredDatabase(4'000, 10, 50, 21);
  StringPool sp;
  auto q = Q("q(x) :- R('nope', x)", &sp);  // type mismatch prunes all chunks
  Scheduler pool(4);
  ChunkedScanStats stats;
  auto rel = ScanAtom(db, q, 0, nullptr, &pool, &stats);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->NumRows(), 0u);
  EXPECT_EQ(stats.chunks_scanned, 0u);
  EXPECT_GT(stats.chunks_pruned, 0u);
  EXPECT_EQ(pool.tasks_executed(), 0u);
}

TEST(PrunedInputTest, EmptyInputsSpawnNoHashOrGatherTasks) {
  ChunkCapOverride cap(64);
  Scheduler pool(4);
  Rel empty(std::vector<VarId>{0, 1});
  const std::vector<int> keys = {0, 1};
  EXPECT_TRUE(HashKeyColumns(empty, keys, &pool).empty());

  Rel in = RandomBinaryRel(0, 1, 1'000, 100, 22);
  Column out = Column::Gathered(*in.col(0), std::span<const uint32_t>(),
                                &pool);
  EXPECT_EQ(out.size(), 0u);
  EXPECT_EQ(pool.tasks_executed(), 0u);
}

TEST(ChunkedScanTest, RepeatedVariableSelectionAcrossChunkSeams) {
  ChunkCapOverride cap(8);
  auto q = Q("q(x) :- R(x, x)");
  Database db;
  Table t(RelationSchema::AllInt64("R", 2));
  // 20 rows (3 chunks): every 3rd row satisfies a = b.
  for (int64_t i = 0; i < 20; ++i) {
    t.AddRow({Value::Int64(i), Value::Int64(i % 3 == 0 ? i : -1)}, 0.5);
  }
  ASSERT_TRUE(db.AddTable(std::move(t)).ok());
  auto rel = ScanAtom(db, q, 0);
  ASSERT_TRUE(rel.ok());
  ASSERT_EQ(rel->NumRows(), 7u);  // i = 0, 3, 6, 9, 12, 15, 18
  for (size_t r = 0; r < rel->NumRows(); ++r) {
    EXPECT_EQ(rel->At(r, 0), Value::Int64(static_cast<int64_t>(r) * 3));
  }
}

}  // namespace
}  // namespace dissodb
