// Columnar storage core: typed columns, zero-copy sharing with
// copy-on-write, and the unified zero-arity row accounting shared by Table
// and Rel.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "src/exec/operators.h"
#include "src/exec/rel.h"
#include "src/serve/scheduler.h"
#include "src/storage/columnar.h"
#include "src/storage/table.h"
#include "tests/test_util.h"

namespace dissodb {
namespace {

using testing_util::AddTable;
using testing_util::Q;

TEST(ColumnTest, TypedAppendAndGet) {
  Column c;
  c.Append(Value::Int64(42));
  c.Append(Value::Int64(-7));
  EXPECT_EQ(c.type(), ValueType::kInt64);
  EXPECT_TRUE(c.uniform());
  EXPECT_EQ(c.Get(0), Value::Int64(42));
  EXPECT_EQ(c.Get(1), Value::Int64(-7));
}

TEST(ColumnTest, DoubleRoundTripsThroughRawBits) {
  Column c;
  c.Append(Value::Double(0.25));
  c.Append(Value::Double(-1.5e300));
  EXPECT_EQ(c.Get(0), Value::Double(0.25));
  EXPECT_EQ(c.Get(1), Value::Double(-1.5e300));
}

TEST(ColumnTest, MixedTypesDemoteToTaggedStorage) {
  Column c;
  c.Append(Value::Int64(1));
  c.Append(Value::Double(2.5));  // type mismatch -> per-element tags
  EXPECT_FALSE(c.uniform());
  EXPECT_EQ(c.Get(0), Value::Int64(1));
  EXPECT_EQ(c.Get(1), Value::Double(2.5));
  EXPECT_FALSE(c.ElemEquals(0, c, 1));
}

TEST(ColumnTest, HashMatchesValueHash) {
  Column c;
  c.Append(Value::Int64(99));
  c.Append(Value::StringCode(3));
  EXPECT_EQ(c.HashAt(0), Value::Int64(99).Hash());
  EXPECT_EQ(c.HashAt(1), Value::StringCode(3).Hash());
}

TEST(ColumnarTest, ScanSharesTableColumnsZeroCopy) {
  Database db;
  AddTable(&db, "R", 2, {{{1, 2}, 0.5}, {{3, 4}, 0.25}});
  ConjunctiveQuery q = Q("q(x,y) :- R(x,y)");
  auto rel = ScanAtom(db, q, 0);
  ASSERT_TRUE(rel.ok());
  const Table* t = *db.GetTable("R");
  // Unfiltered scan: the Rel references the very same column objects.
  EXPECT_EQ(rel->col(0).get(), t->col(0).get());
  EXPECT_EQ(rel->col(1).get(), t->col(1).get());
  EXPECT_EQ(rel->weights().get(), t->weights().get());
}

TEST(ColumnarTest, CopyOnWriteLeavesSharedColumnsIntact) {
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.5}, {{2}, 0.25}});
  ConjunctiveQuery q = Q("q(x) :- R(x)");
  auto rel = ScanAtom(db, q, 0);
  ASSERT_TRUE(rel.ok());
  Rel copy = *rel;  // shallow
  EXPECT_EQ(copy.col(0).get(), rel->col(0).get());
  copy.SetScore(0, 0.99);  // triggers copy-on-write of the score column
  EXPECT_DOUBLE_EQ(copy.Score(0), 0.99);
  EXPECT_DOUBLE_EQ(rel->Score(0), 0.5);
  EXPECT_DOUBLE_EQ((*db.GetTable("R"))->Prob(0), 0.5);
}

TEST(ColumnarTest, TableShallowCopyThenMutateIsIsolated) {
  Table t(RelationSchema::AllInt64("R", 1));
  t.AddRow({Value::Int64(1)}, 0.5);
  Table copy = t;
  copy.SetProb(0, 0.9);
  EXPECT_DOUBLE_EQ(t.Prob(0), 0.5);
  EXPECT_DOUBLE_EQ(copy.Prob(0), 0.9);
  copy.AddRow({Value::Int64(2)}, 0.1);
  EXPECT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(copy.NumRows(), 2u);
  EXPECT_EQ(t.At(0, 0), Value::Int64(1));
}

TEST(ColumnarTest, ZeroArityAccountingUnifiedAcrossTableAndRel) {
  Table t(RelationSchema::AllInt64("B", 0));
  t.AddRow(std::span<const Value>{}, 0.5);
  t.AddRow(std::span<const Value>{}, 0.25);
  EXPECT_EQ(t.NumRows(), 2u);
  EXPECT_DOUBLE_EQ(t.Prob(1), 0.25);

  Rel r(std::vector<VarId>{});
  r.AddRow({}, 0.75);
  r.AddRow({}, 0.5);
  r.AddRow({}, 0.125);
  EXPECT_EQ(r.NumRows(), 3u);
  EXPECT_DOUBLE_EQ(r.Score(2), 0.125);

  // Reserve must be harmless for zero-arity relations too.
  t.Reserve(10);
  r.Reserve(10);
  EXPECT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(r.NumRows(), 3u);
}

TEST(ColumnarTest, SelectAllRowsSharesColumns) {
  Table t(RelationSchema::AllInt64("R", 1));
  t.AddRow({Value::Int64(1)}, 0.5);
  t.AddRow({Value::Int64(2)}, 0.25);
  std::vector<uint32_t> all = {0, 1};
  Table s = t.Select(all);
  EXPECT_EQ(s.col(0).get(), t.col(0).get());
  std::vector<uint32_t> some = {1};
  Table s2 = t.Select(some);
  EXPECT_EQ(s2.NumRows(), 1u);
  EXPECT_EQ(s2.At(0, 0), Value::Int64(2));
  EXPECT_DOUBLE_EQ(s2.Prob(0), 0.25);
}

// ---------------------------------------------------------------------------
// Chunked layout: fixed-size sealed chunks, copy-on-write at chunk
// granularity, per-chunk zone maps, and chunk-seam-crossing primitives.
// ---------------------------------------------------------------------------

using testing_util::ChunkCapOverride;

TEST(ChunkedColumnTest, SealsChunksAtCapacityAndIndexesAcrossSeams) {
  ChunkCapOverride cap(4);
  Column c;
  for (int64_t i = 0; i < 10; ++i) c.Append(Value::Int64(100 + i));
  EXPECT_EQ(c.size(), 10u);
  ASSERT_EQ(c.num_chunks(), 3u);
  EXPECT_EQ(c.ChunkSize(0), 4u);
  EXPECT_EQ(c.ChunkSize(1), 4u);
  EXPECT_EQ(c.ChunkSize(2), 2u);
  EXPECT_EQ(c.ChunkBegin(2), 8u);
  for (int64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(c.Get(i), Value::Int64(100 + i)) << i;
    EXPECT_EQ(c.RawBits(i), static_cast<uint64_t>(100 + i)) << i;
  }
}

TEST(ChunkedColumnTest, CopyOnWriteDetachesOnlyTheTailChunk) {
  ChunkCapOverride cap(4);
  Column a;
  for (int64_t i = 0; i < 6; ++i) a.Append(Value::Int64(i));
  Column b = a;  // shallow: shares both chunks
  EXPECT_EQ(a.chunk(0).get(), b.chunk(0).get());
  EXPECT_EQ(a.chunk(1).get(), b.chunk(1).get());
  b.Append(Value::Int64(99));
  // Only the tail chunk being written detaches; the sealed chunk stays
  // shared and the original column is untouched.
  EXPECT_EQ(a.chunk(0).get(), b.chunk(0).get());
  EXPECT_NE(a.chunk(1).get(), b.chunk(1).get());
  EXPECT_EQ(a.size(), 6u);
  EXPECT_EQ(b.size(), 7u);
  EXPECT_EQ(b.Get(6), Value::Int64(99));
  EXPECT_EQ(a.Get(5), Value::Int64(5));
}

TEST(ChunkedColumnTest, ZoneMapsTrackPerChunkMinMax) {
  ChunkCapOverride cap(4);
  Column c;
  const int64_t vals[] = {5, 3, 9, 7, 20, 11, 15, 12, 2};
  for (int64_t v : vals) c.Append(Value::Int64(v));
  ASSERT_EQ(c.num_chunks(), 3u);
  EXPECT_EQ(c.ChunkMinBits(0), 3u);
  EXPECT_EQ(c.ChunkMaxBits(0), 9u);
  EXPECT_EQ(c.ChunkMinBits(1), 11u);
  EXPECT_EQ(c.ChunkMaxBits(1), 20u);
  EXPECT_EQ(c.ChunkMinBits(2), 2u);
  EXPECT_EQ(c.ChunkMaxBits(2), 2u);
}

TEST(ChunkedColumnTest, AppendGatherCrossesChunkSeamsOnBothSides) {
  ChunkCapOverride cap(4);
  Column src;
  for (int64_t i = 0; i < 11; ++i) src.Append(Value::Int64(1000 + i));
  Column dst;
  dst.Append(Value::Int64(-1));  // non-empty destination with tail room
  const std::vector<uint32_t> idx = {0, 3, 4, 5, 7, 10, 2, 8, 8, 1};
  dst.AppendGather(src, idx);
  ASSERT_EQ(dst.size(), 1u + idx.size());
  EXPECT_EQ(dst.Get(0), Value::Int64(-1));
  for (size_t k = 0; k < idx.size(); ++k) {
    EXPECT_EQ(dst.Get(1 + k), src.Get(idx[k])) << k;
  }
  EXPECT_EQ(dst.num_chunks(), 3u);  // 11 elements at capacity 4
}

TEST(ChunkedColumnTest, GatheredParallelIsBitIdenticalToSequential) {
  ChunkCapOverride cap(4);
  Column src;
  for (int64_t i = 0; i < 64; ++i) src.Append(Value::Int64(i * 3));
  std::vector<uint32_t> sel;
  for (uint32_t i = 0; i < 64; i += 2) {
    sel.push_back(i);
    sel.push_back(63 - i);
  }
  Column seq = Column::Gathered(src, sel, nullptr);
  Scheduler pool(3);
  Column par = Column::Gathered(src, sel, &pool);
  ASSERT_EQ(seq.size(), sel.size());
  ASSERT_EQ(par.size(), sel.size());
  ASSERT_EQ(seq.num_chunks(), par.num_chunks());
  for (size_t k = 0; k < sel.size(); ++k) {
    EXPECT_EQ(seq.Get(k), src.Get(sel[k])) << k;
    EXPECT_EQ(par.Get(k), seq.Get(k)) << k;
  }
  for (size_t ci = 0; ci < seq.num_chunks(); ++ci) {
    EXPECT_EQ(seq.ChunkMinBits(ci), par.ChunkMinBits(ci)) << ci;
    EXPECT_EQ(seq.ChunkMaxBits(ci), par.ChunkMaxBits(ci)) << ci;
  }
}

TEST(ChunkedColumnTest, HashCombineRangeMatchesFullHashing) {
  ChunkCapOverride cap(4);
  Column c;
  for (int64_t i = 0; i < 13; ++i) c.Append(Value::Int64(i * 17 % 7));
  std::vector<uint64_t> full(c.size(), 0x2545f491ULL);
  c.HashCombineInto(full);
  // Any chunk-seam-crossing split must reproduce the same hashes.
  std::vector<uint64_t> split(c.size(), 0x2545f491ULL);
  c.HashCombineRange(0, std::span(split.data(), 3));
  c.HashCombineRange(3, std::span(split.data() + 3, 7));
  c.HashCombineRange(10, std::span(split.data() + 10, 3));
  EXPECT_EQ(full, split);
}

TEST(ChunkedColumnTest, MixedTypeDemoteMaterializesTagsInEveryChunk) {
  ChunkCapOverride cap(4);
  Column a;
  for (int64_t i = 0; i < 6; ++i) a.Append(Value::Int64(i));
  Column b = a;  // shares chunks before the demote
  b.Append(Value::Double(2.5));
  EXPECT_FALSE(b.uniform());
  EXPECT_TRUE(a.uniform());  // demote detached the shared chunks
  for (int64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(b.Get(i), Value::Int64(i)) << i;
    EXPECT_EQ(a.Get(i), Value::Int64(i)) << i;
  }
  EXPECT_EQ(b.Get(6), Value::Double(2.5));
  EXPECT_FALSE(b.ElemEquals(0, b, 6));
}

TEST(ChunkedColumnTest, ReserveIsANoOpOnSharedColumnsWithoutGrowth) {
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.5}, {{2}, 0.25}});
  ConjunctiveQuery q = Q("q(x) :- R(x)");
  auto rel = ScanAtom(db, q, 0);
  ASSERT_TRUE(rel.ok());
  const Table* t = *db.GetTable("R");
  ASSERT_EQ(rel->col(0).get(), t->col(0).get());
  // A no-growth reservation must not silently deep-copy the shared scan
  // output (columns nor weights).
  rel->Reserve(rel->NumRows());
  EXPECT_EQ(rel->col(0).get(), t->col(0).get());
  EXPECT_EQ(rel->weights().get(), t->weights().get());
  rel->Reserve(0);
  EXPECT_EQ(rel->col(0).get(), t->col(0).get());
}

TEST(ChunkedColumnTest, TablesShareSealedChunksAcrossCopies) {
  ChunkCapOverride cap(4);
  Table t(RelationSchema::AllInt64("R", 1));
  for (int64_t i = 0; i < 9; ++i) t.AddRow({Value::Int64(i)}, 0.5);
  Table copy = t;
  copy.AddRow({Value::Int64(100)}, 0.25);
  // The append detached the Column object and its tail chunk only; both
  // sealed chunks are still physically shared between the two tables.
  ASSERT_NE(copy.col(0).get(), t.col(0).get());
  EXPECT_EQ(copy.col(0)->chunk(0).get(), t.col(0)->chunk(0).get());
  EXPECT_EQ(copy.col(0)->chunk(1).get(), t.col(0)->chunk(1).get());
  EXPECT_NE(copy.col(0)->chunk(2).get(), t.col(0)->chunk(2).get());
  EXPECT_EQ(t.NumRows(), 9u);
  EXPECT_EQ(copy.NumRows(), 10u);
}

TEST(ColumnarTest, HashKeyColumnsAgreeWithPerRowHashing) {
  Table t(RelationSchema::AllInt64("R", 2));
  t.AddRow({Value::Int64(1), Value::Int64(5)}, 1.0);
  t.AddRow({Value::Int64(1), Value::Int64(5)}, 1.0);
  t.AddRow({Value::Int64(2), Value::Int64(5)}, 1.0);
  std::vector<int> keys = {0, 1};
  auto h = HashKeyColumns(t, keys);
  EXPECT_EQ(h[0], h[1]);
  EXPECT_NE(h[0], h[2]);
  EXPECT_TRUE(KeysEqual(t, 0, keys, t, 1, keys));
  EXPECT_FALSE(KeysEqual(t, 0, keys, t, 2, keys));
}

}  // namespace
}  // namespace dissodb
