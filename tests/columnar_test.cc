// Columnar storage core: typed columns, zero-copy sharing with
// copy-on-write, and the unified zero-arity row accounting shared by Table
// and Rel.
#include <gtest/gtest.h>

#include "src/exec/operators.h"
#include "src/exec/rel.h"
#include "src/storage/columnar.h"
#include "src/storage/table.h"
#include "tests/test_util.h"

namespace dissodb {
namespace {

using testing_util::AddTable;
using testing_util::Q;

TEST(ColumnTest, TypedAppendAndGet) {
  Column c;
  c.Append(Value::Int64(42));
  c.Append(Value::Int64(-7));
  EXPECT_EQ(c.type(), ValueType::kInt64);
  EXPECT_TRUE(c.uniform());
  EXPECT_EQ(c.Get(0), Value::Int64(42));
  EXPECT_EQ(c.Get(1), Value::Int64(-7));
}

TEST(ColumnTest, DoubleRoundTripsThroughRawBits) {
  Column c;
  c.Append(Value::Double(0.25));
  c.Append(Value::Double(-1.5e300));
  EXPECT_EQ(c.Get(0), Value::Double(0.25));
  EXPECT_EQ(c.Get(1), Value::Double(-1.5e300));
}

TEST(ColumnTest, MixedTypesDemoteToTaggedStorage) {
  Column c;
  c.Append(Value::Int64(1));
  c.Append(Value::Double(2.5));  // type mismatch -> per-element tags
  EXPECT_FALSE(c.uniform());
  EXPECT_EQ(c.Get(0), Value::Int64(1));
  EXPECT_EQ(c.Get(1), Value::Double(2.5));
  EXPECT_FALSE(c.ElemEquals(0, c, 1));
}

TEST(ColumnTest, HashMatchesValueHash) {
  Column c;
  c.Append(Value::Int64(99));
  c.Append(Value::StringCode(3));
  EXPECT_EQ(c.HashAt(0), Value::Int64(99).Hash());
  EXPECT_EQ(c.HashAt(1), Value::StringCode(3).Hash());
}

TEST(ColumnarTest, ScanSharesTableColumnsZeroCopy) {
  Database db;
  AddTable(&db, "R", 2, {{{1, 2}, 0.5}, {{3, 4}, 0.25}});
  ConjunctiveQuery q = Q("q(x,y) :- R(x,y)");
  auto rel = ScanAtom(db, q, 0);
  ASSERT_TRUE(rel.ok());
  const Table* t = *db.GetTable("R");
  // Unfiltered scan: the Rel references the very same column objects.
  EXPECT_EQ(rel->col(0).get(), t->col(0).get());
  EXPECT_EQ(rel->col(1).get(), t->col(1).get());
  EXPECT_EQ(rel->weights().get(), t->weights().get());
}

TEST(ColumnarTest, CopyOnWriteLeavesSharedColumnsIntact) {
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.5}, {{2}, 0.25}});
  ConjunctiveQuery q = Q("q(x) :- R(x)");
  auto rel = ScanAtom(db, q, 0);
  ASSERT_TRUE(rel.ok());
  Rel copy = *rel;  // shallow
  EXPECT_EQ(copy.col(0).get(), rel->col(0).get());
  copy.SetScore(0, 0.99);  // triggers copy-on-write of the score column
  EXPECT_DOUBLE_EQ(copy.Score(0), 0.99);
  EXPECT_DOUBLE_EQ(rel->Score(0), 0.5);
  EXPECT_DOUBLE_EQ((*db.GetTable("R"))->Prob(0), 0.5);
}

TEST(ColumnarTest, TableShallowCopyThenMutateIsIsolated) {
  Table t(RelationSchema::AllInt64("R", 1));
  t.AddRow({Value::Int64(1)}, 0.5);
  Table copy = t;
  copy.SetProb(0, 0.9);
  EXPECT_DOUBLE_EQ(t.Prob(0), 0.5);
  EXPECT_DOUBLE_EQ(copy.Prob(0), 0.9);
  copy.AddRow({Value::Int64(2)}, 0.1);
  EXPECT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(copy.NumRows(), 2u);
  EXPECT_EQ(t.At(0, 0), Value::Int64(1));
}

TEST(ColumnarTest, ZeroArityAccountingUnifiedAcrossTableAndRel) {
  Table t(RelationSchema::AllInt64("B", 0));
  t.AddRow(std::span<const Value>{}, 0.5);
  t.AddRow(std::span<const Value>{}, 0.25);
  EXPECT_EQ(t.NumRows(), 2u);
  EXPECT_DOUBLE_EQ(t.Prob(1), 0.25);

  Rel r(std::vector<VarId>{});
  r.AddRow({}, 0.75);
  r.AddRow({}, 0.5);
  r.AddRow({}, 0.125);
  EXPECT_EQ(r.NumRows(), 3u);
  EXPECT_DOUBLE_EQ(r.Score(2), 0.125);

  // Reserve must be harmless for zero-arity relations too.
  t.Reserve(10);
  r.Reserve(10);
  EXPECT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(r.NumRows(), 3u);
}

TEST(ColumnarTest, SelectAllRowsSharesColumns) {
  Table t(RelationSchema::AllInt64("R", 1));
  t.AddRow({Value::Int64(1)}, 0.5);
  t.AddRow({Value::Int64(2)}, 0.25);
  std::vector<uint32_t> all = {0, 1};
  Table s = t.Select(all);
  EXPECT_EQ(s.col(0).get(), t.col(0).get());
  std::vector<uint32_t> some = {1};
  Table s2 = t.Select(some);
  EXPECT_EQ(s2.NumRows(), 1u);
  EXPECT_EQ(s2.At(0, 0), Value::Int64(2));
  EXPECT_DOUBLE_EQ(s2.Prob(0), 0.25);
}

TEST(ColumnarTest, HashKeyColumnsAgreeWithPerRowHashing) {
  Table t(RelationSchema::AllInt64("R", 2));
  t.AddRow({Value::Int64(1), Value::Int64(5)}, 1.0);
  t.AddRow({Value::Int64(1), Value::Int64(5)}, 1.0);
  t.AddRow({Value::Int64(2), Value::Int64(5)}, 1.0);
  std::vector<int> keys = {0, 1};
  auto h = HashKeyColumns(t, keys);
  EXPECT_EQ(h[0], h[1]);
  EXPECT_NE(h[0], h[2]);
  EXPECT_TRUE(KeysEqual(t, 0, keys, t, 1, keys));
  EXPECT_FALSE(KeysEqual(t, 0, keys, t, 2, keys));
}

}  // namespace
}  // namespace dissodb
