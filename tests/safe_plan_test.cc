// Lifted safe-plan subsystem (src/lift/): analyzer verdicts, bit-identity
// of lifted plans with the legacy single-plan builder, the IsSafePlan
// audit, engine routing, and the exactness differential against
// src/infer/exact.cc on randomized hierarchical queries.
#include "src/lift/safe_plan.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <unordered_set>
#include <vector>

#include "src/dissociation/minimal_plans.h"
#include "src/dissociation/single_plan.h"
#include "src/engine/query_engine.h"
#include "src/infer/query_inference.h"
#include "src/workload/random_instance.h"
#include "tests/test_util.h"

namespace dissodb {
namespace {

using testing_util::AddTable;
using testing_util::ChunkCapOverride;
using testing_util::Q;

std::map<std::vector<Value>, double> ToMap(
    const std::vector<RankedAnswer>& answers) {
  std::map<std::vector<Value>, double> m;
  for (const auto& a : answers) m[a.tuple] = a.score;
  return m;
}

/// Structural facts about a plan DAG the safety properties assert on.
struct PlanShape {
  bool has_min = false;
  /// Scan leaves of probabilistic atoms carrying dissociated variables
  /// (deterministic dissociation is free and appears in exact plans too).
  bool prob_dissociated = false;
};

void WalkShape(const PlanPtr& plan, const SchemaKnowledge& sk,
               std::unordered_set<const PlanNode*>* seen, PlanShape* out) {
  if (!seen->insert(plan.get()).second) return;
  if (plan->kind == PlanNode::Kind::kMin) out->has_min = true;
  if (plan->kind == PlanNode::Kind::kScan && plan->extra_vars != 0 &&
      !sk.IsDeterministic(plan->atom_idx)) {
    out->prob_dissociated = true;
  }
  for (const auto& c : plan->children) WalkShape(c, sk, seen, out);
}

PlanShape ShapeOf(const PlanPtr& plan, const SchemaKnowledge& sk) {
  PlanShape s;
  std::unordered_set<const PlanNode*> seen;
  WalkShape(plan, sk, &seen, &s);
  return s;
}

TEST(SafePlanTest, AnalyzerVerdictsOnKnownQueries) {
  struct Case {
    const char* text;
    bool safe;
  };
  const Case cases[] = {
      {"q() :- R(x)", true},
      {"q() :- R(x), S(x,y)", true},
      {"q(z) :- R(z,x), S(z,x,y), T(z,x,y,w)", true},  // nested containment
      {"q(z) :- R(z), S(z,x)", true},                  // independent join
      {"q(x0,x2) :- R(x0,x1), S(x1,x2)", true},        // chain-2 with head
      {"q() :- R(x), S(x,y), T(y)", false},            // 3-chain (#P-hard)
      {"q() :- R(x), S(y), T(x,y)", false},            // star
      {"q() :- R(x,y), S(y,z), T(z,x)", false},        // triangle
      {"q(x0,x3) :- R(x0,x1), S(x1,x2), T(x2,x3)", false},  // 4-chain
  };
  for (const Case& c : cases) {
    auto q = Q(c.text);
    SchemaKnowledge none = SchemaKnowledge::None(q);
    lift::SafetyAnalysis a = lift::AnalyzeSafety(q, none);
    EXPECT_EQ(a.safe, c.safe) << c.text;
    EXPECT_EQ(a.safe, a.unsafe_residues == 0) << c.text;
    EXPECT_EQ(a.safe, IsHierarchical(q)) << c.text;

    auto lifted = lift::CompileSafePlan(q, none);
    ASSERT_TRUE(lifted.ok()) << c.text;
    EXPECT_EQ(lifted->exact, c.safe) << c.text;
    if (c.safe) {
      EXPECT_EQ(lifted->unsafe_residues, 0u) << c.text;
    } else {
      EXPECT_GE(lifted->unsafe_residues, 1u) << c.text;
    }
  }
}

TEST(SafePlanTest, DeterministicKnowledgeWidensTheSafeClass) {
  // The 3-chain is unsafe, but with R and T deterministic only one
  // probabilistic atom remains and the base-atom stop rule fires (exact).
  auto q = Q("q() :- R(x), S(x,y), T(y)");
  SchemaKnowledge sk = SchemaKnowledge::None(q);
  sk.deterministic[0] = true;
  sk.deterministic[2] = true;
  EXPECT_TRUE(lift::AnalyzeSafety(q, sk).safe);

  // With only the middle atom deterministic the query stays unsafe: the
  // probabilistic separator is empty and MinPCuts still finds two cuts.
  SchemaKnowledge mid = SchemaKnowledge::None(q);
  mid.deterministic[1] = true;
  EXPECT_FALSE(lift::AnalyzeSafety(q, mid).safe);

  // Disabling the deterministic refinement disables the widening.
  PlanEnumOptions no_dr;
  no_dr.use_deterministic = false;
  EXPECT_FALSE(lift::AnalyzeSafety(q, sk, no_dr).safe);
}

TEST(SafePlanTest, LiftedPlanBitIdenticalToLegacySinglePlan) {
  // On random queries (safe and unsafe, with random deterministic flags)
  // the lifted compiler must emit exactly the plan BuildSinglePlan emits:
  // same canonical structure and same DAG/tree node counts, with and
  // without Opt. 2 memoization.
  Rng rng(424242);
  RandomQuerySpec qspec;
  qspec.max_atoms = 4;
  qspec.max_vars = 5;
  int safe_seen = 0;
  int unsafe_seen = 0;
  for (int trial = 0; trial < 300; ++trial) {
    ConjunctiveQuery q = RandomQuery(&rng, qspec);
    SchemaKnowledge sk = SchemaKnowledge::None(q);
    for (int i = 0; i < q.num_atoms(); ++i) {
      sk.deterministic[i] = rng.NextBernoulli(0.25);
    }
    for (bool memoize : {true, false}) {
      lift::LiftOptions lo;
      lo.reuse_common_subplans = memoize;
      auto lifted = lift::CompileSafePlan(q, sk, lo);
      ASSERT_TRUE(lifted.ok()) << q.ToString();

      SinglePlanOptions sp;
      sp.reuse_common_subplans = memoize;
      auto legacy = BuildSinglePlan(q, sk, sp);
      ASSERT_TRUE(legacy.ok()) << q.ToString();

      EXPECT_EQ(CanonicalKey(lifted->plan), CanonicalKey(*legacy))
          << q.ToString();
      PlanSize a = MeasurePlan(lifted->plan);
      PlanSize b = MeasurePlan(*legacy);
      EXPECT_EQ(a.dag_nodes, b.dag_nodes) << q.ToString();
      EXPECT_EQ(a.tree_nodes, b.tree_nodes) << q.ToString();
      if (memoize) (lifted->exact ? safe_seen : unsafe_seen)++;
    }
  }
  // The corpus must exercise both verdicts.
  EXPECT_GE(safe_seen, 50);
  EXPECT_GE(unsafe_seen, 20);
}

TEST(SafePlanTest, EmittedPlansSatisfyIsSafePlanIffExact) {
  // The IsSafePlan audit (plan.h): an exact verdict must come with a plan
  // that is structurally safe *for the original query* — IsSafePlan true,
  // no Min node, no dissociated probabilistic scan — and must agree with
  // Algorithm 1's IsSafeQuery. An inexact verdict must carry visible
  // dissociation and never sneak through as an undissociated safe plan.
  Rng rng(20150602);
  RandomQuerySpec qspec;
  qspec.max_atoms = 4;
  qspec.max_vars = 5;
  int exact_seen = 0;
  int residue_seen = 0;
  for (int trial = 0; trial < 250; ++trial) {
    ConjunctiveQuery q = RandomQuery(&rng, qspec);
    SchemaKnowledge sk = SchemaKnowledge::None(q);
    for (int i = 0; i < q.num_atoms(); ++i) {
      sk.deterministic[i] = rng.NextBernoulli(0.25);
    }
    auto lifted = lift::CompileSafePlan(q, sk);
    ASSERT_TRUE(lifted.ok()) << q.ToString();
    auto is_safe = IsSafeQuery(q, sk);
    ASSERT_TRUE(is_safe.ok()) << q.ToString();
    PlanShape shape = ShapeOf(lifted->plan, sk);
    uint64_t det_atoms = 0;
    for (int i = 0; i < q.num_atoms(); ++i) {
      if (sk.IsDeterministic(i)) det_atoms |= uint64_t{1} << i;
    }

    EXPECT_EQ(lifted->exact, *is_safe) << q.ToString();
    EXPECT_EQ(lifted->exact, lift::AnalyzeSafety(q, sk).safe) << q.ToString();
    if (lifted->exact) {
      ++exact_seen;
      EXPECT_TRUE(IsSafePlan(lifted->plan, q.HeadMask(), det_atoms))
          << q.ToString();
      EXPECT_FALSE(shape.has_min) << q.ToString();
      EXPECT_FALSE(shape.prob_dissociated) << q.ToString();
    } else {
      ++residue_seen;
      // Dissociation must be visible: a Min over cut branches, or a single
      // collapsed branch whose probabilistic scans carry extra variables.
      EXPECT_TRUE(shape.has_min || shape.prob_dissociated) << q.ToString();
    }
  }
  EXPECT_GE(exact_seen, 60);
  EXPECT_GE(residue_seen, 10);
}

TEST(SafePlanTest, HierarchicalDifferentialAgainstExactInference) {
  // >= 100 randomized hierarchical queries: the engine (fast path on by
  // default) must route them to exact plans whose scores match the WMC
  // ground truth to 1e-12, report a single minimal plan, and flag the
  // result exact.
  Rng rng(314159);
  RandomQuerySpec qspec;
  qspec.max_atoms = 4;
  qspec.max_vars = 5;
  RandomInstanceSpec ispec;
  ispec.max_rows = 5;
  ispec.domain = 3;
  int checked = 0;
  for (int trial = 0; trial < 3000 && checked < 100; ++trial) {
    ConjunctiveQuery q = RandomQuery(&rng, qspec);
    if (!IsHierarchical(q)) continue;
    Database db = RandomDatabaseFor(q, &rng, ispec);
    QueryEngine engine = QueryEngine::Borrow(db);
    auto res = engine.Run(q);
    ASSERT_TRUE(res.ok()) << q.ToString();
    EXPECT_TRUE(res->exact) << q.ToString();
    EXPECT_EQ(res->num_minimal_plans, 1u) << q.ToString();

    auto exact = ExactProbabilities(db, q);
    ASSERT_TRUE(exact.ok()) << q.ToString();
    auto got = ToMap(res->answers);
    auto want = ToMap(*exact);
    ASSERT_EQ(got.size(), want.size()) << q.ToString();
    for (const auto& [tuple, p] : want) {
      auto it = got.find(tuple);
      ASSERT_NE(it, got.end()) << q.ToString();
      EXPECT_NEAR(it->second, p, 1e-12) << q.ToString();
    }
    EXPECT_EQ(engine.stats().safe_plan_routed, 1u) << q.ToString();
    ++checked;
  }
  EXPECT_GE(checked, 100);
}

TEST(SafePlanTest, ChunkSeamDifferential) {
  // Same differential across chunk seams: with a tiny chunk capacity the
  // inputs span many sealed chunks, exercising the chunked scan/join paths
  // under the safe-routed plan.
  ChunkCapOverride cap(8);
  Rng rng(987);
  auto q = Q("q(z) :- R(z,x), S(z,x,y)");
  Database db;
  {
    // Distinct tuples only (the model is tuple-independent); enough rows
    // that every column spans several sealed chunks at capacity 8.
    Table r(RelationSchema::AllInt64("R", 2));
    Table s(RelationSchema::AllInt64("S", 3));
    for (int z = 0; z < 5; ++z) {
      for (int x = 0; x < 7; ++x) {
        r.AddRow({Value::Int64(z), Value::Int64(x)},
                 0.1 + 0.8 * rng.NextDouble());
        for (int y = 0; y < 3; ++y) {
          s.AddRow({Value::Int64(z), Value::Int64(x), Value::Int64(y)},
                   0.1 + 0.8 * rng.NextDouble());
        }
      }
    }
    ASSERT_TRUE(db.AddTable(std::move(r)).ok());
    ASSERT_TRUE(db.AddTable(std::move(s)).ok());
  }
  QueryEngine engine = QueryEngine::Borrow(db);
  auto res = engine.Run(q);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->exact);

  auto exact = ExactProbabilities(db, q);
  ASSERT_TRUE(exact.ok());
  auto got = ToMap(res->answers);
  auto want = ToMap(*exact);
  ASSERT_EQ(got.size(), want.size());
  ASSERT_FALSE(want.empty());
  for (const auto& [tuple, p] : want) {
    EXPECT_NEAR(got[tuple], p, 1e-12);
  }
}

TEST(SafePlanTest, SafeSubqueryInsideUnsafeQuery) {
  // A(u), B(u,x) is a hierarchical subquery of this unsafe query: the
  // lifted rules resolve it exactly on the way down and only the S/T
  // residue dissociates. Scores stay bit-identical to the legacy pipeline
  // and upper-bound the exact probability.
  auto q = Q("q() :- A(u), B(u,x), S(x,y), T(y)");
  EXPECT_FALSE(IsHierarchical(q));

  SchemaKnowledge none = SchemaKnowledge::None(q);
  auto lifted = lift::CompileSafePlan(q, none);
  ASSERT_TRUE(lifted.ok());
  EXPECT_FALSE(lifted->exact);
  EXPECT_GE(lifted->unsafe_residues, 1u);
  EXPECT_GE(lifted->separator_shortcuts, 1u);  // the hierarchical residue-free levels

  Rng rng(2718);
  Database db = RandomDatabaseFor(q, &rng);
  QueryEngine fast = QueryEngine::Borrow(db);
  EngineOptions legacy_opts;
  legacy_opts.safe_plan_fast_path = false;
  QueryEngine legacy = QueryEngine::Borrow(db, legacy_opts);

  auto a = fast.Run(q);
  auto b = legacy.Run(q);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(a->exact);
  EXPECT_EQ(a->num_minimal_plans, b->num_minimal_plans);
  ASSERT_EQ(a->answers.size(), b->answers.size());
  for (size_t i = 0; i < a->answers.size(); ++i) {
    EXPECT_EQ(a->answers[i].tuple, b->answers[i].tuple);
    EXPECT_EQ(a->answers[i].score, b->answers[i].score);  // bit-for-bit
  }

  auto exact = ExactProbabilities(db, q);
  ASSERT_TRUE(exact.ok());
  if (!exact->empty() && !a->answers.empty()) {
    EXPECT_GE(a->answers[0].score, (*exact)[0].score - 1e-9);  // upper bound
  }
  EXPECT_EQ(fast.stats().safe_plan_unsafe_residue, 1u);
  EXPECT_EQ(legacy.stats().safe_plan_fallback, 1u);
}

TEST(SafePlanTest, FastPathOffDifferentialOnRandomQueries) {
  // Legacy-off differential mode: same scores bit-for-bit, same plan
  // counts, same exactness verdict (the verdict is route-independent).
  Rng rng(161803);
  RandomQuerySpec qspec;
  qspec.max_atoms = 4;
  qspec.max_vars = 5;
  for (int trial = 0; trial < 40; ++trial) {
    ConjunctiveQuery q = RandomQuery(&rng, qspec);
    Database db = RandomDatabaseFor(q, &rng);
    QueryEngine fast = QueryEngine::Borrow(db);
    EngineOptions off;
    off.safe_plan_fast_path = false;
    QueryEngine legacy = QueryEngine::Borrow(db, off);
    auto a = fast.Run(q);
    auto b = legacy.Run(q);
    ASSERT_TRUE(a.ok()) << q.ToString();
    ASSERT_TRUE(b.ok()) << q.ToString();
    EXPECT_EQ(a->num_minimal_plans, b->num_minimal_plans) << q.ToString();
    EXPECT_EQ(a->exact, b->exact) << q.ToString();
    ASSERT_EQ(a->answers.size(), b->answers.size()) << q.ToString();
    for (size_t i = 0; i < a->answers.size(); ++i) {
      EXPECT_EQ(a->answers[i].tuple, b->answers[i].tuple) << q.ToString();
      EXPECT_EQ(a->answers[i].score, b->answers[i].score) << q.ToString();
    }
  }
}

TEST(SafePlanTest, RoutingStabilityUnderConcurrentWriter) {
  // Readers keep preparing + executing a safe and an unsafe query (pinned
  // snapshot) while a writer commits appends: routing verdicts must not
  // flicker and pinned results stay bit-identical. Runs under TSan in CI.
  auto I = [](int64_t v) { return Value::Int64(v); };
  Database db;
  AddTable(&db, "R", 2, {{{0, 0}, 0.5}, {{1, 0}, 0.6}, {{2, 1}, 0.7}});
  AddTable(&db, "S", 1, {{{0}, 0.4}, {{1}, 0.8}});
  AddTable(&db, "A", 1, {{{0}, 0.5}, {{1}, 0.9}});
  AddTable(&db, "B", 2, {{{0, 0}, 0.3}, {{1, 1}, 0.6}});
  AddTable(&db, "C", 1, {{{0}, 0.2}, {{1}, 0.7}});
  EngineOptions opts;
  opts.num_threads = 4;
  QueryEngine engine = QueryEngine::Borrow(db, opts);

  const std::string safe_text = "q(x) :- R(x,y), S(y)";
  const std::string unsafe_text = "q() :- A(x), B(x,y), C(y)";
  auto safe_p = engine.Prepare(safe_text);
  auto unsafe_p = engine.Prepare(unsafe_text);
  ASSERT_TRUE(safe_p.ok());
  ASSERT_TRUE(unsafe_p.ok());
  EXPECT_TRUE(safe_p->exact());
  EXPECT_FALSE(unsafe_p->exact());

  Snapshot pinned = db.snapshot();
  auto safe_base = engine.Execute(*safe_p, {}, pinned);
  auto unsafe_base = engine.Execute(*unsafe_p, {}, pinned);
  ASSERT_TRUE(safe_base.ok());
  ASSERT_TRUE(unsafe_base.ok());
  ASSERT_FALSE(safe_base->answers.empty());

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int k = 0; k < 24; ++k) {
      Database::Writer w = db.BeginWrite();
      w.AppendRow(0, std::vector<Value>{I(100 + k), I(k % 2)}, 0.5);
      w.Commit();
    }
    stop.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      int round = 0;
      while (!stop.load(std::memory_order_acquire) || round < 4) {
        auto sp = engine.Prepare(safe_text);
        auto up = engine.Prepare(unsafe_text);
        ASSERT_TRUE(sp.ok());
        ASSERT_TRUE(up.ok());
        EXPECT_TRUE(sp->exact());
        EXPECT_FALSE(up->exact());
        auto sr = engine.Execute(*sp, {}, pinned);
        auto ur = engine.Execute(*up, {}, pinned);
        ASSERT_TRUE(sr.ok());
        ASSERT_TRUE(ur.ok());
        EXPECT_TRUE(sr->exact);
        EXPECT_FALSE(ur->exact);
        ASSERT_EQ(sr->answers.size(), safe_base->answers.size());
        for (size_t i = 0; i < sr->answers.size(); ++i) {
          EXPECT_EQ(sr->answers[i].tuple, safe_base->answers[i].tuple);
          EXPECT_EQ(sr->answers[i].score, safe_base->answers[i].score);
        }
        ASSERT_EQ(ur->answers.size(), unsafe_base->answers.size());
        for (size_t i = 0; i < ur->answers.size(); ++i) {
          EXPECT_EQ(ur->answers[i].score, unsafe_base->answers[i].score);
        }
        ++round;
      }
    });
  }
  writer.join();
  for (auto& th : readers) th.join();

  EngineStats s = engine.stats();
  EXPECT_GE(s.safe_plan_routed, 1u);
  EXPECT_GE(s.safe_plan_unsafe_residue, 1u);
  EXPECT_EQ(s.safe_plan_fallback, 0u);
}

TEST(SafePlanTest, TelemetryExportsThroughPrometheus) {
  Database db;
  AddTable(&db, "R", 2, {{{0, 0}, 0.5}});
  AddTable(&db, "S", 1, {{{0}, 0.4}});
  QueryEngine engine = QueryEngine::Borrow(db);
  ASSERT_TRUE(engine.Run("q(x) :- R(x,y), S(y)").ok());
  std::string prom = engine.metrics().PrometheusText();
  EXPECT_NE(prom.find("dissodb_engine_safe_plan_routed"), std::string::npos);
  EXPECT_NE(prom.find("dissodb_engine_safe_plan_unsafe_residue"),
            std::string::npos);
  EXPECT_NE(prom.find("dissodb_engine_safe_plan_fallback"), std::string::npos);
  EXPECT_NE(prom.find("dissodb_engine_safe_plan_compile_ns"),
            std::string::npos);
}

}  // namespace
}  // namespace dissodb
