// Unit tests for the plan AST, safety check, canonicalization, printing and
// SQL generation.
#include <gtest/gtest.h>

#include "src/plan/plan.h"
#include "src/plan/plan_print.h"
#include "src/plan/sql_gen.h"
#include "tests/test_util.h"

namespace dissodb {
namespace {

using testing_util::AddTable;
using testing_util::Q;
using testing_util::Vars;

TEST(PlanTest, ScanHeadCombinesRealAndVirtualVars) {
  auto q = Q("q() :- R(x), S(x,y)");
  PlanPtr scan = MakeScan(0, q.AtomMask(0), Vars(q, {"y"}));
  EXPECT_EQ(scan->head, Vars(q, {"x", "y"}));
  EXPECT_EQ(scan->extra_vars, Vars(q, {"y"}));
  EXPECT_EQ(scan->atom_idx, 0);
}

TEST(PlanTest, JoinHeadIsUnion) {
  auto q = Q("q() :- R(x), S(x,y)");
  PlanPtr j = MakeJoin({MakeScan(0, q.AtomMask(0)), MakeScan(1, q.AtomMask(1))});
  EXPECT_EQ(j->head, Vars(q, {"x", "y"}));
}

TEST(PlanTest, ProjectNarrowsHead) {
  auto q = Q("q() :- S(x,y)");
  PlanPtr p = MakeProject(Vars(q, {"x"}), MakeScan(0, q.AtomMask(0)));
  EXPECT_EQ(p->head, Vars(q, {"x"}));
}

TEST(PlanTest, MinOfOneCollapses) {
  auto q = Q("q() :- R(x)");
  PlanPtr s = MakeScan(0, q.AtomMask(0));
  PlanPtr m = MakeMin({s});
  EXPECT_EQ(m.get(), s.get());
}

TEST(PlanTest, SafePlanDetection) {
  auto q = Q("q() :- R(x), S(x,y)");
  // Safe: pi_{}( R(x) |x| pi_x(S(x,y)) ) — join children share head {x}.
  PlanPtr safe = MakeProject(
      0, MakeJoin({MakeScan(0, q.AtomMask(0)),
                   MakeProject(Vars(q, {"x"}), MakeScan(1, q.AtomMask(1)))}));
  EXPECT_TRUE(IsSafePlan(safe));
  // Unsafe: join children with different heads.
  PlanPtr unsafe = MakeProject(
      0, MakeJoin({MakeScan(0, q.AtomMask(0)), MakeScan(1, q.AtomMask(1))}));
  EXPECT_FALSE(IsSafePlan(unsafe));
}

TEST(PlanTest, AtomSetCollectsLeaves) {
  auto q = Q("q() :- R(x), S(x,y), T(y)");
  PlanPtr p = MakeJoin({MakeScan(0, q.AtomMask(0)), MakeScan(2, q.AtomMask(2))});
  EXPECT_EQ(PlanAtomSet(p), 0b101u);
}

TEST(PlanTest, MeasurePlanCountsSharedNodesOnce) {
  auto q = Q("q() :- R(x), S(x,y)");
  PlanPtr shared = MakeProject(Vars(q, {"x"}), MakeScan(1, q.AtomMask(1)));
  PlanPtr a = MakeJoin({MakeScan(0, q.AtomMask(0)), shared});
  PlanPtr b = MakeJoin({MakeScan(0, q.AtomMask(0)), shared});
  PlanPtr m = MakeMin({MakeProject(0, a), MakeProject(0, b)});
  PlanSize sz = MeasurePlan(m);
  EXPECT_LT(sz.dag_nodes, sz.tree_nodes);
}

TEST(PlanTest, CanonicalKeyIgnoresJoinOrder) {
  auto q = Q("q() :- R(x), S(x,y)");
  PlanPtr a = MakeJoin({MakeScan(0, q.AtomMask(0)), MakeScan(1, q.AtomMask(1))});
  PlanPtr b = MakeJoin({MakeScan(1, q.AtomMask(1)), MakeScan(0, q.AtomMask(0))});
  EXPECT_EQ(CanonicalKey(a), CanonicalKey(b));
}

TEST(PlanTest, CanonicalKeyDistinguishesDissociation) {
  auto q = Q("q() :- R(x), S(x,y)");
  PlanPtr a = MakeScan(0, q.AtomMask(0));
  PlanPtr b = MakeScan(0, q.AtomMask(0), Vars(q, {"y"}));
  EXPECT_NE(CanonicalKey(a), CanonicalKey(b));
}

TEST(PlanPrintTest, RendersPaperNotation) {
  auto q = Q("q() :- R(x), S(x,y)");
  PlanPtr p = MakeProject(
      0, MakeJoin({MakeScan(0, q.AtomMask(0)),
                   MakeProject(Vars(q, {"x"}), MakeScan(1, q.AtomMask(1)))}));
  std::string s = PlanToString(p, q);
  EXPECT_NE(s.find("pi_{-x}"), std::string::npos);
  EXPECT_NE(s.find("R(x)"), std::string::npos);
  EXPECT_NE(s.find("S(x,y)"), std::string::npos);
  EXPECT_NE(s.find("Join["), std::string::npos);
}

TEST(PlanPrintTest, DissociatedLeafShowsSuperscript) {
  auto q = Q("q() :- R(x), S(x,y)");
  PlanPtr s = MakeScan(0, q.AtomMask(0), Vars(q, {"y"}));
  std::string out = PlanToString(s, q);
  EXPECT_NE(out.find("R^{y}"), std::string::npos);
}

TEST(PlanPrintTest, TreePrinterLabelsSharedViews) {
  auto q = Q("q() :- R(x), S(x,y)");
  PlanPtr shared = MakeProject(Vars(q, {"x"}), MakeScan(1, q.AtomMask(1)));
  PlanPtr m = MakeMin(
      {MakeProject(0, MakeJoin({MakeScan(0, q.AtomMask(0)), shared})),
       MakeProject(0, MakeJoin({MakeScan(0, q.AtomMask(0), Vars(q, {"y"})),
                                shared}))});
  std::string s = PlanToTreeString(m, q);
  EXPECT_NE(s.find("V1"), std::string::npos);
  EXPECT_NE(s.find("(shared)"), std::string::npos);
}

TEST(SqlGenTest, GeneratesCtesAndAggregation) {
  auto q = Q("q() :- R(x), S(x,y)");
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.5}});
  AddTable(&db, "S", 2, {{{1, 2}, 0.5}});
  PlanPtr p = MakeProject(
      0, MakeJoin({MakeScan(0, q.AtomMask(0)),
                   MakeProject(Vars(q, {"x"}), MakeScan(1, q.AtomMask(1)))}));
  std::string sql = PlanToSql(p, q, db);
  EXPECT_NE(sql.find("WITH"), std::string::npos);
  EXPECT_NE(sql.find("FROM R"), std::string::npos);
  EXPECT_NE(sql.find("FROM S"), std::string::npos);
  EXPECT_NE(sql.find("EXP(SUM(LN("), std::string::npos);
  EXPECT_NE(sql.find("GROUP BY x"), std::string::npos);
}

TEST(SqlGenTest, ConstantsBecomeWhereClauses) {
  auto q = Q("q() :- R(x, 7)");
  Database db;
  AddTable(&db, "R", 2, {{{1, 7}, 0.5}});
  PlanPtr p = MakeProject(0, MakeScan(0, q.AtomMask(0)));
  std::string sql = PlanToSql(p, q, db);
  EXPECT_NE(sql.find("c1 = 7"), std::string::npos);
}

TEST(SqlGenTest, MinBecomesLeast) {
  auto q = Q("q() :- R(x), S(x,y)");
  Database db;
  AddTable(&db, "R", 1, {});
  AddTable(&db, "S", 2, {});
  PlanPtr shared = MakeProject(Vars(q, {"x"}), MakeScan(1, q.AtomMask(1)));
  PlanPtr m = MakeMin(
      {MakeProject(0, MakeJoin({MakeScan(0, q.AtomMask(0)), shared})),
       MakeProject(0, MakeJoin({MakeScan(0, q.AtomMask(0), Vars(q, {"y"})),
                                shared}))});
  std::string sql = PlanToSql(m, q, db);
  EXPECT_NE(sql.find("LEAST("), std::string::npos);
}

}  // namespace
}  // namespace dissodb
