// Unit tests for the plan AST, safety check, canonicalization, printing and
// SQL generation.
#include <gtest/gtest.h>

#include "src/plan/plan.h"
#include "src/plan/plan_print.h"
#include "src/plan/sql_gen.h"
#include "tests/test_util.h"

namespace dissodb {
namespace {

using testing_util::AddTable;
using testing_util::Q;
using testing_util::Vars;

TEST(PlanTest, ScanHeadCombinesRealAndVirtualVars) {
  auto q = Q("q() :- R(x), S(x,y)");
  PlanPtr scan = MakeScan(0, q.AtomMask(0), Vars(q, {"y"}));
  EXPECT_EQ(scan->head, Vars(q, {"x", "y"}));
  EXPECT_EQ(scan->extra_vars, Vars(q, {"y"}));
  EXPECT_EQ(scan->atom_idx, 0);
}

TEST(PlanTest, JoinHeadIsUnion) {
  auto q = Q("q() :- R(x), S(x,y)");
  PlanPtr j = MakeJoin({MakeScan(0, q.AtomMask(0)), MakeScan(1, q.AtomMask(1))});
  EXPECT_EQ(j->head, Vars(q, {"x", "y"}));
}

TEST(PlanTest, ProjectNarrowsHead) {
  auto q = Q("q() :- S(x,y)");
  PlanPtr p = MakeProject(Vars(q, {"x"}), MakeScan(0, q.AtomMask(0)));
  EXPECT_EQ(p->head, Vars(q, {"x"}));
}

TEST(PlanTest, MinOfOneCollapses) {
  auto q = Q("q() :- R(x)");
  PlanPtr s = MakeScan(0, q.AtomMask(0));
  PlanPtr m = MakeMin({s});
  EXPECT_EQ(m.get(), s.get());
}

TEST(PlanTest, SafePlanDetection) {
  auto q = Q("q() :- R(x), S(x,y)");
  // Safe: pi_{}( R(x) |x| pi_x(S(x,y)) ) — join children share head {x}.
  PlanPtr safe = MakeProject(
      0, MakeJoin({MakeScan(0, q.AtomMask(0)),
                   MakeProject(Vars(q, {"x"}), MakeScan(1, q.AtomMask(1)))}));
  EXPECT_TRUE(IsSafePlan(safe));
  // Unsafe: join children with different heads.
  PlanPtr unsafe = MakeProject(
      0, MakeJoin({MakeScan(0, q.AtomMask(0)), MakeScan(1, q.AtomMask(1))}));
  EXPECT_FALSE(IsSafePlan(unsafe));
}

TEST(PlanTest, AtomSetCollectsLeaves) {
  auto q = Q("q() :- R(x), S(x,y), T(y)");
  PlanPtr p = MakeJoin({MakeScan(0, q.AtomMask(0)), MakeScan(2, q.AtomMask(2))});
  EXPECT_EQ(PlanAtomSet(p), 0b101u);
}

TEST(PlanTest, MeasurePlanCountsSharedNodesOnce) {
  auto q = Q("q() :- R(x), S(x,y)");
  PlanPtr shared = MakeProject(Vars(q, {"x"}), MakeScan(1, q.AtomMask(1)));
  PlanPtr a = MakeJoin({MakeScan(0, q.AtomMask(0)), shared});
  PlanPtr b = MakeJoin({MakeScan(0, q.AtomMask(0)), shared});
  PlanPtr m = MakeMin({MakeProject(0, a), MakeProject(0, b)});
  PlanSize sz = MeasurePlan(m);
  EXPECT_LT(sz.dag_nodes, sz.tree_nodes);
}

TEST(PlanTest, CanonicalKeyIgnoresJoinOrder) {
  auto q = Q("q() :- R(x), S(x,y)");
  PlanPtr a = MakeJoin({MakeScan(0, q.AtomMask(0)), MakeScan(1, q.AtomMask(1))});
  PlanPtr b = MakeJoin({MakeScan(1, q.AtomMask(1)), MakeScan(0, q.AtomMask(0))});
  EXPECT_EQ(CanonicalKey(a), CanonicalKey(b));
}

TEST(PlanTest, CanonicalKeyDistinguishesDissociation) {
  auto q = Q("q() :- R(x), S(x,y)");
  PlanPtr a = MakeScan(0, q.AtomMask(0));
  PlanPtr b = MakeScan(0, q.AtomMask(0), Vars(q, {"y"}));
  EXPECT_NE(CanonicalKey(a), CanonicalKey(b));
}

TEST(PlanPrintTest, RendersPaperNotation) {
  auto q = Q("q() :- R(x), S(x,y)");
  PlanPtr p = MakeProject(
      0, MakeJoin({MakeScan(0, q.AtomMask(0)),
                   MakeProject(Vars(q, {"x"}), MakeScan(1, q.AtomMask(1)))}));
  std::string s = PlanToString(p, q);
  EXPECT_NE(s.find("pi_{-x}"), std::string::npos);
  EXPECT_NE(s.find("R(x)"), std::string::npos);
  EXPECT_NE(s.find("S(x,y)"), std::string::npos);
  EXPECT_NE(s.find("Join["), std::string::npos);
}

TEST(PlanPrintTest, DissociatedLeafShowsSuperscript) {
  auto q = Q("q() :- R(x), S(x,y)");
  PlanPtr s = MakeScan(0, q.AtomMask(0), Vars(q, {"y"}));
  std::string out = PlanToString(s, q);
  EXPECT_NE(out.find("R^{y}"), std::string::npos);
}

TEST(PlanPrintTest, TreePrinterLabelsSharedViews) {
  auto q = Q("q() :- R(x), S(x,y)");
  PlanPtr shared = MakeProject(Vars(q, {"x"}), MakeScan(1, q.AtomMask(1)));
  PlanPtr m = MakeMin(
      {MakeProject(0, MakeJoin({MakeScan(0, q.AtomMask(0)), shared})),
       MakeProject(0, MakeJoin({MakeScan(0, q.AtomMask(0), Vars(q, {"y"})),
                                shared}))});
  std::string s = PlanToTreeString(m, q);
  EXPECT_NE(s.find("V1"), std::string::npos);
  EXPECT_NE(s.find("(shared)"), std::string::npos);
}

TEST(SqlGenTest, GeneratesCtesAndAggregation) {
  auto q = Q("q() :- R(x), S(x,y)");
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.5}});
  AddTable(&db, "S", 2, {{{1, 2}, 0.5}});
  PlanPtr p = MakeProject(
      0, MakeJoin({MakeScan(0, q.AtomMask(0)),
                   MakeProject(Vars(q, {"x"}), MakeScan(1, q.AtomMask(1)))}));
  std::string sql = PlanToSql(p, q, db);
  EXPECT_NE(sql.find("WITH"), std::string::npos);
  EXPECT_NE(sql.find("FROM R"), std::string::npos);
  EXPECT_NE(sql.find("FROM S"), std::string::npos);
  EXPECT_NE(sql.find("EXP(SUM(LN("), std::string::npos);
  EXPECT_NE(sql.find("GROUP BY x"), std::string::npos);
}

TEST(SqlGenTest, ConstantsBecomeWhereClauses) {
  auto q = Q("q() :- R(x, 7)");
  Database db;
  AddTable(&db, "R", 2, {{{1, 7}, 0.5}});
  PlanPtr p = MakeProject(0, MakeScan(0, q.AtomMask(0)));
  std::string sql = PlanToSql(p, q, db);
  EXPECT_NE(sql.find("c1 = 7"), std::string::npos);
}

TEST(SqlGenTest, MinBecomesLeast) {
  auto q = Q("q() :- R(x), S(x,y)");
  Database db;
  AddTable(&db, "R", 1, {});
  AddTable(&db, "S", 2, {});
  PlanPtr shared = MakeProject(Vars(q, {"x"}), MakeScan(1, q.AtomMask(1)));
  PlanPtr m = MakeMin(
      {MakeProject(0, MakeJoin({MakeScan(0, q.AtomMask(0)), shared})),
       MakeProject(0, MakeJoin({MakeScan(0, q.AtomMask(0), Vars(q, {"y"})),
                                shared}))});
  std::string sql = PlanToSql(m, q, db);
  EXPECT_NE(sql.find("LEAST("), std::string::npos);
}

TEST(PlanFingerprintTest, IdenticalSubplansAcrossParsesShareFingerprints) {
  // Two independent parses of the same text intern variables identically,
  // so the hand-built plans fingerprint the same — the property the
  // workload-level result cache relies on.
  auto q1 = Q("q(x) :- R(x,y), S(y)");
  auto q2 = Q("q(x) :- R(x,y), S(y)");
  PlanPtr p1 = MakeProject(Vars(q1, {"x"}),
                           MakeJoin({MakeScan(0, q1.AtomMask(0)),
                                     MakeScan(1, q1.AtomMask(1))}));
  PlanPtr p2 = MakeProject(Vars(q2, {"x"}),
                           MakeJoin({MakeScan(0, q2.AtomMask(0)),
                                     MakeScan(1, q2.AtomMask(1))}));
  EXPECT_EQ(PlanFingerprint(p1, q1), PlanFingerprint(p2, q2));

  // Renaming a variable keeps the interned ids (y and z both intern to id
  // 1), so the fingerprint still matches: sharing is by structure, not by
  // surface names.
  auto q3 = Q("q(x) :- R(x,z), S(z)");
  PlanPtr p3 = MakeProject(Vars(q3, {"x"}),
                           MakeJoin({MakeScan(0, q3.AtomMask(0)),
                                     MakeScan(1, q3.AtomMask(1))}));
  EXPECT_EQ(PlanFingerprint(p1, q1), PlanFingerprint(p3, q3));
}

TEST(PlanFingerprintTest, DistinguishesRelationsConstantsAndDissociation) {
  auto qa = Q("q() :- R(x, 5)");
  auto qb = Q("q() :- R(x, 6)");
  PlanPtr pa = MakeScan(0, qa.AtomMask(0));
  PlanPtr pb = MakeScan(0, qb.AtomMask(0));
  EXPECT_NE(PlanFingerprint(pa, qa), PlanFingerprint(pb, qb));

  auto qc = Q("q() :- T(x, 5)");
  EXPECT_NE(PlanFingerprint(pa, qa),
            PlanFingerprint(MakeScan(0, qc.AtomMask(0)), qc));

  // A dissociated scan (extra virtual variables) must not collide with the
  // plain scan of the same atom.
  auto qd = Q("q() :- R(x), S(x,y)");
  PlanPtr plain = MakeScan(0, qd.AtomMask(0));
  PlanPtr dissociated = MakeScan(0, qd.AtomMask(0), Vars(qd, {"y"}));
  EXPECT_NE(PlanFingerprint(plain, qd), PlanFingerprint(dissociated, qd));
}

TEST(PlanFingerprintTest, ChildOrderIsPreservedUnlikeCanonicalKey) {
  // CanonicalKey sorts join children (structural equality up to order);
  // the fingerprint deliberately keeps evaluation order, because the
  // result cache promises bit-identical relations, and the evaluator's
  // greedy join-order tie-breaking follows child positions.
  auto q = Q("q() :- R(x), S(x)");
  PlanPtr rs = MakeJoin({MakeScan(0, q.AtomMask(0)),
                         MakeScan(1, q.AtomMask(1))});
  PlanPtr sr = MakeJoin({MakeScan(1, q.AtomMask(1)),
                         MakeScan(0, q.AtomMask(0))});
  EXPECT_EQ(CanonicalKey(rs), CanonicalKey(sr));
  EXPECT_NE(PlanFingerprint(rs, q), PlanFingerprint(sr, q));
}

}  // namespace
}  // namespace dissodb
