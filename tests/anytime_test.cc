// Anytime-answers subsystem: differential validation of RunWithGuarantees.
//
//  (1) Bounds sandwich: on random (mostly unsafe) queries the returned
//      intervals satisfy lower <= P(q=a) <= upper against the exact WMC
//      ground truth, including chunk-seam table sizes.
//  (2) Safe queries short-circuit to the exact route: point intervals,
//      verdict kExact, no refinement.
//  (3) Certified top-k: every certified prefix position provably dominates
//      all later answers under the exact probabilities, and refinement
//      touches strictly fewer answers than the result holds.
//  (4) Deadlines: an already-expired deadline yields bounds-only answers
//      with no refinement work and no leaked workers; racing deadlines
//      never break the interval invariants (TSan coverage).
//  (5) Reproducibility: with exact escalation disabled the pure-MC
//      refinement path returns bit-identical intervals for 1 and 8 worker
//      threads.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include "src/anytime/anytime.h"
#include "src/dissociation/counting.h"
#include "src/engine/query_engine.h"
#include "src/infer/query_inference.h"
#include "src/workload/random_instance.h"
#include "src/workload/synthetic.h"
#include "tests/test_util.h"

namespace dissodb {
namespace {

using testing_util::AddTable;
using testing_util::ChunkCapOverride;
using testing_util::Q;

constexpr double kTol = 1e-12;

std::map<std::vector<Value>, double> ToMap(
    const std::vector<RankedAnswer>& answers) {
  std::map<std::vector<Value>, double> m;
  for (const auto& a : answers) m[a.tuple] = a.score;
  return m;
}

// Asserts the full sandwich for one result against exact ground truth and
// returns the number of answers checked.
size_t ExpectSandwich(const AnytimeResult& res,
                      const std::map<std::vector<Value>, double>& exact,
                      const std::string& context) {
  EXPECT_EQ(res.answers.size(), exact.size()) << context;
  size_t checked = 0;
  for (const auto& a : res.answers) {
    auto it = exact.find(a.tuple);
    if (it == exact.end()) {
      ADD_FAILURE() << context << ": bounded answer missing from exact";
      continue;
    }
    const double p = it->second;
    EXPECT_LE(a.lower, p + kTol) << context;
    EXPECT_GE(a.upper, p - kTol) << context;
    EXPECT_LE(a.lower, a.upper + kTol) << context;
    EXPECT_GE(a.point, a.lower - kTol) << context;
    EXPECT_LE(a.point, a.upper + kTol) << context;
    ++checked;
  }
  return checked;
}

// ---------------------------------------------------------------------------
// (1) Bounds sandwich on random queries
// ---------------------------------------------------------------------------

TEST(AnytimeTest, BoundsSandwichOnRandomUnsafeQueries) {
  Rng rng(20150815);
  RandomQuerySpec qspec;
  qspec.min_atoms = 2;
  qspec.max_atoms = 4;
  qspec.max_vars = 5;
  qspec.head_var_prob = 0.35;
  size_t unsafe_checked = 0;
  size_t answers_checked = 0;
  for (int trial = 0; trial < 3000 && unsafe_checked < 120; ++trial) {
    ConjunctiveQuery q = RandomQuery(&rng, qspec);
    if (DissociationExponent(q) > 10) continue;

    // Every 4th eligible trial runs at chunk capacity 4 so table sizes
    // straddle chunk seams in the weight-column rewrite and the scans.
    std::unique_ptr<ChunkCapOverride> cap;
    if (trial % 4 == 0) cap = std::make_unique<ChunkCapOverride>(4);

    Database db = RandomDatabaseFor(q, &rng);
    auto exact = ExactProbabilities(db, q);
    if (!exact.ok()) continue;  // WMC budget exceeded: no ground truth

    QueryEngine engine = QueryEngine::Borrow(db);
    auto prepared = engine.Prepare(q);
    ASSERT_TRUE(prepared.ok()) << q.ToString();
    auto res = engine.RunWithGuarantees(*prepared);
    ASSERT_TRUE(res.ok()) << q.ToString() << ": " << res.status().ToString();

    answers_checked += ExpectSandwich(*res, ToMap(*exact), q.ToString());
    if (!prepared->exact()) {
      ++unsafe_checked;
      EXPECT_EQ(res->verdict == AnytimeVerdict::kExact, false) << q.ToString();
      // Default spec has no targets: bounds-only, nothing refined.
      EXPECT_EQ(res->refined_answers, 0u) << q.ToString();
    } else {
      EXPECT_EQ(res->verdict, AnytimeVerdict::kExact) << q.ToString();
    }
  }
  EXPECT_GE(unsafe_checked, 100u);
  EXPECT_GE(answers_checked, 200u);
}

TEST(AnytimeTest, SafeQueryShortCircuitsToExact) {
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.7}, {{2}, 0.5}});
  AddTable(&db, "S", 2, {{{1, 10}, 0.9}, {{1, 20}, 0.4}, {{2, 20}, 0.8}});
  ConjunctiveQuery q = Q("q(x) :- R(x), S(x,y)");

  auto exact = ExactProbabilities(db, q);
  ASSERT_TRUE(exact.ok());

  QueryEngine engine = QueryEngine::Borrow(db);
  auto prepared = engine.Prepare(q);
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE(prepared->exact());
  auto res = engine.RunWithGuarantees(*prepared);
  ASSERT_TRUE(res.ok()) << res.status().ToString();

  EXPECT_EQ(res->verdict, AnytimeVerdict::kExact);
  EXPECT_EQ(res->refine_rounds, 0u);
  auto exact_map = ToMap(*exact);
  ASSERT_EQ(res->answers.size(), exact_map.size());
  for (const auto& a : res->answers) {
    EXPECT_TRUE(a.certified);
    EXPECT_EQ(a.source, BoundSource::kSafeExact);
    EXPECT_DOUBLE_EQ(a.lower, a.upper);
    EXPECT_NEAR(a.point, exact_map.at(a.tuple), kTol);
  }
}

// ---------------------------------------------------------------------------
// (3) Certified top-k against the exact ranking
// ---------------------------------------------------------------------------

TEST(AnytimeTest, CertifiedTopKMatchesExactRanking) {
  Rng rng(4242);
  RandomQuerySpec qspec;
  qspec.min_atoms = 2;
  qspec.max_atoms = 3;
  qspec.max_vars = 4;
  qspec.head_var_prob = 0.4;
  RandomInstanceSpec ispec;
  ispec.max_rows = 5;
  ispec.domain = 4;

  GuaranteeSpec spec;
  spec.top_k = 3;

  size_t certified_runs = 0;
  for (int trial = 0; trial < 1200 && certified_runs < 40; ++trial) {
    ConjunctiveQuery q = RandomQuery(&rng, qspec);
    if (DissociationExponent(q) > 10) continue;
    Database db = RandomDatabaseFor(q, &rng, ispec);
    auto exact = ExactProbabilities(db, q);
    if (!exact.ok()) continue;
    auto exact_map = ToMap(*exact);

    QueryEngine engine = QueryEngine::Borrow(db);
    auto prepared = engine.Prepare(q);
    ASSERT_TRUE(prepared.ok()) << q.ToString();
    if (prepared->exact()) continue;  // exercise the refinement ladder only
    auto res = engine.RunWithGuarantees(*prepared, {}, spec);
    ASSERT_TRUE(res.ok()) << q.ToString() << ": " << res.status().ToString();

    ExpectSandwich(*res, exact_map, q.ToString());
    if (res->verdict != AnytimeVerdict::kCertified) continue;
    ++certified_runs;

    const size_t prefix = res->certified_prefix;
    EXPECT_EQ(prefix, std::min(spec.top_k, res->answers.size()))
        << q.ToString();
    // Semantic check: each certified position dominates every later answer
    // under the exact probabilities (ties allowed).
    for (size_t i = 0; i < prefix; ++i) {
      EXPECT_TRUE(res->answers[i].certified) << q.ToString();
      const double pi = exact_map.at(res->answers[i].tuple);
      for (size_t j = i + 1; j < res->answers.size(); ++j) {
        const double pj = exact_map.at(res->answers[j].tuple);
        EXPECT_GE(pi, pj - 1e-9)
            << q.ToString() << " position " << i << " vs " << j;
      }
    }
  }
  EXPECT_GE(certified_runs, 20u);
}

TEST(AnytimeTest, RefinesOnlyContestedAnswers) {
  // 4-chain (unsafe beyond length 3): with ~40 well-separated answers only
  // the top-k boundary neighbourhood needs lineage work.
  ChainSpec cspec;
  cspec.k = 4;
  cspec.n = 120;
  cspec.target_answers = 40;
  cspec.seed = 77;
  // Small probabilities: dissociation bounds converge (Proposition 21), so
  // positions away from the top-k boundary settle without lineage work.
  cspec.pi_max = 0.12;
  Database db = MakeChainDatabase(cspec);
  ConjunctiveQuery q = MakeChainQuery(4);

  QueryEngine engine = QueryEngine::Borrow(db);
  auto prepared = engine.Prepare(q);
  ASSERT_TRUE(prepared.ok());
  ASSERT_FALSE(prepared->exact());

  GuaranteeSpec spec;
  spec.top_k = 5;
  // Refine incrementally: once the boundary answers collapse to exact
  // points, answers whose upper bound clears the boundary drop out of the
  // contested set without ever being refined.
  spec.max_refined_per_round = 4;
  auto res = engine.RunWithGuarantees(*prepared, {}, spec);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_GE(res->answers.size(), 10u);
  EXPECT_EQ(res->verdict, AnytimeVerdict::kCertified);
  // The certification counter-assert from the issue: uncontested answers
  // are never refined.
  EXPECT_LT(res->refined_answers, res->answers.size());
}

TEST(AnytimeTest, EpsilonTargetTightensEveryInterval) {
  // q(z) :- R(z,x), S(x,y), T(y): x and y form a non-hierarchical pattern
  // even with z fixed, so the query is unsafe for every answer.
  Database db;
  AddTable(&db, "R", 2, {{{1, 1}, 0.6}, {{1, 2}, 0.4}, {{2, 2}, 0.8}});
  AddTable(&db, "S", 2,
           {{{1, 10}, 0.9}, {{1, 20}, 0.5}, {{2, 20}, 0.7}, {{2, 10}, 0.3}});
  AddTable(&db, "T", 1, {{{10}, 0.6}, {{20}, 0.3}});
  ConjunctiveQuery q = Q("q(z) :- R(z,x), S(x,y), T(y)");

  QueryEngine engine = QueryEngine::Borrow(db);
  auto prepared = engine.Prepare(q);
  ASSERT_TRUE(prepared.ok());
  ASSERT_FALSE(prepared->exact());

  GuaranteeSpec spec;
  spec.epsilon = 1e-6;
  auto res = engine.RunWithGuarantees(*prepared, {}, spec);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->verdict, AnytimeVerdict::kCertified);
  auto exact = ExactProbabilities(db, q);
  ASSERT_TRUE(exact.ok());
  auto exact_map = ToMap(*exact);
  for (const auto& a : res->answers) {
    EXPECT_LE(a.width(), spec.epsilon + kTol);
    EXPECT_TRUE(a.certified);
    EXPECT_NEAR(a.point, exact_map.at(a.tuple), spec.epsilon + 1e-9);
  }
}

// ---------------------------------------------------------------------------
// (4) Deadlines
// ---------------------------------------------------------------------------

TEST(AnytimeTest, ExpiredDeadlineReturnsBoundsOnlyWithoutRefinement) {
  ChainSpec cspec;
  cspec.k = 4;
  cspec.n = 400;
  cspec.target_answers = 60;
  cspec.seed = 9;
  Database db = MakeChainDatabase(cspec);
  ConjunctiveQuery q = MakeChainQuery(4);

  QueryEngine engine = QueryEngine::Borrow(db);
  auto prepared = engine.Prepare(q);
  ASSERT_TRUE(prepared.ok());
  ASSERT_FALSE(prepared->exact());

  GuaranteeSpec spec;
  spec.top_k = 5;
  spec.deadline = std::chrono::nanoseconds(1);  // expired before refinement
  auto res = engine.RunWithGuarantees(*prepared, {}, spec);
  ASSERT_TRUE(res.ok()) << res.status().ToString();

  // Bounds are the unconditional floor; refinement never started.
  EXPECT_EQ(res->verdict, AnytimeVerdict::kBoundsOnly);
  EXPECT_TRUE(res->deadline_hit);
  EXPECT_EQ(res->refine_rounds, 0u);
  EXPECT_EQ(res->refined_answers, 0u);
  EXPECT_EQ(res->mc_samples_drawn, 0u);
  ASSERT_FALSE(res->answers.empty());
  for (const auto& a : res->answers) {
    EXPECT_FALSE(a.certified);
    EXPECT_EQ(a.source, BoundSource::kBounds);
    EXPECT_LE(a.lower, a.upper);
  }
  // Engine (and its worker pool) destructs cleanly at scope exit — a
  // leaked refinement worker would hang or trip TSan here.
}

TEST(AnytimeTest, RacingDeadlinesPreserveIntervalInvariants) {
  // Deadlines from "already expired" to "comfortably enough": whatever the
  // race outcome, intervals must stay ordered and the verdict consistent.
  ChainSpec cspec;
  cspec.k = 4;
  cspec.n = 150;
  cspec.target_answers = 30;
  cspec.seed = 21;
  Database db = MakeChainDatabase(cspec);
  ConjunctiveQuery q = MakeChainQuery(4);

  QueryEngine engine = QueryEngine::Borrow(db);
  auto prepared = engine.Prepare(q);
  ASSERT_TRUE(prepared.ok());

  for (int64_t us : {1, 50, 200, 1000, 5000, 50000}) {
    GuaranteeSpec spec;
    spec.top_k = 4;
    spec.deadline = std::chrono::microseconds(us);
    auto res = engine.RunWithGuarantees(*prepared, {}, spec);
    ASSERT_TRUE(res.ok()) << "deadline " << us << "us";
    for (const auto& a : res->answers) {
      EXPECT_LE(a.lower, a.upper + kTol) << "deadline " << us << "us";
      EXPECT_GE(a.point, a.lower - kTol);
      EXPECT_LE(a.point, a.upper + kTol);
    }
    if (res->verdict == AnytimeVerdict::kCertified) {
      EXPECT_FALSE(res->deadline_hit) << "deadline " << us << "us";
    }
  }
}

// ---------------------------------------------------------------------------
// (5) Pure-MC refinement is bit-reproducible across worker counts
// ---------------------------------------------------------------------------

TEST(AnytimeTest, IntervalsReproducibleAcrossThreadCounts) {
  ChainSpec cspec;
  cspec.k = 4;
  cspec.n = 80;
  cspec.target_answers = 25;
  cspec.seed = 5;
  Database db = MakeChainDatabase(cspec);
  ConjunctiveQuery q = MakeChainQuery(4);

  GuaranteeSpec spec;
  spec.top_k = 4;
  spec.wmc_max_calls = 0;  // pure MC: the path whose determinism is at stake
  spec.mc_base_samples = 512;
  spec.mc_max_samples_per_answer = 1 << 16;
  spec.max_refine_rounds = 8;

  auto run = [&](int threads) {
    EngineOptions opts;
    opts.num_threads = threads;
    QueryEngine engine = QueryEngine::Borrow(db, opts);
    auto prepared = engine.Prepare(q);
    EXPECT_TRUE(prepared.ok());
    auto res = engine.RunWithGuarantees(*prepared, {}, spec);
    EXPECT_TRUE(res.ok());
    return std::move(*res);
  };

  const auto one = run(1);
  const auto eight = run(8);
  EXPECT_GT(one.refine_rounds, 0u);
  ASSERT_EQ(one.answers.size(), eight.answers.size());
  EXPECT_EQ(one.refine_rounds, eight.refine_rounds);
  EXPECT_EQ(one.mc_samples_drawn, eight.mc_samples_drawn);
  for (size_t i = 0; i < one.answers.size(); ++i) {
    EXPECT_EQ(one.answers[i].tuple, eight.answers[i].tuple) << i;
    // Bit-identical, not approximately equal.
    EXPECT_EQ(one.answers[i].lower, eight.answers[i].lower) << i;
    EXPECT_EQ(one.answers[i].upper, eight.answers[i].upper) << i;
    EXPECT_EQ(one.answers[i].point, eight.answers[i].point) << i;
    EXPECT_EQ(one.answers[i].certified, eight.answers[i].certified) << i;
  }
}

}  // namespace
}  // namespace dissodb
