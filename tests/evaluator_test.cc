// Plan evaluation tests, including the paper's worked Example 17 with its
// exact probabilities 83/512, 169/1024 and 353/2048.
#include <gtest/gtest.h>

#include "src/dissociation/dissociation.h"
#include "src/dissociation/minimal_plans.h"
#include "src/dissociation/propagation.h"
#include "src/dissociation/single_plan.h"
#include "src/exec/deterministic.h"
#include "src/exec/evaluator.h"
#include "src/infer/query_inference.h"
#include "tests/test_util.h"

namespace dissodb {
namespace {

using testing_util::AddTable;
using testing_util::Q;
using testing_util::Vars;

/// The Example 17 database: R = T = U = {1,2}, S = {(1,1),(1,2),(2,2)},
/// all probabilities 1/2.
Database Example17Database() {
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.5}, {{2}, 0.5}});
  AddTable(&db, "S", 1, {{{1}, 0.5}, {{2}, 0.5}});
  AddTable(&db, "T", 2, {{{1, 1}, 0.5}, {{1, 2}, 0.5}, {{2, 2}, 0.5}});
  AddTable(&db, "U", 1, {{{1}, 0.5}, {{2}, 0.5}});
  return db;
}

ConjunctiveQuery Example17Query() {
  return Q("q() :- R(x), S(x), T(x,y), U(y)");
}

TEST(Example17Test, ExactProbabilityIs83Over512) {
  Database db = Example17Database();
  auto q = Example17Query();
  auto exact = ExactProbabilities(db, q);
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  ASSERT_EQ(exact->size(), 1u);
  EXPECT_NEAR((*exact)[0].score, 83.0 / 512.0, 1e-12);
}

TEST(Example17Test, MinimalDissociationScores) {
  Database db = Example17Database();
  auto q = Example17Query();
  // Delta3 = U^x: probability 169/1024. Delta4 = R^y,S^y: 353/2048.
  Dissociation d3 = Dissociation::Empty(q);
  d3.extra[3] = Vars(q, {"x"});
  auto p3 = SafePlanForDissociation(q, d3);
  ASSERT_TRUE(p3.ok());
  PlanEvaluator ev3(db, q);
  auto r3 = ev3.Evaluate(*p3);
  ASSERT_TRUE(r3.ok());
  ASSERT_EQ((*r3)->NumRows(), 1u);
  EXPECT_NEAR((*r3)->Score(0), 169.0 / 1024.0, 1e-12);

  Dissociation d4 = Dissociation::Empty(q);
  d4.extra[0] = Vars(q, {"y"});
  d4.extra[1] = Vars(q, {"y"});
  auto p4 = SafePlanForDissociation(q, d4);
  ASSERT_TRUE(p4.ok());
  PlanEvaluator ev4(db, q);
  auto r4 = ev4.Evaluate(*p4);
  ASSERT_TRUE(r4.ok());
  ASSERT_EQ((*r4)->NumRows(), 1u);
  EXPECT_NEAR((*r4)->Score(0), 353.0 / 2048.0, 1e-12);
}

TEST(Example17Test, PropagationScoreIsMinOfMinimalPlans) {
  Database db = Example17Database();
  auto q = Example17Query();
  auto rho = PropagationScoreBoolean(db, q);
  ASSERT_TRUE(rho.ok()) << rho.status().ToString();
  EXPECT_NEAR(*rho, 169.0 / 1024.0, 1e-12);  // min(169/1024, 353/2048)
  // And both bounds are above the exact probability.
  EXPECT_GT(*rho, 83.0 / 512.0);
}

TEST(Example17Test, Theorem18ScoreEqualsDissociatedProbability) {
  // score(P^Delta) computed on D equals P(q^Delta) computed by exact WMC on
  // the materialized D^Delta (Theorem 18(2)).
  Database db = Example17Database();
  auto q = Example17Query();
  for (int which : {3, 4}) {
    Dissociation d = Dissociation::Empty(q);
    if (which == 3) {
      d.extra[3] = Vars(q, {"x"});
    } else {
      d.extra[0] = Vars(q, {"y"});
      d.extra[1] = Vars(q, {"y"});
    }
    auto plan = SafePlanForDissociation(q, d);
    ASSERT_TRUE(plan.ok());
    PlanEvaluator ev(db, q);
    auto score = ev.Evaluate(*plan);
    ASSERT_TRUE(score.ok());

    auto mat = MaterializeDissociation(db, q, d);
    ASSERT_TRUE(mat.ok());
    auto exact = ExactProbabilities(mat->db, mat->query);
    ASSERT_TRUE(exact.ok());
    ASSERT_EQ(exact->size(), 1u);
    EXPECT_NEAR((*score)->Score(0), (*exact)[0].score, 1e-10) << which;
  }
}

TEST(EvaluatorTest, SafePlanComputesExactProbability) {
  // Safe query: the unique plan's score equals the exact probability
  // (Proposition 6).
  auto q = Q("q() :- R(x), S(x,y)");
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.3}, {{2}, 0.6}});
  AddTable(&db, "S", 2, {{{1, 4}, 0.5}, {{1, 5}, 0.2}, {{2, 4}, 0.9}});
  auto plans = EnumerateMinimalPlans(q);
  ASSERT_TRUE(plans.ok());
  ASSERT_EQ(plans->size(), 1u);
  PlanEvaluator ev(db, q);
  auto rel = ev.Evaluate((*plans)[0]);
  ASSERT_TRUE(rel.ok());
  auto exact = ExactProbabilities(db, q);
  ASSERT_TRUE(exact.ok());
  ASSERT_EQ((*rel)->NumRows(), 1u);
  EXPECT_NEAR((*rel)->Score(0), (*exact)[0].score, 1e-12);
}

TEST(EvaluatorTest, CacheSharesDagNodes) {
  auto q = Q("q() :- R(x), S(x,y), T(y)");
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.5}});
  AddTable(&db, "S", 2, {{{1, 2}, 0.5}});
  AddTable(&db, "T", 1, {{{2}, 0.5}});
  SinglePlanOptions opts;
  opts.reuse_common_subplans = true;
  auto sk = SchemaKnowledge::None(q);
  auto plan = BuildSinglePlan(q, sk, opts);
  ASSERT_TRUE(plan.ok());
  PlanEvaluator ev(db, q);
  auto rel = ev.Evaluate(*plan);
  ASSERT_TRUE(rel.ok());
  PlanSize sz = MeasurePlan(*plan);
  EXPECT_EQ(ev.nodes_evaluated(), sz.dag_nodes);
  EXPECT_LE(sz.dag_nodes, sz.tree_nodes);
}

TEST(EvaluatorTest, NonBooleanAnswersPerHeadValue) {
  auto q = Q("q(z) :- R(z,x), S(x,y), T(y)");
  Database db;
  AddTable(&db, "R", 2, {{{10, 1}, 0.5}, {{20, 2}, 0.7}});
  AddTable(&db, "S", 2, {{{1, 4}, 0.5}, {{2, 4}, 0.5}});
  AddTable(&db, "T", 1, {{{4}, 0.9}});
  auto res = PropagationScore(db, q);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->answers.size(), 2u);
  EXPECT_EQ(res->num_minimal_plans, 2u);
  // Exact per-answer probabilities (each answer's lineage is a single path):
  // z=10: 0.5*0.5*0.9; z=20: 0.7*0.5*0.9. Single-term lineages are exact.
  for (const auto& a : res->answers) {
    double expected = a.tuple[0] == Value::Int64(10) ? 0.5 * 0.5 * 0.9
                                                     : 0.7 * 0.5 * 0.9;
    EXPECT_NEAR(a.score, expected, 1e-12);
  }
}

TEST(DeterministicEvalTest, DistinctAnswers) {
  auto q = Q("q(z) :- R(z,x), S(x,y), T(y)");
  Database db;
  AddTable(&db, "R", 2, {{{10, 1}, 0.5}, {{10, 2}, 0.5}, {{20, 3}, 0.5}});
  AddTable(&db, "S", 2, {{{1, 4}, 0.5}, {{2, 4}, 0.5}});
  AddTable(&db, "T", 1, {{{4}, 0.9}});
  auto rel = EvaluateDeterministic(db, q);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->NumRows(), 1u);  // only z=10 joins all the way
  EXPECT_EQ(rel->At(0, 0), Value::Int64(10));
}

TEST(DeterministicEvalTest, BooleanEmptyWhenNoMatch) {
  auto q = Q("q() :- R(x), S(x)");
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.5}});
  AddTable(&db, "S", 1, {{{2}, 0.5}});
  auto rel = EvaluateDeterministic(db, q);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->NumRows(), 0u);
}

}  // namespace
}  // namespace dissodb
