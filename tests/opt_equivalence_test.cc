// Property tests for the optimization combinations (Section 4).
//
// Semantics notes:
//  - Opt. 2 (view reuse) and Opt. 3 (semi-join reduction) never change
//    scores; all combinations within one evaluation family must agree
//    exactly, as must DR/FD knowledge (Lemmas 22/25).
//  - Opt. 1 (Algorithm 2) pushes the min operator INTO the plan: the
//    per-tuple minimum at inner levels can be strictly TIGHTER than the
//    minimum over whole minimal plans (it corresponds to a finer, tuple-
//    level dissociation, still sound by Theorem 8). Hence the single plan's
//    score is <= the all-plans score, and both upper-bound the exact
//    probability.
#include <gtest/gtest.h>

#include <map>

#include "src/common/string_util.h"
#include "src/dissociation/propagation.h"
#include "src/infer/query_inference.h"
#include "src/workload/random_instance.h"
#include "src/workload/synthetic.h"
#include "tests/test_util.h"

namespace dissodb {
namespace {

using testing_util::AddTable;
using testing_util::Q;

using ScoreMap = std::map<std::vector<Value>, double>;

ScoreMap ToMap(const std::vector<RankedAnswer>& answers) {
  ScoreMap m;
  for (const auto& a : answers) m[a.tuple] = a.score;
  return m;
}

void ExpectSameScores(const ScoreMap& a, const ScoreMap& b,
                      const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  auto ia = a.begin();
  auto ib = b.begin();
  for (; ia != a.end(); ++ia, ++ib) {
    ASSERT_EQ(ia->first, ib->first) << label;
    EXPECT_NEAR(ia->second, ib->second, 1e-9) << label;
  }
}

void ExpectDominates(const ScoreMap& hi, const ScoreMap& lo,
                     const std::string& label) {
  ASSERT_EQ(hi.size(), lo.size()) << label;
  for (const auto& [tuple, s] : hi) {
    auto it = lo.find(tuple);
    ASSERT_NE(it, lo.end()) << label;
    EXPECT_GE(s, it->second - 1e-9) << label;
  }
}

TEST(OptEquivalenceTest, AllCombinationsConsistentOnRandomInstances) {
  Rng rng(31337);
  RandomQuerySpec qspec;
  qspec.max_atoms = 4;
  qspec.max_vars = 4;
  RandomInstanceSpec ispec;
  ispec.max_rows = 4;
  ispec.deterministic_prob = 0.25;
  int checked = 0;
  for (int trial = 0; trial < 100; ++trial) {
    ConjunctiveQuery q = RandomQuery(&rng, qspec);
    Database db = RandomDatabaseFor(q, &rng, ispec);

    // Family A: single plan (Opt. 1) with all other toggles.
    ScoreMap single;
    bool have_single = false;
    for (bool opt2 : {false, true}) {
      for (bool opt3 : {false, true}) {
        for (bool dr : {false, true}) {
          PropagationOptions opts;
          opts.opt1_single_plan = true;
          opts.opt2_reuse_subplans = opt2;
          opts.opt3_semijoin_reduction = opt3;
          opts.enum_opts.use_deterministic = dr;
          auto res = PropagationScore(db, q, opts);
          ASSERT_TRUE(res.ok()) << q.ToString() << res.status().ToString();
          auto scores = ToMap(res->answers);
          if (!have_single) {
            single = scores;
            have_single = true;
          } else {
            ExpectSameScores(single, scores,
                             q.ToString() +
                                 StrFormat(" single opt2=%d opt3=%d dr=%d",
                                           opt2, opt3, dr));
          }
        }
      }
    }

    // Family B: all minimal plans evaluated separately.
    ScoreMap allplans;
    bool have_all = false;
    for (bool opt3 : {false, true}) {
      for (bool dr : {false, true}) {
        PropagationOptions opts;
        opts.opt1_single_plan = false;
        opts.opt3_semijoin_reduction = opt3;
        opts.enum_opts.use_deterministic = dr;
        auto res = PropagationScore(db, q, opts);
        ASSERT_TRUE(res.ok()) << q.ToString();
        auto scores = ToMap(res->answers);
        if (!have_all) {
          allplans = scores;
          have_all = true;
        } else {
          ExpectSameScores(allplans, scores,
                           q.ToString() +
                               StrFormat(" all opt3=%d dr=%d", opt3, dr));
        }
      }
    }

    // Cross-family: single-plan min is at least as tight, and both are
    // upper bounds on the exact probability.
    ExpectDominates(allplans, single, q.ToString() + " all >= single");
    auto exact = ExactProbabilities(db, q);
    ASSERT_TRUE(exact.ok());
    ExpectDominates(single, ToMap(*exact), q.ToString() + " single >= exact");
    ++checked;
  }
  EXPECT_EQ(checked, 100);
}

TEST(OptEquivalenceTest, ChainQueryFamiliesConsistent) {
  for (int k : {2, 3, 4, 5}) {
    ChainSpec spec;
    spec.k = k;
    spec.n = 60;
    spec.seed = 1000 + k;
    Database db = MakeChainDatabase(spec);
    ConjunctiveQuery q = MakeChainQuery(k);

    PropagationOptions all_plans;
    all_plans.opt1_single_plan = false;
    auto base = PropagationScore(db, q, all_plans);
    ASSERT_TRUE(base.ok());
    auto ref = ToMap(base->answers);

    ScoreMap first_single;
    bool have = false;
    for (bool opt2 : {false, true}) {
      for (bool opt3 : {false, true}) {
        PropagationOptions opts;
        opts.opt1_single_plan = true;
        opts.opt2_reuse_subplans = opt2;
        opts.opt3_semijoin_reduction = opt3;
        auto res = PropagationScore(db, q, opts);
        ASSERT_TRUE(res.ok());
        auto scores = ToMap(res->answers);
        if (!have) {
          first_single = scores;
          have = true;
        } else {
          ExpectSameScores(first_single, scores,
                           StrFormat("chain k=%d opt2=%d opt3=%d", k, opt2,
                                     opt3));
        }
      }
    }
    ExpectDominates(ref, first_single, StrFormat("chain k=%d all>=single", k));
  }
}

TEST(OptEquivalenceTest, StarQueryFamiliesConsistent) {
  for (int k : {2, 3}) {
    StarSpec spec;
    spec.k = k;
    spec.n = 50;
    spec.seed = 2000 + k;
    Database db = MakeStarDatabase(spec);
    ConjunctiveQuery q = MakeStarQuery(k);

    PropagationOptions all_plans;
    all_plans.opt1_single_plan = false;
    auto base = PropagationScore(db, q, all_plans);
    ASSERT_TRUE(base.ok());

    PropagationOptions all_plans_sj = all_plans;
    all_plans_sj.opt3_semijoin_reduction = true;
    auto base_sj = PropagationScore(db, q, all_plans_sj);
    ASSERT_TRUE(base_sj.ok());
    ExpectSameScores(ToMap(base->answers), ToMap(base_sj->answers),
                     StrFormat("star k=%d opt3", k));

    PropagationOptions fast;  // opt1+2+3
    fast.opt3_semijoin_reduction = true;
    auto res = PropagationScore(db, q, fast);
    ASSERT_TRUE(res.ok());
    ExpectDominates(ToMap(base->answers), ToMap(res->answers),
                    StrFormat("star k=%d all>=single", k));

    // For k=2 there are no nested min operators, so the values coincide.
    if (k == 2) {
      ExpectSameScores(ToMap(base->answers), ToMap(res->answers), "star k=2");
    }
  }
}

TEST(OptEquivalenceTest, Opt2ReducesEvaluatedNodes) {
  // For a 5-chain the single plan has heavy subplan sharing: the DAG
  // evaluator must evaluate strictly fewer nodes than the expanded tree.
  ChainSpec spec;
  spec.k = 5;
  spec.n = 40;
  Database db = MakeChainDatabase(spec);
  ConjunctiveQuery q = MakeChainQuery(5);

  PropagationOptions with;
  with.opt2_reuse_subplans = true;
  auto a = PropagationScore(db, q, with);
  ASSERT_TRUE(a.ok());

  PropagationOptions without;
  without.opt2_reuse_subplans = false;
  auto b = PropagationScore(db, q, without);
  ASSERT_TRUE(b.ok());

  EXPECT_LT(a->nodes_evaluated, b->nodes_evaluated);
  ExpectSameScores(ToMap(a->answers), ToMap(b->answers), "opt2");
}

TEST(OptEquivalenceTest, DrKnowledgeKeepsScoresForSafePart) {
  // With a deterministic relation the DR-aware plan set is smaller but the
  // propagation score must not change (Lemma 22 guarantees the dropped
  // plans were redundant). The query's sub-structures have single min-cuts,
  // so the single-plan value coincides with the plan minimum here.
  auto q = Q("q() :- R(x), S(x,y), T(y)");
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.4}, {{2}, 0.7}});
  AddTable(&db, "S", 2, {{{1, 4}, 0.6}, {{2, 4}, 0.5}, {{2, 5}, 0.3}});
  AddTable(&db, "T", 1, {{{4}, 1.0}, {{5}, 1.0}}, /*deterministic=*/true);

  PropagationOptions with_dr;
  auto a = PropagationScore(db, q, with_dr);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->num_minimal_plans, 1u);

  PropagationOptions without_dr;
  without_dr.enum_opts.use_deterministic = false;
  auto b = PropagationScore(db, q, without_dr);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->num_minimal_plans, 2u);

  ExpectSameScores(ToMap(a->answers), ToMap(b->answers), "dr");
}

}  // namespace
}  // namespace dissodb
