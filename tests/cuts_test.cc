// Unit tests for cut-set enumeration (MinCuts / MinPCuts / all cut-sets).
#include <gtest/gtest.h>

#include <algorithm>

#include "src/query/cuts.h"
#include "src/workload/synthetic.h"
#include "tests/test_util.h"

namespace dissodb {
namespace {

using testing_util::Q;
using testing_util::Vars;

std::vector<WorkAtom> Atoms(const ConjunctiveQuery& q,
                            const std::vector<bool>& det = {}) {
  SchemaKnowledge sk = SchemaKnowledge::None(q);
  if (!det.empty()) sk.deterministic = det;
  return MakeWorkAtoms(q, sk);
}

TEST(MinCutsTest, ChainQueryHasOneCutPerInnerVariable) {
  // q() :- R(x), S(x,y), T(y): MinCuts = {{x},{y}}.
  auto q = Q("q() :- R(x), S(x,y), T(y)");
  auto atoms = Atoms(q);
  auto cuts = MinCuts(atoms, q.EVarMask());
  ASSERT_TRUE(cuts.ok());
  std::vector<VarMask> expected = {Vars(q, {"x"}), Vars(q, {"y"})};
  EXPECT_EQ(cuts->size(), 2u);
  for (VarMask e : expected) {
    EXPECT_NE(std::find(cuts->begin(), cuts->end(), e), cuts->end());
  }
}

TEST(MinCutsTest, HierarchicalQueryHasSingleCut) {
  // q1(z) :- R(z,x), S(x,y), K(x,y): only {x} disconnects (z is head).
  auto q = Q("q1(z) :- R(z,x), S(x,y), K(x,y)");
  auto atoms = Atoms(q);
  auto cuts = MinCuts(atoms, q.EVarMask());
  ASSERT_TRUE(cuts.ok());
  ASSERT_EQ(cuts->size(), 1u);
  EXPECT_EQ((*cuts)[0], Vars(q, {"x"}));
}

TEST(MinCutsTest, SingleAtomHasNoCut) {
  auto q = Q("q() :- R(x,y)");
  auto atoms = Atoms(q);
  auto cuts = MinCuts(atoms, q.EVarMask());
  ASSERT_TRUE(cuts.ok());
  EXPECT_TRUE(cuts->empty());
}

TEST(MinCutsTest, TwoAtomFullSharing) {
  // R(x,y), S(x,y): only {x,y} together disconnect.
  auto q = Q("q() :- R(x,y), S(x,y)");
  auto atoms = Atoms(q);
  auto cuts = MinCuts(atoms, q.EVarMask());
  ASSERT_TRUE(cuts.ok());
  ASSERT_EQ(cuts->size(), 1u);
  EXPECT_EQ((*cuts)[0], Vars(q, {"x", "y"}));
}

TEST(MinCutsTest, StarQueryEachPetalVariable) {
  // k-star: each single {x_i} is a min-cut.
  auto q = MakeStarQuery(3);
  auto atoms = Atoms(q);
  auto cuts = MinCuts(atoms, q.EVarMask());
  ASSERT_TRUE(cuts.ok());
  EXPECT_EQ(cuts->size(), 3u);
  for (VarMask c : *cuts) EXPECT_EQ(MaskCount(c), 1);
}

TEST(MinCutsTest, ChainLengthFour) {
  // 4-chain (existential x1,x2,x3): min-cuts {x1},{x2},{x3}.
  auto q = MakeChainQuery(4);
  auto atoms = Atoms(q);
  auto cuts = MinCuts(atoms, q.EVarMask());
  ASSERT_TRUE(cuts.ok());
  EXPECT_EQ(cuts->size(), 3u);
}

TEST(MinCutsTest, DisconnectedQueryHasEmptyCut) {
  auto q = Q("q() :- R(x), S(y)");
  auto atoms = Atoms(q);
  // The empty set already disconnects; minimal enumeration starts at size 1,
  // so callers must handle disconnected queries before calling MinCuts.
  auto comps = ConnectedComponents(atoms, q.EVarMask());
  EXPECT_EQ(comps.size(), 2u);
}

TEST(AllCutSetsTest, ChainCounts) {
  // 3-atom chain R(x),S(x,y),T(y): cut-sets {x},{y},{x,y}.
  auto q = Q("q() :- R(x), S(x,y), T(y)");
  auto atoms = Atoms(q);
  auto cuts = EnumerateCutSets(atoms, q.EVarMask());
  ASSERT_TRUE(cuts.ok());
  EXPECT_EQ(cuts->size(), 3u);
}

TEST(AllCutSetsTest, EveryMinCutIsACutSet) {
  auto q = MakeChainQuery(5);
  auto atoms = Atoms(q);
  auto all = EnumerateCutSets(atoms, q.EVarMask());
  auto min = MinCuts(atoms, q.EVarMask());
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(min.ok());
  for (VarMask m : *min) {
    EXPECT_NE(std::find(all->begin(), all->end(), m), all->end());
  }
  EXPECT_GE(all->size(), min->size());
}

TEST(AllCutSetsTest, MinCutsAreSubsetMinimal) {
  auto q = MakeStarQuery(4);
  auto atoms = Atoms(q);
  auto min = MinCuts(atoms, q.EVarMask());
  ASSERT_TRUE(min.ok());
  for (size_t i = 0; i < min->size(); ++i) {
    for (size_t j = 0; j < min->size(); ++j) {
      if (i == j) continue;
      EXPECT_NE(((*min)[i] & (*min)[j]), (*min)[i])
          << "cut " << i << " is a subset of cut " << j;
    }
  }
}

TEST(MinPCutsTest, PaperExampleWithDeterministicT) {
  // q :- R(x), S(x,y), T^d(y): MinCuts = {{x},{y}} but MinPCuts = {{x}}
  // (cutting y leaves only one probabilistic component). Section 3.3.1.
  auto q = Q("q() :- R(x), S(x,y), T(y)");
  auto atoms = Atoms(q, {false, false, true});
  auto pcuts = MinPCuts(atoms, q.EVarMask());
  ASSERT_TRUE(pcuts.ok());
  ASSERT_EQ(pcuts->size(), 1u);
  EXPECT_EQ((*pcuts)[0], Vars(q, {"x"}));
}

TEST(MinPCutsTest, AllDeterministicMeansNoPCut) {
  auto q = Q("q() :- R(x), S(x,y), T(y)");
  auto atoms = Atoms(q, {true, true, true});
  auto pcuts = MinPCuts(atoms, q.EVarMask());
  ASSERT_TRUE(pcuts.ok());
  EXPECT_TRUE(pcuts->empty());
}

TEST(MinPCutsTest, NoDeterministicMatchesMinCuts) {
  auto q = MakeChainQuery(4);
  auto atoms = Atoms(q);
  auto a = MinCuts(atoms, q.EVarMask());
  auto b = MinPCuts(atoms, q.EVarMask());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(MinPCutsTest, CanBeLargerThanAMinCut) {
  // q :- R(x), S^d(x,y), T(y), U(y): cutting {x} gives components {R},
  // {S,T,U}: 2 probabilistic comps? R probabilistic, {S,T,U} contains T,U.
  // Cutting {y}: {R,S} (prob R), {T}, {U} -> 3 prob comps. Both minimal.
  auto q = Q("q() :- R(x), S(x,y), T(y), U(y)");
  auto atoms = Atoms(q, {false, true, false, false});
  auto pcuts = MinPCuts(atoms, q.EVarMask());
  ASSERT_TRUE(pcuts.ok());
  EXPECT_EQ(pcuts->size(), 2u);
}

TEST(CutsGuardTest, TooManyVariablesRejected) {
  ConjunctiveQuery q;
  Atom a;
  a.relation = "Big";
  for (int i = 0; i < 30; ++i) {
    a.terms.push_back(Term::Var(q.AddVar("v" + std::to_string(i))));
  }
  Atom b;
  b.relation = "Big2";
  for (int i = 0; i < 30; ++i) b.terms.push_back(Term::Var(i));
  ASSERT_TRUE(q.AddAtom(a).ok());
  ASSERT_TRUE(q.AddAtom(b).ok());
  auto atoms = MakeWorkAtoms(q, SchemaKnowledge::None(q));
  auto cuts = MinCuts(atoms, q.EVarMask());
  EXPECT_FALSE(cuts.ok());
  EXPECT_EQ(cuts.status().code(), Status::Code::kOutOfRange);
}

}  // namespace
}  // namespace dissodb
