// Tests for the dissociation lattice and its correspondence with plans:
// Theorem 18 (safe dissociations <-> plans, bijectively) and Theorem 20
// (minimal safe dissociations <-> Algorithm 1 output).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/dissociation/counting.h"
#include "src/dissociation/lattice.h"
#include "src/dissociation/minimal_plans.h"
#include "src/workload/random_instance.h"
#include "src/workload/synthetic.h"
#include "tests/test_util.h"

namespace dissodb {
namespace {

using testing_util::Q;
using testing_util::Vars;

std::string DeltaKey(const ConjunctiveQuery& q, const Dissociation& d) {
  std::string key;
  for (int i = 0; i < q.num_atoms(); ++i) {
    key += std::to_string(d.extra[i]) + "|";
  }
  return key;
}

TEST(LatticeTest, AllDissociationsCountIsTwoToTheK) {
  auto q = Q("q() :- R(x), S(x), T(x,y), U(y)");
  // Example 17: 2^3 = 8 dissociations.
  EXPECT_EQ(DissociationExponent(q), 3);
  auto all = EnumerateAllDissociations(q);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 8u);
}

TEST(LatticeTest, Example17SafeAndMinimalCounts) {
  // Example 17: among 8 dissociations, 5 are safe, 2 minimal.
  auto q = Q("q() :- R(x), S(x), T(x,y), U(y)");
  auto safe = EnumerateSafeDissociations(q);
  ASSERT_TRUE(safe.ok());
  EXPECT_EQ(safe->size(), 5u);
  auto minimal = EnumerateMinimalSafeDissociations(q);
  ASSERT_TRUE(minimal.ok());
  ASSERT_EQ(minimal->size(), 2u);
  // The two minimal ones are Delta3 = (0,0,0,{x}) and Delta4 = ({y},{y},0,0).
  std::set<std::string> keys;
  for (const auto& d : *minimal) keys.insert(DeltaKey(q, d));
  Dissociation d3 = Dissociation::Empty(q);
  d3.extra[3] = Vars(q, {"x"});
  Dissociation d4 = Dissociation::Empty(q);
  d4.extra[0] = Vars(q, {"y"});
  d4.extra[1] = Vars(q, {"y"});
  EXPECT_TRUE(keys.count(DeltaKey(q, d3)));
  EXPECT_TRUE(keys.count(DeltaKey(q, d4)));
}

TEST(LatticeTest, Example17HasFivePlans) {
  // Figure 1b: exactly 5 query plans.
  auto q = Q("q() :- R(x), S(x), T(x,y), U(y)");
  auto plans = EnumerateAllPlans(q);
  ASSERT_TRUE(plans.ok());
  EXPECT_EQ(plans->size(), 5u);
}

TEST(LatticeTest, PlansBijectWithSafeDissociations) {
  for (const char* text :
       {"q() :- R(x), S(x), T(x,y), U(y)", "q() :- R(x), S(x,y), T(y)",
        "q(z) :- R(z,x), S(x,y), T(y)", "q() :- R(x), S(y)",
        "q() :- R(x,y), S(y,z)"}) {
    auto q = Q(text);
    auto plans = EnumerateAllPlans(q);
    auto safe = EnumerateSafeDissociations(q);
    ASSERT_TRUE(plans.ok()) << text;
    ASSERT_TRUE(safe.ok()) << text;
    EXPECT_EQ(plans->size(), safe->size()) << text;
    // The extracted dissociations of all plans are exactly the safe ones,
    // with no duplicates (Theorem 18: the mappings are inverse bijections).
    std::set<std::string> from_plans, safe_keys;
    for (const auto& p : *plans) {
      Dissociation d = ExtractDissociation(p, q);
      EXPECT_TRUE(IsSafeDissociation(q, d)) << text;
      from_plans.insert(DeltaKey(q, d));
    }
    for (const auto& d : *safe) safe_keys.insert(DeltaKey(q, d));
    EXPECT_EQ(from_plans, safe_keys) << text;
  }
}

TEST(LatticeTest, MinimalSafeDissociationsMatchAlgorithmOne) {
  for (const char* text :
       {"q() :- R(x), S(x), T(x,y), U(y)", "q() :- R(x), S(x,y), T(y)",
        "q(z) :- R(z,x), S(x,y), K(x,y)", "q() :- R(x,y), S(y,z), T(z,u)",
        "q() :- R(x), S(y)"}) {
    auto q = Q(text);
    auto minimal = EnumerateMinimalSafeDissociations(q);
    auto plans = EnumerateMinimalPlans(q);
    ASSERT_TRUE(minimal.ok()) << text;
    ASSERT_TRUE(plans.ok()) << text;
    EXPECT_EQ(minimal->size(), plans->size()) << text;
    std::set<std::string> lattice_keys, algo_keys;
    for (const auto& d : *minimal) lattice_keys.insert(DeltaKey(q, d));
    for (const auto& p : *plans) {
      algo_keys.insert(DeltaKey(q, ExtractDissociation(p, q)));
    }
    EXPECT_EQ(lattice_keys, algo_keys) << text;
  }
}

TEST(LatticeTest, MinimalSafeDissociationsMatchAlgorithmOneRandom) {
  Rng rng(20240610);
  RandomQuerySpec spec;
  spec.max_atoms = 4;
  spec.max_vars = 4;
  int checked = 0;
  for (int trial = 0; trial < 200; ++trial) {
    ConjunctiveQuery q = RandomQuery(&rng, spec);
    if (DissociationExponent(q) > 12) continue;
    auto minimal = EnumerateMinimalSafeDissociations(q);
    auto plans = EnumerateMinimalPlans(q);
    ASSERT_TRUE(minimal.ok()) << q.ToString();
    ASSERT_TRUE(plans.ok()) << q.ToString();
    std::set<std::string> lattice_keys, algo_keys;
    for (const auto& d : *minimal) lattice_keys.insert(DeltaKey(q, d));
    for (const auto& p : *plans) {
      algo_keys.insert(DeltaKey(q, ExtractDissociation(p, q)));
    }
    EXPECT_EQ(lattice_keys, algo_keys) << q.ToString();
    ++checked;
  }
  EXPECT_GT(checked, 100);
}

TEST(LatticeTest, PlanCountsMatchCountingModule) {
  Rng rng(7777);
  RandomQuerySpec spec;
  spec.max_atoms = 4;
  spec.max_vars = 4;
  for (int trial = 0; trial < 100; ++trial) {
    ConjunctiveQuery q = RandomQuery(&rng, spec);
    if (DissociationExponent(q) > 12) continue;
    auto plans = EnumerateAllPlans(q);
    auto count = CountSafeDissociations(q);
    ASSERT_TRUE(plans.ok());
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(plans->size(), *count) << q.ToString();
    auto minimal = EnumerateMinimalPlans(q);
    auto min_count = CountMinimalPlans(q);
    ASSERT_TRUE(minimal.ok());
    ASSERT_TRUE(min_count.ok());
    EXPECT_EQ(minimal->size(), *min_count) << q.ToString();
  }
}

TEST(LatticeTest, EnumerationOrderIsBottomUp) {
  auto q = Q("q() :- R(x), S(x,y), T(y)");
  auto all = EnumerateAllDissociations(q);
  ASSERT_TRUE(all.ok());
  int prev = 0;
  for (const auto& d : *all) {
    int total = 0;
    for (VarMask m : d.extra) total += MaskCount(m);
    EXPECT_GE(total, prev);
    prev = total;
  }
}

TEST(LatticeTest, GuardOnHugeLattices) {
  auto q = MakeChainQuery(9);  // (k-1)(k-2) = 56 slots
  auto all = EnumerateAllDissociations(q);
  EXPECT_FALSE(all.ok());
  EXPECT_EQ(all.status().code(), Status::Code::kOutOfRange);
}

}  // namespace
}  // namespace dissodb
