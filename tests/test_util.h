// Shared helpers for DissoDB tests.
#ifndef DISSODB_TESTS_TEST_UTIL_H_
#define DISSODB_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <initializer_list>
#include <string>
#include <vector>

#include "src/query/cq.h"
#include "src/query/parser.h"
#include "src/storage/columnar.h"
#include "src/storage/database.h"

namespace dissodb {
namespace testing_util {

/// Scoped override of the default Column chunk capacity, so chunk-seam
/// behavior is exercisable on small inputs. Columns capture the capacity
/// at construction; build all test inputs while the override is alive.
class ChunkCapOverride {
 public:
  explicit ChunkCapOverride(size_t cap)
      : old_(Column::default_chunk_capacity()) {
    Column::SetDefaultChunkCapacityForTesting(cap);
  }
  ~ChunkCapOverride() { Column::SetDefaultChunkCapacityForTesting(old_); }

  ChunkCapOverride(const ChunkCapOverride&) = delete;
  ChunkCapOverride& operator=(const ChunkCapOverride&) = delete;

 private:
  size_t old_;
};

/// Parses a query or fails the test.
inline ConjunctiveQuery Q(const std::string& text, StringPool* pool = nullptr) {
  auto r = ParseQuery(text, pool);
  EXPECT_TRUE(r.ok()) << text << " -> " << r.status().ToString();
  return r.ok() ? *r : ConjunctiveQuery{};
}

/// Adds an all-INT64 table named `name` with the given rows/probabilities.
inline void AddTable(Database* db, const std::string& name, int arity,
                     const std::vector<std::pair<std::vector<int64_t>, double>>&
                         rows,
                     bool deterministic = false) {
  Table t(RelationSchema::AllInt64(name, arity, deterministic));
  for (const auto& [vals, p] : rows) {
    std::vector<Value> row;
    for (int64_t v : vals) row.push_back(Value::Int64(v));
    t.AddRow(row, p);
  }
  auto r = db->AddTable(std::move(t));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
}

/// The VarMask of named variables in q.
inline VarMask Vars(const ConjunctiveQuery& q,
                    std::initializer_list<const char*> names) {
  VarMask m = 0;
  for (const char* n : names) {
    VarId v = q.FindVar(n);
    EXPECT_GE(v, 0) << "unknown variable " << n;
    if (v >= 0) m |= MaskOf(v);
  }
  return m;
}

}  // namespace testing_util
}  // namespace dissodb

#endif  // DISSODB_TESTS_TEST_UTIL_H_
