// Serving-layer scheduler: morsel coverage, work-sharing, and nesting.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "src/serve/scheduler.h"

namespace dissodb {
namespace {

TEST(SchedulerTest, ParallelForCoversEveryIndexExactlyOnce) {
  Scheduler pool(4);
  constexpr size_t kN = 100'000;
  std::vector<std::atomic<int>> counts(kN);
  pool.ParallelFor(0, kN, 1024, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      counts[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(SchedulerTest, ParallelForMorselIndexIsDerivableFromRange) {
  // Operators rely on lo being begin + k*grain to address per-morsel
  // buffers; verify the contract.
  Scheduler pool(3);
  constexpr size_t kN = 10'000;
  constexpr size_t kGrain = 256;
  const size_t num_morsels = (kN + kGrain - 1) / kGrain;
  std::vector<std::atomic<int>> seen(num_morsels);
  pool.ParallelFor(0, kN, kGrain, [&](size_t lo, size_t hi) {
    ASSERT_EQ(lo % kGrain, 0u);
    ASSERT_LE(hi, kN);
    seen[lo / kGrain].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t k = 0; k < num_morsels; ++k) EXPECT_EQ(seen[k].load(), 1);
}

TEST(SchedulerTest, ParallelForSmallRangeRunsInline) {
  Scheduler pool(2);
  int calls = 0;
  pool.ParallelFor(5, 9, 100, [&](size_t lo, size_t hi) {
    ++calls;
    EXPECT_EQ(lo, 5u);
    EXPECT_EQ(hi, 9u);
  });
  EXPECT_EQ(calls, 1);
  pool.ParallelFor(7, 7, 8, [&](size_t, size_t) { FAIL(); });
}

TEST(SchedulerTest, RunAllExecutesEveryTask) {
  Scheduler pool(4);
  constexpr int kTasks = 200;
  std::vector<std::atomic<int>> ran(kTasks);
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < kTasks; ++i) {
    tasks.push_back([&ran, i] { ran[i].fetch_add(1); });
  }
  pool.RunAll(std::move(tasks));
  for (int i = 0; i < kTasks; ++i) ASSERT_EQ(ran[i].load(), 1) << i;
  EXPECT_GE(pool.tasks_executed(), static_cast<size_t>(kTasks));
}

TEST(SchedulerTest, NestedParallelForInsideRunAllDoesNotDeadlock) {
  // The RunBatch shape: query tasks saturate the pool, each fanning out
  // morsels on the same pool. Work-sharing (callers claim morsels too)
  // must keep this live even with a single pool thread.
  Scheduler pool(1);
  std::atomic<size_t> total{0};
  std::vector<std::function<void()>> tasks;
  for (int t = 0; t < 8; ++t) {
    tasks.push_back([&] {
      pool.ParallelFor(0, 50'000, 1000, [&](size_t lo, size_t hi) {
        total.fetch_add(hi - lo, std::memory_order_relaxed);
      });
    });
  }
  pool.RunAll(std::move(tasks));
  EXPECT_EQ(total.load(), 8u * 50'000);
}

TEST(SchedulerTest, SubmitRunsDetachedWork) {
  // cv/mu declared before the pool: the pool's destructor joins its
  // workers, so no task can outlive what it captures.
  std::mutex mu;
  std::condition_variable cv;
  int ran = 0;
  Scheduler pool(2);
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&] {
      std::lock_guard lock(mu);
      if (++ran == 10) cv.notify_one();
    });
  }
  std::unique_lock lock(mu);
  cv.wait(lock, [&] { return ran == 10; });
  EXPECT_EQ(ran, 10);
}

TEST(SchedulerTest, CancelledTasksAreSkippedButAlwaysCompleted) {
  // The anytime refinement barrier depends on this: every cancellable
  // task invokes its `done` callback exactly once whether it ran or was
  // skipped, so a WaitGroup-style join never hangs after a cancel.
  std::mutex mu;
  std::condition_variable cv;
  size_t completed = 0;
  std::atomic<int> bodies_run{0};
  constexpr int kTasks = 64;

  auto token = std::make_shared<CancelToken>();
  Scheduler pool(3);
  for (int i = 0; i < kTasks; ++i) {
    if (i == kTasks / 2) token->Cancel();  // mid-submission cancel
    pool.Submit([&] { bodies_run.fetch_add(1, std::memory_order_relaxed); },
                "cancel-test", token, [&] {
                  std::lock_guard lock(mu);
                  if (++completed == kTasks) cv.notify_one();
                });
  }
  {
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return completed == kTasks; });
  }
  EXPECT_EQ(completed, static_cast<size_t>(kTasks));
  // Everything submitted after the cancel is skipped; tasks already
  // dequeued before it may have run.
  EXPECT_LE(bodies_run.load(), kTasks / 2);
  EXPECT_GE(pool.tasks_cancelled(), static_cast<size_t>(kTasks / 2));
}

TEST(SchedulerTest, DeadlineTokenAutoCancels) {
  auto token = std::make_shared<CancelToken>(obs::NowNanos());  // expired
  EXPECT_TRUE(token->cancelled());
  std::atomic<int> bodies_run{0};
  std::mutex mu;
  std::condition_variable cv;
  bool completed = false;
  Scheduler pool(2);
  pool.Submit([&] { bodies_run.fetch_add(1); }, "deadline-test", token, [&] {
    std::lock_guard lock(mu);
    completed = true;
    cv.notify_one();
  });
  std::unique_lock lock(mu);
  cv.wait(lock, [&] { return completed; });
  EXPECT_EQ(bodies_run.load(), 0);
}

}  // namespace
}  // namespace dissodb
