// Tests for the Monte Carlo estimators (naive MC(x) and Karp-Luby).
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/infer/exact.h"
#include "src/infer/mc.h"
#include "src/lineage/formula.h"

namespace dissodb {
namespace {

Dnf Example7() {
  Dnf f;
  f.probs = {0.5, 0.4, 0.3};
  f.terms = {{0, 1}, {0, 2}};
  return f;
}

TEST(NaiveMcTest, DeterministicForFixedSeed) {
  Dnf f = Example7();
  Rng a(42), b(42);
  EXPECT_DOUBLE_EQ(NaiveDnfEstimate(f, 1000, &a), NaiveDnfEstimate(f, 1000, &b));
}

TEST(NaiveMcTest, ConvergesToExact) {
  Dnf f = Example7();
  auto exact = ExactDnfProbability(f);
  ASSERT_TRUE(exact.ok());
  Rng rng(7);
  double est = NaiveDnfEstimate(f, 200000, &rng);
  // stderr ~ sqrt(p(1-p)/n) ~ 0.001; allow 5 sigma.
  EXPECT_NEAR(est, *exact, 0.006);
}

TEST(NaiveMcTest, EmptyFormulaIsZero) {
  Dnf f;
  Rng rng(1);
  EXPECT_DOUBLE_EQ(NaiveDnfEstimate(f, 100, &rng), 0.0);
}

TEST(NaiveMcTest, CertainFormulaIsOne) {
  Dnf f;
  f.probs = {1.0};
  f.terms = {{0}};
  Rng rng(1);
  EXPECT_DOUBLE_EQ(NaiveDnfEstimate(f, 100, &rng), 1.0);
}

TEST(NaiveMcTest, VarianceShrinksWithSamples) {
  Dnf f = Example7();
  auto exact = ExactDnfProbability(f);
  ASSERT_TRUE(exact.ok());
  auto spread = [&](size_t samples, uint64_t seed0) {
    double mn = 1.0, mx = 0.0;
    for (uint64_t s = 0; s < 20; ++s) {
      Rng rng(seed0 + s);
      double est = NaiveDnfEstimate(f, samples, &rng);
      mn = std::min(mn, est);
      mx = std::max(mx, est);
    }
    return mx - mn;
  };
  EXPECT_GT(spread(50, 100), spread(50000, 200));
}

TEST(KarpLubyTest, ConvergesToExact) {
  Dnf f = Example7();
  auto exact = ExactDnfProbability(f);
  ASSERT_TRUE(exact.ok());
  Rng rng(11);
  double est = KarpLubyEstimate(f, 200000, &rng);
  EXPECT_NEAR(est, *exact, 0.01);
}

TEST(KarpLubyTest, GoodOnTinyProbabilities) {
  // P(F) ~ 1e-6: naive MC with 10k samples almost always returns 0;
  // Karp-Luby keeps relative accuracy.
  Dnf f;
  f.probs = {1e-3, 1e-3, 1e-3, 1e-3};
  f.terms = {{0, 1}, {2, 3}};
  auto exact = ExactDnfProbability(f);
  ASSERT_TRUE(exact.ok());
  ASSERT_LT(*exact, 1e-5);
  Rng rng(3);
  double kl = KarpLubyEstimate(f, 20000, &rng);
  EXPECT_NEAR(kl / *exact, 1.0, 0.1);  // within 10% relative error
}

TEST(KarpLubyTest, SingleTermIsExactInExpectation) {
  Dnf f;
  f.probs = {0.3, 0.6};
  f.terms = {{0, 1}};
  Rng rng(5);
  // With one term every sample counts: the estimator is exactly P(T1).
  EXPECT_NEAR(KarpLubyEstimate(f, 10, &rng), 0.18, 1e-12);
}

TEST(KarpLubyTest, AgreesWithNaiveOnModerateFormulas) {
  Rng gen(555);
  for (int trial = 0; trial < 10; ++trial) {
    Dnf f;
    const int n = 6;
    for (int v = 0; v < n; ++v) f.probs.push_back(0.2 + 0.6 * gen.NextDouble());
    for (int t = 0; t < 4; ++t) {
      std::vector<int> term;
      term.push_back(static_cast<int>(gen.NextBounded(n)));
      term.push_back(static_cast<int>(gen.NextBounded(n)));
      f.terms.push_back(term);
    }
    f.Normalize();
    auto exact = ExactDnfProbability(f);
    ASSERT_TRUE(exact.ok());
    Rng r1(trial), r2(trial + 1000);
    EXPECT_NEAR(KarpLubyEstimate(f, 60000, &r1), *exact, 0.02);
    EXPECT_NEAR(NaiveDnfEstimate(f, 60000, &r2), *exact, 0.02);
  }
}

}  // namespace
}  // namespace dissodb
