// Tests for the Monte Carlo estimators (naive MC(x) and Karp-Luby).
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/infer/exact.h"
#include "src/infer/mc.h"
#include "src/lineage/formula.h"

namespace dissodb {
namespace {

Dnf Example7() {
  Dnf f;
  f.probs = {0.5, 0.4, 0.3};
  f.terms = {{0, 1}, {0, 2}};
  return f;
}

TEST(NaiveMcTest, DeterministicForFixedSeed) {
  Dnf f = Example7();
  Rng a(42), b(42);
  EXPECT_DOUBLE_EQ(NaiveDnfEstimate(f, 1000, &a), NaiveDnfEstimate(f, 1000, &b));
}

TEST(NaiveMcTest, ConvergesToExact) {
  Dnf f = Example7();
  auto exact = ExactDnfProbability(f);
  ASSERT_TRUE(exact.ok());
  Rng rng(7);
  double est = NaiveDnfEstimate(f, 200000, &rng);
  // stderr ~ sqrt(p(1-p)/n) ~ 0.001; allow 5 sigma.
  EXPECT_NEAR(est, *exact, 0.006);
}

TEST(NaiveMcTest, EmptyFormulaIsZero) {
  Dnf f;
  Rng rng(1);
  EXPECT_DOUBLE_EQ(NaiveDnfEstimate(f, 100, &rng), 0.0);
}

TEST(NaiveMcTest, CertainFormulaIsOne) {
  Dnf f;
  f.probs = {1.0};
  f.terms = {{0}};
  Rng rng(1);
  EXPECT_DOUBLE_EQ(NaiveDnfEstimate(f, 100, &rng), 1.0);
}

TEST(NaiveMcTest, VarianceShrinksWithSamples) {
  Dnf f = Example7();
  auto exact = ExactDnfProbability(f);
  ASSERT_TRUE(exact.ok());
  auto spread = [&](size_t samples, uint64_t seed0) {
    double mn = 1.0, mx = 0.0;
    for (uint64_t s = 0; s < 20; ++s) {
      Rng rng(seed0 + s);
      double est = NaiveDnfEstimate(f, samples, &rng);
      mn = std::min(mn, est);
      mx = std::max(mx, est);
    }
    return mx - mn;
  };
  EXPECT_GT(spread(50, 100), spread(50000, 200));
}

TEST(KarpLubyTest, ConvergesToExact) {
  Dnf f = Example7();
  auto exact = ExactDnfProbability(f);
  ASSERT_TRUE(exact.ok());
  Rng rng(11);
  auto est = KarpLubyEstimate(f, 200000, &rng);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(*est, *exact, 0.01);
}

TEST(KarpLubyTest, GoodOnTinyProbabilities) {
  // P(F) ~ 1e-6: naive MC with 10k samples almost always returns 0;
  // Karp-Luby keeps relative accuracy.
  Dnf f;
  f.probs = {1e-3, 1e-3, 1e-3, 1e-3};
  f.terms = {{0, 1}, {2, 3}};
  auto exact = ExactDnfProbability(f);
  ASSERT_TRUE(exact.ok());
  ASSERT_LT(*exact, 1e-5);
  Rng rng(3);
  auto kl = KarpLubyEstimate(f, 20000, &rng);
  ASSERT_TRUE(kl.ok());
  EXPECT_NEAR(*kl / *exact, 1.0, 0.1);  // within 10% relative error
}

TEST(KarpLubyTest, SingleTermIsExactInExpectation) {
  Dnf f;
  f.probs = {0.3, 0.6};
  f.terms = {{0, 1}};
  Rng rng(5);
  // With one term every sample counts: the estimator is exactly P(T1).
  auto est = KarpLubyEstimate(f, 10, &rng);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(*est, 0.18, 1e-12);
}

TEST(KarpLubyTest, EmptyFormulaIsAnErrorNotZero) {
  // "No lineage" must be distinguishable from a true probability of 0 —
  // the silent 0.0 fallback used to conflate them.
  Dnf f;
  Rng rng(1);
  auto est = KarpLubyEstimate(f, 100, &rng);
  EXPECT_FALSE(est.ok());
  EXPECT_EQ(est.status().code(), Status::Code::kInvalidArgument);
}

TEST(KarpLubyTest, ZeroSamplesIsAnError) {
  Dnf f = Example7();
  Rng rng(1);
  EXPECT_FALSE(KarpLubyEstimate(f, 0, &rng).ok());
}

TEST(KarpLubyTest, AllZeroWeightTermsIsTrueZero) {
  Dnf f;
  f.probs = {0.0, 0.5};
  f.terms = {{0, 1}};
  Rng rng(1);
  auto est = KarpLubyEstimate(f, 100, &rng);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(*est, 0.0);
}

TEST(KarpLubyTest, AgreesWithNaiveOnModerateFormulas) {
  Rng gen(555);
  for (int trial = 0; trial < 10; ++trial) {
    Dnf f;
    const int n = 6;
    for (int v = 0; v < n; ++v) f.probs.push_back(0.2 + 0.6 * gen.NextDouble());
    for (int t = 0; t < 4; ++t) {
      std::vector<int> term;
      term.push_back(static_cast<int>(gen.NextBounded(n)));
      term.push_back(static_cast<int>(gen.NextBounded(n)));
      f.terms.push_back(term);
    }
    f.Normalize();
    auto exact = ExactDnfProbability(f);
    ASSERT_TRUE(exact.ok());
    Rng r1(trial), r2(trial + 1000);
    auto kl = KarpLubyEstimate(f, 60000, &r1);
    ASSERT_TRUE(kl.ok());
    EXPECT_NEAR(*kl, *exact, 0.02);
    EXPECT_NEAR(NaiveDnfEstimate(f, 60000, &r2), *exact, 0.02);
  }
}

// ---------------------------------------------------------------------------
// McEstimator: the resumable batch estimator behind anytime refinement.
// ---------------------------------------------------------------------------

TEST(McEstimatorTest, MatchesNaiveEstimate) {
  Dnf f = Example7();
  Rng a(42), b(42);
  McEstimator est(&f);
  est.AddBatch(5000, &a);
  EXPECT_DOUBLE_EQ(est.Estimate(), NaiveDnfEstimate(f, 5000, &b));
  EXPECT_EQ(est.samples(), 5000u);
}

TEST(McEstimatorTest, HalfWidthShrinksAndBrackets) {
  Dnf f = Example7();
  auto exact = ExactDnfProbability(f);
  ASSERT_TRUE(exact.ok());
  McEstimator est(&f);
  EXPECT_TRUE(std::isinf(est.HalfWidth()));
  Rng rng(9);
  est.AddBatch(1000, &rng);
  const double hw_small = est.HalfWidth();
  est.AddBatch(100000, &rng);
  EXPECT_LT(est.HalfWidth(), hw_small);
  // ~4 sigma: the exact value lies inside the interval with overwhelming
  // probability for this fixed seed.
  EXPECT_GE(*exact, est.Estimate() - est.HalfWidth());
  EXPECT_LE(*exact, est.Estimate() + est.HalfWidth());
}

TEST(McEstimatorTest, CancelledBatchIsDiscardedWhole) {
  Dnf f = Example7();
  McEstimator est(&f);
  Rng warm(3);
  est.AddBatch(2048, &warm);
  const size_t samples_before = est.samples();
  const size_t hits_before = est.hits();
  Rng rng(4);
  // Cancelled from the start: the batch must fold in nothing at all.
  EXPECT_EQ(est.AddBatch(4096, &rng, [] { return true; }), 0u);
  EXPECT_EQ(est.samples(), samples_before);
  EXPECT_EQ(est.hits(), hits_before);
}

// The bit-reproducibility contract of anytime refinement: per-(plan,
// answer, round) seeds make the folded estimate independent of how many
// workers drain the batches and in which order they run.
TEST(McEstimatorTest, BitReproducibleAcrossWorkerCounts) {
  const uint64_t plan_fp = 0x8badf00dcafeULL;
  const int kAnswers = 16;
  const int kRounds = 4;
  std::vector<Dnf> formulas(kAnswers);
  Rng gen(99);
  for (int a = 0; a < kAnswers; ++a) {
    for (int v = 0; v < 8; ++v) formulas[a].probs.push_back(gen.NextDouble());
    for (int t = 0; t < 5; ++t) {
      formulas[a].terms.push_back(
          {static_cast<int>(gen.NextBounded(8)),
           static_cast<int>(gen.NextBounded(8))});
    }
    formulas[a].Normalize();
  }

  // Runs every (answer, round) batch partitioned over `workers` threads
  // and returns the per-answer estimates.
  auto run = [&](int workers) {
    std::vector<McEstimator> est;
    est.reserve(kAnswers);
    for (int a = 0; a < kAnswers; ++a) est.emplace_back(&formulas[a]);
    for (int round = 0; round < kRounds; ++round) {
      std::vector<std::thread> pool;
      for (int w = 0; w < workers; ++w) {
        pool.emplace_back([&, w] {
          for (int a = w; a < kAnswers; a += workers) {
            Rng rng(RefinementSeed(plan_fp, static_cast<uint64_t>(a),
                                   static_cast<uint64_t>(round)));
            est[a].AddBatch(1024 << round, &rng);
          }
        });
      }
      for (auto& t : pool) t.join();
    }
    std::vector<double> out;
    for (int a = 0; a < kAnswers; ++a) out.push_back(est[a].Estimate());
    return out;
  };

  const std::vector<double> one = run(1);
  for (int workers : {2, 8}) {
    const std::vector<double> many = run(workers);
    for (int a = 0; a < kAnswers; ++a) {
      // Bit-identical, not approximately equal.
      EXPECT_EQ(one[a], many[a]) << "answer " << a << " with " << workers
                                 << " workers";
    }
  }
}

}  // namespace
}  // namespace dissodb
