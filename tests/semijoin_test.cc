// Tests for the deterministic semi-join reduction (Opt. 3).
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_set>

#include "src/common/hash.h"
#include "src/dissociation/propagation.h"
#include "src/exec/bloom.h"
#include "src/exec/semijoin.h"
#include "src/workload/random_instance.h"
#include "tests/test_util.h"

namespace dissodb {
namespace {

using testing_util::AddTable;
using testing_util::Q;

TEST(SemiJoinTest, RemovesDanglingTuples) {
  auto q = Q("q() :- R(x), S(x,y), T(y)");
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.5}, {{2}, 0.5}, {{9}, 0.5}});
  AddTable(&db, "S", 2, {{{1, 4}, 0.5}, {{2, 5}, 0.5}, {{3, 6}, 0.5}});
  AddTable(&db, "T", 1, {{{4}, 0.5}, {{7}, 0.5}});
  SemiJoinStats stats;
  auto reduced = SemiJoinReduce(db, q, {}, &stats);
  ASSERT_TRUE(reduced.ok());
  // Only the path 1 -> 4 survives everywhere.
  EXPECT_EQ((*reduced)[0].NumRows(), 1u);  // R: {1}
  EXPECT_EQ((*reduced)[1].NumRows(), 1u);  // S: {(1,4)}
  EXPECT_EQ((*reduced)[2].NumRows(), 1u);  // T: {4}
  EXPECT_EQ(stats.rows_before[0], 3u);
  EXPECT_GE(stats.passes, 1);
}

TEST(SemiJoinTest, FullyJoinableInputUnchanged) {
  auto q = Q("q() :- R(x), S(x)");
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.5}, {{2}, 0.5}});
  AddTable(&db, "S", 1, {{{1}, 0.5}, {{2}, 0.5}});
  auto reduced = SemiJoinReduce(db, q);
  ASSERT_TRUE(reduced.ok());
  EXPECT_EQ((*reduced)[0].NumRows(), 2u);
  EXPECT_EQ((*reduced)[1].NumRows(), 2u);
}

TEST(SemiJoinTest, AppliesConstantSelections) {
  auto q = Q("q() :- R(x, 7)");
  Database db;
  AddTable(&db, "R", 2, {{{1, 7}, 0.5}, {{2, 8}, 0.5}});
  auto reduced = SemiJoinReduce(db, q);
  ASSERT_TRUE(reduced.ok());
  EXPECT_EQ((*reduced)[0].NumRows(), 1u);
}

TEST(SemiJoinTest, CascadingReductionNeedsMultiplePasses) {
  // Chain where dangling tuples cascade backwards: R1 -> R2 -> R3.
  auto q = Q("q() :- R1(x,y), R2(y,z), R3(z,u)");
  Database db;
  AddTable(&db, "R1", 2, {{{1, 2}, 0.5}});
  AddTable(&db, "R2", 2, {{{2, 3}, 0.5}, {{9, 9}, 0.5}});
  AddTable(&db, "R3", 2, {{{4, 5}, 0.5}});  // z=3 has no match!
  auto reduced = SemiJoinReduce(db, q);
  ASSERT_TRUE(reduced.ok());
  // Everything dies: R3 kills R2's (2,3), which kills R1's (1,2).
  EXPECT_EQ((*reduced)[0].NumRows(), 0u);
  EXPECT_EQ((*reduced)[1].NumRows(), 0u);
  EXPECT_EQ((*reduced)[2].NumRows(), 0u);
}

TEST(SemiJoinTest, PreservesAnswersAndScoresOnRandomInstances) {
  Rng rng(424242);
  RandomQuerySpec qspec;
  qspec.max_atoms = 4;
  qspec.max_vars = 4;
  for (int trial = 0; trial < 60; ++trial) {
    ConjunctiveQuery q = RandomQuery(&rng, qspec);
    Database db = RandomDatabaseFor(q, &rng);
    PropagationOptions plain;
    plain.opt3_semijoin_reduction = false;
    PropagationOptions with_sj;
    with_sj.opt3_semijoin_reduction = true;
    auto a = PropagationScore(db, q, plain);
    auto b = PropagationScore(db, q, with_sj);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->answers.size(), b->answers.size()) << q.ToString();
    for (size_t i = 0; i < a->answers.size(); ++i) {
      EXPECT_EQ(a->answers[i].tuple, b->answers[i].tuple) << q.ToString();
      EXPECT_NEAR(a->answers[i].score, b->answers[i].score, 1e-9)
          << q.ToString();
    }
  }
}

TEST(SemiJoinTest, RespectsOverrides) {
  auto q = Q("q() :- R(x), S(x)");
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.5}, {{2}, 0.5}});
  AddTable(&db, "S", 1, {{{1}, 0.5}, {{2}, 0.5}});
  Table small(RelationSchema::AllInt64("R", 1));
  small.AddRow({Value::Int64(2)}, 0.5);
  auto reduced = SemiJoinReduce(db, q, {{0, &small}});
  ASSERT_TRUE(reduced.ok());
  EXPECT_EQ((*reduced)[0].NumRows(), 1u);
  EXPECT_EQ((*reduced)[1].NumRows(), 1u);  // S reduced against override
}

// ---------------------------------------------------------------------------
// Blocked Bloom pre-filter: no false negatives ever, useful rejection on
// disjoint probes, and — consulted or not — identical reductions.
// ---------------------------------------------------------------------------

TEST(BlockedBloomFilterTest, NeverFalseNegative) {
  Rng rng(77);
  std::vector<uint64_t> keys;
  BlockedBloomFilter filter(10'000);
  for (int i = 0; i < 10'000; ++i) {
    keys.push_back(Mix64(rng.Next()));
    filter.Add(keys.back());
  }
  for (uint64_t h : keys) {
    ASSERT_TRUE(filter.MayContain(h));
  }
}

TEST(BlockedBloomFilterTest, RejectsMostDisjointProbes) {
  Rng rng(78);
  std::unordered_set<uint64_t> inserted;
  BlockedBloomFilter filter(10'000);
  while (inserted.size() < 10'000) {
    uint64_t h = Mix64(rng.Next());
    if (inserted.insert(h).second) filter.Add(h);
  }
  size_t passed = 0;
  const size_t probes = 20'000;
  for (size_t i = 0; i < probes;) {
    uint64_t h = Mix64(rng.Next());
    if (inserted.count(h)) continue;  // keep the probe set truly disjoint
    if (filter.MayContain(h)) ++passed;
    ++i;
  }
  // Sized at ~10 bits/key with k=2, the false-positive rate is a few
  // percent; 15% gives wide seed headroom while still proving the filter
  // short-circuits the overwhelming majority of dangling probes.
  EXPECT_LT(passed, probes * 15 / 100);
}

TEST(SemiJoinTest, BloomFilterDoesNotChangeReduction) {
  Rng rng(79);
  RandomQuerySpec qspec;
  qspec.max_atoms = 4;
  qspec.max_vars = 4;
  for (int trial = 0; trial < 20; ++trial) {
    ConjunctiveQuery q = RandomQuery(&rng, qspec);
    Database db = RandomDatabaseFor(q, &rng);

    SetSemiJoinBloomMinRowsForTesting(SIZE_MAX);
    SemiJoinStats off_stats;
    auto off = SemiJoinReduce(db, q, {}, &off_stats);
    SetSemiJoinBloomMinRowsForTesting(1);
    SemiJoinStats on_stats;
    auto on = SemiJoinReduce(db, q, {}, &on_stats);
    SetSemiJoinBloomMinRowsForTesting(4096);  // restore the default

    ASSERT_TRUE(off.ok());
    ASSERT_TRUE(on.ok());
    EXPECT_EQ(off_stats.bloom_filters_built, 0u);
    EXPECT_EQ(off_stats.bloom_probes_skipped, 0u);
    ASSERT_EQ(off->size(), on->size());
    for (size_t t = 0; t < off->size(); ++t) {
      const Table& a = (*off)[t];
      const Table& b = (*on)[t];
      ASSERT_EQ(a.NumRows(), b.NumRows()) << q.ToString() << " table " << t;
      for (size_t r = 0; r < a.NumRows(); ++r) {
        for (int c = 0; c < a.NumCols(); ++c) {
          ASSERT_EQ(a.At(r, c), b.At(r, c)) << q.ToString();
        }
        ASSERT_EQ(a.Weight(r), b.Weight(r)) << q.ToString();
      }
    }
  }
}

TEST(SemiJoinTest, ForcedBloomFiltersReportStats) {
  auto q = Q("q() :- R(x), S(x,y), T(y)");
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.5}, {{2}, 0.5}, {{9}, 0.5}});
  AddTable(&db, "S", 2, {{{1, 4}, 0.5}, {{2, 5}, 0.5}, {{3, 6}, 0.5}});
  AddTable(&db, "T", 1, {{{4}, 0.5}, {{7}, 0.5}});
  SetSemiJoinBloomMinRowsForTesting(1);
  SemiJoinStats stats;
  auto reduced = SemiJoinReduce(db, q, {}, &stats);
  SetSemiJoinBloomMinRowsForTesting(4096);
  ASSERT_TRUE(reduced.ok());
  // Same reduction as RemovesDanglingTuples, now through the filters.
  EXPECT_EQ((*reduced)[0].NumRows(), 1u);
  EXPECT_EQ((*reduced)[1].NumRows(), 1u);
  EXPECT_EQ((*reduced)[2].NumRows(), 1u);
  EXPECT_GT(stats.bloom_filters_built, 0u);
}

}  // namespace
}  // namespace dissodb
