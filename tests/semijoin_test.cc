// Tests for the deterministic semi-join reduction (Opt. 3).
#include <gtest/gtest.h>

#include "src/dissociation/propagation.h"
#include "src/exec/semijoin.h"
#include "src/workload/random_instance.h"
#include "tests/test_util.h"

namespace dissodb {
namespace {

using testing_util::AddTable;
using testing_util::Q;

TEST(SemiJoinTest, RemovesDanglingTuples) {
  auto q = Q("q() :- R(x), S(x,y), T(y)");
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.5}, {{2}, 0.5}, {{9}, 0.5}});
  AddTable(&db, "S", 2, {{{1, 4}, 0.5}, {{2, 5}, 0.5}, {{3, 6}, 0.5}});
  AddTable(&db, "T", 1, {{{4}, 0.5}, {{7}, 0.5}});
  SemiJoinStats stats;
  auto reduced = SemiJoinReduce(db, q, {}, &stats);
  ASSERT_TRUE(reduced.ok());
  // Only the path 1 -> 4 survives everywhere.
  EXPECT_EQ((*reduced)[0].NumRows(), 1u);  // R: {1}
  EXPECT_EQ((*reduced)[1].NumRows(), 1u);  // S: {(1,4)}
  EXPECT_EQ((*reduced)[2].NumRows(), 1u);  // T: {4}
  EXPECT_EQ(stats.rows_before[0], 3u);
  EXPECT_GE(stats.passes, 1);
}

TEST(SemiJoinTest, FullyJoinableInputUnchanged) {
  auto q = Q("q() :- R(x), S(x)");
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.5}, {{2}, 0.5}});
  AddTable(&db, "S", 1, {{{1}, 0.5}, {{2}, 0.5}});
  auto reduced = SemiJoinReduce(db, q);
  ASSERT_TRUE(reduced.ok());
  EXPECT_EQ((*reduced)[0].NumRows(), 2u);
  EXPECT_EQ((*reduced)[1].NumRows(), 2u);
}

TEST(SemiJoinTest, AppliesConstantSelections) {
  auto q = Q("q() :- R(x, 7)");
  Database db;
  AddTable(&db, "R", 2, {{{1, 7}, 0.5}, {{2, 8}, 0.5}});
  auto reduced = SemiJoinReduce(db, q);
  ASSERT_TRUE(reduced.ok());
  EXPECT_EQ((*reduced)[0].NumRows(), 1u);
}

TEST(SemiJoinTest, CascadingReductionNeedsMultiplePasses) {
  // Chain where dangling tuples cascade backwards: R1 -> R2 -> R3.
  auto q = Q("q() :- R1(x,y), R2(y,z), R3(z,u)");
  Database db;
  AddTable(&db, "R1", 2, {{{1, 2}, 0.5}});
  AddTable(&db, "R2", 2, {{{2, 3}, 0.5}, {{9, 9}, 0.5}});
  AddTable(&db, "R3", 2, {{{4, 5}, 0.5}});  // z=3 has no match!
  auto reduced = SemiJoinReduce(db, q);
  ASSERT_TRUE(reduced.ok());
  // Everything dies: R3 kills R2's (2,3), which kills R1's (1,2).
  EXPECT_EQ((*reduced)[0].NumRows(), 0u);
  EXPECT_EQ((*reduced)[1].NumRows(), 0u);
  EXPECT_EQ((*reduced)[2].NumRows(), 0u);
}

TEST(SemiJoinTest, PreservesAnswersAndScoresOnRandomInstances) {
  Rng rng(424242);
  RandomQuerySpec qspec;
  qspec.max_atoms = 4;
  qspec.max_vars = 4;
  for (int trial = 0; trial < 60; ++trial) {
    ConjunctiveQuery q = RandomQuery(&rng, qspec);
    Database db = RandomDatabaseFor(q, &rng);
    PropagationOptions plain;
    plain.opt3_semijoin_reduction = false;
    PropagationOptions with_sj;
    with_sj.opt3_semijoin_reduction = true;
    auto a = PropagationScore(db, q, plain);
    auto b = PropagationScore(db, q, with_sj);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->answers.size(), b->answers.size()) << q.ToString();
    for (size_t i = 0; i < a->answers.size(); ++i) {
      EXPECT_EQ(a->answers[i].tuple, b->answers[i].tuple) << q.ToString();
      EXPECT_NEAR(a->answers[i].score, b->answers[i].score, 1e-9)
          << q.ToString();
    }
  }
}

TEST(SemiJoinTest, RespectsOverrides) {
  auto q = Q("q() :- R(x), S(x)");
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.5}, {{2}, 0.5}});
  AddTable(&db, "S", 1, {{{1}, 0.5}, {{2}, 0.5}});
  Table small(RelationSchema::AllInt64("R", 1));
  small.AddRow({Value::Int64(2)}, 0.5);
  auto reduced = SemiJoinReduce(db, q, {{0, &small}});
  ASSERT_TRUE(reduced.ok());
  EXPECT_EQ((*reduced)[0].NumRows(), 1u);
  EXPECT_EQ((*reduced)[1].NumRows(), 1u);  // S reduced against override
}

}  // namespace
}  // namespace dissodb
