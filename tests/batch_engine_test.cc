// Batch serving path: RunBatch determinism against sequential Run, subplan
// sharing through the result cache, and database-version invalidation.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/engine/query_engine.h"
#include "src/workload/random_instance.h"
#include "src/workload/synthetic.h"
#include "tests/test_util.h"

namespace dissodb {
namespace {

using testing_util::AddTable;
using testing_util::Q;

void ExpectSameRankings(const std::vector<RankedAnswer>& a,
                        const std::vector<RankedAnswer>& b,
                        const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tuple, b[i].tuple) << what << " row " << i;
    // Bit-identical, not approximately equal: the batch path must perform
    // the same floating-point operations in the same order.
    EXPECT_EQ(a[i].score, b[i].score) << what << " row " << i;
  }
}

TEST(BatchEngineTest, RunBatchMatchesSequentialRunOnRandomInstances) {
  for (int seed = 0; seed < 30; ++seed) {
    Rng rng(9000 + seed);
    RandomQuerySpec qs;
    qs.min_atoms = 1;
    qs.max_atoms = 3;
    ConjunctiveQuery q = RandomQuery(&rng, qs);
    Database db = RandomDatabaseFor(q, &rng);

    QueryEngine sequential = QueryEngine::Borrow(db);
    auto expected = sequential.Run(q);

    QueryEngine batch_engine = QueryEngine::Borrow(db);
    // Duplicates in the batch exercise the result-cache sharing path.
    auto got = batch_engine.RunBatch(
        std::vector<ConjunctiveQuery>{q, q, q});
    ASSERT_EQ(expected.ok(), got.ok()) << "seed " << seed;
    if (!expected.ok()) continue;
    ASSERT_EQ(got->size(), 3u);
    for (const auto& r : *got) {
      ExpectSameRankings(expected->answers, r.answers,
                         "seed " + std::to_string(seed));
    }
  }
}

TEST(BatchEngineTest, OverlappingWorkloadSharesSubplansThroughCache) {
  ChainSpec spec;
  spec.k = 4;
  spec.n = 300;
  spec.seed = 5;
  Database db = MakeChainDatabase(spec);
  ConjunctiveQuery q = MakeChainQuery(4);

  QueryEngine engine = QueryEngine::Borrow(db);
  // Warm the cache with a single-query batch first: on a many-core pool,
  // 8 concurrent duplicates could otherwise all miss before the first Put
  // lands (a documented benign race) and make the hit assertions flaky.
  auto warm = engine.RunBatch(std::vector<ConjunctiveQuery>{q});
  ASSERT_TRUE(warm.ok());
  std::vector<ConjunctiveQuery> workload(8, q);
  auto results = engine.RunBatch(workload);
  ASSERT_TRUE(results.ok()) << results.status().ToString();

  // The first evaluation fills the cache; the duplicates are served from
  // it (a duplicate query's root subplan is a cache hit, so it evaluates
  // zero nodes).
  EngineStats s = engine.stats();
  EXPECT_GT(s.result_cache_hits, 0u);
  EXPECT_GT(s.result_cache_entries, 0u);
  EXPECT_EQ(s.batch_queries, 9u);  // 1 warm-up + 8 workload queries
  EXPECT_GT(s.tasks_executed, 0u);
  size_t total_hits = 0;
  for (const auto& r : *results) total_hits += r.result_cache_hits;
  EXPECT_GT(total_hits, 0u);

  // Sequential Run never touches the result cache (its semantics measure
  // evaluation), so hits stay put.
  auto single = engine.Run(q);
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single->result_cache_hits, 0u);
  EXPECT_EQ(engine.stats().result_cache_hits, s.result_cache_hits);
}

TEST(BatchEngineTest, IdenticalConcurrentQueriesComputeEachSubplanOnce) {
  ChainSpec spec;
  spec.k = 4;
  spec.n = 400;
  spec.seed = 29;
  auto db = std::make_shared<const Database>(MakeChainDatabase(spec));
  ConjunctiveQuery q = MakeChainQuery(4);

  // Reference: a single-query batch computes each cacheable subplan once;
  // its miss count is the number of distinct cacheable subplans C.
  size_t distinct_subplans;
  {
    QueryEngine engine(db);
    auto r = engine.RunBatch(std::vector<ConjunctiveQuery>{q});
    ASSERT_TRUE(r.ok());
    distinct_subplans = engine.stats().result_cache_misses;
    ASSERT_GT(distinct_subplans, 0u);
  }

  // 16 identical queries racing on a cold cache: in-flight dedup must keep
  // the number of actual computations at exactly C — concurrent duplicates
  // wait on the leader's future instead of computing twice.
  constexpr size_t kDup = 16;
  EngineOptions opts;
  opts.num_threads = 8;
  QueryEngine engine(db, opts);
  QueryEngine reference(db);
  auto expected = reference.Run(q);
  ASSERT_TRUE(expected.ok());
  auto results = engine.RunBatch(std::vector<ConjunctiveQuery>(kDup, q));
  ASSERT_TRUE(results.ok()) << results.status().ToString();

  EngineStats s = engine.stats();
  EXPECT_EQ(s.result_cache_misses, distinct_subplans)
      << "a duplicate subplan computed twice in one batch";
  // Every duplicate query was served at least its root subplan without
  // computing (by plain hit or by waiting on the in-flight leader).
  EXPECT_GE(s.result_cache_hits + s.result_cache_in_flight_waits, kDup - 1);
  for (const auto& r : *results) {
    ExpectSameRankings(expected->answers, r.answers, "dedup batch");
  }
}

TEST(BatchEngineTest, MutationBumpsVersionAndInvalidatesCachedResults) {
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.7}});
  AddTable(&db, "S", 2, {{{1, 10}, 0.9}});
  AddTable(&db, "T", 1, {{{10}, 0.6}});
  const uint64_t v0 = db.version();

  QueryEngine engine = QueryEngine::Borrow(db);
  ConjunctiveQuery q = Q("q() :- R(x), S(x,y), T(y)");
  auto before = engine.RunBatch(std::vector<ConjunctiveQuery>{q, q});
  ASSERT_TRUE(before.ok());
  const double score_before = (*before)[0].answers[0].score;
  EXPECT_GT(engine.stats().result_cache_hits, 0u);

  // Mutate a base probability: the version counter moves and every cached
  // subplan becomes stale.
  db.mutable_table(0)->SetProb(0, 0.1);
  EXPECT_GT(db.version(), v0);

  auto after = engine.RunBatch(std::vector<ConjunctiveQuery>{q});
  ASSERT_TRUE(after.ok());
  const double score_after = (*after)[0].answers[0].score;
  EXPECT_NE(score_before, score_after);

  // The stale-entry discard counts as an eviction, and the recomputed
  // score must match a fresh engine with no cache history.
  EXPECT_GT(engine.stats().result_cache_evictions, 0u);
  QueryEngine fresh = QueryEngine::Borrow(db);
  auto expected = fresh.Run(q);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(score_after, expected->answers[0].score);
}

TEST(BatchEngineTest, MultiThreadedBatchIsDeterministic) {
  ChainSpec spec;
  spec.k = 5;
  spec.n = 400;
  spec.seed = 17;
  auto db = std::make_shared<const Database>(MakeChainDatabase(spec));

  // Sequential reference rankings, one engine per run to avoid any cache
  // interaction.
  std::vector<ConjunctiveQuery> workload;
  for (int k = 2; k <= 5; ++k) {
    for (int rep = 0; rep < 5; ++rep) workload.push_back(MakeChainQuery(k));
  }
  std::vector<std::vector<RankedAnswer>> expected;
  {
    QueryEngine sequential(db);
    for (const auto& q : workload) {
      auto r = sequential.Run(q);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      expected.push_back(r->answers);
    }
  }

  EngineOptions opts;
  opts.num_threads = 4;
  QueryEngine engine(db, opts);
  for (int round = 0; round < 3; ++round) {
    auto results = engine.RunBatch(workload);
    ASSERT_TRUE(results.ok()) << results.status().ToString();
    ASSERT_EQ(results->size(), workload.size());
    for (size_t i = 0; i < workload.size(); ++i) {
      ExpectSameRankings(expected[i], (*results)[i].answers,
                         "round " + std::to_string(round) + " query " +
                             std::to_string(i));
    }
  }
  EXPECT_GT(engine.stats().result_cache_hits, 0u);
}

TEST(BatchEngineTest, BatchFromDatalogTextsAndEmptyBatch) {
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.7}, {{2}, 0.5}});
  AddTable(&db, "S", 2, {{{1, 10}, 0.9}, {{2, 20}, 0.8}});
  QueryEngine engine = QueryEngine::Borrow(db);

  auto empty = engine.RunBatch(std::vector<ConjunctiveQuery>{});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());

  auto res = engine.RunBatch(std::vector<std::string>{
      "q(x) :- R(x), S(x,y)", "q() :- R(x)"});
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res->size(), 2u);
  EXPECT_EQ((*res)[0].answers.size(), 2u);
  EXPECT_EQ((*res)[1].answers.size(), 1u);

  auto bad = engine.RunBatch(std::vector<std::string>{"q(x) :- "});
  EXPECT_FALSE(bad.ok());
}

TEST(BatchEngineTest, ResultCacheDisabledStillMatchesSequential) {
  ChainSpec spec;
  spec.k = 3;
  spec.n = 150;
  spec.seed = 23;
  Database db = MakeChainDatabase(spec);
  ConjunctiveQuery q = MakeChainQuery(3);

  EngineOptions opts;
  opts.result_cache_capacity = 0;
  QueryEngine engine = QueryEngine::Borrow(db, opts);
  auto seq = engine.Run(q);
  ASSERT_TRUE(seq.ok());
  auto batch = engine.RunBatch(std::vector<ConjunctiveQuery>{q, q});
  ASSERT_TRUE(batch.ok());
  for (const auto& r : *batch) {
    ExpectSameRankings(seq->answers, r.answers, "no-cache batch");
  }
  EXPECT_EQ(engine.stats().result_cache_hits, 0u);
}

}  // namespace
}  // namespace dissodb
