// Tests for Algorithm 1 (EnumerateMinimalPlans) and its schema-knowledge
// refinements (Sections 3.3.1-3.3.2, Theorems 20/24/27).
#include <gtest/gtest.h>

#include <set>

#include "src/dissociation/minimal_plans.h"
#include "src/plan/plan_print.h"
#include "src/workload/synthetic.h"
#include "tests/test_util.h"

namespace dissodb {
namespace {

using testing_util::Q;
using testing_util::Vars;

SchemaKnowledge WithDet(const ConjunctiveQuery& q, std::vector<bool> det) {
  SchemaKnowledge sk = SchemaKnowledge::None(q);
  sk.deterministic = std::move(det);
  return sk;
}

TEST(MinimalPlansTest, SafeQueryReturnsItsUniqueSafePlan) {
  // Conservativity: a safe query has exactly one minimal plan — the safe
  // plan — so dissociation computes the exact probability.
  for (const char* text :
       {"q() :- R(x), S(x,y)", "q1(z) :- R(z,x), S(x,y), K(x,y)",
        "q() :- R(x,y), S(y,z), T(y,z,u)", "q() :- R(x)",
        "q(y) :- R(x), S(x,y), T(y)"}) {
    auto q = Q(text);
    ASSERT_TRUE(IsHierarchical(q)) << text;
    auto plans = EnumerateMinimalPlans(q);
    ASSERT_TRUE(plans.ok()) << text;
    ASSERT_EQ(plans->size(), 1u) << text;
    EXPECT_TRUE(IsSafePlan((*plans)[0], q.HeadMask())) << text;
    EXPECT_TRUE(ExtractDissociation((*plans)[0], q).IsEmpty()) << text;
  }
}

TEST(MinimalPlansTest, UnsafeQueryReturnsMultipleUnsafePlans) {
  auto q = Q("q() :- R(x), S(x,y), T(y)");
  auto plans = EnumerateMinimalPlans(q);
  ASSERT_TRUE(plans.ok());
  ASSERT_EQ(plans->size(), 2u);
  for (const auto& p : *plans) {
    Dissociation d = ExtractDissociation(p, q);
    EXPECT_FALSE(d.IsEmpty());
    EXPECT_TRUE(IsSafeDissociation(q, d));
  }
}

TEST(MinimalPlansTest, IntroQ2PlansMatchPaper) {
  // q2(z) :- R(z,x), S(x,y), T(y): minimal dissociations are
  // T' gains x (plan P'2) and R' gains y (plan P''2).
  auto q = Q("q2(z) :- R(z,x), S(x,y), T(y)");
  auto plans = EnumerateMinimalPlans(q);
  ASSERT_TRUE(plans.ok());
  ASSERT_EQ(plans->size(), 2u);
  std::set<std::string> keys;
  for (const auto& p : *plans) {
    Dissociation d = ExtractDissociation(p, q);
    keys.insert(d.ToString(q));
  }
  Dissociation t_gains_x = Dissociation::Empty(q);
  t_gains_x.extra[2] = Vars(q, {"x"});
  Dissociation r_gains_y = Dissociation::Empty(q);
  r_gains_y.extra[0] = Vars(q, {"y"});
  EXPECT_TRUE(keys.count(t_gains_x.ToString(q)));
  EXPECT_TRUE(keys.count(r_gains_y.ToString(q)));
}

TEST(MinimalPlansTest, IsSafeQueryAgreesWithHierarchy) {
  for (const char* text :
       {"q() :- R(x), S(x,y)", "q() :- R(x), S(x,y), T(y)",
        "q() :- R(x,y), S(y,z), T(y,z,u)", "q() :- R(x,y), S(y,z), T(z,u)",
        "q(z) :- R(z,x), S(x,y), K(x,y)"}) {
    auto q = Q(text);
    auto safe = IsSafeQuery(q, SchemaKnowledge::None(q));
    ASSERT_TRUE(safe.ok()) << text;
    EXPECT_EQ(*safe, IsHierarchical(q)) << text;
  }
}

// ----- Deterministic relations (Section 3.3.1, Example 23) -----

TEST(MinimalPlansTest, DeterministicTMakesRstSafe) {
  // q :- R(x), S(x,y), T^d(y) is safe: the algorithm must return one plan.
  auto q = Q("q() :- R(x), S(x,y), T(y)");
  SchemaKnowledge sk = WithDet(q, {false, false, true});
  auto plans = EnumerateMinimalPlans(q, sk);
  ASSERT_TRUE(plans.ok());
  ASSERT_EQ(plans->size(), 1u);
  // The plan corresponds to Delta2: only T^d dissociates (on x).
  Dissociation d = ExtractDissociation((*plans)[0], q);
  EXPECT_EQ(d.extra[0], 0u);
  EXPECT_EQ(d.extra[1], 0u);
  EXPECT_EQ(d.extra[2], Vars(q, {"x"}));
  auto safe = IsSafeQuery(q, sk);
  ASSERT_TRUE(safe.ok());
  EXPECT_TRUE(*safe);
}

TEST(MinimalPlansTest, DeterministicRAndTGiveJoinAllPlan) {
  // q :- R^d(x), S(x,y), T^d(y): at most one probabilistic relation left,
  // so the stopping rule returns the single join-all plan (Delta3's plan).
  auto q = Q("q() :- R(x), S(x,y), T(y)");
  SchemaKnowledge sk = WithDet(q, {true, false, true});
  auto plans = EnumerateMinimalPlans(q, sk);
  ASSERT_TRUE(plans.ok());
  ASSERT_EQ(plans->size(), 1u);
  Dissociation d = ExtractDissociation((*plans)[0], q);
  EXPECT_EQ(d.extra[0], Vars(q, {"y"}));
  EXPECT_EQ(d.extra[2], Vars(q, {"x"}));
  EXPECT_EQ(d.extra[1], 0u);
}

TEST(MinimalPlansTest, DisablingDrKnowledgeRestoresTwoPlans) {
  auto q = Q("q() :- R(x), S(x,y), T(y)");
  SchemaKnowledge sk = WithDet(q, {false, false, true});
  PlanEnumOptions opts;
  opts.use_deterministic = false;
  auto plans = EnumerateMinimalPlans(q, sk, opts);
  ASSERT_TRUE(plans.ok());
  EXPECT_EQ(plans->size(), 2u);
}

TEST(MinimalPlansTest, AllDeterministicGivesSingleJoinAll) {
  auto q = Q("q() :- R(x), S(x,y), T(y)");
  SchemaKnowledge sk = WithDet(q, {true, true, true});
  auto plans = EnumerateMinimalPlans(q, sk);
  ASSERT_TRUE(plans.ok());
  ASSERT_EQ(plans->size(), 1u);
}

// ----- Functional dependencies (Section 3.3.2) -----

TEST(MinimalPlansTest, FdMakesRstSafe) {
  // With S: x -> y, the query q :- R(x), S(x,y), T(y) is safe.
  auto q = Q("q() :- R(x), S(x,y), T(y)");
  SchemaKnowledge sk = SchemaKnowledge::None(q);
  sk.fds.push_back(QueryFD{Vars(q, {"x"}), Vars(q, {"y"})});
  auto plans = EnumerateMinimalPlans(q, sk);
  ASSERT_TRUE(plans.ok());
  ASSERT_EQ(plans->size(), 1u);
  auto safe = IsSafeQuery(q, sk);
  ASSERT_TRUE(safe.ok());
  EXPECT_TRUE(*safe);
  // The chase dissociates R on y (closure of {x} is {x,y}).
  Dissociation chase = ChaseDissociation(q, sk);
  EXPECT_EQ(chase.extra[0], Vars(q, {"y"}));
  EXPECT_EQ(chase.extra[1], 0u);
  EXPECT_EQ(chase.extra[2], 0u);
}

TEST(MinimalPlansTest, FdInOtherDirectionAlsoMakesSafe) {
  // y -> x on S is symmetric: the chase dissociates T on x (in closure(y)),
  // q^{Delta_Gamma} is hierarchical, and a single exact plan remains
  // (Lemma 25 / Proposition 26).
  auto q = Q("q() :- R(x), S(x,y), T(y)");
  SchemaKnowledge sk = SchemaKnowledge::None(q);
  sk.fds.push_back(QueryFD{Vars(q, {"y"}), Vars(q, {"x"})});
  auto plans = EnumerateMinimalPlans(q, sk);
  ASSERT_TRUE(plans.ok());
  EXPECT_EQ(plans->size(), 1u);
  Dissociation chase = ChaseDissociation(q, sk);
  EXPECT_EQ(chase.extra[2], Vars(q, {"x"}));
}

TEST(MinimalPlansTest, ChainQueryCountsWithoutKnowledge) {
  for (int k = 2; k <= 6; ++k) {
    auto q = MakeChainQuery(k);
    auto plans = EnumerateMinimalPlans(q);
    ASSERT_TRUE(plans.ok());
    const uint64_t catalan[] = {1, 2, 5, 14, 42};
    EXPECT_EQ(plans->size(), catalan[k - 2]) << k;
    // All plans distinct structurally.
    std::set<std::string> keys;
    for (const auto& p : *plans) keys.insert(CanonicalKey(p));
    EXPECT_EQ(keys.size(), plans->size()) << k;
  }
}

TEST(MinimalPlansTest, DeterministicPetalCollapsesStar) {
  // 2-star q :- R1(x1), R2(x2), R0(x1,x2) has 2 minimal plans. With R1
  // deterministic, cutting x1 no longer separates two probabilistic
  // components, so only the x2 cut survives: a single plan.
  auto q = MakeStarQuery(2);
  SchemaKnowledge sk = SchemaKnowledge::None(q);
  sk.deterministic = {true, false, false};  // atoms: R1, R2, R0
  auto plans = EnumerateMinimalPlans(q, sk);
  ASSERT_TRUE(plans.ok());
  EXPECT_EQ(plans->size(), 1u);
  auto none = EnumerateMinimalPlans(q);
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none->size(), 2u);
}

TEST(MinimalPlansTest, PlansProjectToQueryHead) {
  auto q = Q("q(z) :- R(z,x), S(x,y), T(y)");
  auto plans = EnumerateMinimalPlans(q);
  ASSERT_TRUE(plans.ok());
  for (const auto& p : *plans) {
    EXPECT_EQ(p->head, q.HeadMask()) << PlanToString(p, q);
  }
}

}  // namespace
}  // namespace dissodb
