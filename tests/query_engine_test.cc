// QueryEngine facade: pipeline parity with PropagationScore, plan caching,
// datalog entry point, overrides, and concurrent read-only queries.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "src/dissociation/propagation.h"
#include "src/engine/query_engine.h"
#include "src/workload/random_instance.h"
#include "src/workload/synthetic.h"
#include "tests/test_util.h"

namespace dissodb {
namespace {

using testing_util::AddTable;
using testing_util::Q;

Database RstDatabase() {
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.7}, {{2}, 0.5}});
  AddTable(&db, "S", 2, {{{1, 10}, 0.9}, {{1, 20}, 0.4}, {{2, 20}, 0.8}});
  AddTable(&db, "T", 1, {{{10}, 0.6}, {{20}, 0.3}});
  return db;
}

TEST(QueryEngineTest, MatchesPropagationScoreOnRandomInstances) {
  for (int seed = 0; seed < 50; ++seed) {
    Rng rng(7000 + seed);
    RandomQuerySpec qs;
    qs.min_atoms = 1;
    qs.max_atoms = 3;
    ConjunctiveQuery q = RandomQuery(&rng, qs);
    Database db = RandomDatabaseFor(q, &rng);

    auto expected = PropagationScore(db, q);
    QueryEngine engine = QueryEngine::Borrow(db);
    auto got = engine.Run(q);
    ASSERT_EQ(expected.ok(), got.ok()) << "seed " << seed;
    if (!expected.ok()) continue;
    ASSERT_EQ(got->answers.size(), expected->answers.size()) << "seed " << seed;
    for (size_t i = 0; i < got->answers.size(); ++i) {
      EXPECT_EQ(got->answers[i].tuple, expected->answers[i].tuple);
      EXPECT_DOUBLE_EQ(got->answers[i].score, expected->answers[i].score);
    }
    EXPECT_EQ(got->num_minimal_plans, expected->num_minimal_plans);
  }
}

TEST(QueryEngineTest, ParsesDatalogAndRanksAnswers) {
  Database db = RstDatabase();
  QueryEngine engine = QueryEngine::Borrow(db);
  auto res = engine.Run("q(x) :- R(x), S(x,y), T(y)");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res->answers.size(), 2u);
  EXPECT_GE(res->answers[0].score, res->answers[1].score);
}

TEST(QueryEngineTest, PlanCacheHitsOnRepeatedQueries) {
  Database db = RstDatabase();
  QueryEngine engine = QueryEngine::Borrow(db);
  auto r1 = engine.Run("q() :- R(x), S(x,y), T(y)");
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(r1->from_plan_cache);
  auto r2 = engine.Run("q() :- R(x), S(x,y), T(y)");
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->from_plan_cache);
  // Same query, different surface syntax -> same canonical key.
  auto r3 = engine.Run("q()  :-  R(x) , S(x , y), T(y).");
  ASSERT_TRUE(r3.ok());
  EXPECT_TRUE(r3->from_plan_cache);
  EXPECT_EQ(r1->answers[0].score, r2->answers[0].score);
  EXPECT_EQ(engine.stats().plan_cache_hits, 2u);
  EXPECT_EQ(engine.stats().plan_cache_misses, 1u);
}

TEST(QueryEngineTest, PlanCacheEvictionIsTrueLru) {
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.7}});
  AddTable(&db, "S", 2, {{{1, 10}, 0.9}});
  AddTable(&db, "T", 1, {{{10}, 0.6}});
  EngineOptions opts;
  opts.plan_cache_capacity = 2;
  QueryEngine engine = QueryEngine::Borrow(db, opts);

  const std::string a = "q() :- R(x)";
  const std::string b = "q() :- S(x,y)";
  const std::string c = "q() :- T(x)";

  ASSERT_TRUE(engine.Run(a).ok());  // cache: [A]
  ASSERT_TRUE(engine.Run(b).ok());  // cache: [B, A]
  // Touch A: under FIFO this would not matter; under LRU it makes B the
  // eviction victim.
  auto a_hit = engine.Run(a);  // cache: [A, B]
  ASSERT_TRUE(a_hit.ok());
  EXPECT_TRUE(a_hit->from_plan_cache);
  ASSERT_TRUE(engine.Run(c).ok());  // evicts B -> cache: [C, A]

  auto a_again = engine.Run(a);
  ASSERT_TRUE(a_again.ok());
  EXPECT_TRUE(a_again->from_plan_cache) << "LRU must keep the touched entry";
  auto b_again = engine.Run(b);
  ASSERT_TRUE(b_again.ok());
  EXPECT_FALSE(b_again->from_plan_cache) << "LRU must have evicted B";
  // Misses: A, B, C, and B recompiled after eviction.
  EXPECT_EQ(engine.stats().plan_cache_misses, 4u);
}

TEST(QueryEngineTest, CacheCapacityZeroDisablesCaching) {
  Database db = RstDatabase();
  EngineOptions opts;
  opts.plan_cache_capacity = 0;
  QueryEngine engine = QueryEngine::Borrow(db, opts);
  (void)engine.Run("q() :- R(x), S(x,y), T(y)");
  auto r2 = engine.Run("q() :- R(x), S(x,y), T(y)");
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2->from_plan_cache);
}

TEST(QueryEngineTest, RunBooleanMatchesPropagationScoreBoolean) {
  Database db = RstDatabase();
  ConjunctiveQuery q = Q("q() :- R(x), S(x,y), T(y)");
  auto expected = PropagationScoreBoolean(db, q);
  QueryEngine engine = QueryEngine::Borrow(db);
  auto got = engine.RunBoolean("q() :- R(x), S(x,y), T(y)");
  ASSERT_TRUE(got.ok());
  EXPECT_DOUBLE_EQ(*got, *expected);
}

TEST(QueryEngineTest, OverridesRebindAtoms) {
  Database db = RstDatabase();
  Table small(RelationSchema::AllInt64("R", 1));
  small.AddRow({Value::Int64(2)}, 0.5);
  QueryEngine engine = QueryEngine::Borrow(db);
  ConjunctiveQuery q = Q("q(x) :- R(x), S(x,y), T(y)");
  auto res = engine.Run(q, {{0, &small}});
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->answers.size(), 1u);
  EXPECT_EQ(res->answers[0].tuple[0], Value::Int64(2));
}

TEST(QueryEngineTest, UnknownStringConstantSelectsNothing) {
  Database db;
  Table t(RelationSchema{"Person",
                         {"name"},
                         {ValueType::kString},
                         false,
                         {}});
  t.AddRow({db.Str("alice")}, 0.9);
  (void)db.AddTable(std::move(t));
  QueryEngine engine = QueryEngine::Borrow(db);
  auto hit = engine.Run("q() :- Person('alice')");
  ASSERT_TRUE(hit.ok()) << hit.status().ToString();
  ASSERT_EQ(hit->answers.size(), 1u);
  EXPECT_DOUBLE_EQ(hit->answers[0].score, 0.9);
  // 'bob' was never interned: parse succeeds read-only, matches no tuple.
  auto miss = engine.Run("q() :- Person('bob')");
  ASSERT_TRUE(miss.ok()) << miss.status().ToString();
  EXPECT_TRUE(miss->answers.empty());
}

TEST(QueryEngineTest, ConcurrentQueriesOverSharedEngine) {
  ChainSpec spec;
  spec.k = 3;
  spec.n = 200;
  spec.seed = 11;
  auto db = std::make_shared<const Database>(MakeChainDatabase(spec));
  QueryEngine engine(db);
  ConjunctiveQuery q = MakeChainQuery(3);

  auto baseline = engine.Run(q);
  ASSERT_TRUE(baseline.ok());

  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 20;
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kQueriesPerThread; ++i) {
        auto r = engine.Run(q);
        if (!r.ok() || r->answers.size() != baseline->answers.size()) {
          ++failures[t];
          continue;
        }
        for (size_t a = 0; a < r->answers.size(); ++a) {
          if (r->answers[a].score != baseline->answers[a].score) ++failures[t];
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0) << t;
  EXPECT_EQ(engine.stats().queries,
            1u + kThreads * static_cast<size_t>(kQueriesPerThread));
}

}  // namespace
}  // namespace dissodb
