// Tests for the workload generators (TPC-H-like, chains, stars, random).
#include <gtest/gtest.h>

#include <set>

#include "src/common/string_util.h"
#include "src/query/analysis.h"
#include "src/exec/deterministic.h"
#include "src/workload/random_instance.h"
#include "src/workload/synthetic.h"
#include "src/workload/tpch.h"

namespace dissodb {
namespace {

TEST(TpchTest, CardinalityRatios) {
  TpchOptions opts;
  opts.scale = 0.01;  // 100 suppliers, 2000 parts, 8000 partsupps
  Database db = MakeTpchDatabase(opts);
  auto s = db.GetTable("Supplier");
  auto p = db.GetTable("Part");
  auto ps = db.GetTable("Partsupp");
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(ps.ok());
  EXPECT_EQ((*s)->NumRows(), 100u);
  EXPECT_EQ((*p)->NumRows(), 2000u);
  EXPECT_EQ((*ps)->NumRows(), 8000u);  // 4 per part
}

// Fingerprint: samples probabilities across all tables.
double DbProbe(const Database& db) {
  double acc = 0;
  for (int i = 0; i < db.NumTables(); ++i) {
    const Table& t = db.table(i);
    for (size_t r = 0; r < t.NumRows(); r += 7) acc += t.Prob(r);
  }
  return acc;
}

TEST(TpchTest, DeterministicForSameSeed) {
  TpchOptions opts;
  opts.scale = 0.005;
  Database a = MakeTpchDatabase(opts);
  Database b = MakeTpchDatabase(opts);
  EXPECT_EQ(DbProbe(a), DbProbe(b));
}

TEST(TpchTest, NationKeysInRange) {
  TpchOptions opts;
  opts.scale = 0.01;
  Database db = MakeTpchDatabase(opts);
  const Table& s = **db.GetTable("Supplier");
  std::set<int64_t> nations;
  for (size_t r = 0; r < s.NumRows(); ++r) {
    int64_t n = s.At(r, 1).AsInt64();
    EXPECT_GE(n, 0);
    EXPECT_LE(n, 24);
    nations.insert(n);
  }
  // With 100 suppliers a missing nation has probability ~25*e^{-4}; accept
  // near-complete coverage.
  EXPECT_GE(nations.size(), 20u);
}

TEST(TpchTest, PartNamesAreFiveColorWords) {
  TpchOptions opts;
  opts.scale = 0.005;
  Database db = MakeTpchDatabase(opts);
  const Table& p = **db.GetTable("Part");
  for (size_t r = 0; r < std::min<size_t>(p.NumRows(), 50); ++r) {
    std::string name =
        std::as_const(db).strings().Get(p.At(r, 1).AsStringCode());
    auto words = Split(name, ' ');
    EXPECT_EQ(words.size(), 5u) << name;
  }
}

TEST(TpchTest, LikeSelectivityOrdering) {
  TpchOptions opts;
  opts.scale = 0.02;
  Database db = MakeTpchDatabase(opts);
  auto all = MakeTpchSelections(db, 1 << 30, "%");
  auto red = MakeTpchSelections(db, 1 << 30, "%red%");
  auto redgreen = MakeTpchSelections(db, 1 << 30, "%red%green%");
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(red.ok());
  ASSERT_TRUE(redgreen.ok());
  size_t n_all = (*all)->part.NumRows();
  size_t n_red = (*red)->part.NumRows();
  size_t n_rg = (*redgreen)->part.NumRows();
  EXPECT_GT(n_all, n_red);
  EXPECT_GT(n_red, n_rg);
  EXPECT_GT(n_rg, 0u);
  // 'red' is 1 of 92 words, 5 words per name: ~5.3% of parts.
  EXPECT_NEAR(static_cast<double>(n_red) / n_all, 5.0 / 92, 0.02);
}

TEST(TpchTest, SuppkeySelection) {
  TpchOptions opts;
  opts.scale = 0.01;
  Database db = MakeTpchDatabase(opts);
  auto sel = MakeTpchSelections(db, 10, "%");
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ((*sel)->supplier.NumRows(), 10u);
  EXPECT_EQ((*sel)->overrides.size(), 2u);
}

TEST(TpchTest, QueryShapeHasTwoMinimalPlans) {
  ConjunctiveQuery q = TpchQuery();
  EXPECT_EQ(q.num_atoms(), 3);
  EXPECT_FALSE(IsHierarchical(q));
}

TEST(ChainTest, DomainTuning) {
  // N = n * (n/target)^(1/(k-1)).
  EXPECT_EQ(TuneChainDomain(2, 100, 100), 100);
  EXPECT_GT(TuneChainDomain(4, 1000, 30), 1000);
  EXPECT_GE(TuneChainDomain(3, 10, 1000), 2);
}

TEST(ChainTest, DatabaseShape) {
  ChainSpec spec;
  spec.k = 3;
  spec.n = 100;
  Database db = MakeChainDatabase(spec);
  EXPECT_EQ(db.NumTables(), 3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(db.table(i).NumRows(), 100u);
    EXPECT_EQ(db.table(i).arity(), 2);
  }
}

TEST(ChainTest, QueryShape) {
  ConjunctiveQuery q = MakeChainQuery(4);
  EXPECT_EQ(q.num_atoms(), 4);
  EXPECT_EQ(q.head_vars().size(), 2u);
  EXPECT_EQ(MaskCount(q.EVarMask()), 3);
}

TEST(ChainTest, AnswerCountNearTarget) {
  ChainSpec spec;
  spec.k = 3;
  spec.n = 3000;
  spec.target_answers = 30;
  spec.seed = 99;
  Database db = MakeChainDatabase(spec);
  auto answers = EvaluateDeterministic(db, MakeChainQuery(3));
  ASSERT_TRUE(answers.ok());
  // Expect the tuned domain to land within a loose factor of the target.
  EXPECT_GT(answers->NumRows(), 2u);
  EXPECT_LT(answers->NumRows(), 400u);
}

TEST(StarTest, DatabaseShape) {
  StarSpec spec;
  spec.k = 3;
  spec.n = 50;
  Database db = MakeStarDatabase(spec);
  EXPECT_EQ(db.NumTables(), 4);
  EXPECT_EQ(db.table(3).arity(), 3);  // hub R0
}

TEST(StarTest, QueryShape) {
  ConjunctiveQuery q = MakeStarQuery(3);
  EXPECT_EQ(q.num_atoms(), 4);
  EXPECT_TRUE(q.IsBoolean());
}

TEST(ProbabilityAssignmentTest, UniformRespectsPiMax) {
  ChainSpec spec;
  spec.k = 2;
  spec.n = 500;
  Database db = MakeChainDatabase(spec);
  AssignUniformProbabilities(&db, 0.2, 7);
  double max_p = 0;
  for (int i = 0; i < db.NumTables(); ++i) {
    for (size_t r = 0; r < db.table(i).NumRows(); ++r) {
      max_p = std::max(max_p, db.table(i).Prob(r));
    }
  }
  EXPECT_LE(max_p, 0.2);
  EXPECT_GT(max_p, 0.15);  // close to the cap with 1000 draws
}

TEST(ProbabilityAssignmentTest, ConstantAssignsEverywhere) {
  ChainSpec spec;
  spec.k = 2;
  spec.n = 20;
  Database db = MakeChainDatabase(spec);
  AssignConstantProbabilities(&db, 0.1);
  for (int i = 0; i < db.NumTables(); ++i) {
    for (size_t r = 0; r < db.table(i).NumRows(); ++r) {
      EXPECT_DOUBLE_EQ(db.table(i).Prob(r), 0.1);
    }
  }
}

TEST(RandomInstanceTest, QueryRespectsLimits) {
  Rng rng(1);
  RandomQuerySpec spec;
  spec.max_atoms = 3;
  spec.max_vars = 4;
  spec.max_arity = 2;
  for (int i = 0; i < 50; ++i) {
    ConjunctiveQuery q = RandomQuery(&rng, spec);
    EXPECT_GE(q.num_atoms(), 1);
    EXPECT_LE(q.num_atoms(), 3);
    EXPECT_LE(q.num_vars(), 4);
    for (int a = 0; a < q.num_atoms(); ++a) {
      EXPECT_LE(q.atom(a).arity(), 2);
      EXPECT_GE(MaskCount(q.AtomMask(a)), 1);  // at least one variable
    }
  }
}

TEST(RandomInstanceTest, DatabaseMatchesCatalog) {
  Rng rng(2);
  ConjunctiveQuery q = RandomQuery(&rng);
  Database db = RandomDatabaseFor(q, &rng);
  EXPECT_EQ(db.NumTables(), q.num_atoms());
  for (int i = 0; i < q.num_atoms(); ++i) {
    auto t = db.GetTable(q.atom(i).relation);
    ASSERT_TRUE(t.ok());
    EXPECT_EQ((*t)->arity(), q.atom(i).arity());
  }
}

}  // namespace
}  // namespace dissodb
