// Workload-shared subplan result cache: hits, version invalidation, LRU.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/serve/result_cache.h"

namespace dissodb {
namespace {

std::shared_ptr<const Rel> OneRowRel(double score) {
  Rel r(std::vector<VarId>{0});
  std::vector<Value> row = {Value::Int64(1)};
  r.AddRow(row, score);
  return std::make_shared<const Rel>(std::move(r));
}

TEST(ResultCacheTest, PutThenGetSameVersionHits) {
  ResultCache cache(8);
  cache.Put("k", 1, OneRowRel(0.5));
  auto hit = cache.Get("k", 1);
  ASSERT_NE(hit, nullptr);
  EXPECT_DOUBLE_EQ(hit->Score(0), 0.5);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ResultCacheTest, VersionMismatchIsAMissButOldVersionStaysServable) {
  ResultCache cache(8);
  cache.Put("k", 1, OneRowRel(0.5));
  EXPECT_EQ(cache.Get("k", 2), nullptr);  // newer snapshot: its own miss
  auto s = cache.stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.entries, 1u);
  // Entries are (key, version)-scoped: executions pinned to the older
  // snapshot keep hitting their own entry.
  EXPECT_NE(cache.Get("k", 1), nullptr);
}

TEST(ResultCacheTest, EvictOlderThanSweepsDeadVersionsOnly) {
  ResultCache cache(8);
  cache.Put("a", 1, OneRowRel(0.1));
  cache.Put("b", 2, OneRowRel(0.2));
  cache.Put("c", 3, OneRowRel(0.3));
  // Oldest live snapshot pins version 3: versions 1 and 2 are dead.
  EXPECT_EQ(cache.EvictOlderThan(3), 2u);
  auto s = cache.stats();
  EXPECT_EQ(s.stale_evictions, 2u);
  EXPECT_EQ(s.evictions, 2u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(cache.Get("a", 1), nullptr);
  EXPECT_EQ(cache.Get("b", 2), nullptr);
  EXPECT_NE(cache.Get("c", 3), nullptr);
  // Idempotent once swept.
  EXPECT_EQ(cache.EvictOlderThan(3), 0u);
}

TEST(ResultCacheTest, LruEvictionKeepsRecentlyUsedEntries) {
  ResultCache cache(2);
  cache.Put("a", 1, OneRowRel(0.1));
  cache.Put("b", 1, OneRowRel(0.2));
  ASSERT_NE(cache.Get("a", 1), nullptr);  // refresh a; b is now LRU
  cache.Put("c", 1, OneRowRel(0.3));     // evicts b
  EXPECT_NE(cache.Get("a", 1), nullptr);
  EXPECT_EQ(cache.Get("b", 1), nullptr);
  EXPECT_NE(cache.Get("c", 1), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(ResultCacheTest, CapacityZeroDisablesStorage) {
  ResultCache cache(0);
  cache.Put("k", 1, OneRowRel(0.5));
  EXPECT_EQ(cache.Get("k", 1), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ResultCacheTest, PutRefreshesExistingKeyPerVersion) {
  ResultCache cache(4);
  cache.Put("k", 1, OneRowRel(0.5));
  cache.Put("k", 3, OneRowRel(0.7));
  cache.Put("k", 3, OneRowRel(0.9));  // refresh of (k, 3)
  auto hit = cache.Get("k", 3);
  ASSERT_NE(hit, nullptr);
  EXPECT_DOUBLE_EQ(hit->Score(0), 0.9);
  // Two versions coexist until swept.
  EXPECT_EQ(cache.stats().entries, 2u);
  ASSERT_NE(cache.Get("k", 1), nullptr);
  EXPECT_DOUBLE_EQ(cache.Get("k", 1)->Score(0), 0.5);
  cache.EvictOlderThan(3);
  EXPECT_EQ(cache.stats().entries, 1u);
}

// ---------------------------------------------------------------------------
// In-flight deduplication: concurrent requesters of one missing key get one
// leader (which computes) and waiters (which block on the leader's future).
// ---------------------------------------------------------------------------

TEST(ResultCacheTest, AcquireHandsOutExactlyOneLeader) {
  ResultCache cache(8);
  auto t1 = cache.Acquire("k", 1);
  EXPECT_TRUE(t1.leader);
  EXPECT_EQ(t1.value, nullptr);
  auto t2 = cache.Acquire("k", 1);
  EXPECT_FALSE(t2.leader);
  EXPECT_EQ(t2.value, nullptr);
  ASSERT_TRUE(t2.pending.valid());

  cache.Complete("k", 1, OneRowRel(0.5));
  auto rel = t2.pending.get();
  ASSERT_NE(rel, nullptr);
  EXPECT_DOUBLE_EQ(rel->Score(0), 0.5);

  // After completion the value is a plain hit.
  auto t3 = cache.Acquire("k", 1);
  ASSERT_NE(t3.value, nullptr);
  auto s = cache.stats();
  EXPECT_EQ(s.misses, 1u);  // only the leader counts as a computation
  EXPECT_EQ(s.in_flight_waits, 1u);
  EXPECT_EQ(s.hits, 1u);
}

TEST(ResultCacheTest, WaiterBlocksUntilLeaderCompletes) {
  ResultCache cache(8);
  auto leader = cache.Acquire("k", 1);
  ASSERT_TRUE(leader.leader);

  std::shared_ptr<const Rel> got;
  std::thread waiter([&cache, &got] {
    auto t = cache.Acquire("k", 1);
    EXPECT_FALSE(t.leader);
    got = t.value ? t.value : t.pending.get();
  });
  cache.Complete("k", 1, OneRowRel(0.7));
  waiter.join();
  ASSERT_NE(got, nullptr);
  EXPECT_DOUBLE_EQ(got->Score(0), 0.7);
}

TEST(ResultCacheTest, AbandonWakesWaitersWithNull) {
  ResultCache cache(8);
  auto leader = cache.Acquire("k", 1);
  ASSERT_TRUE(leader.leader);
  auto waiter = cache.Acquire("k", 1);
  ASSERT_FALSE(waiter.leader);
  cache.Abandon("k", 1);
  EXPECT_EQ(waiter.pending.get(), nullptr);
  // Nothing was stored; the next Acquire leads again.
  auto retry = cache.Acquire("k", 1);
  EXPECT_TRUE(retry.leader);
  cache.Complete("k", 1, OneRowRel(0.9));
  EXPECT_NE(cache.Get("k", 1), nullptr);
}

TEST(ResultCacheTest, InFlightEntriesAreVersionScoped) {
  ResultCache cache(8);
  auto v1 = cache.Acquire("k", 1);
  EXPECT_TRUE(v1.leader);
  // A different database version must not wait on the v1 computation.
  auto v2 = cache.Acquire("k", 2);
  EXPECT_TRUE(v2.leader);
  cache.Complete("k", 1, OneRowRel(0.1));
  cache.Complete("k", 2, OneRowRel(0.2));
  // The second Complete refreshed the entry to version 2.
  auto hit = cache.Get("k", 2);
  ASSERT_NE(hit, nullptr);
  EXPECT_DOUBLE_EQ(hit->Score(0), 0.2);
}

TEST(ResultCacheTest, CapacityZeroAcquireAlwaysLeads) {
  ResultCache cache(0);
  auto t1 = cache.Acquire("k", 1);
  auto t2 = cache.Acquire("k", 1);
  EXPECT_TRUE(t1.leader);
  EXPECT_TRUE(t2.leader);  // disabled cache: no dedup, no storage
  cache.Complete("k", 1, OneRowRel(0.5));
  EXPECT_EQ(cache.Get("k", 1), nullptr);
}

TEST(ResultCacheTest, ConcurrentAcquireComputesEachKeyOnce) {
  ResultCache cache(64);
  constexpr int kThreads = 8;
  constexpr int kKeys = 20;
  std::atomic<int> computes{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &computes] {
      for (int k = 0; k < kKeys; ++k) {
        const std::string key = "k" + std::to_string(k);
        auto ticket = cache.Acquire(key, 1);
        if (ticket.value) continue;
        if (ticket.leader) {
          computes.fetch_add(1);
          cache.Complete(key, 1, OneRowRel(0.5));
        } else {
          auto rel = ticket.pending.get();
          EXPECT_NE(rel, nullptr);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  // The whole point: every key computed exactly once despite 8 concurrent
  // requesters per key.
  EXPECT_EQ(computes.load(), kKeys);
  EXPECT_EQ(cache.stats().misses, static_cast<size_t>(kKeys));
}

TEST(ResultCacheTest, ConcurrentMixedAccessIsSafe) {
  ResultCache cache(64);
  constexpr int kThreads = 8;
  constexpr int kOps = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOps; ++i) {
        const std::string key = "k" + std::to_string((t + i) % 100);
        if (auto hit = cache.Get(key, 1)) {
          (void)hit->Score(0);
        } else {
          cache.Put(key, 1, OneRowRel(0.5));
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  auto s = cache.stats();
  EXPECT_EQ(s.hits + s.misses,
            static_cast<size_t>(kThreads) * kOps);
  EXPECT_LE(s.entries, 64u);
}

}  // namespace
}  // namespace dissodb
