// Workload-shared subplan result cache: hits, version invalidation, LRU.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "src/serve/result_cache.h"

namespace dissodb {
namespace {

std::shared_ptr<const Rel> OneRowRel(double score) {
  Rel r(std::vector<VarId>{0});
  std::vector<Value> row = {Value::Int64(1)};
  r.AddRow(row, score);
  return std::make_shared<const Rel>(std::move(r));
}

TEST(ResultCacheTest, PutThenGetSameVersionHits) {
  ResultCache cache(8);
  cache.Put("k", 1, OneRowRel(0.5));
  auto hit = cache.Get("k", 1);
  ASSERT_NE(hit, nullptr);
  EXPECT_DOUBLE_EQ(hit->Score(0), 0.5);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ResultCacheTest, VersionMismatchIsAMissAndDiscardsStaleEntry) {
  ResultCache cache(8);
  cache.Put("k", 1, OneRowRel(0.5));
  EXPECT_EQ(cache.Get("k", 2), nullptr);  // newer database: stale
  auto s = cache.stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 0u);
  // The stale entry is gone even for the old version.
  EXPECT_EQ(cache.Get("k", 1), nullptr);
}

TEST(ResultCacheTest, LruEvictionKeepsRecentlyUsedEntries) {
  ResultCache cache(2);
  cache.Put("a", 1, OneRowRel(0.1));
  cache.Put("b", 1, OneRowRel(0.2));
  ASSERT_NE(cache.Get("a", 1), nullptr);  // refresh a; b is now LRU
  cache.Put("c", 1, OneRowRel(0.3));     // evicts b
  EXPECT_NE(cache.Get("a", 1), nullptr);
  EXPECT_EQ(cache.Get("b", 1), nullptr);
  EXPECT_NE(cache.Get("c", 1), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(ResultCacheTest, CapacityZeroDisablesStorage) {
  ResultCache cache(0);
  cache.Put("k", 1, OneRowRel(0.5));
  EXPECT_EQ(cache.Get("k", 1), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ResultCacheTest, PutRefreshesExistingKey) {
  ResultCache cache(4);
  cache.Put("k", 1, OneRowRel(0.5));
  cache.Put("k", 3, OneRowRel(0.7));
  auto hit = cache.Get("k", 3);
  ASSERT_NE(hit, nullptr);
  EXPECT_DOUBLE_EQ(hit->Score(0), 0.7);
  EXPECT_EQ(cache.stats().entries, 1u);
  // Asking for any other version is a mismatch and discards the entry.
  EXPECT_EQ(cache.Get("k", 1), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ResultCacheTest, ConcurrentMixedAccessIsSafe) {
  ResultCache cache(64);
  constexpr int kThreads = 8;
  constexpr int kOps = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOps; ++i) {
        const std::string key = "k" + std::to_string((t + i) % 100);
        if (auto hit = cache.Get(key, 1)) {
          (void)hit->Score(0);
        } else {
          cache.Put(key, 1, OneRowRel(0.5));
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  auto s = cache.stats();
  EXPECT_EQ(s.hits + s.misses,
            static_cast<size_t>(kThreads) * kOps);
  EXPECT_LE(s.entries, 64u);
}

}  // namespace
}  // namespace dissodb
