// Tests for lineage grounding (Example 7) and derived statistics.
#include <gtest/gtest.h>

#include "src/infer/exact.h"
#include "src/infer/query_inference.h"
#include "src/lineage/lineage.h"
#include "tests/test_util.h"

namespace dissodb {
namespace {

using testing_util::AddTable;
using testing_util::Q;

TEST(LineageTest, Example7Lineage) {
  // q :- R(x), S(x,y) on D = {R(1), R(2), S(1,4), S(1,5)}:
  // F = R(1)S(1,4) v R(1)S(1,5) — two terms, R(2) not in the lineage.
  auto q = Q("q() :- R(x), S(x,y)");
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.5}, {{2}, 0.6}});
  AddTable(&db, "S", 2, {{{1, 4}, 0.4}, {{1, 5}, 0.3}});
  auto lin = ComputeLineage(db, q);
  ASSERT_TRUE(lin.ok()) << lin.status().ToString();
  ASSERT_EQ(lin->answers.size(), 1u);
  const AnswerLineage& al = lin->answers[0];
  EXPECT_EQ(al.terms.size(), 2u);
  for (const auto& term : al.terms) EXPECT_EQ(term.size(), 2u);
  // P(q) = P(F) = p(1-(1-q)(1-r)) with p=.5, q=.4, r=.3 (Example 7).
  Dnf f = lin->ToDnf(al);
  auto p = ExactDnfProbability(f);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, 0.5 * (1 - (1 - 0.4) * (1 - 0.3)), 1e-12);
}

TEST(LineageTest, PerAnswerGrouping) {
  auto q = Q("q(z) :- R(z,x), S(x)");
  Database db;
  AddTable(&db, "R", 2, {{{10, 1}, 0.5}, {{10, 2}, 0.5}, {{20, 1}, 0.5}});
  AddTable(&db, "S", 1, {{{1}, 0.5}, {{2}, 0.5}});
  auto lin = ComputeLineage(db, q);
  ASSERT_TRUE(lin.ok());
  ASSERT_EQ(lin->answers.size(), 2u);
  // Ordered by answer tuple: z=10 first with 2 terms, then z=20 with 1.
  EXPECT_EQ(lin->answers[0].answer[0], Value::Int64(10));
  EXPECT_EQ(lin->answers[0].terms.size(), 2u);
  EXPECT_EQ(lin->answers[1].answer[0], Value::Int64(20));
  EXPECT_EQ(lin->answers[1].terms.size(), 1u);
}

TEST(LineageTest, DeterministicTuplesDroppedFromDnf) {
  auto q = Q("q() :- R(x), T(x)");
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.5}});
  AddTable(&db, "T", 1, {{{1}, 1.0}}, /*deterministic=*/true);
  auto lin = ComputeLineage(db, q);
  ASSERT_TRUE(lin.ok());
  ASSERT_EQ(lin->answers.size(), 1u);
  Dnf f = lin->ToDnf(lin->answers[0]);
  ASSERT_EQ(f.terms.size(), 1u);
  EXPECT_EQ(f.terms[0].size(), 1u);  // only the R tuple remains
  auto p = ExactDnfProbability(f);
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(*p, 0.5);
}

TEST(LineageTest, ConstantsRestrictGrounding) {
  auto q = Q("q() :- R(x, 5)");
  Database db;
  AddTable(&db, "R", 2, {{{1, 5}, 0.5}, {{2, 6}, 0.5}});
  auto lin = ComputeLineage(db, q);
  ASSERT_TRUE(lin.ok());
  ASSERT_EQ(lin->answers.size(), 1u);
  EXPECT_EQ(lin->answers[0].terms.size(), 1u);
}

TEST(LineageTest, NoAnswersWhenJoinEmpty) {
  auto q = Q("q() :- R(x), S(x)");
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.5}});
  AddTable(&db, "S", 1, {{{2}, 0.5}});
  auto lin = ComputeLineage(db, q);
  ASSERT_TRUE(lin.ok());
  EXPECT_TRUE(lin->answers.empty());
}

TEST(LineageTest, OverridesRebindTables) {
  auto q = Q("q() :- R(x)");
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.5}, {{2}, 0.5}});
  Table filtered(RelationSchema::AllInt64("R", 1));
  filtered.AddRow({Value::Int64(2)}, 0.5);
  auto lin = ComputeLineage(db, q, {{0, &filtered}});
  ASSERT_TRUE(lin.ok());
  ASSERT_EQ(lin->answers.size(), 1u);
  EXPECT_EQ(lin->answers[0].terms.size(), 1u);
}

TEST(LineageTest, GuardOnBlowup) {
  auto q = Q("q() :- R(x), S(y)");  // cartesian product
  Database db;
  std::vector<std::pair<std::vector<int64_t>, double>> rows;
  for (int i = 0; i < 200; ++i) rows.push_back({{i}, 0.5});
  AddTable(&db, "R", 1, rows);
  AddTable(&db, "S", 1, rows);
  LineageOptions opts;
  opts.max_total_terms = 1000;  // 200*200 exceeds this
  auto lin = ComputeLineage(db, q, {}, opts);
  EXPECT_FALSE(lin.ok());
  EXPECT_EQ(lin.status().code(), Status::Code::kOutOfRange);
}

TEST(LineageTest, MaxLineageSize) {
  auto q = Q("q(z) :- R(z,x), S(x)");
  Database db;
  AddTable(&db, "R", 2, {{{10, 1}, 0.5}, {{10, 2}, 0.5}, {{20, 1}, 0.5}});
  AddTable(&db, "S", 1, {{{1}, 0.5}, {{2}, 0.5}});
  auto lin = ComputeLineage(db, q);
  ASSERT_TRUE(lin.ok());
  EXPECT_EQ(MaxLineageSize(*lin), 2u);
}

TEST(LineageTest, LineageSizeRankingOrdersBySize) {
  auto q = Q("q(z) :- R(z,x), S(x)");
  Database db;
  AddTable(&db, "R", 2, {{{10, 1}, 0.5}, {{10, 2}, 0.5}, {{20, 1}, 0.5}});
  AddTable(&db, "S", 1, {{{1}, 0.5}, {{2}, 0.5}});
  auto lin = ComputeLineage(db, q);
  ASSERT_TRUE(lin.ok());
  auto ranking = LineageSizeRanking(*lin);
  ASSERT_EQ(ranking.size(), 2u);
  EXPECT_EQ(ranking[0].tuple[0], Value::Int64(10));
  EXPECT_DOUBLE_EQ(ranking[0].score, 2.0);
}

TEST(LineageTest, MeanDistinctTuplesOfAtom) {
  // z=10's lineage has 2 terms sharing one S... R tuples distinct per term.
  auto q = Q("q() :- R(x), S(x,y)");
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.5}});
  AddTable(&db, "S", 2, {{{1, 4}, 0.5}, {{1, 5}, 0.5}});
  auto lin = ComputeLineage(db, q);
  ASSERT_TRUE(lin.ok());
  ASSERT_EQ(lin->answers.size(), 1u);
  // Atom 0 (R): one distinct tuple in 2 terms -> mean 2.0 copies.
  EXPECT_DOUBLE_EQ(lin->MeanDistinctTuplesOfAtom(lin->answers[0], 0), 2.0);
  // Atom 1 (S): two distinct tuples in 2 terms -> 1.0.
  EXPECT_DOUBLE_EQ(lin->MeanDistinctTuplesOfAtom(lin->answers[0], 1), 1.0);
}

TEST(LineageTest, BooleanQuerySingleAnswer) {
  auto q = Q("q() :- R(x)");
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.5}, {{2}, 0.5}});
  auto lin = ComputeLineage(db, q);
  ASSERT_TRUE(lin.ok());
  ASSERT_EQ(lin->answers.size(), 1u);
  EXPECT_TRUE(lin->answers[0].answer.empty());
  EXPECT_EQ(lin->answers[0].terms.size(), 2u);
}

}  // namespace
}  // namespace dissodb
