// Snapshot-isolated Database API: immutable snapshots, writer
// transactions, copy-free chunk pinning, the live-version registry, the
// legacy shims, and the engine's commit-time stale-result sweep.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/engine/query_engine.h"
#include "src/storage/database.h"
#include "src/storage/snapshot.h"
#include "tests/test_util.h"

namespace dissodb {
namespace {

using testing_util::AddTable;
using testing_util::ChunkCapOverride;
using testing_util::Q;

Value I(int64_t v) { return Value::Int64(v); }

TEST(SnapshotTest, SnapshotPinsStateAcrossWriterCommit) {
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.5}, {{2}, 0.6}});

  Snapshot snap = db.snapshot();
  EXPECT_TRUE(snap.valid());
  EXPECT_EQ(snap.NumTables(), 1);
  EXPECT_EQ(snap.table(0).NumRows(), 2u);
  const uint64_t v_before = snap.version();

  {
    Database::Writer w = db.BeginWrite();
    w.AppendRow(0, std::vector<Value>{I(3)}, 0.7);
    const uint64_t v_after = w.Commit();
    EXPECT_GT(v_after, v_before);
  }

  // The held snapshot is immune; the live head and new snapshots see it.
  EXPECT_EQ(snap.table(0).NumRows(), 2u);
  EXPECT_EQ(db.table(0).NumRows(), 3u);
  Snapshot fresh = db.snapshot();
  EXPECT_EQ(fresh.table(0).NumRows(), 3u);
  EXPECT_GT(fresh.version(), snap.version());
}

TEST(SnapshotTest, SnapshotIsCopyFreeAndSealedChunksStayShared) {
  ChunkCapOverride cap(4);
  Database db;
  Table t(RelationSchema::AllInt64("R", 1));
  for (int i = 0; i < 10; ++i) t.AddRow({I(i)}, 0.5);  // chunks: 4+4+2
  ASSERT_TRUE(db.AddTable(std::move(t)).ok());

  Snapshot snap = db.snapshot();
  const Column& live = *db.table(0).col(0);
  const Column& pinned = *snap.table(0).col(0);
  ASSERT_EQ(pinned.num_chunks(), 3u);
  // Acquisition copied no payloads: every chunk handle is shared.
  for (size_t ci = 0; ci < live.num_chunks(); ++ci) {
    EXPECT_EQ(snap.table(0).col(0)->chunk(ci), db.table(0).col(0)->chunk(ci));
  }

  {
    Database::Writer w = db.BeginWrite();
    w.AppendRow(0, std::vector<Value>{I(99)}, 0.5);
    w.Commit();
  }

  // Sealed chunks are still shared with the post-commit live column; only
  // the tail the writer appended into was detached (seal-on-publish).
  const Column& after = *db.table(0).col(0);
  ASSERT_EQ(after.num_chunks(), 3u);
  EXPECT_EQ(snap.table(0).col(0)->chunk(0), after.chunk(0));
  EXPECT_EQ(snap.table(0).col(0)->chunk(1), after.chunk(1));
  EXPECT_NE(snap.table(0).col(0)->chunk(2), after.chunk(2));
  EXPECT_EQ(snap.table(0).NumRows(), 10u);
  EXPECT_EQ(db.table(0).NumRows(), 11u);
}

TEST(SnapshotTest, WeightColumnSharesSealedChunksAndDetachesOnlyTheTail) {
  ChunkCapOverride cap(4);
  Database db;
  Table t(RelationSchema::AllInt64("R", 1));
  // 1/16 steps are exact in binary floating point, so the equality
  // assertions below compare identical bit patterns.
  for (int i = 0; i < 10; ++i) t.AddRow({I(i)}, 0.0625 * i);  // chunks: 4+4+2
  ASSERT_TRUE(db.AddTable(std::move(t)).ok());

  Snapshot snap = db.snapshot();
  ASSERT_EQ(snap.table(0).weights()->num_chunks(), 3u);
  // Acquisition copied no weights: every chunk handle is shared.
  for (size_t ci = 0; ci < 3; ++ci) {
    EXPECT_EQ(snap.table(0).weights()->chunk(ci),
              db.table(0).weights()->chunk(ci));
  }

  {
    Database::Writer w = db.BeginWrite();
    w.AppendRow(0, std::vector<Value>{I(99)}, 0.5);
    w.Commit();
  }

  // The append detached only the tail weight chunk; sealed chunks stay
  // shared with the pinned snapshot — commit cost tracks the delta, not
  // the weight column.
  const WeightColumn& after = *db.table(0).weights();
  ASSERT_EQ(after.num_chunks(), 3u);
  EXPECT_EQ(snap.table(0).weights()->chunk(0), after.chunk(0));
  EXPECT_EQ(snap.table(0).weights()->chunk(1), after.chunk(1));
  EXPECT_NE(snap.table(0).weights()->chunk(2), after.chunk(2));
  EXPECT_EQ((*snap.table(0).weights())[9], 0.5625);
  EXPECT_EQ(after[10], 0.5);

  // An overwrite (per-chunk copy-on-write) detaches exactly the chunk it
  // hits, sealed or not.
  {
    Database::Writer w = db.BeginWrite();
    w.mutable_table(0)->SetProb(0, 0.25);
    w.Commit();
  }
  const WeightColumn& scaled = *db.table(0).weights();
  EXPECT_NE(snap.table(0).weights()->chunk(0), scaled.chunk(0));
  EXPECT_EQ(snap.table(0).weights()->chunk(1), scaled.chunk(1));
  EXPECT_EQ((*snap.table(0).weights())[0], 0.0);
  EXPECT_EQ(scaled[0], 0.25);
}

TEST(SnapshotTest, WriterStagingIsInvisibleUntilCommit) {
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.5}});
  const uint64_t v0 = db.version();

  Database::Writer w = db.BeginWrite();
  w.AppendRow(0, std::vector<Value>{I(2)}, 0.9);
  ASSERT_TRUE(w.CreateTable(RelationSchema::AllInt64("S", 2)).ok());

  // Staged state is visible through the writer...
  EXPECT_EQ(w.table(0).NumRows(), 2u);
  EXPECT_EQ(w.NumTables(), 2);
  EXPECT_GE(w.FindTable("S"), 0);
  // ...but not to the live head, new snapshots, or the version counter.
  EXPECT_EQ(db.table(0).NumRows(), 1u);
  EXPECT_EQ(db.FindTable("S"), -1);
  EXPECT_EQ(db.snapshot().table(0).NumRows(), 1u);
  EXPECT_EQ(db.version(), v0);

  w.Commit();
  EXPECT_EQ(db.table(0).NumRows(), 2u);
  EXPECT_GE(db.FindTable("S"), 0);
  EXPECT_GT(db.version(), v0);
}

TEST(SnapshotTest, WriterAbortDiscardsEverything) {
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.5}});
  const uint64_t v0 = db.version();
  {
    Database::Writer w = db.BeginWrite();
    w.AppendRow(0, std::vector<Value>{I(7)}, 0.1);
    ASSERT_TRUE(w.CreateTable(RelationSchema::AllInt64("S", 1)).ok());
    w.ScaleProbabilities(0.5);
    // No commit: destructor aborts.
  }
  EXPECT_EQ(db.version(), v0);
  EXPECT_EQ(db.table(0).NumRows(), 1u);
  EXPECT_DOUBLE_EQ(db.table(0).Prob(0), 0.5);
  EXPECT_EQ(db.FindTable("S"), -1);
}

TEST(SnapshotTest, WriterScaleProbabilitiesLeavesSnapshotUntouched) {
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.8}});
  AddTable(&db, "D", 1, {{{1}, 1.0}}, /*deterministic=*/true);
  Snapshot snap = db.snapshot();

  {
    Database::Writer w = db.BeginWrite();
    w.ScaleProbabilities(0.5);
    w.Commit();
  }
  EXPECT_DOUBLE_EQ(snap.table(0).Prob(0), 0.8);
  EXPECT_DOUBLE_EQ(db.table(0).Prob(0), 0.4);
  EXPECT_DOUBLE_EQ(db.table(1).Prob(0), 1.0);  // deterministic pinned at 1
}

TEST(SnapshotTest, WriterAddTableRejectsDuplicates) {
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.5}});
  Database::Writer w = db.BeginWrite();
  EXPECT_FALSE(w.AddTable(Table(RelationSchema::AllInt64("R", 1))).ok());
  ASSERT_TRUE(w.AddTable(Table(RelationSchema::AllInt64("S", 1))).ok());
  EXPECT_FALSE(w.AddTable(Table(RelationSchema::AllInt64("S", 1))).ok());
  w.Commit();
  EXPECT_EQ(db.NumTables(), 2);
}

TEST(SnapshotTest, SnapshotOutlivesDatabase) {
  Snapshot snap;
  {
    auto db = std::make_unique<Database>();
    Value hello = db->Str("hello");
    RelationSchema schema;
    schema.name = "R";
    schema.column_names = {"a"};
    schema.column_types = {ValueType::kString};
    Table t(std::move(schema));
    t.AddRow({hello}, 0.5);
    ASSERT_TRUE(db->AddTable(std::move(t)).ok());
    snap = db->snapshot();
  }
  ASSERT_TRUE(snap.valid());
  EXPECT_EQ(snap.NumTables(), 1);
  EXPECT_EQ(snap.table(0).NumRows(), 1u);
  // The snapshot co-owns the string pool.
  EXPECT_EQ(snap.strings().Get(snap.table(0).At(0, 0).AsStringCode()),
            "hello");
}

TEST(SnapshotTest, StringPoolHighWaterMarkIsPinned) {
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.5}});
  db.Str("early");
  Snapshot snap = db.snapshot();
  const size_t hwm = snap.string_pool_size();
  db.Str("late");  // interned after the snapshot
  EXPECT_EQ(snap.string_pool_size(), hwm);
  EXPECT_GT(db.strings()->size(), hwm);
}

TEST(SnapshotTest, OldestLiveSnapshotVersionTracksHeldStates) {
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.5}});
  // No snapshot held: falls back to the current version.
  EXPECT_EQ(db.OldestLiveSnapshotVersion(), db.version());

  Snapshot s1 = db.snapshot();
  const uint64_t v1 = s1.version();
  db.ScaleProbabilities(0.9);  // commit -> version moves
  Snapshot s2 = db.snapshot();
  EXPECT_EQ(db.OldestLiveSnapshotVersion(), v1);

  s1 = Snapshot();  // drop the old state
  EXPECT_EQ(db.OldestLiveSnapshotVersion(), s2.version());
  s2 = Snapshot();
  EXPECT_EQ(db.OldestLiveSnapshotVersion(), db.version());
}

TEST(SnapshotTest, CommitHooksFireOnEveryCommitIncludingLegacyShims) {
  Database db;
  int fired = 0;
  CommitInfo last;
  int token = db.RegisterCommitHook([&](const CommitInfo& info) {
    ++fired;
    last = info;
  });
  AddTable(&db, "R", 1, {{{1}, 0.5}});  // legacy shim commits
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(last.version, db.version());
  // Adding a table is append-only (no pre-existing row changed) but
  // contributes no delta: no earlier plan can reference the new table.
  EXPECT_TRUE(last.append_only);
  EXPECT_TRUE(last.deltas.empty());
  {
    Database::Writer w = db.BeginWrite();
    w.AppendRow(0, std::vector<Value>{I(2)}, 0.5);
    w.Commit();
  }
  EXPECT_EQ(fired, 2);
  ASSERT_TRUE(last.append_only);
  ASSERT_EQ(last.deltas.size(), 1u);
  EXPECT_EQ(last.deltas[0].name, "R");
  EXPECT_EQ(last.deltas[0].first_new_row, 1u);
  EXPECT_EQ(last.deltas[0].new_rows, 1u);
  EXPECT_EQ(last.appended_rows, 1u);
  (void)db.mutable_table(0);  // deprecated shim opens-commits a writer
  EXPECT_EQ(fired, 3);
  // The empty commit guards the raw-pointer escape hatch: the caller is
  // about to mutate the live head untracked, so caches must invalidate.
  EXPECT_FALSE(last.append_only);
  // Overwrites (SetProb via ScaleProbabilities) are not append-only.
  db.ScaleProbabilities(0.5);
  EXPECT_EQ(fired, 4);
  EXPECT_FALSE(last.append_only);
  db.UnregisterCommitHook(token);
  db.ScaleProbabilities(0.5);
  EXPECT_EQ(fired, 4);
}

TEST(SnapshotTest, PinnedSnapshotQueryResultsAreBitIdenticalAcrossCommits) {
  Database db;
  AddTable(&db, "R", 2, {{{1, 10}, 0.5}, {{2, 10}, 0.6}, {{2, 20}, 0.7}});
  AddTable(&db, "S", 1, {{{10}, 0.9}, {{20}, 0.8}});
  QueryEngine engine = QueryEngine::Borrow(db);
  auto prepared = engine.Prepare("q(x) :- R(x,y), S(y)");
  ASSERT_TRUE(prepared.ok());

  Snapshot pinned = db.snapshot();
  auto baseline = engine.Execute(*prepared, {}, pinned);
  ASSERT_TRUE(baseline.ok());

  for (int round = 0; round < 3; ++round) {
    Database::Writer w = db.BeginWrite();
    w.AppendRow(0, std::vector<Value>{I(5 + round), I(10)}, 0.3);
    w.ScaleProbabilities(0.99);
    w.Commit();

    auto again = engine.Execute(*prepared, {}, pinned);
    ASSERT_TRUE(again.ok());
    ASSERT_EQ(again->answers.size(), baseline->answers.size());
    for (size_t i = 0; i < baseline->answers.size(); ++i) {
      EXPECT_EQ(again->answers[i].tuple, baseline->answers[i].tuple);
      EXPECT_EQ(again->answers[i].score, baseline->answers[i].score);
    }
    // The live head meanwhile diverged (probabilities were rescaled).
    auto live = engine.Execute(*prepared);
    ASSERT_TRUE(live.ok());
    ASSERT_FALSE(live->answers.empty());
    EXPECT_NE(live->answers[0].score, baseline->answers[0].score);
  }
}

TEST(SnapshotTest, StaleResultEntriesAreSweptOnCommitUnlessSnapshotHeld) {
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.7}});
  AddTable(&db, "S", 2, {{{1, 10}, 0.9}});
  AddTable(&db, "T", 1, {{{10}, 0.6}});
  QueryEngine engine = QueryEngine::Borrow(db);
  ConjunctiveQuery q = Q("q() :- R(x), S(x,y), T(y)");

  auto r1 = engine.RunBatch(std::vector<ConjunctiveQuery>{q, q});
  ASSERT_TRUE(r1.ok());
  ASSERT_GT(engine.stats().result_cache_entries, 0u);

  // A held snapshot of the cached version keeps its entries alive through
  // a commit (they are still servable for executions pinned to it).
  Snapshot held = db.snapshot();
  db.ScaleProbabilities(0.9);
  EXPECT_EQ(engine.stats().result_cache_stale_evictions, 0u);
  EXPECT_GT(engine.stats().result_cache_entries, 0u);

  // Dropping the snapshot and committing again sweeps them.
  held = Snapshot();
  db.ScaleProbabilities(0.9);
  EXPECT_GT(engine.stats().result_cache_stale_evictions, 0u);
  EXPECT_EQ(engine.stats().result_cache_entries, 0u);
}

TEST(SnapshotTest, ForeignSnapshotsAreRejected) {
  Database db_a;
  AddTable(&db_a, "R", 1, {{{1}, 0.5}});
  Database db_b;
  AddTable(&db_b, "R", 1, {{{2}, 0.9}});
  EXPECT_TRUE(db_a.OwnsSnapshot(db_a.snapshot()));
  EXPECT_FALSE(db_a.OwnsSnapshot(db_b.snapshot()));
  EXPECT_FALSE(db_a.OwnsSnapshot(Snapshot()));

  // Version stamps are only comparable within one database: an engine
  // must refuse a foreign snapshot rather than poison its caches.
  QueryEngine engine = QueryEngine::Borrow(db_a);
  auto prepared = engine.Prepare("q(x) :- R(x)");
  ASSERT_TRUE(prepared.ok());
  EXPECT_FALSE(engine.Execute(*prepared, {}, db_b.snapshot()).ok());
  EXPECT_FALSE(engine.Execute(*prepared, {}, Snapshot()).ok());
  auto fut = engine.Submit(*prepared, {}, db_b.snapshot());
  EXPECT_FALSE(fut.get().ok());
  EXPECT_TRUE(engine.Execute(*prepared, {}, db_a.snapshot()).ok());
}

TEST(SnapshotTest, LegacyMutableTableStillWorksSingleThreaded) {
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.5}});
  const uint64_t v0 = db.version();
  Table* t = db.mutable_table(0);
  EXPECT_GT(db.version(), v0);  // conservative invalidation bump
  t->SetProb(0, 0.25);
  EXPECT_DOUBLE_EQ(db.table(0).Prob(0), 0.25);
}

TEST(SnapshotTest, CloneIsIsolatedFromTheOriginal) {
  Database db;
  AddTable(&db, "R", 1, {{{1}, 0.5}});
  Database copy = db.Clone();
  copy.mutable_table(0)->SetProb(0, 0.9);
  EXPECT_DOUBLE_EQ(db.table(0).Prob(0), 0.5);
  EXPECT_DOUBLE_EQ(copy.table(0).Prob(0), 0.9);
}

}  // namespace
}  // namespace dissodb
