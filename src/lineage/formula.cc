#include "src/lineage/formula.h"

#include <algorithm>

namespace dissodb {

void Dnf::Normalize() {
  for (auto& t : terms) {
    std::sort(t.begin(), t.end());
    t.erase(std::unique(t.begin(), t.end()), t.end());
  }
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
}

bool Dnf::Evaluate(const std::vector<bool>& assignment) const {
  for (const auto& t : terms) {
    bool sat = true;
    for (int v : t) {
      if (!assignment[v]) {
        sat = false;
        break;
      }
    }
    if (sat) return true;
  }
  return false;
}

std::string Dnf::ToString() const {
  if (terms.empty()) return "false";
  std::string out;
  for (size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) out += " v ";
    if (terms[i].empty()) {
      out += "true";
      continue;
    }
    for (size_t j = 0; j < terms[i].size(); ++j) {
      if (j > 0) out += ".";
      out += "x" + std::to_string(terms[i][j]);
    }
  }
  return out;
}

Result<double> BruteForceProbability(const Dnf& f) {
  const int n = f.num_vars();
  if (n > 25) {
    return Status::OutOfRange("brute force limited to 25 variables");
  }
  double total = 0.0;
  std::vector<bool> assignment(n);
  for (uint64_t bits = 0; bits < (uint64_t{1} << n); ++bits) {
    double p = 1.0;
    for (int v = 0; v < n; ++v) {
      bool on = (bits >> v) & 1;
      assignment[v] = on;
      p *= on ? f.probs[v] : 1.0 - f.probs[v];
    }
    if (p > 0 && f.Evaluate(assignment)) total += p;
  }
  return total;
}

}  // namespace dissodb
