#include "src/lineage/lineage.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/common/hash.h"
#include "src/exec/rel.h"

namespace dissodb {

Dnf LineageResult::ToDnf(const AnswerLineage& al) const {
  Dnf f;
  std::unordered_map<int, int> dense;  // ground id -> dnf var
  for (const auto& term : al.terms) {
    std::vector<int> t;
    for (int id : term) {
      const GroundTuple& g = tuples[id];
      if (g.deterministic || g.prob >= 1.0) continue;  // always-true literal
      auto [it, inserted] = dense.try_emplace(id, static_cast<int>(f.probs.size()));
      if (inserted) f.probs.push_back(g.prob);
      t.push_back(it->second);
    }
    std::sort(t.begin(), t.end());
    f.terms.push_back(std::move(t));
  }
  f.Normalize();
  return f;
}

double LineageResult::MeanDistinctTuplesOfAtom(const AnswerLineage& al,
                                               int atom_idx) const {
  std::set<int> distinct;
  for (const auto& term : al.terms) {
    for (int id : term) {
      if (tuples[id].atom_idx == atom_idx) distinct.insert(id);
    }
  }
  if (distinct.empty()) return 0.0;
  return static_cast<double>(al.terms.size()) /
         static_cast<double>(distinct.size());
}

namespace {

struct AtomData {
  const Table* table;
  std::vector<uint32_t> rows;      // filtered row indices into `table`
  std::vector<VarId> vars;         // distinct vars ascending
  std::vector<int> first_pos;      // column of each var
  int id_offset;                   // dense ground-tuple id base
};

}  // namespace

Result<LineageResult> ComputeLineage(
    const Database& db, const ConjunctiveQuery& q,
    const std::unordered_map<int, const Table*>& overrides,
    const LineageOptions& opts) {
  const int m = q.num_atoms();
  LineageResult result;

  // Prepare per-atom filtered row lists and dense ground-tuple ids.
  std::vector<AtomData> atoms(m);
  for (int i = 0; i < m; ++i) {
    const Atom& a = q.atom(i);
    const Table* table = nullptr;
    auto oit = overrides.find(i);
    if (oit != overrides.end()) {
      table = oit->second;
    } else {
      auto t = db.GetTable(a.relation);
      if (!t.ok()) return t.status();
      table = *t;
    }
    if (table->arity() != a.arity()) {
      return Status::InvalidArgument("atom " + a.relation + " arity mismatch");
    }
    AtomData& ad = atoms[i];
    ad.table = table;
    ad.vars = MaskToVars(q.AtomMask(i));
    ad.first_pos.assign(ad.vars.size(), -1);
    struct Check {
      int pos;
      int other;
      Value constant;
    };
    std::vector<Check> checks;
    for (int p = 0; p < a.arity(); ++p) {
      const Term& t = a.terms[p];
      if (!t.is_var) {
        checks.push_back(Check{p, -1, t.constant});
        continue;
      }
      int vi = static_cast<int>(
          std::lower_bound(ad.vars.begin(), ad.vars.end(), t.var) -
          ad.vars.begin());
      if (ad.first_pos[vi] < 0) {
        ad.first_pos[vi] = p;
      } else {
        checks.push_back(Check{p, ad.first_pos[vi], Value()});
      }
    }
    for (size_t r = 0; r < table->NumRows(); ++r) {
      bool ok = true;
      for (const auto& c : checks) {
        const Value rhs = c.other >= 0 ? table->At(r, c.other) : c.constant;
        if (table->At(r, c.pos) != rhs) {
          ok = false;
          break;
        }
      }
      if (ok) ad.rows.push_back(static_cast<uint32_t>(r));
    }
    ad.id_offset = static_cast<int>(result.tuples.size());
    const bool det = table->schema().deterministic;
    for (uint32_t r : ad.rows) {
      result.tuples.push_back(
          GroundTuple{i, r, table->Prob(r), det});
    }
  }

  // Greedy join order: smallest atom first, then atoms sharing bound vars.
  std::vector<int> order;
  std::vector<bool> used(m, false);
  VarMask bound = 0;
  for (int step = 0; step < m; ++step) {
    int best = -1;
    bool best_shares = false;
    for (int i = 0; i < m; ++i) {
      if (used[i]) continue;
      bool shares = step > 0 && (q.AtomMask(i) & bound) != 0;
      if (best < 0 || (shares && !best_shares) ||
          (shares == best_shares &&
           atoms[i].rows.size() < atoms[best].rows.size())) {
        best = i;
        best_shares = shares;
      }
    }
    order.push_back(best);
    used[best] = true;
    bound |= q.AtomMask(best);
  }

  // Partial assignments: values over all query vars + ground ids per atom.
  const int nv = q.num_vars();
  struct Partial {
    std::vector<Value> values;  // indexed by VarId
    std::vector<int> ids;       // per atom, -1 = not yet joined
  };
  std::vector<Partial> partial(1);
  partial[0].values.assign(nv, Value());
  partial[0].ids.assign(m, -1);

  bound = 0;
  for (int ai : order) {
    const AtomData& ad = atoms[ai];
    VarMask shared_mask = q.AtomMask(ai) & bound;
    std::vector<VarId> shared = MaskToVars(shared_mask);
    // Column positions of the shared vars inside the atom's var list.
    std::vector<int> shared_cols;
    for (VarId v : shared) {
      int vi = static_cast<int>(
          std::lower_bound(ad.vars.begin(), ad.vars.end(), v) - ad.vars.begin());
      shared_cols.push_back(ad.first_pos[vi]);
    }
    // Hash the atom rows on the shared values.
    std::unordered_map<size_t, std::vector<uint32_t>> ht;
    ht.reserve(ad.rows.size() * 2);
    for (size_t k = 0; k < ad.rows.size(); ++k) {
      size_t h = 0x8f1bbc;
      for (int c : shared_cols) {
        HashCombine(&h, ad.table->At(ad.rows[k], c).Hash());
      }
      ht[h].push_back(static_cast<uint32_t>(k));
    }
    std::vector<Partial> next;
    for (const auto& p : partial) {
      size_t h = 0x8f1bbc;
      for (VarId v : shared) HashCombine(&h, p.values[v].Hash());
      auto it = ht.find(h);
      if (it == ht.end()) continue;
      for (uint32_t k : it->second) {
        const uint32_t src_row = ad.rows[k];
        bool match = true;
        for (size_t s = 0; s < shared.size(); ++s) {
          if (p.values[shared[s]] != ad.table->At(src_row, shared_cols[s])) {
            match = false;
            break;
          }
        }
        if (!match) continue;
        Partial np = p;
        for (size_t vi = 0; vi < ad.vars.size(); ++vi) {
          np.values[ad.vars[vi]] = ad.table->At(src_row, ad.first_pos[vi]);
        }
        np.ids[ai] = ad.id_offset + static_cast<int>(k);
        next.push_back(std::move(np));
        if (next.size() > opts.max_total_terms) {
          return Status::OutOfRange("lineage exceeds max_total_terms");
        }
      }
    }
    partial = std::move(next);
    bound |= q.AtomMask(ai);
    if (partial.empty()) break;
  }

  // Group satisfying assignments by answer tuple.
  std::vector<VarId> head = MaskToVars(q.HeadMask());
  std::map<std::vector<Value>, std::vector<std::vector<int>>> grouped;
  for (const auto& p : partial) {
    std::vector<Value> key;
    key.reserve(head.size());
    for (VarId v : head) key.push_back(p.values[v]);
    grouped[key].push_back(p.ids);
  }
  for (auto& [answer, terms] : grouped) {
    AnswerLineage al;
    al.answer = answer;
    al.terms = std::move(terms);
    result.answers.push_back(std::move(al));
  }
  return result;
}

}  // namespace dissodb
