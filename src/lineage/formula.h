// Monotone DNF formulas over independent Boolean variables.
//
// The lineage of a self-join-free CQ answer is such a formula: one term per
// satisfying assignment, one variable per participating base tuple
// (Section 2, "Boolean Formulas").
#ifndef DISSODB_LINEAGE_FORMULA_H_
#define DISSODB_LINEAGE_FORMULA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace dissodb {

/// \brief A monotone DNF over dense variable ids [0, num_vars) with a
/// probability per variable.
struct Dnf {
  std::vector<std::vector<int>> terms;  ///< each term: sorted distinct vars
  std::vector<double> probs;            ///< probability per variable

  int num_vars() const { return static_cast<int>(probs.size()); }
  size_t num_terms() const { return terms.size(); }

  /// Sorts each term and the term list; removes duplicate terms and
  /// duplicate variables inside terms.
  void Normalize();

  /// Evaluates under a complete assignment (bit i of `assignment[i]`).
  bool Evaluate(const std::vector<bool>& assignment) const;

  std::string ToString() const;
};

/// Brute-force P(F) by enumerating all assignments; requires <= 25 vars.
/// Reference implementation for testing the WMC engine.
Result<double> BruteForceProbability(const Dnf& f);

}  // namespace dissodb

#endif  // DISSODB_LINEAGE_FORMULA_H_
