// Lineage computation: grounding a query into per-answer DNF formulas over
// base tuples (the "lineage query" of Section 5).
#ifndef DISSODB_LINEAGE_LINEAGE_H_
#define DISSODB_LINEAGE_LINEAGE_H_

#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/lineage/formula.h"
#include "src/query/cq.h"
#include "src/storage/database.h"

namespace dissodb {

/// One base tuple participating in some lineage ("ground variable").
struct GroundTuple {
  int atom_idx;       ///< atom whose table the tuple comes from
  uint32_t row;       ///< row in the table actually scanned for that atom
  double prob;        ///< its probability
  bool deterministic; ///< true when the relation is deterministic
};

/// Lineage of one answer: DNF terms over dense ground-tuple ids.
struct AnswerLineage {
  std::vector<Value> answer;            ///< head-variable values
  std::vector<std::vector<int>> terms;  ///< each term: one id per atom

  size_t Size() const { return terms.size(); }
};

/// Result of grounding a query: the dense ground-tuple table plus one
/// lineage per answer (ordered by answer tuple).
struct LineageResult {
  std::vector<GroundTuple> tuples;
  std::vector<AnswerLineage> answers;

  /// Converts one answer's lineage to a self-contained DNF. Deterministic
  /// (p==1) tuples are dropped from terms — they never affect probability.
  Dnf ToDnf(const AnswerLineage& al) const;

  /// Average number of distinct ground tuples of `atom_idx` per answer term
  /// group, used by the Figure 5l avg[d] analysis.
  double MeanDistinctTuplesOfAtom(const AnswerLineage& al, int atom_idx) const;
};

struct LineageOptions {
  /// Guard against grounding blowup (total satisfying assignments).
  size_t max_total_terms = 50'000'000;
};

/// Grounds q on db: the full lineage of every answer. `overrides` rebinds
/// atoms to filtered tables (pointers must outlive the result's row ids'
/// use).
Result<LineageResult> ComputeLineage(
    const Database& db, const ConjunctiveQuery& q,
    const std::unordered_map<int, const Table*>& overrides = {},
    const LineageOptions& opts = {});

}  // namespace dissodb

#endif  // DISSODB_LINEAGE_LINEAGE_H_
