// Human-readable plan rendering, following the paper's notation:
//   pi_{-y} Join[R(z,x), pi_{-u}(Join[S(x,u), T^{x}(u)])]
// Dissociated leaves print their virtual variables as superscripts (T^{x}).
#ifndef DISSODB_PLAN_PLAN_PRINT_H_
#define DISSODB_PLAN_PLAN_PRINT_H_

#include <string>

#include "src/plan/plan.h"
#include "src/query/cq.h"

namespace dissodb {

/// One-line rendering using the paper's operator notation.
std::string PlanToString(const PlanPtr& plan, const ConjunctiveQuery& q);

/// Multi-line indented rendering; shared (hash-consed) subplans are labeled
/// as views V1, V2, ... at first use and referenced afterwards.
std::string PlanToTreeString(const PlanPtr& plan, const ConjunctiveQuery& q);

}  // namespace dissodb

#endif  // DISSODB_PLAN_PLAN_PRINT_H_
