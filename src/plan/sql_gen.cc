#include "src/plan/sql_gen.h"

#include <unordered_map>

#include "src/common/string_util.h"

namespace dissodb {

namespace {

struct SqlGenerator {
  const ConjunctiveQuery& q;
  const Database& db;
  const SqlGenOptions& opts;

  std::vector<std::string> ctes;
  std::unordered_map<const PlanNode*, std::string> names;  // node -> CTE name
  std::unordered_map<const PlanNode*, VarMask> actual;     // real columns
  int counter = 0;

  std::string VarName(VarId v) { return q.var_name(v); }

  std::string ColumnList(VarMask m) {
    std::vector<std::string> cols;
    for (VarId v : MaskToVars(m)) cols.push_back(VarName(v));
    return cols.empty() ? "1 AS dummy" : Join(cols, ", ");
  }

  /// Emits a CTE for `p` and returns its name; actual[] gets the real
  /// (non-virtual) columns the CTE exposes.
  std::string Emit(const PlanPtr& p) {
    auto it = names.find(p.get());
    if (it != names.end()) return it->second;
    std::string name;
    std::string body;
    switch (p->kind) {
      case PlanNode::Kind::kScan: {
        const Atom& a = q.atom(p->atom_idx);
        int tidx = db.FindTable(a.relation);
        const RelationSchema* schema =
            tidx >= 0 ? &db.table(tidx).schema() : nullptr;
        std::vector<std::string> sel;
        std::vector<std::string> where;
        std::unordered_map<VarId, std::string> first_col;
        for (int i = 0; i < a.arity(); ++i) {
          std::string col = schema ? schema->column_names[i]
                                   : "c" + std::to_string(i);
          const Term& t = a.terms[i];
          if (t.is_var) {
            auto fit = first_col.find(t.var);
            if (fit == first_col.end()) {
              first_col[t.var] = col;
              sel.push_back(col + " AS " + VarName(t.var));
            } else {
              where.push_back(col + " = " + fit->second);
            }
          } else {
            where.push_back(col + " = " + ConstSql(t.constant));
          }
        }
        sel.push_back(opts.prob_column);
        body = "SELECT " + Join(sel, ", ") + " FROM " + a.relation;
        if (!where.empty()) body += " WHERE " + Join(where, " AND ");
        VarMask real = 0;
        for (auto& [v, _] : first_col) real |= MaskOf(v);
        actual[p.get()] = real;
        name = "scan_" + a.relation;
        break;
      }
      case PlanNode::Kind::kProject: {
        std::string child = Emit(p->children[0]);
        VarMask child_real = actual[p->children[0].get()];
        VarMask keep = p->head & child_real;
        actual[p.get()] = keep;
        std::string agg = StrFormat(
            "1.0 - EXP(SUM(LN(GREATEST(%g, 1.0 - %s)))) AS %s",
            opts.ln_guard, opts.prob_column.c_str(), opts.prob_column.c_str());
        if (keep == 0) {
          body = "SELECT " + agg + " FROM " + child;
        } else {
          body = "SELECT " + ColumnList(keep) + ", " + agg + " FROM " + child +
                 " GROUP BY " + ColumnList(keep);
        }
        name = "proj";
        break;
      }
      case PlanNode::Kind::kJoin: {
        std::vector<std::string> childs;
        std::vector<VarMask> reals;
        for (const auto& c : p->children) {
          childs.push_back(Emit(c));
          reals.push_back(actual[c.get()]);
        }
        VarMask all_real = 0;
        for (VarMask r : reals) all_real |= r;
        actual[p.get()] = all_real;
        // SELECT: each real var from the first child exposing it.
        std::vector<std::string> sel;
        for (VarId v : MaskToVars(all_real)) {
          for (size_t i = 0; i < childs.size(); ++i) {
            if (MaskContains(reals[i], v)) {
              sel.push_back(StrFormat("t%zu.%s AS %s", i, VarName(v).c_str(),
                                      VarName(v).c_str()));
              break;
            }
          }
        }
        std::vector<std::string> probs;
        for (size_t i = 0; i < childs.size(); ++i) {
          probs.push_back(StrFormat("t%zu.%s", i, opts.prob_column.c_str()));
        }
        sel.push_back(Join(probs, " * ") + " AS " + opts.prob_column);
        std::vector<std::string> from;
        std::vector<std::string> on;
        VarMask seen = 0;
        for (size_t i = 0; i < childs.size(); ++i) {
          from.push_back(childs[i] + " AS t" + std::to_string(i));
          VarMask shared = reals[i] & seen;
          for (VarId v : MaskToVars(shared)) {
            // Join to the first child exposing v.
            for (size_t j = 0; j < i; ++j) {
              if (MaskContains(reals[j], v)) {
                on.push_back(StrFormat("t%zu.%s = t%zu.%s", i,
                                       VarName(v).c_str(), j,
                                       VarName(v).c_str()));
                break;
              }
            }
          }
          seen |= reals[i];
        }
        body = "SELECT " + Join(sel, ", ") + " FROM " + Join(from, ", ");
        if (!on.empty()) body += " WHERE " + Join(on, " AND ");
        name = "join";
        break;
      }
      case PlanNode::Kind::kMin: {
        std::vector<std::string> childs;
        for (const auto& c : p->children) childs.push_back(Emit(c));
        VarMask real = actual[p->children[0].get()];
        actual[p.get()] = real;
        // All children return the same answer set; join them on the head and
        // take LEAST of the probabilities (Opt. 1's min operator).
        std::vector<std::string> sel;
        for (VarId v : MaskToVars(real)) {
          sel.push_back("t0." + VarName(v) + " AS " + VarName(v));
        }
        std::vector<std::string> probs;
        for (size_t i = 0; i < childs.size(); ++i) {
          probs.push_back(StrFormat("t%zu.%s", i, opts.prob_column.c_str()));
        }
        sel.push_back("LEAST(" + Join(probs, ", ") + ") AS " +
                      opts.prob_column);
        std::vector<std::string> from;
        std::vector<std::string> on;
        for (size_t i = 0; i < childs.size(); ++i) {
          from.push_back(childs[i] + " AS t" + std::to_string(i));
          if (i == 0) continue;
          for (VarId v : MaskToVars(real)) {
            on.push_back(StrFormat("t%zu.%s = t0.%s", i, VarName(v).c_str(),
                                   VarName(v).c_str()));
          }
        }
        body = "SELECT " + Join(sel, ", ") + " FROM " + Join(from, ", ");
        if (!on.empty()) body += " WHERE " + Join(on, " AND ");
        name = "minp";
        break;
      }
    }
    name = StrFormat("%s_%d", name.c_str(), ++counter);
    names[p.get()] = name;
    ctes.push_back(name + " AS (\n  " + body + "\n)");
    return name;
  }

  std::string ConstSql(const Value& v) {
    switch (v.type()) {
      case ValueType::kInt64:
        return std::to_string(v.AsInt64());
      case ValueType::kDouble:
        return StrFormat("%g", v.AsDouble());
      case ValueType::kString:
        return "'" + db.strings().Get(v.AsStringCode()) + "'";
    }
    return "NULL";
  }
};

}  // namespace

std::string PlanToSql(const PlanPtr& plan, const ConjunctiveQuery& q,
                      const Database& db, const SqlGenOptions& opts) {
  SqlGenerator gen{q, db, opts, {}, {}, {}, 0};
  std::string root = gen.Emit(plan);
  std::string out = "WITH\n" + Join(gen.ctes, ",\n") + "\nSELECT * FROM " +
                    root + " ORDER BY " + opts.prob_column + " DESC;";
  return out;
}

}  // namespace dissodb
