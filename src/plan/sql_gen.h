// SQL generation for plans (PostgreSQL dialect).
//
// The paper evaluates dissociation entirely inside a standard relational
// engine by compiling each plan to SQL where joins multiply probabilities and
// projections aggregate them as 1 - prod(1 - p), expressed with
// EXP/SUM/LN. We run plans natively, but emit the equivalent SQL so users
// can inspect plans or port them to an external DBMS.
#ifndef DISSODB_PLAN_SQL_GEN_H_
#define DISSODB_PLAN_SQL_GEN_H_

#include <string>

#include "src/plan/plan.h"
#include "src/query/cq.h"
#include "src/storage/database.h"

namespace dissodb {

/// Options for SQL rendering.
struct SqlGenOptions {
  /// Column name holding the tuple probability in every base relation.
  std::string prob_column = "p";
  /// Epsilon guard inside LN(1-p) so p=1 tuples do not produce -inf.
  double ln_guard = 1e-12;
};

/// Renders `plan` as a SQL query with one CTE per shared subplan (Opt. 2
/// becomes WITH-views). `db` is used only to print column names; pass a
/// database whose catalog contains every relation in the plan.
std::string PlanToSql(const PlanPtr& plan, const ConjunctiveQuery& q,
                      const Database& db, const SqlGenOptions& opts = {});

}  // namespace dissodb

#endif  // DISSODB_PLAN_SQL_GEN_H_
