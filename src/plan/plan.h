// Query plan AST (Definition 4, extended).
//
// Grammar from the paper:  P ::= R(x) | pi_x P | Join[P1..Pk]
// plus two extensions used by the multi-query optimizations of Section 4:
//   Min[P1..Pk]  — per-answer minimum of sub-plan scores (Opt. 1), and
//   DAG sharing  — identical subplans are hash-consed so the evaluator
//                  computes them once (Opt. 2, "views").
//
// Scan leaves may carry *virtual* (dissociated) variables: the relation is
// scanned as-is, but the variables participate in the plan's join structure.
// This realizes Theorem 18: evaluating the plan on the original database
// yields exactly P(q^Delta) without materializing the dissociated instance.
#ifndef DISSODB_PLAN_PLAN_H_
#define DISSODB_PLAN_PLAN_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/query/cq.h"

namespace dissodb {

struct PlanNode;
using PlanPtr = std::shared_ptr<const PlanNode>;

/// \brief One node of a plan DAG.
struct PlanNode {
  enum class Kind { kScan, kProject, kJoin, kMin };

  Kind kind;
  /// Output variables, including virtual (dissociated) ones.
  VarMask head = 0;

  // kScan only:
  int atom_idx = -1;       ///< atom index in the originating query
  VarMask extra_vars = 0;  ///< dissociated variables attached to this leaf

  // kProject (1 child), kJoin / kMin (>= 2 children):
  std::vector<PlanPtr> children;
};

/// Creates a scan leaf for atom `atom_idx` with variables `atom_vars` plus
/// dissociated `extra_vars`; head = atom_vars | extra_vars.
PlanPtr MakeScan(int atom_idx, VarMask atom_vars, VarMask extra_vars = 0);

/// Creates a projection-with-duplicate-elimination onto `head`.
/// `head` must be a subset of the child's head.
PlanPtr MakeProject(VarMask head, PlanPtr child);

/// Creates a natural join; head = union of child heads.
PlanPtr MakeJoin(std::vector<PlanPtr> children);

/// Creates a per-answer minimum over score-equivalent subplans (Opt. 1).
/// All children must share the same head.
PlanPtr MakeMin(std::vector<PlanPtr> children);

/// True iff every join in the plan has children with identical heads
/// (Definition 5), ignoring `head_vars` (the query's head variables act as
/// per-answer constants). Safe plans compute exact probabilities
/// (Proposition 6).
///
/// `det_atoms` (bitmask of atom indices known deterministic) relaxes the
/// join rule for the deterministic refinement: a child whose scans are all
/// deterministic is a probability-1 existence filter, so it may
/// broadcast-join against the common probabilistic head with any subset of
/// it — the plan stays exact. Such children still must not introduce
/// variables outside that head (aggregating a probabilistic subscore once
/// per deterministic row would double-count it).
bool IsSafePlan(const PlanPtr& plan, VarMask head_vars = 0,
                uint64_t det_atoms = 0);

/// Atoms referenced below `plan` (set of atom indices as a bitmask).
uint64_t PlanAtomSet(const PlanPtr& plan);

/// Number of distinct nodes in the DAG and in the expanded tree.
struct PlanSize {
  size_t dag_nodes;
  size_t tree_nodes;
};
PlanSize MeasurePlan(const PlanPtr& plan);

/// Canonical structural key: equal strings iff plans are structurally equal
/// up to join/min child order. Used for deduplication in tests and for
/// hash-consing.
std::string CanonicalKey(const PlanPtr& plan);

/// Query-independent fingerprint for the workload-level result cache
/// (serving layer). Unlike CanonicalKey, scan leaves are rendered through
/// the query: relation name plus the full term pattern (variable ids and
/// constants), so the fingerprint pins down exactly which relation is
/// scanned and which selections apply. Child order is preserved (not
/// sorted): equal fingerprints guarantee the evaluator performs the
/// identical computation and produces a bit-identical Rel on the same
/// database version, which is what makes cached results safe to share
/// across queries. Plans from queries that name the same subexpression
/// with different variable ids fingerprint differently and simply don't
/// share — a sound under-approximation.
///
/// `memo` (keyed by node identity) makes repeated fingerprinting of a DAG
/// linear: the evaluator fingerprints every node it visits, and without
/// memoization each parent would re-render all of its children's strings.
std::string PlanFingerprint(
    const PlanPtr& plan, const ConjunctiveQuery& q,
    std::unordered_map<const PlanNode*, std::string>* memo = nullptr);

}  // namespace dissodb

#endif  // DISSODB_PLAN_PLAN_H_
