#include "src/plan/plan.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <unordered_set>

namespace dissodb {

PlanPtr MakeScan(int atom_idx, VarMask atom_vars, VarMask extra_vars) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanNode::Kind::kScan;
  n->atom_idx = atom_idx;
  n->extra_vars = extra_vars;
  n->head = atom_vars | extra_vars;
  return n;
}

PlanPtr MakeProject(VarMask head, PlanPtr child) {
  assert((head & ~child->head) == 0 && "projection must narrow the head");
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanNode::Kind::kProject;
  n->head = head;
  n->children.push_back(std::move(child));
  return n;
}

PlanPtr MakeJoin(std::vector<PlanPtr> children) {
  assert(children.size() >= 2);
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanNode::Kind::kJoin;
  for (const auto& c : children) n->head |= c->head;
  n->children = std::move(children);
  return n;
}

PlanPtr MakeMin(std::vector<PlanPtr> children) {
  assert(!children.empty());
  if (children.size() == 1) return children[0];
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanNode::Kind::kMin;
  n->head = children[0]->head;
  for ([[maybe_unused]] const auto& c : children) {
    assert(c->head == n->head && "min children must share a head");
  }
  n->children = std::move(children);
  return n;
}

bool IsSafePlan(const PlanPtr& plan, VarMask head_vars, uint64_t det_atoms) {
  switch (plan->kind) {
    case PlanNode::Kind::kScan:
      return true;
    case PlanNode::Kind::kProject:
      return IsSafePlan(plan->children[0], head_vars, det_atoms);
    case PlanNode::Kind::kMin:
      // A min of safe plans is not a single safe plan; report safe only if
      // it degenerates to one child (MakeMin collapses that case).
      return false;
    case PlanNode::Kind::kJoin: {
      // Children carrying probabilistic atoms must agree on one head;
      // fully deterministic children (probability-1 existence filters) may
      // broadcast-join with any subset of it.
      bool have_h = false;
      VarMask h = 0;
      for (const auto& c : plan->children) {
        if (!IsSafePlan(c, head_vars, det_atoms)) return false;
        if ((PlanAtomSet(c) & ~det_atoms) == 0) continue;
        const VarMask ch = c->head & ~head_vars;
        if (!have_h) {
          h = ch;
          have_h = true;
        } else if (ch != h) {
          return false;
        }
      }
      if (!have_h) return true;  // all-deterministic join
      for (const auto& c : plan->children) {
        if ((PlanAtomSet(c) & ~det_atoms) != 0) continue;
        if (((c->head & ~head_vars) & ~h) != 0) return false;
      }
      return true;
    }
  }
  return false;
}

uint64_t PlanAtomSet(const PlanPtr& plan) {
  if (plan->kind == PlanNode::Kind::kScan) {
    return uint64_t{1} << plan->atom_idx;
  }
  uint64_t m = 0;
  for (const auto& c : plan->children) m |= PlanAtomSet(c);
  return m;
}

namespace {
void MeasureRec(const PlanNode* n, std::unordered_set<const PlanNode*>* seen,
                size_t* tree) {
  ++*tree;
  seen->insert(n);
  for (const auto& c : n->children) MeasureRec(c.get(), seen, tree);
}
}  // namespace

PlanSize MeasurePlan(const PlanPtr& plan) {
  std::unordered_set<const PlanNode*> seen;
  size_t tree = 0;
  MeasureRec(plan.get(), &seen, &tree);
  return PlanSize{seen.size(), tree};
}

std::string CanonicalKey(const PlanPtr& plan) {
  switch (plan->kind) {
    case PlanNode::Kind::kScan:
      return "S" + std::to_string(plan->atom_idx) + ":" +
             std::to_string(plan->extra_vars);
    case PlanNode::Kind::kProject:
      return "P" + std::to_string(plan->head) + "(" +
             CanonicalKey(plan->children[0]) + ")";
    case PlanNode::Kind::kJoin:
    case PlanNode::Kind::kMin: {
      std::vector<std::string> keys;
      keys.reserve(plan->children.size());
      for (const auto& c : plan->children) keys.push_back(CanonicalKey(c));
      std::sort(keys.begin(), keys.end());
      std::string out = plan->kind == PlanNode::Kind::kJoin ? "J[" : "M[";
      for (size_t i = 0; i < keys.size(); ++i) {
        if (i > 0) out += ",";
        out += keys[i];
      }
      out += "]";
      return out;
    }
  }
  return "?";
}

std::string PlanFingerprint(
    const PlanPtr& plan, const ConjunctiveQuery& q,
    std::unordered_map<const PlanNode*, std::string>* memo) {
  if (memo != nullptr) {
    auto it = memo->find(plan.get());
    if (it != memo->end()) return it->second;
  }
  std::string out;
  switch (plan->kind) {
    case PlanNode::Kind::kScan: {
      const Atom& atom = q.atom(plan->atom_idx);
      out = "S:" + atom.relation + "(";
      for (int p = 0; p < atom.arity(); ++p) {
        if (p > 0) out += ",";
        const Term& t = atom.terms[p];
        if (t.is_var) {
          out += "v" + std::to_string(t.var);
        } else {
          out += "c" + std::to_string(static_cast<int>(t.constant.type())) +
                 ":" + std::to_string(t.constant.RawBits());
        }
      }
      out += ")";
      if (plan->extra_vars != 0) {
        out += "+" + std::to_string(plan->extra_vars);
      }
      break;
    }
    case PlanNode::Kind::kProject:
      out = "P" + std::to_string(plan->head) + "(" +
            PlanFingerprint(plan->children[0], q, memo) + ")";
      break;
    case PlanNode::Kind::kJoin:
    case PlanNode::Kind::kMin: {
      out = plan->kind == PlanNode::Kind::kJoin ? "J[" : "M[";
      for (size_t i = 0; i < plan->children.size(); ++i) {
        if (i > 0) out += ",";
        out += PlanFingerprint(plan->children[i], q, memo);
      }
      out += "]";
      break;
    }
  }
  if (memo != nullptr) memo->emplace(plan.get(), out);
  return out;
}

}  // namespace dissodb
