#include "src/plan/plan_print.h"

#include <unordered_map>

#include "src/common/string_util.h"

namespace dissodb {

namespace {

std::string VarList(VarMask m, const ConjunctiveQuery& q) {
  std::vector<std::string> names;
  for (VarId v : MaskToVars(m)) names.push_back(q.var_name(v));
  return Join(names, ",");
}

std::string ScanString(const PlanNode& n, const ConjunctiveQuery& q) {
  const Atom& a = q.atom(n.atom_idx);
  std::string out = a.relation;
  if (n.extra_vars != 0) out += "^{" + VarList(n.extra_vars, q) + "}";
  out += "(";
  for (int i = 0; i < a.arity(); ++i) {
    if (i > 0) out += ",";
    out += a.terms[i].is_var ? q.var_name(a.terms[i].var)
                             : a.terms[i].constant.ToString();
  }
  if (n.extra_vars != 0) out += " | " + VarList(n.extra_vars, q);
  out += ")";
  return out;
}

std::string ToStringRec(const PlanPtr& p, const ConjunctiveQuery& q) {
  switch (p->kind) {
    case PlanNode::Kind::kScan:
      return ScanString(*p, q);
    case PlanNode::Kind::kProject: {
      VarMask away = p->children[0]->head & ~p->head;
      return "pi_{-" + VarList(away, q) + "}(" +
             ToStringRec(p->children[0], q) + ")";
    }
    case PlanNode::Kind::kJoin:
    case PlanNode::Kind::kMin: {
      std::string out = p->kind == PlanNode::Kind::kJoin ? "Join[" : "Min[";
      for (size_t i = 0; i < p->children.size(); ++i) {
        if (i > 0) out += ", ";
        out += ToStringRec(p->children[i], q);
      }
      out += "]";
      return out;
    }
  }
  return "?";
}

struct TreePrinter {
  const ConjunctiveQuery& q;
  std::unordered_map<const PlanNode*, int> view_ids;
  std::unordered_map<const PlanNode*, int> use_count;
  std::string out;

  void CountUses(const PlanNode* n) {
    if (++use_count[n] > 1) return;
    for (const auto& c : n->children) CountUses(c.get());
  }

  void Print(const PlanPtr& p, int indent) {
    std::string pad(static_cast<size_t>(indent) * 2, ' ');
    auto it = view_ids.find(p.get());
    if (it != view_ids.end()) {
      out += pad + "V" + std::to_string(it->second) + "  (shared)\n";
      return;
    }
    std::string label;
    switch (p->kind) {
      case PlanNode::Kind::kScan:
        label = ScanString(*p, q);
        break;
      case PlanNode::Kind::kProject:
        label = "pi[" + VarList(p->head, q) + "]";
        break;
      case PlanNode::Kind::kJoin:
        label = "join[" + VarList(p->head, q) + "]";
        break;
      case PlanNode::Kind::kMin:
        label = "min[" + VarList(p->head, q) + "]";
        break;
    }
    if (use_count[p.get()] > 1 && p->kind != PlanNode::Kind::kScan) {
      int id = static_cast<int>(view_ids.size()) + 1;
      view_ids[p.get()] = id;
      label = "V" + std::to_string(id) + " := " + label;
    }
    out += pad + label + "\n";
    for (const auto& c : p->children) Print(c, indent + 1);
  }
};

}  // namespace

std::string PlanToString(const PlanPtr& plan, const ConjunctiveQuery& q) {
  return ToStringRec(plan, q);
}

std::string PlanToTreeString(const PlanPtr& plan, const ConjunctiveQuery& q) {
  TreePrinter tp{q, {}, {}, {}};
  tp.CountUses(plan.get());
  tp.Print(plan, 0);
  return tp.out;
}

}  // namespace dissodb
