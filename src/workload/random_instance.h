// Random query / random instance generators for property-based testing.
//
// These drive the project's strongest correctness checks: on random small
// instances, every plan score must upper-bound the exact probability
// (Corollary 19), the propagation score must equal the brute-force minimum
// over all safe dissociations (Definition 14), and all optimization
// combinations must agree.
#ifndef DISSODB_WORKLOAD_RANDOM_INSTANCE_H_
#define DISSODB_WORKLOAD_RANDOM_INSTANCE_H_

#include "src/common/rng.h"
#include "src/query/cq.h"
#include "src/storage/database.h"

namespace dissodb {

struct RandomQuerySpec {
  int min_atoms = 1;
  int max_atoms = 4;
  int max_vars = 5;
  int max_arity = 3;
  double head_var_prob = 0.2;   ///< chance a variable becomes a head var
  double constant_prob = 0.05;  ///< chance an atom position is a constant
};

/// Draws a random self-join-free CQ with relations Rel0..Rel{m-1}.
/// Every atom has at least one variable position.
ConjunctiveQuery RandomQuery(Rng* rng, const RandomQuerySpec& spec = {});

struct RandomInstanceSpec {
  size_t max_rows = 4;          ///< tuples per relation: 1..max_rows
  int64_t domain = 3;           ///< values ~ U[1, domain]
  double pi_max = 0.9;
  double deterministic_prob = 0.0;  ///< chance a relation is deterministic
};

/// Builds a database whose catalog matches the query's atoms.
Database RandomDatabaseFor(const ConjunctiveQuery& q, Rng* rng,
                           const RandomInstanceSpec& spec = {});

}  // namespace dissodb

#endif  // DISSODB_WORKLOAD_RANDOM_INSTANCE_H_
