#include "src/workload/synthetic.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "src/common/hash.h"
#include "src/common/rng.h"

namespace dissodb {

int64_t TuneChainDomain(int k, size_t n, size_t target_answers) {
  if (k < 2) return std::max<int64_t>(2, static_cast<int64_t>(n));
  double nn = static_cast<double>(n);
  double t = std::max<double>(1.0, static_cast<double>(target_answers));
  double N = nn * std::pow(nn / t, 1.0 / (k - 1));
  return std::max<int64_t>(2, static_cast<int64_t>(std::llround(N)));
}

Database MakeChainDatabase(const ChainSpec& spec) {
  Database db;
  Rng rng(spec.seed);
  int64_t N = spec.domain > 0 ? spec.domain
                              : TuneChainDomain(spec.k, spec.n,
                                                spec.target_answers);
  for (int i = 1; i <= spec.k; ++i) {
    RelationSchema s = RelationSchema::AllInt64("R" + std::to_string(i), 2);
    Table t(s);
    // Set semantics: resample on (rare) duplicate rows, give up after a few
    // attempts (only matters when n approaches N^2).
    std::unordered_set<uint64_t> seen;
    for (size_t r = 0; r < spec.n; ++r) {
      for (int attempt = 0; attempt < 16; ++attempt) {
        int64_t a = rng.NextInt(1, N), b = rng.NextInt(1, N);
        uint64_t key = static_cast<uint64_t>(a) * 0x1000003ULL +
                       static_cast<uint64_t>(b);
        if (!seen.insert(key).second) continue;
        t.AddRow({Value::Int64(a), Value::Int64(b)},
                 rng.NextDouble() * spec.pi_max);
        break;
      }
    }
    auto res = db.AddTable(std::move(t));
    (void)res;
  }
  return db;
}

ConjunctiveQuery MakeChainQuery(int k) {
  ConjunctiveQuery q;
  q.SetName("chain" + std::to_string(k));
  std::vector<VarId> x;
  for (int i = 0; i <= k; ++i) x.push_back(q.AddVar("x" + std::to_string(i)));
  Status st = q.AddHeadVar(x[0]);
  st = q.AddHeadVar(x[k]);
  for (int i = 1; i <= k; ++i) {
    Atom a;
    a.relation = "R" + std::to_string(i);
    a.terms = {Term::Var(x[i - 1]), Term::Var(x[i])};
    st = q.AddAtom(std::move(a));
  }
  (void)st;
  return q;
}

int64_t TuneStarDomain(int k, size_t n, size_t target_matches) {
  double nn = static_cast<double>(n);
  double t = std::max<double>(1.0, static_cast<double>(target_matches));
  double N = nn * std::pow(nn / t, 1.0 / std::max(k, 1));
  return std::max<int64_t>(2, static_cast<int64_t>(std::llround(N)));
}

Database MakeStarDatabase(const StarSpec& spec) {
  Database db;
  Rng rng(spec.seed);
  int64_t N = spec.domain > 0
                  ? spec.domain
                  : TuneStarDomain(spec.k, spec.n, spec.target_matches);
  for (int i = 1; i <= spec.k; ++i) {
    RelationSchema s = RelationSchema::AllInt64("R" + std::to_string(i), 1);
    Table t(s);
    std::unordered_set<int64_t> seen;
    for (size_t r = 0; r < spec.n; ++r) {
      for (int attempt = 0; attempt < 16; ++attempt) {
        int64_t v = rng.NextInt(1, N);
        if (!seen.insert(v).second) continue;
        t.AddRow({Value::Int64(v)}, rng.NextDouble() * spec.pi_max);
        break;
      }
    }
    auto res = db.AddTable(std::move(t));
    (void)res;
  }
  {
    RelationSchema s = RelationSchema::AllInt64("R0", spec.k);
    Table t(s);
    std::vector<Value> row(spec.k);
    std::unordered_set<size_t> seen;
    for (size_t r = 0; r < spec.n; ++r) {
      for (int attempt = 0; attempt < 16; ++attempt) {
        size_t h = 0xabc;
        for (int c = 0; c < spec.k; ++c) {
          row[c] = Value::Int64(rng.NextInt(1, N));
          HashCombine(&h, row[c].Hash());
        }
        if (!seen.insert(h).second) continue;
        t.AddRow(row, rng.NextDouble() * spec.pi_max);
        break;
      }
    }
    auto res = db.AddTable(std::move(t));
    (void)res;
  }
  return db;
}

ConjunctiveQuery MakeStarQuery(int k) {
  ConjunctiveQuery q;
  q.SetName("star" + std::to_string(k));
  std::vector<VarId> x;
  for (int i = 1; i <= k; ++i) x.push_back(q.AddVar("x" + std::to_string(i)));
  Status st;
  for (int i = 1; i <= k; ++i) {
    Atom a;
    a.relation = "R" + std::to_string(i);
    a.terms = {Term::Var(x[i - 1])};
    st = q.AddAtom(std::move(a));
  }
  Atom hub;
  hub.relation = "R0";
  for (int i = 0; i < k; ++i) hub.terms.push_back(Term::Var(x[i]));
  st = q.AddAtom(std::move(hub));
  (void)st;
  return q;
}

void AssignUniformProbabilities(Database* db, double pi_max, uint64_t seed) {
  Rng rng(seed);
  Database::Writer w = db->BeginWrite();
  for (int i = 0; i < w.NumTables(); ++i) {
    if (w.table(i).schema().deterministic) continue;
    Table* t = w.mutable_table(i);
    for (size_t r = 0; r < t->NumRows(); ++r) {
      t->SetProb(r, rng.NextDouble() * pi_max);
    }
  }
  w.Commit();
}

void AssignConstantProbabilities(Database* db, double pi) {
  Database::Writer w = db->BeginWrite();
  for (int i = 0; i < w.NumTables(); ++i) {
    if (w.table(i).schema().deterministic) continue;
    Table* t = w.mutable_table(i);
    for (size_t r = 0; r < t->NumRows(); ++r) t->SetProb(r, pi);
  }
  w.Commit();
}

}  // namespace dissodb
