// Synthetic k-chain and k-star workloads (Setup 2 of Section 5), plus
// probability-assignment helpers shared by all experiments.
#ifndef DISSODB_WORKLOAD_SYNTHETIC_H_
#define DISSODB_WORKLOAD_SYNTHETIC_H_

#include <cstdint>

#include "src/common/status.h"
#include "src/query/cq.h"
#include "src/storage/database.h"

namespace dissodb {

// ---------------------------------------------------------------------------
// k-chain:  q(x0,xk) :- R1(x0,x1), R2(x1,x2), ..., Rk(x_{k-1},xk)
// ---------------------------------------------------------------------------

struct ChainSpec {
  int k = 4;            ///< number of relations
  size_t n = 1000;      ///< tuples per relation
  int64_t domain = 0;   ///< 0 = auto-tune for ~`target_answers`
  size_t target_answers = 30;
  uint64_t seed = 1;
  double pi_max = 0.5;  ///< probabilities ~ U[0, pi_max]
};

/// Domain size N with expected #satisfying assignments ~= target
/// (n * (n/N)^(k-1) = target  =>  N = n * (n/target)^(1/(k-1))).
int64_t TuneChainDomain(int k, size_t n, size_t target_answers);

Database MakeChainDatabase(const ChainSpec& spec);
ConjunctiveQuery MakeChainQuery(int k);

// ---------------------------------------------------------------------------
// k-star:  q() :- R1(x1), ..., Rk(xk), R0(x1,...,xk)
// ---------------------------------------------------------------------------

struct StarSpec {
  int k = 2;            ///< number of unary "petal" relations
  size_t n = 1000;      ///< tuples per relation (including R0)
  int64_t domain = 0;   ///< 0 = auto-tune
  size_t target_matches = 30;
  uint64_t seed = 2;
  double pi_max = 0.5;
};

/// Domain size with expected #satisfying assignments ~= target
/// (n * (n/N)^k = target).
int64_t TuneStarDomain(int k, size_t n, size_t target_matches);

Database MakeStarDatabase(const StarSpec& spec);
ConjunctiveQuery MakeStarQuery(int k);

// ---------------------------------------------------------------------------
// Probability assignment
// ---------------------------------------------------------------------------

/// Assigns each probabilistic tuple a fresh U[0, pi_max] probability.
void AssignUniformProbabilities(Database* db, double pi_max, uint64_t seed);

/// Sets every probabilistic tuple's probability to `pi`.
void AssignConstantProbabilities(Database* db, double pi);

}  // namespace dissodb

#endif  // DISSODB_WORKLOAD_SYNTHETIC_H_
