// TPC-H-style probabilistic workload (Setup 1 of Section 5).
//
// Substitutes for DBGEN: same cardinality ratios (Supplier : Partsupp : Part
// = 10k : 800k : 200k at scale 1), TPC-H color vocabulary for p_name (so the
// paper's LIKE patterns '%red%green%', '%red%', '%' select comparable
// fractions), 25 nations, 4 suppliers per part via the TPC-H assignment
// formula, and a uniform-random probability column.
#ifndef DISSODB_WORKLOAD_TPCH_H_
#define DISSODB_WORKLOAD_TPCH_H_

#include <string>
#include <unordered_map>

#include "src/common/status.h"
#include "src/query/cq.h"
#include "src/storage/database.h"

namespace dissodb {

struct TpchOptions {
  double scale = 0.1;     ///< 1.0 = the paper's 1GB-equivalent cardinalities
  uint64_t seed = 42;     ///< probability & nation assignment seed
  double pi_max = 0.5;    ///< tuple probabilities ~ U[0, pi_max]
};

/// Builds Supplier(suppkey, nationkey), Partsupp(suppkey, partkey),
/// Part(partkey, name) with probabilities.
Database MakeTpchDatabase(const TpchOptions& opts = {});

/// The paper's query:
///   Q(a) :- Supplier(s,a), Partsupp(s,u), Part(u,m)
/// (select distinct s_nationkey ... where s_suppkey <= $1 and p_name like $2
/// — the selections are applied via MakeTpchSelections). Atom order:
/// 0 = Supplier, 1 = Partsupp, 2 = Part.
ConjunctiveQuery TpchQuery();

/// Owns the filtered tables for parameters $1 (suppkey bound) and $2
/// (name LIKE pattern) and exposes them as atom overrides.
struct TpchSelections {
  Table supplier;
  Table part;
  std::unordered_map<int, const Table*> overrides;

  TpchSelections(Table s, Table p) : supplier(std::move(s)), part(std::move(p)) {
    overrides[0] = &supplier;
    overrides[2] = &part;
  }
  TpchSelections(const TpchSelections&) = delete;
  TpchSelections& operator=(const TpchSelections&) = delete;
};

/// Applies s_suppkey <= dollar1 and p_name LIKE dollar2.
Result<std::unique_ptr<TpchSelections>> MakeTpchSelections(
    const Database& db, int64_t dollar1, const std::string& dollar2);

/// The 92 TPC-H color words (exposed for tests).
const std::vector<std::string>& TpchColorWords();

}  // namespace dissodb

#endif  // DISSODB_WORKLOAD_TPCH_H_
