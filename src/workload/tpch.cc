#include "src/workload/tpch.h"

#include <algorithm>
#include <memory>

#include "src/common/rng.h"
#include "src/common/string_util.h"

namespace dissodb {

const std::vector<std::string>& TpchColorWords() {
  static const std::vector<std::string> kColors = {
      "almond",     "antique",    "aquamarine", "azure",      "beige",
      "bisque",     "black",      "blanched",   "blue",       "blush",
      "brown",      "burlywood",  "burnished",  "chartreuse", "chiffon",
      "chocolate",  "coral",      "cornflower", "cornsilk",   "cream",
      "cyan",       "dark",       "deep",       "dim",        "dodger",
      "drab",       "firebrick",  "floral",     "forest",     "frosted",
      "gainsboro",  "ghost",      "goldenrod",  "green",      "grey",
      "honeydew",   "hot",        "indian",     "ivory",      "khaki",
      "lace",       "lavender",   "lawn",       "lemon",      "light",
      "lime",       "linen",      "magenta",    "maroon",     "medium",
      "metallic",   "midnight",   "mint",       "misty",      "moccasin",
      "navajo",     "navy",       "olive",      "orange",     "orchid",
      "pale",       "papaya",     "peach",      "peru",       "pink",
      "plum",       "powder",     "puff",       "purple",     "red",
      "rose",       "rosy",       "royal",      "saddle",     "salmon",
      "sandy",      "seashell",   "sienna",     "sky",        "slate",
      "smoke",      "snow",       "spring",     "steel",      "tan",
      "thistle",    "tomato",     "turquoise",  "violet",     "wheat",
      "white",      "yellow"};
  return kColors;
}

Database MakeTpchDatabase(const TpchOptions& opts) {
  Database db;
  Rng rng(opts.seed);

  const int64_t num_suppliers =
      std::max<int64_t>(4, static_cast<int64_t>(10000 * opts.scale));
  const int64_t num_parts =
      std::max<int64_t>(4, static_cast<int64_t>(200000 * opts.scale));
  const auto& colors = TpchColorWords();

  // Supplier(suppkey INT64, nationkey INT64).
  {
    RelationSchema s;
    s.name = "Supplier";
    s.column_names = {"s_suppkey", "s_nationkey"};
    s.column_types = {ValueType::kInt64, ValueType::kInt64};
    Table t(s);
    for (int64_t k = 1; k <= num_suppliers; ++k) {
      t.AddRow({Value::Int64(k), Value::Int64(rng.NextInt(0, 24))},
               rng.NextDouble() * opts.pi_max);
    }
    auto r = db.AddTable(std::move(t));
    (void)r;
  }
  // Part(partkey INT64, name STRING): five distinct color words.
  {
    RelationSchema s;
    s.name = "Part";
    s.column_names = {"p_partkey", "p_name"};
    s.column_types = {ValueType::kInt64, ValueType::kString};
    Table t(s);
    for (int64_t k = 1; k <= num_parts; ++k) {
      // Sample 5 distinct color indices.
      int idx[5];
      int chosen = 0;
      while (chosen < 5) {
        int c = static_cast<int>(rng.NextBounded(colors.size()));
        bool dup = false;
        for (int j = 0; j < chosen; ++j) dup |= idx[j] == c;
        if (!dup) idx[chosen++] = c;
      }
      std::string name = colors[idx[0]];
      for (int j = 1; j < 5; ++j) name += " " + colors[idx[j]];
      t.AddRow({Value::Int64(k), db.Str(name)}, rng.NextDouble() * opts.pi_max);
    }
    auto r = db.AddTable(std::move(t));
    (void)r;
  }
  // Partsupp(suppkey INT64, partkey INT64): 4 suppliers per part using the
  // TPC-H supplier-assignment formula.
  {
    RelationSchema s;
    s.name = "Partsupp";
    s.column_names = {"ps_suppkey", "ps_partkey"};
    s.column_types = {ValueType::kInt64, ValueType::kInt64};
    Table t(s);
    const int64_t S = num_suppliers;
    for (int64_t p = 1; p <= num_parts; ++p) {
      int64_t supps[4];
      int n_supps = 0;
      for (int64_t i = 0; i < 4; ++i) {
        // TPC-H supplier-assignment formula; at tiny scale factors the four
        // assignments can collide, and a probabilistic DB is a set of
        // tuples, so duplicates are skipped.
        int64_t supp = (p + i * (S / 4 + (p - 1) / S)) % S + 1;
        bool dup = false;
        for (int j = 0; j < n_supps; ++j) dup |= supps[j] == supp;
        if (dup) continue;
        supps[n_supps++] = supp;
        t.AddRow({Value::Int64(supp), Value::Int64(p)},
                 rng.NextDouble() * opts.pi_max);
      }
    }
    auto r = db.AddTable(std::move(t));
    (void)r;
  }
  return db;
}

ConjunctiveQuery TpchQuery() {
  ConjunctiveQuery q;
  q.SetName("Q");
  VarId s = q.AddVar("s");
  VarId a = q.AddVar("a");
  VarId u = q.AddVar("u");
  VarId m = q.AddVar("m");
  Status st = q.AddHeadVar(a);
  Atom supplier;
  supplier.relation = "Supplier";
  supplier.terms = {Term::Var(s), Term::Var(a)};
  st = q.AddAtom(supplier);
  Atom partsupp;
  partsupp.relation = "Partsupp";
  partsupp.terms = {Term::Var(s), Term::Var(u)};
  st = q.AddAtom(partsupp);
  Atom part;
  part.relation = "Part";
  part.terms = {Term::Var(u), Term::Var(m)};
  st = q.AddAtom(part);
  (void)st;
  return q;
}

Result<std::unique_ptr<TpchSelections>> MakeTpchSelections(
    const Database& db, int64_t dollar1, const std::string& dollar2) {
  auto supplier = db.GetTable("Supplier");
  if (!supplier.ok()) return supplier.status();
  auto part = db.GetTable("Part");
  if (!part.ok()) return part.status();

  Table s = (*supplier)->Filter([&](std::span<const Value> row) {
    return row[0].AsInt64() <= dollar1;
  });
  const StringPool& pool = db.strings();
  Table p = (*part)->Filter([&](std::span<const Value> row) {
    return LikeMatch(pool.Get(row[1].AsStringCode()), dollar2);
  });
  return std::make_unique<TpchSelections>(std::move(s), std::move(p));
}

}  // namespace dissodb
