#include "src/workload/random_instance.h"

#include <algorithm>
#include <unordered_set>

#include "src/common/hash.h"

namespace dissodb {

ConjunctiveQuery RandomQuery(Rng* rng, const RandomQuerySpec& spec) {
  ConjunctiveQuery q;
  q.SetName("rq");
  const int num_atoms = static_cast<int>(
      rng->NextInt(spec.min_atoms, spec.max_atoms));
  const int num_vars =
      static_cast<int>(rng->NextInt(1, std::max(1, spec.max_vars)));
  std::vector<VarId> vars;
  for (int v = 0; v < num_vars; ++v) {
    vars.push_back(q.AddVar("v" + std::to_string(v)));
  }
  for (int i = 0; i < num_atoms; ++i) {
    Atom a;
    a.relation = "Rel" + std::to_string(i);
    const int arity = static_cast<int>(rng->NextInt(1, spec.max_arity));
    bool has_var = false;
    for (int p = 0; p < arity; ++p) {
      const bool last = p == arity - 1;
      if (!(last && !has_var) && rng->NextDouble() < spec.constant_prob) {
        a.terms.push_back(Term::Const(Value::Int64(rng->NextInt(1, 3))));
      } else {
        a.terms.push_back(
            Term::Var(vars[rng->NextBounded(vars.size())]));
        has_var = true;
      }
    }
    Status st = q.AddAtom(std::move(a));
    (void)st;
  }
  // Head variables: random subset of variables that occur in the body.
  VarMask body = q.AllVarsMask();
  for (VarId v : MaskToVars(body)) {
    if (rng->NextDouble() < spec.head_var_prob) {
      Status st = q.AddHeadVar(v);
      (void)st;
    }
  }
  return q;
}

Database RandomDatabaseFor(const ConjunctiveQuery& q, Rng* rng,
                           const RandomInstanceSpec& spec) {
  Database db;
  for (int i = 0; i < q.num_atoms(); ++i) {
    const Atom& a = q.atom(i);
    RelationSchema s = RelationSchema::AllInt64(a.relation, a.arity());
    s.deterministic = rng->NextDouble() < spec.deterministic_prob;
    Table t(s);
    const size_t rows = 1 + rng->NextBounded(spec.max_rows);
    std::vector<Value> row(a.arity());
    // Probabilistic databases are SETS of tuples: skip duplicate rows.
    std::unordered_set<size_t> seen;
    for (size_t r = 0; r < rows; ++r) {
      for (int c = 0; c < a.arity(); ++c) {
        row[c] = Value::Int64(rng->NextInt(1, spec.domain));
      }
      size_t h = 0x1234;
      for (const Value& v : row) HashCombine(&h, v.Hash());
      if (!seen.insert(h).second) continue;
      t.AddRow(row, rng->NextDouble() * spec.pi_max);
    }
    auto res = db.AddTable(std::move(t));
    (void)res;
  }
  return db;
}

}  // namespace dissodb
