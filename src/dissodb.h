// DissoDB — approximate lifted inference with probabilistic databases.
//
// Umbrella header exposing the full public API. See README.md for a
// quickstart and DESIGN.md for the architecture.
#ifndef DISSODB_DISSODB_H_
#define DISSODB_DISSODB_H_

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/string_util.h"
#include "src/common/timer.h"
#include "src/common/value.h"
#include "src/dissociation/counting.h"
#include "src/dissociation/dissociation.h"
#include "src/dissociation/lattice.h"
#include "src/dissociation/minimal_plans.h"
#include "src/dissociation/propagation.h"
#include "src/dissociation/single_plan.h"
#include "src/engine/query_engine.h"
#include "src/exec/deterministic.h"
#include "src/exec/evaluator.h"
#include "src/exec/operators.h"
#include "src/exec/ranking.h"
#include "src/exec/rel.h"
#include "src/exec/semijoin.h"
#include "src/infer/exact.h"
#include "src/infer/mc.h"
#include "src/infer/query_inference.h"
#include "src/lineage/formula.h"
#include "src/lineage/lineage.h"
#include "src/metrics/ap.h"
#include "src/plan/plan.h"
#include "src/plan/plan_print.h"
#include "src/plan/sql_gen.h"
#include "src/query/analysis.h"
#include "src/query/cq.h"
#include "src/query/cuts.h"
#include "src/query/parser.h"
#include "src/serve/result_cache.h"
#include "src/serve/scheduler.h"
#include "src/storage/columnar.h"
#include "src/storage/database.h"
#include "src/storage/schema.h"
#include "src/storage/table.h"
#include "src/workload/random_instance.h"
#include "src/workload/synthetic.h"
#include "src/workload/tpch.h"

#endif  // DISSODB_DISSODB_H_
