#include "src/obs/metrics.h"

#include <algorithm>
#include <bit>
#include <chrono>

namespace dissodb {
namespace obs {

unsigned ThreadIndex() {
  static std::atomic<unsigned> next{0};
  thread_local unsigned idx =
      next.fetch_add(1, std::memory_order_relaxed);
  return idx;
}

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

unsigned Histogram::BucketIndex(uint64_t value) {
  if (value < 16) return static_cast<unsigned>(value);
  // Octave o = position of the leading bit (>= 4); the two bits below it
  // pick one of 4 linear sub-buckets.
  const unsigned o = 63 - static_cast<unsigned>(std::countl_zero(value));
  const unsigned sub = static_cast<unsigned>((value >> (o - 2)) & 3);
  const unsigned idx = 16 + (o - 4) * 4 + sub;
  return idx < kBuckets ? idx : kBuckets - 1;
}

uint64_t Histogram::BucketLowerBound(unsigned idx) {
  if (idx < 16) return idx;
  const unsigned o = 4 + (idx - 16) / 4;
  const unsigned sub = (idx - 16) % 4;
  return (uint64_t{1} << o) + uint64_t{sub} * (uint64_t{1} << (o - 2));
}

uint64_t Histogram::BucketUpperBound(unsigned idx) {
  if (idx + 1 >= kBuckets) return ~uint64_t{0};
  return BucketLowerBound(idx + 1);
}

void Histogram::Record(uint64_t value) {
  Shard& s = shards_[ThreadIndex() & (kShards - 1)];
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(value, std::memory_order_relaxed);
  s.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  uint64_t prev = s.max.load(std::memory_order_relaxed);
  while (prev < value &&
         !s.max.compare_exchange_weak(prev, value,
                                      std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot out;
  out.buckets.assign(kBuckets, 0);
  for (const Shard& s : shards_) {
    out.count += s.count.load(std::memory_order_relaxed);
    out.sum += s.sum.load(std::memory_order_relaxed);
    const uint64_t m = s.max.load(std::memory_order_relaxed);
    if (m > out.max) out.max = m;
    for (unsigned b = 0; b < kBuckets; ++b) {
      out.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  if (q >= 1.0) return static_cast<double>(max);
  if (q < 0.0) q = 0.0;
  // Rank of the target sample (1-based), then walk the buckets and
  // interpolate linearly inside the one containing it.
  const double rank = q * static_cast<double>(count - 1) + 1.0;
  uint64_t seen = 0;
  for (unsigned b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    const uint64_t lo_rank = seen + 1;
    seen += buckets[b];
    if (rank <= static_cast<double>(seen)) {
      const double lo = static_cast<double>(Histogram::BucketLowerBound(b));
      double hi = static_cast<double>(Histogram::BucketUpperBound(b));
      // The top bucket's nominal bound is 2^64; the observed max is tighter.
      hi = std::min(hi, static_cast<double>(max) + 1.0);
      if (hi <= lo) return lo;
      const double frac =
          buckets[b] <= 1
              ? 0.0
              : (rank - static_cast<double>(lo_rank)) /
                    static_cast<double>(buckets[b] - 1);
      return lo + (hi - 1.0 - lo) * frac;
    }
  }
  return static_cast<double>(max);
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mu_);
  std::string key(name);
  auto it = counter_by_name_.find(key);
  if (it != counter_by_name_.end()) return it->second;
  Counter* c = &counters_.emplace_back();
  counter_by_name_.emplace(key, c);
  counter_order_.emplace_back(std::move(key), c);
  return c;
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mu_);
  std::string key(name);
  auto it = gauge_by_name_.find(key);
  if (it != gauge_by_name_.end()) return it->second;
  Gauge* g = &gauges_.emplace_back();
  gauge_by_name_.emplace(key, g);
  gauge_order_.emplace_back(std::move(key), g);
  return g;
}

Histogram* MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard lock(mu_);
  std::string key(name);
  auto it = histogram_by_name_.find(key);
  if (it != histogram_by_name_.end()) return it->second;
  Histogram* h = &histograms_.emplace_back();
  histogram_by_name_.emplace(key, h);
  histogram_order_.emplace_back(std::move(key), h);
  return h;
}

namespace {

std::string PromName(const std::string& name) {
  std::string out = "dissodb_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::PrometheusText() const {
  // Copy the ordered handle lists under the lock, then read the (atomic)
  // metric values outside it.
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Gauge*>> gauges;
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  {
    std::lock_guard lock(mu_);
    counters = counter_order_;
    gauges = gauge_order_;
    histograms = histogram_order_;
  }
  std::string out;
  for (const auto& [name, c] : counters) {
    const std::string pn = PromName(name);
    out += "# TYPE " + pn + " counter\n";
    out += pn + " " + std::to_string(c->Value()) + "\n";
  }
  for (const auto& [name, g] : gauges) {
    const std::string pn = PromName(name);
    out += "# TYPE " + pn + " gauge\n";
    out += pn + " " + std::to_string(g->Value()) + "\n";
  }
  for (const auto& [name, h] : histograms) {
    const std::string pn = PromName(name);
    const HistogramSnapshot s = h->Snapshot();
    out += "# TYPE " + pn + " histogram\n";
    uint64_t cumulative = 0;
    for (unsigned b = 0; b < s.buckets.size(); ++b) {
      if (s.buckets[b] == 0) continue;
      cumulative += s.buckets[b];
      out += pn + "_bucket{le=\"" +
             std::to_string(Histogram::BucketUpperBound(b)) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += pn + "_bucket{le=\"+Inf\"} " + std::to_string(s.count) + "\n";
    out += pn + "_sum " + std::to_string(s.sum) + "\n";
    out += pn + "_count " + std::to_string(s.count) + "\n";
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* global = new MetricsRegistry();
  return *global;
}

}  // namespace obs
}  // namespace dissodb
