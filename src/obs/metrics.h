// Process- and engine-level metrics: named counters, gauges, and
// log-bucketed latency histograms, cheap enough for morsel-level use.
//
// Write path: every metric is sharded into cache-line-padded cells indexed
// by a per-thread slot (obs::ThreadIndex()), so concurrent increments from
// pool workers never contend on one cache line — a counter Add is a single
// relaxed fetch_add on a thread-private-ish cell. Reads aggregate the
// shards, so Value()/Snapshot() are O(shards) and intended for stats
// assembly, dashboards, and test assertions, not hot paths.
//
// Histograms are log-bucketed (exact below 16, then 4 sub-buckets per
// power of two, 256 buckets total): enough resolution for p50/p95/p99 of
// latencies spanning nanoseconds to minutes at a fixed, tiny footprint.
//
// Export: MetricsRegistry::PrometheusText() renders every registered
// metric in the Prometheus text exposition format (counters, gauges, and
// cumulative-`le` histogram series with _count/_sum), names sanitized to
// [a-zA-Z0-9_:] with a "dissodb_" prefix.
//
// Registries are independent (each QueryEngine owns one; tests construct
// their own); MetricsRegistry::Global() offers a process-wide default.
// Metric handles returned by counter()/gauge()/histogram() are stable for
// the registry's lifetime — look them up once and keep the pointer.
#ifndef DISSODB_OBS_METRICS_H_
#define DISSODB_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dissodb {
namespace obs {

/// Small dense per-thread slot (assigned on first use, round-robin over
/// the shard count). Shared by every sharded metric and by trace spans,
/// which use it as the Perfetto track id.
unsigned ThreadIndex();

/// Shards per metric: threads hash onto these. A power of two.
inline constexpr unsigned kShards = 16;

namespace internal {
struct alignas(64) ShardCell {
  std::atomic<uint64_t> v{0};
};
}  // namespace internal

/// Monotonic counter.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    cells_[ThreadIndex() & (kShards - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  internal::ShardCell cells_[kShards];
};

/// Last-writer-wins signed gauge with relative updates (pool utilization,
/// entry counts). Not sharded: Set and Add must observe one value.
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Aggregated view of a histogram at one point in time.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  /// Per-bucket counts (see Histogram::BucketLowerBound for the ranges).
  std::vector<uint64_t> buckets;

  /// Quantile estimate by bucket interpolation; q in [0, 1]. Returns 0 for
  /// an empty histogram; q >= 1 returns the exact max.
  double Quantile(double q) const;
  double p50() const { return Quantile(0.50); }
  double p95() const { return Quantile(0.95); }
  double p99() const { return Quantile(0.99); }
  double Mean() const { return count ? static_cast<double>(sum) / count : 0; }
};

/// Log-bucketed histogram of non-negative integer samples (typically
/// nanoseconds). Recording is two relaxed atomic adds plus a max update on
/// a sharded cell block.
class Histogram {
 public:
  static constexpr unsigned kBuckets = 256;

  void Record(uint64_t value);
  HistogramSnapshot Snapshot() const;

  /// Index of the bucket `value` falls into: values < 16 map exactly,
  /// larger ones to 4 linear sub-buckets per power of two.
  static unsigned BucketIndex(uint64_t value);
  /// Smallest value mapping to bucket `idx` (inclusive lower bound).
  static uint64_t BucketLowerBound(unsigned idx);
  /// First value beyond bucket `idx` (exclusive upper bound).
  static uint64_t BucketUpperBound(unsigned idx);

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> max{0};
    std::atomic<uint64_t> buckets[kBuckets] = {};
  };
  Shard shards_[kShards];
};

/// Named metric registry. Thread-safe; handles are stable pointers.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);

  /// Prometheus text exposition format: one block per registered metric,
  /// names prefixed "dissodb_" and sanitized ('.', '-' -> '_'). Histograms
  /// render cumulative le-buckets (non-empty boundaries plus +Inf),
  /// _count, and _sum.
  std::string PrometheusText() const;

  /// Process-wide default registry.
  static MetricsRegistry& Global();

 private:
  mutable std::mutex mu_;
  // deques: stable element addresses across growth.
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::unordered_map<std::string, Counter*> counter_by_name_;
  std::unordered_map<std::string, Gauge*> gauge_by_name_;
  std::unordered_map<std::string, Histogram*> histogram_by_name_;
  // Registration order, for deterministic export.
  std::vector<std::pair<std::string, const Counter*>> counter_order_;
  std::vector<std::pair<std::string, const Gauge*>> gauge_order_;
  std::vector<std::pair<std::string, const Histogram*>> histogram_order_;
};

/// Steady-clock nanoseconds (monotonic; shared epoch across threads).
uint64_t NowNanos();

}  // namespace obs
}  // namespace dissodb

#endif  // DISSODB_OBS_METRICS_H_
