// Per-query execution tracing: a span tree over one execution, one span
// per plan node / engine stage, annotated with row counts, chunk-pruning
// stats, cache interactions, and the SIMD-vs-scalar dispatch taken.
//
// Cost model: tracing is strictly opt-in per execution (EngineOptions
// sampling or Bindings::EnableTrace). Untraced executions carry a null
// TraceContext* and pay exactly one branch per instrumentation site; the
// registry-level metrics (src/obs/metrics.h) stay on either way.
//
// A finished trace is a QueryTrace — an immutable span list (parent links
// by id) with three export surfaces:
//   - ToText():       EXPLAIN-ANALYZE-style tree for terminals,
//   - ToChromeJson(): Chrome trace-event JSON ("X" complete events, spans
//                     placed on their executing thread's track) loadable
//                     in Perfetto / chrome://tracing,
// and the raw spans for programmatic assertions (tests).
//
// Thread model: spans may begin/end on any thread (TraceContext is
// internally locked); each span records the obs::ThreadIndex() of the
// thread that opened it, which becomes its Perfetto track.
#ifndef DISSODB_OBS_TRACE_H_
#define DISSODB_OBS_TRACE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dissodb {
namespace obs {

/// One completed (or still-open) span. Ids are 1-based; parent 0 = root.
struct TraceSpan {
  uint32_t id = 0;
  uint32_t parent = 0;
  std::string name;
  uint64_t start_ns = 0;  ///< obs::NowNanos() at BeginSpan
  uint64_t end_ns = 0;    ///< 0 while open
  unsigned thread = 0;    ///< obs::ThreadIndex() of the opening thread
  /// Ordered key/value annotations (rows_out, chunks_pruned, cache, ...).
  std::vector<std::pair<std::string, std::string>> args;
};

/// The immutable result of a traced execution.
struct QueryTrace {
  std::vector<TraceSpan> spans;  ///< in id order (spans[i].id == i + 1)

  /// EXPLAIN-ANALYZE-style tree: one line per span with wall time and
  /// annotations, children indented under their parent in start order.
  std::string ToText() const;

  /// Chrome trace-event JSON (Perfetto-loadable): one complete ("X")
  /// event per span on its executing thread's track, annotations in
  /// `args`, timestamps in microseconds relative to the trace start.
  std::string ToChromeJson() const;

  /// Spans under `parent` (0 = roots), in start order.
  std::vector<const TraceSpan*> ChildrenOf(uint32_t parent) const;
};

/// Mutable span recorder for one execution. All methods are thread-safe;
/// annotation after EndSpan is allowed (spans are finalized by Finish).
class TraceContext {
 public:
  /// Opens a span; returns its id. `parent` 0 makes it a root.
  uint32_t BeginSpan(std::string name, uint32_t parent);

  /// Closes `id` (stamps end_ns). No-op for id 0.
  void EndSpan(uint32_t id);

  void Annotate(uint32_t id, std::string key, std::string value);
  void Annotate(uint32_t id, std::string key, uint64_t value);
  void Annotate(uint32_t id, std::string key, double value);

  /// Moves the recorded spans out as an immutable trace; open spans are
  /// closed at the current time.
  QueryTrace Finish();

 private:
  std::mutex mu_;
  std::vector<TraceSpan> spans_;
};

/// RAII span: closes on scope exit. Null-context-safe (id stays 0).
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(TraceContext* ctx, std::string name, uint32_t parent)
      : ctx_(ctx) {
    if (ctx_ != nullptr) id_ = ctx_->BeginSpan(std::move(name), parent);
  }
  ~ScopedSpan() {
    if (ctx_ != nullptr && id_ != 0) ctx_->EndSpan(id_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  uint32_t id() const { return id_; }

 private:
  TraceContext* ctx_ = nullptr;
  uint32_t id_ = 0;
};

}  // namespace obs
}  // namespace dissodb

#endif  // DISSODB_OBS_TRACE_H_
