#include "src/obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "src/obs/metrics.h"

namespace dissodb {
namespace obs {

uint32_t TraceContext::BeginSpan(std::string name, uint32_t parent) {
  const uint64_t now = NowNanos();
  const unsigned thread = ThreadIndex();
  std::lock_guard lock(mu_);
  TraceSpan& s = spans_.emplace_back();
  s.id = static_cast<uint32_t>(spans_.size());
  s.parent = parent;
  s.name = std::move(name);
  s.start_ns = now;
  s.thread = thread;
  return s.id;
}

void TraceContext::EndSpan(uint32_t id) {
  if (id == 0) return;
  const uint64_t now = NowNanos();
  std::lock_guard lock(mu_);
  if (id <= spans_.size()) spans_[id - 1].end_ns = now;
}

void TraceContext::Annotate(uint32_t id, std::string key, std::string value) {
  if (id == 0) return;
  std::lock_guard lock(mu_);
  if (id <= spans_.size()) {
    spans_[id - 1].args.emplace_back(std::move(key), std::move(value));
  }
}

void TraceContext::Annotate(uint32_t id, std::string key, uint64_t value) {
  Annotate(id, std::move(key), std::to_string(value));
}

void TraceContext::Annotate(uint32_t id, std::string key, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  Annotate(id, std::move(key), std::string(buf));
}

QueryTrace TraceContext::Finish() {
  const uint64_t now = NowNanos();
  QueryTrace out;
  std::lock_guard lock(mu_);
  for (TraceSpan& s : spans_) {
    if (s.end_ns == 0) s.end_ns = now;
  }
  out.spans = std::move(spans_);
  spans_.clear();
  return out;
}

std::vector<const TraceSpan*> QueryTrace::ChildrenOf(uint32_t parent) const {
  std::vector<const TraceSpan*> out;
  for (const TraceSpan& s : spans) {
    if (s.parent == parent) out.push_back(&s);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceSpan* a, const TraceSpan* b) {
                     return a->start_ns < b->start_ns;
                   });
  return out;
}

namespace {

std::string FmtDuration(uint64_t ns) {
  char buf[32];
  if (ns >= 1'000'000'000) {
    std::snprintf(buf, sizeof(buf), "%.2f s", ns / 1e9);
  } else if (ns >= 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", ns / 1e6);
  } else if (ns >= 1'000) {
    std::snprintf(buf, sizeof(buf), "%.1f us", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu ns",
                  static_cast<unsigned long long>(ns));
  }
  return buf;
}

void AppendTextTree(const QueryTrace& t, uint32_t parent,
                    const std::string& prefix, std::string* out) {
  const auto children = t.ChildrenOf(parent);
  for (size_t i = 0; i < children.size(); ++i) {
    const TraceSpan& s = *children[i];
    const bool last = i + 1 == children.size();
    if (!prefix.empty() || parent != 0) {
      *out += prefix + (last ? "`- " : "|- ");
    }
    *out += s.name + "  [" + FmtDuration(s.end_ns - s.start_ns) + "]";
    for (const auto& [k, v] : s.args) *out += "  " + k + "=" + v;
    *out += "\n";
    const std::string child_prefix =
        (prefix.empty() && parent == 0)
            ? std::string()
            : prefix + (last ? "   " : "|  ");
    AppendTextTree(t, s.id, child_prefix, out);
  }
}

void AppendJsonEscaped(const std::string& in, std::string* out) {
  for (char c : in) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
}

}  // namespace

std::string QueryTrace::ToText() const {
  std::string out;
  AppendTextTree(*this, 0, "", &out);
  return out;
}

std::string QueryTrace::ToChromeJson() const {
  uint64_t epoch = ~uint64_t{0};
  for (const TraceSpan& s : spans) epoch = std::min(epoch, s.start_ns);
  if (spans.empty()) epoch = 0;
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceSpan& s : spans) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(s.name, &out);
    out += "\",\"cat\":\"query\",\"ph\":\"X\"";
    char num[64];
    std::snprintf(num, sizeof(num),
                  ",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%u",
                  (s.start_ns - epoch) / 1e3, (s.end_ns - s.start_ns) / 1e3,
                  s.thread);
    out += num;
    // Structural links survive into Perfetto as plain args.
    out += ",\"args\":{\"span_id\":" + std::to_string(s.id) +
           ",\"parent_id\":" + std::to_string(s.parent);
    for (const auto& [k, v] : s.args) {
      out += ",\"";
      AppendJsonEscaped(k, &out);
      out += "\":\"";
      AppendJsonEscaped(v, &out);
      out += "\"";
    }
    out += "}}";
  }
  out += "],\"displayTimeUnit\":\"ns\"}";
  return out;
}

}  // namespace obs
}  // namespace dissodb
