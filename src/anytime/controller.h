// The anytime controller: staged escalation from dissociation bounds to
// certified exactness.
//
//   1. Safe query?  The compiled plan's scores are exact probabilities —
//      point intervals, everything certified, done (verdict kExact).
//   2. Bounds (unconditional, even under an already-expired deadline):
//      the dissociation plans give per-answer upper bounds; the same plans
//      over obliviously rescaled weights give lower bounds
//      (src/anytime/lower_bound.h). Every answer now carries [lower, upper].
//   3. Guarantees requested and not yet met?  Ground the lineage once
//      (snapshot-consistent: every atom overridden with its pinned table),
//      then refine in rounds: interval ranking picks only the answers whose
//      intervals still contest a rank boundary or exceed the width budget
//      (src/anytime/interval_rank.h); each gets exact WMC when its lineage
//      fits the budget, else an incremental MC batch. Rounds run as
//      cancellable Scheduler tasks — an expired deadline skips queued tasks
//      and discards in-flight batches whole, and the round barrier always
//      joins before returning (no leaked workers).
//   4. Terminate as soon as the top-k order is certified / every width is
//      within epsilon (kCertified), the refinement budget dries up
//      (kBoundsOnly), or the deadline fires (kBoundsOnly, deadline_hit).
//
// Determinism: refinement is bit-reproducible across thread counts and
// scheduling orders. Each answer's round-r batch draws from an Rng seeded
// by (plan fingerprint, answer key, r); batches either fold in whole or
// not at all; and intervals are folded into the ranking only at the round
// barrier, on the controller thread.
#ifndef DISSODB_ANYTIME_CONTROLLER_H_
#define DISSODB_ANYTIME_CONTROLLER_H_

#include <vector>

#include "src/anytime/anytime.h"
#include "src/common/status.h"
#include "src/engine/prepared_query.h"
#include "src/exec/evaluator.h"
#include "src/obs/trace.h"
#include "src/query/cq.h"
#include "src/serve/scheduler.h"
#include "src/storage/database.h"
#include "src/storage/snapshot.h"

namespace dissodb {

/// Everything RunAnytime needs from the engine layer. The query must be
/// the *executed* one: canonical variable space, parameters already
/// substituted. `overrides` use canonical atom indices. All pointers must
/// outlive the call.
struct AnytimeInput {
  Snapshot snap;
  /// Grounding shim for ComputeLineage's signature only — every atom is
  /// overridden with its snapshot table, so the live head is never read.
  const Database* db = nullptr;
  const ConjunctiveQuery* query = nullptr;
  const CompiledPlans* compiled = nullptr;
  AtomOverrides overrides;
  /// Canonical -> caller variable ids (RemapRelVars convention); nullptr
  /// when the canonicalization was the identity. Answers are reported in
  /// caller variable order, matching QueryEngine::Execute.
  const std::vector<VarId>* var_map = nullptr;
  Scheduler* scheduler = nullptr;  ///< nullptr = refine inline on the caller
  obs::TraceContext* trace = nullptr;
  uint32_t trace_parent = 0;
};

struct AnytimeOutput {
  /// Sorted by descending point score (ties: ascending tuple) — the same
  /// convention as QueryResult::answers, so certified prefixes are
  /// positionally comparable to exact rankings.
  std::vector<BoundedAnswer> answers;
  AnytimeVerdict verdict = AnytimeVerdict::kBoundsOnly;
  AnytimeStats stats;
  /// Per-atom oblivious exponents d_i used for the lower bound (empty on
  /// the safe-exact route). Exposed for tests and plan exploration.
  std::vector<double> exponents;
};

Result<AnytimeOutput> RunAnytime(const AnytimeInput& in,
                                 const GuaranteeSpec& spec);

}  // namespace dissodb

#endif  // DISSODB_ANYTIME_CONTROLLER_H_
