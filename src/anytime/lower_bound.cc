#include "src/anytime/lower_bound.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "src/dissociation/dissociation.h"

namespace dissodb {

namespace {

/// Largest exponent we distinguish: beyond this 1-(1-p)^(1/d) underflows
/// towards 0 anyway and the product of domain sizes risks overflow.
constexpr double kMaxExponent = 1e15;

const std::vector<PlanPtr>& PlansOf(const CompiledPlans& compiled,
                                    std::vector<PlanPtr>* single_storage) {
  if (compiled.single_plan != nullptr) {
    single_storage->assign(1, compiled.single_plan);
    return *single_storage;
  }
  return compiled.plans;
}

/// The table bound to atom `idx`: the override when present, else the
/// snapshot table of the atom's relation (nullptr when absent — the
/// subsequent evaluation will fail with the proper error).
const Table* AtomTable(const Snapshot& snap, const ConjunctiveQuery& q,
                       const AtomOverrides& overrides, int idx) {
  auto it = overrides.find(idx);
  if (it != overrides.end()) return it->second.table;
  int t = snap.FindTable(q.atom(idx).relation);
  return t < 0 ? nullptr : &snap.table(t);
}

/// Exact count of distinct values variable `v` takes in the tables of the
/// atoms natively containing it; minimum over those atoms (every atom's
/// column bounds the join's active domain). Raw 64-bit payloads are exact
/// within a typed column — a sketch could undercount and make the bound
/// unsound. Returns 1 when no atom binds `v` (cannot happen for extra
/// variables of a valid dissociation) or a table is missing.
double ActiveDomainSize(const Snapshot& snap, const ConjunctiveQuery& q,
                        const AtomOverrides& overrides, VarId v) {
  double best = kMaxExponent;
  bool found = false;
  for (int i = 0; i < q.num_atoms(); ++i) {
    if (!MaskContains(q.AtomMask(i), v)) continue;
    const Atom& atom = q.atom(i);
    int col = -1;
    for (int j = 0; j < atom.arity(); ++j) {
      if (atom.terms[j].is_var && atom.terms[j].var == v) {
        col = j;
        break;
      }
    }
    if (col < 0) continue;
    const Table* t = AtomTable(snap, q, overrides, i);
    if (t == nullptr) continue;
    std::unordered_set<uint64_t> distinct;
    const size_t n = t->NumRows();
    distinct.reserve(n);
    for (size_t r = 0; r < n; ++r) distinct.insert(t->col(col)->RawBits(r));
    best = std::min(best, static_cast<double>(distinct.size()));
    found = true;
  }
  if (!found) return 1.0;
  return std::max(best, 1.0);
}

}  // namespace

std::vector<double> ObliviousExponents(const Snapshot& snap,
                                       const ConjunctiveQuery& q,
                                       const CompiledPlans& compiled,
                                       const AtomOverrides& overrides) {
  std::vector<PlanPtr> single_storage;
  const std::vector<PlanPtr>& plans = PlansOf(compiled, &single_storage);

  // Union of extra variables per atom over every plan (Min branches
  // included via ExtractDissociation's recursion): a superset of the
  // dissociation any single branch induces, hence a valid d for all.
  std::vector<VarMask> extra(q.num_atoms(), 0);
  for (const PlanPtr& p : plans) {
    Dissociation delta = ExtractDissociation(p, q);
    for (int i = 0; i < q.num_atoms(); ++i) extra[i] |= delta.extra[i];
  }

  // Active-domain sizes, computed once per variable and shared.
  std::vector<double> adom(q.num_vars(), 0.0);
  std::vector<double> d(q.num_atoms(), 1.0);
  for (int i = 0; i < q.num_atoms(); ++i) {
    for (VarId v : MaskToVars(extra[i])) {
      if (adom[v] == 0.0) adom[v] = ActiveDomainSize(snap, q, overrides, v);
      d[i] = std::min(d[i] * adom[v], kMaxExponent);
    }
  }
  return d;
}

Result<Rel> ObliviousLowerBounds(const Snapshot& snap,
                                 const ConjunctiveQuery& q,
                                 const CompiledPlans& compiled,
                                 const AtomOverrides& overrides,
                                 const std::vector<double>& exponents,
                                 Scheduler* scheduler,
                                 obs::TraceContext* trace,
                                 uint32_t trace_parent) {
  std::vector<PlanPtr> single_storage;
  const std::vector<PlanPtr>& plans = PlansOf(compiled, &single_storage);
  if (plans.empty()) return Status::InvalidArgument("no compiled plans");

  // Shallow table copies with rescaled weight columns. Reserve up front:
  // SetAtomTable keeps raw pointers into this vector.
  std::vector<Table> scaled;
  scaled.reserve(q.num_atoms());
  AtomOverrides lb_overrides;
  for (int i = 0; i < q.num_atoms(); ++i) {
    const Table* base = AtomTable(snap, q, overrides, i);
    if (base == nullptr) {
      return Status::NotFound("no table named " + q.atom(i).relation);
    }
    const double d = i < static_cast<int>(exponents.size()) ? exponents[i]
                                                            : 1.0;
    if (d > 1.0 && !base->schema().deterministic && base->NumRows() > 0) {
      scaled.push_back(*base);
      scaled.back().DissociateProbabilitiesObliviously(d);
      // Untagged on purpose: rescaled contents must never be exchanged
      // with the shared result cache under the base table's identity.
      lb_overrides[i] = AtomOverride{&scaled.back(), {}};
    } else if (overrides.count(i) != 0) {
      lb_overrides[i] = AtomOverride{base, {}};
    }
  }

  if (plans.size() == 1) {
    PlanEvaluator ev(snap, q);
    for (const auto& [idx, ov] : lb_overrides) {
      ev.SetAtomTable(idx, ov.table);
    }
    if (scheduler != nullptr) ev.SetScheduler(scheduler);
    if (trace != nullptr) ev.SetTrace(trace, trace_parent);
    auto rel = ev.Evaluate(plans[0]);
    if (!rel.ok()) return rel.status();
    return Rel(**rel);
  }
  // Min over plans: each plan's score lower-bounds P(q), and the minimum
  // of per-answer lower bounds is still a lower bound (only looser).
  return EvaluatePlansSeparately(snap, q, plans, lb_overrides,
                                 /*scan_stats=*/nullptr, trace, trace_parent);
}

}  // namespace dissodb
