#include "src/anytime/controller.h"

#include <algorithm>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <unordered_map>
#include <utility>

#include "src/anytime/interval_rank.h"
#include "src/anytime/lower_bound.h"
#include "src/common/hash.h"
#include "src/common/rng.h"
#include "src/exec/ranking.h"
#include "src/infer/exact.h"
#include "src/infer/mc.h"
#include "src/lineage/lineage.h"

namespace dissodb {

namespace {

/// Width below which an interval counts as a point (exact up to fp noise).
constexpr double kPointWidth = 1e-15;

double Clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

/// Round barrier: counts down one Done per refinement task (run or
/// skipped — the Scheduler's cancellable Submit invokes the completion
/// callback exactly once either way).
struct WaitGroup {
  std::mutex mu;
  std::condition_variable cv;
  size_t pending;

  explicit WaitGroup(size_t n) : pending(n) {}

  void Done() {
    std::lock_guard lock(mu);
    if (--pending == 0) cv.notify_all();
  }
  bool Idle() {
    std::lock_guard lock(mu);
    return pending == 0;
  }
  void Wait() {
    std::unique_lock lock(mu);
    cv.wait(lock, [this] { return pending == 0; });
  }
};

/// Per-answer refinement state, stable-addressed (McEstimator keeps a
/// pointer to the Dnf) and keyed by the answer tuple so it survives the
/// per-round re-sorts of the answer vector.
struct RefineState {
  Dnf dnf;
  std::unique_ptr<McEstimator> est;
  uint64_t answer_hash = 0;
  bool wmc_tried = false;
  bool exact_done = false;
  double exact_value = 0.0;
  /// Samples folded in by the last batch (0 when cancelled or exact).
  size_t last_drawn = 0;
};

uint64_t TupleHash(const std::vector<Value>& tuple) {
  size_t h = 0x8f1bbcdc;
  for (const Value& v : tuple) HashCombine(&h, v.Hash());
  return Mix64(h);
}

/// One deterministic hash over every compiled plan's fingerprint: the
/// "plan" component of the refinement seeds.
uint64_t PlansHash(const CompiledPlans& compiled, const ConjunctiveQuery& q) {
  size_t h = 0x9ae16a3b;
  std::unordered_map<const PlanNode*, std::string> memo;
  if (compiled.single_plan != nullptr) {
    HashCombine(&h, std::hash<std::string>{}(
                        PlanFingerprint(compiled.single_plan, q, &memo)));
  }
  for (const PlanPtr& p : compiled.plans) {
    HashCombine(&h, std::hash<std::string>{}(PlanFingerprint(p, q, &memo)));
  }
  return Mix64(h);
}

/// Evaluates the compiled plans as-is (the upper-bound / safe-exact pass),
/// mirroring ExecuteInternal's evaluation stage without result-cache
/// participation.
Result<Rel> EvaluateUpper(const AnytimeInput& in, uint32_t span) {
  const ConjunctiveQuery& q = *in.query;
  if (in.compiled->single_plan != nullptr) {
    PlanEvaluator ev(in.snap, q);
    for (const auto& [idx, ov] : in.overrides) {
      ev.SetAtomTable(idx, ov.table, ov.tag);
    }
    if (in.scheduler != nullptr) ev.SetScheduler(in.scheduler);
    if (in.trace != nullptr) ev.SetTrace(in.trace, span);
    auto rel = ev.Evaluate(in.compiled->single_plan);
    if (!rel.ok()) return rel.status();
    return Rel(**rel);
  }
  return EvaluatePlansSeparately(in.snap, q, in.compiled->plans, in.overrides,
                                 /*scan_stats=*/nullptr, in.trace, span);
}

/// Permutation from the canonical answer-key order (ascending canonical
/// head VarId — both RankAnswers pre-remap and lineage keys use it) to the
/// caller order (ascending remapped VarId). Identity when var_map is null.
std::vector<size_t> HeadPermutation(const ConjunctiveQuery& q,
                                    const std::vector<VarId>* var_map) {
  std::vector<VarId> head = MaskToVars(q.HeadMask());
  std::vector<size_t> perm(head.size());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  if (var_map != nullptr) {
    std::sort(perm.begin(), perm.end(), [&](size_t a, size_t b) {
      return (*var_map)[head[a]] < (*var_map)[head[b]];
    });
  }
  return perm;
}

/// The refinement task body: exact WMC if the budget allows, else one MC
/// batch. Runs on a pool worker; touches only its own `state` (the
/// answer's bounds are read-only here, folded by the controller at the
/// barrier).
void RefineOne(RefineState* state, const GuaranteeSpec& spec, size_t round,
               uint64_t plans_hash,
               const std::shared_ptr<const CancelToken>& token) {
  state->last_drawn = 0;
  if (state->exact_done) return;
  if (spec.wmc_max_calls > 0 && !state->wmc_tried) {
    state->wmc_tried = true;
    auto exact = ExactDnfProbability(state->dnf, {spec.wmc_max_calls});
    if (exact.ok()) {
      state->exact_value = *exact;
      state->exact_done = true;
      return;
    }
    // OutOfRange: lineage too wide for the budget — fall through to MC.
  }
  const size_t have = state->est->samples();
  if (have >= spec.mc_max_samples_per_answer) return;
  size_t n = spec.mc_base_samples
             << std::min<size_t>(round, 10);  // geometric batch growth
  n = std::min(n, spec.mc_max_samples_per_answer - have);
  if (n == 0) return;
  Rng rng(RefinementSeed(plans_hash, state->answer_hash, round));
  state->last_drawn = state->est->AddBatch(
      n, &rng, [&token] { return token->cancelled(); });
}

}  // namespace

const char* AnytimeVerdictName(AnytimeVerdict v) {
  switch (v) {
    case AnytimeVerdict::kExact:
      return "exact";
    case AnytimeVerdict::kCertified:
      return "certified";
    case AnytimeVerdict::kBoundsOnly:
      return "bounds-only";
  }
  return "unknown";
}

Result<AnytimeOutput> RunAnytime(const AnytimeInput& in,
                                 const GuaranteeSpec& spec) {
  const ConjunctiveQuery& q = *in.query;
  const uint64_t deadline_ns =
      spec.deadline.count() > 0
          ? obs::NowNanos() + static_cast<uint64_t>(spec.deadline.count())
          : 0;
  AnytimeOutput out;

  // ---- Stage 1+2: bounds (unconditional — the cheap floor every caller
  // gets back even when the deadline has already expired).
  {
    obs::ScopedSpan bounds_span(in.trace, "anytime-bounds", in.trace_parent);
    if (in.trace != nullptr) {
      in.trace->Annotate(bounds_span.id(), "anytime", std::string("bounds"));
    }

    auto upper = EvaluateUpper(in, bounds_span.id());
    if (!upper.ok()) return upper.status();
    Rel upper_rel = std::move(*upper);
    if (in.var_map != nullptr && upper_rel.arity() > 0) {
      upper_rel = RemapRelVars(upper_rel, *in.var_map);
    }
    std::vector<RankedAnswer> ranked = RankAnswers(upper_rel);

    if (in.compiled->exact) {
      // Safe-plan route: scores are exact probabilities already.
      out.answers.reserve(ranked.size());
      for (RankedAnswer& ra : ranked) {
        BoundedAnswer a;
        a.tuple = std::move(ra.tuple);
        a.lower = a.upper = a.point = Clamp01(ra.score);
        a.certified = true;
        a.source = BoundSource::kSafeExact;
        out.answers.push_back(std::move(a));
      }
      out.verdict = AnytimeVerdict::kExact;
      out.stats.certified_prefix =
          std::min(spec.top_k, out.answers.size());
      return out;
    }

    out.exponents = ObliviousExponents(in.snap, q, *in.compiled, in.overrides);
    auto lower = ObliviousLowerBounds(in.snap, q, *in.compiled, in.overrides,
                                      out.exponents, in.scheduler, in.trace,
                                      bounds_span.id());
    if (!lower.ok()) return lower.status();
    Rel lower_rel = std::move(*lower);
    if (in.var_map != nullptr && lower_rel.arity() > 0) {
      lower_rel = RemapRelVars(lower_rel, *in.var_map);
    }
    std::map<std::vector<Value>, double> lower_by_tuple;
    for (RankedAnswer& ra : RankAnswers(lower_rel)) {
      lower_by_tuple.emplace(std::move(ra.tuple), ra.score);
    }

    out.answers.reserve(ranked.size());
    for (RankedAnswer& ra : ranked) {
      BoundedAnswer a;
      a.upper = Clamp01(ra.score);
      a.point = a.upper;  // serving score = the dissociation score
      auto it = lower_by_tuple.find(ra.tuple);
      a.lower = Clamp01(std::min(it != lower_by_tuple.end() ? it->second : 0.0,
                                 a.upper));
      a.tuple = std::move(ra.tuple);
      a.certified = a.width() <= kPointWidth;
      out.answers.push_back(std::move(a));
    }
    SortBoundedAnswers(&out.answers);
  }

  CertifyResult cert = CertifyAnswers(out.answers, spec);
  out.stats.contested_initial = cert.contested.size();

  // ---- Stage 3: refinement, only with unmet targets and time left.
  const bool want_refine = spec.HasTargets() && !cert.done;
  auto token = std::make_shared<CancelToken>(deadline_ns);
  if (want_refine && !token->cancelled()) {
    obs::ScopedSpan refine_span(in.trace, "anytime-refine", in.trace_parent);
    if (in.trace != nullptr) {
      in.trace->Annotate(refine_span.id(), "anytime", std::string("refine"));
    }

    // Lineage, grounded once against the pinned snapshot: every atom is
    // overridden (input override or snapshot table), so the Database
    // argument only satisfies the signature.
    std::unordered_map<int, const Table*> lineage_ov;
    for (int i = 0; i < q.num_atoms(); ++i) {
      auto it = in.overrides.find(i);
      if (it != in.overrides.end()) {
        lineage_ov[i] = it->second.table;
      } else {
        int t = in.snap.FindTable(q.atom(i).relation);
        if (t < 0) return Status::NotFound("no table named " + q.atom(i).relation);
        lineage_ov[i] = &in.snap.table(t);
      }
    }
    auto lineage = ComputeLineage(*in.db, q, lineage_ov);
    if (!lineage.ok()) return lineage.status();

    // Lineage answers are keyed in ascending canonical head-var order;
    // permute each key into caller order to match out.answers tuples.
    const std::vector<size_t> perm = HeadPermutation(q, in.var_map);
    const uint64_t plans_hash = PlansHash(*in.compiled, q);
    std::map<std::vector<Value>, std::unique_ptr<RefineState>> states;
    for (const AnswerLineage& al : lineage->answers) {
      std::vector<Value> key(al.answer.size());
      for (size_t j = 0; j < perm.size(); ++j) key[j] = al.answer[perm[j]];
      auto state = std::make_unique<RefineState>();
      state->dnf = lineage->ToDnf(al);
      state->est = std::make_unique<McEstimator>(&state->dnf);
      state->answer_hash = TupleHash(key);
      states.emplace(std::move(key), std::move(state));
    }

    std::set<std::vector<Value>> refined_tuples;
    size_t round = 0;
    while (!cert.done && round < spec.max_refine_rounds &&
           !token->cancelled()) {
      // Contested answers the estimators can still improve.
      std::vector<std::pair<size_t, RefineState*>> work;
      for (size_t idx : cert.contested) {
        auto it = states.find(out.answers[idx].tuple);
        if (it == states.end()) continue;
        RefineState& s = *it->second;
        if (s.exact_done) continue;
        const bool wmc_pending = spec.wmc_max_calls > 0 && !s.wmc_tried;
        if (!wmc_pending &&
            s.est->samples() >= spec.mc_max_samples_per_answer) {
          continue;
        }
        work.emplace_back(idx, &s);
      }
      if (work.empty()) break;  // refinement budget exhausted

      WaitGroup wg(work.size());
      for (auto& [idx, state] : work) {
        RefineState* s = state;
        auto task = [s, &spec, round, plans_hash, token] {
          RefineOne(s, spec, round, plans_hash, token);
        };
        if (in.scheduler != nullptr) {
          in.scheduler->Submit(std::move(task), "anytime-refine", token,
                               [&wg] { wg.Done(); });
        } else {
          if (!token->cancelled()) task();
          wg.Done();
        }
      }
      if (in.scheduler != nullptr) {
        // Help drain the queue (the pool may be busy with other queries),
        // then join the barrier — every task runs or is skipped, so the
        // round always completes and no worker outlives the call.
        while (!wg.Idle() && in.scheduler->TryRunOne()) {
        }
        wg.Wait();
      }

      // Fold results into the ranking — single-threaded, post-barrier.
      for (auto& [idx, state] : work) {
        BoundedAnswer& a = out.answers[idx];
        refined_tuples.insert(a.tuple);
        if (state->exact_done) {
          const double v =
              std::clamp(Clamp01(state->exact_value), a.lower, a.upper);
          a.lower = a.upper = a.point = v;
          a.certified = true;
          a.source = BoundSource::kExactWmc;
          ++out.stats.exact_refinements;
        } else if (state->last_drawn > 0) {
          out.stats.mc_samples_drawn += state->last_drawn;
          const double est = state->est->Estimate();
          const double hw = state->est->HalfWidth();
          const double nl = std::max(a.lower, Clamp01(est - hw));
          const double nu = std::min(a.upper, Clamp01(est + hw));
          // nl > nu means the 4-sigma interval missed the sound
          // dissociation bounds — keep the sound ones.
          if (nl <= nu) {
            a.lower = nl;
            a.upper = nu;
          }
          a.point = std::clamp(est, a.lower, a.upper);
          a.source = BoundSource::kMc;
          a.mc_samples = state->est->samples();
        }
      }
      ++round;
      out.stats.refine_rounds = round;
      SortBoundedAnswers(&out.answers);
      cert = CertifyAnswers(out.answers, spec);
    }
    out.stats.refined_answers = refined_tuples.size();
    if (in.trace != nullptr) {
      in.trace->Annotate(refine_span.id(), "rounds",
                         static_cast<uint64_t>(out.stats.refine_rounds));
      in.trace->Annotate(refine_span.id(), "refined",
                         static_cast<uint64_t>(out.stats.refined_answers));
    }
  }

  // ---- Stage 4: verdict and certification flags.
  out.stats.deadline_hit =
      deadline_ns != 0 && !cert.done && spec.HasTargets() && token->cancelled();
  out.stats.certified_prefix = cert.certified_prefix;
  for (size_t i = 0; i < out.answers.size(); ++i) {
    BoundedAnswer& a = out.answers[i];
    a.certified = a.width() <= kPointWidth ||
                  (i < cert.certified_prefix) ||
                  (spec.epsilon < std::numeric_limits<double>::infinity() &&
                   a.width() <= spec.epsilon);
  }
  out.verdict = spec.HasTargets() && cert.done ? AnytimeVerdict::kCertified
                                               : AnytimeVerdict::kBoundsOnly;
  return out;
}

}  // namespace dissodb
