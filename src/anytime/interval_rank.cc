#include "src/anytime/interval_rank.h"

#include <algorithm>
#include <limits>

namespace dissodb {

void SortBoundedAnswers(std::vector<BoundedAnswer>* answers) {
  std::sort(answers->begin(), answers->end(),
            [](const BoundedAnswer& a, const BoundedAnswer& b) {
              if (a.point != b.point) return a.point > b.point;
              return a.tuple < b.tuple;
            });
}

CertifyResult CertifyAnswers(const std::vector<BoundedAnswer>& answers,
                             const GuaranteeSpec& spec) {
  CertifyResult out;
  const size_t n = answers.size();
  if (!spec.HasTargets()) {
    // Bounds-only mode: nothing to certify, nothing contested.
    return out;
  }
  const size_t k = std::min(spec.top_k, n);

  // Suffix maxima of the upper bounds: suffix_max[i] = max upper over j > i.
  std::vector<double> suffix_max(n + 1);
  suffix_max[n] = -std::numeric_limits<double>::infinity();
  for (size_t j = n; j-- > 0;) {
    suffix_max[j] = std::max(suffix_max[j + 1], answers[j].upper);
  }

  // Certified prefix: stop at the first position whose lower bound some
  // later upper bound exceeds. >= lets exact ties through — two answers
  // refined to the same point have lower_i == upper_j and either order is
  // a correct ranking (the tuple tiebreak picks the same one exact
  // ranking does).
  size_t prefix = 0;
  while (prefix < k && answers[prefix].lower >= suffix_max[prefix + 1]) {
    ++prefix;
  }
  out.certified_prefix = prefix;

  bool topk_done = prefix >= k;
  if (!topk_done) {
    // The contest at position `prefix`: the position holder plus every
    // later answer whose interval still reaches above its lower bound.
    const double boundary = answers[prefix].lower;
    out.contested.push_back(prefix);
    std::vector<size_t> blockers;
    for (size_t j = prefix + 1; j < n; ++j) {
      if (answers[j].upper > boundary) blockers.push_back(j);
    }
    // Most-overlapping first: the highest uppers pin the boundary down.
    std::stable_sort(blockers.begin(), blockers.end(),
                     [&](size_t a, size_t b) {
                       return answers[a].upper > answers[b].upper;
                     });
    out.contested.insert(out.contested.end(), blockers.begin(),
                         blockers.end());
  }

  bool eps_done = true;
  if (spec.epsilon < std::numeric_limits<double>::infinity()) {
    std::vector<size_t> wide;
    for (size_t i = 0; i < n; ++i) {
      if (answers[i].width() > spec.epsilon) wide.push_back(i);
    }
    eps_done = wide.empty();
    std::stable_sort(wide.begin(), wide.end(), [&](size_t a, size_t b) {
      return answers[a].width() > answers[b].width();
    });
    for (size_t i : wide) {
      if (std::find(out.contested.begin(), out.contested.end(), i) ==
          out.contested.end()) {
        out.contested.push_back(i);
      }
    }
  }

  out.done = topk_done && eps_done;
  if (out.done) {
    out.contested.clear();
  } else if (out.contested.size() > spec.max_refined_per_round) {
    out.contested.resize(spec.max_refined_per_round);
  }
  return out;
}

}  // namespace dissodb
