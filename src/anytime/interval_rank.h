// Interval-based ranking: which answers does a guarantee already cover,
// and which still contest a rank boundary?
//
// The anytime controller keeps one [lower, upper] interval per answer and
// must decide, each round, (a) how many top positions are already
// *certified* — provably ahead of every later answer no matter where the
// true probabilities fall inside their intervals — and (b) which answers
// to refine next. Certification is pure interval arithmetic: position i is
// certified once lower_i >= max_{j>i} upper_j (>= so exact ties, which
// refinement collapses to identical points, still certify).
#ifndef DISSODB_ANYTIME_INTERVAL_RANK_H_
#define DISSODB_ANYTIME_INTERVAL_RANK_H_

#include <cstddef>
#include <vector>

#include "src/anytime/anytime.h"

namespace dissodb {

/// Sorts answers by descending point score, ties by ascending tuple — the
/// engine's ranking convention (RankAnswers), so the certified prefix of
/// the anytime ranking is positionally comparable to the exact ranking.
void SortBoundedAnswers(std::vector<BoundedAnswer>* answers);

/// One certification pass over answers sorted by SortBoundedAnswers.
struct CertifyResult {
  /// Positions [0, certified_prefix) are order-certified: each provably
  /// outranks every answer after it. Capped at the requested k.
  size_t certified_prefix = 0;
  /// Answer indices still violating a guarantee, in refinement priority
  /// order (rank-boundary contestants first, widest interval first among
  /// epsilon violators), capped at `spec.max_refined_per_round`.
  std::vector<size_t> contested;
  /// Every requested guarantee holds (contested is then empty).
  bool done = false;
};

/// Evaluates the guarantees of `spec` against the current intervals.
/// With a top-k target, the contested set at the first uncertified
/// position i is {i} plus every j > i whose upper bound exceeds lower_i
/// (the blockers); with an epsilon target, every answer with
/// width > epsilon. No targets: done immediately.
CertifyResult CertifyAnswers(const std::vector<BoundedAnswer>& answers,
                             const GuaranteeSpec& spec);

}  // namespace dissodb

#endif  // DISSODB_ANYTIME_INTERVAL_RANK_H_
