// Anytime-answer types: the GuaranteeSpec callers hand to
// QueryEngine::RunWithGuarantees and the bounded answers it streams back.
//
// The serving story of the paper, productized: dissociation gives every
// answer a cheap [lower, upper] probability interval (upper = the
// propagation score, Theorem 18 / Corollary 19; lower = the same plans over
// obliviously rescaled weights, see src/anytime/lower_bound.h), and exact
// or sampled probabilities are reserved for the few answers whose intervals
// still overlap a rank boundary. A GuaranteeSpec says when to stop: an
// interval-width budget, a top-k order to certify, a wall-clock deadline —
// or nothing, which means "bounds only".
#ifndef DISSODB_ANYTIME_ANYTIME_H_
#define DISSODB_ANYTIME_ANYTIME_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "src/common/value.h"

namespace dissodb {

/// What RunWithGuarantees must achieve before returning (deadline
/// permitting). Default-constructed: no targets — evaluate both bounds and
/// return immediately ("bounds only").
struct GuaranteeSpec {
  /// Per-answer interval-width budget: refine until upper - lower <= epsilon
  /// for every answer. Infinity (default) = no width target.
  double epsilon = std::numeric_limits<double>::infinity();

  /// Certify the order of the top k answers: terminate as soon as each of
  /// the first k positions provably beats every later answer (its lower
  /// bound >= the suffix max of later uppers). 0 = no ranking target.
  size_t top_k = 0;

  /// Wall-clock budget measured from the RunWithGuarantees call. The
  /// bounds stages always run (they are the cheap unconditional floor);
  /// the deadline gates refinement — a deadline that expires mid-round
  /// cancels the round's remaining tasks and returns the intervals
  /// accumulated so far. zero (default) = unbounded.
  std::chrono::nanoseconds deadline{0};

  /// Exact-WMC escalation budget per contested answer (recursive calls; see
  /// WmcOptions). Small lineages collapse their interval to a point in one
  /// step; larger ones fall through to incremental MC. 0 disables exact
  /// escalation (pure-MC refinement, used by reproducibility tests).
  size_t wmc_max_calls = 200'000;

  /// MC batch size for round r is mc_base_samples << min(r, 10), capped at
  /// mc_max_samples_per_answer accumulated per answer.
  size_t mc_base_samples = 1024;
  size_t mc_max_samples_per_answer = size_t{1} << 20;

  /// Refinement rounds cap (MC intervals are statistical: two answers with
  /// genuinely equal probabilities would otherwise refine forever).
  size_t max_refine_rounds = 64;

  /// Contested answers refined per round, nearest-the-boundary first.
  /// Bounds per-round latency so the deadline is checked often.
  size_t max_refined_per_round = 64;

  /// True when the spec asks for anything beyond the bounds stages.
  bool HasTargets() const {
    return top_k > 0 || epsilon < std::numeric_limits<double>::infinity();
  }
};

/// How one answer's interval was obtained (the escalation rung it ended on).
enum class BoundSource : uint8_t {
  kSafeExact,   ///< safe-plan route: the score is exact, interval is a point
  kBounds,      ///< dissociation upper + oblivious lower bound only
  kExactWmc,    ///< refined by exact weighted model counting (point)
  kMc,          ///< refined by incremental MC (statistical interval)
};

/// One answer with its probability interval. Invariant: lower <= point <=
/// upper, and P(q = a) is in [lower, upper] (up to MC confidence for
/// kMc-refined answers).
struct BoundedAnswer {
  std::vector<Value> tuple;  ///< head values, caller variable order
  double lower = 0.0;
  double upper = 1.0;
  /// Serving score: the dissociation score until refinement replaces it
  /// with an exact probability or an MC estimate. Answers stream sorted by
  /// descending point (ties: ascending tuple).
  double point = 0.0;
  /// This answer met the caller's guarantee: its interval is (numerically)
  /// a point, its width is <= epsilon, or its top-k position is certified.
  bool certified = false;
  BoundSource source = BoundSource::kBounds;
  /// MC samples folded into this answer's estimate (kMc only).
  size_t mc_samples = 0;

  double width() const { return upper - lower; }
};

/// Escalation verdict for the whole query.
enum class AnytimeVerdict : uint8_t {
  kExact,      ///< safe plan (or every answer refined to a point): all exact
  kCertified,  ///< every requested guarantee met (top-k order / epsilon)
  kBoundsOnly, ///< bounds returned; guarantees not (fully) met — no targets
               ///< requested, deadline hit, or refinement budget exhausted
};

const char* AnytimeVerdictName(AnytimeVerdict v);

/// Controller-side telemetry for one RunWithGuarantees call.
struct AnytimeStats {
  size_t refine_rounds = 0;
  /// Distinct answers that received any refinement (exact or MC). The
  /// whole point of interval ranking: this stays well below the answer
  /// count on ranking workloads.
  size_t refined_answers = 0;
  size_t exact_refinements = 0;  ///< answers collapsed by exact WMC
  size_t mc_samples_drawn = 0;
  /// Answers whose intervals overlapped a rank boundary after the bounds
  /// stages (the initial contested set).
  size_t contested_initial = 0;
  size_t certified_prefix = 0;  ///< certified top positions (top-k target)
  bool deadline_hit = false;
};

}  // namespace dissodb

#endif  // DISSODB_ANYTIME_ANYTIME_H_
