// Symmetric lower bounds from oblivious weight scaling.
//
// The dissociation plans give per-answer *upper* bounds: each minimal plan
// P with induced dissociation Delta_P treats the d distinct dissociated
// copies of a tuple as independent events with the tuple's own probability
// p, which can only raise the score (Theorem 12). Rescaling every weight to
// p' = 1 - (1-p)^(1/d) makes those d independent copies *jointly* as likely
// as the original tuple (1 - (1-p')^d = p), so the same plan over the
// rescaled weights computes the probability of a query that is implied by
// q — a lower bound on P(q). This is the symmetric instance of the
// oblivious-bounds framework (Gatterbauer & Suciu, "Oblivious bounds on
// the probability of Boolean functions", TODS 2014; Section 6.3 of the
// VLDB'15 paper points to it): it needs only a per-relation exponent, no
// per-tuple bookkeeping, so it reuses the evaluator unchanged.
//
// Soundness needs d_i >= the number of dissociated copies any tuple of
// atom i actually has, i.e. the product of active-domain sizes of the
// atom's extra variables. Over-estimating d only loosens the bound (p'
// shrinks monotonically in d, and plan scores are monotone in the input
// probabilities), so we take, per atom, the union of extra variables over
// *all* compiled plans (including every Min branch) and exact — not
// hash-approximate — active-domain counts.
//
// "No table copies": the transform touches only the weight column of a
// shallow (copy-on-write) Table copy; payload columns stay shared with the
// pinned snapshot.
#ifndef DISSODB_ANYTIME_LOWER_BOUND_H_
#define DISSODB_ANYTIME_LOWER_BOUND_H_

#include <vector>

#include "src/common/status.h"
#include "src/engine/prepared_query.h"
#include "src/exec/evaluator.h"
#include "src/exec/rel.h"
#include "src/obs/trace.h"
#include "src/query/cq.h"
#include "src/serve/scheduler.h"
#include "src/storage/snapshot.h"

namespace dissodb {

/// Per-atom dissociation exponents d_i for the compiled plans of `q`:
/// the product of exact active-domain sizes of every extra variable any
/// plan attaches to atom i (1.0 for undissociated atoms), clamped to
/// [1, 1e15]. `overrides` (canonical atom index space) substitute the
/// tables used both for counting and, later, for evaluation.
std::vector<double> ObliviousExponents(const Snapshot& snap,
                                       const ConjunctiveQuery& q,
                                       const CompiledPlans& compiled,
                                       const AtomOverrides& overrides);

/// Evaluates the compiled plans over obliviously rescaled weights
/// (p -> 1 - (1-p)^(1/d_i) per atom) and min-merges, yielding per-answer
/// lower bounds on P(q = a) in canonical variable space. Mirrors the
/// upper-bound evaluation: same plans, same snapshot, same overrides —
/// only the weight columns differ, bound to the evaluator untagged so the
/// rescaled results never enter the shared result cache. `exponents` must
/// come from ObliviousExponents (or be elementwise >= it).
Result<Rel> ObliviousLowerBounds(const Snapshot& snap,
                                 const ConjunctiveQuery& q,
                                 const CompiledPlans& compiled,
                                 const AtomOverrides& overrides,
                                 const std::vector<double>& exponents,
                                 Scheduler* scheduler = nullptr,
                                 obs::TraceContext* trace = nullptr,
                                 uint32_t trace_parent = 0);

}  // namespace dissodb

#endif  // DISSODB_ANYTIME_LOWER_BOUND_H_
