// Bounded, thread-safe cache of evaluated subplan relations, shared across
// queries — the paper's Opt. 2 (reuse common subplans) lifted from one plan
// DAG to the whole workload. Entries are keyed by the query-independent plan
// fingerprint (PlanFingerprint) *and* the snapshot version they were
// computed against, so a mutation can never serve stale results — and
// several versions may coexist: executions against a held (older) snapshot
// keep hitting their own entries while executions against the live head
// populate the new version's. Versions no held snapshot pins anymore are
// swept by EvictOlderThan (driven from the database's commit hook);
// anything it misses falls to ordinary LRU pressure.
//
// Values are shared_ptr<const Rel>: immutable, so a hit is a pointer copy
// and concurrent readers need no further synchronization.
//
// In-flight deduplication: concurrent requesters of the same missing key
// never compute twice. Acquire() hands exactly one caller a leader ticket
// (it computes and must Complete() or Abandon()); every concurrent
// requester gets a shared_future tied to that computation and waits instead
// of recomputing. Waiting is deadlock-free on the work-sharing Scheduler:
// a leader is by definition already running, and leaders only ever wait on
// strictly smaller subplan fingerprints, so wait chains cannot cycle.
#ifndef DISSODB_SERVE_RESULT_CACHE_H_
#define DISSODB_SERVE_RESULT_CACHE_H_

#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/exec/rel.h"

namespace dissodb {

struct DeltaRecipe;  // src/serve/delta_maintenance.h

struct ResultCacheStats {
  size_t hits = 0;
  size_t misses = 0;  ///< leader acquisitions, i.e. actual computations
  size_t in_flight_waits = 0;  ///< requests that waited on a leader instead
  size_t evictions = 0;  ///< capacity evictions + stale-version discards
  /// Entries proactively swept by EvictOlderThan (commit-time sweep of
  /// versions no held snapshot can request anymore). Also counted in
  /// `evictions`.
  size_t stale_evictions = 0;
  /// Entries republished at a newer version by delta maintenance instead
  /// of being recomputed (see NoteDeltaMaintained).
  size_t delta_maintained = 0;
  size_t entries = 0;
};

class ResultCache {
 public:
  /// Outcome of Acquire(): exactly one of three states.
  ///  - `value` non-null: cache hit, use it.
  ///  - `leader` true: the caller must compute and then Complete()
  ///    (or Abandon() on failure) for (key, db_version).
  ///  - otherwise: another thread is computing; wait on `pending`. A null
  ///    future result means the leader abandoned — compute locally.
  struct Ticket {
    std::shared_ptr<const Rel> value;
    bool leader = false;
    std::shared_future<std::shared_ptr<const Rel>> pending;
  };

  /// Holds at most `capacity` relations (LRU eviction); 0 disables the
  /// cache entirely (Get always misses, Put drops, Acquire always leads).
  explicit ResultCache(size_t capacity) : capacity_(capacity) {}

  /// Returns the cached relation for `key` computed at `db_version`, or
  /// nullptr. Entries for other versions are untouched (they may serve
  /// executions pinned to other snapshots).
  std::shared_ptr<const Rel> Get(const std::string& key, uint64_t db_version);

  /// Inserts (or refreshes) `rel` for `key` at `db_version`. An entry may
  /// carry a DeltaRecipe — everything needed to roll the cached relation
  /// forward across an append-only commit (see delta_maintenance.h).
  void Put(const std::string& key, uint64_t db_version,
           std::shared_ptr<const Rel> rel,
           std::shared_ptr<const DeltaRecipe> recipe = nullptr);

  /// Hit / lead / wait decision for one lookup (see Ticket). Leader tickets
  /// count as misses; waiter tickets count as in_flight_waits.
  Ticket Acquire(const std::string& key, uint64_t db_version);

  /// Leader publication: stores `rel` (with its maintenance recipe, if
  /// any), wakes every waiter with it, and retires the in-flight entry.
  void Complete(const std::string& key, uint64_t db_version,
                std::shared_ptr<const Rel> rel,
                std::shared_ptr<const DeltaRecipe> recipe = nullptr);

  /// Leader failure: wakes every waiter with nullptr (they compute
  /// locally) and retires the in-flight entry.
  void Abandon(const std::string& key, uint64_t db_version);

  /// Sweeps every entry whose version is below `min_live_version` (the
  /// oldest version any held snapshot still pins — such entries can never
  /// be requested again, but would otherwise linger until LRU pressure).
  /// The serving layer calls this from the database's commit hook. Returns
  /// the number of entries swept (also surfaced as stats().stale_evictions).
  size_t EvictOlderThan(uint64_t min_live_version);

  /// One entry eligible for delta maintenance: computed at the requested
  /// version and carrying a recipe.
  struct MaintainCandidate {
    std::string key;
    std::shared_ptr<const Rel> rel;
    std::shared_ptr<const DeltaRecipe> recipe;
  };

  /// Snapshots up to `limit` recipe-carrying entries stored at exactly
  /// `version`, hottest (most recently used) first. The commit hook rolls
  /// them forward to the new version and republishes via Put().
  std::vector<MaintainCandidate> CollectMaintainable(uint64_t version,
                                                     size_t limit) const;

  /// Counts `n` entries as delta-maintained (stats().delta_maintained).
  void NoteDeltaMaintained(size_t n);

  void Clear();
  ResultCacheStats stats() const;
  size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    uint64_t db_version;
    std::shared_ptr<const Rel> rel;
    std::shared_ptr<const DeltaRecipe> recipe;
    std::list<std::string>::iterator lru_pos;
  };

  struct InFlight {
    std::promise<std::shared_ptr<const Rel>> promise;
    std::shared_future<std::shared_ptr<const Rel>> future;
  };

  /// Stored entries and in-flight computations are both keyed per
  /// (key, version): entries for several live snapshot versions coexist,
  /// and a mid-batch commit starts an independent computation rather than
  /// handing waiters another version's result.
  static std::string VersionedKey(const std::string& key, uint64_t db_version) {
    return key + '@' + std::to_string(db_version);
  }

  /// Put() body; caller holds mu_.
  void PutLocked(const std::string& key, uint64_t db_version,
                 std::shared_ptr<const Rel> rel,
                 std::shared_ptr<const DeltaRecipe> recipe);

  const size_t capacity_;
  mutable std::mutex mu_;
  /// Lower bound on every stored entry's version (exact after a sweep,
  /// conservative after LRU evictions): lets EvictOlderThan skip the scan
  /// when nothing can be stale. ~0 when empty.
  uint64_t min_entry_version_ = ~uint64_t{0};
  std::unordered_map<std::string, Entry> map_;
  std::list<std::string> lru_;  // front = most recently used
  std::unordered_map<std::string, std::shared_ptr<InFlight>> in_flight_;
  size_t hits_ = 0;
  size_t misses_ = 0;
  size_t in_flight_waits_ = 0;
  size_t evictions_ = 0;
  size_t stale_evictions_ = 0;
  size_t delta_maintained_ = 0;
};

}  // namespace dissodb

#endif  // DISSODB_SERVE_RESULT_CACHE_H_
