// Bounded, thread-safe cache of evaluated subplan relations, shared across
// queries — the paper's Opt. 2 (reuse common subplans) lifted from one plan
// DAG to the whole workload. Entries are keyed by the query-independent plan
// fingerprint (PlanFingerprint) and stamped with the database version they
// were computed against; a version mismatch is a miss and evicts the stale
// entry, so mutating the database can never serve stale results.
//
// Values are shared_ptr<const Rel>: immutable, so a hit is a pointer copy
// and concurrent readers need no further synchronization. Two threads
// racing to fill the same key both compute (benign duplicated work) and the
// second Put is a no-op refresh.
#ifndef DISSODB_SERVE_RESULT_CACHE_H_
#define DISSODB_SERVE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/exec/rel.h"

namespace dissodb {

struct ResultCacheStats {
  size_t hits = 0;
  size_t misses = 0;
  size_t evictions = 0;  ///< capacity evictions + stale-version discards
  size_t entries = 0;
};

class ResultCache {
 public:
  /// Holds at most `capacity` relations (LRU eviction); 0 disables the
  /// cache entirely (Get always misses, Put drops).
  explicit ResultCache(size_t capacity) : capacity_(capacity) {}

  /// Returns the cached relation for `key` computed at `db_version`, or
  /// nullptr. A version mismatch discards the stale entry.
  std::shared_ptr<const Rel> Get(const std::string& key, uint64_t db_version);

  /// Inserts (or refreshes) `rel` for `key` at `db_version`.
  void Put(const std::string& key, uint64_t db_version,
           std::shared_ptr<const Rel> rel);

  void Clear();
  ResultCacheStats stats() const;
  size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    uint64_t db_version;
    std::shared_ptr<const Rel> rel;
    std::list<std::string>::iterator lru_pos;
  };

  const size_t capacity_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> map_;
  std::list<std::string> lru_;  // front = most recently used
  size_t hits_ = 0;
  size_t misses_ = 0;
  size_t evictions_ = 0;
};

}  // namespace dissodb

#endif  // DISSODB_SERVE_RESULT_CACHE_H_
