#include "src/serve/scheduler.h"

#include <algorithm>
#include <memory>

namespace dissodb {

Scheduler::Scheduler(int num_threads, obs::MetricsRegistry* metrics)
    : metrics_(metrics != nullptr ? metrics : &obs::MetricsRegistry::Global()),
      tasks_executed_(metrics_->counter("scheduler.tasks_executed")),
      tasks_cancelled_(metrics_->counter("scheduler.tasks_cancelled")),
      morsels_(metrics_->counter("scheduler.morsels")),
      busy_workers_(metrics_->gauge("scheduler.busy_workers")),
      pool_threads_(metrics_->gauge("scheduler.pool_threads")) {
  if (num_threads <= 0) {
    unsigned hw = std::thread::hardware_concurrency();
    num_threads = hw > 0 ? static_cast<int>(hw) : 1;
  }
  pool_threads_->Set(num_threads);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Scheduler::~Scheduler() {
  {
    std::lock_guard lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

Scheduler::ClassMetrics* Scheduler::MetricsFor(const char* task_class) {
  // Caller holds mu_. The per-scheduler cache keeps the registry's map
  // lookup off the Submit path after a class's first use.
  auto it = class_metrics_.find(task_class);
  if (it != class_metrics_.end()) return &it->second;
  ClassMetrics cm;
  cm.queue_wait = metrics_->histogram(std::string("scheduler.queue_wait_ns.") +
                                      task_class);
  cm.run = metrics_->histogram(std::string("scheduler.run_ns.") + task_class);
  return &class_metrics_.emplace(task_class, cm).first->second;
}

void Scheduler::RunTask(QueuedTask task) {
  if (task.token != nullptr && task.token->cancelled()) {
    // Skip without running: record the queue wait (the task did wait), but
    // not a run time — it never started.
    task.cm->queue_wait->Record(obs::NowNanos() - task.enqueue_ns);
    local_cancelled_.fetch_add(1, std::memory_order_relaxed);
    tasks_cancelled_->Add(1);
    if (task.done) task.done();
    return;
  }
  const uint64_t start = obs::NowNanos();
  task.cm->queue_wait->Record(start - task.enqueue_ns);
  busy_workers_->Add(1);
  task.fn();
  busy_workers_->Add(-1);
  task.cm->run->Record(obs::NowNanos() - start);
  CountTask();
  if (task.done) task.done();
}

void Scheduler::WorkerLoop() {
  while (true) {
    QueuedTask task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    RunTask(std::move(task));
  }
}

void Scheduler::Submit(std::function<void()> fn, const char* task_class) {
  const uint64_t now = obs::NowNanos();
  {
    std::lock_guard lock(mu_);
    queue_.push_back(QueuedTask{std::move(fn), now, MetricsFor(task_class)});
  }
  cv_.notify_one();
}

void Scheduler::Submit(std::function<void()> fn, const char* task_class,
                       std::shared_ptr<const CancelToken> token,
                       std::function<void()> done) {
  const uint64_t now = obs::NowNanos();
  {
    std::lock_guard lock(mu_);
    queue_.push_back(QueuedTask{std::move(fn), now, MetricsFor(task_class),
                                std::move(token), std::move(done)});
  }
  cv_.notify_one();
}

bool Scheduler::TryRunOne() {
  QueuedTask task;
  {
    std::lock_guard lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  RunTask(std::move(task));
  return true;
}

namespace {

/// Completion state shared between a blocking caller and its pool tasks.
struct WaitGroup {
  std::mutex mu;
  std::condition_variable cv;
  size_t pending;

  explicit WaitGroup(size_t n) : pending(n) {}

  void Done(size_t n = 1) {
    std::lock_guard lock(mu);
    pending -= n;
    if (pending == 0) cv.notify_all();
  }
  void Wait() {
    std::unique_lock lock(mu);
    cv.wait(lock, [this] { return pending == 0; });
  }
};

}  // namespace

void Scheduler::RunAll(std::vector<std::function<void()>> fns) {
  if (fns.empty()) return;
  if (fns.size() == 1) {
    fns[0]();
    CountTask();
    return;
  }
  // Shared cursor: pool threads and the caller claim tasks from the same
  // counter, so the caller always makes progress (no deadlock if the pool
  // is saturated by other work, including the caller's own parent task).
  auto next = std::make_shared<std::atomic<size_t>>(0);
  auto wg = std::make_shared<WaitGroup>(fns.size());
  auto tasks = std::make_shared<std::vector<std::function<void()>>>(
      std::move(fns));
  const size_t n = tasks->size();

  auto drain = [this, next, wg, tasks, n] {
    size_t i;
    while ((i = next->fetch_add(1, std::memory_order_relaxed)) < n) {
      (*tasks)[i]();
      CountTask();
      wg->Done();
    }
  };
  const size_t helpers =
      std::min(n - 1, static_cast<size_t>(num_threads()));
  for (size_t i = 0; i < helpers; ++i) Submit(drain, "helper");
  drain();
  wg->Wait();
}

void Scheduler::ParallelFor(size_t begin, size_t end, size_t grain,
                            const std::function<void(size_t, size_t)>& fn) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const size_t n = end - begin;
  const size_t num_morsels = (n + grain - 1) / grain;
  if (num_morsels <= 1 || num_threads() == 0) {
    fn(begin, end);
    CountTask();
    morsels_->Add(1);
    return;
  }

  // Pool helpers may still be queued (or racing the cursor) after the last
  // morsel finishes, so everything they touch — cursor, wait group, and a
  // copy of `fn` — lives in shared state rather than the caller's frame.
  auto next = std::make_shared<std::atomic<size_t>>(0);
  auto wg = std::make_shared<WaitGroup>(num_morsels);
  auto shared_fn = std::make_shared<std::function<void(size_t, size_t)>>(fn);
  auto drain = [this, next, wg, shared_fn, begin, end, grain, num_morsels] {
    size_t k;
    while ((k = next->fetch_add(1, std::memory_order_relaxed)) < num_morsels) {
      const size_t lo = begin + k * grain;
      const size_t hi = std::min(lo + grain, end);
      (*shared_fn)(lo, hi);
      CountTask();
      wg->Done();
    }
  };
  morsels_->Add(num_morsels);
  const size_t helpers =
      std::min(num_morsels - 1, static_cast<size_t>(num_threads()));
  for (size_t i = 0; i < helpers; ++i) Submit(drain, "helper");
  drain();
  wg->Wait();
}

}  // namespace dissodb
