#include "src/serve/delta_maintenance.h"

#include <cstdint>
#include <utility>

#include "src/exec/hash_table.h"
#include "src/exec/operators.h"
#include "src/storage/columnar.h"

namespace dissodb {

namespace {

bool IsTwoScanJoin(const PlanPtr& p) {
  return p->kind == PlanNode::Kind::kJoin && p->children.size() == 2 &&
         p->children[0]->kind == PlanNode::Kind::kScan &&
         p->children[1]->kind == PlanNode::Kind::kScan;
}

}  // namespace

bool DeltaMaintainableShape(const PlanPtr& plan) {
  if (plan == nullptr) return false;
  if (plan->kind == PlanNode::Kind::kJoin) return IsTwoScanJoin(plan);
  if (plan->kind == PlanNode::Kind::kProject && plan->children.size() == 1) {
    const PlanPtr& c = plan->children[0];
    return c->kind == PlanNode::Kind::kScan || IsTwoScanJoin(c);
  }
  return false;
}

Result<MaintainedEntry> DeltaMaintainEntry(
    const Snapshot& snap, std::shared_ptr<const Rel> old_rel,
    std::shared_ptr<const DeltaRecipe> recipe,
    const std::unordered_map<std::string, size_t>& first_new_row_by_name,
    Scheduler* scheduler) {
  if (old_rel == nullptr || recipe == nullptr || recipe->query == nullptr ||
      !DeltaMaintainableShape(recipe->plan)) {
    return Status::InvalidArgument("not a maintainable recipe");
  }
  const ConjunctiveQuery& q = *recipe->query;
  const PlanPtr& plan = recipe->plan;

  // The root's scan inputs in child order, and the two-scan join feeding
  // the root when there is one.
  const PlanNode* join = nullptr;
  std::vector<PlanPtr> scans;
  if (plan->kind == PlanNode::Kind::kProject) {
    const PlanPtr& c = plan->children[0];
    if (c->kind == PlanNode::Kind::kScan) {
      scans = {c};
    } else {
      join = c.get();
      scans = {c->children[0], c->children[1]};
    }
  } else {
    join = plan.get();
    scans = {plan->children[0], plan->children[1]};
  }
  if (recipe->child_rows.size() != scans.size()) {
    return Status::InvalidArgument("recipe input sizes out of shape");
  }

  // Which scans read an appended table? Exactly one is maintainable; a
  // self-join of the appended table is not (its delta is not a suffix of
  // the join output).
  int changed = -1;
  size_t begin_row = 0;
  for (size_t i = 0; i < scans.size(); ++i) {
    const int atom_idx = scans[i]->atom_idx;
    if (atom_idx < 0 || atom_idx >= q.num_atoms()) {
      return Status::InvalidArgument("recipe scan atom out of range");
    }
    auto it = first_new_row_by_name.find(q.atom(atom_idx).relation);
    if (it == first_new_row_by_name.end()) continue;
    if (changed >= 0) {
      return Status::Unimplemented("several scans read appended tables");
    }
    changed = static_cast<int>(i);
    begin_row = it->second;
  }
  if (changed < 0) {
    // No scanned table gained rows: the from-scratch result at the new
    // version is the cached relation itself — republish as is.
    return MaintainedEntry{std::move(old_rel), std::move(recipe)};
  }

  // Delta of the changed scan: exactly the appended suffix of the full
  // scan's selection, in the full scan's row order.
  auto dscan = ScanAtomTail(snap, q, scans[changed]->atom_idx, begin_row,
                            scheduler);
  if (!dscan.ok()) return dscan.status();
  const size_t scan_delta_rows = dscan->NumRows();

  std::vector<size_t> new_child_rows = recipe->child_rows;
  new_child_rows[changed] += scan_delta_rows;

  // Delta of the root's input: the tail scan itself, or its join with the
  // unchanged side.
  Rel delta_in = std::move(*dscan);
  if (join != nullptr) {
    // The evaluator starts its greedy join order from the strictly
    // smallest input (ties keep child 0) and HashJoin builds on it (it is
    // never larger than the other side), probing the remaining input. The
    // appended side must be that probe at both the old and the new sizes:
    // then the from-scratch output is the old output plus the appended
    // probe rows' pairs, in order, against an identical build index.
    const size_t first_old =
        (recipe->child_rows[1] < recipe->child_rows[0]) ? 1 : 0;
    const size_t first_new = (new_child_rows[1] < new_child_rows[0]) ? 1 : 0;
    if (changed == static_cast<int>(first_old) || first_new != first_old) {
      return Status::Unimplemented("appended side is (or becomes) the build");
    }
    // The unchanged side rescans identically: its table gained no rows.
    auto bscan = ScanAtom(snap, q, scans[first_old]->atom_idx,
                          /*table=*/nullptr, scheduler);
    if (!bscan.ok()) return bscan.status();
    if (bscan->NumRows() != recipe->child_rows[first_old]) {
      return Status::Internal("unchanged join input changed size");
    }
    delta_in = HashJoinBuildProbe(*bscan, delta_in, scheduler);
  }

  // ------------------------------------------------------------------
  // kJoin root: the maintained relation is the old output plus the delta
  // pairs, appended in probe order.
  // ------------------------------------------------------------------
  if (plan->kind == PlanNode::Kind::kJoin) {
    if (delta_in.var_mask() != old_rel->var_mask()) {
      return Status::Internal("join delta variables diverge from the entry");
    }
    auto merged = std::make_shared<Rel>(*old_rel);  // shallow; COW appends
    merged->AppendRows(delta_in);
    auto nr = std::make_shared<DeltaRecipe>(*recipe);
    nr->child_rows = std::move(new_child_rows);
    return MaintainedEntry{std::move(merged),
                           std::shared_ptr<const DeltaRecipe>(std::move(nr))};
  }

  // ------------------------------------------------------------------
  // kProject root: continue each group's complement-product fold over the
  // delta rows. Group order is first occurrence, so old groups keep their
  // positions and new groups append in delta first-occurrence order —
  // exactly the from-scratch grouping over (old input ++ delta).
  // ------------------------------------------------------------------
  if (recipe->project_acc == nullptr ||
      recipe->project_acc->size() != old_rel->NumRows() ||
      old_rel->arity() == 0) {
    return Status::InvalidArgument("projection recipe has no accumulators");
  }
  const size_t old_n = old_rel->NumRows();
  const size_t dn = delta_in.NumRows();
  if (dn == 0) {
    // Appends were filtered out (or the delta joined to nothing): the
    // result is unchanged, only the input sizes moved.
    auto nr = std::make_shared<DeltaRecipe>(*recipe);
    nr->child_rows = std::move(new_child_rows);
    return MaintainedEntry{std::move(old_rel),
                           std::shared_ptr<const DeltaRecipe>(std::move(nr))};
  }

  // Key columns: the cached relation's columns are exactly the kept
  // variables (identity positions); map them into the delta input.
  const int arity = old_rel->arity();
  std::vector<int> identity(arity);
  std::vector<int> dkey(arity);
  for (int i = 0; i < arity; ++i) {
    identity[i] = i;
    dkey[i] = delta_in.ColIndex(old_rel->vars()[i]);
    if (dkey[i] < 0) {
      return Status::Internal("projection delta lacks a kept variable");
    }
  }
  // Key hashes are a function of (type, payload bits) only, so hashing the
  // old groups and the delta rows separately puts equal keys in one chain.
  HashVector oh = HashKeyColumns(*old_rel, identity, scheduler);
  HashVector dh = HashKeyColumns(delta_in, dkey, scheduler);

  // Group ids: [0, old_n) are the cached groups, >= old_n are new groups
  // represented by their first delta row.
  FlatHashIndex index(old_n + dn);
  std::vector<uint32_t> next;
  next.reserve(old_n + dn);
  for (size_t g = 0; g < old_n; ++g) {
    uint32_t& head = index.HeadFor(oh[g]);
    next.push_back(head);
    head = static_cast<uint32_t>(g);
  }

  std::vector<double> new_acc(*recipe->project_acc);
  new_acc.reserve(old_n + dn);
  std::vector<uint32_t> new_rep;  // delta row representing each new group
  std::vector<bool> touched(old_n, false);
  const WeightColumn& dw = *delta_in.weights();
  for (size_t r = 0; r < dn; ++r) {
    uint32_t& head = index.HeadFor(dh[r]);
    uint32_t g = head;
    while (g != FlatHashIndex::kNil) {
      const bool eq =
          g < old_n
              ? KeysEqual(delta_in, r, dkey, *old_rel, g, identity)
              : KeysEqual(delta_in, r, dkey, delta_in, new_rep[g - old_n],
                          dkey);
      if (eq) break;
      g = next[g];
    }
    if (g == FlatHashIndex::kNil) {
      g = static_cast<uint32_t>(old_n + new_rep.size());
      next.push_back(head);
      head = g;
      new_rep.push_back(static_cast<uint32_t>(r));
      new_acc.push_back(1.0 - dw[r]);  // the fold's init on the first row
    } else {
      // Continue the fold with the identical multiply the from-scratch
      // sequential scan would apply next.
      new_acc[g] *= 1.0 - dw[r];
      if (g < old_n) touched[g] = true;
    }
  }

  // Assemble: shallow copy of the cached relation; refinalize touched
  // groups (untouched ones keep their exact old score — same accumulator,
  // same 1 - acc); append the new groups.
  auto merged = std::make_shared<Rel>(*old_rel);
  for (size_t g = 0; g < old_n; ++g) {
    if (touched[g]) merged->SetScore(g, 1.0 - new_acc[g]);
  }
  if (!new_rep.empty()) {
    std::vector<ColumnPtr> cols;
    cols.reserve(arity);
    for (int c : dkey) {
      cols.push_back(std::make_shared<Column>(
          Column::Gathered(*delta_in.col(c), new_rep, scheduler)));
    }
    std::vector<double> fin(new_rep.size());
    for (size_t i = 0; i < new_rep.size(); ++i) {
      fin[i] = 1.0 - new_acc[old_n + i];
    }
    auto scores = std::make_shared<WeightColumn>(fin);
    Rel adds = Rel::FromColumns(old_rel->vars(), std::move(cols),
                                std::move(scores), new_rep.size());
    merged->AppendRows(adds);
  }

  auto nr = std::make_shared<DeltaRecipe>();
  nr->plan = recipe->plan;
  nr->query = recipe->query;
  nr->project_acc =
      std::make_shared<const std::vector<double>>(std::move(new_acc));
  nr->child_rows = std::move(new_child_rows);
  return MaintainedEntry{std::move(merged),
                         std::shared_ptr<const DeltaRecipe>(std::move(nr))};
}

}  // namespace dissodb
