// Fixed thread pool with a shared work queue, used by the serving layer for
// two kinds of parallelism:
//   - inter-query: independent plan evaluations of a batch run concurrently
//     (QueryEngine::RunBatch submits one task per query), and
//   - intra-operator: the hot vectorized operators split their row ranges
//     into morsels and fan them out (ParallelFor), so one large join or
//     grouping uses all cores.
//
// ParallelFor is *work-sharing*: the calling thread claims morsels from the
// same atomic cursor as the pool threads, so nested calls (a pooled query
// task invoking a morsel-parallel operator on the same scheduler) can never
// deadlock — the caller always makes progress even if every pool thread is
// busy elsewhere.
//
// Telemetry: every queue task records its enqueue->start wait and its run
// time into per-task-class histograms on the attached MetricsRegistry
// (scheduler.queue_wait_ns.<class> / scheduler.run_ns.<class>), alongside
// a busy-worker gauge and a ParallelFor morsel counter — the raw data for
// tail-latency work on the serve-under-writer path. Task classes are
// caller-chosen labels (the engine submits query tasks as "query"; the
// internal morsel drain helpers are "helper").
#ifndef DISSODB_SERVE_SCHEDULER_H_
#define DISSODB_SERVE_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/obs/metrics.h"

namespace dissodb {

/// \brief Cooperative cancellation handle shared between a controller and
/// the tasks it schedules (the anytime refinement rounds are the first
/// user: a deadline must abort cleanly mid-refinement). A token trips
/// either explicitly (Cancel) or implicitly once `deadline_ns` (absolute,
/// obs::NowNanos clock) passes. Checking is lock-free; tasks poll it
/// between work batches, and the Scheduler skips queued tasks whose token
/// is already tripped when they would start.
class CancelToken {
 public:
  CancelToken() = default;
  /// Auto-cancels once NowNanos() >= deadline_ns; 0 = no deadline.
  explicit CancelToken(uint64_t deadline_ns) : deadline_ns_(deadline_ns) {}

  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  bool cancelled() const {
    if (cancelled_.load(std::memory_order_acquire)) return true;
    return deadline_ns_ != 0 && obs::NowNanos() >= deadline_ns_;
  }

 private:
  std::atomic<bool> cancelled_{false};
  uint64_t deadline_ns_ = 0;
};

class Scheduler {
 public:
  /// Starts `num_threads` workers; 0 means std::thread::hardware_concurrency.
  /// Telemetry lands on `metrics` (nullptr = the process-global registry).
  explicit Scheduler(int num_threads = 0,
                     obs::MetricsRegistry* metrics = nullptr);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Total tasks executed (queue tasks + morsels) by *this* pool, for
  /// serving stats. Kept per-instance (the registry counter with the same
  /// meaning aggregates across every pool sharing the registry).
  size_t tasks_executed() const {
    return local_tasks_.load(std::memory_order_relaxed);
  }

  /// Enqueues `fn` for execution on some pool thread. `task_class` labels
  /// the queue-wait / run-time histograms the task records into; reuse a
  /// small set of stable names ("query", "helper", default "task").
  void Submit(std::function<void()> fn, const char* task_class = "task");

  /// Cancellable Submit: `fn` is skipped (never invoked) when `token` is
  /// already cancelled at the moment the task would start — counted in
  /// scheduler.tasks_cancelled instead of the run histogram. `done`, when
  /// non-null, is invoked exactly once either way (after `fn` returns, or
  /// at skip time), so a controller can join on a round of cancellable
  /// tasks without futures that a skip would leave unresolved.
  void Submit(std::function<void()> fn, const char* task_class,
              std::shared_ptr<const CancelToken> token,
              std::function<void()> done = nullptr);

  /// Tasks skipped because their token was cancelled before they started.
  size_t tasks_cancelled() const {
    return local_cancelled_.load(std::memory_order_relaxed);
  }

  /// Runs one queued task on the calling thread, if any is pending; returns
  /// whether a task ran. Lets a thread that is about to block on an
  /// external completion (e.g. a QueryEngine::Submit future) help drain the
  /// queue instead of idling — the work-sharing idea of ParallelFor applied
  /// to whole queue tasks.
  bool TryRunOne();

  /// Runs all of `fns` and returns when every one has finished. The calling
  /// thread participates, so this works even with zero pool threads.
  void RunAll(std::vector<std::function<void()>> fns);

  /// Splits [begin, end) into morsels of at most `grain` rows and runs
  /// `fn(lo, hi)` for each, in parallel, returning when all morsels are
  /// done. Morsel index k covers [begin + k*grain, ...); callers that need
  /// deterministic output collect per-morsel buffers indexed by
  /// (lo - begin) / grain and concatenate in index order.
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t, size_t)>& fn);

 private:
  /// Cached per-class metric handles (one histogram pair per task class).
  struct ClassMetrics {
    obs::Histogram* queue_wait = nullptr;
    obs::Histogram* run = nullptr;
  };

  struct QueuedTask {
    std::function<void()> fn;
    uint64_t enqueue_ns = 0;
    ClassMetrics* cm = nullptr;
    /// Non-null for cancellable tasks (Submit with a CancelToken).
    std::shared_ptr<const CancelToken> token;
    /// Completion callback; invoked whether the task ran or was skipped.
    std::function<void()> done;
  };

  void WorkerLoop();
  /// Dequeued-task body shared by WorkerLoop and TryRunOne: records the
  /// queue wait, runs, records the run time, counts the task.
  void RunTask(QueuedTask task);
  /// Handle lookup (under mu_) with a per-scheduler cache.
  ClassMetrics* MetricsFor(const char* task_class);

  /// Counts a finished task into both the per-instance total and the
  /// registry counter.
  void CountTask() {
    local_tasks_.fetch_add(1, std::memory_order_relaxed);
    tasks_executed_->Add(1);
  }

  obs::MetricsRegistry* metrics_;
  std::atomic<size_t> local_tasks_{0};
  std::atomic<size_t> local_cancelled_{0};
  obs::Counter* tasks_executed_;
  obs::Counter* tasks_cancelled_;
  obs::Counter* morsels_;
  obs::Gauge* busy_workers_;
  obs::Gauge* pool_threads_;

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<QueuedTask> queue_;
  std::unordered_map<std::string, ClassMetrics> class_metrics_;
  bool shutdown_ = false;
};

}  // namespace dissodb

#endif  // DISSODB_SERVE_SCHEDULER_H_
