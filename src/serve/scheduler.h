// Fixed thread pool with a shared work queue, used by the serving layer for
// two kinds of parallelism:
//   - inter-query: independent plan evaluations of a batch run concurrently
//     (QueryEngine::RunBatch submits one task per query), and
//   - intra-operator: the hot vectorized operators split their row ranges
//     into morsels and fan them out (ParallelFor), so one large join or
//     grouping uses all cores.
//
// ParallelFor is *work-sharing*: the calling thread claims morsels from the
// same atomic cursor as the pool threads, so nested calls (a pooled query
// task invoking a morsel-parallel operator on the same scheduler) can never
// deadlock — the caller always makes progress even if every pool thread is
// busy elsewhere.
#ifndef DISSODB_SERVE_SCHEDULER_H_
#define DISSODB_SERVE_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dissodb {

class Scheduler {
 public:
  /// Starts `num_threads` workers; 0 means std::thread::hardware_concurrency.
  explicit Scheduler(int num_threads = 0);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Total tasks executed (queue tasks + morsels), for serving stats.
  size_t tasks_executed() const {
    return tasks_executed_.load(std::memory_order_relaxed);
  }

  /// Enqueues `fn` for execution on some pool thread.
  void Submit(std::function<void()> fn);

  /// Runs one queued task on the calling thread, if any is pending; returns
  /// whether a task ran. Lets a thread that is about to block on an
  /// external completion (e.g. a QueryEngine::Submit future) help drain the
  /// queue instead of idling — the work-sharing idea of ParallelFor applied
  /// to whole queue tasks.
  bool TryRunOne();

  /// Runs all of `fns` and returns when every one has finished. The calling
  /// thread participates, so this works even with zero pool threads.
  void RunAll(std::vector<std::function<void()>> fns);

  /// Splits [begin, end) into morsels of at most `grain` rows and runs
  /// `fn(lo, hi)` for each, in parallel, returning when all morsels are
  /// done. Morsel index k covers [begin + k*grain, ...); callers that need
  /// deterministic output collect per-morsel buffers indexed by
  /// (lo - begin) / grain and concatenate in index order.
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t, size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::atomic<size_t> tasks_executed_{0};
};

}  // namespace dissodb

#endif  // DISSODB_SERVE_SCHEDULER_H_
