// Semi-naive delta maintenance of cached subplan results across
// append-only commits.
//
// An append-only commit leaves every pre-existing row of every table
// byte-identical and only adds rows at the end (CommitInfo::append_only).
// For a cached relation whose plan reads exactly one appended table
// through exactly one scan, the from-scratch result at the new version is
// the old result plus the contribution of the appended rows — so instead
// of sweeping the entry and recomputing it from the full table, the
// serving layer re-evaluates the plan with the changed scan restricted to
// the appended suffix (ScanAtomTail) and merges the delta into the cached
// relation. Cost is proportional to the delta, not the table.
//
// Bit-identity is the contract, not approximate equality: a maintained
// entry must equal the from-scratch evaluation at the new version bit for
// bit, because cached results are shared across queries and compared
// against pinned-snapshot replays. Two properties make this achievable:
//
//  - Join deltas: the from-scratch join probes the grown side against the
//    unchanged build side, and its probe-major output for the unchanged
//    probe prefix is exactly the old output. Re-joining only the appended
//    probe rows with the build/probe roles pinned (HashJoinBuildProbe)
//    yields exactly the missing suffix. Maintenance therefore requires
//    the appended side to be the probe at both the old and the new sizes
//    under the evaluator's greedy pick; role flips fall back to sweeping.
//
//  - Projection scores: s(group) = 1 - prod(1 - s_i) folded sequentially
//    in row order. The recipe stores each group's raw complement product
//    acc_g = prod(1 - s_i) (before the 1 - acc finalization), so appended
//    rows continue the fold with the identical multiply sequence the
//    from-scratch evaluation would execute. Untouched groups keep their
//    exact old score; touched groups finalize the continued fold. (A
//    log-space merge of finalized scores would NOT be bit-identical —
//    floating-point reassociation — which is why the raw accumulators are
//    stored.)
//
// Supported root shapes (everything else falls back to the commit sweep):
//   project(scan), project(join(scan, scan)), join(scan, scan)
// with no atom-table overrides and, for projections, at least one kept
// variable (the fused boolean accumulator folds in SIMD lanes whose state
// is not resumable row-by-row).
#ifndef DISSODB_SERVE_DELTA_MAINTENANCE_H_
#define DISSODB_SERVE_DELTA_MAINTENANCE_H_

#include <cstddef>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/exec/rel.h"
#include "src/plan/plan.h"
#include "src/query/cq.h"
#include "src/storage/snapshot.h"

namespace dissodb {

class Scheduler;  // src/serve/scheduler.h

/// Everything needed to roll one cached relation forward across an
/// append-only commit. Attached to ResultCache entries by the evaluator
/// when it publishes a maintainable root shape.
struct DeltaRecipe {
  /// The subplan whose result the entry caches.
  PlanPtr plan;
  /// Own copy of the executed query (the evaluator's reference dies with
  /// the execution): atom bindings resolve scans, constants drive filters.
  std::shared_ptr<const ConjunctiveQuery> query;
  /// Per-group complement products acc_g = prod(1 - s_i) *before* the
  /// 1 - acc finalization, row-aligned with the cached relation. Null for
  /// kJoin roots (joins carry no fold to continue).
  std::shared_ptr<const std::vector<double>> project_acc;
  /// Scan-output row counts of the root's scan inputs at evaluation time,
  /// in child order (one entry for project-over-scan, two for joins).
  /// Re-derives the evaluator's greedy build/probe pick at old and new
  /// sizes without rescanning.
  std::vector<size_t> child_rows;
};

/// True iff `plan` is one of the maintainable root shapes (structure only;
/// overrides and the boolean-projection exclusion are checked by the
/// evaluator at registration time).
bool DeltaMaintainableShape(const PlanPtr& plan);

/// A rolled-forward cache entry: the relation at the new version plus the
/// recipe to roll it forward again (updated accumulators and input sizes).
struct MaintainedEntry {
  std::shared_ptr<const Rel> rel;
  std::shared_ptr<const DeltaRecipe> recipe;
};

/// Rolls `old_rel` (cached at the pre-commit version) forward to `snap`
/// (the post-commit state). `first_new_row_by_name` maps each table that
/// gained rows to its pre-commit row count (CommitInfo::deltas). Returns
/// the maintained entry — bit-identical to evaluating `recipe->plan` from
/// scratch against `snap` — or an error when the entry is not maintainable
/// for this commit (appends into the build side, role flips, several
/// changed scans); the caller then leaves the entry to the ordinary sweep.
Result<MaintainedEntry> DeltaMaintainEntry(
    const Snapshot& snap, std::shared_ptr<const Rel> old_rel,
    std::shared_ptr<const DeltaRecipe> recipe,
    const std::unordered_map<std::string, size_t>& first_new_row_by_name,
    Scheduler* scheduler = nullptr);

}  // namespace dissodb

#endif  // DISSODB_SERVE_DELTA_MAINTENANCE_H_
