#include "src/serve/result_cache.h"

namespace dissodb {

std::shared_ptr<const Rel> ResultCache::Get(const std::string& key,
                                            uint64_t db_version) {
  std::lock_guard lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  if (it->second.db_version != db_version) {
    // Stale: computed against an older database. Never serve it.
    lru_.erase(it->second.lru_pos);
    map_.erase(it);
    ++evictions_;
    ++misses_;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  ++hits_;
  return it->second.rel;
}

void ResultCache::Put(const std::string& key, uint64_t db_version,
                      std::shared_ptr<const Rel> rel) {
  if (capacity_ == 0) return;
  std::lock_guard lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second.db_version = db_version;
    it->second.rel = std::move(rel);
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return;
  }
  lru_.push_front(key);
  map_.emplace(key, Entry{db_version, std::move(rel), lru_.begin()});
  if (map_.size() > capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
  }
}

void ResultCache::Clear() {
  std::lock_guard lock(mu_);
  map_.clear();
  lru_.clear();
}

ResultCacheStats ResultCache::stats() const {
  std::lock_guard lock(mu_);
  ResultCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = map_.size();
  return s;
}

}  // namespace dissodb
