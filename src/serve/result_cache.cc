#include "src/serve/result_cache.h"

#include <algorithm>

namespace dissodb {

std::shared_ptr<const Rel> ResultCache::Get(const std::string& key,
                                            uint64_t db_version) {
  std::lock_guard lock(mu_);
  auto it = map_.find(VersionedKey(key, db_version));
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  ++hits_;
  return it->second.rel;
}

void ResultCache::PutLocked(const std::string& key, uint64_t db_version,
                            std::shared_ptr<const Rel> rel,
                            std::shared_ptr<const DeltaRecipe> recipe) {
  if (capacity_ == 0) return;
  const std::string vk = VersionedKey(key, db_version);
  auto it = map_.find(vk);
  if (it != map_.end()) {
    it->second.rel = std::move(rel);
    it->second.recipe = std::move(recipe);
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return;
  }
  lru_.push_front(vk);
  map_.emplace(vk,
               Entry{db_version, std::move(rel), std::move(recipe),
                     lru_.begin()});
  min_entry_version_ = std::min(min_entry_version_, db_version);
  if (map_.size() > capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
  }
}

void ResultCache::Put(const std::string& key, uint64_t db_version,
                      std::shared_ptr<const Rel> rel,
                      std::shared_ptr<const DeltaRecipe> recipe) {
  std::lock_guard lock(mu_);
  PutLocked(key, db_version, std::move(rel), std::move(recipe));
}

ResultCache::Ticket ResultCache::Acquire(const std::string& key,
                                         uint64_t db_version) {
  Ticket ticket;
  std::lock_guard lock(mu_);
  const std::string vk = VersionedKey(key, db_version);
  auto it = map_.find(vk);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    ++hits_;
    ticket.value = it->second.rel;
    return ticket;
  }
  if (capacity_ == 0) {
    // Cache disabled: every requester computes (and Put drops), exactly the
    // pre-dedup disabled semantics.
    ++misses_;
    ticket.leader = true;
    return ticket;
  }
  auto fit = in_flight_.find(vk);
  if (fit != in_flight_.end()) {
    ++in_flight_waits_;
    ticket.pending = fit->second->future;
    return ticket;
  }
  auto entry = std::make_shared<InFlight>();
  entry->future = entry->promise.get_future().share();
  in_flight_.emplace(vk, std::move(entry));
  ++misses_;
  ticket.leader = true;
  return ticket;
}

void ResultCache::Complete(const std::string& key, uint64_t db_version,
                           std::shared_ptr<const Rel> rel,
                           std::shared_ptr<const DeltaRecipe> recipe) {
  std::shared_ptr<InFlight> entry;
  {
    std::lock_guard lock(mu_);
    // Publish before retiring the in-flight entry: an Acquire that misses
    // the in-flight map must find the stored value.
    PutLocked(key, db_version, rel, std::move(recipe));
    auto it = in_flight_.find(VersionedKey(key, db_version));
    if (it != in_flight_.end()) {
      entry = std::move(it->second);
      in_flight_.erase(it);
    }
  }
  // Wake waiters outside the lock; they hold their own future copies.
  if (entry) entry->promise.set_value(std::move(rel));
}

void ResultCache::Abandon(const std::string& key, uint64_t db_version) {
  std::shared_ptr<InFlight> entry;
  {
    std::lock_guard lock(mu_);
    auto it = in_flight_.find(VersionedKey(key, db_version));
    if (it != in_flight_.end()) {
      entry = std::move(it->second);
      in_flight_.erase(it);
    }
  }
  if (entry) entry->promise.set_value(nullptr);
}

size_t ResultCache::EvictOlderThan(uint64_t min_live_version) {
  std::lock_guard lock(mu_);
  // Fast path for the common no-op sweep: min_entry_version_ is a lower
  // bound on every stored version, so commits with nothing stale skip the
  // O(entries) scan (readers never stall behind them).
  if (map_.empty() || min_entry_version_ >= min_live_version) return 0;
  size_t swept = 0;
  uint64_t new_min = ~uint64_t{0};
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->second.db_version < min_live_version) {
      lru_.erase(it->second.lru_pos);
      it = map_.erase(it);
      ++swept;
    } else {
      new_min = std::min(new_min, it->second.db_version);
      ++it;
    }
  }
  min_entry_version_ = map_.empty() ? ~uint64_t{0} : new_min;
  evictions_ += swept;
  stale_evictions_ += swept;
  return swept;
}

void ResultCache::Clear() {
  std::lock_guard lock(mu_);
  map_.clear();
  lru_.clear();
  min_entry_version_ = ~uint64_t{0};
  // In-flight computations are left to their leaders: Complete/Abandon
  // still finds (or tolerates missing) entries and waiters still wake.
}

std::vector<ResultCache::MaintainCandidate> ResultCache::CollectMaintainable(
    uint64_t version, size_t limit) const {
  std::vector<MaintainCandidate> out;
  std::lock_guard lock(mu_);
  // Walk the LRU list front-to-back so the hottest entries are maintained
  // first when `limit` truncates the set.
  for (const std::string& vk : lru_) {
    if (out.size() >= limit) break;
    auto it = map_.find(vk);
    if (it == map_.end()) continue;
    const Entry& e = it->second;
    if (e.db_version != version || e.recipe == nullptr) continue;
    // Recover the unversioned key: the '@<version>' suffix is appended
    // last, so strip at the final '@' (keys may contain '@' internally).
    const size_t at = vk.rfind('@');
    out.push_back(MaintainCandidate{vk.substr(0, at), e.rel, e.recipe});
  }
  return out;
}

void ResultCache::NoteDeltaMaintained(size_t n) {
  std::lock_guard lock(mu_);
  delta_maintained_ += n;
}

ResultCacheStats ResultCache::stats() const {
  std::lock_guard lock(mu_);
  ResultCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.in_flight_waits = in_flight_waits_;
  s.evictions = evictions_;
  s.stale_evictions = stale_evictions_;
  s.delta_maintained = delta_maintained_;
  s.entries = map_.size();
  return s;
}

}  // namespace dissodb
