#include "src/storage/fd.h"

#include "src/common/string_util.h"

namespace dissodb {

std::string FunctionalDependency::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < lhs.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(lhs[i]);
  }
  out += "}->{";
  for (size_t i = 0; i < rhs.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(rhs[i]);
  }
  out += "}";
  return out;
}

}  // namespace dissodb
