#include "src/storage/table.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "src/common/hash.h"
#include "src/common/string_util.h"

namespace dissodb {

void Table::AddRow(std::span<const Value> row, double p) {
  assert(static_cast<int>(row.size()) == arity());
  if (arity() == 0) {
    ++zero_arity_rows_;
  } else {
    values_.insert(values_.end(), row.begin(), row.end());
  }
  probs_.push_back(schema_.deterministic ? 1.0 : p);
}

Table Table::Filter(
    const std::function<bool(std::span<const Value>)>& pred) const {
  Table out(schema_);
  for (size_t r = 0; r < NumRows(); ++r) {
    if (pred(Row(r))) out.AddRow(Row(r), Prob(r));
  }
  return out;
}

void Table::ScaleProbabilities(double f) {
  if (schema_.deterministic) return;
  for (auto& p : probs_) p = std::clamp(p * f, 0.0, 1.0);
}

bool Table::SatisfiesFD(const FunctionalDependency& fd) const {
  // Map lhs-key -> first row index; conflict on any rhs value violates.
  std::unordered_map<size_t, std::vector<size_t>> buckets;
  for (size_t r = 0; r < NumRows(); ++r) {
    size_t h = 0x9e3779b9;
    for (int c : fd.lhs) HashCombine(&h, At(r, c).Hash());
    auto& rows = buckets[h];
    for (size_t other : rows) {
      bool same_lhs = true;
      for (int c : fd.lhs) {
        if (At(r, c) != At(other, c)) {
          same_lhs = false;
          break;
        }
      }
      if (!same_lhs) continue;
      for (int c : fd.rhs) {
        if (At(r, c) != At(other, c)) return false;
      }
    }
    rows.push_back(r);
  }
  return true;
}

Status Table::ValidateFDs() const {
  for (const auto& fd : schema_.fds) {
    if (!SatisfiesFD(fd)) {
      return Status::InvalidArgument("relation " + schema_.name +
                                     " violates FD " + fd.ToString());
    }
  }
  return Status::OK();
}

std::string Table::ToString(size_t max_rows) const {
  std::string out = schema_.ToString() + " [" + std::to_string(NumRows()) +
                    " rows]\n";
  for (size_t r = 0; r < NumRows() && r < max_rows; ++r) {
    out += "  (";
    for (int c = 0; c < arity(); ++c) {
      if (c > 0) out += ", ";
      out += At(r, c).ToString();
    }
    out += StrFormat(") p=%.4f\n", Prob(r));
  }
  if (NumRows() > max_rows) out += "  ...\n";
  return out;
}

}  // namespace dissodb
