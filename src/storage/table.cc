#include "src/storage/table.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "src/common/hash.h"
#include "src/common/string_util.h"

namespace dissodb {

Table Table::Filter(
    const std::function<bool(std::span<const Value>)>& pred) const {
  std::vector<uint32_t> sel;
  std::vector<Value> scratch(arity());
  for (size_t r = 0; r < NumRows(); ++r) {
    for (int c = 0; c < arity(); ++c) scratch[c] = At(r, c);
    if (pred(scratch)) sel.push_back(static_cast<uint32_t>(r));
  }
  return Select(sel);
}

Table Table::Select(std::span<const uint32_t> sel) const {
  if (sel.size() == NumRows()) {
    bool identity = true;
    for (size_t i = 0; i < sel.size(); ++i) {
      if (sel[i] != i) {
        identity = false;
        break;
      }
    }
    if (identity) return *this;  // shallow: shares columns
  }
  Table out(schema_);
  out.GatherImpl(*this, sel);
  return out;
}

void Table::ScaleProbabilities(double f) {
  if (schema_.deterministic || f == 1.0 || NumRows() == 0) return;
  MutableWeights()->Scale(f);
  NoteOverwrite();
}

void Table::DissociateProbabilitiesObliviously(double d) {
  if (schema_.deterministic || d <= 1.0 || NumRows() == 0) return;
  MutableWeights()->ComplementPow(1.0 / d);
  NoteOverwrite();
}

bool Table::SatisfiesFD(const FunctionalDependency& fd) const {
  // Map lhs-key -> first row index; conflict on any rhs value violates.
  std::unordered_map<size_t, std::vector<size_t>> buckets;
  for (size_t r = 0; r < NumRows(); ++r) {
    size_t h = 0x9e3779b9;
    for (int c : fd.lhs) HashCombine(&h, At(r, c).Hash());
    auto& rows = buckets[h];
    for (size_t other : rows) {
      bool same_lhs = true;
      for (int c : fd.lhs) {
        if (At(r, c) != At(other, c)) {
          same_lhs = false;
          break;
        }
      }
      if (!same_lhs) continue;
      for (int c : fd.rhs) {
        if (At(r, c) != At(other, c)) return false;
      }
    }
    rows.push_back(r);
  }
  return true;
}

Status Table::ValidateFDs() const {
  for (const auto& fd : schema_.fds) {
    if (!SatisfiesFD(fd)) {
      return Status::InvalidArgument("relation " + schema_.name +
                                     " violates FD " + fd.ToString());
    }
  }
  return Status::OK();
}

std::string Table::ToString(size_t max_rows) const {
  std::string out = schema_.ToString() + " [" + std::to_string(NumRows()) +
                    " rows]\n";
  for (size_t r = 0; r < NumRows() && r < max_rows; ++r) {
    out += "  (";
    for (int c = 0; c < arity(); ++c) {
      if (c > 0) out += ", ";
      out += At(r, c).ToString();
    }
    out += StrFormat(") p=%.4f\n", Prob(r));
  }
  if (NumRows() > max_rows) out += "  ...\n";
  return out;
}

}  // namespace dissodb
