// Database catalog: named tables plus a shared string dictionary.
#ifndef DISSODB_STORAGE_DATABASE_H_
#define DISSODB_STORAGE_DATABASE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/value.h"
#include "src/storage/table.h"

namespace dissodb {

/// Identifies one base tuple globally: (table index, row index). Used as the
/// Boolean variable id in lineage formulas.
struct TupleId {
  uint32_t table;
  uint32_t row;

  uint64_t Key() const { return (static_cast<uint64_t>(table) << 32) | row; }
  bool operator==(const TupleId& o) const {
    return table == o.table && row == o.row;
  }
  bool operator<(const TupleId& o) const { return Key() < o.Key(); }
};

struct TupleIdHash {
  size_t operator()(const TupleId& t) const { return Mix64(t.Key()); }
};

/// \brief Dictionary encoder for STRING values (one per database).
class StringPool {
 public:
  /// Returns the code for `s`, adding it if new.
  int64_t Intern(const std::string& s);
  /// Looks up an existing code; -1 if absent.
  int64_t Find(const std::string& s) const;
  const std::string& Get(int64_t code) const { return strings_[code]; }
  size_t size() const { return strings_.size(); }

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, int64_t> index_;
};

/// \brief A tuple-independent probabilistic database: a catalog of tables.
class Database {
 public:
  /// Adds a table; fails if the name already exists. Returns its index.
  Result<int> AddTable(Table table);

  /// Creates an empty table with `schema` and returns a pointer to it.
  Result<Table*> CreateTable(RelationSchema schema);

  int NumTables() const { return static_cast<int>(tables_.size()); }
  const Table& table(int idx) const { return *tables_[idx]; }
  Table* mutable_table(int idx) {
    // Handing out a mutable table conservatively invalidates cached results
    // (the serving layer's ResultCache keys on `version()`).
    ++version_;
    return tables_[idx].get();
  }

  /// Monotonic data version: bumped by every mutation entry point (adding
  /// tables, mutable table access, probability scaling). The serving
  /// layer's ResultCache stamps cached relations with this counter, so a
  /// mutation invalidates all previously cached results for this database.
  uint64_t version() const { return version_; }

  /// Index of table `name`, or -1.
  int FindTable(const std::string& name) const;
  Result<const Table*> GetTable(const std::string& name) const;

  double TupleProb(TupleId id) const {
    return tables_[id.table]->Prob(id.row);
  }
  bool TupleDeterministic(TupleId id) const {
    return tables_[id.table]->schema().deterministic;
  }

  StringPool* strings() { return &strings_; }
  const StringPool& strings() const { return strings_; }

  /// Interns `s` and wraps it as a Value.
  Value Str(const std::string& s) { return Value::StringCode(strings_.Intern(s)); }

  /// Scales all probabilistic tables by `f` (Figure 5n-5p experiments).
  void ScaleProbabilities(double f);

  /// Deep copy (tables are copied; the string pool is shared content-wise).
  Database Clone() const;

  std::string ToString() const;

 private:
  std::vector<std::unique_ptr<Table>> tables_;
  std::unordered_map<std::string, int> by_name_;
  StringPool strings_;
  uint64_t version_ = 0;
};

}  // namespace dissodb

#endif  // DISSODB_STORAGE_DATABASE_H_
