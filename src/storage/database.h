// Database catalog: named tables plus a shared string dictionary, served
// to readers through immutable snapshots and mutated through writer
// transactions.
//
// Concurrency model (the supported readers-while-writing scenario):
//
//   - Readers call snapshot() and execute against the returned Snapshot —
//     an immutable, copy-free view (shared table handles pinning sealed
//     column chunks, the catalog index, the string-pool high-water mark
//     and a version stamp). Acquisition is O(#tables) handle copies.
//   - Writers call BeginWrite() and stage every mutation (row appends,
//     probability scaling, new tables) into private copy-on-write table
//     copies; sealed chunks stay shared with every live snapshot, only
//     the tail chunk being written is detached. Commit() publishes all
//     staged changes atomically and bumps the data version; Abort() (or
//     destruction without commit) discards them. Writers serialize among
//     themselves; they never block readers and readers never block them
//     beyond the O(#tables) publish critical section.
//
//   Any number of reader threads may hold snapshots and execute while a
//   writer stages and commits: a held snapshot returns bit-identical
//   results across commits (the CI tsan job asserts this).
//
// Legacy surface: the const read accessors (table(), GetTable(), ...)
// read the live head and remain valid for single-threaded use; each
// structured mutation entry point (AddTable, CreateTable,
// ScaleProbabilities) is a shim that opens a writer, applies the one
// mutation, and commits. mutable_table() is deprecated: it hands out a
// raw pointer into the live head, which cannot be reconciled with
// concurrent readers — migrate to BeginWrite() (see README "Snapshots &
// concurrent serving").
#ifndef DISSODB_STORAGE_DATABASE_H_
#define DISSODB_STORAGE_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/value.h"
#include "src/storage/snapshot.h"
#include "src/storage/string_pool.h"
#include "src/storage/table.h"

namespace dissodb {

/// What one committed transaction did to one table, when the commit was
/// append-only: rows [first_new_row, first_new_row + new_rows) are new,
/// every older row is byte-identical to the previous version.
struct AppendOnlyDelta {
  int table_idx;
  std::string name;
  size_t first_new_row;
  size_t new_rows;
};

/// Passed to commit hooks after every successful Commit(). `append_only`
/// is true iff the transaction staged at least one table and every staged
/// table changed by row appends alone (overwrite epoch unchanged, row
/// count non-decreasing); `deltas` then lists the tables that gained rows.
/// Newly added tables are excluded from `deltas` — no plan cached before
/// this commit can reference them. The serving layer uses the deltas to
/// delta-maintain cached results instead of sweeping them.
struct CommitInfo {
  uint64_t version = 0;
  bool append_only = false;
  std::vector<AppendOnlyDelta> deltas;
  /// Wall time of stage-bookkeeping + atomic publish (not staging itself),
  /// and the total rows appended — together the commit's ns/row.
  uint64_t commit_ns = 0;
  size_t appended_rows = 0;
};

/// \brief A tuple-independent probabilistic database: a catalog of tables
/// with snapshot-isolated reads and transactional writes.
class Database {
 public:
  Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  /// Movable for value-returning builders. Moving is only legal while no
  /// writer is open, no snapshot acquisition is in flight, and no engine
  /// holds a reference — i.e. during single-threaded construction.
  Database(Database&& o) noexcept;
  Database& operator=(Database&& o) noexcept;

  // -------------------------------------------------------------------------
  // Snapshots (read surface)
  // -------------------------------------------------------------------------

  /// Acquires an immutable snapshot of the current state: O(#tables)
  /// shared-handle copies, no payload copies (chunk lists are pinned by
  /// reference). The snapshot is immune to every later mutation and may
  /// outlive this Database. Thread-safe against concurrent Commit()s.
  Snapshot snapshot() const;

  /// The oldest version any still-held snapshot pins, or the current
  /// version when none is held. The serving layer sweeps result-cache
  /// entries below this on commit: no held snapshot can request them.
  uint64_t OldestLiveSnapshotVersion() const;

  /// True iff `s` was acquired from this database. Version stamps are only
  /// comparable within one database, so the engine rejects foreign
  /// snapshots (they would poison its version-keyed caches).
  bool OwnsSnapshot(const Snapshot& s) const {
    return s.valid() && s.owner_registry() == registry_.get();
  }

  // -------------------------------------------------------------------------
  // Writer transactions (write surface)
  // -------------------------------------------------------------------------

  /// \brief A single-writer transaction: stages mutations against a pinned
  /// base state and publishes them atomically on Commit().
  ///
  /// Construction (via Database::BeginWrite) blocks until any other writer
  /// finishes; reads of the database remain available throughout. Staged
  /// tables are copy-on-write shallow copies — sealed chunks stay shared
  /// with concurrent snapshots, so staging an append copies at most the
  /// tail chunk of each touched column. Move-only.
  class Writer {
   public:
    Writer(Writer&& o) noexcept;
    Writer(const Writer&) = delete;
    Writer& operator=(const Writer&) = delete;
    Writer& operator=(Writer&&) = delete;
    /// Destruction without Commit() aborts: staged changes are discarded.
    ~Writer();

    /// Stages a new table; fails if the name exists (in the base state or
    /// staged). Returns its table index.
    Result<int> AddTable(Table table);

    /// Stages an empty table with `schema`; the returned pointer is the
    /// staged copy — valid and writable until Commit()/Abort().
    Result<Table*> CreateTable(RelationSchema schema);

    /// The staged, writable copy of table `idx` (copy-on-write: created on
    /// first access). Valid until Commit()/Abort().
    Table* mutable_table(int idx);
    Result<Table*> GetTableForWrite(const std::string& name);

    /// Appends one row to table `idx` (convenience over mutable_table).
    void AppendRow(int idx, std::span<const Value> row, double p = 1.0) {
      mutable_table(idx)->AddRow(row, p);
    }

    /// Stages scaling every probabilistic table's probabilities by `f`.
    void ScaleProbabilities(double f);

    /// Interns `s` in the shared pool and wraps it as a Value. Interning
    /// is append-only and thread-safe, so this is safe even before commit
    /// (codes never dangle; uncommitted rows are the only users).
    Value Str(const std::string& s);

    int NumTables() const;
    /// Reads table `idx` as staged (falling back to the base state).
    const Table& table(int idx) const;
    int FindTable(const std::string& name) const;

    /// Publishes every staged change atomically: the live head and the
    /// next snapshot see all of them, previously acquired snapshots none.
    /// Bumps and returns the new data version, then runs commit hooks.
    /// The writer is finished afterwards (only Abort()/destruction legal).
    uint64_t Commit();

    /// Discards staged changes; the writer is finished afterwards.
    void Abort();

   private:
    friend class Database;
    explicit Writer(Database* db);

    Database* db_ = nullptr;  // null once finished
    std::unique_lock<std::mutex> lock_;  // holds writer_mu_ while open
    Snapshot base_;           // state pinned at BeginWrite
    /// Staged table copies by index; indexes >= base table count are new.
    std::unordered_map<int, std::shared_ptr<Table>> staged_;
    /// Row count and overwrite epoch of each staged table at staging time,
    /// so Commit() can prove which tables changed by appends alone.
    struct StagedBase {
      size_t rows;
      uint64_t epoch;
    };
    std::unordered_map<int, StagedBase> staged_base_;
    std::vector<std::pair<std::string, std::shared_ptr<Table>>> added_;
    std::unordered_map<std::string, int> added_by_name_;
  };

  /// Opens a writer transaction; blocks while another writer is open.
  Writer BeginWrite();

  /// Commit hooks run after every successful Commit() (and after each
  /// legacy mutation shim), outside the publish lock, with the committed
  /// version and its append-only delta description (see CommitInfo). The
  /// serving layer uses them to delta-maintain or sweep version-stale
  /// cache entries. Returns a token for UnregisterCommitHook, which is
  /// synchronizing: once it returns, no invocation of the hook is in
  /// flight (hooks run under the hook lock — they must not (un)register
  /// hooks or open writers on this database). Const because observing
  /// commits does not mutate data.
  using CommitHook = std::function<void(const CommitInfo&)>;
  int RegisterCommitHook(CommitHook hook) const;
  void UnregisterCommitHook(int token) const;

  // -------------------------------------------------------------------------
  // Legacy mutation shims (single-writer convenience; each opens and
  // commits a Writer internally)
  // -------------------------------------------------------------------------

  /// Adds a table; fails if the name already exists. Returns its index.
  Result<int> AddTable(Table table);

  /// Creates an empty table with `schema` and returns a pointer to the
  /// live table. NOTE: rows added through the returned pointer do not bump
  /// the version; take snapshots (or run queries) only after loading
  /// finishes, exactly like the seed behavior.
  Result<Table*> CreateTable(RelationSchema schema);

  /// DEPRECATED: raw mutable access to the live table. Opens-and-commits
  /// an empty writer (bumping the version so caches invalidate
  /// conservatively, and firing commit hooks) before handing out the
  /// pointer. Mutations through the pointer race concurrent snapshot
  /// acquisition — not safe for concurrent serving; use BeginWrite().
  Table* mutable_table(int idx);

  /// Scales all probabilistic tables by `f` (Figure 5n-5p experiments).
  void ScaleProbabilities(double f);

  // -------------------------------------------------------------------------
  // Live-head read accessors (single-threaded / quiescent use; concurrent
  // readers should hold a Snapshot instead)
  // -------------------------------------------------------------------------

  int NumTables() const { return static_cast<int>(tables_.size()); }
  const Table& table(int idx) const { return *tables_[idx]; }

  /// Monotonic data version: bumped by every commit (including the legacy
  /// mutation shims). Snapshots carry the version they pinned; the serving
  /// layer's ResultCache stamps cached relations with it.
  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  /// Index of table `name`, or -1.
  int FindTable(const std::string& name) const;
  Result<const Table*> GetTable(const std::string& name) const;

  double TupleProb(TupleId id) const {
    return tables_[id.table]->Prob(id.row);
  }
  bool TupleDeterministic(TupleId id) const {
    return tables_[id.table]->schema().deterministic;
  }

  StringPool* strings() { return strings_.get(); }
  const StringPool& strings() const { return *strings_; }

  /// Interns `s` and wraps it as a Value. Thread-safe (append-only pool).
  Value Str(const std::string& s) { return Value::StringCode(strings_->Intern(s)); }

  /// Deep copy (tables are copied; the string pool is shared content-wise).
  Database Clone() const;

  std::string ToString() const;

 private:
  /// Publishes `staged`/`added` under state_mu_: applies them to the live
  /// head and returns the new version. Called by Writer::Commit.
  uint64_t Publish(
      const std::unordered_map<int, std::shared_ptr<Table>>& staged,
      const std::vector<std::pair<std::string, std::shared_ptr<Table>>>& added);

  void RunCommitHooks(const CommitInfo& info) const;

  /// Guards the live head (tables_, by_name_) and snapshot construction:
  /// every mutation of the live head happens under it, so snapshot() always
  /// observes fully-published states.
  mutable std::mutex state_mu_;
  /// Serializes writers (held for a Writer's whole lifetime).
  std::mutex writer_mu_;

  std::vector<std::shared_ptr<Table>> tables_;
  /// Shared into snapshots; replaced (copy-on-write) when tables are added.
  std::shared_ptr<const std::unordered_map<std::string, int>> by_name_;
  std::shared_ptr<StringPool> strings_;
  std::atomic<uint64_t> version_{0};
  std::shared_ptr<SnapshotRegistry> registry_;

  mutable std::mutex hooks_mu_;
  mutable std::vector<std::pair<int, CommitHook>> hooks_;
  mutable int next_hook_token_ = 0;
};

}  // namespace dissodb

#endif  // DISSODB_STORAGE_DATABASE_H_
