// Relation schemas: names, typed columns, probabilistic/deterministic flag,
// and functional dependencies.
#ifndef DISSODB_STORAGE_SCHEMA_H_
#define DISSODB_STORAGE_SCHEMA_H_

#include <string>
#include <vector>

#include "src/common/value.h"
#include "src/storage/fd.h"

namespace dissodb {

/// \brief Schema of one relation.
///
/// `deterministic == true` means every tuple has probability exactly 1; the
/// paper writes such relations with a d-exponent (e.g. T^d) and the plan
/// enumeration exploits them (Section 3.3.1).
struct RelationSchema {
  std::string name;
  std::vector<std::string> column_names;
  std::vector<ValueType> column_types;
  bool deterministic = false;
  std::vector<FunctionalDependency> fds;

  int arity() const { return static_cast<int>(column_types.size()); }

  /// Convenience factory: all-INT64 relation named `name` with columns
  /// c0..c{arity-1}.
  static RelationSchema AllInt64(const std::string& name, int arity,
                                 bool deterministic = false);

  std::string ToString() const;
};

}  // namespace dissodb

#endif  // DISSODB_STORAGE_SCHEMA_H_
