// Dictionary encoder for STRING values (one per database).
//
// The pool is append-only and internally synchronized: codes are dense
// indices handed out in interning order and never reused or rewritten, so
// any number of reader threads may Find/Get concurrently while one (or
// more) writer threads Intern new strings. Storage is a deque, so Get()
// can return stable references that outlive later growth.
//
// Snapshots (src/storage/snapshot.h) pin the pool's high-water mark at
// publish time: every code appearing in a snapshot's tables is below that
// mark, so snapshot reads never observe a code they cannot resolve.
#ifndef DISSODB_STORAGE_STRING_POOL_H_
#define DISSODB_STORAGE_STRING_POOL_H_

#include <cstdint>
#include <deque>
#include <shared_mutex>
#include <string>
#include <unordered_map>

namespace dissodb {

class StringPool {
 public:
  StringPool() = default;
  StringPool(const StringPool& o);
  StringPool& operator=(const StringPool& o);

  /// Returns the code for `s`, adding it if new. Thread-safe.
  int64_t Intern(const std::string& s);

  /// Looks up an existing code; -1 if absent. Thread-safe.
  int64_t Find(const std::string& s) const;

  /// The string for `code`. The returned reference is stable: elements are
  /// deque-backed and never move, so it stays valid across later Intern
  /// calls. Thread-safe.
  const std::string& Get(int64_t code) const;

  /// Number of interned strings (the snapshot high-water mark).
  size_t size() const;

 private:
  mutable std::shared_mutex mu_;
  std::deque<std::string> strings_;
  std::unordered_map<std::string, int64_t> index_;
};

}  // namespace dissodb

#endif  // DISSODB_STORAGE_STRING_POOL_H_
