// Columnar row storage shared by base tables and intermediate relations.
//
// A Column is a typed sequence of 64-bit payloads (int64 / double bit
// pattern / string dictionary code) — the Value tag is stored once per
// column, not per element, so scans, hashes and key comparisons run over
// flat uint64 arrays. Physically a column is partitioned into fixed-size
// **chunks** (64Ki payloads by default) held by shared_ptr:
//
//   - Every chunk except the last is full ("sealed") and immutable; only
//     the tail chunk ever grows. Index arithmetic is a shift and a mask.
//   - Copies are shallow: copying a Column copies the chunk-pointer vector
//     and shares every payload. Appending to a copy detaches only the tail
//     chunk being written (copy-on-write at chunk granularity); sealed
//     chunks stay shared between Table, Rel and ResultCache entries.
//   - Each chunk carries a zone map (min/max of its raw payloads, unsigned
//     order) maintained incrementally on append. Chunks are append-only,
//     so the zone map is always exact; scans use it to skip chunks that
//     cannot contain a constant predicate's value.
//   - Chunk boundaries are the natural morsel boundaries: the parallel
//     scan, gather and batch-hash paths fan out one task per chunk and
//     concatenate in chunk order, which keeps them bit-identical to the
//     sequential paths.
//
// Thread safety: the copy-on-write checks (`use_count() > 1` on columns
// and chunks) synchronize correctly as long as no thread copies a
// ColumnarRows object *while* another thread mutates that same object —
// distinct objects sharing columns/chunks may be copied/read/mutated
// concurrently without restriction (two concurrent mutators each observe
// a count > 1 and detach their own copy). The serving layer upholds the
// contract structurally: relations published to the shared ResultCache are
// `shared_ptr<const Rel>` and never mutated, and morsel-parallel operators
// write only to task-private buffers or disjoint chunks. The CI tsan job
// runs the engine/serve tests under -fsanitize=thread to keep this honest.
//
// Seal-on-publish: the snapshot/writer layer (src/storage/snapshot.h,
// Database::Writer) extends the same contract to base tables. Publishing a
// snapshot copies each Table shallowly under the database's state lock, so
// every chunk a snapshot can reach is shared (use_count > 1) and therefore
// *effectively sealed*: any later append — through a Writer's staged copy
// or the live head — observes the sharing and detaches before writing.
// Chunks reachable from a published snapshot are never mutated, which is
// what makes held-snapshot reads bit-identical across concurrent commits
// without any further locking.
#ifndef DISSODB_STORAGE_COLUMNAR_H_
#define DISSODB_STORAGE_COLUMNAR_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "src/common/value.h"

namespace dissodb {

class Scheduler;  // src/serve/scheduler.h

namespace internal {

/// Allocator whose containers default-initialize (leave POD memory
/// uninitialized) on resize instead of value-initializing. Gather targets
/// are resized and then fully overwritten; with std::allocator the resize
/// would first zero-sweep every output chunk — a full extra memory pass
/// on the join/projection output path.
template <class T, class A = std::allocator<T>>
class DefaultInitAllocator : public A {
 public:
  template <class U>
  struct rebind {
    using other = DefaultInitAllocator<
        U, typename std::allocator_traits<A>::template rebind_alloc<U>>;
  };
  using A::A;
  template <class U>
  void construct(U* ptr) noexcept(std::is_nothrow_default_constructible_v<U>) {
    ::new (static_cast<void*>(ptr)) U;
  }
  template <class U, class... Args>
  void construct(U* ptr, Args&&... args) {
    std::allocator_traits<A>::construct(static_cast<A&>(*this), ptr,
                                        std::forward<Args>(args)...);
  }
};

}  // namespace internal

/// Chunk payload storage; elements written by resize-then-fill producers
/// are uninitialized until filled (see DefaultInitAllocator).
using PayloadVector =
    std::vector<uint64_t, internal::DefaultInitAllocator<uint64_t>>;

/// Batch key-hash vector (HashKeyColumns output). Same default-init
/// storage: the first hashing pass writes every element from the seed, so
/// a value-initializing resize would be a wasted full-vector sweep.
using HashVector = PayloadVector;

/// Starting value of every row hash before the key columns are combined
/// in. Rows hashed over zero key columns all carry this seed.
inline constexpr uint64_t kHashSeed = 0x2545f491ULL;

/// \brief One typed column: chunked arrays of 64-bit payloads.
///
/// Columns are type-uniform in the common case. If values of a different
/// type are appended (possible only through untyped builder paths), the
/// column lazily materializes parallel per-element tag arrays; all
/// accessors remain correct, only the flat fast paths degrade.
class Column {
 public:
  /// Default payloads per chunk: 64Ki (512 KiB of payload). Must be a
  /// power of two. Tests shrink it (SetDefaultChunkCapacityForTesting) to
  /// exercise chunk seams on small inputs; each column captures the
  /// default at construction, so mixing capacities is safe.
  static constexpr size_t kDefaultChunkCapacity = size_t{1} << 16;

  /// Overrides the capacity adopted by subsequently constructed columns.
  /// Test-only; `cap` must be a power of two >= 2.
  static void SetDefaultChunkCapacityForTesting(size_t cap);
  static size_t default_chunk_capacity();

  /// One fixed-capacity payload partition. Sealed (full) chunks are
  /// immutable and shared freely; min/max form the zone map (raw-payload
  /// unsigned order — any total order is sound for equality pruning).
  struct Chunk {
    PayloadVector bits;
    std::vector<uint8_t> tags;  // empty while the column is type-uniform
    uint64_t min_bits = ~uint64_t{0};
    uint64_t max_bits = 0;
  };
  using ChunkPtr = std::shared_ptr<Chunk>;

  Column();
  explicit Column(ValueType type);

  size_t size() const { return size_; }
  ValueType type() const { return type_; }
  bool uniform() const { return !tagged_; }

  // -- Chunk geometry -------------------------------------------------------

  size_t chunk_capacity() const { return chunk_mask_ + 1; }
  size_t num_chunks() const { return chunks_.size(); }
  size_t ChunkSize(size_t ci) const { return chunks_[ci]->bits.size(); }
  /// First global row of chunk `ci`.
  size_t ChunkBegin(size_t ci) const { return ci << chunk_shift_; }
  std::span<const uint64_t> ChunkBits(size_t ci) const {
    return chunks_[ci]->bits;
  }
  /// Empty iff the chunk (and column) is type-uniform.
  std::span<const uint8_t> ChunkTags(size_t ci) const {
    return chunks_[ci]->tags;
  }
  uint64_t ChunkMinBits(size_t ci) const { return chunks_[ci]->min_bits; }
  uint64_t ChunkMaxBits(size_t ci) const { return chunks_[ci]->max_bits; }
  /// The shared chunk handle (zone maps, sharing tests, NUMA/spill hooks).
  const ChunkPtr& chunk(size_t ci) const { return chunks_[ci]; }

  // -- Element access -------------------------------------------------------

  /// Random access goes through a cached per-chunk base-pointer table
  /// (rebuilt on every mutation), so hot chain-walking compares pay one
  /// indexed load instead of a shared_ptr double-indirection.
  uint64_t RawBits(size_t i) const {
    return bases_[i >> chunk_shift_][i & chunk_mask_];
  }
  /// Prefetches the payload word of element `i`. Probe loops that learn a
  /// chain head a block ahead of walking it use this to overlap the
  /// build-side key-compare miss with the rest of the block.
  void PrefetchRaw(size_t i) const {
    __builtin_prefetch(&bases_[i >> chunk_shift_][i & chunk_mask_], 0, 1);
  }
  ValueType TypeAt(size_t i) const {
    return tagged_ ? static_cast<ValueType>(
                         chunks_[i >> chunk_shift_]->tags[i & chunk_mask_])
                   : type_;
  }
  Value Get(size_t i) const { return Value::FromRawBits(TypeAt(i), RawBits(i)); }

  // -- Mutation (appends only touch the tail chunk) -------------------------

  /// Pre-reserves tail-chunk capacity for growth up to `n` total elements.
  /// Never detaches shared payloads: a no-op reservation (`n <= size()`)
  /// must not force copy-on-write of fully shared chunks.
  void Reserve(size_t n);

  void Append(Value v);

  /// Appends a raw payload of this column's own type. Only valid on a
  /// type-uniform column (fast bulk-assembly path; no per-cell tagging).
  void AppendRaw(uint64_t bits) {
    assert(!tagged_);
    Chunk* tail = MutableTail();
    tail->bits.push_back(bits);
    if (bits < tail->min_bits) tail->min_bits = bits;
    if (bits > tail->max_bits) tail->max_bits = bits;
    ++size_;
    SyncTailBase();
  }

  /// Appends `src[idx[k]]` for every k (output assembly for joins,
  /// projections and selections — one pass per column, chunk-iterating on
  /// both sides).
  void AppendGather(const Column& src, std::span<const uint32_t> idx);

  /// Builds a fresh column containing `src[sel[k]]` for every k. With a
  /// scheduler and a large enough selection, output chunks are assembled
  /// in parallel (one task per disjoint chunk); the result is bit-identical
  /// to the sequential gather either way.
  static Column Gathered(const Column& src, std::span<const uint32_t> sel,
                         Scheduler* scheduler = nullptr);

  // -- Hashing / comparison -------------------------------------------------

  /// Element hash, consistent with Value::Hash().
  uint64_t HashAt(size_t i) const {
    return Mix64(static_cast<uint64_t>(TypeAt(i)) * 0x100000001b3ULL ^
                 RawBits(i));
  }

  /// Combines every element's hash into `out` (HashCombine semantics);
  /// `out.size()` must equal `size()`. Batch primitive for key hashing,
  /// iterating chunk-local spans. With `init`, `out`'s prior contents are
  /// ignored and every element starts from kHashSeed — the first key
  /// column's pass writes the vector instead of read-modify-writing it,
  /// which also lets callers hand in uninitialized storage.
  void HashCombineInto(std::span<uint64_t> out, bool init = false) const;

  /// Same, restricted to global rows [begin, begin + out.size()); the range
  /// may span chunk seams. Parallel hashing hands each task a chunk-aligned
  /// range so every task reads chunk-local spans.
  void HashCombineRange(size_t begin, std::span<uint64_t> out,
                        bool init = false) const;

  bool ElemEquals(size_t i, const Column& o, size_t j) const {
    return RawBits(i) == o.RawBits(j) && TypeAt(i) == o.TypeAt(j);
  }

 private:
  /// Tail chunk ready for one append: starts a new chunk when the column is
  /// empty or the tail is sealed, and detaches (copies) a shared tail.
  Chunk* MutableTail() {
    if (chunks_.empty() || chunks_.back()->bits.size() > chunk_mask_) {
      chunks_.push_back(std::make_shared<Chunk>());
      if (tagged_) chunks_.back()->tags.reserve(chunk_capacity());
    } else if (chunks_.back().use_count() > 1) {
      chunks_.back() = std::make_shared<Chunk>(*chunks_.back());
    }
    return chunks_.back().get();
  }

  /// Refreshes the cached base pointer of the tail chunk (its bits vector
  /// may have just reallocated or been detached).
  void SyncTailBase() {
    bases_.resize(chunks_.size());
    bases_.back() = chunks_.back()->bits.data();
  }
  void RebuildBases() {
    bases_.resize(chunks_.size());
    for (size_t ci = 0; ci < chunks_.size(); ++ci) {
      bases_[ci] = chunks_[ci]->bits.data();
    }
  }

  void Demote(ValueType incoming);

  ValueType type_ = ValueType::kInt64;
  bool tagged_ = false;
  size_t size_ = 0;
  uint32_t chunk_shift_;
  uint64_t chunk_mask_;
  std::vector<ChunkPtr> chunks_;
  std::vector<const uint64_t*> bases_;  // chunk base pointers (see RawBits)
};

using ColumnPtr = std::shared_ptr<Column>;

/// \brief The weight column: tuple probabilities / plan scores, chunked
/// exactly like payload columns.
///
/// Same physical contract as Column: fixed-capacity power-of-two chunks
/// held by shared_ptr, sealed (full) chunks immutable and shared, only the
/// tail chunk grows, mutation detaches the one chunk it writes. Copies are
/// shallow (the chunk-pointer vector), so a Writer's staged append costs
/// O(delta), not O(table) — the flat `vector<double>` this replaces made
/// the first staged append deep-copy the entire column. Random access goes
/// through a cached base-pointer table, so hot fold/probe loops pay one
/// indexed load, exactly like Column::RawBits.
class WeightColumn {
 public:
  struct Chunk {
    std::vector<double, internal::DefaultInitAllocator<double>> vals;
  };
  using ChunkPtr = std::shared_ptr<Chunk>;

  /// Captures Column::default_chunk_capacity() so the test shrink knob
  /// exercises weight-chunk seams too.
  WeightColumn();
  /// Adopts a flat vector (fold outputs from projections / min-merge),
  /// re-chunking it. O(n) memcpy, amortized by the producing pass.
  explicit WeightColumn(const std::vector<double>& init);

  size_t size() const { return size_; }
  double operator[](size_t i) const {
    return bases_[i >> chunk_shift_][i & chunk_mask_];
  }
  /// Prefetch companion of operator[]; see Column::PrefetchRaw.
  void PrefetchAt(size_t i) const {
    __builtin_prefetch(&bases_[i >> chunk_shift_][i & chunk_mask_], 0, 1);
  }

  /// Register-resident random-access view for hot loops. operator[] above
  /// reloads the base-pointer table and chunk geometry from the column on
  /// every call when the loop makes opaque calls in between (push_back,
  /// hash-index growth); a View copies them into locals the compiler can
  /// keep in registers. Invalidated by any mutation of the column.
  struct View {
    const double* const* bases;
    uint32_t shift;
    uint64_t mask;
    double operator[](size_t i) const {
      return bases[i >> shift][i & mask];
    }
    void PrefetchAt(size_t i) const {
      __builtin_prefetch(&bases[i >> shift][i & mask], 0, 1);
    }
  };
  View view() const { return View{bases_.data(), chunk_shift_, chunk_mask_}; }

  // -- Chunk geometry (sharing tests, chunk-local SIMD spans) ---------------

  size_t chunk_capacity() const { return chunk_mask_ + 1; }
  size_t num_chunks() const { return chunks_.size(); }
  size_t ChunkBegin(size_t ci) const { return ci << chunk_shift_; }
  const ChunkPtr& chunk(size_t ci) const { return chunks_[ci]; }
  std::span<const double> ChunkVals(size_t ci) const {
    return chunks_[ci]->vals;
  }

  // -- Mutation -------------------------------------------------------------

  /// Pre-reserves tail-chunk capacity for growth up to `n` total elements.
  /// Never detaches shared payloads (same contract as Column::Reserve).
  void Reserve(size_t n);

  void Append(double v) {
    MutableTail()->vals.push_back(v);
    ++size_;
    SyncTailBase();
  }

  /// Point write; detaches only the chunk containing `i`.
  void Set(size_t i, double v) {
    MutableChunk(i >> chunk_shift_)->vals[i & chunk_mask_] = v;
  }

  /// Appends `src[idx[k]]` for every k.
  void AppendGather(const WeightColumn& src, std::span<const uint32_t> idx);

  /// Fresh column containing `src[sel[k]]`; parallel per-output-chunk fill
  /// with a scheduler, bit-identical to sequential either way.
  static WeightColumn Gathered(const WeightColumn& src,
                               std::span<const uint32_t> sel,
                               Scheduler* scheduler = nullptr);

  /// `v = clamp(v * f, 0, 1)` for every element, detaching each chunk it
  /// rewrites. No-op when `f == 1.0` (identity rescale must not copy).
  void Scale(double f);

  /// `v = clamp(1 - (1 - v)^e, 0, 1)` for every element, detaching each
  /// chunk it rewrites. With e = 1/d this is the oblivious dissociation
  /// transform: d independent copies of the new weight union back to at
  /// most the original (1-(1-v')^d <= v), which is what makes dissociated
  /// plan scores over the transformed weights *lower*-bound the true
  /// probability (src/anytime/lower_bound.h). No-op when `e == 1.0`.
  void ComplementPow(double e);

 private:
  Chunk* MutableTail() {
    if (chunks_.empty() || chunks_.back()->vals.size() > chunk_mask_) {
      chunks_.push_back(std::make_shared<Chunk>());
    } else if (chunks_.back().use_count() > 1) {
      chunks_.back() = std::make_shared<Chunk>(*chunks_.back());
    }
    return chunks_.back().get();
  }
  Chunk* MutableChunk(size_t ci) {
    if (chunks_[ci].use_count() > 1) {
      chunks_[ci] = std::make_shared<Chunk>(*chunks_[ci]);
      bases_[ci] = chunks_[ci]->vals.data();
    }
    return chunks_[ci].get();
  }
  void SyncTailBase() {
    bases_.resize(chunks_.size());
    bases_.back() = chunks_.back()->vals.data();
  }
  void RebuildBases() {
    bases_.resize(chunks_.size());
    for (size_t ci = 0; ci < chunks_.size(); ++ci) {
      bases_[ci] = chunks_[ci]->vals.data();
    }
  }

  size_t size_ = 0;
  uint32_t chunk_shift_;
  uint64_t chunk_mask_;
  std::vector<ChunkPtr> chunks_;
  std::vector<const double*> bases_;
};

using WeightsPtr = std::shared_ptr<WeightColumn>;

/// \brief Shared base of Table and Rel: a set of columns plus a parallel
/// weight column (tuple probability / plan score) and a single row counter.
///
/// The explicit row counter makes zero-arity relations (Boolean queries)
/// fall out of the same accounting as everything else. Copies are shallow:
/// columns and weights are shared until a mutation triggers copy-on-write
/// (and column/weight mutation in turn detaches only the chunk it writes).
class ColumnarRows {
 public:
  size_t NumRows() const { return num_rows_; }
  int NumCols() const { return static_cast<int>(cols_.size()); }

  Value At(size_t r, int c) const { return cols_[c]->Get(r); }
  double Weight(size_t r) const { return (*weights_)[r]; }

  const ColumnPtr& col(int c) const { return cols_[c]; }
  const WeightsPtr& weights() const { return weights_; }

  /// Monotone counter bumped by every in-place overwrite of existing row
  /// values (SetProb / rescale). Appends leave it unchanged, so a Writer
  /// can prove a staged table changed by appends alone: epoch unchanged
  /// and row count non-decreasing (see Database::CommitInfo).
  uint64_t overwrite_epoch() const { return overwrite_epoch_; }

  /// Reserves room for `rows` total rows. A reservation that asks for no
  /// growth is a strict no-op: it must not detach fully shared columns
  /// (shared scan outputs would silently deep-copy otherwise).
  void Reserve(size_t rows) {
    if (rows <= num_rows_) return;
    for (auto& c : cols_) MutableCol(&c)->Reserve(rows);
    MutableWeights()->Reserve(rows);
  }

 protected:
  ColumnarRows() : weights_(std::make_shared<WeightColumn>()) {}

  /// Installs `n` empty columns (untyped; adopt the first appended value).
  void InitCols(int n) {
    cols_.clear();
    for (int i = 0; i < n; ++i) cols_.push_back(std::make_shared<Column>());
  }

  void AppendRowImpl(std::span<const Value> row, double w);

  /// Adopts existing columns/weights without copying (zero-copy wiring).
  void AdoptImpl(std::vector<ColumnPtr> cols, WeightsPtr weights,
                 size_t rows) {
    cols_ = std::move(cols);
    weights_ = std::move(weights);
    num_rows_ = rows;
  }

  /// Appends rows `sel` of `src` (same column layout) to this.
  void GatherImpl(const ColumnarRows& src, std::span<const uint32_t> sel);

  /// Copy-on-write access. Detaching a shared Column copies only its
  /// chunk-pointer vector; the payload chunks stay shared until written.
  static Column* MutableCol(ColumnPtr* c) {
    if (c->use_count() > 1) *c = std::make_shared<Column>(**c);
    return c->get();
  }
  Column* MutableCol(int c) { return MutableCol(&cols_[c]); }
  /// Detaching shared weights copies only the chunk-pointer vector; the
  /// value chunks stay shared until the one being written detaches.
  WeightColumn* MutableWeights() {
    if (weights_.use_count() > 1) {
      weights_ = std::make_shared<WeightColumn>(*weights_);
    }
    return weights_.get();
  }

  void NoteOverwrite() { ++overwrite_epoch_; }

  std::vector<ColumnPtr> cols_;
  WeightsPtr weights_;
  size_t num_rows_ = 0;
  uint64_t overwrite_epoch_ = 0;
};

/// Hash of the key columns `key_cols` for every row of `rows` (batch,
/// column-at-a-time). Rows with equal key values get equal hashes. With a
/// scheduler and a large enough input, hashing fans out in chunk-aligned
/// morsels (each task reads chunk-local spans of every key column); the
/// result is identical either way.
HashVector HashKeyColumns(const ColumnarRows& rows,
                          std::span<const int> key_cols,
                          Scheduler* scheduler = nullptr);

/// True iff row `ra` of `a` (at key columns `ka`) equals row `rb` of `b`
/// (at key columns `kb`). `ka.size()` must equal `kb.size()`.
bool KeysEqual(const ColumnarRows& a, size_t ra, std::span<const int> ka,
               const ColumnarRows& b, size_t rb, std::span<const int> kb);

}  // namespace dissodb

#endif  // DISSODB_STORAGE_COLUMNAR_H_
