// Columnar row storage shared by base tables and intermediate relations.
//
// A Column is a typed vector of 64-bit payloads (int64 / double bit pattern /
// string dictionary code) — the Value tag is stored once per column, not per
// element, so scans, hashes and key comparisons run over flat uint64 arrays.
// Columns are held by shared_ptr and shared zero-copy between tables and the
// relations derived from them (scans, pass-through projections, shallow
// copies); mutation goes through copy-on-write accessors, so sharing is safe.
//
// Thread safety: the copy-on-write check (`use_count() > 1`) synchronizes
// correctly as long as no thread copies a ColumnarRows object *while*
// another thread mutates that same object — distinct objects sharing
// columns may be copied/read/mutated concurrently without restriction (two
// concurrent mutators each observe a count > 1 and detach their own copy).
// The serving layer upholds the contract structurally: relations published
// to the shared ResultCache are `shared_ptr<const Rel>` and never mutated,
// and morsel-parallel operators write only to task-private buffers. The CI
// tsan job runs the engine/serve tests under -fsanitize=thread to keep
// this honest.
#ifndef DISSODB_STORAGE_COLUMNAR_H_
#define DISSODB_STORAGE_COLUMNAR_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/common/value.h"

namespace dissodb {

/// \brief One typed column: a flat array of 64-bit payloads.
///
/// Columns are type-uniform in the common case. If values of a different
/// type are appended (possible only through untyped builder paths), the
/// column lazily materializes a parallel per-element tag array; all
/// accessors remain correct, only the flat fast paths degrade.
class Column {
 public:
  Column() = default;
  explicit Column(ValueType type) : type_(type) {}

  size_t size() const { return bits_.size(); }
  ValueType type() const { return type_; }
  bool uniform() const { return tags_.empty(); }

  uint64_t RawBits(size_t i) const { return bits_[i]; }
  ValueType TypeAt(size_t i) const {
    return tags_.empty() ? type_ : static_cast<ValueType>(tags_[i]);
  }
  Value Get(size_t i) const { return Value::FromRawBits(TypeAt(i), bits_[i]); }

  void Reserve(size_t n) {
    bits_.reserve(n);
    if (!tags_.empty()) tags_.reserve(n);
  }
  void Append(Value v);

  /// Appends a raw payload of this column's own type. Only valid on a
  /// type-uniform column (fast bulk-assembly path; no per-cell tagging).
  void AppendRaw(uint64_t bits) {
    assert(tags_.empty());
    bits_.push_back(bits);
  }

  /// Appends `src[idx[k]]` for every k (output assembly for joins,
  /// projections and selections — one pass per column).
  void AppendGather(const Column& src, std::span<const uint32_t> idx);

  /// Element hash, consistent with Value::Hash().
  uint64_t HashAt(size_t i) const {
    return Mix64(static_cast<uint64_t>(TypeAt(i)) * 0x100000001b3ULL ^
                 bits_[i]);
  }

  /// Combines every element's hash into `out` (HashCombine semantics);
  /// `out.size()` must equal `size()`. Batch primitive for key hashing.
  void HashCombineInto(std::span<uint64_t> out) const;

  bool ElemEquals(size_t i, const Column& o, size_t j) const {
    return bits_[i] == o.bits_[j] && TypeAt(i) == o.TypeAt(j);
  }

 private:
  void Demote(ValueType incoming);

  ValueType type_ = ValueType::kInt64;
  std::vector<uint64_t> bits_;
  std::vector<uint8_t> tags_;  // empty while type-uniform
};

using ColumnPtr = std::shared_ptr<Column>;

/// \brief Shared base of Table and Rel: a set of columns plus a parallel
/// weight column (tuple probability / plan score) and a single row counter.
///
/// The explicit row counter makes zero-arity relations (Boolean queries)
/// fall out of the same accounting as everything else. Copies are shallow:
/// columns and weights are shared until a mutation triggers copy-on-write.
class ColumnarRows {
 public:
  size_t NumRows() const { return num_rows_; }
  int NumCols() const { return static_cast<int>(cols_.size()); }

  Value At(size_t r, int c) const { return cols_[c]->Get(r); }
  double Weight(size_t r) const { return (*weights_)[r]; }

  const ColumnPtr& col(int c) const { return cols_[c]; }
  const std::shared_ptr<std::vector<double>>& weights() const {
    return weights_;
  }

  void Reserve(size_t rows) {
    for (auto& c : cols_) MutableCol(&c)->Reserve(rows);
    MutableWeights()->reserve(rows);
  }

 protected:
  ColumnarRows() : weights_(std::make_shared<std::vector<double>>()) {}

  /// Installs `n` empty columns (untyped; adopt the first appended value).
  void InitCols(int n) {
    cols_.clear();
    for (int i = 0; i < n; ++i) cols_.push_back(std::make_shared<Column>());
  }

  void AppendRowImpl(std::span<const Value> row, double w);

  /// Adopts existing columns/weights without copying (zero-copy wiring).
  void AdoptImpl(std::vector<ColumnPtr> cols,
                 std::shared_ptr<std::vector<double>> weights, size_t rows) {
    cols_ = std::move(cols);
    weights_ = std::move(weights);
    num_rows_ = rows;
  }

  /// Appends rows `sel` of `src` (same column layout) to this.
  void GatherImpl(const ColumnarRows& src, std::span<const uint32_t> sel);

  /// Copy-on-write access.
  static Column* MutableCol(ColumnPtr* c) {
    if (c->use_count() > 1) *c = std::make_shared<Column>(**c);
    return c->get();
  }
  Column* MutableCol(int c) { return MutableCol(&cols_[c]); }
  std::vector<double>* MutableWeights() {
    if (weights_.use_count() > 1) {
      weights_ = std::make_shared<std::vector<double>>(*weights_);
    }
    return weights_.get();
  }

  std::vector<ColumnPtr> cols_;
  std::shared_ptr<std::vector<double>> weights_;
  size_t num_rows_ = 0;
};

/// Hash of the key columns `key_cols` for every row of `rows` (batch,
/// column-at-a-time). Rows with equal key values get equal hashes.
std::vector<uint64_t> HashKeyColumns(const ColumnarRows& rows,
                                     std::span<const int> key_cols);

/// True iff row `ra` of `a` (at key columns `ka`) equals row `rb` of `b`
/// (at key columns `kb`). `ka.size()` must equal `kb.size()`.
bool KeysEqual(const ColumnarRows& a, size_t ra, std::span<const int> ka,
               const ColumnarRows& b, size_t rb, std::span<const int> kb);

}  // namespace dissodb

#endif  // DISSODB_STORAGE_COLUMNAR_H_
