#include "src/storage/database.h"

#include <chrono>
#include <utility>

namespace dissodb {

Database::Database()
    : by_name_(std::make_shared<std::unordered_map<std::string, int>>()),
      strings_(std::make_shared<StringPool>()),
      registry_(std::make_shared<SnapshotRegistry>()) {}

Database::Database(Database&& o) noexcept
    : tables_(std::move(o.tables_)),
      by_name_(std::move(o.by_name_)),
      strings_(std::move(o.strings_)),
      registry_(std::move(o.registry_)),
      hooks_(std::move(o.hooks_)),
      next_hook_token_(o.next_hook_token_) {
  version_.store(o.version_.load(std::memory_order_acquire),
                 std::memory_order_release);
}

Database& Database::operator=(Database&& o) noexcept {
  if (this == &o) return *this;
  tables_ = std::move(o.tables_);
  by_name_ = std::move(o.by_name_);
  strings_ = std::move(o.strings_);
  registry_ = std::move(o.registry_);
  hooks_ = std::move(o.hooks_);
  next_hook_token_ = o.next_hook_token_;
  version_.store(o.version_.load(std::memory_order_acquire),
                 std::memory_order_release);
  return *this;
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

Snapshot Database::snapshot() const {
  std::lock_guard lock(state_mu_);
  // O(#tables) shallow Table copies: each copy shares every column (and
  // through it every sealed chunk) by shared_ptr — no payload is touched.
  // The copy decouples the snapshot from the live head: later mutations
  // copy-on-write-detach inside the live tables and never reach these.
  // States are rebuilt per acquisition rather than cached so that rows
  // loaded through a retained CreateTable()/mutable_table() pointer (the
  // seed loading pattern, which bumps no version) stay visible to the
  // next snapshot; the name index and string pool are shared, not copied.
  std::vector<std::shared_ptr<const Table>> tables;
  tables.reserve(tables_.size());
  for (const auto& t : tables_) {
    tables.push_back(std::make_shared<const Table>(*t));
  }
  return Snapshot(std::make_shared<const SnapshotState>(
      std::move(tables), by_name_, strings_,
      version_.load(std::memory_order_acquire), registry_));
}

uint64_t Database::OldestLiveSnapshotVersion() const {
  return registry_->OldestOr(version());
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

Database::Writer::Writer(Database* db)
    : db_(db), lock_(db->writer_mu_), base_(db->snapshot()) {}

Database::Writer::Writer(Writer&& o) noexcept
    : db_(std::exchange(o.db_, nullptr)),
      lock_(std::move(o.lock_)),
      base_(std::move(o.base_)),
      staged_(std::move(o.staged_)),
      staged_base_(std::move(o.staged_base_)),
      added_(std::move(o.added_)),
      added_by_name_(std::move(o.added_by_name_)) {}

Database::Writer::~Writer() {
  if (db_ != nullptr) Abort();
}

Result<int> Database::Writer::AddTable(Table table) {
  const std::string name = table.schema().name;  // copy before the move below
  if (base_.FindTable(name) >= 0 || added_by_name_.count(name)) {
    return Status::AlreadyExists("table " + name + " already exists");
  }
  int idx = base_.NumTables() + static_cast<int>(added_.size());
  added_.emplace_back(name, std::make_shared<Table>(std::move(table)));
  added_by_name_.emplace(name, idx);
  return idx;
}

Result<Table*> Database::Writer::CreateTable(RelationSchema schema) {
  auto r = AddTable(Table(std::move(schema)));
  if (!r.ok()) return r.status();
  return added_.back().second.get();
}

Table* Database::Writer::mutable_table(int idx) {
  const int base_n = base_.NumTables();
  if (idx >= base_n) {
    return added_[idx - base_n].second.get();
  }
  auto it = staged_.find(idx);
  if (it == staged_.end()) {
    // Copy-on-write staging: a shallow copy of the pinned base table.
    // Sealed chunks stay shared with every snapshot; the first append to a
    // column detaches only its tail chunk.
    it = staged_.emplace(idx, std::make_shared<Table>(base_.table(idx))).first;
    staged_base_.emplace(
        idx, StagedBase{it->second->NumRows(), it->second->overwrite_epoch()});
  }
  return it->second.get();
}

Result<Table*> Database::Writer::GetTableForWrite(const std::string& name) {
  int idx = FindTable(name);
  if (idx < 0) return Status::NotFound("no table named " + name);
  return mutable_table(idx);
}

void Database::Writer::ScaleProbabilities(double f) {
  // Identity rescale: stage nothing — staging would COW-copy and republish
  // every table only to multiply each probability by 1.
  if (f == 1.0) return;
  for (int i = 0; i < NumTables(); ++i) {
    // Deterministic tables pin p = 1; don't stage (and republish) a copy
    // just to run a no-op.
    if (table(i).schema().deterministic) continue;
    mutable_table(i)->ScaleProbabilities(f);
  }
}

Value Database::Writer::Str(const std::string& s) {
  return Value::StringCode(db_->strings_->Intern(s));
}

int Database::Writer::NumTables() const {
  return base_.NumTables() + static_cast<int>(added_.size());
}

const Table& Database::Writer::table(int idx) const {
  const int base_n = base_.NumTables();
  if (idx >= base_n) return *added_[idx - base_n].second;
  auto it = staged_.find(idx);
  return it != staged_.end() ? *it->second : base_.table(idx);
}

int Database::Writer::FindTable(const std::string& name) const {
  auto it = added_by_name_.find(name);
  if (it != added_by_name_.end()) return it->second;
  return base_.FindTable(name);
}

uint64_t Database::Writer::Commit() {
  Database* db = std::exchange(db_, nullptr);
  const auto t0 = std::chrono::steady_clock::now();
  // Append-only detection: every staged table must have changed by row
  // appends alone — overwrite epoch untouched (no SetProb / rescale) and
  // row count non-decreasing. Newly added tables don't disqualify the
  // commit (no earlier-cached plan can reference them) but contribute no
  // delta. An empty commit (legacy mutable_table shim) is conservatively
  // NOT append-only: the caller is about to mutate the live head outside
  // any transaction, so caches must invalidate.
  CommitInfo info;
  info.append_only = !staged_.empty() || !added_.empty();
  for (const auto& [idx, t] : staged_) {
    const StagedBase& b = staged_base_.at(idx);
    if (t->overwrite_epoch() != b.epoch || t->NumRows() < b.rows) {
      info.append_only = false;
      break;
    }
  }
  if (info.append_only) {
    for (const auto& [idx, t] : staged_) {
      const StagedBase& b = staged_base_.at(idx);
      if (t->NumRows() == b.rows) continue;
      info.deltas.push_back(AppendOnlyDelta{idx, t->schema().name, b.rows,
                                            t->NumRows() - b.rows});
      info.appended_rows += t->NumRows() - b.rows;
    }
  }
  const uint64_t version = db->Publish(staged_, added_);
  info.version = version;
  staged_.clear();
  staged_base_.clear();
  added_.clear();
  added_by_name_.clear();
  // Drop the pinned base before hooks run: the writer must not count as a
  // live snapshot when the serving layer sweeps stale cache versions.
  base_ = Snapshot();
  lock_.unlock();  // let the next writer in before hooks run
  info.commit_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  db->RunCommitHooks(info);
  return version;
}

void Database::Writer::Abort() {
  db_ = nullptr;
  staged_.clear();
  staged_base_.clear();
  added_.clear();
  added_by_name_.clear();
  base_ = Snapshot();
  if (lock_.owns_lock()) lock_.unlock();
}

Database::Writer Database::BeginWrite() { return Writer(this); }

uint64_t Database::Publish(
    const std::unordered_map<int, std::shared_ptr<Table>>& staged,
    const std::vector<std::pair<std::string, std::shared_ptr<Table>>>& added) {
  std::lock_guard lock(state_mu_);
  for (const auto& [idx, t] : staged) {
    // Shallow assignment: the live Table object keeps its address (legacy
    // pointers stay valid) and adopts the staged columns; previously
    // acquired snapshots hold their own copies and are unaffected.
    *tables_[idx] = *t;
  }
  if (!added.empty()) {
    // Copy-on-write on the shared name index: snapshots keep their own.
    auto names = std::make_shared<std::unordered_map<std::string, int>>(
        *by_name_);
    for (const auto& [name, t] : added) {
      names->emplace(name, static_cast<int>(tables_.size()));
      tables_.push_back(t);  // adopt the staged object as the live table
    }
    by_name_ = std::move(names);
  }
  return version_.fetch_add(1, std::memory_order_acq_rel) + 1;
}

// ---------------------------------------------------------------------------
// Commit hooks
// ---------------------------------------------------------------------------

int Database::RegisterCommitHook(CommitHook hook) const {
  std::lock_guard lock(hooks_mu_);
  int token = next_hook_token_++;
  hooks_.emplace_back(token, std::move(hook));
  return token;
}

void Database::UnregisterCommitHook(int token) const {
  std::lock_guard lock(hooks_mu_);
  for (auto it = hooks_.begin(); it != hooks_.end(); ++it) {
    if (it->first == token) {
      hooks_.erase(it);
      return;
    }
  }
}

void Database::RunCommitHooks(const CommitInfo& info) const {
  // Invoked under hooks_mu_ so UnregisterCommitHook is synchronizing:
  // once it returns, no hook invocation is in flight and the owner may be
  // destroyed. Hooks therefore must not (un)register hooks or commit to
  // this database themselves.
  std::lock_guard lock(hooks_mu_);
  for (const auto& [token, hook] : hooks_) hook(info);
}

// ---------------------------------------------------------------------------
// Legacy mutation shims
// ---------------------------------------------------------------------------

Result<int> Database::AddTable(Table table) {
  Writer w = BeginWrite();
  auto r = w.AddTable(std::move(table));
  if (!r.ok()) return r;  // destructor aborts
  w.Commit();
  return r;
}

Result<Table*> Database::CreateTable(RelationSchema schema) {
  auto r = AddTable(Table(std::move(schema)));
  if (!r.ok()) return r.status();
  std::lock_guard lock(state_mu_);
  return tables_[*r].get();
}

Table* Database::mutable_table(int idx) {
  {
    // Opens-and-commits an empty writer: bumps the version (conservatively
    // invalidating version-stamped caches, as the seed behavior did) and
    // fires commit hooks. The returned pointer itself is the unsynchronized
    // legacy escape hatch — see the header.
    Writer w = BeginWrite();
    w.Commit();
  }
  return tables_[idx].get();
}

void Database::ScaleProbabilities(double f) {
  Writer w = BeginWrite();
  w.ScaleProbabilities(f);
  w.Commit();
}

// ---------------------------------------------------------------------------
// Reads / misc
// ---------------------------------------------------------------------------

int Database::FindTable(const std::string& name) const {
  auto it = by_name_->find(name);
  return it == by_name_->end() ? -1 : it->second;
}

Result<const Table*> Database::GetTable(const std::string& name) const {
  int idx = FindTable(name);
  if (idx < 0) return Status::NotFound("no table named " + name);
  return static_cast<const Table*>(tables_[idx].get());
}

Database Database::Clone() const {
  Database out;
  Snapshot snap = snapshot();
  {
    Writer w = out.BeginWrite();
    for (int i = 0; i < snap.NumTables(); ++i) {
      auto r = w.AddTable(snap.table(i));  // shallow copy; COW isolates
      (void)r;
    }
    w.Commit();
  }
  *out.strings_ = *strings_;
  return out;
}

std::string Database::ToString() const {
  std::string out;
  for (const auto& t : tables_) out += t->ToString();
  return out;
}

}  // namespace dissodb
