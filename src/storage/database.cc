#include "src/storage/database.h"

namespace dissodb {

int64_t StringPool::Intern(const std::string& s) {
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  int64_t code = static_cast<int64_t>(strings_.size());
  strings_.push_back(s);
  index_.emplace(s, code);
  return code;
}

int64_t StringPool::Find(const std::string& s) const {
  auto it = index_.find(s);
  return it == index_.end() ? -1 : it->second;
}

Result<int> Database::AddTable(Table table) {
  const std::string name = table.schema().name;  // copy before the move below
  if (by_name_.count(name)) {
    return Status::AlreadyExists("table " + name + " already exists");
  }
  int idx = static_cast<int>(tables_.size());
  tables_.push_back(std::make_unique<Table>(std::move(table)));
  by_name_.emplace(name, idx);
  ++version_;
  return idx;
}

Result<Table*> Database::CreateTable(RelationSchema schema) {
  auto r = AddTable(Table(std::move(schema)));
  if (!r.ok()) return r.status();
  return tables_[*r].get();
}

int Database::FindTable(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? -1 : it->second;
}

Result<const Table*> Database::GetTable(const std::string& name) const {
  int idx = FindTable(name);
  if (idx < 0) return Status::NotFound("no table named " + name);
  return static_cast<const Table*>(tables_[idx].get());
}

void Database::ScaleProbabilities(double f) {
  for (auto& t : tables_) t->ScaleProbabilities(f);
  ++version_;
}

Database Database::Clone() const {
  Database out;
  for (const auto& t : tables_) {
    auto r = out.AddTable(*t);
    (void)r;
  }
  out.strings_ = strings_;
  return out;
}

std::string Database::ToString() const {
  std::string out;
  for (const auto& t : tables_) out += t->ToString();
  return out;
}

}  // namespace dissodb
