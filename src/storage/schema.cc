#include "src/storage/schema.h"

#include "src/common/string_util.h"

namespace dissodb {

RelationSchema RelationSchema::AllInt64(const std::string& name, int arity,
                                        bool deterministic) {
  RelationSchema s;
  s.name = name;
  s.deterministic = deterministic;
  for (int i = 0; i < arity; ++i) {
    s.column_names.push_back("c" + std::to_string(i));
    s.column_types.push_back(ValueType::kInt64);
  }
  return s;
}

std::string RelationSchema::ToString() const {
  std::string out = name;
  if (deterministic) out += "^d";
  out += "(";
  for (int i = 0; i < arity(); ++i) {
    if (i > 0) out += ", ";
    out += column_names[i];
    out += ":";
    out += ValueTypeName(column_types[i]);
  }
  out += ")";
  return out;
}

}  // namespace dissodb
