#include "src/storage/string_pool.h"

#include <mutex>

namespace dissodb {

StringPool::StringPool(const StringPool& o) {
  std::shared_lock lock(o.mu_);
  strings_ = o.strings_;
  index_ = o.index_;
}

StringPool& StringPool::operator=(const StringPool& o) {
  if (this == &o) return *this;
  // Copy the source under its lock first so self-deadlock is impossible
  // and lock ordering never matters.
  std::deque<std::string> strings;
  std::unordered_map<std::string, int64_t> index;
  {
    std::shared_lock lock(o.mu_);
    strings = o.strings_;
    index = o.index_;
  }
  std::unique_lock lock(mu_);
  strings_ = std::move(strings);
  index_ = std::move(index);
  return *this;
}

int64_t StringPool::Intern(const std::string& s) {
  {
    std::shared_lock lock(mu_);
    auto it = index_.find(s);
    if (it != index_.end()) return it->second;
  }
  std::unique_lock lock(mu_);
  auto it = index_.find(s);  // re-check: lost an interning race?
  if (it != index_.end()) return it->second;
  int64_t code = static_cast<int64_t>(strings_.size());
  strings_.push_back(s);
  index_.emplace(s, code);
  return code;
}

int64_t StringPool::Find(const std::string& s) const {
  std::shared_lock lock(mu_);
  auto it = index_.find(s);
  return it == index_.end() ? -1 : it->second;
}

const std::string& StringPool::Get(int64_t code) const {
  std::shared_lock lock(mu_);
  return strings_[code];  // deque elements are stable after unlock
}

size_t StringPool::size() const {
  std::shared_lock lock(mu_);
  return strings_.size();
}

}  // namespace dissodb
