// Immutable point-in-time view of a Database: the read-path currency.
//
// A Snapshot is a cheap, copyable handle over a SnapshotState — the set of
// table handles (and through them the sealed column-chunk lists), the
// catalog name index, the string-pool high-water mark, and the version
// stamp that were current when the snapshot was acquired. Acquisition is
// O(#tables): only shared_ptr table handles are copied, never payloads
// (PR 3's chunked columns make the pinned data copy-free). Once acquired,
// a snapshot is completely immune to later mutation: writers stage into
// copy-on-write table copies and publish new states, so every chunk a
// snapshot pins stays sealed and bit-identical for the snapshot's
// lifetime. Query results computed against a held snapshot are therefore
// bit-identical no matter how many commits happen concurrently.
//
// All engine read paths (ScanAtom, PlanEvaluator, SemiJoinReduce,
// QueryEngine::Execute/Submit) run against `const Snapshot&`; the
// `const Database&` overloads are thin shims that acquire one internally.
//
// Lifetime: a Snapshot owns everything it exposes (tables, string pool),
// so it may outlive the Database it came from. The live-version registry
// lets the serving layer sweep ResultCache entries no held snapshot can
// ever request again (ResultCache::EvictOlderThan).
#ifndef DISSODB_STORAGE_SNAPSHOT_H_
#define DISSODB_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/storage/string_pool.h"
#include "src/storage/table.h"

namespace dissodb {

/// Identifies one base tuple globally: (table index, row index). Used as the
/// Boolean variable id in lineage formulas.
struct TupleId {
  uint32_t table;
  uint32_t row;

  uint64_t Key() const { return (static_cast<uint64_t>(table) << 32) | row; }
  bool operator==(const TupleId& o) const {
    return table == o.table && row == o.row;
  }
  bool operator<(const TupleId& o) const { return Key() < o.Key(); }
};

struct TupleIdHash {
  size_t operator()(const TupleId& t) const { return Mix64(t.Key()); }
};

/// Shared registry of live snapshot versions for one Database. Snapshot
/// states register on construction and deregister on destruction, so the
/// database (and the serving layer's stale-entry sweep) can ask for the
/// oldest version any still-held snapshot could read at.
class SnapshotRegistry {
 public:
  void Add(uint64_t version) {
    std::lock_guard lock(mu_);
    ++live_[version];
  }
  void Remove(uint64_t version) {
    std::lock_guard lock(mu_);
    auto it = live_.find(version);
    if (it != live_.end() && --it->second == 0) live_.erase(it);
  }
  /// Smallest live version, or `fallback` when no snapshot is held.
  uint64_t OldestOr(uint64_t fallback) const {
    std::lock_guard lock(mu_);
    return live_.empty() ? fallback : live_.begin()->first;
  }

 private:
  mutable std::mutex mu_;
  std::map<uint64_t, size_t> live_;  // version -> live state count
};

/// The pinned state behind one or more Snapshot handles. Immutable after
/// construction; shared freely between handles and threads.
struct SnapshotState {
  SnapshotState(
      std::vector<std::shared_ptr<const Table>> tables_in,
      std::shared_ptr<const std::unordered_map<std::string, int>> by_name_in,
      std::shared_ptr<const StringPool> strings_in, uint64_t version_in,
      std::shared_ptr<SnapshotRegistry> registry_in)
      : tables(std::move(tables_in)),
        by_name(std::move(by_name_in)),
        strings(std::move(strings_in)),
        string_hwm(strings ? strings->size() : 0),
        version(version_in),
        registry(std::move(registry_in)) {
    if (registry) registry->Add(version);
  }
  ~SnapshotState() {
    if (registry) registry->Remove(version);
  }
  SnapshotState(const SnapshotState&) = delete;
  SnapshotState& operator=(const SnapshotState&) = delete;

  const std::vector<std::shared_ptr<const Table>> tables;
  /// Shared with the database (copy-on-write on AddTable), not copied.
  const std::shared_ptr<const std::unordered_map<std::string, int>> by_name;
  const std::shared_ptr<const StringPool> strings;
  /// Pool size at publish: every string code in `tables` is below this.
  const size_t string_hwm;
  const uint64_t version;
  const std::shared_ptr<SnapshotRegistry> registry;
};

/// \brief Value-type handle over one immutable SnapshotState. Copying is a
/// shared_ptr copy; default-constructed handles are invalid placeholders.
class Snapshot {
 public:
  Snapshot() = default;
  explicit Snapshot(std::shared_ptr<const SnapshotState> state)
      : state_(std::move(state)) {}

  bool valid() const { return state_ != nullptr; }

  /// The Database::version() this snapshot pins. ResultCache entries are
  /// stamped with it, so a held snapshot keeps hitting its own entries
  /// across later commits.
  uint64_t version() const { return state_->version; }

  int NumTables() const { return static_cast<int>(state_->tables.size()); }
  const Table& table(int idx) const { return *state_->tables[idx]; }
  /// The shared table handle (keeps the pinned chunks alive on its own).
  const std::shared_ptr<const Table>& table_handle(int idx) const {
    return state_->tables[idx];
  }

  /// Index of table `name`, or -1.
  int FindTable(const std::string& name) const {
    auto it = state_->by_name->find(name);
    return it == state_->by_name->end() ? -1 : it->second;
  }
  Result<const Table*> GetTable(const std::string& name) const {
    int idx = FindTable(name);
    if (idx < 0) return Status::NotFound("no table named " + name);
    return state_->tables[idx].get();
  }

  double TupleProb(TupleId id) const {
    return state_->tables[id.table]->Prob(id.row);
  }
  bool TupleDeterministic(TupleId id) const {
    return state_->tables[id.table]->schema().deterministic;
  }

  const StringPool& strings() const { return *state_->strings; }
  /// Pool high-water mark at publish: codes >= this were interned after the
  /// snapshot and cannot occur in its tables.
  size_t string_pool_size() const { return state_->string_hwm; }

  /// Identity of the owning database (its registry): lets consumers reject
  /// snapshots of a different database (see Database::OwnsSnapshot).
  const SnapshotRegistry* owner_registry() const {
    return state_->registry.get();
  }

 private:
  std::shared_ptr<const SnapshotState> state_;
};

}  // namespace dissodb

#endif  // DISSODB_STORAGE_SNAPSHOT_H_
