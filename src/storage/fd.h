// Functional dependencies declared on relation schemas (column positions).
//
// FDs are schema knowledge used by Section 3.3.2 of the paper: the minimal-
// plan algorithm chases the query through the FD closure (dissociation
// \Delta_\Gamma) before enumerating plans.
#ifndef DISSODB_STORAGE_FD_H_
#define DISSODB_STORAGE_FD_H_

#include <string>
#include <vector>

namespace dissodb {

/// \brief A functional dependency lhs -> rhs between column positions of one
/// relation, e.g. {0} -> {1} on S(x,y) states x determines y.
struct FunctionalDependency {
  std::vector<int> lhs;
  std::vector<int> rhs;

  std::string ToString() const;
};

}  // namespace dissodb

#endif  // DISSODB_STORAGE_FD_H_
