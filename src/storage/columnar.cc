#include "src/storage/columnar.h"

#include <cassert>

namespace dissodb {

void Column::Append(Value v) {
  if (bits_.empty() && tags_.empty()) {
    type_ = v.type();
  } else if (v.type() != type_ && tags_.empty()) {
    Demote(v.type());
  }
  if (!tags_.empty()) tags_.push_back(static_cast<uint8_t>(v.type()));
  bits_.push_back(v.RawBits());
}

void Column::Demote(ValueType incoming) {
  (void)incoming;
  tags_.assign(bits_.size(), static_cast<uint8_t>(type_));
}

void Column::AppendGather(const Column& src, std::span<const uint32_t> idx) {
  if (bits_.empty() && tags_.empty()) type_ = src.type_;
  bits_.reserve(bits_.size() + idx.size());
  if (src.tags_.empty() && tags_.empty() && src.type_ == type_) {
    for (uint32_t k : idx) bits_.push_back(src.bits_[k]);
    return;
  }
  // Mixed-type fallback.
  for (uint32_t k : idx) Append(src.Get(k));
}

void Column::HashCombineInto(std::span<uint64_t> out) const {
  assert(out.size() == bits_.size());
  if (tags_.empty()) {
    const uint64_t tag_mix = static_cast<uint64_t>(type_) * 0x100000001b3ULL;
    for (size_t i = 0; i < bits_.size(); ++i) {
      size_t h = out[i];
      HashCombine(&h, Mix64(tag_mix ^ bits_[i]));
      out[i] = h;
    }
  } else {
    for (size_t i = 0; i < bits_.size(); ++i) {
      size_t h = out[i];
      HashCombine(&h, HashAt(i));
      out[i] = h;
    }
  }
}

void ColumnarRows::AppendRowImpl(std::span<const Value> row, double w) {
  assert(row.size() == cols_.size());
  for (size_t c = 0; c < cols_.size(); ++c) MutableCol(&cols_[c])->Append(row[c]);
  MutableWeights()->push_back(w);
  ++num_rows_;
}

void ColumnarRows::GatherImpl(const ColumnarRows& src,
                              std::span<const uint32_t> sel) {
  assert(src.NumCols() == NumCols());
  for (size_t c = 0; c < cols_.size(); ++c) {
    MutableCol(&cols_[c])->AppendGather(*src.cols_[c], sel);
  }
  auto* w = MutableWeights();
  w->reserve(w->size() + sel.size());
  const auto& sw = *src.weights_;
  for (uint32_t k : sel) w->push_back(sw[k]);
  num_rows_ += sel.size();
}

std::vector<uint64_t> HashKeyColumns(const ColumnarRows& rows,
                                     std::span<const int> key_cols) {
  std::vector<uint64_t> out(rows.NumRows(), 0x2545f491ULL);
  for (int c : key_cols) rows.col(c)->HashCombineInto(out);
  return out;
}

bool KeysEqual(const ColumnarRows& a, size_t ra, std::span<const int> ka,
               const ColumnarRows& b, size_t rb, std::span<const int> kb) {
  assert(ka.size() == kb.size());
  for (size_t i = 0; i < ka.size(); ++i) {
    if (!a.col(ka[i])->ElemEquals(ra, *b.col(kb[i]), rb)) return false;
  }
  return true;
}

}  // namespace dissodb
