#include "src/storage/columnar.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "src/serve/scheduler.h"

namespace dissodb {

namespace {

/// Large transient buffers (hash-index stores, growing group vectors) are
/// allocated and freed once per operator call. glibc's mmap threshold only
/// ratchets up when big flat blocks are freed back; chunked column storage
/// never frees anything larger than one chunk, so without tuning every
/// operator call pays fresh mmaps, minor faults and page zeroing for tens
/// of megabytes of scratch. Raise the thresholds once (standard database-
/// engine practice) so operator scratch stays in the heap and is reused
/// across calls. Explicit MALLOC_* environment overrides win.
[[maybe_unused]] const bool g_malloc_tuned = [] {
#if defined(__GLIBC__) && defined(M_MMAP_THRESHOLD)
  if (std::getenv("MALLOC_MMAP_THRESHOLD_") == nullptr &&
      std::getenv("MALLOC_TRIM_THRESHOLD_") == nullptr) {
    mallopt(M_MMAP_THRESHOLD, 32 << 20);
    mallopt(M_TRIM_THRESHOLD, 32 << 20);
  }
#endif
  return true;
}();

/// Test-overridable default chunk capacity. Read once per Column
/// construction (each column carries its own shift/mask), so changing it
/// never affects existing columns.
std::atomic<size_t> g_default_chunk_capacity{Column::kDefaultChunkCapacity};

uint32_t ShiftFor(size_t cap) {
  assert(cap >= 2 && (cap & (cap - 1)) == 0);
  uint32_t s = 0;
  while ((size_t{1} << s) < cap) ++s;
  return s;
}

/// Raw base pointer of every chunk of `c`, so gather loops pay one indexed
/// load per element instead of a shared_ptr dereference.
std::vector<const uint64_t*> ChunkBases(const Column& c) {
  std::vector<const uint64_t*> bases(c.num_chunks());
  for (size_t ci = 0; ci < c.num_chunks(); ++ci) {
    bases[ci] = c.ChunkBits(ci).data();
  }
  return bases;
}

}  // namespace

void Column::SetDefaultChunkCapacityForTesting(size_t cap) {
  assert(cap >= 2 && (cap & (cap - 1)) == 0);
  g_default_chunk_capacity.store(cap, std::memory_order_relaxed);
}

size_t Column::default_chunk_capacity() {
  return g_default_chunk_capacity.load(std::memory_order_relaxed);
}

Column::Column() {
  const size_t cap = default_chunk_capacity();
  chunk_shift_ = ShiftFor(cap);
  chunk_mask_ = cap - 1;
}

Column::Column(ValueType type) : Column() { type_ = type; }

void Column::Reserve(size_t n) {
  if (n <= size_ || chunks_.empty()) return;
  ChunkPtr& tail = chunks_.back();
  // Reserving is an optimization only: never detach a shared tail (the
  // eventual append will), and a sealed tail has nothing to grow.
  if (tail.use_count() > 1 || tail->bits.size() > chunk_mask_) return;
  tail->bits.reserve(
      std::min(chunk_capacity(), tail->bits.size() + (n - size_)));
  if (tagged_) tail->tags.reserve(tail->bits.capacity());
  SyncTailBase();
}

void Column::Append(Value v) {
  if (size_ == 0 && !tagged_) {
    type_ = v.type();
  } else if (v.type() != type_ && !tagged_) {
    Demote(v.type());
  }
  Chunk* tail = MutableTail();
  if (tagged_) tail->tags.push_back(static_cast<uint8_t>(v.type()));
  const uint64_t bits = v.RawBits();
  tail->bits.push_back(bits);
  if (bits < tail->min_bits) tail->min_bits = bits;
  if (bits > tail->max_bits) tail->max_bits = bits;
  ++size_;
  SyncTailBase();
}

void Column::Demote(ValueType incoming) {
  (void)incoming;
  tagged_ = true;
  for (ChunkPtr& c : chunks_) {
    if (c.use_count() > 1) c = std::make_shared<Chunk>(*c);
    c->tags.assign(c->bits.size(), static_cast<uint8_t>(type_));
  }
  RebuildBases();
}

void Column::AppendGather(const Column& src, std::span<const uint32_t> idx) {
  if (size_ == 0 && !tagged_) type_ = src.type_;
  if (src.uniform() && uniform() && src.type_ == type_) {
    // Flat fast path: fill the tail chunk in runs bounded by its remaining
    // room, reading src through per-chunk base pointers.
    const std::vector<const uint64_t*> bases = ChunkBases(src);
    size_t done = 0;
    while (done < idx.size()) {
      Chunk* tail = MutableTail();
      const size_t take =
          std::min(chunk_capacity() - tail->bits.size(), idx.size() - done);
      tail->bits.reserve(tail->bits.size() + take);
      uint64_t mn = tail->min_bits;
      uint64_t mx = tail->max_bits;
      for (size_t k = done; k < done + take; ++k) {
        const uint32_t r = idx[k];
        const uint64_t b = bases[r >> src.chunk_shift_][r & src.chunk_mask_];
        tail->bits.push_back(b);
        mn = std::min(mn, b);
        mx = std::max(mx, b);
      }
      tail->min_bits = mn;
      tail->max_bits = mx;
      size_ += take;
      done += take;
      SyncTailBase();
    }
    return;
  }
  // Mixed-type fallback.
  for (uint32_t k : idx) Append(src.Get(k));
}

Column Column::Gathered(const Column& src, std::span<const uint32_t> sel,
                        Scheduler* scheduler) {
  Column out;
  if (!src.uniform()) {
    out.AppendGather(src, sel);
    return out;
  }
  out.type_ = src.type_;
  const size_t n = sel.size();
  if (n == 0) return out;
  const size_t cap = out.chunk_capacity();
  out.chunks_.resize((n + cap - 1) / cap);
  out.size_ = n;

  const std::vector<const uint64_t*> bases = ChunkBases(src);
  auto fill = [&](size_t lo, size_t hi) {
    // Each task owns the single output chunk its range covers (ranges are
    // chunk-aligned), so parallel tasks write disjoint chunks.
    auto chunk = std::make_shared<Chunk>();
    chunk->bits.reserve(hi - lo);
    uint64_t mn = ~uint64_t{0};
    uint64_t mx = 0;
    for (size_t k = lo; k < hi; ++k) {
      const uint32_t r = sel[k];
      const uint64_t b = bases[r >> src.chunk_shift_][r & src.chunk_mask_];
      chunk->bits.push_back(b);
      mn = std::min(mn, b);
      mx = std::max(mx, b);
    }
    chunk->min_bits = mn;
    chunk->max_bits = mx;
    out.chunks_[lo / cap] = std::move(chunk);
  };
  if (scheduler != nullptr && n >= 2 * cap) {
    scheduler->ParallelFor(0, n, cap, fill);
  } else {
    for (size_t lo = 0; lo < n; lo += cap) fill(lo, std::min(lo + cap, n));
  }
  out.RebuildBases();
  return out;
}

void Column::HashCombineInto(std::span<uint64_t> out) const {
  assert(out.size() == size_);
  HashCombineRange(0, out);
}

void Column::HashCombineRange(size_t begin, std::span<uint64_t> out) const {
  assert(begin + out.size() <= size_);
  const uint64_t tag_mix = static_cast<uint64_t>(type_) * 0x100000001b3ULL;
  size_t done = 0;
  while (done < out.size()) {
    const size_t g = begin + done;
    const size_t ci = g >> chunk_shift_;
    const size_t local = g & chunk_mask_;
    const Chunk& chunk = *chunks_[ci];
    const size_t take = std::min(chunk.bits.size() - local, out.size() - done);
    const uint64_t* bits = chunk.bits.data() + local;
    if (!tagged_) {
      for (size_t k = 0; k < take; ++k) {
        size_t h = out[done + k];
        HashCombine(&h, Mix64(tag_mix ^ bits[k]));
        out[done + k] = h;
      }
    } else {
      const uint8_t* tags = chunk.tags.data() + local;
      for (size_t k = 0; k < take; ++k) {
        size_t h = out[done + k];
        HashCombine(&h, Mix64(static_cast<uint64_t>(tags[k]) *
                                  0x100000001b3ULL ^
                              bits[k]));
        out[done + k] = h;
      }
    }
    done += take;
  }
}

void ColumnarRows::AppendRowImpl(std::span<const Value> row, double w) {
  assert(row.size() == cols_.size());
  for (size_t c = 0; c < cols_.size(); ++c) MutableCol(&cols_[c])->Append(row[c]);
  MutableWeights()->push_back(w);
  ++num_rows_;
}

void ColumnarRows::GatherImpl(const ColumnarRows& src,
                              std::span<const uint32_t> sel) {
  assert(src.NumCols() == NumCols());
  for (size_t c = 0; c < cols_.size(); ++c) {
    MutableCol(&cols_[c])->AppendGather(*src.cols_[c], sel);
  }
  auto* w = MutableWeights();
  w->reserve(w->size() + sel.size());
  const auto& sw = *src.weights_;
  for (uint32_t k : sel) w->push_back(sw[k]);
  num_rows_ += sel.size();
}

std::vector<uint64_t> HashKeyColumns(const ColumnarRows& rows,
                                     std::span<const int> key_cols,
                                     Scheduler* scheduler) {
  const size_t n = rows.NumRows();
  std::vector<uint64_t> out(n, 0x2545f491ULL);
  if (key_cols.empty()) return out;
  const size_t grain = rows.col(key_cols[0])->chunk_capacity();
  if (scheduler != nullptr && n >= 2 * grain) {
    // Chunk-aligned morsels: every task hashes chunk-local spans of each
    // key column into its disjoint slice of `out`.
    scheduler->ParallelFor(0, n, grain, [&](size_t lo, size_t hi) {
      for (int c : key_cols) {
        rows.col(c)->HashCombineRange(lo, std::span(out.data() + lo, hi - lo));
      }
    });
  } else {
    for (int c : key_cols) rows.col(c)->HashCombineInto(out);
  }
  return out;
}

std::vector<double> GatherDoubles(const std::vector<double>& w,
                                  std::span<const uint32_t> sel,
                                  Scheduler* scheduler) {
  std::vector<double> out(sel.size());
  const size_t grain = Column::default_chunk_capacity();
  auto fill = [&](size_t lo, size_t hi) {
    for (size_t k = lo; k < hi; ++k) out[k] = w[sel[k]];
  };
  if (scheduler != nullptr && sel.size() >= 2 * grain) {
    scheduler->ParallelFor(0, sel.size(), grain, fill);
  } else {
    fill(0, sel.size());
  }
  return out;
}

bool KeysEqual(const ColumnarRows& a, size_t ra, std::span<const int> ka,
               const ColumnarRows& b, size_t rb, std::span<const int> kb) {
  assert(ka.size() == kb.size());
  for (size_t i = 0; i < ka.size(); ++i) {
    if (!a.col(ka[i])->ElemEquals(ra, *b.col(kb[i]), rb)) return false;
  }
  return true;
}

}  // namespace dissodb
