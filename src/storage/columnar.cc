#include "src/storage/columnar.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <cstring>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "src/common/simd.h"
#include "src/serve/scheduler.h"

#if DISSODB_SIMD_COMPILED
#include <immintrin.h>
#endif

namespace dissodb {

namespace {

/// Large transient buffers (hash-index stores, growing group vectors) are
/// allocated and freed once per operator call. glibc's mmap threshold only
/// ratchets up when big flat blocks are freed back; chunked column storage
/// never frees anything larger than one chunk, so without tuning every
/// operator call pays fresh mmaps, minor faults and page zeroing for tens
/// of megabytes of scratch. Raise the thresholds once (standard database-
/// engine practice) so operator scratch stays in the heap and is reused
/// across calls. Explicit MALLOC_* environment overrides win.
[[maybe_unused]] const bool g_malloc_tuned = [] {
#if defined(__GLIBC__) && defined(M_MMAP_THRESHOLD)
  if (std::getenv("MALLOC_MMAP_THRESHOLD_") == nullptr &&
      std::getenv("MALLOC_TRIM_THRESHOLD_") == nullptr) {
    mallopt(M_MMAP_THRESHOLD, 32 << 20);
    mallopt(M_TRIM_THRESHOLD, 32 << 20);
  }
#endif
  return true;
}();

/// Test-overridable default chunk capacity. Read once per Column
/// construction (each column carries its own shift/mask), so changing it
/// never affects existing columns.
std::atomic<size_t> g_default_chunk_capacity{Column::kDefaultChunkCapacity};

uint32_t ShiftFor(size_t cap) {
  assert(cap >= 2 && (cap & (cap - 1)) == 0);
  uint32_t s = 0;
  while ((size_t{1} << s) < cap) ++s;
  return s;
}

/// Raw base pointer of every chunk of `c`, so gather loops pay one indexed
/// load per element instead of a shared_ptr dereference.
std::vector<const uint64_t*> ChunkBases(const Column& c) {
  std::vector<const uint64_t*> bases(c.num_chunks());
  for (size_t ci = 0; ci < c.num_chunks(); ++ci) {
    bases[ci] = c.ChunkBits(ci).data();
  }
  return bases;
}

#if DISSODB_SIMD_COMPILED

// ---------------------------------------------------------------------------
// AVX2 kernels (runtime-dispatched; see src/common/simd.h). Every kernel is
// elementwise-exact against its scalar fallback: hashing and gathering are
// pure integer lane arithmetic, and the zone-map min/max is order-free.
// ---------------------------------------------------------------------------

/// Low 64 bits of a 64x64 multiply by the constant `c`, per lane. AVX2 has
/// no 64-bit multiply; compose it from 32x32 partial products (the
/// standard lo*lo + ((lo*hi + hi*lo) << 32) decomposition, exact mod 2^64).
__attribute__((target("avx2"))) inline __m256i Mul64Const(__m256i a,
                                                          uint64_t c) {
  const __m256i bl =
      _mm256_set1_epi64x(static_cast<int64_t>(c & 0xffffffffULL));
  const __m256i bh = _mm256_set1_epi64x(static_cast<int64_t>(c >> 32));
  const __m256i ahi = _mm256_srli_epi64(a, 32);
  const __m256i ll = _mm256_mul_epu32(a, bl);
  const __m256i lh = _mm256_mul_epu32(a, bh);
  const __m256i hl = _mm256_mul_epu32(ahi, bl);
  return _mm256_add_epi64(ll,
                          _mm256_slli_epi64(_mm256_add_epi64(lh, hl), 32));
}

/// Four Mix64 (splitmix64 finalizer) lanes; bit-identical to Mix64().
__attribute__((target("avx2"))) inline __m256i Mix64x4(__m256i x) {
  x = _mm256_add_epi64(
      x, _mm256_set1_epi64x(static_cast<int64_t>(0x9e3779b97f4a7c15ULL)));
  x = Mul64Const(_mm256_xor_si256(x, _mm256_srli_epi64(x, 30)),
                 0xbf58476d1ce4e5b9ULL);
  x = Mul64Const(_mm256_xor_si256(x, _mm256_srli_epi64(x, 27)),
                 0x94d049bb133111ebULL);
  return _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
}

/// out[k] = HashCombine(out[k], Mix64(tag_mix ^ bits[k])), 4 lanes at a
/// time. With `init`, out[k]'s prior value is replaced by kHashSeed (the
/// first key column's pass writes the vector instead of read-modify-
/// writing it). Each output element depends only on its own input, so the
/// fixed lane order is trivially deterministic and identical to scalar.
__attribute__((target("avx2"))) void HashCombineAvx2(const uint64_t* bits,
                                                     size_t n,
                                                     uint64_t tag_mix,
                                                     uint64_t* out,
                                                     bool init) {
  const __m256i tm = _mm256_set1_epi64x(static_cast<int64_t>(tag_mix));
  const __m256i gold =
      _mm256_set1_epi64x(static_cast<int64_t>(0x9e3779b97f4a7c15ULL));
  const __m256i seed =
      _mm256_set1_epi64x(static_cast<int64_t>(kHashSeed));
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bits + k));
    const __m256i v = Mix64x4(_mm256_xor_si256(tm, b));
    __m256i h =
        init ? seed
             : _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out + k));
    // HashCombine: h ^= v + GOLD + (h << 6) + (h >> 2).
    const __m256i t = _mm256_add_epi64(
        _mm256_add_epi64(v, gold),
        _mm256_add_epi64(_mm256_slli_epi64(h, 6), _mm256_srli_epi64(h, 2)));
    h = _mm256_xor_si256(h, t);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + k), h);
  }
  for (; k < n; ++k) {
    size_t h = init ? kHashSeed : out[k];
    HashCombine(&h, Mix64(tag_mix ^ bits[k]));
    out[k] = h;
  }
}

/// out[k] = bases[sel[k] >> shift][sel[k] & mask], 4 lanes at a time. Two
/// chained hardware gathers: first the per-chunk base pointers (a tiny,
/// cache-resident table), then the payloads themselves via absolute
/// addresses (null base, scale 1) — which makes the kernel indifferent to
/// how the selection scatters across chunks.
__attribute__((target("avx2"))) void GatherBitsAvx2(
    const uint64_t* const* bases, uint32_t shift, uint64_t mask,
    const uint32_t* sel, size_t n, uint64_t* out) {
  const __m256i maskv = _mm256_set1_epi64x(static_cast<int64_t>(mask));
  const __m128i shiftv = _mm_cvtsi32_si128(static_cast<int>(shift));
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m128i s32 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(sel + k));
    const __m256i s = _mm256_cvtepu32_epi64(s32);
    const __m256i ci = _mm256_srl_epi64(s, shiftv);
    const __m256i local = _mm256_and_si256(s, maskv);
    const __m256i base = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(bases), ci, 8);
    const __m256i addr =
        _mm256_add_epi64(base, _mm256_slli_epi64(local, 3));
    const __m256i v = _mm256_i64gather_epi64(
        static_cast<const long long*>(nullptr), addr, 1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + k), v);
  }
  for (; k < n; ++k) {
    const uint32_t r = sel[k];
    out[k] = bases[r >> shift][r & mask];
  }
}

/// Merges the unsigned min/max of data[0..n) into *mn_io / *mx_io. AVX2
/// lacks unsigned 64-bit min/max; flip the sign bit and compare signed.
/// Min/max are order-free, so lane accumulation is exact.
__attribute__((target("avx2"))) void MinMaxU64Avx2(const uint64_t* data,
                                                   size_t n, uint64_t* mn_io,
                                                   uint64_t* mx_io) {
  uint64_t mn = *mn_io;
  uint64_t mx = *mx_io;
  size_t k = 0;
  if (n >= 4) {
    const __m256i sign =
        _mm256_set1_epi64x(static_cast<int64_t>(0x8000000000000000ULL));
    __m256i mnv = _mm256_set1_epi64x(-1);
    __m256i mxv = _mm256_setzero_si256();
    for (; k + 4 <= n; k += 4) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + k));
      const __m256i vs = _mm256_xor_si256(v, sign);
      mnv = _mm256_blendv_epi8(
          mnv, v, _mm256_cmpgt_epi64(_mm256_xor_si256(mnv, sign), vs));
      mxv = _mm256_blendv_epi8(
          mxv, v, _mm256_cmpgt_epi64(vs, _mm256_xor_si256(mxv, sign)));
    }
    alignas(32) uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), mnv);
    for (uint64_t l : lanes) mn = std::min(mn, l);
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), mxv);
    for (uint64_t l : lanes) mx = std::max(mx, l);
  }
  for (; k < n; ++k) {
    mn = std::min(mn, data[k]);
    mx = std::max(mx, data[k]);
  }
  *mn_io = mn;
  *mx_io = mx;
}

#endif  // DISSODB_SIMD_COMPILED

/// Gathers `n` payloads selected by `sel` into `out` and merges their
/// min/max into *mn_io / *mx_io (zone-map maintenance). All paths produce
/// bit-identical payloads and zone maps.
///
/// The default path is a scalar loop with a fixed software-prefetch
/// lookahead: the selection is random-access into a source that usually
/// exceeds L2, and issuing the load address kGatherLookahead elements
/// early overlaps the misses. The vpgatherqq kernel is dispatched only
/// under simd::UseHardwareGather() — measured on GDS-mitigated Xeons the
/// hardware gather is ~3x slower than this loop, so it is opt-in for
/// unaffected CPUs rather than the AVX2 default.
void GatherWithZoneMap(const uint64_t* const* bases, uint32_t shift,
                       uint64_t mask, const uint32_t* sel, size_t n,
                       uint64_t* out, uint64_t* mn_io, uint64_t* mx_io) {
#if DISSODB_SIMD_COMPILED
  if (n >= 8 && simd::UseHardwareGather()) {
    GatherBitsAvx2(bases, shift, mask, sel, n, out);
    MinMaxU64Avx2(out, n, mn_io, mx_io);
    return;
  }
#endif
  uint64_t mn = *mn_io;
  uint64_t mx = *mx_io;
  constexpr size_t kGatherLookahead = 16;
  const size_t main = n > kGatherLookahead ? n - kGatherLookahead : 0;
  size_t k = 0;
  for (; k < main; ++k) {
    const uint32_t rp = sel[k + kGatherLookahead];
    __builtin_prefetch(&bases[rp >> shift][rp & mask], 0, 1);
    const uint32_t r = sel[k];
    const uint64_t b = bases[r >> shift][r & mask];
    out[k] = b;
    mn = std::min(mn, b);
    mx = std::max(mx, b);
  }
  for (; k < n; ++k) {
    const uint32_t r = sel[k];
    const uint64_t b = bases[r >> shift][r & mask];
    out[k] = b;
    mn = std::min(mn, b);
    mx = std::max(mx, b);
  }
  *mn_io = mn;
  *mx_io = mx;
}

}  // namespace

void Column::SetDefaultChunkCapacityForTesting(size_t cap) {
  assert(cap >= 2 && (cap & (cap - 1)) == 0);
  g_default_chunk_capacity.store(cap, std::memory_order_relaxed);
}

size_t Column::default_chunk_capacity() {
  return g_default_chunk_capacity.load(std::memory_order_relaxed);
}

Column::Column() {
  const size_t cap = default_chunk_capacity();
  chunk_shift_ = ShiftFor(cap);
  chunk_mask_ = cap - 1;
}

Column::Column(ValueType type) : Column() { type_ = type; }

void Column::Reserve(size_t n) {
  if (n <= size_ || chunks_.empty()) return;
  ChunkPtr& tail = chunks_.back();
  // Reserving is an optimization only: never detach a shared tail (the
  // eventual append will), and a sealed tail has nothing to grow.
  if (tail.use_count() > 1 || tail->bits.size() > chunk_mask_) return;
  tail->bits.reserve(
      std::min(chunk_capacity(), tail->bits.size() + (n - size_)));
  if (tagged_) tail->tags.reserve(tail->bits.capacity());
  SyncTailBase();
}

void Column::Append(Value v) {
  if (size_ == 0 && !tagged_) {
    type_ = v.type();
  } else if (v.type() != type_ && !tagged_) {
    Demote(v.type());
  }
  Chunk* tail = MutableTail();
  if (tagged_) tail->tags.push_back(static_cast<uint8_t>(v.type()));
  const uint64_t bits = v.RawBits();
  tail->bits.push_back(bits);
  if (bits < tail->min_bits) tail->min_bits = bits;
  if (bits > tail->max_bits) tail->max_bits = bits;
  ++size_;
  SyncTailBase();
}

void Column::Demote(ValueType incoming) {
  (void)incoming;
  tagged_ = true;
  for (ChunkPtr& c : chunks_) {
    if (c.use_count() > 1) c = std::make_shared<Chunk>(*c);
    c->tags.assign(c->bits.size(), static_cast<uint8_t>(type_));
  }
  RebuildBases();
}

void Column::AppendGather(const Column& src, std::span<const uint32_t> idx) {
  if (size_ == 0 && !tagged_) type_ = src.type_;
  // Early out after type adoption: a fully pruned selection must not touch
  // src's base-pointer table or detach the tail chunk.
  if (idx.empty()) return;
  if (src.uniform() && uniform() && src.type_ == type_) {
    // Flat fast path: fill the tail chunk in runs bounded by its remaining
    // room, reading src through per-chunk base pointers.
    const std::vector<const uint64_t*> bases = ChunkBases(src);
    size_t done = 0;
    while (done < idx.size()) {
      Chunk* tail = MutableTail();
      const size_t take =
          std::min(chunk_capacity() - tail->bits.size(), idx.size() - done);
      const size_t old = tail->bits.size();
      tail->bits.resize(old + take);
      GatherWithZoneMap(bases.data(), src.chunk_shift_, src.chunk_mask_,
                        idx.data() + done, take, tail->bits.data() + old,
                        &tail->min_bits, &tail->max_bits);
      size_ += take;
      done += take;
      SyncTailBase();
    }
    return;
  }
  // Mixed-type fallback.
  for (uint32_t k : idx) Append(src.Get(k));
}

Column Column::Gathered(const Column& src, std::span<const uint32_t> sel,
                        Scheduler* scheduler) {
  Column out;
  if (!src.uniform()) {
    out.AppendGather(src, sel);
    return out;
  }
  out.type_ = src.type_;
  const size_t n = sel.size();
  if (n == 0) return out;
  const size_t cap = out.chunk_capacity();
  out.chunks_.resize((n + cap - 1) / cap);
  out.size_ = n;

  const std::vector<const uint64_t*> bases = ChunkBases(src);
  auto fill = [&](size_t lo, size_t hi) {
    // Each task owns the single output chunk its range covers (ranges are
    // chunk-aligned), so parallel tasks write disjoint chunks.
    auto chunk = std::make_shared<Chunk>();
    chunk->bits.resize(hi - lo);
    GatherWithZoneMap(bases.data(), src.chunk_shift_, src.chunk_mask_,
                      sel.data() + lo, hi - lo, chunk->bits.data(),
                      &chunk->min_bits, &chunk->max_bits);
    out.chunks_[lo / cap] = std::move(chunk);
  };
  if (scheduler != nullptr && n >= 2 * cap) {
    scheduler->ParallelFor(0, n, cap, fill);
  } else {
    for (size_t lo = 0; lo < n; lo += cap) fill(lo, std::min(lo + cap, n));
  }
  out.RebuildBases();
  return out;
}

void Column::HashCombineInto(std::span<uint64_t> out, bool init) const {
  assert(out.size() == size_);
  HashCombineRange(0, out, init);
}

void Column::HashCombineRange(size_t begin, std::span<uint64_t> out,
                              bool init) const {
  assert(begin + out.size() <= size_);
  const uint64_t tag_mix = static_cast<uint64_t>(type_) * 0x100000001b3ULL;
  size_t done = 0;
  while (done < out.size()) {
    const size_t g = begin + done;
    const size_t ci = g >> chunk_shift_;
    const size_t local = g & chunk_mask_;
    const Chunk& chunk = *chunks_[ci];
    const size_t take = std::min(chunk.bits.size() - local, out.size() - done);
    const uint64_t* bits = chunk.bits.data() + local;
    if (!tagged_) {
#if DISSODB_SIMD_COMPILED
      if (take >= 8 && simd::UseAvx2()) {
        HashCombineAvx2(bits, take, tag_mix, out.data() + done, init);
        done += take;
        continue;
      }
#endif
      for (size_t k = 0; k < take; ++k) {
        size_t h = init ? kHashSeed : out[done + k];
        HashCombine(&h, Mix64(tag_mix ^ bits[k]));
        out[done + k] = h;
      }
    } else {
      const uint8_t* tags = chunk.tags.data() + local;
      for (size_t k = 0; k < take; ++k) {
        size_t h = init ? kHashSeed : out[done + k];
        HashCombine(&h, Mix64(static_cast<uint64_t>(tags[k]) *
                                  0x100000001b3ULL ^
                              bits[k]));
        out[done + k] = h;
      }
    }
    done += take;
  }
}

WeightColumn::WeightColumn() {
  const size_t cap = Column::default_chunk_capacity();
  chunk_shift_ = ShiftFor(cap);
  chunk_mask_ = cap - 1;
}

WeightColumn::WeightColumn(const std::vector<double>& init) : WeightColumn() {
  const size_t n = init.size();
  if (n == 0) return;
  const size_t cap = chunk_capacity();
  chunks_.resize((n + cap - 1) / cap);
  for (size_t lo = 0; lo < n; lo += cap) {
    const size_t take = std::min(cap, n - lo);
    auto chunk = std::make_shared<Chunk>();
    chunk->vals.resize(take);
    std::memcpy(chunk->vals.data(), init.data() + lo, take * sizeof(double));
    chunks_[lo / cap] = std::move(chunk);
  }
  size_ = n;
  RebuildBases();
}

void WeightColumn::Reserve(size_t n) {
  if (n <= size_ || chunks_.empty()) return;
  ChunkPtr& tail = chunks_.back();
  // Reserving is an optimization only: never detach a shared tail (the
  // eventual append will), and a sealed tail has nothing to grow.
  if (tail.use_count() > 1 || tail->vals.size() > chunk_mask_) return;
  tail->vals.reserve(
      std::min(chunk_capacity(), tail->vals.size() + (n - size_)));
  SyncTailBase();
}

void WeightColumn::AppendGather(const WeightColumn& src,
                                std::span<const uint32_t> idx) {
  if (idx.empty()) return;
  const uint32_t shift = src.chunk_shift_;
  const uint64_t mask = src.chunk_mask_;
  const double* const* bases = src.bases_.data();
  size_t done = 0;
  while (done < idx.size()) {
    Chunk* tail = MutableTail();
    const size_t take =
        std::min(chunk_capacity() - tail->vals.size(), idx.size() - done);
    const size_t old = tail->vals.size();
    tail->vals.resize(old + take);
    double* out = tail->vals.data() + old;
    for (size_t k = 0; k < take; ++k) {
      const uint32_t r = idx[done + k];
      out[k] = bases[r >> shift][r & mask];
    }
    size_ += take;
    done += take;
    SyncTailBase();
  }
}

WeightColumn WeightColumn::Gathered(const WeightColumn& src,
                                    std::span<const uint32_t> sel,
                                    Scheduler* scheduler) {
  WeightColumn out;
  const size_t n = sel.size();
  if (n == 0) return out;
  const size_t cap = out.chunk_capacity();
  out.chunks_.resize((n + cap - 1) / cap);
  out.size_ = n;
  const uint32_t shift = src.chunk_shift_;
  const uint64_t mask = src.chunk_mask_;
  const double* const* bases = src.bases_.data();
  auto fill = [&](size_t lo, size_t hi) {
    // Chunk-aligned ranges: each task owns one disjoint output chunk.
    auto chunk = std::make_shared<Chunk>();
    chunk->vals.resize(hi - lo);
    double* o = chunk->vals.data();
    for (size_t k = lo; k < hi; ++k) {
      const uint32_t r = sel[k];
      o[k - lo] = bases[r >> shift][r & mask];
    }
    out.chunks_[lo / cap] = std::move(chunk);
  };
  if (scheduler != nullptr && n >= 2 * cap) {
    scheduler->ParallelFor(0, n, cap, fill);
  } else {
    for (size_t lo = 0; lo < n; lo += cap) fill(lo, std::min(lo + cap, n));
  }
  out.RebuildBases();
  return out;
}

void WeightColumn::Scale(double f) {
  if (f == 1.0) return;
  for (size_t ci = 0; ci < chunks_.size(); ++ci) {
    Chunk* c = MutableChunk(ci);
    for (double& v : c->vals) v = std::clamp(v * f, 0.0, 1.0);
  }
}

void WeightColumn::ComplementPow(double e) {
  if (e == 1.0) return;
  for (size_t ci = 0; ci < chunks_.size(); ++ci) {
    Chunk* c = MutableChunk(ci);
    for (double& v : c->vals) {
      v = std::clamp(1.0 - std::pow(1.0 - v, e), 0.0, 1.0);
    }
  }
}

void ColumnarRows::AppendRowImpl(std::span<const Value> row, double w) {
  assert(row.size() == cols_.size());
  for (size_t c = 0; c < cols_.size(); ++c) MutableCol(&cols_[c])->Append(row[c]);
  MutableWeights()->Append(w);
  ++num_rows_;
}

void ColumnarRows::GatherImpl(const ColumnarRows& src,
                              std::span<const uint32_t> sel) {
  assert(src.NumCols() == NumCols());
  if (sel.empty()) return;
  for (size_t c = 0; c < cols_.size(); ++c) {
    MutableCol(&cols_[c])->AppendGather(*src.cols_[c], sel);
  }
  MutableWeights()->AppendGather(*src.weights_, sel);
  num_rows_ += sel.size();
}

HashVector HashKeyColumns(const ColumnarRows& rows,
                          std::span<const int> key_cols,
                          Scheduler* scheduler) {
  const size_t n = rows.NumRows();
  HashVector out;
  // A fully pruned input (n == 0) must not consult chunk capacities or
  // spawn any work.
  if (n == 0) return out;
  if (key_cols.empty()) {
    out.assign(n, kHashSeed);
    return out;
  }
  // Default-init resize: the first column's pass (init=true) writes every
  // element from the seed, so a separate seed-fill sweep would be a wasted
  // full pass over the vector.
  out.resize(n);
  const size_t grain = rows.col(key_cols[0])->chunk_capacity();
  if (scheduler != nullptr && n >= 2 * grain) {
    // Chunk-aligned morsels: every task hashes chunk-local spans of each
    // key column into its disjoint slice of `out`.
    scheduler->ParallelFor(0, n, grain, [&](size_t lo, size_t hi) {
      bool first = true;
      for (int c : key_cols) {
        rows.col(c)->HashCombineRange(lo, std::span(out.data() + lo, hi - lo),
                                      first);
        first = false;
      }
    });
  } else {
    bool first = true;
    for (int c : key_cols) {
      rows.col(c)->HashCombineInto(out, first);
      first = false;
    }
  }
  return out;
}

bool KeysEqual(const ColumnarRows& a, size_t ra, std::span<const int> ka,
               const ColumnarRows& b, size_t rb, std::span<const int> kb) {
  assert(ka.size() == kb.size());
  for (size_t i = 0; i < ka.size(); ++i) {
    if (!a.col(ka[i])->ElemEquals(ra, *b.col(kb[i]), rb)) return false;
  }
  return true;
}

}  // namespace dissodb
