// Columnar in-memory table with per-tuple probabilities.
#ifndef DISSODB_STORAGE_TABLE_H_
#define DISSODB_STORAGE_TABLE_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/common/value.h"
#include "src/storage/columnar.h"
#include "src/storage/schema.h"

namespace dissodb {

/// \brief A tuple-independent probabilistic relation.
///
/// Storage is column-major: one typed 64-bit payload array per attribute
/// plus a parallel probability column (see ColumnarRows). Deterministic
/// relations keep probabilities pinned at 1. Copies are shallow — columns
/// are shared with copy-on-write, so passing tables around is cheap and
/// scans can reference table columns zero-copy.
class Table : public ColumnarRows {
 public:
  explicit Table(RelationSchema schema) : schema_(std::move(schema)) {
    InitCols(schema_.arity());
    for (int c = 0; c < schema_.arity(); ++c) {
      *cols_[c] = Column(schema_.column_types[c]);
    }
  }

  const RelationSchema& schema() const { return schema_; }
  RelationSchema* mutable_schema() { return &schema_; }

  int arity() const { return schema_.arity(); }

  /// Appends a row; `row.size()` must equal arity. Deterministic relations
  /// force p = 1.
  void AddRow(std::span<const Value> row, double p = 1.0) {
    AppendRowImpl(row, schema_.deterministic ? 1.0 : p);
  }
  void AddRow(std::initializer_list<Value> row, double p = 1.0) {
    AddRow(std::span<const Value>(row.begin(), row.size()), p);
  }

  double Prob(size_t row) const { return Weight(row); }
  void SetProb(size_t row, double p) {
    MutableWeights()->Set(row, schema_.deterministic ? 1.0 : p);
    NoteOverwrite();
  }

  /// Returns a table with the same schema containing rows where `pred` holds.
  /// (Row-at-a-time convenience; hot paths use Select on a selection vector.)
  Table Filter(const std::function<bool(std::span<const Value>)>& pred) const;

  /// Returns a table with the same schema containing rows `sel`, gathered
  /// column-at-a-time. The identity selection shares the columns zero-copy.
  Table Select(std::span<const uint32_t> sel) const;

  /// Multiplies every probability by `f` (clamped to [0,1]); used by the
  /// Proposition 21 / Figure 5n–5p scaling experiments. No-op on
  /// deterministic relations.
  void ScaleProbabilities(double f);

  /// Rewrites every probability p to 1 - (1-p)^(1/d): the symmetric
  /// oblivious dissociation weights for a tuple copied at most `d` times.
  /// Monotone plan scores over a shallow copy transformed this way
  /// *lower*-bound the true query probability (see
  /// src/anytime/lower_bound.h); over-estimating d keeps the bound valid,
  /// it only loosens it. No-op on deterministic relations or d <= 1.
  void DissociateProbabilitiesObliviously(double d);

  /// Checks whether the data satisfies a declared FD.
  bool SatisfiesFD(const FunctionalDependency& fd) const;

  /// Verifies all schema-declared FDs hold on the data.
  Status ValidateFDs() const;

  std::string ToString(size_t max_rows = 20) const;

 private:
  RelationSchema schema_;
};

}  // namespace dissodb

#endif  // DISSODB_STORAGE_TABLE_H_
