// Row-oriented in-memory table with per-tuple probabilities.
#ifndef DISSODB_STORAGE_TABLE_H_
#define DISSODB_STORAGE_TABLE_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/common/value.h"
#include "src/storage/schema.h"

namespace dissodb {

/// \brief A tuple-independent probabilistic relation.
///
/// Rows are stored flattened (`arity` Values per row) next to a parallel
/// probability array. Deterministic relations keep probabilities pinned at 1.
class Table {
 public:
  explicit Table(RelationSchema schema) : schema_(std::move(schema)) {}

  const RelationSchema& schema() const { return schema_; }
  RelationSchema* mutable_schema() { return &schema_; }

  int arity() const { return schema_.arity(); }
  size_t NumRows() const {
    return arity() == 0 ? zero_arity_rows_ : values_.size() / arity();
  }

  /// Appends a row; `row.size()` must equal arity. Deterministic relations
  /// force p = 1.
  void AddRow(std::span<const Value> row, double p = 1.0);
  void AddRow(std::initializer_list<Value> row, double p = 1.0) {
    AddRow(std::span<const Value>(row.begin(), row.size()), p);
  }

  Value At(size_t row, int col) const { return values_[row * arity() + col]; }
  std::span<const Value> Row(size_t row) const {
    return {values_.data() + row * arity(), static_cast<size_t>(arity())};
  }
  double Prob(size_t row) const { return probs_[row]; }
  void SetProb(size_t row, double p) {
    probs_[row] = schema_.deterministic ? 1.0 : p;
  }

  /// Returns a table with the same schema containing rows where `pred` holds.
  Table Filter(const std::function<bool(std::span<const Value>)>& pred) const;

  /// Multiplies every probability by `f` (clamped to [0,1]); used by the
  /// Proposition 21 / Figure 5n–5p scaling experiments. No-op on
  /// deterministic relations.
  void ScaleProbabilities(double f);

  /// Checks whether the data satisfies a declared FD.
  bool SatisfiesFD(const FunctionalDependency& fd) const;

  /// Verifies all schema-declared FDs hold on the data.
  Status ValidateFDs() const;

  std::string ToString(size_t max_rows = 20) const;

 private:
  RelationSchema schema_;
  std::vector<Value> values_;  // flattened, arity() per row
  std::vector<double> probs_;
  size_t zero_arity_rows_ = 0;
};

}  // namespace dissodb

#endif  // DISSODB_STORAGE_TABLE_H_
