#include "src/query/canonicalize.h"

#include <algorithm>
#include <numeric>

namespace dissodb {

Result<CanonicalizedQuery> CanonicalizeQuery(const ConjunctiveQuery& q) {
  CanonicalizedQuery out;
  out.orig_to_canon.assign(q.num_vars(), -1);

  // Pass 0: canonical body order — sort atoms by relation symbol (stable,
  // so atoms over the same relation keep their spelled relative order).
  // Body-permuted spellings of one query then share a canonical form, one
  // plan-cache entry, and identical fingerprints.
  out.atom_canon_to_orig.resize(q.num_atoms());
  std::iota(out.atom_canon_to_orig.begin(), out.atom_canon_to_orig.end(), 0);
  std::stable_sort(out.atom_canon_to_orig.begin(),
                   out.atom_canon_to_orig.end(), [&](int a, int b) {
                     return q.atom(a).relation < q.atom(b).relation;
                   });
  out.atom_orig_to_canon.resize(q.num_atoms());
  for (int c = 0; c < q.num_atoms(); ++c) {
    out.atom_orig_to_canon[out.atom_canon_to_orig[c]] = c;
    if (out.atom_canon_to_orig[c] != c) out.atoms_reordered = true;
  }

  // Pass 1: assign canonical ids in first-occurrence order — atoms in
  // canonical body order, terms left to right, then any head-only
  // variables in head order (parser-produced queries have none;
  // programmatic ones might).
  auto assign = [&](VarId v) -> Status {
    if (v < 0 || v >= q.num_vars()) {
      return Status::InvalidArgument("query references unknown variable id");
    }
    if (out.orig_to_canon[v] < 0) {
      out.orig_to_canon[v] = static_cast<VarId>(out.canon_to_orig.size());
      out.canon_to_orig.push_back(v);
    }
    return Status::OK();
  };
  for (int c = 0; c < q.num_atoms(); ++c) {
    for (const Term& t : q.atom(out.atom_canon_to_orig[c]).terms) {
      if (t.is_var) DISSODB_RETURN_NOT_OK(assign(t.var));
    }
  }
  for (VarId h : q.head_vars()) DISSODB_RETURN_NOT_OK(assign(h));

  for (VarId c = 0; c < static_cast<VarId>(out.canon_to_orig.size()); ++c) {
    if (out.canon_to_orig[c] != c) {
      out.identity = false;
      break;
    }
  }

  // Pass 2: rebuild the query in canonical variable and body space.
  ConjunctiveQuery canon;
  canon.SetName("q");
  for (size_t c = 0; c < out.canon_to_orig.size(); ++c) {
    canon.AddVar("v" + std::to_string(c));
  }
  for (VarId h : q.head_vars()) {
    DISSODB_RETURN_NOT_OK(canon.AddHeadVar(out.orig_to_canon[h]));
  }
  for (int c = 0; c < q.num_atoms(); ++c) {
    Atom atom = q.atom(out.atom_canon_to_orig[c]);
    for (Term& t : atom.terms) {
      if (t.is_var) t.var = out.orig_to_canon[t.var];
    }
    DISSODB_RETURN_NOT_OK(canon.AddAtom(std::move(atom)));
  }
  out.query = std::move(canon);
  return out;
}

Result<ConjunctiveQuery> SubstituteParams(const ConjunctiveQuery& q,
                                          const std::vector<Value>& params) {
  if (q.num_params() == 0) return q;
  if (static_cast<int>(params.size()) < q.num_params()) {
    return Status::InvalidArgument(
        "query has " + std::to_string(q.num_params()) +
        " parameter(s) but only " + std::to_string(params.size()) +
        " value(s) are bound");
  }
  ConjunctiveQuery bound;
  bound.SetName(q.name());
  for (VarId v = 0; v < q.num_vars(); ++v) bound.AddVar(q.var_name(v));
  for (VarId h : q.head_vars()) DISSODB_RETURN_NOT_OK(bound.AddHeadVar(h));
  for (int i = 0; i < q.num_atoms(); ++i) {
    Atom atom = q.atom(i);
    for (Term& t : atom.terms) {
      if (t.IsParam()) t = Term::Const(params[t.param]);
    }
    DISSODB_RETURN_NOT_OK(bound.AddAtom(std::move(atom)));
  }
  return bound;
}

}  // namespace dissodb
