// Datalog-style parser for self-join-free conjunctive queries.
//
// Grammar (whitespace-insensitive, optional trailing '.'):
//   query  := head ":-" atom ("," atom)*
//   head   := ident "(" [varlist] ")"
//   atom   := ident "(" [termlist] ")"
//   term   := variable | int | float | 'string'
// Variables start with a lowercase letter; relation names with an uppercase
// letter or are any identifier used in atom position.
#ifndef DISSODB_QUERY_PARSER_H_
#define DISSODB_QUERY_PARSER_H_

#include <string_view>

#include "src/common/status.h"
#include "src/query/cq.h"
#include "src/storage/database.h"

namespace dissodb {

/// Parses `text` into a query. String constants are interned into `pool`
/// (pass nullptr to reject string constants).
Result<ConjunctiveQuery> ParseQuery(std::string_view text,
                                    StringPool* pool = nullptr);

/// Read-only parse against an immutable pool (the QueryEngine path: many
/// threads may parse concurrently over one shared database). String
/// constants already in `pool` resolve to their codes; unknown strings get
/// distinct negative codes, which match no stored tuple — the query is
/// valid and simply selects nothing on that constant.
Result<ConjunctiveQuery> ParseQueryReadOnly(std::string_view text,
                                            const StringPool& pool);

}  // namespace dissodb

#endif  // DISSODB_QUERY_PARSER_H_
