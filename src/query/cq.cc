#include "src/query/cq.h"

#include <cassert>

namespace dissodb {

std::vector<VarId> MaskToVars(VarMask m) {
  std::vector<VarId> out;
  while (m) {
    VarId v = __builtin_ctzll(m);
    out.push_back(v);
    m &= m - 1;
  }
  return out;
}

VarId ConjunctiveQuery::AddVar(const std::string& name) {
  VarId existing = FindVar(name);
  if (existing >= 0) return existing;
  assert(var_names_.size() < 64 && "queries are limited to 64 variables");
  var_names_.push_back(name);
  return static_cast<VarId>(var_names_.size()) - 1;
}

VarId ConjunctiveQuery::FindVar(const std::string& name) const {
  for (size_t i = 0; i < var_names_.size(); ++i) {
    if (var_names_[i] == name) return static_cast<VarId>(i);
  }
  return -1;
}

Status ConjunctiveQuery::AddHeadVar(VarId v) {
  if (v < 0 || v >= num_vars()) {
    return Status::InvalidArgument("head variable id out of range");
  }
  for (VarId h : head_vars_) {
    if (h == v) return Status::OK();  // duplicates in the head are idempotent
  }
  head_vars_.push_back(v);
  return Status::OK();
}

Status ConjunctiveQuery::AddAtom(Atom atom) {
  for (const auto& a : atoms_) {
    if (a.relation == atom.relation) {
      return Status::InvalidArgument(
          "self-join detected: relation " + atom.relation +
          " already used (queries must be self-join-free)");
    }
  }
  for (const auto& t : atom.terms) {
    if (t.is_var && (t.var < 0 || t.var >= num_vars())) {
      return Status::InvalidArgument("atom uses unknown variable id");
    }
    if (t.IsParam() && t.param + 1 > num_params_) num_params_ = t.param + 1;
  }
  atoms_.push_back(std::move(atom));
  return Status::OK();
}

VarMask ConjunctiveQuery::HeadMask() const {
  VarMask m = 0;
  for (VarId v : head_vars_) m |= MaskOf(v);
  return m;
}

VarMask ConjunctiveQuery::AtomMask(int i) const {
  VarMask m = 0;
  for (const auto& t : atoms_[i].terms) {
    if (t.is_var) m |= MaskOf(t.var);
  }
  return m;
}

VarMask ConjunctiveQuery::AllVarsMask() const {
  VarMask m = 0;
  for (int i = 0; i < num_atoms(); ++i) m |= AtomMask(i);
  return m;
}

int ConjunctiveQuery::AtomIndexForRelation(const std::string& name) const {
  for (int i = 0; i < num_atoms(); ++i) {
    if (atoms_[i].relation == name) return i;
  }
  return -1;
}

std::string ConjunctiveQuery::ToString() const {
  std::string out = name_ + "(";
  for (size_t i = 0; i < head_vars_.size(); ++i) {
    if (i > 0) out += ",";
    out += var_names_[head_vars_[i]];
  }
  out += ") :- ";
  for (int i = 0; i < num_atoms(); ++i) {
    if (i > 0) out += ", ";
    out += atoms_[i].relation;
    out += "(";
    for (int j = 0; j < atoms_[i].arity(); ++j) {
      if (j > 0) out += ",";
      const Term& t = atoms_[i].terms[j];
      if (t.is_var) {
        out += var_names_[t.var];
      } else if (t.IsParam()) {
        out += "$" + std::to_string(t.param);
      } else {
        out += t.constant.ToString();
      }
    }
    out += ")";
  }
  return out;
}

}  // namespace dissodb
