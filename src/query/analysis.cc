#include "src/query/analysis.h"

#include <algorithm>
#include <functional>
#include <numeric>

namespace dissodb {

SchemaKnowledge SchemaKnowledge::None(const ConjunctiveQuery& q) {
  SchemaKnowledge sk;
  sk.deterministic.assign(q.num_atoms(), false);
  return sk;
}

namespace {

/// Shared body of FromDatabase / FromSnapshot: `catalog` is anything with
/// GetTable(name) -> Result<const Table*>.
template <typename Catalog>
Result<SchemaKnowledge> FromCatalog(const ConjunctiveQuery& q,
                                    const Catalog& catalog) {
  SchemaKnowledge sk;
  sk.deterministic.assign(q.num_atoms(), false);
  for (int i = 0; i < q.num_atoms(); ++i) {
    const Atom& a = q.atom(i);
    auto t = catalog.GetTable(a.relation);
    if (!t.ok()) return t.status();
    const RelationSchema& schema = (*t)->schema();
    if (schema.arity() != a.arity()) {
      return Status::InvalidArgument(
          "atom " + a.relation + " arity mismatch with catalog");
    }
    sk.deterministic[i] = schema.deterministic;
    for (const FunctionalDependency& fd : schema.fds) {
      QueryFD qfd{0, 0};
      bool usable = true;
      for (int pos : fd.lhs) {
        if (pos < 0 || pos >= a.arity()) {
          usable = false;
          break;
        }
        if (a.terms[pos].is_var) qfd.lhs |= MaskOf(a.terms[pos].var);
        // Constant lhs positions are fixed by the atom: omit from lhs.
      }
      if (!usable) continue;
      for (int pos : fd.rhs) {
        if (pos < 0 || pos >= a.arity()) continue;
        if (a.terms[pos].is_var) qfd.rhs |= MaskOf(a.terms[pos].var);
      }
      if (qfd.rhs != 0) sk.fds.push_back(qfd);
    }
  }
  return sk;
}

}  // namespace

Result<SchemaKnowledge> SchemaKnowledge::FromDatabase(
    const ConjunctiveQuery& q, const Database& db) {
  return FromCatalog(q, db);
}

Result<SchemaKnowledge> SchemaKnowledge::FromSnapshot(
    const ConjunctiveQuery& q, const Snapshot& snap) {
  return FromCatalog(q, snap);
}

std::vector<WorkAtom> MakeWorkAtoms(const ConjunctiveQuery& q,
                                    const SchemaKnowledge& sk) {
  std::vector<WorkAtom> atoms;
  atoms.reserve(q.num_atoms());
  for (int i = 0; i < q.num_atoms(); ++i) {
    atoms.push_back(WorkAtom{i, q.AtomMask(i), !sk.IsDeterministic(i)});
  }
  return atoms;
}

VarMask UnionVars(std::span<const WorkAtom> atoms) {
  VarMask m = 0;
  for (const auto& a : atoms) m |= a.vars;
  return m;
}

std::vector<std::vector<int>> ConnectedComponents(
    std::span<const WorkAtom> atoms, VarMask connect_vars) {
  const int n = static_cast<int>(atoms.size());
  std::vector<int> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  std::function<int(int)> find = [&](int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](int a, int b) { parent[find(a)] = find(b); };

  // Union atoms sharing a connecting variable: group by variable.
  for (VarId v : MaskToVars(connect_vars)) {
    int first = -1;
    for (int i = 0; i < n; ++i) {
      if (!MaskContains(atoms[i].vars, v)) continue;
      if (first < 0) {
        first = i;
      } else {
        unite(first, i);
      }
    }
  }
  std::vector<std::vector<int>> groups;
  std::vector<int> group_of(n, -1);
  for (int i = 0; i < n; ++i) {
    int r = find(i);
    if (group_of[r] < 0) {
      group_of[r] = static_cast<int>(groups.size());
      groups.emplace_back();
    }
    groups[group_of[r]].push_back(i);
  }
  return groups;
}

bool IsConnected(std::span<const WorkAtom> atoms, VarMask connect_vars) {
  return ConnectedComponents(atoms, connect_vars).size() == 1;
}

bool IsHierarchical(std::span<const WorkAtom> atoms, VarMask evars) {
  // at(x) as a bitmask over atom positions (queries have <= 64 atoms by the
  // 64-variable cap, so uint64_t suffices).
  std::vector<VarId> vars = MaskToVars(evars);
  std::vector<uint64_t> at(vars.size(), 0);
  for (size_t vi = 0; vi < vars.size(); ++vi) {
    for (size_t i = 0; i < atoms.size(); ++i) {
      if (MaskContains(atoms[i].vars, vars[vi])) at[vi] |= uint64_t{1} << i;
    }
  }
  for (size_t i = 0; i < vars.size(); ++i) {
    for (size_t j = i + 1; j < vars.size(); ++j) {
      uint64_t inter = at[i] & at[j];
      if (inter == 0) continue;
      if (inter != at[i] && inter != at[j]) return false;
    }
  }
  return true;
}

bool IsHierarchical(const ConjunctiveQuery& q) {
  SchemaKnowledge none = SchemaKnowledge::None(q);
  std::vector<WorkAtom> atoms = MakeWorkAtoms(q, none);
  return IsHierarchical(atoms, q.EVarMask());
}

VarMask SeparatorVars(std::span<const WorkAtom> atoms, VarMask evars) {
  VarMask m = evars;
  for (const auto& a : atoms) m &= a.vars;
  return m;
}

VarMask ProbSeparatorVars(std::span<const WorkAtom> atoms, VarMask evars) {
  VarMask m = evars;
  bool any_prob = false;
  for (const auto& a : atoms) {
    if (!a.probabilistic) continue;
    any_prob = true;
    m &= a.vars;
  }
  return any_prob ? m : 0;
}

size_t CountProbComponents(std::span<const WorkAtom> atoms,
                           VarMask connect_vars) {
  size_t n = 0;
  for (const auto& comp : ConnectedComponents(atoms, connect_vars)) {
    for (int i : comp) {
      if (atoms[i].probabilistic) {
        ++n;
        break;
      }
    }
  }
  return n;
}

VarMask FDClosure(VarMask vars, std::span<const QueryFD> fds) {
  VarMask closure = vars;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& fd : fds) {
      if ((fd.lhs & ~closure) == 0 && (fd.rhs & ~closure) != 0) {
        closure |= fd.rhs;
        changed = true;
      }
    }
  }
  return closure;
}

}  // namespace dissodb
