// Cut-set enumeration (Section 3.2 / 3.3.1).
//
// A cut-set of a connected query is a set of existential variables whose
// removal disconnects the atoms. MinCuts are the subset-minimal cut-sets;
// they are in 1-to-1 correspondence with the top-most projections of minimal
// plans. MinPCuts additionally require that at least two of the resulting
// components contain a probabilistic relation (deterministic-relation
// refinement, Theorem 24).
#ifndef DISSODB_QUERY_CUTS_H_
#define DISSODB_QUERY_CUTS_H_

#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/query/analysis.h"

namespace dissodb {

/// All cut-sets (not only minimal) of `atoms` w.r.t. existential variables
/// `evars`: non-empty y ⊆ evars with atoms − y disconnected. Used by the
/// total-plan counting of Figure 2. Fails if |evars| > 24 (enumeration guard).
Result<std::vector<VarMask>> EnumerateCutSets(std::span<const WorkAtom> atoms,
                                              VarMask evars);

/// Subset-minimal cut-sets, smallest first. Empty result iff the query has
/// fewer than two atoms (a single atom can never be disconnected).
Result<std::vector<VarMask>> MinCuts(std::span<const WorkAtom> atoms,
                                     VarMask evars);

/// Minimal cut-sets that split the atoms into >= 2 components *each counted
/// only if it contains a probabilistic atom* (Section 3.3.1 modification 1).
Result<std::vector<VarMask>> MinPCuts(std::span<const WorkAtom> atoms,
                                      VarMask evars);

}  // namespace dissodb

#endif  // DISSODB_QUERY_CUTS_H_
