// Structural analysis of (possibly dissociated) queries: connectivity,
// hierarchy test (Def. 1 / Lemma 3), separator variables, FD closure.
//
// The dissociation algorithms operate on "work atoms": an original atom index
// plus its variable mask, which may include extra (dissociated) variables.
#ifndef DISSODB_QUERY_ANALYSIS_H_
#define DISSODB_QUERY_ANALYSIS_H_

#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/query/cq.h"
#include "src/storage/database.h"

namespace dissodb {

/// An atom as seen by the plan-enumeration algorithms.
struct WorkAtom {
  int atom_idx;        ///< index into the original query's atom list
  VarMask vars;        ///< variables incl. dissociated extras
  bool probabilistic;  ///< false for deterministic relations (Section 3.3.1)
};

/// A functional dependency lifted to query variables: lhs -> rhs.
struct QueryFD {
  VarMask lhs;
  VarMask rhs;
};

/// \brief Schema knowledge for one query: which atoms are deterministic and
/// the query-level FDs (Section 3.3).
struct SchemaKnowledge {
  std::vector<bool> deterministic;  // per atom; empty = all probabilistic
  std::vector<QueryFD> fds;

  bool IsDeterministic(int atom_idx) const {
    return !deterministic.empty() && deterministic[atom_idx];
  }

  /// All-probabilistic, no FDs (the paper's default setting).
  static SchemaKnowledge None(const ConjunctiveQuery& q);

  /// Reads deterministic flags and FDs from the database catalog. FD
  /// positions bound to constants contribute nothing to the lhs (they are
  /// fixed by the atom), making the FD strictly more useful.
  static Result<SchemaKnowledge> FromDatabase(const ConjunctiveQuery& q,
                                              const Database& db);

  /// Same, reading a pinned snapshot's catalog (safe while writers commit).
  static Result<SchemaKnowledge> FromSnapshot(const ConjunctiveQuery& q,
                                              const Snapshot& snap);
};

/// Work atoms of `q` (no dissociation), with probabilistic flags from `sk`.
std::vector<WorkAtom> MakeWorkAtoms(const ConjunctiveQuery& q,
                                    const SchemaKnowledge& sk);

/// Union of variable masks.
VarMask UnionVars(std::span<const WorkAtom> atoms);

/// Partitions `atoms` into groups connected through variables in
/// `connect_vars` (the paper connects through existential variables only).
/// Returns groups of indices into `atoms`, each sorted, ordered by smallest
/// member.
std::vector<std::vector<int>> ConnectedComponents(std::span<const WorkAtom> atoms,
                                                  VarMask connect_vars);

/// True iff atoms form a single connected component under `connect_vars`.
bool IsConnected(std::span<const WorkAtom> atoms, VarMask connect_vars);

/// Hierarchy test (Definition 1) over existential variables `evars`: for all
/// pairs x,y: at(x) ⊆ at(y), disjoint, or ⊇.
bool IsHierarchical(std::span<const WorkAtom> atoms, VarMask evars);

/// Convenience: is q (with all atoms, no dissociation) hierarchical, i.e.
/// safe by the Dalvi-Suciu dichotomy (Theorem 2)?
bool IsHierarchical(const ConjunctiveQuery& q);

/// Separator (root) variables: existential variables occurring in every atom.
VarMask SeparatorVars(std::span<const WorkAtom> atoms, VarMask evars);

/// Separator restricted to probabilistic atoms (Section 3.3.1): existential
/// variables occurring in every probabilistic atom. Any variable in this set
/// keeps all probabilistic atoms connected while present, so every p-cut-set
/// must contain the whole set — if removing it yields >= 2 probabilistic
/// components, it is the unique minimal p-cut. All atoms probabilistic
/// reduces to SeparatorVars. Returns 0 when there is no probabilistic atom.
VarMask ProbSeparatorVars(std::span<const WorkAtom> atoms, VarMask evars);

/// Number of connected components under `connect_vars` that contain at
/// least one probabilistic atom (the count MinPCuts tests against).
size_t CountProbComponents(std::span<const WorkAtom> atoms,
                           VarMask connect_vars);

/// Closure of `vars` under the FDs (standard fixpoint).
VarMask FDClosure(VarMask vars, std::span<const QueryFD> fds);

}  // namespace dissodb

#endif  // DISSODB_QUERY_ANALYSIS_H_
