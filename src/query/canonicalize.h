// Variable-renaming- and body-order-invariant canonical form of a
// conjunctive query.
//
// Two queries that differ only in variable names / interning order, the
// head predicate's name, or the order their body atoms are spelled in are
// isomorphic: they compute the same answers up to a permutation of the
// answer-tuple columns. CanonicalizeQuery first sorts the body atoms by
// relation symbol, then renames the variables to v0, v1, ... in
// first-occurrence order over the sorted body, so every member of an
// isomorphism class maps to one canonical query — the key under which the
// QueryEngine caches compiled plans and fingerprints subplan results.
// The relation-symbol sort is a total order because queries are
// self-join-free (ConjunctiveQuery::AddAtom rejects repeated relations);
// the stable tie-break merely keeps the spelled order defensively if that
// invariant ever relaxes — permutations of hypothetical same-relation
// atoms would then NOT be unified. Term structure, constants, and
// parameter placeholders are preserved verbatim; the orig<->canon atom
// maps let the engine remap per-atom bindings, which callers express in
// the original body order.
#ifndef DISSODB_QUERY_CANONICALIZE_H_
#define DISSODB_QUERY_CANONICALIZE_H_

#include <vector>

#include "src/common/status.h"
#include "src/query/cq.h"

namespace dissodb {

struct CanonicalizedQuery {
  /// The canonical query: body atoms sorted by relation symbol, variables
  /// renamed v0.. in occurrence order over the sorted body, head name
  /// normalized to "q". Head variables keep their positional order.
  ConjunctiveQuery query;

  /// orig_to_canon[v] = canonical id of original variable v, or -1 for
  /// variables that occur nowhere (they are dropped).
  std::vector<VarId> orig_to_canon;

  /// canon_to_orig[c] = original id of canonical variable c.
  std::vector<VarId> canon_to_orig;

  /// atom_orig_to_canon[i] = position of original body atom i in the
  /// canonical (sorted) body; atom_canon_to_orig is its inverse. Per-atom
  /// bindings arrive in original order and are remapped through this.
  std::vector<int> atom_orig_to_canon;
  std::vector<int> atom_canon_to_orig;

  /// True iff every occurring variable already had its canonical id (the
  /// answer relation needs no column remap).
  bool identity = true;

  /// True iff sorting permuted the body (bindings then need the atom maps).
  bool atoms_reordered = false;
};

/// Canonicalizes `q`. Fails only if `q` references out-of-range variables
/// (impossible for parser-produced queries).
Result<CanonicalizedQuery> CanonicalizeQuery(const ConjunctiveQuery& q);

/// Replaces every parameter placeholder in `q` with its bound constant.
/// `params[i]` is the value of placeholder $i; fails if any placeholder has
/// no value. Returns `q` unchanged when it has no parameters.
Result<ConjunctiveQuery> SubstituteParams(const ConjunctiveQuery& q,
                                          const std::vector<Value>& params);

}  // namespace dissodb

#endif  // DISSODB_QUERY_CANONICALIZE_H_
