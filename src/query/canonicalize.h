// Variable-renaming-invariant canonical form of a conjunctive query.
//
// Two queries that differ only in variable names / interning order (and the
// head predicate's name) are isomorphic: they compute the same answers up to
// a permutation of the answer-tuple columns. CanonicalizeQuery renames the
// variables of a query to v0, v1, ... in first-occurrence order (scanning
// the atoms left to right, in atom order), so every member of an isomorphism
// class maps to one canonical query — the key under which the QueryEngine
// caches compiled plans and fingerprints subplan results. Atom order, term
// structure, constants, and parameter placeholders are preserved verbatim.
#ifndef DISSODB_QUERY_CANONICALIZE_H_
#define DISSODB_QUERY_CANONICALIZE_H_

#include <vector>

#include "src/common/status.h"
#include "src/query/cq.h"

namespace dissodb {

struct CanonicalizedQuery {
  /// The canonical query: same atoms in the same order, variables renamed
  /// v0.. in occurrence order, head name normalized to "q". Head variables
  /// keep their positional order.
  ConjunctiveQuery query;

  /// orig_to_canon[v] = canonical id of original variable v, or -1 for
  /// variables that occur nowhere (they are dropped).
  std::vector<VarId> orig_to_canon;

  /// canon_to_orig[c] = original id of canonical variable c.
  std::vector<VarId> canon_to_orig;

  /// True iff every occurring variable already had its canonical id (the
  /// answer relation needs no column remap).
  bool identity = true;
};

/// Canonicalizes `q`. Fails only if `q` references out-of-range variables
/// (impossible for parser-produced queries).
Result<CanonicalizedQuery> CanonicalizeQuery(const ConjunctiveQuery& q);

/// Replaces every parameter placeholder in `q` with its bound constant.
/// `params[i]` is the value of placeholder $i; fails if any placeholder has
/// no value. Returns `q` unchanged when it has no parameters.
Result<ConjunctiveQuery> SubstituteParams(const ConjunctiveQuery& q,
                                          const std::vector<Value>& params);

}  // namespace dissodb

#endif  // DISSODB_QUERY_CANONICALIZE_H_
