#include "src/query/parser.h"

#include <cctype>
#include <functional>
#include <memory>
#include <unordered_map>
#include <string>

namespace dissodb {

namespace {

class Cursor {
 public:
  explicit Cursor(std::string_view text) : s_(text) {}

  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  bool AtEnd() {
    SkipWs();
    return pos_ >= s_.size();
  }
  char Peek() {
    SkipWs();
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }
  bool Consume(char c) {
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ConsumeStr(std::string_view lit) {
    SkipWs();
    if (s_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }
  /// [A-Za-z_][A-Za-z0-9_]*
  std::string Ident() {
    SkipWs();
    size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isalnum(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '_'))
      ++pos_;
    return std::string(s_.substr(start, pos_ - start));
  }
  /// Signed numeric literal; sets *is_double if it contains '.' or 'e'.
  std::string Number(bool* is_double) {
    SkipWs();
    size_t start = pos_;
    *is_double = false;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E')) {
      if (s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E') *is_double = true;
      ++pos_;
    }
    return std::string(s_.substr(start, pos_ - start));
  }
  Result<std::string> QuotedString() {
    SkipWs();
    if (pos_ >= s_.size() || s_[pos_] != '\'') {
      return Status::InvalidArgument("expected opening quote");
    }
    ++pos_;
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '\'') out += s_[pos_++];
    if (pos_ >= s_.size()) {
      return Status::InvalidArgument("unterminated string literal");
    }
    ++pos_;
    return out;
  }
  size_t pos() const { return pos_; }

 private:
  std::string_view s_;
  size_t pos_ = 0;
};

bool IsVariableName(const std::string& ident) {
  return !ident.empty() && std::islower(static_cast<unsigned char>(ident[0]));
}

using StringInterner = std::function<Result<int64_t>(const std::string&)>;

Result<ConjunctiveQuery> ParseQueryImpl(std::string_view text,
                                        const StringInterner& intern) {
  Cursor c(text);
  ConjunctiveQuery q;

  std::string head_name = c.Ident();
  if (head_name.empty()) {
    return Status::InvalidArgument("expected query head name");
  }
  q.SetName(head_name);
  if (!c.Consume('(')) {
    return Status::InvalidArgument("expected '(' after head name");
  }
  if (!c.Consume(')')) {
    for (;;) {
      std::string v = c.Ident();
      if (v.empty() || !IsVariableName(v)) {
        return Status::InvalidArgument(
            "head arguments must be lowercase variables");
      }
      DISSODB_RETURN_NOT_OK(q.AddHeadVar(q.AddVar(v)));
      if (c.Consume(',')) continue;
      if (c.Consume(')')) break;
      return Status::InvalidArgument("expected ',' or ')' in head");
    }
  }
  if (!c.ConsumeStr(":-")) {
    return Status::InvalidArgument("expected ':-' after head");
  }

  // Body atoms.
  int next_param = 0;
  for (;;) {
    std::string rel = c.Ident();
    if (rel.empty()) {
      return Status::InvalidArgument("expected relation name in body");
    }
    if (!c.Consume('(')) {
      return Status::InvalidArgument("expected '(' after relation " + rel);
    }
    Atom atom;
    atom.relation = rel;
    if (!c.Consume(')')) {
      for (;;) {
        char p = c.Peek();
        if (p == '?') {
          // Anonymous parameter: indexes assign left to right across the
          // whole query ("?, ?" == "$0, $1").
          c.Consume('?');
          atom.terms.push_back(Term::Param(next_param++));
        } else if (p == '$') {
          c.Consume('$');
          bool is_double = false;
          std::string n = c.Number(&is_double);
          if (n.empty() || is_double || n[0] == '-' || n[0] == '+') {
            return Status::InvalidArgument(
                "parameter must be $<non-negative integer>");
          }
          // Bounded parse: a query realistically has a handful of
          // parameters; a huge index would make Bindings::ParamVector
          // allocate index-many slots (and > 9 digits would overflow).
          constexpr int kMaxParamIndex = 255;
          if (n.size() > 3 || std::stoi(n) > kMaxParamIndex) {
            return Status::InvalidArgument(
                "parameter index $" + n + " exceeds the maximum of $" +
                std::to_string(kMaxParamIndex));
          }
          int idx = std::stoi(n);
          atom.terms.push_back(Term::Param(idx));
          if (idx + 1 > next_param) next_param = idx + 1;
        } else if (p == '\'') {
          auto s = c.QuotedString();
          if (!s.ok()) return s.status();
          auto code = intern(*s);
          if (!code.ok()) return code.status();
          atom.terms.push_back(Term::Const(Value::StringCode(*code)));
        } else if (std::isdigit(static_cast<unsigned char>(p)) || p == '-' ||
                   p == '+') {
          bool is_double = false;
          std::string n = c.Number(&is_double);
          if (n.empty()) {
            return Status::InvalidArgument("bad numeric literal");
          }
          atom.terms.push_back(Term::Const(
              is_double ? Value::Double(std::stod(n))
                        : Value::Int64(std::stoll(n))));
        } else {
          std::string ident = c.Ident();
          if (ident.empty()) {
            return Status::InvalidArgument("expected term in atom " + rel);
          }
          if (!IsVariableName(ident)) {
            return Status::InvalidArgument(
                "term '" + ident +
                "' must be a lowercase variable or quoted constant");
          }
          atom.terms.push_back(Term::Var(q.AddVar(ident)));
        }
        if (c.Consume(',')) continue;
        if (c.Consume(')')) break;
        return Status::InvalidArgument("expected ',' or ')' in atom " + rel);
      }
    }
    DISSODB_RETURN_NOT_OK(q.AddAtom(std::move(atom)));
    if (c.Consume(',')) continue;
    break;
  }
  c.Consume('.');
  if (!c.AtEnd()) {
    return Status::InvalidArgument("trailing characters after query");
  }

  // Every head variable must occur in some atom (safe-range requirement).
  VarMask body = q.AllVarsMask();
  for (VarId h : q.head_vars()) {
    if (!MaskContains(body, h)) {
      return Status::InvalidArgument("head variable '" + q.var_name(h) +
                                     "' does not occur in the body");
    }
  }
  return q;
}

}  // namespace

Result<ConjunctiveQuery> ParseQuery(std::string_view text, StringPool* pool) {
  return ParseQueryImpl(text, [pool](const std::string& s) -> Result<int64_t> {
    if (pool == nullptr) {
      return Status::InvalidArgument("string constant requires a StringPool");
    }
    return pool->Intern(s);
  });
}

Result<ConjunctiveQuery> ParseQueryReadOnly(std::string_view text,
                                            const StringPool& pool) {
  // Unknown strings get distinct negative codes: they equal nothing in the
  // database (real codes are >= 0) and stay distinct from each other.
  auto unknown = std::make_shared<std::unordered_map<std::string, int64_t>>();
  return ParseQueryImpl(
      text, [&pool, unknown](const std::string& s) -> Result<int64_t> {
        int64_t code = pool.Find(s);
        if (code >= 0) return code;
        auto [it, inserted] = unknown->try_emplace(
            s, -2 - static_cast<int64_t>(unknown->size()));
        return it->second;
      });
}

}  // namespace dissodb
