// Self-join-free conjunctive queries (the paper's query class).
//
// A query  q(y) :- R1(x1), ..., Rm(xm)  is a list of atoms over distinct
// relation symbols plus a tuple of head variables. Variables are interned
// per-query as small integers so sets of variables are 64-bit masks.
#ifndef DISSODB_QUERY_CQ_H_
#define DISSODB_QUERY_CQ_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/value.h"

namespace dissodb {

using VarId = int;
/// Bitmask over the (at most 64) variables of one query.
using VarMask = uint64_t;

inline VarMask MaskOf(VarId v) { return VarMask{1} << v; }
inline bool MaskContains(VarMask m, VarId v) { return (m >> v) & 1; }
inline int MaskCount(VarMask m) { return __builtin_popcountll(m); }

/// Expands a mask into a sorted vector of VarIds.
std::vector<VarId> MaskToVars(VarMask m);

/// One argument of an atom: a variable, a constant, or a parameter
/// placeholder ("$k" / "?" in datalog syntax) awaiting a constant from a
/// Bindings object at execution time. Parameterized queries can be
/// prepared/planned (a placeholder is structurally a constant) but never
/// evaluated directly — QueryEngine substitutes bound values first.
struct Term {
  bool is_var;
  VarId var = -1;   // valid iff is_var
  Value constant;   // valid iff !is_var && param < 0
  int param = -1;   // parameter index; >= 0 iff this is a placeholder

  bool IsParam() const { return !is_var && param >= 0; }

  static Term Var(VarId v) { return Term{true, v, Value(), -1}; }
  static Term Const(Value c) { return Term{false, -1, c, -1}; }
  static Term Param(int idx) { return Term{false, -1, Value(), idx}; }
};

/// \brief One atom R(t1,...,tk). `relation` is the relation symbol; the
/// self-join-free restriction means symbols are unique within a query.
struct Atom {
  std::string relation;
  std::vector<Term> terms;

  int arity() const { return static_cast<int>(terms.size()); }
};

/// \brief A self-join-free conjunctive query.
class ConjunctiveQuery {
 public:
  /// Adds a variable named `name`; returns its id. Fails (assert) beyond 64.
  VarId AddVar(const std::string& name);
  /// Finds a variable by name, or -1.
  VarId FindVar(const std::string& name) const;

  void SetName(std::string name) { name_ = std::move(name); }
  const std::string& name() const { return name_; }

  Status AddHeadVar(VarId v);
  Status AddAtom(Atom atom);

  int num_vars() const { return static_cast<int>(var_names_.size()); }
  const std::string& var_name(VarId v) const { return var_names_[v]; }
  const std::vector<VarId>& head_vars() const { return head_vars_; }
  const std::vector<Atom>& atoms() const { return atoms_; }
  const Atom& atom(int i) const { return atoms_[i]; }
  int num_atoms() const { return static_cast<int>(atoms_.size()); }
  bool IsBoolean() const { return head_vars_.empty(); }

  /// Number of parameter placeholders (1 + max param index over all atoms);
  /// 0 for ordinary queries.
  int num_params() const { return num_params_; }

  /// Mask of the head variables.
  VarMask HeadMask() const;
  /// Mask of the distinct variables of atom i.
  VarMask AtomMask(int i) const;
  /// Mask of all variables appearing in some atom.
  VarMask AllVarsMask() const;
  /// Existential variables: AllVars minus head.
  VarMask EVarMask() const { return AllVarsMask() & ~HeadMask(); }

  /// Index of the atom using relation `name`, or -1.
  int AtomIndexForRelation(const std::string& name) const;

  /// Renders "q(z) :- R(z,x), S(x,y)" (string constants print as 'str#k'
  /// unless a pool-aware printer is used).
  std::string ToString() const;

 private:
  std::string name_ = "q";
  std::vector<std::string> var_names_;
  std::vector<VarId> head_vars_;
  std::vector<Atom> atoms_;
  int num_params_ = 0;
};

}  // namespace dissodb

#endif  // DISSODB_QUERY_CQ_H_
