#include "src/query/cuts.h"

#include <algorithm>
#include <functional>

namespace dissodb {

namespace {

constexpr int kMaxEnumVars = 24;

/// Number of components after removing `cut`, counting either all components
/// or only those containing a probabilistic atom.
int ComponentCount(std::span<const WorkAtom> atoms, VarMask evars, VarMask cut,
                   bool probabilistic_only) {
  auto comps = ConnectedComponents(atoms, evars & ~cut);
  if (!probabilistic_only) return static_cast<int>(comps.size());
  int n = 0;
  for (const auto& comp : comps) {
    for (int i : comp) {
      if (atoms[i].probabilistic) {
        ++n;
        break;
      }
    }
  }
  return n;
}

/// Enumerates subsets of `evars` in order of increasing popcount, calling
/// `visit(mask)`; if visit returns true the subset is recorded and all its
/// supersets are skipped (when `skip_supersets`).
Result<std::vector<VarMask>> EnumerateMinimal(
    VarMask evars, bool skip_supersets,
    const std::function<bool(VarMask)>& is_member) {
  std::vector<VarId> vars = MaskToVars(evars);
  const int n = static_cast<int>(vars.size());
  if (n > kMaxEnumVars) {
    return Status::OutOfRange("cut enumeration limited to 24 variables, got " +
                              std::to_string(n));
  }
  std::vector<VarMask> found;
  // Enumerate by subset size using the combination-walk trick on local bits,
  // mapping local bit i -> variable vars[i].
  for (int size = 1; size <= n; ++size) {
    // Gosper's hack over local masks of `size` bits out of n.
    uint64_t local = (uint64_t{1} << size) - 1;
    const uint64_t limit = uint64_t{1} << n;
    while (local < limit) {
      VarMask mask = 0;
      uint64_t bits = local;
      while (bits) {
        int b = __builtin_ctzll(bits);
        mask |= MaskOf(vars[b]);
        bits &= bits - 1;
      }
      bool skip = false;
      if (skip_supersets) {
        for (VarMask f : found) {
          if ((f & mask) == f) {
            skip = true;
            break;
          }
        }
      }
      if (!skip && is_member(mask)) found.push_back(mask);
      // Next combination with the same popcount (Gosper).
      uint64_t c = local & (0 - local);
      uint64_t r = local + c;
      if (c == 0) break;
      local = (((r ^ local) >> 2) / c) | r;
    }
  }
  return found;
}

}  // namespace

Result<std::vector<VarMask>> EnumerateCutSets(std::span<const WorkAtom> atoms,
                                              VarMask evars) {
  return EnumerateMinimal(evars, /*skip_supersets=*/false, [&](VarMask cut) {
    return ComponentCount(atoms, evars, cut, /*probabilistic_only=*/false) >= 2;
  });
}

Result<std::vector<VarMask>> MinCuts(std::span<const WorkAtom> atoms,
                                     VarMask evars) {
  return EnumerateMinimal(evars, /*skip_supersets=*/true, [&](VarMask cut) {
    return ComponentCount(atoms, evars, cut, /*probabilistic_only=*/false) >= 2;
  });
}

Result<std::vector<VarMask>> MinPCuts(std::span<const WorkAtom> atoms,
                                      VarMask evars) {
  return EnumerateMinimal(evars, /*skip_supersets=*/true, [&](VarMask cut) {
    return ComponentCount(atoms, evars, cut, /*probabilistic_only=*/true) >= 2;
  });
}

}  // namespace dissodb
