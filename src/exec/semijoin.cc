#include "src/exec/semijoin.h"

#include <unordered_set>

#include "src/common/hash.h"
#include "src/exec/operators.h"
#include "src/exec/rel.h"

namespace dissodb {

namespace {

/// Positions (column indices) of the variables `vars` in atom `atom_idx`,
/// using the first occurrence of each variable.
std::vector<int> VarPositions(const ConjunctiveQuery& q, int atom_idx,
                              const std::vector<VarId>& vars) {
  const Atom& a = q.atom(atom_idx);
  std::vector<int> pos;
  for (VarId v : vars) {
    for (int p = 0; p < a.arity(); ++p) {
      if (a.terms[p].is_var && a.terms[p].var == v) {
        pos.push_back(p);
        break;
      }
    }
  }
  return pos;
}

}  // namespace

Result<std::vector<Table>> SemiJoinReduce(
    const Database& db, const ConjunctiveQuery& q,
    const std::unordered_map<int, const Table*>& overrides,
    SemiJoinStats* stats, int max_passes) {
  const int m = q.num_atoms();
  std::vector<Table> tables;
  tables.reserve(m);
  for (int i = 0; i < m; ++i) {
    const Table* src = nullptr;
    auto it = overrides.find(i);
    if (it != overrides.end()) {
      src = it->second;
    } else {
      auto t = db.GetTable(q.atom(i).relation);
      if (!t.ok()) return t.status();
      src = *t;
    }
    if (src->arity() != q.atom(i).arity()) {
      return Status::InvalidArgument("atom " + q.atom(i).relation +
                                     " arity mismatch");
    }
    // Start from the constant/repeated-variable filtered table so that
    // selections also prune join partners.
    const Atom& a = q.atom(i);
    tables.push_back(src->Filter([&](std::span<const Value> row) {
      std::unordered_map<VarId, Value> bound;
      for (int p = 0; p < a.arity(); ++p) {
        const Term& t = a.terms[p];
        if (!t.is_var) {
          if (row[p] != t.constant) return false;
        } else {
          auto [bit, inserted] = bound.try_emplace(t.var, row[p]);
          if (!inserted && bit->second != row[p]) return false;
        }
      }
      return true;
    }));
    if (stats) stats->rows_before.push_back(tables.back().NumRows());
  }

  // Shared-variable pairs.
  struct Pair {
    int a, b;
    std::vector<VarId> shared;
  };
  std::vector<Pair> pairs;
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < m; ++j) {
      if (i == j) continue;
      // Head variables participate in joins too (per-answer grouping), so
      // reduce on every shared variable.
      VarMask shared = q.AtomMask(i) & q.AtomMask(j);
      if (shared) pairs.push_back(Pair{i, j, MaskToVars(shared)});
    }
  }

  int pass = 0;
  bool changed = true;
  while (changed && pass < max_passes) {
    changed = false;
    ++pass;
    for (const auto& pr : pairs) {
      std::vector<int> pos_a = VarPositions(q, pr.a, pr.shared);
      std::vector<int> pos_b = VarPositions(q, pr.b, pr.shared);
      // Key set from table b.
      std::unordered_set<size_t> keys;
      keys.reserve(tables[pr.b].NumRows() * 2);
      for (size_t r = 0; r < tables[pr.b].NumRows(); ++r) {
        keys.insert(HashRowKey(tables[pr.b].Row(r), pos_b));
      }
      size_t before = tables[pr.a].NumRows();
      tables[pr.a] = tables[pr.a].Filter([&](std::span<const Value> row) {
        return keys.count(HashRowKey(row, pos_a)) > 0;
      });
      if (tables[pr.a].NumRows() != before) changed = true;
    }
  }
  if (stats) {
    stats->passes = pass;
    for (int i = 0; i < m; ++i) stats->rows_after.push_back(tables[i].NumRows());
  }
  return tables;
}

}  // namespace dissodb
