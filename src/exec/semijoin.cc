#include "src/exec/semijoin.h"

#include <numeric>

#include "src/common/hash.h"
#include "src/exec/hash_table.h"
#include "src/exec/operators.h"
#include "src/exec/rel.h"

namespace dissodb {

namespace {

/// Positions (column indices) of the variables `vars` in atom `atom_idx`,
/// using the first occurrence of each variable.
std::vector<int> VarPositions(const ConjunctiveQuery& q, int atom_idx,
                              const std::vector<VarId>& vars) {
  const Atom& a = q.atom(atom_idx);
  std::vector<int> pos;
  for (VarId v : vars) {
    for (int p = 0; p < a.arity(); ++p) {
      if (a.terms[p].is_var && a.terms[p].var == v) {
        pos.push_back(p);
        break;
      }
    }
  }
  return pos;
}

/// Applies the atom's constant selections and repeated-variable equalities
/// column-at-a-time (same BindAtom/ApplyAtomCheck semantics as ScanAtom);
/// atoms without such constraints share the source columns zero-copy.
Table FilterAtomTable(const Table& src, const Atom& a) {
  AtomBinding binding = BindAtom(a);
  if (binding.checks.empty()) return src;  // shallow copy: columns shared

  std::vector<uint32_t> sel(src.NumRows());
  std::iota(sel.begin(), sel.end(), 0u);
  for (const auto& c : binding.checks) ApplyAtomCheck(src, c, &sel);
  return src.Select(sel);
}

/// Resolves each atom's source table (override first, then `get_table`) and
/// applies the atom-local filters; shared by both public overloads.
template <typename GetTable>
Result<std::vector<Table>> ResolveAndFilter(
    const GetTable& get_table, const ConjunctiveQuery& q,
    const std::unordered_map<int, const Table*>& overrides,
    SemiJoinStats* stats) {
  const int m = q.num_atoms();
  std::vector<Table> tables;
  tables.reserve(m);
  for (int i = 0; i < m; ++i) {
    const Table* src = nullptr;
    auto it = overrides.find(i);
    if (it != overrides.end()) {
      src = it->second;
    } else {
      auto t = get_table(q.atom(i).relation);
      if (!t.ok()) return t.status();
      src = *t;
    }
    if (src->arity() != q.atom(i).arity()) {
      return Status::InvalidArgument("atom " + q.atom(i).relation +
                                     " arity mismatch");
    }
    // Start from the constant/repeated-variable filtered table so that
    // selections also prune join partners.
    tables.push_back(FilterAtomTable(*src, q.atom(i)));
    if (stats) stats->rows_before.push_back(tables.back().NumRows());
  }
  return tables;
}

Result<std::vector<Table>> ReduceResolved(std::vector<Table> tables,
                                          const ConjunctiveQuery& q,
                                          SemiJoinStats* stats,
                                          int max_passes) {
  const int m = q.num_atoms();

  // Shared-variable pairs.
  struct Pair {
    int a, b;
    std::vector<int> pos_a, pos_b;
  };
  std::vector<Pair> pairs;
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < m; ++j) {
      if (i == j) continue;
      // Head variables participate in joins too (per-answer grouping), so
      // reduce on every shared variable.
      VarMask shared = q.AtomMask(i) & q.AtomMask(j);
      if (!shared) continue;
      std::vector<VarId> vars = MaskToVars(shared);
      pairs.push_back(Pair{i, j, VarPositions(q, i, vars),
                           VarPositions(q, j, vars)});
    }
  }

  int pass = 0;
  bool changed = true;
  while (changed && pass < max_passes) {
    changed = false;
    ++pass;
    for (const auto& pr : pairs) {
      const Table& ta = tables[pr.a];
      const Table& tb = tables[pr.b];
      // Index b's key values (batch hash + chain; real key comparison on
      // probe avoids hash-collision survivors).
      const size_t bn = tb.NumRows();
      std::vector<uint64_t> bh = HashKeyColumns(tb, pr.pos_b);
      FlatHashIndex index(bn);
      std::vector<uint32_t> next(bn);
      for (size_t r = 0; r < bn; ++r) {
        uint32_t& head = index.HeadFor(bh[r]);
        next[r] = head;
        head = static_cast<uint32_t>(r);
      }
      std::vector<uint64_t> ah = HashKeyColumns(ta, pr.pos_a);
      std::vector<uint32_t> sel;
      sel.reserve(ta.NumRows());
      for (size_t r = 0; r < ta.NumRows(); ++r) {
        for (uint32_t br = index.Find(ah[r]); br != FlatHashIndex::kNil;
             br = next[br]) {
          if (KeysEqual(ta, r, pr.pos_a, tb, br, pr.pos_b)) {
            sel.push_back(static_cast<uint32_t>(r));
            break;
          }
        }
      }
      if (sel.size() != ta.NumRows()) {
        tables[pr.a] = ta.Select(sel);
        changed = true;
      }
    }
  }
  if (stats) {
    stats->passes = pass;
    for (int i = 0; i < m; ++i) stats->rows_after.push_back(tables[i].NumRows());
  }
  return tables;
}

}  // namespace

Result<std::vector<Table>> SemiJoinReduce(
    const Snapshot& snap, const ConjunctiveQuery& q,
    const std::unordered_map<int, const Table*>& overrides,
    SemiJoinStats* stats, int max_passes) {
  auto tables = ResolveAndFilter(
      [&](const std::string& name) { return snap.GetTable(name); }, q,
      overrides, stats);
  if (!tables.ok()) return tables;
  return ReduceResolved(std::move(*tables), q, stats, max_passes);
}

Result<std::vector<Table>> SemiJoinReduce(
    const Database& db, const ConjunctiveQuery& q,
    const std::unordered_map<int, const Table*>& overrides,
    SemiJoinStats* stats, int max_passes) {
  auto tables = ResolveAndFilter(
      [&](const std::string& name) { return db.GetTable(name); }, q,
      overrides, stats);
  if (!tables.ok()) return tables;
  return ReduceResolved(std::move(*tables), q, stats, max_passes);
}

}  // namespace dissodb
