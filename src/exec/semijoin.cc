#include "src/exec/semijoin.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>
#include <memory>
#include <numeric>

#include "src/common/hash.h"
#include "src/exec/bloom.h"
#include "src/exec/hash_table.h"
#include "src/exec/operators.h"
#include "src/exec/rel.h"

namespace dissodb {

namespace {

/// Build-side row count at which a reduction pair gets a blocked Bloom
/// pre-filter in front of the hash-index probes. Below it the index is
/// cache-resident and the filter is pure overhead.
std::atomic<size_t>& BloomMinBuildRows() {
  static std::atomic<size_t> threshold{[] {
    if (std::getenv("DISSODB_DISABLE_BLOOM") != nullptr) {
      return std::numeric_limits<size_t>::max();
    }
    if (const char* s = std::getenv("DISSODB_BLOOM_MIN_ROWS")) {
      const long long v = std::atoll(s);
      if (v >= 0) return static_cast<size_t>(v);
    }
    return size_t{4096};
  }()};
  return threshold;
}

/// Positions (column indices) of the variables `vars` in atom `atom_idx`,
/// using the first occurrence of each variable.
std::vector<int> VarPositions(const ConjunctiveQuery& q, int atom_idx,
                              const std::vector<VarId>& vars) {
  const Atom& a = q.atom(atom_idx);
  std::vector<int> pos;
  for (VarId v : vars) {
    for (int p = 0; p < a.arity(); ++p) {
      if (a.terms[p].is_var && a.terms[p].var == v) {
        pos.push_back(p);
        break;
      }
    }
  }
  return pos;
}

/// Applies the atom's constant selections and repeated-variable equalities
/// column-at-a-time (same BindAtom/ApplyAtomCheck semantics as ScanAtom);
/// atoms without such constraints share the source columns zero-copy.
Table FilterAtomTable(const Table& src, const Atom& a) {
  AtomBinding binding = BindAtom(a);
  if (binding.checks.empty()) return src;  // shallow copy: columns shared

  std::vector<uint32_t> sel(src.NumRows());
  std::iota(sel.begin(), sel.end(), 0u);
  for (const auto& c : binding.checks) ApplyAtomCheck(src, c, &sel);
  return src.Select(sel);
}

/// Resolves each atom's source table (override first, then `get_table`) and
/// applies the atom-local filters; shared by both public overloads.
template <typename GetTable>
Result<std::vector<Table>> ResolveAndFilter(
    const GetTable& get_table, const ConjunctiveQuery& q,
    const std::unordered_map<int, const Table*>& overrides,
    SemiJoinStats* stats) {
  const int m = q.num_atoms();
  std::vector<Table> tables;
  tables.reserve(m);
  for (int i = 0; i < m; ++i) {
    const Table* src = nullptr;
    auto it = overrides.find(i);
    if (it != overrides.end()) {
      src = it->second;
    } else {
      auto t = get_table(q.atom(i).relation);
      if (!t.ok()) return t.status();
      src = *t;
    }
    if (src->arity() != q.atom(i).arity()) {
      return Status::InvalidArgument("atom " + q.atom(i).relation +
                                     " arity mismatch");
    }
    // Start from the constant/repeated-variable filtered table so that
    // selections also prune join partners.
    tables.push_back(FilterAtomTable(*src, q.atom(i)));
    if (stats) stats->rows_before.push_back(tables.back().NumRows());
  }
  return tables;
}

Result<std::vector<Table>> ReduceResolved(std::vector<Table> tables,
                                          const ConjunctiveQuery& q,
                                          SemiJoinStats* stats,
                                          int max_passes) {
  const int m = q.num_atoms();

  // Shared-variable pairs.
  struct Pair {
    int a, b;
    std::vector<int> pos_a, pos_b;
  };
  std::vector<Pair> pairs;
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < m; ++j) {
      if (i == j) continue;
      // Head variables participate in joins too (per-answer grouping), so
      // reduce on every shared variable.
      VarMask shared = q.AtomMask(i) & q.AtomMask(j);
      if (!shared) continue;
      std::vector<VarId> vars = MaskToVars(shared);
      pairs.push_back(Pair{i, j, VarPositions(q, i, vars),
                           VarPositions(q, j, vars)});
    }
  }

  int pass = 0;
  bool changed = true;
  while (changed && pass < max_passes) {
    changed = false;
    ++pass;
    for (const auto& pr : pairs) {
      const Table& ta = tables[pr.a];
      const Table& tb = tables[pr.b];
      // Index b's key values (batch hash + chain; real key comparison on
      // probe avoids hash-collision survivors).
      const size_t bn = tb.NumRows();
      HashVector bh = HashKeyColumns(tb, pr.pos_b);
      FlatHashIndex index(bn);
      std::vector<uint32_t> next(bn);
      for (size_t r = 0; r < bn; ++r) {
        uint32_t& head = index.HeadFor(bh[r]);
        next[r] = head;
        head = static_cast<uint32_t>(r);
      }
      // Blocked Bloom pre-filter over the build-side hashes: a probe with
      // no possible partner pays one filter cache line instead of an index
      // walk. No false negatives, so the surviving selection is identical
      // with or without it.
      const size_t bloom_min = BloomMinBuildRows().load(std::memory_order_relaxed);
      std::unique_ptr<BlockedBloomFilter> bloom;
      if (bn >= bloom_min) {
        bloom = std::make_unique<BlockedBloomFilter>(bn);
        for (uint64_t h : bh) bloom->Add(h);
        if (stats) ++stats->bloom_filters_built;
      }
      HashVector ah = HashKeyColumns(ta, pr.pos_a);
      const size_t an = ta.NumRows();
      std::vector<uint32_t> sel;
      sel.reserve(an);
      // Probe in blocks: Bloom-reject first, prefetch the survivors' index
      // slots, then walk the chains — the slot misses overlap across the
      // block. Survivors keep their ascending order, so `sel` is identical
      // to the plain loop's.
      constexpr size_t kProbeBlock = 64;
      uint32_t survivors[kProbeBlock];
      size_t bloom_skipped = 0;
      for (size_t lo = 0; lo < an; lo += kProbeBlock) {
        const size_t hi = std::min(lo + kProbeBlock, an);
        size_t nsurv = 0;
        for (size_t r = lo; r < hi; ++r) {
          if (bloom != nullptr && !bloom->MayContain(ah[r])) {
            ++bloom_skipped;
            continue;
          }
          index.PrefetchSlot(ah[r]);
          survivors[nsurv++] = static_cast<uint32_t>(r);
        }
        for (size_t s = 0; s < nsurv; ++s) {
          const uint32_t r = survivors[s];
          for (uint32_t br = index.Find(ah[r]); br != FlatHashIndex::kNil;
               br = next[br]) {
            if (KeysEqual(ta, r, pr.pos_a, tb, br, pr.pos_b)) {
              sel.push_back(r);
              break;
            }
          }
        }
      }
      if (stats) stats->bloom_probes_skipped += bloom_skipped;
      if (sel.size() != ta.NumRows()) {
        tables[pr.a] = ta.Select(sel);
        changed = true;
      }
    }
  }
  if (stats) {
    stats->passes = pass;
    for (int i = 0; i < m; ++i) stats->rows_after.push_back(tables[i].NumRows());
  }
  return tables;
}

}  // namespace

void SetSemiJoinBloomMinRowsForTesting(size_t rows) {
  BloomMinBuildRows().store(rows, std::memory_order_relaxed);
}

Result<std::vector<Table>> SemiJoinReduce(
    const Snapshot& snap, const ConjunctiveQuery& q,
    const std::unordered_map<int, const Table*>& overrides,
    SemiJoinStats* stats, int max_passes) {
  auto tables = ResolveAndFilter(
      [&](const std::string& name) { return snap.GetTable(name); }, q,
      overrides, stats);
  if (!tables.ok()) return tables;
  return ReduceResolved(std::move(*tables), q, stats, max_passes);
}

Result<std::vector<Table>> SemiJoinReduce(
    const Database& db, const ConjunctiveQuery& q,
    const std::unordered_map<int, const Table*>& overrides,
    SemiJoinStats* stats, int max_passes) {
  auto tables = ResolveAndFilter(
      [&](const std::string& name) { return db.GetTable(name); }, q,
      overrides, stats);
  if (!tables.ok()) return tables;
  return ReduceResolved(std::move(*tables), q, stats, max_passes);
}

}  // namespace dissodb
