// Cache-line-blocked Bloom filter for semi-join probe pre-filtering.
//
// Each key maps to one 64-byte block (eight uint64 words) chosen by the
// high hash bits, then sets/tests two bits inside that block derived from
// the low bits — so a negative probe costs exactly one cache line, versus
// the (much larger) flat hash index line(s) it short-circuits. Sized at
// ~10 bits per key (k=2 in-block probes), false-positive rate is a few
// percent, which only costs a redundant index probe; false negatives are
// impossible, so consulting the filter can never change a result.
//
// The filter is built from the same 64-bit key hashes the flat index
// chains on (HashKeyColumns output), which Mix64-finalizes every element —
// block and bit choices just slice decorrelated bits off that hash.
#ifndef DISSODB_EXEC_BLOOM_H_
#define DISSODB_EXEC_BLOOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dissodb {

class BlockedBloomFilter {
 public:
  /// Sizes the filter for `n` keys at ~10 bits/key, rounded up to a
  /// power-of-two number of 512-bit blocks (minimum 2).
  explicit BlockedBloomFilter(size_t n) {
    size_t blocks = 2;
    while (blocks * 512 < n * 10) blocks <<= 1;
    block_mask_ = blocks - 1;
    words_.assign(blocks * 8, 0);
  }

  void Add(uint64_t h) {
    uint64_t* block = BlockFor(h);
    block[Word1(h)] |= Bit1(h);
    block[Word2(h)] |= Bit2(h);
  }

  bool MayContain(uint64_t h) const {
    const uint64_t* block = BlockFor(h);
    return (block[Word1(h)] & Bit1(h)) != 0 &&
           (block[Word2(h)] & Bit2(h)) != 0;
  }

  /// Fetches the key's block into cache ahead of MayContain; the filter
  /// usually fits in L2, so a short lookahead suffices.
  void Prefetch(uint64_t h) const { __builtin_prefetch(BlockFor(h), 0, 1); }

  size_t num_blocks() const { return block_mask_ + 1; }

 private:
  // Block from the high 32 bits; word/bit indices from disjoint slices of
  // the low bits (FlatHashIndex buckets on the low bits too, but a Mix64-
  // finalized hash leaves no exploitable correlation between the two).
  const uint64_t* BlockFor(uint64_t h) const {
    return words_.data() + (((h >> 32) & block_mask_) << 3);
  }
  uint64_t* BlockFor(uint64_t h) {
    return words_.data() + (((h >> 32) & block_mask_) << 3);
  }
  static size_t Word1(uint64_t h) { return (h >> 6) & 7; }
  static size_t Word2(uint64_t h) { return (h >> 15) & 7; }
  static uint64_t Bit1(uint64_t h) { return uint64_t{1} << (h & 63); }
  static uint64_t Bit2(uint64_t h) { return uint64_t{1} << ((h >> 9) & 63); }

  uint64_t block_mask_;
  std::vector<uint64_t> words_;
};

}  // namespace dissodb

#endif  // DISSODB_EXEC_BLOOM_H_
