#include "src/exec/ranking.h"

#include <algorithm>
#include <map>

#include "src/common/string_util.h"

namespace dissodb {

std::vector<RankedAnswer> RankAnswers(const Rel& rel) {
  std::vector<RankedAnswer> out;
  out.reserve(rel.NumRows());
  for (size_t r = 0; r < rel.NumRows(); ++r) {
    std::vector<Value> tuple(rel.arity());
    for (int c = 0; c < rel.arity(); ++c) tuple[c] = rel.At(r, c);
    out.push_back(RankedAnswer{std::move(tuple), rel.Score(r)});
  }
  std::sort(out.begin(), out.end(),
            [](const RankedAnswer& a, const RankedAnswer& b) {
              if (a.score != b.score) return a.score > b.score;
              return std::lexicographical_compare(
                  a.tuple.begin(), a.tuple.end(), b.tuple.begin(),
                  b.tuple.end());
            });
  return out;
}

std::vector<double> AlignScores(const std::vector<RankedAnswer>& reference,
                                const std::vector<RankedAnswer>& scores,
                                double missing_value) {
  std::map<std::vector<Value>, double> index;
  for (const auto& a : scores) index[a.tuple] = a.score;
  std::vector<double> out;
  out.reserve(reference.size());
  for (const auto& a : reference) {
    auto it = index.find(a.tuple);
    out.push_back(it == index.end() ? missing_value : it->second);
  }
  return out;
}

std::string RankingToString(const std::vector<RankedAnswer>& ranking,
                            const Database& db, size_t max_rows) {
  std::string out;
  for (size_t i = 0; i < ranking.size() && i < max_rows; ++i) {
    out += StrFormat("%3zu. (", i + 1);
    for (size_t c = 0; c < ranking[i].tuple.size(); ++c) {
      if (c > 0) out += ", ";
      const Value& v = ranking[i].tuple[c];
      out += v.type() == ValueType::kString ? db.strings().Get(v.AsStringCode())
                                            : v.ToString();
    }
    out += StrFormat(")  %.6f\n", ranking[i].score);
  }
  return out;
}

}  // namespace dissodb
