// Plan evaluation with extensional (score) semantics.
//
// The evaluator caches results by DAG node identity, so hash-consed shared
// subplans (Opt. 2, the paper's views) are computed exactly once. A second,
// optional cache level — the serving layer's shared ResultCache — extends
// the same sharing across queries: nodes whose fingerprints match a
// previously evaluated (and still version-current) subplan are served from
// the cache instead of recomputed.
#ifndef DISSODB_EXEC_EVALUATOR_H_
#define DISSODB_EXEC_EVALUATOR_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/exec/operators.h"
#include "src/exec/rel.h"
#include "src/obs/trace.h"
#include "src/plan/plan.h"
#include "src/query/cq.h"
#include "src/storage/database.h"
#include "src/storage/snapshot.h"

namespace dissodb {

struct DeltaRecipe;  // src/serve/delta_maintenance.h
class ResultCache;   // src/serve/result_cache.h
class Scheduler;     // src/serve/scheduler.h

/// One per-atom table override. An empty `tag` means the table's content is
/// not identified by anything stable, so subplans touching the atom must
/// not be exchanged with the shared result cache. A non-empty tag asserts:
/// two executions presenting the same tag for the same atom bind *identical
/// table contents* — which makes bound subplans fingerprintable (the tag
/// joins the subplan fingerprint) and restores cross-query sharing, e.g.
/// for Opt. 3 semi-join-reduced inputs tagged by (query, db version).
struct AtomOverride {
  const Table* table = nullptr;
  std::string tag;
};

/// Per-atom overrides in deterministic (ascending atom index) order.
using AtomOverrides = std::map<int, AtomOverride>;

/// \brief Evaluates plans for one query over one pinned snapshot (or, for
/// legacy single-threaded callers, the live head of a database).
class PlanEvaluator {
 public:
  /// Evaluates against the pinned snapshot: every scan of every plan node
  /// reads the same immutable state, so results are bit-identical no
  /// matter how many commits run concurrently. The evaluator keeps its own
  /// (cheap) Snapshot handle, so the caller's copy may go away.
  PlanEvaluator(Snapshot snap, const ConjunctiveQuery& q)
      : snap_(std::move(snap)), q_(q) {}

  /// Legacy shim: reads the live head of `db` (no snapshot-isolation
  /// guarantees under concurrent writers). `db` must outlive the
  /// evaluator.
  PlanEvaluator(const Database& db, const ConjunctiveQuery& q)
      : live_db_(&db), q_(q) {}

  /// Overrides the table bound to `atom_idx` (per-query selections or
  /// semi-join-reduced inputs). The pointer must outlive the evaluator.
  /// With an empty `tag`, subplans touching the atom are never exchanged
  /// with the shared result cache; a non-empty tag makes them shareable
  /// under fingerprint+tag (see AtomOverride).
  void SetAtomTable(int atom_idx, const Table* table, std::string tag = {}) {
    overrides_[atom_idx] = AtomOverride{table, std::move(tag)};
    if (atom_idx >= 0 && atom_idx < 64) {
      const uint64_t bit = uint64_t{1} << atom_idx;
      override_atoms_ |= bit;
      if (overrides_[atom_idx].tag.empty()) {
        untagged_override_atoms_ |= bit;
      } else {
        untagged_override_atoms_ &= ~bit;
      }
    }
  }

  /// Attaches the workload-shared result cache. `db_version` must be the
  /// version of the snapshot (Snapshot::version()) the evaluation runs
  /// against; entries are stored and matched under that stamp, so a held
  /// snapshot keeps hitting its own entries across later commits.
  void SetResultCache(ResultCache* cache, uint64_t db_version) {
    result_cache_ = cache;
    db_version_ = db_version;
  }

  /// Attaches a scheduler: the vectorized operators fan large row ranges
  /// out as morsels. Results are bit-identical with or without it.
  void SetScheduler(Scheduler* scheduler) { scheduler_ = scheduler; }

  /// When enabled (and a result cache is attached), entries this evaluator
  /// publishes for maintainable root shapes — project(scan),
  /// project(join(scan, scan)), join(scan, scan), snapshot-bound, no
  /// overridden atoms, non-boolean projections — carry a DeltaRecipe so
  /// the serving layer can roll them forward across append-only commits
  /// (see src/serve/delta_maintenance.h).
  void EnableDeltaRecipes(bool on) { delta_recipes_ = on; }

  /// Attaches a trace context: every Evaluate call opens one span (named
  /// by node kind, scans by relation) under `parent`, annotated with row
  /// counts, chunk-pruning deltas, cache interactions, and the SIMD path.
  /// Null (the default) keeps evaluation on the untraced fast path — the
  /// only cost is one branch per node.
  void SetTrace(obs::TraceContext* trace, uint32_t parent) {
    trace_ = trace;
    trace_parent_ = parent;
  }

  /// Evaluates `plan`; results of shared nodes are cached by node identity
  /// for the lifetime of the evaluator.
  Result<std::shared_ptr<const Rel>> Evaluate(const PlanPtr& plan);

  /// Number of plan-node evaluations actually executed (cache misses).
  size_t nodes_evaluated() const { return nodes_evaluated_; }

  /// Nodes served from the shared result cache instead of evaluated —
  /// plain hits plus results obtained by waiting on a concurrent
  /// evaluation of the same fingerprint (in-flight dedup).
  size_t result_cache_hits() const { return result_cache_hits_; }

  /// Chunked-scan counters accumulated over every ScanAtom this evaluator
  /// executed (zone-map pruning, chunk morsels).
  const ChunkedScanStats& scan_stats() const { return scan_stats_; }

 private:
  /// Result-cache key for `plan`: base fingerprint plus the tags of every
  /// overridden atom the subplan touches.
  std::string SharedCacheKey(const PlanPtr& plan);

  /// Evaluate() body past the node-identity memo: result-cache exchange
  /// plus the operator switch. `span` is the node's open trace span (0
  /// when untraced).
  Result<std::shared_ptr<const Rel>> EvaluateUncached(const PlanPtr& plan,
                                                      uint32_t span);

  /// Span label for `plan` ("scan R", "join", "project", "min").
  std::string NodeLabel(const PlanPtr& plan) const;

  /// Builds the maintenance recipe for `plan` (a maintainable shape whose
  /// result `rel` this evaluator just computed): captures a copy of the
  /// executed query, the scan-input sizes from the node-identity memo,
  /// and — for projections — the raw per-group accumulators `acc`.
  /// Returns null when the node turns out non-maintainable (boolean
  /// projection, missing memo entries).
  std::shared_ptr<const DeltaRecipe> BuildDeltaRecipe(
      const PlanPtr& plan, const std::shared_ptr<const Rel>& rel,
      std::vector<double>&& acc);

  /// Exactly one of these identifies the catalog: a pinned snapshot
  /// (serving path) or a live database (legacy shim).
  Snapshot snap_;
  const Database* live_db_ = nullptr;
  const ConjunctiveQuery& q_;
  AtomOverrides overrides_;
  uint64_t override_atoms_ = 0;
  uint64_t untagged_override_atoms_ = 0;
  std::unordered_map<const PlanNode*, std::shared_ptr<const Rel>> cache_;
  std::unordered_map<const PlanNode*, std::string> fingerprint_memo_;
  size_t nodes_evaluated_ = 0;
  size_t result_cache_hits_ = 0;
  ChunkedScanStats scan_stats_;
  ResultCache* result_cache_ = nullptr;
  uint64_t db_version_ = 0;
  bool delta_recipes_ = false;
  Scheduler* scheduler_ = nullptr;
  obs::TraceContext* trace_ = nullptr;
  uint32_t trace_parent_ = 0;  ///< parent for the next span Evaluate opens
};

/// Evaluates each plan independently (no sharing) and min-merges the
/// per-answer scores: the naive "evaluate all minimal plans" strategy that
/// Opt. 1-3 improve upon. `scan_stats`, if given, accumulates the chunked
/// scan counters across all per-plan evaluators. All plans read the one
/// pinned snapshot. When `trace` is given, each plan evaluates under its
/// own "plan k" span (parent `trace_parent`) followed by a "min-merge"
/// span.
Result<Rel> EvaluatePlansSeparately(const Snapshot& snap,
                                    const ConjunctiveQuery& q,
                                    const std::vector<PlanPtr>& plans,
                                    const AtomOverrides& overrides = {},
                                    ChunkedScanStats* scan_stats = nullptr,
                                    obs::TraceContext* trace = nullptr,
                                    uint32_t trace_parent = 0);

/// Legacy shim over the live head of `db`.
Result<Rel> EvaluatePlansSeparately(const Database& db,
                                    const ConjunctiveQuery& q,
                                    const std::vector<PlanPtr>& plans,
                                    const AtomOverrides& overrides = {},
                                    ChunkedScanStats* scan_stats = nullptr,
                                    obs::TraceContext* trace = nullptr,
                                    uint32_t trace_parent = 0);

}  // namespace dissodb

#endif  // DISSODB_EXEC_EVALUATOR_H_
