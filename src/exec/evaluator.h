// Plan evaluation with extensional (score) semantics.
//
// The evaluator caches results by DAG node identity, so hash-consed shared
// subplans (Opt. 2, the paper's views) are computed exactly once.
#ifndef DISSODB_EXEC_EVALUATOR_H_
#define DISSODB_EXEC_EVALUATOR_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/exec/rel.h"
#include "src/plan/plan.h"
#include "src/query/cq.h"
#include "src/storage/database.h"

namespace dissodb {

/// \brief Evaluates plans for one query over one database.
class PlanEvaluator {
 public:
  PlanEvaluator(const Database& db, const ConjunctiveQuery& q)
      : db_(db), q_(q) {}

  /// Overrides the table bound to `atom_idx` (per-query selections or
  /// semi-join-reduced inputs). The pointer must outlive the evaluator.
  void SetAtomTable(int atom_idx, const Table* table) {
    overrides_[atom_idx] = table;
  }

  /// Evaluates `plan`; results of shared nodes are cached by node identity
  /// for the lifetime of the evaluator.
  Result<std::shared_ptr<const Rel>> Evaluate(const PlanPtr& plan);

  /// Number of plan-node evaluations actually executed (cache misses).
  size_t nodes_evaluated() const { return nodes_evaluated_; }

 private:
  const Database& db_;
  const ConjunctiveQuery& q_;
  std::unordered_map<int, const Table*> overrides_;
  std::unordered_map<const PlanNode*, std::shared_ptr<const Rel>> cache_;
  size_t nodes_evaluated_ = 0;
};

/// Evaluates each plan independently (no sharing) and min-merges the
/// per-answer scores: the naive "evaluate all minimal plans" strategy that
/// Opt. 1-3 improve upon.
Result<Rel> EvaluatePlansSeparately(const Database& db,
                                    const ConjunctiveQuery& q,
                                    const std::vector<PlanPtr>& plans,
                                    const std::unordered_map<int, const Table*>&
                                        overrides = {});

}  // namespace dissodb

#endif  // DISSODB_EXEC_EVALUATOR_H_
