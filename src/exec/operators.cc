#include "src/exec/operators.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <numeric>

#include "src/common/hash.h"
#include "src/common/simd.h"
#include "src/exec/bloom.h"
#include "src/exec/hash_table.h"
#include "src/serve/scheduler.h"

#if DISSODB_SIMD_COMPILED
#include <immintrin.h>
#endif

namespace dissodb {

namespace {

/// Rows per morsel for the parallel operator paths; inputs smaller than one
/// morsel run sequentially (the fan-out overhead would dominate).
constexpr size_t kMorselRows = 16384;

/// Probe rows per prefetch block: pass one prefetches the home slots of a
/// block of hashes, pass two walks them — by then the lines have arrived.
/// 64 in-flight lines stay within what the load units track while keeping
/// the block resident in L1.
constexpr size_t kProbeBlock = 64;

/// Build sides below this fit comfortably in L2; prefetching them only
/// costs instruction bandwidth.
constexpr size_t kPrefetchMinBuildRows = 4096;

/// Hash-prefix partitions for parallel build/grouping (top bits of the key
/// hash, independent of the low bits FlatHashIndex buckets on).
constexpr int kPartitionBits = 6;
constexpr size_t kNumPartitions = size_t{1} << kPartitionBits;
constexpr int kPartitionShift = 64 - kPartitionBits;

/// Counting-sort layout of rows 0..n-1 by hash prefix: partition p owns
/// rows[offsets[p] .. offsets[p+1]), ascending within each partition (the
/// fill pass scans rows in order), which is what keeps the parallel paths
/// bit-identical to the sequential ones.
struct HashPartitions {
  std::vector<uint32_t> rows;
  std::vector<uint32_t> offsets;  // size kNumPartitions + 1
};

HashPartitions PartitionByHashPrefix(std::span<const uint64_t> h) {
  HashPartitions out;
  out.offsets.assign(kNumPartitions + 1, 0);
  for (uint64_t v : h) ++out.offsets[(v >> kPartitionShift) + 1];
  for (size_t p = 1; p <= kNumPartitions; ++p) {
    out.offsets[p] += out.offsets[p - 1];
  }
  out.rows.resize(h.size());
  std::vector<uint32_t> pos(out.offsets.begin(), out.offsets.end() - 1);
  for (size_t r = 0; r < h.size(); ++r) {
    out.rows[pos[h[r] >> kPartitionShift]++] = static_cast<uint32_t>(r);
  }
  return out;
}

}  // namespace

AtomBinding BindAtom(const Atom& atom) {
  AtomBinding b;
  for (int p = 0; p < atom.arity(); ++p) {
    const Term& t = atom.terms[p];
    if (!t.is_var) {
      b.checks.push_back(AtomEqCheck{p, -1, t.constant});
      continue;
    }
    if (t.var >= static_cast<int>(b.first_pos_of_var.size())) {
      b.first_pos_of_var.resize(t.var + 1, -1);
    }
    if (b.first_pos_of_var[t.var] < 0) {
      b.first_pos_of_var[t.var] = p;
    } else {
      b.checks.push_back(AtomEqCheck{p, b.first_pos_of_var[t.var], Value()});
    }
  }
  return b;
}

void ApplyAtomCheck(const Table& t, const AtomEqCheck& check,
                    std::vector<uint32_t>* sel) {
  const Column& lhs = *t.col(check.pos);
  size_t w = 0;
  if (check.other_pos >= 0) {
    const Column& rhs = *t.col(check.other_pos);
    for (uint32_t r : *sel) {
      if (lhs.ElemEquals(r, rhs, r)) (*sel)[w++] = r;
    }
  } else {
    const uint64_t bits = check.constant.RawBits();
    const ValueType type = check.constant.type();
    for (uint32_t r : *sel) {
      if (lhs.RawBits(r) == bits && lhs.TypeAt(r) == type) (*sel)[w++] = r;
    }
  }
  sel->resize(w);
}

namespace {

/// Fills `sel` with the ascending global row ids of chunk `ci` that satisfy
/// every check. The first check runs over chunk-local spans (flat fast path
/// on uniform columns); the remaining checks compact the survivors through
/// ApplyAtomCheck, so selection semantics cannot diverge from the
/// row-at-a-time path.
void FilterChunk(const Table& t, std::span<const AtomEqCheck> checks,
                 size_t ci, std::vector<uint32_t>* sel) {
  const AtomEqCheck& check = checks[0];
  const Column& lhs = *t.col(check.pos);
  const std::span<const uint64_t> lb = lhs.ChunkBits(ci);
  const uint32_t base = static_cast<uint32_t>(lhs.ChunkBegin(ci));
  if (check.other_pos >= 0) {
    const Column& rhs = *t.col(check.other_pos);
    if (lhs.uniform() && rhs.uniform() && lhs.type() == rhs.type()) {
      const std::span<const uint64_t> rb = rhs.ChunkBits(ci);
      for (size_t k = 0; k < lb.size(); ++k) {
        if (lb[k] == rb[k]) sel->push_back(base + static_cast<uint32_t>(k));
      }
    } else {
      for (size_t k = 0; k < lb.size(); ++k) {
        const size_t g = base + k;
        if (lhs.ElemEquals(g, rhs, g)) {
          sel->push_back(static_cast<uint32_t>(g));
        }
      }
    }
  } else {
    const uint64_t bits = check.constant.RawBits();
    const ValueType type = check.constant.type();
    if (lhs.uniform()) {
      if (lhs.type() == type) {
        for (size_t k = 0; k < lb.size(); ++k) {
          if (lb[k] == bits) sel->push_back(base + static_cast<uint32_t>(k));
        }
      }
      // Uniform column of another type: no row can match.
    } else {
      for (size_t k = 0; k < lb.size(); ++k) {
        const size_t g = base + k;
        if (lb[k] == bits && lhs.TypeAt(g) == type) {
          sel->push_back(static_cast<uint32_t>(g));
        }
      }
    }
  }
  for (size_t c = 1; c < checks.size(); ++c) {
    ApplyAtomCheck(t, checks[c], sel);
  }
}

}  // namespace

namespace {

/// Shared scan body over an already-resolved table (see the public
/// Snapshot / Database overloads below).
Result<Rel> ScanAtomResolved(const Table* table, const ConjunctiveQuery& q,
                             int atom_idx, Scheduler* scheduler,
                             ChunkedScanStats* stats) {
  const Atom& atom = q.atom(atom_idx);
  if (table->arity() != atom.arity()) {
    return Status::InvalidArgument("atom " + atom.relation +
                                   " arity mismatch with table");
  }
  // First column position of each distinct variable, plus equality checks
  // for repeated variables and constants.
  std::vector<VarId> vars = MaskToVars(q.AtomMask(atom_idx));
  AtomBinding binding = BindAtom(atom);
  std::vector<int> first_pos(vars.size(), -1);
  for (size_t i = 0; i < vars.size(); ++i) {
    first_pos[i] = binding.first_pos_of_var[vars[i]];
  }
  const std::vector<AtomEqCheck>& checks = binding.checks;

  const size_t n = table->NumRows();
  if (checks.empty()) {
    // Unfiltered scan: reference the table's columns and probabilities
    // zero-copy (the dominant case — most atoms have no selections).
    std::vector<ColumnPtr> cols;
    cols.reserve(vars.size());
    for (size_t i = 0; i < vars.size(); ++i) {
      cols.push_back(table->col(first_pos[i]));
    }
    return Rel::FromColumns(std::move(vars), std::move(cols),
                            table->weights(), n);
  }

  // Filtered scan, chunk at a time. All columns of a table append in
  // lockstep, so they share one chunk geometry; read it off the first
  // checked column.
  const Column& layout = *table->col(checks[0].pos);
  const size_t num_chunks = layout.num_chunks();

  // Zone-map pruning: a constant check on a type-uniform column rules out
  // every chunk whose [min, max] payload range (unsigned order — any total
  // order is sound for equality) excludes the constant.
  std::vector<uint8_t> prune(num_chunks, 0);
  for (const auto& check : checks) {
    if (check.other_pos >= 0) continue;
    const Column& col = *table->col(check.pos);
    if (!col.uniform()) continue;
    if (n > 0 && check.constant.type() != col.type()) {
      prune.assign(num_chunks, 1);  // type mismatch: nothing can match
      break;
    }
    const uint64_t cbits = check.constant.RawBits();
    for (size_t ci = 0; ci < num_chunks; ++ci) {
      if (cbits < col.ChunkMinBits(ci) || cbits > col.ChunkMaxBits(ci)) {
        prune[ci] = 1;
      }
    }
  }

  // Fan out over the surviving chunks only: a fully (or mostly) pruned scan
  // must not spawn tasks for — or even iterate — chunks the zone maps
  // already ruled out.
  std::vector<uint32_t> live;
  live.reserve(num_chunks);
  for (size_t ci = 0; ci < num_chunks; ++ci) {
    if (!prune[ci]) live.push_back(static_cast<uint32_t>(ci));
  }

  // One selection vector per surviving chunk; concatenating them in chunk
  // order reproduces the ascending sequential selection exactly.
  std::vector<std::vector<uint32_t>> chunk_sel(num_chunks);
  const bool parallel =
      scheduler != nullptr && live.size() >= 2 && n >= 2 * kMorselRows;
  auto scan_range = [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const size_t ci = live[i];
      FilterChunk(*table, checks, ci, &chunk_sel[ci]);
    }
  };
  if (parallel) {
    scheduler->ParallelFor(0, live.size(), 1, scan_range);
  } else if (!live.empty()) {
    scan_range(0, live.size());
  }

  size_t total = 0;
  for (const auto& cs : chunk_sel) total += cs.size();
  std::vector<uint32_t> sel;
  sel.reserve(total);
  for (const auto& cs : chunk_sel) sel.insert(sel.end(), cs.begin(), cs.end());

  if (stats != nullptr) {
    ++stats->filtered_scans;
    if (parallel) ++stats->parallel_scans;
    for (size_t ci = 0; ci < num_chunks; ++ci) {
      if (prune[ci]) {
        ++stats->chunks_pruned;
      } else {
        ++stats->chunks_scanned;
        stats->rows_scanned += layout.ChunkSize(ci);
      }
    }
    stats->rows_selected += total;
  }

  std::vector<ColumnPtr> cols;
  cols.reserve(vars.size());
  for (size_t i = 0; i < vars.size(); ++i) {
    cols.push_back(std::make_shared<Column>(
        Column::Gathered(*table->col(first_pos[i]), sel, scheduler)));
  }
  auto scores = std::make_shared<WeightColumn>(
      WeightColumn::Gathered(*table->weights(), sel, scheduler));
  return Rel::FromColumns(std::move(vars), std::move(cols), std::move(scores),
                          sel.size());
}

}  // namespace

Result<Rel> ScanAtom(const Snapshot& snap, const ConjunctiveQuery& q,
                     int atom_idx, const Table* table, Scheduler* scheduler,
                     ChunkedScanStats* stats) {
  if (table == nullptr) {
    auto t = snap.GetTable(q.atom(atom_idx).relation);
    if (!t.ok()) return t.status();
    table = *t;
  }
  return ScanAtomResolved(table, q, atom_idx, scheduler, stats);
}

Result<Rel> ScanAtom(const Database& db, const ConjunctiveQuery& q,
                     int atom_idx, const Table* table, Scheduler* scheduler,
                     ChunkedScanStats* stats) {
  if (table == nullptr) {
    auto t = db.GetTable(q.atom(atom_idx).relation);
    if (!t.ok()) return t.status();
    table = *t;
  }
  return ScanAtomResolved(table, q, atom_idx, scheduler, stats);
}

Result<Rel> ScanAtomTail(const Snapshot& snap, const ConjunctiveQuery& q,
                         int atom_idx, size_t begin_row,
                         Scheduler* scheduler) {
  auto t = snap.GetTable(q.atom(atom_idx).relation);
  if (!t.ok()) return t.status();
  const Table* table = *t;
  const Atom& atom = q.atom(atom_idx);
  if (table->arity() != atom.arity()) {
    return Status::InvalidArgument("atom " + atom.relation +
                                   " arity mismatch with table");
  }
  const size_t n = table->NumRows();
  if (begin_row > n) {
    return Status::InvalidArgument("delta scan begins past table " +
                                   atom.relation);
  }
  std::vector<VarId> vars = MaskToVars(q.AtomMask(atom_idx));
  AtomBinding binding = BindAtom(atom);
  std::vector<int> first_pos(vars.size(), -1);
  for (size_t i = 0; i < vars.size(); ++i) {
    first_pos[i] = binding.first_pos_of_var[vars[i]];
  }
  const std::vector<AtomEqCheck>& checks = binding.checks;

  // Selection = the ascending full-scan selection restricted to the
  // appended suffix; only chunks overlapping [begin_row, n) are touched.
  std::vector<uint32_t> sel;
  if (checks.empty()) {
    sel.resize(n - begin_row);
    for (size_t r = begin_row; r < n; ++r) {
      sel[r - begin_row] = static_cast<uint32_t>(r);
    }
  } else if (begin_row < n) {
    const Column& layout = *table->col(checks[0].pos);
    const size_t cap = layout.chunk_capacity();
    const size_t num_chunks = layout.num_chunks();
    for (size_t ci = begin_row / cap; ci < num_chunks; ++ci) {
      // Same zone-map pruning as the full scan (pruning never changes the
      // selection, it only skips chunks that cannot match).
      bool pruned = false;
      for (const auto& check : checks) {
        if (check.other_pos >= 0) continue;
        const Column& col = *table->col(check.pos);
        if (!col.uniform()) continue;
        if (check.constant.type() != col.type()) {
          pruned = true;
          break;
        }
        const uint64_t cbits = check.constant.RawBits();
        if (cbits < col.ChunkMinBits(ci) || cbits > col.ChunkMaxBits(ci)) {
          pruned = true;
          break;
        }
      }
      if (pruned) continue;
      std::vector<uint32_t> chunk_sel;
      FilterChunk(*table, checks, ci, &chunk_sel);
      for (uint32_t r : chunk_sel) {
        if (r >= begin_row) sel.push_back(r);
      }
    }
  }

  std::vector<ColumnPtr> cols;
  cols.reserve(vars.size());
  for (size_t i = 0; i < vars.size(); ++i) {
    cols.push_back(std::make_shared<Column>(
        Column::Gathered(*table->col(first_pos[i]), sel, scheduler)));
  }
  auto scores = std::make_shared<WeightColumn>(
      WeightColumn::Gathered(*table->weights(), sel, scheduler));
  return Rel::FromColumns(std::move(vars), std::move(cols), std::move(scores),
                          sel.size());
}

namespace {

/// Build-side index: either one flat table (sequential build) or one per
/// hash-prefix partition (parallel build). Chains run through the shared
/// `next` array; per-partition chains preserve the global ascending
/// insertion order, so probes see build rows in the same (descending)
/// order either way.
struct JoinBuildIndex {
  std::vector<FlatHashIndex> parts;
  std::vector<uint32_t> next;
  bool partitioned = false;

  uint32_t Find(uint64_t h) const {
    return parts[partitioned ? (h >> kPartitionShift) : 0].Find(h);
  }

  void Prefetch(uint64_t h) const {
    parts[partitioned ? (h >> kPartitionShift) : 0].PrefetchSlot(h);
  }
};

/// Join probes consult a build-side Bloom filter before touching the slot
/// table (same DISSODB_DISABLE_BLOOM escape hatch as the semi-join
/// reduction). The filter is worth a probe-side pre-check only while it
/// actually rejects: each probe_range call watches the reject rate over
/// its first blocks and drops the filter for the rest of the range when
/// most probes pass anyway (high-hit-rate joins), keeping the overhead a
/// bounded prefix. Consulting or dropping the filter never changes which
/// chains are walked, so output is unaffected.
bool JoinBloomEnabled() {
  static const bool enabled = std::getenv("DISSODB_DISABLE_BLOOM") == nullptr;
  return enabled;
}

/// Probes checked before the reject-rate verdict, and the rate (in
/// eighths) below which the filter is dropped: a rejected probe saves a
/// slot-table miss (~3x the cost of the filter check), so the filter pays
/// for itself down to roughly three rejects in eight.
constexpr size_t kBloomAdaptProbes = 8192;
constexpr size_t kBloomMinRejectEighths = 3;

JoinBuildIndex BuildJoinIndex(std::span<const uint64_t> bh,
                              Scheduler* scheduler) {
  const size_t bn = bh.size();
  JoinBuildIndex index;
  index.next.resize(bn);
  // Insert-side lookahead: each HeadFor lands on a random slot of a table
  // that exceeds L2 for large builds, so fetch the slot line (exclusive) a
  // fixed distance ahead. Purely overlaps misses; insertion order — and
  // therefore every chain — is unchanged.
  constexpr size_t kBuildLookahead = 16;
  if (scheduler == nullptr || bn < kMorselRows) {
    index.parts.emplace_back(bn);
    FlatHashIndex& part = index.parts[0];
    const bool prefetch = bn >= kPrefetchMinBuildRows;
    for (size_t r = 0; r < bn; ++r) {
      if (prefetch && r + kBuildLookahead < bn) {
        part.PrefetchSlotWrite(bh[r + kBuildLookahead]);
      }
      uint32_t& head = part.HeadFor(bh[r]);
      index.next[r] = head;
      head = static_cast<uint32_t>(r);
    }
    return index;
  }

  index.partitioned = true;
  HashPartitions parts = PartitionByHashPrefix(bh);
  index.parts.reserve(kNumPartitions);
  for (size_t p = 0; p < kNumPartitions; ++p) {
    index.parts.emplace_back(parts.offsets[p + 1] - parts.offsets[p]);
  }
  scheduler->ParallelFor(0, kNumPartitions, 1, [&](size_t lo, size_t hi) {
    for (size_t p = lo; p < hi; ++p) {
      FlatHashIndex& part = index.parts[p];
      const uint32_t begin = parts.offsets[p];
      const uint32_t end = parts.offsets[p + 1];
      const bool prefetch = end - begin >= kPrefetchMinBuildRows;
      for (uint32_t i = begin; i < end; ++i) {
        if (prefetch && i + kBuildLookahead < end) {
          part.PrefetchSlotWrite(bh[parts.rows[i + kBuildLookahead]]);
        }
        const uint32_t r = parts.rows[i];
        uint32_t& head = part.HeadFor(bh[r]);
        index.next[r] = head;
        head = r;
      }
    }
  });
  return index;
}

}  // namespace

Rel HashJoin(const Rel& left, const Rel& right, Scheduler* scheduler) {
  const bool build_left = left.NumRows() <= right.NumRows();
  return HashJoinBuildProbe(build_left ? left : right,
                            build_left ? right : left, scheduler);
}

Rel HashJoinBuildProbe(const Rel& build, const Rel& probe,
                       Scheduler* scheduler) {
  VarMask shared = build.var_mask() & probe.var_mask();
  std::vector<int> build_key, probe_key;
  for (VarId v : MaskToVars(shared)) {
    build_key.push_back(build.ColIndex(v));
    probe_key.push_back(probe.ColIndex(v));
  }

  // Build: flat table(s) over the batch-hashed build keys (hashing fans
  // out in chunk-aligned morsels); duplicate keys chain through `next`.
  const size_t bn = build.NumRows();
  HashVector bh = HashKeyColumns(build, build_key, scheduler);
  JoinBuildIndex index = BuildJoinIndex(bh, scheduler);

  // Probe: batch-hash, then emit matching (build, probe) row pairs. Each
  // morsel fills its own pair buffers; concatenating them in morsel order
  // reproduces the sequential probe-row order exactly.
  HashVector ph = HashKeyColumns(probe, probe_key, scheduler);
  const size_t pn = probe.NumRows();
  const Column* build_key0 =
      build_key.empty() ? nullptr : &*build.col(build_key[0]);
  const bool want_prefetch = bn >= kPrefetchMinBuildRows;
  // Build-side Bloom filter for probe pre-checks: the filter array is ~10
  // bits/key (cache-resident) while the slot table it short-circuits is a
  // DRAM miss per probe. Built sequentially from the already-computed
  // build hashes; gated like the prefetches (tiny builds fit in cache).
  std::unique_ptr<BlockedBloomFilter> bloom;
  if (want_prefetch && JoinBloomEnabled()) {
    bloom = std::make_unique<BlockedBloomFilter>(bn);
    for (size_t r = 0; r < bn; ++r) bloom->Add(bh[r]);
  }
  auto probe_range = [&](size_t lo, size_t hi, std::vector<uint32_t>* bs,
                         std::vector<uint32_t>* ps) {
    if (want_prefetch) {
      // Per block: Bloom-filter the block's rows into a survivor list,
      // prefetch the survivors' home slots, resolve chain heads
      // (prefetching each head's link and first build key word), then
      // walk. Each pass's misses overlap across the whole block instead
      // of serializing one probe at a time. Survivors stay in probe-row
      // order, so output is bit-identical to the plain loop.
      const BlockedBloomFilter* filter = bloom.get();
      size_t seen = 0, rejected = 0;
      uint32_t sur[kProbeBlock];
      uint32_t heads[kProbeBlock];
      for (size_t blo = lo; blo < hi; blo += kProbeBlock) {
        const size_t bhi = std::min(blo + kProbeBlock, hi);
        size_t s = 0;
        if (filter != nullptr) {
          for (size_t pr = blo; pr < bhi; ++pr) {
            if (filter->MayContain(ph[pr])) {
              sur[s++] = static_cast<uint32_t>(pr);
            }
          }
          seen += bhi - blo;
          rejected += (bhi - blo) - s;
          if (seen >= kBloomAdaptProbes &&
              rejected * 8 < seen * kBloomMinRejectEighths) {
            filter = nullptr;  // mostly hits: the pre-check is pure cost
          }
        } else {
          for (size_t pr = blo; pr < bhi; ++pr) {
            sur[s++] = static_cast<uint32_t>(pr);
          }
        }
        for (size_t k = 0; k < s; ++k) index.Prefetch(ph[sur[k]]);
        for (size_t k = 0; k < s; ++k) {
          const uint32_t head = index.Find(ph[sur[k]]);
          heads[k] = head;
          if (head != FlatHashIndex::kNil) {
            __builtin_prefetch(&index.next[head], 0, 1);
            if (build_key0 != nullptr) build_key0->PrefetchRaw(head);
          }
        }
        for (size_t k = 0; k < s; ++k) {
          const size_t pr = sur[k];
          for (uint32_t br = heads[k]; br != FlatHashIndex::kNil;
               br = index.next[br]) {
            if (!KeysEqual(build, br, build_key, probe, pr, probe_key)) {
              continue;
            }
            bs->push_back(br);
            ps->push_back(static_cast<uint32_t>(pr));
          }
        }
      }
      return;
    }
    for (size_t pr = lo; pr < hi; ++pr) {
      for (uint32_t br = index.Find(ph[pr]); br != FlatHashIndex::kNil;
           br = index.next[br]) {
        if (!KeysEqual(build, br, build_key, probe, pr, probe_key)) continue;
        bs->push_back(br);
        ps->push_back(static_cast<uint32_t>(pr));
      }
    }
  };

  std::vector<uint32_t> build_sel, probe_sel;
  if (scheduler != nullptr && pn >= 2 * kMorselRows) {
    const size_t num_morsels = (pn + kMorselRows - 1) / kMorselRows;
    std::vector<std::vector<uint32_t>> mb(num_morsels), mp(num_morsels);
    scheduler->ParallelFor(0, pn, kMorselRows, [&](size_t lo, size_t hi) {
      const size_t k = lo / kMorselRows;
      probe_range(lo, hi, &mb[k], &mp[k]);
    });
    size_t total = 0;
    for (const auto& v : mb) total += v.size();
    build_sel.reserve(total);
    probe_sel.reserve(total);
    for (size_t k = 0; k < num_morsels; ++k) {
      build_sel.insert(build_sel.end(), mb[k].begin(), mb[k].end());
      probe_sel.insert(probe_sel.end(), mp[k].begin(), mp[k].end());
    }
  } else {
    build_sel.reserve(pn);
    probe_sel.reserve(pn);
    probe_range(0, pn, &build_sel, &probe_sel);
  }

  // Assemble output columns by gathering from the source side (one
  // independent task per column when a scheduler is available).
  std::vector<VarId> out_vars = MaskToVars(build.var_mask() | probe.var_mask());
  std::vector<ColumnPtr> cols(out_vars.size());
  auto fill_col = [&](size_t i) {
    int bc = build.ColIndex(out_vars[i]);
    const Column& src =
        bc >= 0 ? *build.col(bc) : *probe.col(probe.ColIndex(out_vars[i]));
    cols[i] = std::make_shared<Column>(
        Column::Gathered(src, bc >= 0 ? build_sel : probe_sel, scheduler));
  };
  auto scores = std::make_shared<WeightColumn>();
  auto fill_scores = [&] {
    const size_t out_n = build_sel.size();
    scores->Reserve(out_n);
    const WeightColumn::View bw = build.weights()->view();
    const WeightColumn::View pw = probe.weights()->view();
    constexpr size_t kScoreLookahead = 16;
    for (size_t i = 0; i < out_n; ++i) {
      if (i + kScoreLookahead < out_n) {
        bw.PrefetchAt(build_sel[i + kScoreLookahead]);
        pw.PrefetchAt(probe_sel[i + kScoreLookahead]);
      }
      scores->Append(bw[build_sel[i]] * pw[probe_sel[i]]);
    }
  };
  if (scheduler != nullptr && build_sel.size() >= 2 * kMorselRows &&
      !out_vars.empty()) {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(out_vars.size() + 1);
    for (size_t i = 0; i < out_vars.size(); ++i) {
      tasks.push_back([&fill_col, i] { fill_col(i); });
    }
    tasks.push_back([&fill_scores] { fill_scores(); });
    scheduler->RunAll(std::move(tasks));
  } else {
    for (size_t i = 0; i < out_vars.size(); ++i) fill_col(i);
    fill_scores();
  }
  return Rel::FromColumns(std::move(out_vars), std::move(cols),
                          std::move(scores), build_sel.size());
}

namespace {

/// Sequential grouping kernel shared by both projection flavors and both
/// (sequential / partition-parallel) paths: assign each row of `rows` to a
/// group via a flat index (groups with equal hashes chain; real key
/// comparison on the input columns) and fold scores per group. `rows` must
/// be ascending so the per-group fold order matches a full sequential scan.
/// `row_at(t)` maps loop position to input row id; the two instantiations
/// are the identity (sequential full-input path, no row-index vector to
/// allocate or stream) and a subscript into a partition's row list.
template <typename RowAt, typename Init, typename Update>
void GroupRowsImpl(const Rel& in, std::span<const int> key_pos,
                   std::span<const uint64_t> h, size_t nr, RowAt row_at,
                   Init init, Update update, std::vector<uint32_t>* group_rep,
                   std::vector<double>* acc) {
  FlatHashIndex index(nr);
  std::vector<uint32_t> group_next;  // chain of groups sharing a hash
  // Near-distinct keys create a group per row; reserving for the worst
  // case avoids repeated reallocation-and-copy of three hot vectors.
  group_rep->reserve(group_rep->size() + nr);
  group_next.reserve(nr);
  acc->reserve(acc->size() + nr);
  const WeightColumn::View w = in.weights()->view();
  // Fixed-distance lookahead: the index exceeds L2 for large groupings and
  // every HeadFor lands on a random slot, so fetch the slot a few rows
  // early. (Pure overlap; does not change which slot any row claims.)
  constexpr size_t kGroupLookahead = 16;
  const bool prefetch = nr >= kPrefetchMinBuildRows;
  for (size_t t = 0; t < nr; ++t) {
    if (prefetch && t + kGroupLookahead < nr) {
      index.PrefetchSlotWrite(h[row_at(t + kGroupLookahead)]);
    }
    const uint32_t r = row_at(t);
    uint32_t& head = index.HeadFor(h[r]);
    uint32_t g = head;
    while (g != FlatHashIndex::kNil &&
           !KeysEqual(in, r, key_pos, in, (*group_rep)[g], key_pos)) {
      g = group_next[g];
    }
    if (g == FlatHashIndex::kNil) {
      g = static_cast<uint32_t>(group_rep->size());
      group_rep->push_back(r);
      group_next.push_back(head);
      head = g;
      acc->push_back(init(w[r]));
    } else {
      (*acc)[g] = update((*acc)[g], w[r]);
    }
  }
}

template <typename Init, typename Update>
void GroupRows(const Rel& in, std::span<const int> key_pos,
               std::span<const uint64_t> h, std::span<const uint32_t> rows,
               Init init, Update update, std::vector<uint32_t>* group_rep,
               std::vector<double>* acc) {
  GroupRowsImpl(
      in, key_pos, h, rows.size(),
      [rows](size_t t) { return rows[t]; }, init, update, group_rep, acc);
}

/// Identity variant (rows 0..n-1 in order): the full sequential grouping
/// path, with no materialized row-index vector.
template <typename Init, typename Update>
void GroupAllRows(const Rel& in, std::span<const int> key_pos,
                  std::span<const uint64_t> h, Init init, Update update,
                  std::vector<uint32_t>* group_rep, std::vector<double>* acc) {
  GroupRowsImpl(
      in, key_pos, h, h.size(),
      [](size_t t) { return static_cast<uint32_t>(t); }, init, update,
      group_rep, acc);
}

/// Shared grouping loop for both projection flavors: batch-hash the key
/// columns, group, and fold scores per group. With a scheduler and a large
/// input, rows are partitioned by hash prefix and grouped per partition in
/// parallel; every row of a group lands in the same partition (the
/// partition is a function of the key hash) and partitions keep rows
/// ascending, so re-sorting the merged groups by representative row
/// reproduces the sequential first-occurrence group order and fold order
/// exactly.
template <typename Init, typename Update, typename Finalize>
Rel ProjectImpl(const Rel& in, VarMask keep_mask, Scheduler* scheduler,
                Init init, Update update, Finalize finalize,
                std::vector<double>* raw_acc_out = nullptr) {
  assert((keep_mask & ~in.var_mask()) == 0);
  std::vector<VarId> keep_vars = MaskToVars(keep_mask);
  std::vector<int> key_pos;
  key_pos.reserve(keep_vars.size());
  for (VarId v : keep_vars) key_pos.push_back(in.ColIndex(v));

  const size_t n = in.NumRows();
  HashVector h = HashKeyColumns(in, key_pos, scheduler);

  std::vector<uint32_t> group_rep;  // representative input row per group
  std::vector<double> acc;          // folded score per group
  if (scheduler != nullptr && n >= 2 * kMorselRows) {
    HashPartitions parts = PartitionByHashPrefix(h);
    std::vector<std::vector<uint32_t>> part_rep(kNumPartitions);
    std::vector<std::vector<double>> part_acc(kNumPartitions);
    scheduler->ParallelFor(0, kNumPartitions, 1, [&](size_t lo, size_t hi) {
      for (size_t p = lo; p < hi; ++p) {
        std::span<const uint32_t> rows(parts.rows.data() + parts.offsets[p],
                                       parts.offsets[p + 1] - parts.offsets[p]);
        GroupRows(in, key_pos, h, rows, init, update, &part_rep[p],
                  &part_acc[p]);
      }
    });
    // Merge: per-partition group lists are ascending by representative row;
    // a k-way merge by representative restores the global first-occurrence
    // order of the sequential scan.
    size_t total_groups = 0;
    for (const auto& v : part_rep) total_groups += v.size();
    std::vector<std::pair<uint32_t, double>> merged;
    merged.reserve(total_groups);
    for (size_t p = 0; p < kNumPartitions; ++p) {
      for (size_t g = 0; g < part_rep[p].size(); ++g) {
        merged.emplace_back(part_rep[p][g], part_acc[p][g]);
      }
    }
    std::sort(merged.begin(), merged.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    group_rep.reserve(total_groups);
    acc.reserve(total_groups);
    for (const auto& [rep, a] : merged) {
      group_rep.push_back(rep);
      acc.push_back(a);
    }
  } else {
    GroupAllRows(in, key_pos, h, init, update, &group_rep, &acc);
  }

  std::vector<ColumnPtr> cols;
  cols.reserve(keep_vars.size());
  for (int c : key_pos) {
    cols.push_back(std::make_shared<Column>(
        Column::Gathered(*in.col(c), group_rep, scheduler)));
  }
  if (raw_acc_out != nullptr) *raw_acc_out = acc;
  // Per-group score rewrite applied on the raw fold vector; doing it here
  // (instead of per-row through the Rel accessors) avoids a copy-on-write
  // check per call on outputs with millions of groups.
  for (double& a : acc) a = finalize(a);
  auto scores = std::make_shared<WeightColumn>(acc);
  return Rel::FromColumns(std::move(keep_vars), std::move(cols),
                          std::move(scores), group_rep.size());
}

#if DISSODB_SIMD_COMPILED

/// Boolean projections with at least this many rows take the fused SIMD
/// accumulator; below it the scalar fold is already a handful of cycles.
constexpr size_t kFusedMinRows = 256;

/// Fused Boolean-projection accumulator: returns 1 - prod_k (1 - w[k]).
///
/// Four complement-product lanes, checked every kFlushCheck elements and
/// drained into log space before they can underflow to zero. Lane
/// assignment (k mod 4), flush order (lane 0 through 3), and the final
/// reduction ((l0*l1)*(l2*l3), then the scalar tail in index order) are
/// all fixed and data-independent, so the score is bit-identical run to
/// run; versus the scalar sequential fold it differs by reassociation
/// only (ULP-bounded; the differential test pins the tolerance).
///
/// Iterates the weight column chunk span by chunk span. Every sealed chunk
/// holds a multiple of 4 elements (power-of-two capacity; the caller gates
/// on capacity % 4 == 0), so the vector loop never straddles a seam, the
/// global lane assignment (k mod 4) is preserved across chunks, and only
/// the final chunk can leave a scalar tail — the exact op sequence of a
/// single flat pass.
__attribute__((target("avx2"))) double FusedComplementScoreAvx2(
    const WeightColumn& w) {
  const __m256d one = _mm256_set1_pd(1.0);
  __m256d prod = one;
  double log_acc = 0.0;
  bool flushed = false;
  constexpr size_t kFlushCheck = 512;
  constexpr double kTiny = 1e-128;
  size_t next_check = kFlushCheck;
  size_t k = 0;  // global element index
  alignas(32) double lanes[4];
  std::span<const double> tail;  // last chunk's sub-vector remainder
  for (size_t ci = 0; ci < w.num_chunks(); ++ci) {
    const std::span<const double> p = w.ChunkVals(ci);
    size_t j = 0;
    for (; j + 4 <= p.size(); j += 4, k += 4) {
      prod = _mm256_mul_pd(prod, _mm256_sub_pd(one, _mm256_loadu_pd(p.data() + j)));
      if (k + 4 >= next_check) {
        next_check += kFlushCheck;
        _mm256_store_pd(lanes, prod);
        if (lanes[0] < kTiny || lanes[1] < kTiny || lanes[2] < kTiny ||
            lanes[3] < kTiny) {
          // Factors are complements of probabilities, so lanes are
          // non-negative and log() is defined; log(0) folds through exp()
          // below to the same certain-truth score the scalar path reaches.
          for (double l : lanes) log_acc += std::log(l);
          prod = one;
          flushed = true;
        }
      }
    }
    if (j < p.size()) tail = p.subspan(j);  // last chunk only
  }
  _mm256_store_pd(lanes, prod);
  double rest = (lanes[0] * lanes[1]) * (lanes[2] * lanes[3]);
  for (double v : tail) rest *= 1.0 - v;
  if (!flushed) return 1.0 - rest;
  return 1.0 - std::exp(log_acc + std::log(rest));
}

#endif  // DISSODB_SIMD_COMPILED

}  // namespace

Rel ProjectIndependent(const Rel& in, VarMask keep_mask, Scheduler* scheduler,
                       std::vector<double>* raw_acc_out) {
  const size_t n = in.NumRows();
  if (keep_mask == 0 && n > 0) {
    // Boolean projection: every row folds into the single empty-tuple
    // group, so skip hashing and grouping entirely and accumulate the
    // complement product directly over the score column's chunk spans.
    const auto& w = *in.weights();
    double score = 0.0;
    bool fused = false;
#if DISSODB_SIMD_COMPILED
    if (n >= kFusedMinRows && simd::UseAvx2() && w.chunk_capacity() % 4 == 0) {
      score = FusedComplementScoreAvx2(w);
      fused = true;
    }
#endif
    if (!fused) {
      // Same multiply sequence as the grouped fold below, so the scalar
      // fast path is bit-identical to the pre-fast-path behavior.
      double acc = 1.0 - w[0];
      for (size_t r = 1; r < n; ++r) acc *= 1.0 - w[r];
      score = 1.0 - acc;
    }
    auto scores =
        std::make_shared<WeightColumn>(std::vector<double>(1, score));
    return Rel::FromColumns({}, {}, std::move(scores), 1);
  }

  // Accumulate the complement product: acc = prod(1 - s_i); final score is
  // 1 - acc, rewritten over the fold vector before the output is built.
  return ProjectImpl(
      in, keep_mask, scheduler, [](double s) { return 1.0 - s; },
      [](double acc, double s) { return acc * (1.0 - s); },
      [](double acc) { return 1.0 - acc; }, raw_acc_out);
}

Rel ProjectDistinct(const Rel& in, VarMask keep_mask, Scheduler* scheduler) {
  return ProjectImpl(
      in, keep_mask, scheduler, [](double) { return 1.0; },
      [](double, double) { return 1.0; }, [](double acc) { return acc; });
}

Result<Rel> MinMerge(const std::vector<Rel>& inputs) {
  if (inputs.empty()) return Status::InvalidArgument("MinMerge of nothing");
  const VarMask mask = inputs[0].var_mask();
  for (const auto& r : inputs) {
    if (r.var_mask() != mask) {
      return Status::InvalidArgument("MinMerge inputs differ in variables");
    }
  }
  if (inputs.size() == 1) return inputs[0];  // shallow copy: shares columns

  const int arity = inputs[0].arity();
  std::vector<int> identity(arity);
  std::iota(identity.begin(), identity.end(), 0);

  size_t total = 0;
  for (const auto& in : inputs) total += in.NumRows();

  // Groups across all inputs; a representative is an (input, row) pair.
  FlatHashIndex index(total);
  std::vector<uint32_t> group_input, group_row, group_next;
  std::vector<double> best;
  for (size_t k = 0; k < inputs.size(); ++k) {
    const Rel& in = inputs[k];
    HashVector h = HashKeyColumns(in, identity);
    const WeightColumn::View w = in.weights()->view();
    for (size_t r = 0; r < in.NumRows(); ++r) {
      uint32_t& head = index.HeadFor(h[r]);
      uint32_t g = head;
      while (g != FlatHashIndex::kNil &&
             !KeysEqual(in, r, identity, inputs[group_input[g]], group_row[g],
                        identity)) {
        g = group_next[g];
      }
      if (g == FlatHashIndex::kNil) {
        g = static_cast<uint32_t>(group_row.size());
        group_input.push_back(static_cast<uint32_t>(k));
        group_row.push_back(static_cast<uint32_t>(r));
        group_next.push_back(head);
        head = g;
        best.push_back(w[r]);
      } else {
        best[g] = std::min(best[g], w[r]);
      }
    }
  }

  std::vector<ColumnPtr> cols;
  cols.reserve(arity);
  for (int c = 0; c < arity; ++c) {
    // Fast path when every input stores column c uniformly with one type:
    // copy raw 64-bit payloads without per-cell Value construction.
    bool uniform = true;
    bool have_type = false;
    ValueType type = ValueType::kInt64;
    for (const auto& in : inputs) {
      const Column& cc = *in.col(c);
      if (!cc.uniform()) {
        uniform = false;
        break;
      }
      if (cc.size() == 0) continue;
      if (!have_type) {
        type = cc.type();
        have_type = true;
      } else if (cc.type() != type) {
        uniform = false;
        break;
      }
    }
    auto col = std::make_shared<Column>(type);
    col->Reserve(group_row.size());
    if (uniform) {
      for (size_t g = 0; g < group_row.size(); ++g) {
        col->AppendRaw(inputs[group_input[g]].col(c)->RawBits(group_row[g]));
      }
    } else {
      for (size_t g = 0; g < group_row.size(); ++g) {
        col->Append(inputs[group_input[g]].At(group_row[g], c));
      }
    }
    cols.push_back(std::move(col));
  }
  auto scores = std::make_shared<WeightColumn>(best);
  return Rel::FromColumns(inputs[0].vars(), std::move(cols), std::move(scores),
                          group_row.size());
}

}  // namespace dissodb
