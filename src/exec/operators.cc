#include "src/exec/operators.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "src/common/hash.h"

namespace dissodb {

Result<Rel> ScanAtom(const Database& db, const ConjunctiveQuery& q,
                     int atom_idx, const Table* table) {
  const Atom& atom = q.atom(atom_idx);
  if (table == nullptr) {
    auto t = db.GetTable(atom.relation);
    if (!t.ok()) return t.status();
    table = *t;
  }
  if (table->arity() != atom.arity()) {
    return Status::InvalidArgument("atom " + atom.relation +
                                   " arity mismatch with table");
  }
  // First column position of each distinct variable, plus equality checks
  // for repeated variables and constants.
  std::vector<VarId> vars = MaskToVars(q.AtomMask(atom_idx));
  std::vector<int> first_pos(vars.size(), -1);
  struct EqCheck {
    int pos;
    int other_pos;  // -1 when comparing against a constant
    Value constant;
  };
  std::vector<EqCheck> checks;
  for (int p = 0; p < atom.arity(); ++p) {
    const Term& t = atom.terms[p];
    if (!t.is_var) {
      checks.push_back(EqCheck{p, -1, t.constant});
      continue;
    }
    int vi = static_cast<int>(
        std::lower_bound(vars.begin(), vars.end(), t.var) - vars.begin());
    if (first_pos[vi] < 0) {
      first_pos[vi] = p;
    } else {
      checks.push_back(EqCheck{p, first_pos[vi], Value()});
    }
  }

  Rel out(vars);
  out.Reserve(table->NumRows());
  std::vector<Value> row(vars.size());
  for (size_t r = 0; r < table->NumRows(); ++r) {
    auto src = table->Row(r);
    bool pass = true;
    for (const auto& c : checks) {
      const Value& lhs = src[c.pos];
      const Value rhs = c.other_pos >= 0 ? src[c.other_pos] : c.constant;
      if (lhs != rhs) {
        pass = false;
        break;
      }
    }
    if (!pass) continue;
    for (size_t i = 0; i < vars.size(); ++i) row[i] = src[first_pos[i]];
    out.AddRow(row, table->Prob(r));
  }
  return out;
}

Rel HashJoin(const Rel& left, const Rel& right) {
  const Rel& build = left.NumRows() <= right.NumRows() ? left : right;
  const Rel& probe = left.NumRows() <= right.NumRows() ? right : left;

  VarMask shared = build.var_mask() & probe.var_mask();
  std::vector<int> build_key, probe_key;
  for (VarId v : MaskToVars(shared)) {
    build_key.push_back(build.ColIndex(v));
    probe_key.push_back(probe.ColIndex(v));
  }

  std::vector<VarId> out_vars = MaskToVars(build.var_mask() | probe.var_mask());
  Rel out(out_vars);

  // Output assembly: for each output column, where to read it from.
  struct Src {
    bool from_build;
    int col;
  };
  std::vector<Src> src;
  src.reserve(out_vars.size());
  for (VarId v : out_vars) {
    int bc = build.ColIndex(v);
    if (bc >= 0) {
      src.push_back(Src{true, bc});
    } else {
      src.push_back(Src{false, probe.ColIndex(v)});
    }
  }

  std::unordered_map<size_t, std::vector<uint32_t>> ht;
  ht.reserve(build.NumRows() * 2);
  for (size_t r = 0; r < build.NumRows(); ++r) {
    ht[HashRowKey(build.Row(r), build_key)].push_back(
        static_cast<uint32_t>(r));
  }

  std::vector<Value> row(out_vars.size());
  for (size_t pr = 0; pr < probe.NumRows(); ++pr) {
    auto p_row = probe.Row(pr);
    auto it = ht.find(HashRowKey(p_row, probe_key));
    if (it == ht.end()) continue;
    for (uint32_t br : it->second) {
      auto b_row = build.Row(br);
      if (!RowKeyEquals(b_row, build_key, p_row, probe_key)) continue;
      for (size_t i = 0; i < src.size(); ++i) {
        row[i] = src[i].from_build ? b_row[src[i].col] : p_row[src[i].col];
      }
      out.AddRow(row, build.Score(br) * probe.Score(pr));
    }
  }
  return out;
}

namespace {

/// Shared grouping loop for both projection flavors.
template <typename Init, typename Update>
Rel ProjectImpl(const Rel& in, VarMask keep_mask, Init init, Update update) {
  assert((keep_mask & ~in.var_mask()) == 0);
  std::vector<VarId> keep_vars = MaskToVars(keep_mask);
  std::vector<int> key_pos;
  key_pos.reserve(keep_vars.size());
  for (VarId v : keep_vars) key_pos.push_back(in.ColIndex(v));

  Rel out(keep_vars);
  // Group index: hash -> list of output row indices (for collision checks we
  // compare against the already-emitted output row).
  std::unordered_map<size_t, std::vector<uint32_t>> groups;
  std::vector<double> acc;  // accumulator per output row
  std::vector<int> out_identity(keep_vars.size());
  for (size_t i = 0; i < keep_vars.size(); ++i) {
    out_identity[i] = static_cast<int>(i);
  }
  std::vector<Value> key(keep_vars.size());
  for (size_t r = 0; r < in.NumRows(); ++r) {
    auto row = in.Row(r);
    size_t h = HashRowKey(row, key_pos);
    auto& bucket = groups[h];
    int found = -1;
    for (uint32_t out_r : bucket) {
      if (RowKeyEquals(out.Row(out_r), out_identity, row, key_pos)) {
        found = static_cast<int>(out_r);
        break;
      }
    }
    if (found < 0) {
      for (size_t i = 0; i < key_pos.size(); ++i) key[i] = row[key_pos[i]];
      out.AddRow(key, 0.0);
      found = static_cast<int>(out.NumRows()) - 1;
      bucket.push_back(static_cast<uint32_t>(found));
      acc.push_back(init(in.Score(r)));
    } else {
      acc[found] = update(acc[found], in.Score(r));
    }
  }
  for (size_t r = 0; r < out.NumRows(); ++r) out.SetScore(r, acc[r]);
  return out;
}

}  // namespace

Rel ProjectIndependent(const Rel& in, VarMask keep_mask) {
  // Accumulate the complement product: acc = prod(1 - s_i); final score is
  // 1 - acc, computed at the end by rewriting accumulators.
  Rel out = ProjectImpl(
      in, keep_mask, [](double s) { return 1.0 - s; },
      [](double acc, double s) { return acc * (1.0 - s); });
  for (size_t r = 0; r < out.NumRows(); ++r) {
    out.SetScore(r, 1.0 - out.Score(r));
  }
  return out;
}

Rel ProjectDistinct(const Rel& in, VarMask keep_mask) {
  return ProjectImpl(
      in, keep_mask, [](double) { return 1.0; },
      [](double, double) { return 1.0; });
}

Result<Rel> MinMerge(const std::vector<Rel>& inputs) {
  if (inputs.empty()) return Status::InvalidArgument("MinMerge of nothing");
  const VarMask mask = inputs[0].var_mask();
  for (const auto& r : inputs) {
    if (r.var_mask() != mask) {
      return Status::InvalidArgument("MinMerge inputs differ in variables");
    }
  }
  if (inputs.size() == 1) return inputs[0];

  const int arity = inputs[0].arity();
  std::vector<int> identity(arity);
  for (int i = 0; i < arity; ++i) identity[i] = i;

  Rel out(inputs[0].vars());
  std::unordered_map<size_t, std::vector<uint32_t>> index;
  std::vector<double> best;
  for (const auto& in : inputs) {
    for (size_t r = 0; r < in.NumRows(); ++r) {
      auto row = in.Row(r);
      size_t h = HashRowKey(row, identity);
      auto& bucket = index[h];
      int found = -1;
      for (uint32_t out_r : bucket) {
        if (RowKeyEquals(out.Row(out_r), identity, row, identity)) {
          found = static_cast<int>(out_r);
          break;
        }
      }
      if (found < 0) {
        out.AddRow(row, 0.0);
        bucket.push_back(static_cast<uint32_t>(out.NumRows()) - 1);
        best.push_back(in.Score(r));
      } else {
        best[found] = std::min(best[found], in.Score(r));
      }
    }
  }
  for (size_t r = 0; r < out.NumRows(); ++r) out.SetScore(r, best[r]);
  return out;
}

}  // namespace dissodb
