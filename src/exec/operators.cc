#include "src/exec/operators.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "src/common/hash.h"
#include "src/exec/hash_table.h"

namespace dissodb {

AtomBinding BindAtom(const Atom& atom) {
  AtomBinding b;
  for (int p = 0; p < atom.arity(); ++p) {
    const Term& t = atom.terms[p];
    if (!t.is_var) {
      b.checks.push_back(AtomEqCheck{p, -1, t.constant});
      continue;
    }
    if (t.var >= static_cast<int>(b.first_pos_of_var.size())) {
      b.first_pos_of_var.resize(t.var + 1, -1);
    }
    if (b.first_pos_of_var[t.var] < 0) {
      b.first_pos_of_var[t.var] = p;
    } else {
      b.checks.push_back(AtomEqCheck{p, b.first_pos_of_var[t.var], Value()});
    }
  }
  return b;
}

void ApplyAtomCheck(const Table& t, const AtomEqCheck& check,
                    std::vector<uint32_t>* sel) {
  const Column& lhs = *t.col(check.pos);
  size_t w = 0;
  if (check.other_pos >= 0) {
    const Column& rhs = *t.col(check.other_pos);
    for (uint32_t r : *sel) {
      if (lhs.ElemEquals(r, rhs, r)) (*sel)[w++] = r;
    }
  } else {
    const uint64_t bits = check.constant.RawBits();
    const ValueType type = check.constant.type();
    for (uint32_t r : *sel) {
      if (lhs.RawBits(r) == bits && lhs.TypeAt(r) == type) (*sel)[w++] = r;
    }
  }
  sel->resize(w);
}

Result<Rel> ScanAtom(const Database& db, const ConjunctiveQuery& q,
                     int atom_idx, const Table* table) {
  const Atom& atom = q.atom(atom_idx);
  if (table == nullptr) {
    auto t = db.GetTable(atom.relation);
    if (!t.ok()) return t.status();
    table = *t;
  }
  if (table->arity() != atom.arity()) {
    return Status::InvalidArgument("atom " + atom.relation +
                                   " arity mismatch with table");
  }
  // First column position of each distinct variable, plus equality checks
  // for repeated variables and constants.
  std::vector<VarId> vars = MaskToVars(q.AtomMask(atom_idx));
  AtomBinding binding = BindAtom(atom);
  std::vector<int> first_pos(vars.size(), -1);
  for (size_t i = 0; i < vars.size(); ++i) {
    first_pos[i] = binding.first_pos_of_var[vars[i]];
  }
  const std::vector<AtomEqCheck>& checks = binding.checks;

  const size_t n = table->NumRows();
  if (checks.empty()) {
    // Unfiltered scan: reference the table's columns and probabilities
    // zero-copy (the dominant case — most atoms have no selections).
    std::vector<ColumnPtr> cols;
    cols.reserve(vars.size());
    for (size_t i = 0; i < vars.size(); ++i) {
      cols.push_back(table->col(first_pos[i]));
    }
    return Rel::FromColumns(std::move(vars), std::move(cols),
                            table->weights(), n);
  }

  std::vector<uint32_t> sel(n);
  std::iota(sel.begin(), sel.end(), 0u);
  for (const auto& c : checks) ApplyAtomCheck(*table, c, &sel);

  std::vector<ColumnPtr> cols;
  cols.reserve(vars.size());
  for (size_t i = 0; i < vars.size(); ++i) {
    auto col = std::make_shared<Column>();
    col->AppendGather(*table->col(first_pos[i]), sel);
    cols.push_back(std::move(col));
  }
  auto scores = std::make_shared<std::vector<double>>();
  scores->reserve(sel.size());
  for (uint32_t r : sel) scores->push_back(table->Prob(r));
  return Rel::FromColumns(std::move(vars), std::move(cols), std::move(scores),
                          sel.size());
}

Rel HashJoin(const Rel& left, const Rel& right) {
  const Rel& build = left.NumRows() <= right.NumRows() ? left : right;
  const Rel& probe = left.NumRows() <= right.NumRows() ? right : left;

  VarMask shared = build.var_mask() & probe.var_mask();
  std::vector<int> build_key, probe_key;
  for (VarId v : MaskToVars(shared)) {
    build_key.push_back(build.ColIndex(v));
    probe_key.push_back(probe.ColIndex(v));
  }

  // Build: one flat table over the batch-hashed build keys; duplicate keys
  // chain through `next`.
  const size_t bn = build.NumRows();
  std::vector<uint64_t> bh = HashKeyColumns(build, build_key);
  FlatHashIndex index(bn);
  std::vector<uint32_t> next(bn);
  for (size_t r = 0; r < bn; ++r) {
    uint32_t& head = index.HeadFor(bh[r]);
    next[r] = head;
    head = static_cast<uint32_t>(r);
  }

  // Probe: batch-hash, then emit matching (build, probe) row pairs.
  std::vector<uint64_t> ph = HashKeyColumns(probe, probe_key);
  std::vector<uint32_t> build_sel, probe_sel;
  build_sel.reserve(probe.NumRows());
  probe_sel.reserve(probe.NumRows());
  for (size_t pr = 0; pr < probe.NumRows(); ++pr) {
    for (uint32_t br = index.Find(ph[pr]); br != FlatHashIndex::kNil;
         br = next[br]) {
      if (!KeysEqual(build, br, build_key, probe, pr, probe_key)) continue;
      build_sel.push_back(br);
      probe_sel.push_back(static_cast<uint32_t>(pr));
    }
  }

  // Assemble output columns by gathering from the source side.
  std::vector<VarId> out_vars = MaskToVars(build.var_mask() | probe.var_mask());
  std::vector<ColumnPtr> cols;
  cols.reserve(out_vars.size());
  for (VarId v : out_vars) {
    auto col = std::make_shared<Column>();
    int bc = build.ColIndex(v);
    if (bc >= 0) {
      col->AppendGather(*build.col(bc), build_sel);
    } else {
      col->AppendGather(*probe.col(probe.ColIndex(v)), probe_sel);
    }
    cols.push_back(std::move(col));
  }
  auto scores = std::make_shared<std::vector<double>>();
  scores->reserve(build_sel.size());
  const auto& bw = *build.weights();
  const auto& pw = *probe.weights();
  for (size_t i = 0; i < build_sel.size(); ++i) {
    scores->push_back(bw[build_sel[i]] * pw[probe_sel[i]]);
  }
  return Rel::FromColumns(std::move(out_vars), std::move(cols),
                          std::move(scores), build_sel.size());
}

namespace {

/// Shared grouping loop for both projection flavors: batch-hash the key
/// columns, assign each input row to a group via the flat index (groups
/// with equal hashes chain; real key comparison on the input columns), and
/// fold scores per group.
template <typename Init, typename Update>
Rel ProjectImpl(const Rel& in, VarMask keep_mask, Init init, Update update) {
  assert((keep_mask & ~in.var_mask()) == 0);
  std::vector<VarId> keep_vars = MaskToVars(keep_mask);
  std::vector<int> key_pos;
  key_pos.reserve(keep_vars.size());
  for (VarId v : keep_vars) key_pos.push_back(in.ColIndex(v));

  const size_t n = in.NumRows();
  std::vector<uint64_t> h = HashKeyColumns(in, key_pos);
  FlatHashIndex index(n);
  std::vector<uint32_t> group_rep;   // representative input row per group
  std::vector<uint32_t> group_next;  // chain of groups sharing a hash
  std::vector<double> acc;           // folded score per group
  const auto& w = *in.weights();
  for (size_t r = 0; r < n; ++r) {
    uint32_t& head = index.HeadFor(h[r]);
    uint32_t g = head;
    while (g != FlatHashIndex::kNil &&
           !KeysEqual(in, r, key_pos, in, group_rep[g], key_pos)) {
      g = group_next[g];
    }
    if (g == FlatHashIndex::kNil) {
      g = static_cast<uint32_t>(group_rep.size());
      group_rep.push_back(static_cast<uint32_t>(r));
      group_next.push_back(head);
      head = g;
      acc.push_back(init(w[r]));
    } else {
      acc[g] = update(acc[g], w[r]);
    }
  }

  std::vector<ColumnPtr> cols;
  cols.reserve(keep_vars.size());
  for (int c : key_pos) {
    auto col = std::make_shared<Column>();
    col->AppendGather(*in.col(c), group_rep);
    cols.push_back(std::move(col));
  }
  auto scores = std::make_shared<std::vector<double>>(std::move(acc));
  return Rel::FromColumns(std::move(keep_vars), std::move(cols),
                          std::move(scores), group_rep.size());
}

}  // namespace

Rel ProjectIndependent(const Rel& in, VarMask keep_mask) {
  // Accumulate the complement product: acc = prod(1 - s_i); final score is
  // 1 - acc, rewritten in one pass at the end.
  Rel out = ProjectImpl(
      in, keep_mask, [](double s) { return 1.0 - s; },
      [](double acc, double s) { return acc * (1.0 - s); });
  for (size_t r = 0; r < out.NumRows(); ++r) {
    out.SetScore(r, 1.0 - out.Score(r));
  }
  return out;
}

Rel ProjectDistinct(const Rel& in, VarMask keep_mask) {
  return ProjectImpl(
      in, keep_mask, [](double) { return 1.0; },
      [](double, double) { return 1.0; });
}

Result<Rel> MinMerge(const std::vector<Rel>& inputs) {
  if (inputs.empty()) return Status::InvalidArgument("MinMerge of nothing");
  const VarMask mask = inputs[0].var_mask();
  for (const auto& r : inputs) {
    if (r.var_mask() != mask) {
      return Status::InvalidArgument("MinMerge inputs differ in variables");
    }
  }
  if (inputs.size() == 1) return inputs[0];  // shallow copy: shares columns

  const int arity = inputs[0].arity();
  std::vector<int> identity(arity);
  std::iota(identity.begin(), identity.end(), 0);

  size_t total = 0;
  for (const auto& in : inputs) total += in.NumRows();

  // Groups across all inputs; a representative is an (input, row) pair.
  FlatHashIndex index(total);
  std::vector<uint32_t> group_input, group_row, group_next;
  std::vector<double> best;
  for (size_t k = 0; k < inputs.size(); ++k) {
    const Rel& in = inputs[k];
    std::vector<uint64_t> h = HashKeyColumns(in, identity);
    const auto& w = *in.weights();
    for (size_t r = 0; r < in.NumRows(); ++r) {
      uint32_t& head = index.HeadFor(h[r]);
      uint32_t g = head;
      while (g != FlatHashIndex::kNil &&
             !KeysEqual(in, r, identity, inputs[group_input[g]], group_row[g],
                        identity)) {
        g = group_next[g];
      }
      if (g == FlatHashIndex::kNil) {
        g = static_cast<uint32_t>(group_row.size());
        group_input.push_back(static_cast<uint32_t>(k));
        group_row.push_back(static_cast<uint32_t>(r));
        group_next.push_back(head);
        head = g;
        best.push_back(w[r]);
      } else {
        best[g] = std::min(best[g], w[r]);
      }
    }
  }

  std::vector<ColumnPtr> cols;
  cols.reserve(arity);
  for (int c = 0; c < arity; ++c) {
    // Fast path when every input stores column c uniformly with one type:
    // copy raw 64-bit payloads without per-cell Value construction.
    bool uniform = true;
    bool have_type = false;
    ValueType type = ValueType::kInt64;
    for (const auto& in : inputs) {
      const Column& cc = *in.col(c);
      if (!cc.uniform()) {
        uniform = false;
        break;
      }
      if (cc.size() == 0) continue;
      if (!have_type) {
        type = cc.type();
        have_type = true;
      } else if (cc.type() != type) {
        uniform = false;
        break;
      }
    }
    auto col = std::make_shared<Column>(type);
    col->Reserve(group_row.size());
    if (uniform) {
      for (size_t g = 0; g < group_row.size(); ++g) {
        col->AppendRaw(inputs[group_input[g]].col(c)->RawBits(group_row[g]));
      }
    } else {
      for (size_t g = 0; g < group_row.size(); ++g) {
        col->Append(inputs[group_input[g]].At(group_row[g], c));
      }
    }
    cols.push_back(std::move(col));
  }
  auto scores = std::make_shared<std::vector<double>>(std::move(best));
  return Rel::FromColumns(inputs[0].vars(), std::move(cols), std::move(scores),
                          group_row.size());
}

}  // namespace dissodb
