// Intermediate results of plan evaluation: a bag of rows over a set of
// query variables, each row carrying a probability score.
#ifndef DISSODB_EXEC_REL_H_
#define DISSODB_EXEC_REL_H_

#include <span>
#include <string>
#include <vector>

#include "src/common/value.h"
#include "src/query/cq.h"

namespace dissodb {

/// \brief Columns are query variables in ascending VarId order (canonical),
/// so relations over the same variable set align positionally.
class Rel {
 public:
  explicit Rel(std::vector<VarId> vars);

  static Rel ForMask(VarMask mask) { return Rel(MaskToVars(mask)); }

  const std::vector<VarId>& vars() const { return vars_; }
  VarMask var_mask() const { return mask_; }
  int arity() const { return static_cast<int>(vars_.size()); }
  size_t NumRows() const {
    return arity() == 0 ? zero_arity_rows_ : data_.size() / arity();
  }

  void Reserve(size_t rows) {
    data_.reserve(rows * arity());
    scores_.reserve(rows);
  }
  void AddRow(std::span<const Value> row, double score);

  std::span<const Value> Row(size_t r) const {
    return {data_.data() + r * arity(), static_cast<size_t>(arity())};
  }
  Value At(size_t r, int c) const { return data_[r * arity() + c]; }
  double Score(size_t r) const { return scores_[r]; }
  void SetScore(size_t r, double s) { scores_[r] = s; }

  /// Column position of variable `v`, or -1.
  int ColIndex(VarId v) const;

  std::string ToString(const ConjunctiveQuery& q, size_t max_rows = 20) const;

 private:
  std::vector<VarId> vars_;  // ascending
  VarMask mask_ = 0;
  std::vector<Value> data_;
  std::vector<double> scores_;
  size_t zero_arity_rows_ = 0;
};

/// Hashes the values of `row` at `positions`.
size_t HashRowKey(std::span<const Value> row, std::span<const int> positions);

/// True iff the two rows agree on their respective key positions.
bool RowKeyEquals(std::span<const Value> a, std::span<const int> pa,
                  std::span<const Value> b, std::span<const int> pb);

}  // namespace dissodb

#endif  // DISSODB_EXEC_REL_H_
