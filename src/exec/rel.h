// Intermediate results of plan evaluation: a bag of rows over a set of
// query variables, each row carrying a probability score.
#ifndef DISSODB_EXEC_REL_H_
#define DISSODB_EXEC_REL_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/common/value.h"
#include "src/query/cq.h"
#include "src/storage/columnar.h"

namespace dissodb {

/// \brief Columns are query variables in ascending VarId order (canonical),
/// so relations over the same variable set align positionally.
///
/// Storage is columnar (one shared typed column per variable plus a score
/// column, see ColumnarRows); scans and pass-through operators share input
/// columns zero-copy, and copies are shallow.
class Rel : public ColumnarRows {
 public:
  explicit Rel(std::vector<VarId> vars);

  static Rel ForMask(VarMask mask) { return Rel(MaskToVars(mask)); }

  /// Zero-copy constructor: adopts existing columns (one per var, ascending
  /// var order) and a score column without copying payloads.
  static Rel FromColumns(std::vector<VarId> vars, std::vector<ColumnPtr> cols,
                         WeightsPtr scores, size_t rows);

  const std::vector<VarId>& vars() const { return vars_; }
  VarMask var_mask() const { return mask_; }
  int arity() const { return static_cast<int>(vars_.size()); }

  void AddRow(std::span<const Value> row, double score) {
    AppendRowImpl(row, score);
  }

  double Score(size_t r) const { return Weight(r); }
  void SetScore(size_t r, double s) { MutableWeights()->Set(r, s); }

  /// Appends every row of `src` (same variable set) to this relation.
  /// Sealed chunks of this relation stay shared; cost is O(src rows).
  void AppendRows(const Rel& src);

  /// Column position of variable `v`, or -1.
  int ColIndex(VarId v) const;

  std::string ToString(const ConjunctiveQuery& q, size_t max_rows = 20) const;

 private:
  std::vector<VarId> vars_;  // ascending
  VarMask mask_ = 0;
};

/// Renames the variables of `in` through `var_map` (var_map[v] = new id of
/// variable v) and re-sorts the columns into the new ascending-VarId order.
/// Zero-copy: the output shares `in`'s columns and scores. Used by the
/// prepared-query path to map an answer relation computed in canonical
/// variable space back to the caller's variable ids.
Rel RemapRelVars(const Rel& in, const std::vector<VarId>& var_map);

}  // namespace dissodb

#endif  // DISSODB_EXEC_REL_H_
