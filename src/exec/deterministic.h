// Deterministic query evaluation ("standard SQL" baseline): the distinct
// answer tuples of q on D, ignoring probabilities.
#ifndef DISSODB_EXEC_DETERMINISTIC_H_
#define DISSODB_EXEC_DETERMINISTIC_H_

#include <unordered_map>

#include "src/common/status.h"
#include "src/exec/rel.h"
#include "src/query/cq.h"
#include "src/storage/database.h"
#include "src/storage/snapshot.h"

namespace dissodb {

/// Evaluates q deterministically: joins all atoms (greedy order) and
/// projects the distinct head tuples. All scores are 1. Reads the pinned
/// snapshot.
Result<Rel> EvaluateDeterministic(
    const Snapshot& snap, const ConjunctiveQuery& q,
    const std::unordered_map<int, const Table*>& overrides = {});

/// Legacy shim over the live head of `db`.
Result<Rel> EvaluateDeterministic(
    const Database& db, const ConjunctiveQuery& q,
    const std::unordered_map<int, const Table*>& overrides = {});

}  // namespace dissodb

#endif  // DISSODB_EXEC_DETERMINISTIC_H_
