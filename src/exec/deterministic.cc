#include "src/exec/deterministic.h"

#include "src/exec/operators.h"

namespace dissodb {

namespace {

template <typename Catalog>
Result<Rel> EvaluateDeterministicImpl(
    const Catalog& catalog, const ConjunctiveQuery& q,
    const std::unordered_map<int, const Table*>& overrides) {
  std::vector<Rel> inputs;
  for (int i = 0; i < q.num_atoms(); ++i) {
    const Table* override_table = nullptr;
    auto it = overrides.find(i);
    if (it != overrides.end()) override_table = it->second;
    auto rel = ScanAtom(catalog, q, i, override_table);
    if (!rel.ok()) return rel.status();
    // Early projection: deterministic evaluation only needs head variables
    // and join variables; dropping the rest keeps intermediates small.
    inputs.push_back(std::move(*rel));
  }
  std::vector<bool> used(inputs.size(), false);
  size_t first = 0;
  for (size_t i = 1; i < inputs.size(); ++i) {
    if (inputs[i].NumRows() < inputs[first].NumRows()) first = i;
  }
  used[first] = true;
  Rel current = inputs[first];
  for (size_t step = 1; step < inputs.size(); ++step) {
    int best = -1;
    bool best_shares = false;
    for (size_t i = 0; i < inputs.size(); ++i) {
      if (used[i]) continue;
      bool shares = (inputs[i].var_mask() & current.var_mask()) != 0;
      if (best < 0 || (shares && !best_shares) ||
          (shares == best_shares &&
           inputs[i].NumRows() < inputs[best].NumRows())) {
        best = static_cast<int>(i);
        best_shares = shares;
      }
    }
    used[best] = true;
    current = HashJoin(current, inputs[best]);
  }
  return ProjectDistinct(current, q.HeadMask() & current.var_mask());
}

}  // namespace

Result<Rel> EvaluateDeterministic(
    const Snapshot& snap, const ConjunctiveQuery& q,
    const std::unordered_map<int, const Table*>& overrides) {
  return EvaluateDeterministicImpl(snap, q, overrides);
}

Result<Rel> EvaluateDeterministic(
    const Database& db, const ConjunctiveQuery& q,
    const std::unordered_map<int, const Table*>& overrides) {
  return EvaluateDeterministicImpl(db, q, overrides);
}

}  // namespace dissodb
