// Optimization 3 (Section 4.3): deterministic semi-join reduction.
//
// Before any probabilistic evaluation, every input relation is reduced to
// the tuples that can participate in some full join of the query. Removed
// tuples appear in no lineage (of q or of any dissociation q^Delta, whose
// joins are strictly finer), so all plan scores are unchanged while the
// expensive probabilistic group-bys see far fewer rows.
#ifndef DISSODB_EXEC_SEMIJOIN_H_
#define DISSODB_EXEC_SEMIJOIN_H_

#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/query/cq.h"
#include "src/storage/database.h"
#include "src/storage/snapshot.h"

namespace dissodb {

struct SemiJoinStats {
  std::vector<size_t> rows_before;
  std::vector<size_t> rows_after;
  int passes = 0;
  /// Build sides large enough to get a blocked Bloom pre-filter, and probe
  /// rows the filter rejected without touching the hash index. The filter
  /// has no false negatives, so it never changes which rows survive.
  size_t bloom_filters_built = 0;
  size_t bloom_probes_skipped = 0;
};

/// Pairwise semi-join reduction to fixpoint (bounded by `max_passes`):
/// repeatedly removes from each atom's table the tuples with no match in
/// some other atom on their shared variables. Returns one reduced table per
/// atom. For acyclic (e.g. hierarchical or chain/star) queries two passes
/// reach the full reduction. Catalog bindings resolve against the pinned
/// snapshot `snap`, so a reduction is internally consistent no matter how
/// many commits run concurrently.
Result<std::vector<Table>> SemiJoinReduce(
    const Snapshot& snap, const ConjunctiveQuery& q,
    const std::unordered_map<int, const Table*>& overrides = {},
    SemiJoinStats* stats = nullptr, int max_passes = 4);

/// Legacy shim resolving against the live head of `db` (single-threaded
/// callers; no snapshot-isolation guarantees under concurrent writers).
Result<std::vector<Table>> SemiJoinReduce(
    const Database& db, const ConjunctiveQuery& q,
    const std::unordered_map<int, const Table*>& overrides = {},
    SemiJoinStats* stats = nullptr, int max_passes = 4);

/// Overrides the build-side row count at which reductions add a Bloom
/// pre-filter (default 4096; env DISSODB_BLOOM_MIN_ROWS overrides the
/// default, DISSODB_DISABLE_BLOOM disables the filter entirely). Tests use
/// 1 to force filters onto tiny inputs and SIZE_MAX to force them off.
void SetSemiJoinBloomMinRowsForTesting(size_t rows);

}  // namespace dissodb

#endif  // DISSODB_EXEC_SEMIJOIN_H_
