#include "src/exec/rel.h"

#include <algorithm>
#include <cassert>

#include "src/common/hash.h"
#include "src/common/string_util.h"

namespace dissodb {

Rel::Rel(std::vector<VarId> vars) : vars_(std::move(vars)) {
  assert(std::is_sorted(vars_.begin(), vars_.end()));
  for (VarId v : vars_) mask_ |= MaskOf(v);
  InitCols(static_cast<int>(vars_.size()));
}

Rel Rel::FromColumns(std::vector<VarId> vars, std::vector<ColumnPtr> cols,
                     WeightsPtr scores, size_t rows) {
  Rel out(std::move(vars));
  assert(cols.size() == out.vars_.size());
  assert(scores && scores->size() == rows);
  out.AdoptImpl(std::move(cols), std::move(scores), rows);
  return out;
}

void Rel::AppendRows(const Rel& src) {
  assert(src.mask_ == mask_);
  const size_t n = src.NumRows();
  if (n == 0) return;
  std::vector<uint32_t> sel(n);
  for (size_t i = 0; i < n; ++i) sel[i] = static_cast<uint32_t>(i);
  GatherImpl(src, sel);
}

int Rel::ColIndex(VarId v) const {
  auto it = std::lower_bound(vars_.begin(), vars_.end(), v);
  if (it == vars_.end() || *it != v) return -1;
  return static_cast<int>(it - vars_.begin());
}

std::string Rel::ToString(const ConjunctiveQuery& q, size_t max_rows) const {
  std::vector<std::string> names;
  for (VarId v : vars_) names.push_back(q.var_name(v));
  std::string out = "Rel(" + Join(names, ",") + ") [" +
                    std::to_string(NumRows()) + " rows]\n";
  for (size_t r = 0; r < NumRows() && r < max_rows; ++r) {
    out += "  (";
    for (int c = 0; c < arity(); ++c) {
      if (c > 0) out += ", ";
      out += At(r, c).ToString();
    }
    out += StrFormat(") score=%.6f\n", Score(r));
  }
  if (NumRows() > max_rows) out += "  ...\n";
  return out;
}

Rel RemapRelVars(const Rel& in, const std::vector<VarId>& var_map) {
  std::vector<std::pair<VarId, int>> mapped;  // (new var id, old column)
  mapped.reserve(in.vars().size());
  for (int c = 0; c < in.arity(); ++c) {
    VarId v = in.vars()[c];
    assert(v >= 0 && v < static_cast<VarId>(var_map.size()) &&
           var_map[v] >= 0 && "remap must cover every column variable");
    mapped.emplace_back(var_map[v], c);
  }
  std::sort(mapped.begin(), mapped.end());
  std::vector<VarId> vars;
  std::vector<ColumnPtr> cols;
  vars.reserve(mapped.size());
  cols.reserve(mapped.size());
  for (const auto& [v, c] : mapped) {
    vars.push_back(v);
    cols.push_back(in.col(c));
  }
  return Rel::FromColumns(std::move(vars), std::move(cols), in.weights(),
                          in.NumRows());
}

}  // namespace dissodb
