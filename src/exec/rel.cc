#include "src/exec/rel.h"

#include <algorithm>
#include <cassert>

#include "src/common/hash.h"
#include "src/common/string_util.h"

namespace dissodb {

Rel::Rel(std::vector<VarId> vars) : vars_(std::move(vars)) {
  assert(std::is_sorted(vars_.begin(), vars_.end()));
  for (VarId v : vars_) mask_ |= MaskOf(v);
}

void Rel::AddRow(std::span<const Value> row, double score) {
  assert(static_cast<int>(row.size()) == arity());
  if (arity() == 0) {
    ++zero_arity_rows_;
  } else {
    data_.insert(data_.end(), row.begin(), row.end());
  }
  scores_.push_back(score);
}

int Rel::ColIndex(VarId v) const {
  auto it = std::lower_bound(vars_.begin(), vars_.end(), v);
  if (it == vars_.end() || *it != v) return -1;
  return static_cast<int>(it - vars_.begin());
}

std::string Rel::ToString(const ConjunctiveQuery& q, size_t max_rows) const {
  std::vector<std::string> names;
  for (VarId v : vars_) names.push_back(q.var_name(v));
  std::string out = "Rel(" + Join(names, ",") + ") [" +
                    std::to_string(NumRows()) + " rows]\n";
  for (size_t r = 0; r < NumRows() && r < max_rows; ++r) {
    out += "  (";
    for (int c = 0; c < arity(); ++c) {
      if (c > 0) out += ", ";
      out += At(r, c).ToString();
    }
    out += StrFormat(") score=%.6f\n", Score(r));
  }
  if (NumRows() > max_rows) out += "  ...\n";
  return out;
}

size_t HashRowKey(std::span<const Value> row, std::span<const int> positions) {
  size_t h = 0x2545f491;
  for (int p : positions) HashCombine(&h, row[p].Hash());
  return h;
}

bool RowKeyEquals(std::span<const Value> a, std::span<const int> pa,
                  std::span<const Value> b, std::span<const int> pb) {
  assert(pa.size() == pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    if (a[pa[i]] != b[pb[i]]) return false;
  }
  return true;
}

}  // namespace dissodb
