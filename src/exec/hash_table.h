// Flat open-addressing hash index for the vectorized operators.
//
// One allocation, power-of-two capacity, linear probing. A slot stores a
// 64-bit key hash and the head of a chain of entries (rows or groups) that
// share that hash; callers keep the chain links in their own `next` array
// and compare actual key columns when walking a chain, so hash collisions
// between distinct keys are handled by the caller's comparison, never by
// the table. Sized once up front (entry count is known for build sides and
// bounded for groupings), so there is no rehashing on the hot path.
#ifndef DISSODB_EXEC_HASH_TABLE_H_
#define DISSODB_EXEC_HASH_TABLE_H_

#include <cstdint>
#include <vector>

namespace dissodb {

class FlatHashIndex {
 public:
  static constexpr uint32_t kNil = 0xFFFFFFFFu;

  /// Prepares the table for up to `n` distinct hash values (load factor
  /// <= 0.5, minimum capacity 16).
  explicit FlatHashIndex(size_t n) {
    size_t cap = 16;
    while (cap < 2 * n) cap <<= 1;
    mask_ = cap - 1;
    hashes_.assign(cap, 0);
    heads_.assign(cap, kNil);
  }

  /// Returns a mutable reference to the chain head for hash `h`, claiming
  /// an empty slot if the hash is new (the returned head is then kNil and
  /// the caller must link at least one entry into it).
  uint32_t& HeadFor(uint64_t h) {
    size_t i = h & mask_;
    while (true) {
      if (heads_[i] == kNil) {
        hashes_[i] = h;
        return heads_[i];
      }
      if (hashes_[i] == h) return heads_[i];
      i = (i + 1) & mask_;
    }
  }

  /// Chain head for hash `h`, or kNil if absent. Read-only probe.
  uint32_t Find(uint64_t h) const {
    size_t i = h & mask_;
    while (heads_[i] != kNil) {
      if (hashes_[i] == h) return heads_[i];
      i = (i + 1) & mask_;
    }
    return kNil;
  }

 private:
  size_t mask_;
  std::vector<uint64_t> hashes_;
  std::vector<uint32_t> heads_;
};

}  // namespace dissodb

#endif  // DISSODB_EXEC_HASH_TABLE_H_
