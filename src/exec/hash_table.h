// Flat open-addressing hash index for the vectorized operators.
//
// One backing allocation, power-of-two capacity, linear probing. A slot
// stores a 32-bit tag (the high hash bits; the low bits picked the
// bucket) and the head of a chain of entries (rows or groups); callers
// keep the chain links in their own `next` array and compare actual key
// columns when walking a chain, so collisions between distinct keys —
// whether from full-hash collisions or from two hashes sharing a
// (bucket, tag) pair — only lengthen a chain, they never change results.
// Sized once up front (entry count is known for build sides and bounded
// for groupings), so there is no rehashing on the hot path.
//
// Layout: tag and head are interleaved in one 8-byte slot (not parallel
// arrays), so a probe touches exactly one cache line — at build sides in
// the tens of megabytes every probe is a miss, and the compact slot both
// halves the table bytes (less TLB and cache pressure) and makes the
// all-0xFF memset initialization cheap. Probe loops that know their
// hashes in advance (batch probes over a precomputed hash vector) should
// PrefetchSlot() a block or a fixed lookahead ahead of the walk; the
// slot miss is the dominant stall in large joins and groupings.
//
// Key hashes are produced upstream by HashKeyColumns, which iterates the
// chunked columns span-at-a-time (and, given a scheduler, fans out in
// chunk-aligned morsels), so the flat index never touches column storage —
// it only ever sees the precomputed 64-bit hashes.
//
// Backing stores are recycled through a thread-local scratch slot: a
// query evaluates many operators, each of which would otherwise allocate,
// fault in, and give back tens of megabytes (for large inputs glibc
// serves these from fresh mmaps, so every operator call pays minor faults
// and page zeroing for the whole table). Reuse keeps the hot index memory
// resident. kNil is all-one bytes, so one memset of the slot array is the
// entire initialization; tag fields are written when a slot is claimed,
// never read before.
#ifndef DISSODB_EXEC_HASH_TABLE_H_
#define DISSODB_EXEC_HASH_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <utility>

namespace dissodb {

namespace internal {

/// One cached backing buffer per thread. Scheduler workers are long-lived,
/// so per-thread reuse covers both the sequential path and morsel tasks;
/// thread-locality makes it trivially race-free. Buffers above the cap are
/// never cached (a one-off giant join must not pin ~cap bytes per worker
/// thread for the rest of the process; the cap bounds steady-state scratch
/// at num_threads * kMaxCachedBytes worst case).
class IndexScratch {
 public:
  struct Buf {
    std::unique_ptr<std::byte[]> mem;
    size_t bytes = 0;
  };

  static constexpr size_t kMaxCachedBytes = size_t{64} << 20;

  static Buf Acquire(size_t bytes) {
    Buf& cached = Slot();
    if (cached.bytes >= bytes) {
      Buf out = std::move(cached);
      cached.bytes = 0;
      return out;
    }
    return Buf{std::unique_ptr<std::byte[]>(new std::byte[bytes]), bytes};
  }

  static void Release(Buf b) {
    if (b.bytes == 0 || b.bytes > kMaxCachedBytes) return;
    Buf& cached = Slot();
    if (b.bytes > cached.bytes) cached = std::move(b);
  }

 private:
  static Buf& Slot() {
    static thread_local Buf slot;
    return slot;
  }
};

}  // namespace internal

class FlatHashIndex {
 public:
  static constexpr uint32_t kNil = 0xFFFFFFFFu;

  /// Prepares the table for up to `n` distinct hash values (load factor
  /// <= 0.5, minimum capacity 16).
  explicit FlatHashIndex(size_t n) {
    size_t cap = 16;
    while (cap < 2 * n) cap <<= 1;
    mask_ = cap - 1;
    buf_ = internal::IndexScratch::Acquire(cap * sizeof(Slot));
    slots_ = reinterpret_cast<Slot*>(buf_.mem.get());
    // kNil is all-one bytes; hash fields are written when first claimed and
    // never read before, so one memset is the entire initialization.
    std::memset(slots_, 0xFF, cap * sizeof(Slot));
  }

  ~FlatHashIndex() { internal::IndexScratch::Release(std::move(buf_)); }

  FlatHashIndex(FlatHashIndex&& o) noexcept
      : mask_(o.mask_),
        buf_(std::move(o.buf_)),
        slots_(std::exchange(o.slots_, nullptr)) {
    o.buf_.bytes = 0;
  }
  FlatHashIndex& operator=(FlatHashIndex&&) = delete;
  FlatHashIndex(const FlatHashIndex&) = delete;
  FlatHashIndex& operator=(const FlatHashIndex&) = delete;

  /// Returns a mutable reference to the chain head for hash `h`, claiming
  /// an empty slot if the hash is new (the returned head is then kNil and
  /// the caller must link at least one entry into it).
  uint32_t& HeadFor(uint64_t h) {
    const uint32_t tag = static_cast<uint32_t>(h >> 32);
    size_t i = h & mask_;
    while (true) {
      Slot& s = slots_[i];
      if (s.head == kNil) {
        s.tag = tag;
        return s.head;
      }
      if (s.tag == tag) return s.head;
      i = (i + 1) & mask_;
    }
  }

  /// Chain head for hash `h`, or kNil if absent. Read-only probe.
  uint32_t Find(uint64_t h) const {
    const uint32_t tag = static_cast<uint32_t>(h >> 32);
    size_t i = h & mask_;
    while (slots_[i].head != kNil) {
      if (slots_[i].tag == tag) return slots_[i].head;
      i = (i + 1) & mask_;
    }
    return kNil;
  }

  /// Prefetches the home slot of hash `h` into cache. Linear-probing
  /// displacement is short at load factor 0.5, so the home line covers the
  /// overwhelming majority of probes.
  void PrefetchSlot(uint64_t h) const {
    __builtin_prefetch(&slots_[h & mask_], 0, 1);
  }

  /// Write-intent variant for insert-side lookahead (HeadFor claims or
  /// links into the slot it lands on, so fetch the line exclusive).
  void PrefetchSlotWrite(uint64_t h) const {
    __builtin_prefetch(&slots_[h & mask_], 1, 1);
  }

 private:
  struct Slot {
    uint32_t tag;   // high 32 hash bits (the low bits picked the bucket)
    uint32_t head;  // chain head entry id, or kNil
  };

  size_t mask_;
  internal::IndexScratch::Buf buf_;
  Slot* slots_;
};

}  // namespace dissodb

#endif  // DISSODB_EXEC_HASH_TABLE_H_
