// Flat open-addressing hash index for the vectorized operators.
//
// One backing allocation, power-of-two capacity, linear probing. A slot
// stores a 64-bit key hash and the head of a chain of entries (rows or
// groups) that share that hash; callers keep the chain links in their own
// `next` array and compare actual key columns when walking a chain, so
// hash collisions between distinct keys are handled by the caller's
// comparison, never by the table. Sized once up front (entry count is
// known for build sides and bounded for groupings), so there is no
// rehashing on the hot path.
//
// Key hashes are produced upstream by HashKeyColumns, which iterates the
// chunked columns span-at-a-time (and, given a scheduler, fans out in
// chunk-aligned morsels), so the flat index never touches column storage —
// it only ever sees the precomputed 64-bit hashes.
//
// Backing stores are recycled through a thread-local scratch slot: a
// query evaluates many operators, each of which would otherwise allocate,
// fault in, and give back tens of megabytes (for large inputs glibc
// serves these from fresh mmaps, so every operator call pays minor faults
// and page zeroing for the whole table). Reuse keeps the hot index memory
// resident. Only the heads need initialization (kNil is all-one bytes, a
// single memset); hash slots are written when claimed, never read before.
#ifndef DISSODB_EXEC_HASH_TABLE_H_
#define DISSODB_EXEC_HASH_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <utility>

namespace dissodb {

namespace internal {

/// One cached backing buffer per thread. Scheduler workers are long-lived,
/// so per-thread reuse covers both the sequential path and morsel tasks;
/// thread-locality makes it trivially race-free. Buffers above the cap are
/// never cached (a one-off giant join must not pin ~cap bytes per worker
/// thread for the rest of the process; the cap bounds steady-state scratch
/// at num_threads * kMaxCachedBytes worst case).
class IndexScratch {
 public:
  struct Buf {
    std::unique_ptr<std::byte[]> mem;
    size_t bytes = 0;
  };

  static constexpr size_t kMaxCachedBytes = size_t{64} << 20;

  static Buf Acquire(size_t bytes) {
    Buf& cached = Slot();
    if (cached.bytes >= bytes) {
      Buf out = std::move(cached);
      cached.bytes = 0;
      return out;
    }
    return Buf{std::unique_ptr<std::byte[]>(new std::byte[bytes]), bytes};
  }

  static void Release(Buf b) {
    if (b.bytes == 0 || b.bytes > kMaxCachedBytes) return;
    Buf& cached = Slot();
    if (b.bytes > cached.bytes) cached = std::move(b);
  }

 private:
  static Buf& Slot() {
    static thread_local Buf slot;
    return slot;
  }
};

}  // namespace internal

class FlatHashIndex {
 public:
  static constexpr uint32_t kNil = 0xFFFFFFFFu;

  /// Prepares the table for up to `n` distinct hash values (load factor
  /// <= 0.5, minimum capacity 16).
  explicit FlatHashIndex(size_t n) {
    size_t cap = 16;
    while (cap < 2 * n) cap <<= 1;
    mask_ = cap - 1;
    buf_ = internal::IndexScratch::Acquire(cap * (sizeof(uint64_t) +
                                                  sizeof(uint32_t)));
    hashes_ = reinterpret_cast<uint64_t*>(buf_.mem.get());
    heads_ = reinterpret_cast<uint32_t*>(hashes_ + cap);
    // kNil is all-one bytes; hash slots are written when first claimed and
    // never read before, so the heads memset is the entire initialization.
    std::memset(heads_, 0xFF, cap * sizeof(uint32_t));
  }

  ~FlatHashIndex() { internal::IndexScratch::Release(std::move(buf_)); }

  FlatHashIndex(FlatHashIndex&& o) noexcept
      : mask_(o.mask_),
        buf_(std::move(o.buf_)),
        hashes_(std::exchange(o.hashes_, nullptr)),
        heads_(std::exchange(o.heads_, nullptr)) {
    o.buf_.bytes = 0;
  }
  FlatHashIndex& operator=(FlatHashIndex&&) = delete;
  FlatHashIndex(const FlatHashIndex&) = delete;
  FlatHashIndex& operator=(const FlatHashIndex&) = delete;

  /// Returns a mutable reference to the chain head for hash `h`, claiming
  /// an empty slot if the hash is new (the returned head is then kNil and
  /// the caller must link at least one entry into it).
  uint32_t& HeadFor(uint64_t h) {
    size_t i = h & mask_;
    while (true) {
      if (heads_[i] == kNil) {
        hashes_[i] = h;
        return heads_[i];
      }
      if (hashes_[i] == h) return heads_[i];
      i = (i + 1) & mask_;
    }
  }

  /// Chain head for hash `h`, or kNil if absent. Read-only probe.
  uint32_t Find(uint64_t h) const {
    size_t i = h & mask_;
    while (heads_[i] != kNil) {
      if (hashes_[i] == h) return heads_[i];
      i = (i + 1) & mask_;
    }
    return kNil;
  }

 private:
  size_t mask_;
  internal::IndexScratch::Buf buf_;
  uint64_t* hashes_;
  uint32_t* heads_;
};

}  // namespace dissodb

#endif  // DISSODB_EXEC_HASH_TABLE_H_
