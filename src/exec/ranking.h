// Answer ranking utilities: turning score relations into ranked lists and
// aligning answer tuples across evaluation methods.
#ifndef DISSODB_EXEC_RANKING_H_
#define DISSODB_EXEC_RANKING_H_

#include <string>
#include <vector>

#include "src/exec/rel.h"
#include "src/storage/database.h"

namespace dissodb {

/// One ranked answer: the head-variable values and a score.
struct RankedAnswer {
  std::vector<Value> tuple;
  double score;
};

/// Extracts answers from a score relation, sorted by descending score
/// (ties broken by tuple value for determinism).
std::vector<RankedAnswer> RankAnswers(const Rel& rel);

/// Aligns `scores` (any order) to the tuple order of `reference`; answers
/// missing from `scores` get `missing_value`. Useful for computing ranking
/// metrics where both rankings must index the same answer set.
std::vector<double> AlignScores(const std::vector<RankedAnswer>& reference,
                                const std::vector<RankedAnswer>& scores,
                                double missing_value = 0.0);

/// Pretty-prints a ranking (string values resolved through `db`).
std::string RankingToString(const std::vector<RankedAnswer>& ranking,
                            const Database& db, size_t max_rows = 10);

}  // namespace dissodb

#endif  // DISSODB_EXEC_RANKING_H_
