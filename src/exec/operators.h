// Relational operators with extensional probability semantics (Def. 4):
// joins multiply scores, projections-with-duplicate-elimination combine
// scores as 1 - prod(1 - s), and Min merges score-equivalent results.
#ifndef DISSODB_EXEC_OPERATORS_H_
#define DISSODB_EXEC_OPERATORS_H_

#include <vector>

#include "src/common/status.h"
#include "src/exec/rel.h"
#include "src/query/cq.h"
#include "src/storage/database.h"

namespace dissodb {

class Scheduler;  // src/serve/scheduler.h

/// One equality constraint an atom imposes on its table: column `pos` must
/// equal column `other_pos` (repeated variable) or `constant` (other_pos -1).
struct AtomEqCheck {
  int pos;
  int other_pos;
  Value constant;
};

/// How an atom binds to its table: the first table column of each variable
/// (indexed by VarId; -1 when the variable does not occur) plus the equality
/// checks a scan or reduction must apply. Shared by ScanAtom and the
/// semi-join reducer so selection semantics cannot diverge.
struct AtomBinding {
  std::vector<int> first_pos_of_var;
  std::vector<AtomEqCheck> checks;
};
AtomBinding BindAtom(const Atom& atom);

/// In-place filters `sel` down to the rows of `t` satisfying `check`.
void ApplyAtomCheck(const Table& t, const AtomEqCheck& check,
                    std::vector<uint32_t>* sel);

/// Scans the table bound to atom `atom_idx`, applying constant selections
/// and repeated-variable equalities, and emitting the atom's distinct
/// variables as columns. `table` overrides the catalog binding (used for
/// per-query selections and semi-join-reduced inputs).
Result<Rel> ScanAtom(const Database& db, const ConjunctiveQuery& q,
                     int atom_idx, const Table* table = nullptr);

/// Natural hash join; scores multiply.
///
/// With a scheduler and a large enough input, the build side is partitioned
/// by hash prefix (one flat index per partition, built in parallel) and the
/// probe side is split into row-range morsels fanned out on the pool. The
/// parallel path emits rows in exactly the sequential order (morsel outputs
/// concatenate in probe-row order; per-partition chains preserve the global
/// insertion order), so results are bit-identical either way.
Rel HashJoin(const Rel& left, const Rel& right, Scheduler* scheduler = nullptr);

/// Projection with duplicate elimination onto `keep_mask` (must be a subset
/// of the input variables); scores combine independently:
/// s(group) = 1 - prod(1 - s_i).
///
/// With a scheduler and a large enough input, rows are partitioned by key
/// hash prefix and each partition is grouped independently; groups are then
/// re-sorted by global first-occurrence row, reproducing the sequential
/// group order and fold order bit-for-bit.
Rel ProjectIndependent(const Rel& in, VarMask keep_mask,
                       Scheduler* scheduler = nullptr);

/// Deterministic projection: distinct rows, scores forced to 1.
Rel ProjectDistinct(const Rel& in, VarMask keep_mask,
                    Scheduler* scheduler = nullptr);

/// Per-row minimum across score-equivalent inputs (same variable sets and,
/// for plans of the same query, the same row sets). Rows present in only
/// some inputs keep the minimum over the inputs containing them.
Result<Rel> MinMerge(const std::vector<Rel>& inputs);

}  // namespace dissodb

#endif  // DISSODB_EXEC_OPERATORS_H_
