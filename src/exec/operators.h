// Relational operators with extensional probability semantics (Def. 4):
// joins multiply scores, projections-with-duplicate-elimination combine
// scores as 1 - prod(1 - s), and Min merges score-equivalent results.
#ifndef DISSODB_EXEC_OPERATORS_H_
#define DISSODB_EXEC_OPERATORS_H_

#include <vector>

#include "src/common/status.h"
#include "src/exec/rel.h"
#include "src/query/cq.h"
#include "src/storage/database.h"
#include "src/storage/snapshot.h"

namespace dissodb {

class Scheduler;  // src/serve/scheduler.h

/// One equality constraint an atom imposes on its table: column `pos` must
/// equal column `other_pos` (repeated variable) or `constant` (other_pos -1).
struct AtomEqCheck {
  int pos;
  int other_pos;
  Value constant;
};

/// How an atom binds to its table: the first table column of each variable
/// (indexed by VarId; -1 when the variable does not occur) plus the equality
/// checks a scan or reduction must apply. Shared by ScanAtom and the
/// semi-join reducer so selection semantics cannot diverge.
struct AtomBinding {
  std::vector<int> first_pos_of_var;
  std::vector<AtomEqCheck> checks;
};
AtomBinding BindAtom(const Atom& atom);

/// In-place filters `sel` down to the rows of `t` satisfying `check`.
void ApplyAtomCheck(const Table& t, const AtomEqCheck& check,
                    std::vector<uint32_t>* sel);

/// Observability counters for the chunked scan path, accumulated per
/// evaluator and surfaced through EngineStats / plan_explorer.
struct ChunkedScanStats {
  size_t filtered_scans = 0;   ///< scans that ran the filtered path
  size_t parallel_scans = 0;   ///< ... of which fanned out chunk morsels
  size_t chunks_scanned = 0;   ///< chunks actually filtered
  size_t chunks_pruned = 0;    ///< chunks skipped entirely via zone maps
  size_t rows_scanned = 0;     ///< rows in the scanned (non-pruned) chunks
  size_t rows_selected = 0;    ///< rows surviving the selection

  void MergeFrom(const ChunkedScanStats& o) {
    filtered_scans += o.filtered_scans;
    parallel_scans += o.parallel_scans;
    chunks_scanned += o.chunks_scanned;
    chunks_pruned += o.chunks_pruned;
    rows_scanned += o.rows_scanned;
    rows_selected += o.rows_selected;
  }
};

/// Scans the table bound to atom `atom_idx`, applying constant selections
/// and repeated-variable equalities, and emitting the atom's distinct
/// variables as columns. The catalog binding resolves against `snap` — an
/// immutable snapshot, so concurrent commits cannot change what a scan
/// reads mid-flight; `table` overrides it (per-query selections and
/// semi-join-reduced inputs).
///
/// The unfiltered scan is zero-copy. The filtered scan is chunk-at-a-time:
/// per-chunk zone maps prune chunks that cannot contain a constant
/// predicate's value, each surviving chunk yields one selection vector,
/// and — with a scheduler and a large enough table — chunks are filtered
/// and output columns assembled in parallel. Per-chunk selections always
/// concatenate in chunk order, so the emitted Rel is bit-identical (row
/// order included) with or without a scheduler. `stats`, if given,
/// accumulates the chunk counters.
Result<Rel> ScanAtom(const Snapshot& snap, const ConjunctiveQuery& q,
                     int atom_idx, const Table* table = nullptr,
                     Scheduler* scheduler = nullptr,
                     ChunkedScanStats* stats = nullptr);

/// Legacy shim: identical semantics, resolving the catalog binding against
/// the live head of `db` (single-threaded callers, tests, benches — no
/// snapshot-isolation guarantees under concurrent writers).
Result<Rel> ScanAtom(const Database& db, const ConjunctiveQuery& q,
                     int atom_idx, const Table* table = nullptr,
                     Scheduler* scheduler = nullptr,
                     ChunkedScanStats* stats = nullptr);

/// Delta scan: ScanAtom restricted to table rows >= `begin_row`. Applies
/// the same constant / repeated-variable checks, so the emitted rows are
/// exactly the suffix of the full scan's ascending selection that falls in
/// the appended range — the semi-naive delta of an append-only commit.
/// Cost is proportional to the chunks overlapping the appended rows, not
/// the table.
Result<Rel> ScanAtomTail(const Snapshot& snap, const ConjunctiveQuery& q,
                         int atom_idx, size_t begin_row,
                         Scheduler* scheduler = nullptr);

/// Natural hash join; scores multiply.
///
/// With a scheduler and a large enough input, the build side is partitioned
/// by hash prefix (one flat index per partition, built in parallel) and the
/// probe side is split into row-range morsels fanned out on the pool. The
/// parallel path emits rows in exactly the sequential order (morsel outputs
/// concatenate in probe-row order; per-partition chains preserve the global
/// insertion order), so results are bit-identical either way.
Rel HashJoin(const Rel& left, const Rel& right, Scheduler* scheduler = nullptr);

/// HashJoin with the build/probe roles pinned by the caller instead of
/// chosen by size. Delta maintenance joins a tiny appended probe delta
/// against the unchanged build side; letting the size heuristic flip the
/// roles would change the output row order and break bit-identity with the
/// from-scratch join, which probes the full (old + delta) side.
Rel HashJoinBuildProbe(const Rel& build, const Rel& probe,
                       Scheduler* scheduler = nullptr);

/// Projection with duplicate elimination onto `keep_mask` (must be a subset
/// of the input variables); scores combine independently:
/// s(group) = 1 - prod(1 - s_i).
///
/// With a scheduler and a large enough input, rows are partitioned by key
/// hash prefix and each partition is grouped independently; groups are then
/// re-sorted by global first-occurrence row, reproducing the sequential
/// group order and fold order bit-for-bit.
///
/// `raw_acc_out`, if given, receives the per-group complement products
/// before finalization (acc_g = prod(1 - s_i)); delta maintenance stores
/// them so appended rows can continue each group's sequential fold exactly
/// where the from-scratch evaluation would. Only populated on the grouped
/// path (keep_mask != 0 or empty input).
Rel ProjectIndependent(const Rel& in, VarMask keep_mask,
                       Scheduler* scheduler = nullptr,
                       std::vector<double>* raw_acc_out = nullptr);

/// Deterministic projection: distinct rows, scores forced to 1.
Rel ProjectDistinct(const Rel& in, VarMask keep_mask,
                    Scheduler* scheduler = nullptr);

/// Per-row minimum across score-equivalent inputs (same variable sets and,
/// for plans of the same query, the same row sets). Rows present in only
/// some inputs keep the minimum over the inputs containing them.
Result<Rel> MinMerge(const std::vector<Rel>& inputs);

}  // namespace dissodb

#endif  // DISSODB_EXEC_OPERATORS_H_
