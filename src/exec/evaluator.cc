#include "src/exec/evaluator.h"

#include "src/common/simd.h"
#include "src/exec/operators.h"
#include "src/serve/delta_maintenance.h"
#include "src/serve/result_cache.h"
#include "src/serve/scheduler.h"

namespace dissodb {

namespace {

/// Ensures an acquired computation leadership is always resolved: if the
/// evaluation exits early (a child's error status propagates), waiters are
/// woken with nullptr instead of blocking forever.
struct LeadGuard {
  ResultCache* cache = nullptr;
  const std::string* key = nullptr;
  uint64_t version = 0;
  bool resolved = true;

  void Arm(ResultCache* c, const std::string* k, uint64_t v) {
    cache = c;
    key = k;
    version = v;
    resolved = false;
  }
  ~LeadGuard() {
    if (!resolved) cache->Abandon(*key, version);
  }
};

}  // namespace

std::string PlanEvaluator::SharedCacheKey(const PlanPtr& plan) {
  std::string key = PlanFingerprint(plan, q_, &fingerprint_memo_);
  // Tagged overrides stay shareable: the tag pins down the overridden
  // table's content, so fingerprint+tags identifies the computation as
  // precisely as the fingerprint alone does for catalog tables.
  const uint64_t tagged = PlanAtomSet(plan) & override_atoms_;
  if (tagged != 0) {
    for (const auto& [idx, ov] : overrides_) {
      if (idx >= 0 && idx < 64 && (tagged >> idx) & 1) {
        key += "|o" + std::to_string(idx) + "=" + ov.tag;
      }
    }
  }
  return key;
}

std::string PlanEvaluator::NodeLabel(const PlanPtr& plan) const {
  switch (plan->kind) {
    case PlanNode::Kind::kScan:
      if (plan->atom_idx >= 0 && plan->atom_idx < q_.num_atoms()) {
        return "scan " + q_.atom(plan->atom_idx).relation;
      }
      return "scan";
    case PlanNode::Kind::kProject:
      return "project";
    case PlanNode::Kind::kJoin:
      return "join";
    case PlanNode::Kind::kMin:
      return "min";
  }
  return "node";
}

Result<std::shared_ptr<const Rel>> PlanEvaluator::Evaluate(
    const PlanPtr& plan) {
  auto it = cache_.find(plan.get());
  if (it != cache_.end()) {
    if (trace_ != nullptr) {
      // DAG sharing (Opt. 2): the node was evaluated once already; record
      // a zero-work reference span so the span tree still expands to the
      // plan's tree shape.
      const uint32_t span = trace_->BeginSpan(NodeLabel(plan), trace_parent_);
      trace_->Annotate(span, "reused", std::string("dag"));
      trace_->Annotate(span, "rows_out",
                       static_cast<uint64_t>(it->second->NumRows()));
      trace_->EndSpan(span);
    }
    return it->second;
  }

  if (trace_ == nullptr) return EvaluateUncached(plan, 0);

  const uint32_t span = trace_->BeginSpan(NodeLabel(plan), trace_parent_);
  const uint32_t saved_parent = trace_parent_;
  trace_parent_ = span;
  auto result = EvaluateUncached(plan, span);
  trace_parent_ = saved_parent;
  if (result.ok()) {
    trace_->Annotate(span, "rows_out",
                     static_cast<uint64_t>((*result)->NumRows()));
  } else {
    trace_->Annotate(span, "error", result.status().ToString());
  }
  trace_->EndSpan(span);
  return result;
}

Result<std::shared_ptr<const Rel>> PlanEvaluator::EvaluateUncached(
    const PlanPtr& plan, uint32_t span) {
  // Workload-level sharing (Opt. 2 across queries): non-leaf nodes whose
  // atoms are all bound to catalog tables — or to overrides carrying a
  // content tag — key into the shared result cache by their
  // query-independent fingerprint (plus the tags). Scan leaves are
  // excluded — the unfiltered ones are zero-copy already, and caching them
  // would only evict real work. Acquire() deduplicates concurrent
  // evaluations of one fingerprint: exactly one requester computes (the
  // leader), concurrent ones wait on its shared_future, so identical
  // subplans never compute twice within a batch.
  std::string shared_key;
  LeadGuard lead;
  if (result_cache_ != nullptr && plan->kind != PlanNode::Kind::kScan &&
      (PlanAtomSet(plan) & untagged_override_atoms_) == 0) {
    shared_key = SharedCacheKey(plan);
    ResultCache::Ticket ticket =
        result_cache_->Acquire(shared_key, db_version_);
    if (ticket.value != nullptr) {
      ++result_cache_hits_;
      if (trace_ != nullptr) {
        trace_->Annotate(span, "result_cache", std::string("hit"));
      }
      cache_.emplace(plan.get(), ticket.value);
      return ticket.value;
    }
    if (ticket.leader) {
      lead.Arm(result_cache_, &shared_key, db_version_);
      if (trace_ != nullptr) {
        trace_->Annotate(span, "result_cache", std::string("lead"));
      }
    } else {
      // Waiting is deadlock-free: the leader is already executing and only
      // ever waits on strictly smaller fingerprints itself.
      if (auto rel = ticket.pending.get()) {
        ++result_cache_hits_;
        if (trace_ != nullptr) {
          trace_->Annotate(span, "result_cache", std::string("wait"));
        }
        cache_.emplace(plan.get(), rel);
        return rel;
      }
      // Leader abandoned (its evaluation failed); compute locally without
      // publishing.
      shared_key.clear();
    }
  }
  ++nodes_evaluated_;

  // Attach a maintenance recipe when this evaluation will publish a cache
  // entry (we lead), runs against a pinned snapshot, touches no overridden
  // atoms, and the root has a maintainable shape. Decided up front so the
  // projection branch can capture its raw accumulators.
  const bool want_recipe = delta_recipes_ && !lead.resolved &&
                           live_db_ == nullptr &&
                           (PlanAtomSet(plan) & override_atoms_) == 0 &&
                           DeltaMaintainableShape(plan);
  std::vector<double> recipe_acc;

  std::shared_ptr<const Rel> result;
  switch (plan->kind) {
    case PlanNode::Kind::kScan: {
      const Table* override_table = nullptr;
      auto oit = overrides_.find(plan->atom_idx);
      if (oit != overrides_.end()) override_table = oit->second.table;
      const ChunkedScanStats before = scan_stats_;
      auto rel = live_db_ != nullptr
                     ? ScanAtom(*live_db_, q_, plan->atom_idx, override_table,
                                scheduler_, &scan_stats_)
                     : ScanAtom(snap_, q_, plan->atom_idx, override_table,
                                scheduler_, &scan_stats_);
      if (!rel.ok()) return rel.status();
      if (trace_ != nullptr) {
        if (override_table != nullptr) {
          trace_->Annotate(span, "override", std::string("bound"));
        }
        if (scan_stats_.filtered_scans > before.filtered_scans) {
          trace_->Annotate(span, "path",
                           scan_stats_.parallel_scans > before.parallel_scans
                               ? std::string("filtered-parallel")
                               : std::string("filtered"));
          trace_->Annotate(
              span, "chunks_scanned",
              static_cast<uint64_t>(scan_stats_.chunks_scanned -
                                    before.chunks_scanned));
          trace_->Annotate(span, "chunks_pruned",
                           static_cast<uint64_t>(scan_stats_.chunks_pruned -
                                                 before.chunks_pruned));
          trace_->Annotate(span, "rows_scanned",
                           static_cast<uint64_t>(scan_stats_.rows_scanned -
                                                 before.rows_scanned));
        } else {
          trace_->Annotate(span, "path", std::string("zero-copy"));
        }
      }
      result = std::make_shared<const Rel>(std::move(*rel));
      break;
    }
    case PlanNode::Kind::kProject: {
      auto child = Evaluate(plan->children[0]);
      if (!child.ok()) return child.status();
      if (trace_ != nullptr) {
        trace_->Annotate(span, "rows_in",
                         static_cast<uint64_t>((*child)->NumRows()));
        trace_->Annotate(span, "simd",
                         simd::UseAvx2() ? std::string("avx2")
                                         : std::string("scalar"));
      }
      // Virtual (dissociated) variables may appear in the node's head but
      // not in the materialized child; project onto what exists.
      VarMask keep = plan->head & (*child)->var_mask();
      result = std::make_shared<const Rel>(ProjectIndependent(
          **child, keep, scheduler_,
          want_recipe && keep != 0 ? &recipe_acc : nullptr));
      break;
    }
    case PlanNode::Kind::kJoin: {
      std::vector<std::shared_ptr<const Rel>> inputs;
      for (const auto& c : plan->children) {
        auto r = Evaluate(c);
        if (!r.ok()) return r.status();
        inputs.push_back(*r);
      }
      if (trace_ != nullptr) {
        uint64_t rows_in = 0;
        for (const auto& in : inputs) rows_in += in->NumRows();
        trace_->Annotate(span, "rows_in", rows_in);
        trace_->Annotate(span, "simd",
                         simd::UseAvx2() ? std::string("avx2")
                                         : std::string("scalar"));
      }
      // Greedy join order: start from the smallest input, then repeatedly
      // join the smallest input sharing a variable with the accumulated
      // result (falling back to a cartesian product only when forced).
      std::vector<bool> used(inputs.size(), false);
      size_t first = 0;
      for (size_t i = 1; i < inputs.size(); ++i) {
        if (inputs[i]->NumRows() < inputs[first]->NumRows()) first = i;
      }
      used[first] = true;
      std::shared_ptr<const Rel> current = inputs[first];
      for (size_t step = 1; step < inputs.size(); ++step) {
        int best = -1;
        bool best_shares = false;
        for (size_t i = 0; i < inputs.size(); ++i) {
          if (used[i]) continue;
          bool shares = (inputs[i]->var_mask() & current->var_mask()) != 0;
          if (best < 0 || (shares && !best_shares) ||
              (shares == best_shares &&
               inputs[i]->NumRows() < inputs[best]->NumRows())) {
            best = static_cast<int>(i);
            best_shares = shares;
          }
        }
        used[best] = true;
        current = std::make_shared<const Rel>(
            HashJoin(*current, *inputs[best], scheduler_));
      }
      result = current;
      break;
    }
    case PlanNode::Kind::kMin: {
      std::vector<Rel> rels;
      for (const auto& c : plan->children) {
        auto r = Evaluate(c);
        if (!r.ok()) return r.status();
        rels.push_back(**r);  // copy; min inputs are usually small
      }
      auto merged = MinMerge(rels);
      if (!merged.ok()) return merged.status();
      result = std::make_shared<const Rel>(std::move(*merged));
      break;
    }
  }
  if (!lead.resolved) {
    std::shared_ptr<const DeltaRecipe> recipe;
    if (want_recipe) {
      recipe = BuildDeltaRecipe(plan, result, std::move(recipe_acc));
    }
    result_cache_->Complete(shared_key, db_version_, result,
                            std::move(recipe));
    lead.resolved = true;
  }
  cache_.emplace(plan.get(), result);
  return result;
}

std::shared_ptr<const DeltaRecipe> PlanEvaluator::BuildDeltaRecipe(
    const PlanPtr& plan, const std::shared_ptr<const Rel>& rel,
    std::vector<double>&& acc) {
  // The root's scan inputs in child order (shape pre-checked by
  // DeltaMaintainableShape).
  std::vector<const PlanNode*> scans;
  if (plan->kind == PlanNode::Kind::kProject) {
    // Boolean projections are excluded: their fused accumulator has no
    // resumable per-group fold (acc stayed empty).
    if (rel->arity() == 0) return nullptr;
    const PlanPtr& c = plan->children[0];
    if (c->kind == PlanNode::Kind::kScan) {
      scans = {c.get()};
    } else {
      scans = {c->children[0].get(), c->children[1].get()};
    }
  } else {
    scans = {plan->children[0].get(), plan->children[1].get()};
  }

  auto recipe = std::make_shared<DeltaRecipe>();
  recipe->plan = plan;
  recipe->query = std::make_shared<const ConjunctiveQuery>(q_);
  recipe->child_rows.reserve(scans.size());
  for (const PlanNode* s : scans) {
    // Every child was just evaluated, so its relation is in the
    // node-identity memo; its size re-derives the greedy build/probe pick.
    auto it = cache_.find(s);
    if (it == cache_.end()) return nullptr;
    recipe->child_rows.push_back(it->second->NumRows());
  }
  if (plan->kind == PlanNode::Kind::kProject) {
    if (acc.size() != rel->NumRows()) return nullptr;
    recipe->project_acc =
        std::make_shared<const std::vector<double>>(std::move(acc));
  }
  return recipe;
}

namespace {

template <typename MakeEvaluator>
Result<Rel> EvaluateSeparatelyImpl(const MakeEvaluator& make_evaluator,
                                   const std::vector<PlanPtr>& plans,
                                   const AtomOverrides& overrides,
                                   ChunkedScanStats* scan_stats,
                                   obs::TraceContext* trace,
                                   uint32_t trace_parent) {
  std::vector<Rel> results;
  size_t plan_idx = 0;
  for (const auto& p : plans) {
    PlanEvaluator ev = make_evaluator();  // fresh: no cross-plan sharing
    for (const auto& [idx, ov] : overrides) ev.SetAtomTable(idx, ov.table, ov.tag);
    obs::ScopedSpan plan_span(trace, "plan " + std::to_string(plan_idx++),
                              trace_parent);
    if (trace != nullptr) ev.SetTrace(trace, plan_span.id());
    auto r = ev.Evaluate(p);
    if (!r.ok()) return r.status();
    if (scan_stats != nullptr) scan_stats->MergeFrom(ev.scan_stats());
    results.push_back(**r);
  }
  obs::ScopedSpan merge_span(trace, "min-merge", trace_parent);
  return MinMerge(results);
}

}  // namespace

Result<Rel> EvaluatePlansSeparately(
    const Snapshot& snap, const ConjunctiveQuery& q,
    const std::vector<PlanPtr>& plans,
    const AtomOverrides& overrides,
    ChunkedScanStats* scan_stats,
    obs::TraceContext* trace, uint32_t trace_parent) {
  return EvaluateSeparatelyImpl([&] { return PlanEvaluator(snap, q); }, plans,
                                overrides, scan_stats, trace, trace_parent);
}

Result<Rel> EvaluatePlansSeparately(
    const Database& db, const ConjunctiveQuery& q,
    const std::vector<PlanPtr>& plans,
    const AtomOverrides& overrides,
    ChunkedScanStats* scan_stats,
    obs::TraceContext* trace, uint32_t trace_parent) {
  return EvaluateSeparatelyImpl([&] { return PlanEvaluator(db, q); }, plans,
                                overrides, scan_stats, trace, trace_parent);
}

}  // namespace dissodb
