#include "src/infer/query_inference.h"

#include <algorithm>

#include "src/infer/mc.h"

namespace dissodb {

namespace {

std::vector<RankedAnswer> SortDesc(std::vector<RankedAnswer> answers) {
  std::sort(answers.begin(), answers.end(),
            [](const RankedAnswer& a, const RankedAnswer& b) {
              if (a.score != b.score) return a.score > b.score;
              return std::lexicographical_compare(
                  a.tuple.begin(), a.tuple.end(), b.tuple.begin(),
                  b.tuple.end());
            });
  return answers;
}

}  // namespace

Result<std::vector<RankedAnswer>> ExactFromLineage(const LineageResult& lineage,
                                                   const WmcOptions& wmc) {
  std::vector<RankedAnswer> out;
  out.reserve(lineage.answers.size());
  for (const auto& al : lineage.answers) {
    Dnf f = lineage.ToDnf(al);
    auto p = ExactDnfProbability(f, wmc);
    if (!p.ok()) return p.status();
    out.push_back(RankedAnswer{al.answer, *p});
  }
  return SortDesc(std::move(out));
}

std::vector<RankedAnswer> McFromLineage(const LineageResult& lineage,
                                        size_t samples, Rng* rng) {
  std::vector<RankedAnswer> out;
  out.reserve(lineage.answers.size());
  for (const auto& al : lineage.answers) {
    Dnf f = lineage.ToDnf(al);
    out.push_back(RankedAnswer{al.answer, NaiveDnfEstimate(f, samples, rng)});
  }
  return SortDesc(std::move(out));
}

Result<std::vector<RankedAnswer>> ExactProbabilities(
    const Database& db, const ConjunctiveQuery& q,
    const std::unordered_map<int, const Table*>& overrides,
    const WmcOptions& wmc) {
  auto lineage = ComputeLineage(db, q, overrides);
  if (!lineage.ok()) return lineage.status();
  return ExactFromLineage(*lineage, wmc);
}

Result<std::vector<RankedAnswer>> McProbabilities(
    const Database& db, const ConjunctiveQuery& q, size_t samples, Rng* rng,
    const std::unordered_map<int, const Table*>& overrides) {
  auto lineage = ComputeLineage(db, q, overrides);
  if (!lineage.ok()) return lineage.status();
  return McFromLineage(*lineage, samples, rng);
}

std::vector<RankedAnswer> LineageSizeRanking(const LineageResult& lineage) {
  std::vector<RankedAnswer> out;
  out.reserve(lineage.answers.size());
  for (const auto& al : lineage.answers) {
    out.push_back(
        RankedAnswer{al.answer, static_cast<double>(al.terms.size())});
  }
  return SortDesc(std::move(out));
}

size_t MaxLineageSize(const LineageResult& lineage) {
  size_t mx = 0;
  for (const auto& al : lineage.answers) mx = std::max(mx, al.terms.size());
  return mx;
}

}  // namespace dissodb
