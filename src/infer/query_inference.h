// Query-level inference facades: exact probabilities (ground truth), Monte
// Carlo estimates, and the non-probabilistic lineage-size ranking used as a
// baseline throughout Section 5.
#ifndef DISSODB_INFER_QUERY_INFERENCE_H_
#define DISSODB_INFER_QUERY_INFERENCE_H_

#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/exec/ranking.h"
#include "src/infer/exact.h"
#include "src/lineage/lineage.h"
#include "src/query/cq.h"
#include "src/storage/database.h"

namespace dissodb {

/// Exact P(q = a) for every answer, by grounding + weighted model counting.
/// Fails with OutOfRange when a lineage is infeasible within `wmc` budget
/// (the paper computed ground truth only where feasible, too).
Result<std::vector<RankedAnswer>> ExactProbabilities(
    const Database& db, const ConjunctiveQuery& q,
    const std::unordered_map<int, const Table*>& overrides = {},
    const WmcOptions& wmc = {});

/// MC(x): per-answer naive sampling of the lineage with `samples` worlds.
Result<std::vector<RankedAnswer>> McProbabilities(
    const Database& db, const ConjunctiveQuery& q, size_t samples, Rng* rng,
    const std::unordered_map<int, const Table*>& overrides = {});

/// Ranking by lineage size (number of DNF terms), the paper's
/// non-probabilistic baseline.
std::vector<RankedAnswer> LineageSizeRanking(const LineageResult& lineage);

/// Exact per-answer probabilities from an already-computed lineage.
Result<std::vector<RankedAnswer>> ExactFromLineage(
    const LineageResult& lineage, const WmcOptions& wmc = {});

/// MC per-answer estimates from an already-computed lineage.
std::vector<RankedAnswer> McFromLineage(const LineageResult& lineage,
                                        size_t samples, Rng* rng);

/// Size of the largest per-answer lineage (the paper's max[lin]).
size_t MaxLineageSize(const LineageResult& lineage);

}  // namespace dissodb

#endif  // DISSODB_INFER_QUERY_INFERENCE_H_
