#include "src/infer/mc.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace dissodb {

double NaiveDnfEstimate(const Dnf& f, size_t samples, Rng* rng) {
  if (f.terms.empty() || samples == 0) return 0.0;
  McEstimator est(&f);
  est.AddBatch(samples, rng);
  return est.Estimate();
}

size_t McEstimator::AddBatch(size_t n, Rng* rng,
                             const std::function<bool()>& cancelled) {
  if (n == 0) return 0;
  // Sample into locals; fold in only when the whole batch completed, so a
  // mid-batch cancellation leaves (hits_, samples_) untouched and the
  // accumulated state stays a pure function of the completed batches.
  const int nv = f_->num_vars();
  size_t batch_hits = 0;
  for (size_t s = 0; s < n; ++s) {
    if (cancelled && (s & 511) == 511 && cancelled()) return 0;
    for (int v = 0; v < nv; ++v) world_[v] = rng->NextBernoulli(f_->probs[v]);
    if (f_->Evaluate(world_)) ++batch_hits;
  }
  hits_ += batch_hits;
  samples_ += n;
  return n;
}

double McEstimator::HalfWidth() const {
  if (samples_ == 0) return std::numeric_limits<double>::infinity();
  const double n = static_cast<double>(samples_);
  const double p = Estimate();
  // 4-sigma normal approximation, floored at 4/n: near p in {0, 1} the
  // binomial variance estimate collapses to zero while the estimator can
  // still be off by O(1/n) (rule-of-three regime).
  const double sigma = std::sqrt(std::max(p * (1.0 - p) / n, 0.0));
  return std::max(4.0 * sigma, 4.0 / n);
}

Result<double> KarpLubyEstimate(const Dnf& f, size_t samples, Rng* rng) {
  if (f.terms.empty()) {
    return Status::InvalidArgument(
        "Karp-Luby estimate of a formula with no terms (no lineage; "
        "distinct from a true probability of 0)");
  }
  if (samples == 0) {
    return Status::InvalidArgument("Karp-Luby estimate with zero samples");
  }
  const int n = f.num_vars();
  const size_t t = f.num_terms();

  // Term weights P(T_i) and their cumulative distribution.
  std::vector<double> weight(t);
  double total = 0.0;
  for (size_t i = 0; i < t; ++i) {
    double w = 1.0;
    for (int v : f.terms[i]) w *= f.probs[v];
    weight[i] = w;
    total += w;
  }
  // Every term contains a zero-probability variable: P(F) is truly 0.
  if (total <= 0.0) return 0.0;
  std::vector<double> cdf(t);
  double acc = 0.0;
  for (size_t i = 0; i < t; ++i) {
    acc += weight[i] / total;
    cdf[i] = acc;
  }

  std::vector<bool> world(n);
  std::vector<bool> forced(n);
  size_t hits = 0;
  for (size_t s = 0; s < samples; ++s) {
    // Choose a term proportionally to its probability.
    double u = rng->NextDouble();
    size_t i = static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    if (i >= t) i = t - 1;
    // Sample a world conditioned on T_i true.
    std::fill(forced.begin(), forced.end(), false);
    for (int v : f.terms[i]) forced[v] = true;
    for (int v = 0; v < n; ++v) {
      world[v] = forced[v] ? true : rng->NextBernoulli(f.probs[v]);
    }
    // Count when T_i is the first satisfied term.
    bool first = true;
    for (size_t j = 0; j < i && first; ++j) {
      bool sat = true;
      for (int v : f.terms[j]) {
        if (!world[v]) {
          sat = false;
          break;
        }
      }
      if (sat) first = false;
    }
    if (first) ++hits;
  }
  return total * static_cast<double>(hits) / static_cast<double>(samples);
}

}  // namespace dissodb
