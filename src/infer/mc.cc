#include "src/infer/mc.h"

#include <algorithm>
#include <vector>

namespace dissodb {

double NaiveDnfEstimate(const Dnf& f, size_t samples, Rng* rng) {
  if (f.terms.empty() || samples == 0) return 0.0;
  const int n = f.num_vars();
  std::vector<bool> world(n);
  size_t hits = 0;
  for (size_t s = 0; s < samples; ++s) {
    for (int v = 0; v < n; ++v) world[v] = rng->NextBernoulli(f.probs[v]);
    if (f.Evaluate(world)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(samples);
}

double KarpLubyEstimate(const Dnf& f, size_t samples, Rng* rng) {
  if (f.terms.empty() || samples == 0) return 0.0;
  const int n = f.num_vars();
  const size_t t = f.num_terms();

  // Term weights P(T_i) and their cumulative distribution.
  std::vector<double> weight(t);
  double total = 0.0;
  for (size_t i = 0; i < t; ++i) {
    double w = 1.0;
    for (int v : f.terms[i]) w *= f.probs[v];
    weight[i] = w;
    total += w;
  }
  if (total <= 0.0) return 0.0;
  std::vector<double> cdf(t);
  double acc = 0.0;
  for (size_t i = 0; i < t; ++i) {
    acc += weight[i] / total;
    cdf[i] = acc;
  }

  std::vector<bool> world(n);
  std::vector<bool> forced(n);
  size_t hits = 0;
  for (size_t s = 0; s < samples; ++s) {
    // Choose a term proportionally to its probability.
    double u = rng->NextDouble();
    size_t i = static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    if (i >= t) i = t - 1;
    // Sample a world conditioned on T_i true.
    std::fill(forced.begin(), forced.end(), false);
    for (int v : f.terms[i]) forced[v] = true;
    for (int v = 0; v < n; ++v) {
      world[v] = forced[v] ? true : rng->NextBernoulli(f.probs[v]);
    }
    // Count when T_i is the first satisfied term.
    bool first = true;
    for (size_t j = 0; j < i && first; ++j) {
      bool sat = true;
      for (int v : f.terms[j]) {
        if (!world[v]) {
          sat = false;
          break;
        }
      }
      if (sat) first = false;
    }
    if (first) ++hits;
  }
  return total * static_cast<double>(hits) / static_cast<double>(samples);
}

}  // namespace dissodb
