// Monte Carlo estimators for DNF probability.
//
// NaiveDnfEstimate is the paper's MC(x): sample every variable, evaluate the
// formula, average. KarpLubyEstimate is the classical FPRAS coverage
// estimator — an extension beyond the paper's experiments, useful when the
// formula probability is tiny.
#ifndef DISSODB_INFER_MC_H_
#define DISSODB_INFER_MC_H_

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/lineage/formula.h"

namespace dissodb {

/// Naive estimator: fraction of `samples` worlds satisfying F.
double NaiveDnfEstimate(const Dnf& f, size_t samples, Rng* rng);

/// Karp-Luby-Madras coverage estimator (unbiased; relative-error FPRAS).
/// Falls back to 0 for formulas with no terms.
double KarpLubyEstimate(const Dnf& f, size_t samples, Rng* rng);

}  // namespace dissodb

#endif  // DISSODB_INFER_MC_H_
