// Monte Carlo estimators for DNF probability.
//
// NaiveDnfEstimate is the paper's MC(x): sample every variable, evaluate the
// formula, average. KarpLubyEstimate is the classical FPRAS coverage
// estimator — an extension beyond the paper's experiments, useful when the
// formula probability is tiny. McEstimator is the resumable form of the
// naive estimator the anytime controller refines incrementally: state is
// (hits, samples), batches fold in atomically, and the accumulated estimate
// is a deterministic function of the completed batches alone — which is
// what makes refinement bit-reproducible across worker counts when every
// batch draws from its own (plan fingerprint, answer key, round) seed.
#ifndef DISSODB_INFER_MC_H_
#define DISSODB_INFER_MC_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/hash.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/lineage/formula.h"

namespace dissodb {

/// Naive estimator: fraction of `samples` worlds satisfying F.
double NaiveDnfEstimate(const Dnf& f, size_t samples, Rng* rng);

/// Karp-Luby-Madras coverage estimator (unbiased; relative-error FPRAS).
/// A formula with no terms is an error (InvalidArgument), not 0.0: "no
/// lineage" and "probability exactly 0" are different answers, and callers
/// (e.g. the anytime refiner deciding whether an interval can collapse)
/// must be able to tell them apart. `samples == 0` is likewise an error.
/// A formula whose terms all have zero-probability variables returns a
/// true 0.
Result<double> KarpLubyEstimate(const Dnf& f, size_t samples, Rng* rng);

/// \brief Resumable naive-MC state for one DNF: fold in sample batches
/// across refinement rounds, read off the running estimate and a
/// confidence half-width at any point. The formula must outlive the
/// estimator.
class McEstimator {
 public:
  explicit McEstimator(const Dnf* f) : f_(f), world_(f->num_vars()) {}

  /// Draws `n` worlds with `rng` and folds them in. `cancelled`, when
  /// non-empty, is polled every few hundred draws; a cancelled batch is
  /// discarded *whole* (state stays exactly as before the call), so the
  /// accumulated state is a deterministic function of which batches
  /// completed — never of where a deadline landed inside one. Returns the
  /// samples actually folded in (n, or 0 when cancelled).
  size_t AddBatch(size_t n, Rng* rng,
                  const std::function<bool()>& cancelled = {});

  size_t samples() const { return samples_; }
  size_t hits() const { return hits_; }

  /// Running estimate hits/samples (0.0 before any batch).
  double Estimate() const {
    return samples_ == 0
               ? 0.0
               : static_cast<double>(hits_) / static_cast<double>(samples_);
  }

  /// Half-width of a ~4-sigma normal-approximation confidence interval
  /// around Estimate(), with a 1/samples floor so degenerate 0/n and n/n
  /// counts still report nonzero uncertainty. Infinite before any batch.
  double HalfWidth() const;

 private:
  const Dnf* f_;
  size_t samples_ = 0;
  size_t hits_ = 0;
  std::vector<bool> world_;  // scratch, reused across batches
};

/// Seed for one (plan, answer, round) refinement batch. Deriving every
/// batch's Rng from this — instead of drawing from one shared stream —
/// makes anytime MC refinement bit-reproducible across thread counts and
/// scheduling orders.
inline uint64_t RefinementSeed(uint64_t plan_fingerprint_hash,
                               uint64_t answer_key, uint64_t round) {
  uint64_t s = Mix64(plan_fingerprint_hash);
  s = Mix64(s ^ answer_key);
  return Mix64(s ^ (round + 0x9e3779b97f4a7c15ULL));
}

}  // namespace dissodb

#endif  // DISSODB_INFER_MC_H_
