#include "src/infer/exact.h"

#include <algorithm>
#include <numeric>
#include <string>
#include <unordered_map>
#include <vector>

namespace dissodb {

namespace {

WmcStats g_stats;

using Terms = std::vector<std::vector<int>>;

/// Memoization is keyed by an exact serialization of the (sorted) term list;
/// only small subformulas are memoized to bound memory.
constexpr size_t kMemoMaxTerms = 256;

class Wmc {
 public:
  Wmc(const std::vector<double>& probs, const WmcOptions& opts)
      : probs_(probs), opts_(opts) {}

  Result<double> Run(Terms terms) { return Probability(std::move(terms)); }

 private:
  Result<double> Probability(Terms terms) {
    if (++g_stats.calls > opts_.max_calls) {
      return Status::OutOfRange("WMC exceeded max_calls budget");
    }
    if (terms.empty()) return 0.0;
    for (const auto& t : terms) {
      if (t.empty()) return 1.0;  // an empty term is TRUE
    }
    if (terms.size() == 1) {
      double p = 1.0;
      for (int v : terms[0]) p *= probs_[v];
      return p;
    }

    // Absorption: sort by length; a term containing another term is
    // redundant. Cheap O(T^2 * len) — worth it for small/medium formulas.
    if (terms.size() <= 512) {
      std::sort(terms.begin(), terms.end(),
                [](const auto& a, const auto& b) { return a.size() < b.size(); });
      std::vector<bool> dead(terms.size(), false);
      for (size_t i = 0; i < terms.size(); ++i) {
        if (dead[i]) continue;
        for (size_t j = i + 1; j < terms.size(); ++j) {
          if (dead[j]) continue;
          if (std::includes(terms[j].begin(), terms[j].end(),
                            terms[i].begin(), terms[i].end())) {
            dead[j] = true;
          }
        }
      }
      Terms kept;
      for (size_t i = 0; i < terms.size(); ++i) {
        if (!dead[i]) kept.push_back(std::move(terms[i]));
      }
      terms = std::move(kept);
      if (terms.size() == 1) {
        double p = 1.0;
        for (int v : terms[0]) p *= probs_[v];
        return p;
      }
    }

    // Independent components: variables connect terms.
    {
      std::unordered_map<int, int> var_group;
      std::vector<int> parent(terms.size());
      std::iota(parent.begin(), parent.end(), 0);
      auto find = [&](int x) {
        while (parent[x] != x) {
          parent[x] = parent[parent[x]];
          x = parent[x];
        }
        return x;
      };
      for (size_t i = 0; i < terms.size(); ++i) {
        for (int v : terms[i]) {
          auto [it, inserted] = var_group.try_emplace(v, static_cast<int>(i));
          if (!inserted) parent[find(static_cast<int>(i))] = find(it->second);
        }
      }
      std::unordered_map<int, Terms> groups;
      for (size_t i = 0; i < terms.size(); ++i) {
        groups[find(static_cast<int>(i))].push_back(std::move(terms[i]));
      }
      if (groups.size() > 1) {
        ++g_stats.components_split;
        double none_true = 1.0;
        for (auto& [root, comp] : groups) {
          auto p = Probability(std::move(comp));
          if (!p.ok()) return p.status();
          none_true *= 1.0 - *p;
        }
        return 1.0 - none_true;
      }
      for (auto& [root, comp] : groups) terms = std::move(comp);
    }

    // Memo lookup.
    std::string key;
    const bool memoize = terms.size() <= kMemoMaxTerms;
    if (memoize) {
      std::sort(terms.begin(), terms.end());
      key.reserve(terms.size() * 8);
      for (const auto& t : terms) {
        for (int v : t) {
          key.append(reinterpret_cast<const char*>(&v), sizeof(v));
        }
        key.push_back('\x01');
      }
      auto it = memo_.find(key);
      if (it != memo_.end()) {
        ++g_stats.memo_hits;
        return it->second;
      }
    }

    // Shannon expansion on the most frequent variable.
    std::unordered_map<int, int> freq;
    for (const auto& t : terms) {
      for (int v : t) ++freq[v];
    }
    int var = -1, best = 0;
    for (auto [v, c] : freq) {
      if (c > best || (c == best && v < var)) {
        best = c;
        var = v;
      }
    }

    Terms pos, neg;
    for (const auto& t : terms) {
      if (std::binary_search(t.begin(), t.end(), var)) {
        std::vector<int> reduced;
        reduced.reserve(t.size() - 1);
        for (int v : t) {
          if (v != var) reduced.push_back(v);
        }
        pos.push_back(std::move(reduced));
      } else {
        pos.push_back(t);
        neg.push_back(t);
      }
    }
    auto p1 = Probability(std::move(pos));
    if (!p1.ok()) return p1.status();
    auto p0 = Probability(std::move(neg));
    if (!p0.ok()) return p0.status();
    double p = probs_[var] * *p1 + (1.0 - probs_[var]) * *p0;
    if (memoize) memo_.emplace(std::move(key), p);
    return p;
  }

  const std::vector<double>& probs_;
  const WmcOptions& opts_;
  std::unordered_map<std::string, double> memo_;
};

}  // namespace

Result<double> ExactDnfProbability(const Dnf& f, const WmcOptions& opts) {
  g_stats = WmcStats{};
  // Pre-simplify: drop p=0 variables' terms; strip p=1 variables.
  Terms terms;
  terms.reserve(f.terms.size());
  for (const auto& t : f.terms) {
    std::vector<int> keep;
    bool dead = false;
    for (int v : t) {
      if (f.probs[v] <= 0.0) {
        dead = true;
        break;
      }
      if (f.probs[v] < 1.0) keep.push_back(v);
    }
    if (dead) continue;
    std::sort(keep.begin(), keep.end());
    keep.erase(std::unique(keep.begin(), keep.end()), keep.end());
    terms.push_back(std::move(keep));
  }
  Wmc wmc(f.probs, opts);
  return wmc.Run(std::move(terms));
}

const WmcStats& LastWmcStats() { return g_stats; }

}  // namespace dissodb
