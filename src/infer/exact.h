// Exact probability of monotone DNF formulas by weighted model counting:
// Shannon expansion + independent-component decomposition + memoization +
// absorption. This is the project's substitute for the paper's external
// exact solver (SampleSearch): both compute exact lineage probabilities and
// both degrade with formula treewidth, reproducing the "exact inference does
// not scale" behaviour of Figures 5e-5h.
#ifndef DISSODB_INFER_EXACT_H_
#define DISSODB_INFER_EXACT_H_

#include "src/common/status.h"
#include "src/lineage/formula.h"

namespace dissodb {

struct WmcOptions {
  /// Abort (OutOfRange) after this many recursive calls — mirrors the
  /// paper's practice of computing ground truth only where feasible.
  size_t max_calls = 20'000'000;
};

/// Exact P(F) for a monotone DNF with independent variables.
Result<double> ExactDnfProbability(const Dnf& f, const WmcOptions& opts = {});

/// Statistics of the last global call (informational, not thread-safe).
struct WmcStats {
  size_t calls = 0;
  size_t memo_hits = 0;
  size_t components_split = 0;
};
const WmcStats& LastWmcStats();

}  // namespace dissodb

#endif  // DISSODB_INFER_EXACT_H_
