#include "src/dissociation/minimal_plans.h"

#include <algorithm>

#include "src/query/cuts.h"

namespace dissodb {

namespace {

class MinimalPlanEnumerator {
 public:
  MinimalPlanEnumerator(const ConjunctiveQuery& q, std::vector<WorkAtom> atoms,
                        bool use_dr)
      : q_(q), atoms_(std::move(atoms)), use_dr_(use_dr) {}

  Result<std::vector<PlanPtr>> Run() { return Rec(atoms_, q_.HeadMask()); }

 private:
  PlanPtr Leaf(const WorkAtom& a) const {
    return MakeScan(a.atom_idx, q_.AtomMask(a.atom_idx),
                    a.vars & ~q_.AtomMask(a.atom_idx));
  }

  static int CountProbabilistic(const std::vector<WorkAtom>& atoms) {
    int n = 0;
    for (const auto& a : atoms) n += a.probabilistic ? 1 : 0;
    return n;
  }

  /// Line 1 (plain) / modification 2 (DR): the base case.
  ///
  /// With at most one probabilistic relation left, dissociating every
  /// DETERMINISTIC atom on all missing existential variables is free
  /// (Lemma 22) and always yields a hierarchical query whose unique safe
  /// plan is exact. When the probabilistic atom already contains every
  /// existential variable this degenerates to the paper's single
  /// join-all-project plan; when it does not, the literal join-all would
  /// dissociate the probabilistic relation (not exact), so we emit the
  /// safe plan of the DR-only dissociation instead.
  Result<PlanPtr> BaseCase(const std::vector<WorkAtom>& atoms,
                           VarMask head) const {
    if (atoms.size() == 1) {
      PlanPtr p = Leaf(atoms[0]);
      if (p->head != head) p = MakeProject(head, p);
      return p;
    }
    VarMask evars = UnionVars(atoms) & ~head;
    std::vector<WorkAtom> datoms = atoms;
    for (auto& a : datoms) {
      if (!a.probabilistic) a.vars |= evars;
    }
    return SafePlanForWorkAtoms(q_, std::move(datoms), head);
  }

  Result<std::vector<PlanPtr>> Rec(const std::vector<WorkAtom>& atoms,
                                   VarMask head) {
    VarMask all = UnionVars(atoms);
    head &= all;
    const bool stop = use_dr_ ? CountProbabilistic(atoms) <= 1
                              : atoms.size() == 1;
    if (stop) {
      auto base = BaseCase(atoms, head);
      if (!base.ok()) return base.status();
      return std::vector<PlanPtr>{*base};
    }
    VarMask evars = all & ~head;
    auto comps = ConnectedComponents(atoms, evars);
    std::vector<PlanPtr> out;
    if (comps.size() > 1) {
      // Lines 3-6: cross product of component plan sets, joined.
      std::vector<std::vector<PlanPtr>> lists;
      for (const auto& comp : comps) {
        std::vector<WorkAtom> sub;
        for (int idx : comp) sub.push_back(atoms[idx]);
        VarMask sub_head = head & UnionVars(sub);
        auto plans = Rec(sub, sub_head);
        if (!plans.ok()) return plans.status();
        lists.push_back(std::move(*plans));
      }
      std::vector<size_t> idx(lists.size(), 0);
      for (;;) {
        std::vector<PlanPtr> children;
        children.reserve(lists.size());
        for (size_t i = 0; i < lists.size(); ++i) {
          children.push_back(lists[i][idx[i]]);
        }
        out.push_back(MakeJoin(std::move(children)));
        size_t i = 0;
        for (; i < lists.size(); ++i) {
          if (++idx[i] < lists[i].size()) break;
          idx[i] = 0;
        }
        if (i == lists.size()) break;
      }
    } else {
      // Lines 8-10: one projection per minimal cut-set.
      auto cuts = use_dr_ ? MinPCuts(atoms, evars) : MinCuts(atoms, evars);
      if (!cuts.ok()) return cuts.status();
      for (VarMask y : *cuts) {
        auto plans = Rec(atoms, head | y);
        if (!plans.ok()) return plans.status();
        for (auto& p : *plans) {
          out.push_back(MakeProject(head, std::move(p)));
        }
      }
    }
    return out;
  }

  const ConjunctiveQuery& q_;
  std::vector<WorkAtom> atoms_;
  bool use_dr_;
};

}  // namespace

Dissociation ChaseDissociation(const ConjunctiveQuery& q,
                               const SchemaKnowledge& sk) {
  Dissociation d = Dissociation::Empty(q);
  VarMask evars = q.EVarMask();
  for (int i = 0; i < q.num_atoms(); ++i) {
    VarMask vars = q.AtomMask(i);
    d.extra[i] = (FDClosure(vars, sk.fds) & ~vars) & evars;
  }
  return d;
}

Result<std::vector<PlanPtr>> EnumerateMinimalPlans(
    const ConjunctiveQuery& q, const SchemaKnowledge& sk,
    const PlanEnumOptions& opts) {
  std::vector<WorkAtom> atoms;
  if (opts.use_fds && !sk.fds.empty()) {
    atoms = ApplyDissociation(q, sk, ChaseDissociation(q, sk));
  } else {
    atoms = MakeWorkAtoms(q, sk);
  }
  MinimalPlanEnumerator e(q, std::move(atoms), opts.use_deterministic);
  return e.Run();
}

Result<std::vector<PlanPtr>> EnumerateMinimalPlans(const ConjunctiveQuery& q) {
  return EnumerateMinimalPlans(q, SchemaKnowledge::None(q), PlanEnumOptions{});
}

Result<bool> IsSafeQuery(const ConjunctiveQuery& q, const SchemaKnowledge& sk,
                         const PlanEnumOptions& opts) {
  auto plans = EnumerateMinimalPlans(q, sk, opts);
  if (!plans.ok()) return plans.status();
  return plans->size() == 1;
}

}  // namespace dissodb
