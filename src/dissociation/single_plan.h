// Optimizations 1 & 2 (Section 4): one single plan computing the propagation
// score, with the min operator pushed down into the leaves (Algorithm 2) and
// common subplans shared as DAG nodes (Algorithm 3's views).
#ifndef DISSODB_DISSOCIATION_SINGLE_PLAN_H_
#define DISSODB_DISSOCIATION_SINGLE_PLAN_H_

#include "src/common/status.h"
#include "src/dissociation/minimal_plans.h"
#include "src/plan/plan.h"
#include "src/query/analysis.h"
#include "src/query/cq.h"

namespace dissodb {

struct SinglePlanOptions {
  /// Opt. 2: memoize subplans by (atom set, head) so identical subqueries
  /// become shared DAG nodes, evaluated once (the paper's views).
  bool reuse_common_subplans = true;
  PlanEnumOptions enum_opts;
};

/// Builds the single min-plan of Algorithm 2. Without subplan reuse the
/// result is a tree (Figure 4b); with reuse it is a DAG (Figure 4c).
Result<PlanPtr> BuildSinglePlan(const ConjunctiveQuery& q,
                                const SchemaKnowledge& sk,
                                const SinglePlanOptions& opts = {});

}  // namespace dissodb

#endif  // DISSODB_DISSOCIATION_SINGLE_PLAN_H_
