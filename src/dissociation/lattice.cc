#include "src/dissociation/lattice.h"

#include <algorithm>
#include <utility>

namespace dissodb {

namespace {

constexpr int kMaxLatticeBits = 20;

/// The "dissociation slots" of q: (atom, variable) pairs that may receive an
/// extra variable. Their count is the K of the 2^K lattice size.
std::vector<std::pair<int, VarId>> DissociationSlots(const ConjunctiveQuery& q) {
  std::vector<std::pair<int, VarId>> slots;
  VarMask evars = q.EVarMask();
  for (int i = 0; i < q.num_atoms(); ++i) {
    for (VarId v : MaskToVars(evars & ~q.AtomMask(i))) {
      slots.emplace_back(i, v);
    }
  }
  return slots;
}

}  // namespace

Result<std::vector<Dissociation>> EnumerateAllDissociations(
    const ConjunctiveQuery& q) {
  auto slots = DissociationSlots(q);
  const int k = static_cast<int>(slots.size());
  if (k > kMaxLatticeBits) {
    return Status::OutOfRange("dissociation lattice too large: 2^" +
                              std::to_string(k));
  }
  std::vector<Dissociation> out;
  out.reserve(size_t{1} << k);
  for (uint64_t bits = 0; bits < (uint64_t{1} << k); ++bits) {
    Dissociation d = Dissociation::Empty(q);
    uint64_t b = bits;
    while (b) {
      int s = __builtin_ctzll(b);
      d.extra[slots[s].first] |= MaskOf(slots[s].second);
      b &= b - 1;
    }
    out.push_back(std::move(d));
  }
  // Sort bottom-up by total dissociated-variable count (linear extension).
  std::stable_sort(out.begin(), out.end(),
                   [](const Dissociation& a, const Dissociation& b) {
                     int ca = 0, cb = 0;
                     for (VarMask m : a.extra) ca += MaskCount(m);
                     for (VarMask m : b.extra) cb += MaskCount(m);
                     return ca < cb;
                   });
  return out;
}

Result<std::vector<Dissociation>> EnumerateSafeDissociations(
    const ConjunctiveQuery& q) {
  auto all = EnumerateAllDissociations(q);
  if (!all.ok()) return all.status();
  std::vector<Dissociation> out;
  for (auto& d : *all) {
    if (IsSafeDissociation(q, d)) out.push_back(std::move(d));
  }
  return out;
}

Result<std::vector<Dissociation>> EnumerateMinimalSafeDissociations(
    const ConjunctiveQuery& q) {
  auto safe = EnumerateSafeDissociations(q);
  if (!safe.ok()) return safe.status();
  std::vector<Dissociation> out;
  // `safe` is sorted bottom-up, so a safe Delta is minimal iff it is not
  // above any previously kept minimal one.
  for (auto& d : *safe) {
    bool dominated = false;
    for (const auto& m : out) {
      if (DissociationLeq(m, d)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) out.push_back(std::move(d));
  }
  return out;
}

Result<std::vector<PlanPtr>> EnumerateAllPlans(const ConjunctiveQuery& q) {
  // By Theorem 18 the plans of q are exactly the (stripped) unique safe
  // plans of its safe dissociations. Enumerating them through the lattice is
  // the only correct general method: a join's children are the connected
  // components of the *dissociated* query, which may merge components of the
  // original query (e.g. Example 17's plans 5 and 6).
  auto safe = EnumerateSafeDissociations(q);
  if (!safe.ok()) return safe.status();
  std::vector<PlanPtr> out;
  out.reserve(safe->size());
  for (const auto& d : *safe) {
    auto plan = SafePlanForDissociation(q, d);
    if (!plan.ok()) return plan.status();
    out.push_back(std::move(*plan));
  }
  return out;
}

}  // namespace dissodb
