#include "src/dissociation/dissociation.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "src/common/string_util.h"

namespace dissodb {

Dissociation Dissociation::Top(const ConjunctiveQuery& q) {
  Dissociation d = Empty(q);
  VarMask evars = q.EVarMask();
  for (int i = 0; i < q.num_atoms(); ++i) {
    d.extra[i] = evars & ~q.AtomMask(i);
  }
  return d;
}

std::string Dissociation::ToString(const ConjunctiveQuery& q) const {
  std::vector<std::string> parts;
  for (int i = 0; i < q.num_atoms(); ++i) {
    std::vector<std::string> names;
    for (VarId v : MaskToVars(extra[i])) names.push_back(q.var_name(v));
    parts.push_back(q.atom(i).relation + ":{" + Join(names, ",") + "}");
  }
  return "Delta(" + Join(parts, " ") + ")";
}

bool DissociationLeq(const Dissociation& a, const Dissociation& b) {
  assert(a.extra.size() == b.extra.size());
  for (size_t i = 0; i < a.extra.size(); ++i) {
    if ((a.extra[i] & ~b.extra[i]) != 0) return false;
  }
  return true;
}

bool DissociationLeqP(const ConjunctiveQuery& q, const SchemaKnowledge& sk,
                      const Dissociation& a, const Dissociation& b) {
  for (int i = 0; i < q.num_atoms(); ++i) {
    if (sk.IsDeterministic(i)) continue;
    VarMask closure = FDClosure(q.AtomMask(i), sk.fds);
    VarMask ya = a.extra[i] & ~closure;
    VarMask yb = b.extra[i] & ~closure;
    if ((ya & ~yb) != 0) return false;
  }
  return true;
}

std::vector<WorkAtom> ApplyDissociation(const ConjunctiveQuery& q,
                                        const SchemaKnowledge& sk,
                                        const Dissociation& delta) {
  std::vector<WorkAtom> atoms = MakeWorkAtoms(q, sk);
  for (int i = 0; i < q.num_atoms(); ++i) atoms[i].vars |= delta.extra[i];
  return atoms;
}

bool IsSafeDissociation(const ConjunctiveQuery& q, const Dissociation& delta) {
  SchemaKnowledge none = SchemaKnowledge::None(q);
  std::vector<WorkAtom> atoms = ApplyDissociation(q, none, delta);
  return IsHierarchical(atoms, q.EVarMask());
}

Status ValidateDissociation(const ConjunctiveQuery& q,
                            const Dissociation& delta) {
  if (static_cast<int>(delta.extra.size()) != q.num_atoms()) {
    return Status::InvalidArgument("dissociation arity != number of atoms");
  }
  VarMask evars = q.EVarMask();
  for (int i = 0; i < q.num_atoms(); ++i) {
    if ((delta.extra[i] & q.AtomMask(i)) != 0) {
      return Status::InvalidArgument(
          "atom " + q.atom(i).relation + " dissociated on its own variable");
    }
    if ((delta.extra[i] & ~evars) != 0) {
      return Status::InvalidArgument(
          "atom " + q.atom(i).relation +
          " dissociated on a non-existential variable");
    }
  }
  return Status::OK();
}

Result<MaterializedDissociation> MaterializeDissociation(
    const Database& db, const ConjunctiveQuery& q, const Dissociation& delta,
    size_t max_rows) {
  DISSODB_RETURN_NOT_OK(ValidateDissociation(q, delta));

  // Active domain per variable: values occurring in any column bound to it,
  // plus the column type (taken from the first occurrence).
  std::vector<std::set<Value>> adom(q.num_vars());
  std::vector<ValueType> var_type(q.num_vars(), ValueType::kInt64);
  std::vector<bool> has_type(q.num_vars(), false);
  for (int i = 0; i < q.num_atoms(); ++i) {
    const Atom& a = q.atom(i);
    auto tr = db.GetTable(a.relation);
    if (!tr.ok()) return tr.status();
    const Table& t = **tr;
    if (t.arity() != a.arity()) {
      return Status::InvalidArgument("arity mismatch for " + a.relation);
    }
    for (int pos = 0; pos < a.arity(); ++pos) {
      if (!a.terms[pos].is_var) continue;
      VarId v = a.terms[pos].var;
      if (!has_type[v]) {
        var_type[v] = t.schema().column_types[pos];
        has_type[v] = true;
      }
      for (size_t r = 0; r < t.NumRows(); ++r) adom[v].insert(t.At(r, pos));
    }
  }

  MaterializedDissociation out;
  out.db = db.Clone();  // keeps original tables and the string pool

  ConjunctiveQuery dq;
  for (int v = 0; v < q.num_vars(); ++v) dq.AddVar(q.var_name(v));
  dq.SetName(q.name());
  for (VarId h : q.head_vars()) {
    DISSODB_RETURN_NOT_OK(dq.AddHeadVar(h));
  }

  for (int i = 0; i < q.num_atoms(); ++i) {
    const Atom& a = q.atom(i);
    const Table& t = **db.GetTable(a.relation);
    std::vector<VarId> extras = MaskToVars(delta.extra[i]);

    RelationSchema schema = t.schema();
    schema.name = a.relation + "__d" + std::to_string(i);
    for (VarId v : extras) {
      schema.column_names.push_back("x_" + q.var_name(v));
      schema.column_types.push_back(var_type[v]);
    }

    // Row blowup guard.
    size_t combos = 1;
    for (VarId v : extras) {
      if (adom[v].empty()) combos = 0;
      if (combos > 0 && adom[v].size() > max_rows / std::max<size_t>(combos, 1)) {
        return Status::OutOfRange("dissociated table too large");
      }
      combos *= std::max<size_t>(adom[v].size(), 1);
    }
    if (t.NumRows() * combos > max_rows) {
      return Status::OutOfRange("dissociated table too large");
    }

    Table dt(schema);
    std::vector<std::vector<Value>> domains;
    for (VarId v : extras) {
      domains.emplace_back(adom[v].begin(), adom[v].end());
    }
    std::vector<Value> row(schema.arity());
    for (size_t r = 0; r < t.NumRows(); ++r) {
      for (int c = 0; c < t.arity(); ++c) row[c] = t.At(r, c);
      // Odometer over the extra-variable domains.
      std::vector<size_t> idx(extras.size(), 0);
      bool more = combos > 0;
      while (more) {
        for (size_t e = 0; e < extras.size(); ++e) {
          row[t.arity() + e] = domains[e][idx[e]];
        }
        dt.AddRow(row, t.Prob(r));
        more = false;
        for (size_t e = 0; e < extras.size(); ++e) {
          if (++idx[e] < domains[e].size()) {
            more = true;
            break;
          }
          idx[e] = 0;
        }
      }
    }
    auto add = out.db.AddTable(std::move(dt));
    if (!add.ok()) return add.status();

    Atom da;
    da.relation = schema.name;
    da.terms = a.terms;
    for (VarId v : extras) da.terms.push_back(Term::Var(v));
    DISSODB_RETURN_NOT_OK(dq.AddAtom(std::move(da)));
  }
  out.query = std::move(dq);
  return out;
}

namespace {

void ExtractRec(const PlanPtr& p, VarMask evars, VarMask inherited,
                Dissociation* d) {
  switch (p->kind) {
    case PlanNode::Kind::kScan:
      d->extra[p->atom_idx] |= (inherited | p->extra_vars) & evars;
      break;
    case PlanNode::Kind::kProject:
      ExtractRec(p->children[0], evars, inherited, d);
      break;
    case PlanNode::Kind::kMin:
      // Not meaningful for min plans; traverse for robustness.
      for (const auto& c : p->children) ExtractRec(c, evars, inherited, d);
      break;
    case PlanNode::Kind::kJoin: {
      VarMask jvar = 0;
      for (const auto& c : p->children) jvar |= c->head;
      for (const auto& c : p->children) {
        VarMask missing = (jvar & ~c->head) & evars;
        ExtractRec(c, evars, inherited | missing, d);
      }
      break;
    }
  }
}

Result<PlanPtr> BuildSafeRec(const ConjunctiveQuery& q,
                             std::vector<WorkAtom> atoms, VarMask head) {
  VarMask all = UnionVars(atoms);
  head &= all;
  if (atoms.size() == 1) {
    const WorkAtom& a = atoms[0];
    PlanPtr scan = MakeScan(a.atom_idx, q.AtomMask(a.atom_idx),
                            a.vars & ~q.AtomMask(a.atom_idx));
    if (head != scan->head) return MakeProject(head, scan);
    return scan;
  }
  VarMask evars = all & ~head;
  auto comps = ConnectedComponents(atoms, evars);
  if (comps.size() > 1) {
    std::vector<PlanPtr> children;
    for (const auto& comp : comps) {
      std::vector<WorkAtom> sub;
      for (int idx : comp) sub.push_back(atoms[idx]);
      VarMask sub_head = head & UnionVars(sub);
      auto child = BuildSafeRec(q, std::move(sub), sub_head);
      if (!child.ok()) return child.status();
      children.push_back(*child);
    }
    return MakeJoin(std::move(children));
  }
  VarMask sep = SeparatorVars(atoms, evars);
  if (sep == 0) {
    return Status::InvalidArgument(
        "query/dissociation is not hierarchical: no separator variable");
  }
  auto child = BuildSafeRec(q, std::move(atoms), head | sep);
  if (!child.ok()) return child.status();
  return MakeProject(head, *child);
}

}  // namespace

Dissociation ExtractDissociation(const PlanPtr& plan,
                                 const ConjunctiveQuery& q) {
  Dissociation d = Dissociation::Empty(q);
  ExtractRec(plan, q.EVarMask(), 0, &d);
  return d;
}

Result<PlanPtr> SafePlanForWorkAtoms(const ConjunctiveQuery& q,
                                     std::vector<WorkAtom> atoms,
                                     VarMask head) {
  return BuildSafeRec(q, std::move(atoms), head);
}

Result<PlanPtr> SafePlanForDissociation(const ConjunctiveQuery& q,
                                        const Dissociation& delta) {
  DISSODB_RETURN_NOT_OK(ValidateDissociation(q, delta));
  SchemaKnowledge none = SchemaKnowledge::None(q);
  std::vector<WorkAtom> atoms = ApplyDissociation(q, none, delta);
  return BuildSafeRec(q, std::move(atoms), q.HeadMask());
}

Result<PlanPtr> SafePlanForQuery(const ConjunctiveQuery& q) {
  return SafePlanForDissociation(q, Dissociation::Empty(q));
}

}  // namespace dissodb
