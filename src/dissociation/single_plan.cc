#include "src/dissociation/single_plan.h"

#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/hash.h"
#include "src/query/cuts.h"

namespace dissodb {

namespace {

struct MemoKey {
  uint64_t atom_set;
  VarMask head;
  bool operator==(const MemoKey& o) const {
    return atom_set == o.atom_set && head == o.head;
  }
};
struct MemoKeyHash {
  size_t operator()(const MemoKey& k) const {
    size_t h = Mix64(k.atom_set);
    HashCombine(&h, Mix64(k.head));
    return h;
  }
};

class SinglePlanBuilder {
 public:
  SinglePlanBuilder(const ConjunctiveQuery& q, std::vector<WorkAtom> atoms,
                    bool use_dr, bool memoize)
      : q_(q), atoms_(std::move(atoms)), use_dr_(use_dr), memoize_(memoize) {}

  Result<PlanPtr> Run() {
    std::vector<int> all;
    for (int i = 0; i < q_.num_atoms(); ++i) all.push_back(i);
    return Rec(all, q_.HeadMask());
  }

 private:
  PlanPtr Leaf(int atom_idx) const {
    const WorkAtom& a = atoms_[atom_idx];
    return MakeScan(a.atom_idx, q_.AtomMask(a.atom_idx),
                    a.vars & ~q_.AtomMask(a.atom_idx));
  }

  Result<PlanPtr> Rec(const std::vector<int>& idxs, VarMask head) {
    std::vector<WorkAtom> atoms;
    for (int i : idxs) atoms.push_back(atoms_[i]);
    VarMask all = UnionVars(atoms);
    head &= all;

    uint64_t atom_set = 0;
    for (int i : idxs) atom_set |= uint64_t{1} << i;
    MemoKey key{atom_set, head};
    if (memoize_) {
      auto it = memo_.find(key);
      if (it != memo_.end()) return it->second;
    }

    int n_prob = 0;
    for (const auto& a : atoms) n_prob += a.probabilistic ? 1 : 0;
    const bool stop = use_dr_ ? n_prob <= 1 : atoms.size() == 1;

    PlanPtr result;
    if (stop) {
      if (idxs.size() == 1) {
        result = Leaf(idxs[0]);
        if (result->head != head) result = MakeProject(head, result);
      } else {
        // See MinimalPlanEnumerator::BaseCase: dissociate the deterministic
        // atoms fully (free by Lemma 22) and emit the unique safe plan.
        VarMask evars = all & ~head;
        std::vector<WorkAtom> datoms = atoms;
        for (auto& a : datoms) {
          if (!a.probabilistic) a.vars |= evars;
        }
        auto base = SafePlanForWorkAtoms(q_, std::move(datoms), head);
        if (!base.ok()) return base.status();
        result = *base;
      }
    } else {
      VarMask evars = all & ~head;
      auto comps = ConnectedComponents(atoms, evars);
      if (comps.size() > 1) {
        std::vector<PlanPtr> children;
        for (const auto& comp : comps) {
          std::vector<int> sub;
          for (int ci : comp) sub.push_back(idxs[ci]);
          std::vector<WorkAtom> sub_atoms;
          for (int i : sub) sub_atoms.push_back(atoms_[i]);
          auto child = Rec(sub, head & UnionVars(sub_atoms));
          if (!child.ok()) return child.status();
          children.push_back(std::move(*child));
        }
        result = MakeJoin(std::move(children));
      } else {
        auto cuts = use_dr_ ? MinPCuts(atoms, evars) : MinCuts(atoms, evars);
        if (!cuts.ok()) return cuts.status();
        if (cuts->empty()) {
          return Status::Internal("connected query with no cut-set");
        }
        std::vector<PlanPtr> branches;
        for (VarMask y : *cuts) {
          auto child = Rec(idxs, head | y);
          if (!child.ok()) return child.status();
          PlanPtr branch = *child;
          if (branch->head != head) branch = MakeProject(head, branch);
          branches.push_back(std::move(branch));
        }
        result = MakeMin(std::move(branches));
      }
    }
    if (memoize_) memo_.emplace(key, result);
    return result;
  }

  const ConjunctiveQuery& q_;
  std::vector<WorkAtom> atoms_;  // indexed by original atom index
  bool use_dr_;
  bool memoize_;
  std::unordered_map<MemoKey, PlanPtr, MemoKeyHash> memo_;
};

}  // namespace

Result<PlanPtr> BuildSinglePlan(const ConjunctiveQuery& q,
                                const SchemaKnowledge& sk,
                                const SinglePlanOptions& opts) {
  std::vector<WorkAtom> atoms;
  if (opts.enum_opts.use_fds && !sk.fds.empty()) {
    atoms = ApplyDissociation(q, sk, ChaseDissociation(q, sk));
  } else {
    atoms = MakeWorkAtoms(q, sk);
  }
  SinglePlanBuilder b(q, std::move(atoms), opts.enum_opts.use_deterministic,
                      opts.reuse_common_subplans);
  return b.Run();
}

}  // namespace dissodb
