// Public facade: the propagation score rho(q) (Definition 14).
//
// rho(q) = min over all minimal safe dissociations of P(q^Delta), computed by
// evaluating query plans directly on the original database (Theorem 18) with
// any combination of the paper's three optimizations. For safe queries the
// score equals the exact probability (conservativity).
#ifndef DISSODB_DISSOCIATION_PROPAGATION_H_
#define DISSODB_DISSOCIATION_PROPAGATION_H_

#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/dissociation/minimal_plans.h"
#include "src/exec/ranking.h"
#include "src/exec/rel.h"
#include "src/query/cq.h"
#include "src/storage/database.h"

namespace dissodb {

/// Evaluation strategy toggles (Section 4). All combinations are valid and
/// produce identical scores; they differ only in runtime.
struct PropagationOptions {
  bool opt1_single_plan = true;       ///< Algorithm 2: one min-plan
  bool opt2_reuse_subplans = true;    ///< Algorithm 3: shared views (needs opt1)
  bool opt3_semijoin_reduction = false;  ///< deterministic semi-join reduction
  PlanEnumOptions enum_opts;          ///< DR/FD schema knowledge
};

struct PropagationResult {
  /// Answers sorted by descending propagation score.
  std::vector<RankedAnswer> answers;
  /// Number of minimal plans (1 iff the query is safe given the knowledge).
  size_t num_minimal_plans = 0;
  /// Plan-DAG nodes actually evaluated (shows Opt. 2 sharing).
  size_t nodes_evaluated = 0;
};

/// Computes rho(q) for every answer tuple. `overrides` optionally rebinds
/// atoms to filtered tables (per-query selections); pointers must stay alive
/// during the call.
Result<PropagationResult> PropagationScore(
    const Database& db, const ConjunctiveQuery& q,
    const PropagationOptions& opts = {},
    const std::unordered_map<int, const Table*>& overrides = {});

/// Boolean-query convenience: rho(q) as a single number (1 row, empty head).
/// Returns 0 when the query has no satisfying assignment.
Result<double> PropagationScoreBoolean(
    const Database& db, const ConjunctiveQuery& q,
    const PropagationOptions& opts = {});

/// Evaluates one specific plan and returns its per-answer scores sorted by
/// descending score (Corollary 19: every plan upper-bounds P(q)).
Result<std::vector<RankedAnswer>> PlanScore(
    const Database& db, const ConjunctiveQuery& q, const PlanPtr& plan,
    const std::unordered_map<int, const Table*>& overrides = {});

}  // namespace dissodb

#endif  // DISSODB_DISSOCIATION_PROPAGATION_H_
