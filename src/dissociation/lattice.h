// The dissociation lattice (Figure 1a) and exhaustive plan enumeration.
//
// These routines are exponential in the query size and exist for (a) the
// Figure 2 table, and (b) cross-validating the efficient algorithms: safe
// dissociations must be in 1-to-1 correspondence with plans (Theorem 18) and
// minimal safe dissociations with Algorithm 1's output (Theorem 20).
#ifndef DISSODB_DISSOCIATION_LATTICE_H_
#define DISSODB_DISSOCIATION_LATTICE_H_

#include <vector>

#include "src/common/status.h"
#include "src/dissociation/dissociation.h"

namespace dissodb {

/// All 2^K dissociations of q, bottom-up by total extra-variable count
/// (a linear extension of the partial order). Guarded to K <= 20.
Result<std::vector<Dissociation>> EnumerateAllDissociations(
    const ConjunctiveQuery& q);

/// All safe dissociations (hierarchical q^Delta).
Result<std::vector<Dissociation>> EnumerateSafeDissociations(
    const ConjunctiveQuery& q);

/// Minimal safe dissociations under the plain partial order (Def. 15):
/// safe Deltas with no strictly smaller safe Delta.
Result<std::vector<Dissociation>> EnumerateMinimalSafeDissociations(
    const ConjunctiveQuery& q);

/// All query plans of q (Definition 4, joins/projections alternating,
/// no identity projections). In 1-to-1 correspondence with safe
/// dissociations by Theorem 18.
Result<std::vector<PlanPtr>> EnumerateAllPlans(const ConjunctiveQuery& q);

}  // namespace dissodb

#endif  // DISSODB_DISSOCIATION_LATTICE_H_
