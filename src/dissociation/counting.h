// Counting minimal plans, total plans, and dissociations (Figure 2).
//
// Three quantities:
//  - CountMinimalPlans: #MP, mirrors Algorithm 1 (validated against the
//    paper's k! / Catalan rows and against lattice enumeration).
//  - CountTotalPlans: the paper's #P column (A000670 Fubini for stars,
//    A001003 super-Catalan for chains). This counts plans whose joins range
//    over connected components of the *original* subquery — the plan space
//    the paper tabulates in Figure 2.
//  - CountSafeDissociations: the exact number of hierarchical dissociations
//    (Definition 13), validated against exhaustive lattice enumeration.
//
// Reproduction note: the last two differ for some queries. Figure 1b counts
// 5 plans for Example 17, which requires joins over components merged by
// the dissociation itself (plans 5 and 6) — CountSafeDissociations captures
// those. For k >= 4 chains, however, additional hierarchical dissociations
// exist that differ only in projection placement over the same join shape
// (e.g. 17 for the 4-chain), which Figure 2's closed forms (11) exclude.
// We reproduce the paper's table with CountTotalPlans and expose the exact
// lattice count separately; see EXPERIMENTS.md.
#ifndef DISSODB_DISSOCIATION_COUNTING_H_
#define DISSODB_DISSOCIATION_COUNTING_H_

#include <cstdint>

#include "src/common/status.h"
#include "src/query/cq.h"

namespace dissodb {

/// Number of minimal plans (= minimal safe dissociations, Theorem 20),
/// without schema knowledge.
Result<uint64_t> CountMinimalPlans(const ConjunctiveQuery& q);

/// The paper's Figure 2 "#P" count: plans whose joins range over connected
/// components of the original subquery.
Result<uint64_t> CountTotalPlans(const ConjunctiveQuery& q);

/// Exact number of safe (hierarchical) dissociations, by a
/// partition-over-merged-components recursion; equals lattice enumeration.
Result<uint64_t> CountSafeDissociations(const ConjunctiveQuery& q);

/// K: the number of (atom, missing existential variable) slots; the lattice
/// has 2^K elements.
int DissociationExponent(const ConjunctiveQuery& q);

/// 2^K, or OutOfRange if K > 63.
Result<uint64_t> CountAllDissociations(const ConjunctiveQuery& q);

}  // namespace dissodb

#endif  // DISSODB_DISSOCIATION_COUNTING_H_
