#include "src/dissociation/propagation.h"

#include "src/engine/query_engine.h"
#include "src/exec/evaluator.h"

namespace dissodb {

Result<PropagationResult> PropagationScore(
    const Database& db, const ConjunctiveQuery& q,
    const PropagationOptions& opts,
    const std::unordered_map<int, const Table*>& overrides) {
  // One-shot engine without a plan cache: the engine facade owns the
  // pipeline (parse -> plans -> reduction -> evaluation); this remains the
  // paper-facing functional API over it.
  EngineOptions eo;
  eo.propagation = opts;
  eo.plan_cache_capacity = 0;
  QueryEngine engine = QueryEngine::Borrow(db, eo);
  auto r = engine.Run(q, overrides);
  if (!r.ok()) return r.status();
  PropagationResult result;
  result.answers = std::move(r->answers);
  result.num_minimal_plans = r->num_minimal_plans;
  result.nodes_evaluated = r->nodes_evaluated;
  return result;
}

Result<double> PropagationScoreBoolean(const Database& db,
                                       const ConjunctiveQuery& q,
                                       const PropagationOptions& opts) {
  if (!q.IsBoolean()) {
    return Status::InvalidArgument("query has head variables");
  }
  auto r = PropagationScore(db, q, opts);
  if (!r.ok()) return r.status();
  if (r->answers.empty()) return 0.0;
  return r->answers[0].score;
}

Result<std::vector<RankedAnswer>> PlanScore(
    const Database& db, const ConjunctiveQuery& q, const PlanPtr& plan,
    const std::unordered_map<int, const Table*>& overrides) {
  PlanEvaluator ev(db, q);
  for (const auto& [idx, table] : overrides) ev.SetAtomTable(idx, table);
  auto rel = ev.Evaluate(plan);
  if (!rel.ok()) return rel.status();
  return RankAnswers(**rel);
}

}  // namespace dissodb
