#include "src/dissociation/propagation.h"

#include "src/dissociation/single_plan.h"
#include "src/exec/evaluator.h"
#include "src/exec/semijoin.h"

namespace dissodb {

Result<PropagationResult> PropagationScore(
    const Database& db, const ConjunctiveQuery& q,
    const PropagationOptions& opts,
    const std::unordered_map<int, const Table*>& overrides) {
  auto sk = SchemaKnowledge::FromDatabase(q, db);
  if (!sk.ok()) return sk.status();

  PropagationResult result;
  {
    auto plans = EnumerateMinimalPlans(q, *sk, opts.enum_opts);
    if (!plans.ok()) return plans.status();
    result.num_minimal_plans = plans->size();
  }

  // Opt. 3: semi-join-reduce the inputs first.
  std::vector<Table> reduced;
  std::unordered_map<int, const Table*> effective = overrides;
  if (opts.opt3_semijoin_reduction) {
    auto r = SemiJoinReduce(db, q, overrides);
    if (!r.ok()) return r.status();
    reduced = std::move(*r);
    for (int i = 0; i < q.num_atoms(); ++i) effective[i] = &reduced[i];
  }

  Rel scores(std::vector<VarId>{});
  if (opts.opt1_single_plan) {
    SinglePlanOptions sp;
    sp.reuse_common_subplans = opts.opt2_reuse_subplans;
    sp.enum_opts = opts.enum_opts;
    auto plan = BuildSinglePlan(q, *sk, sp);
    if (!plan.ok()) return plan.status();
    PlanEvaluator ev(db, q);
    for (const auto& [idx, table] : effective) ev.SetAtomTable(idx, table);
    auto rel = ev.Evaluate(*plan);
    if (!rel.ok()) return rel.status();
    result.nodes_evaluated = ev.nodes_evaluated();
    scores = **rel;
  } else {
    auto plans = EnumerateMinimalPlans(q, *sk, opts.enum_opts);
    if (!plans.ok()) return plans.status();
    auto rel = EvaluatePlansSeparately(db, q, *plans, effective);
    if (!rel.ok()) return rel.status();
    for (const auto& p : *plans) result.nodes_evaluated += MeasurePlan(p).tree_nodes;
    scores = std::move(*rel);
  }
  result.answers = RankAnswers(scores);
  return result;
}

Result<double> PropagationScoreBoolean(const Database& db,
                                       const ConjunctiveQuery& q,
                                       const PropagationOptions& opts) {
  if (!q.IsBoolean()) {
    return Status::InvalidArgument("query has head variables");
  }
  auto r = PropagationScore(db, q, opts);
  if (!r.ok()) return r.status();
  if (r->answers.empty()) return 0.0;
  return r->answers[0].score;
}

Result<std::vector<RankedAnswer>> PlanScore(
    const Database& db, const ConjunctiveQuery& q, const PlanPtr& plan,
    const std::unordered_map<int, const Table*>& overrides) {
  PlanEvaluator ev(db, q);
  for (const auto& [idx, table] : overrides) ev.SetAtomTable(idx, table);
  auto rel = ev.Evaluate(plan);
  if (!rel.ok()) return rel.status();
  return RankAnswers(**rel);
}

}  // namespace dissodb
