#include "src/dissociation/counting.h"

#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/hash.h"
#include "src/query/analysis.h"
#include "src/query/cuts.h"

namespace dissodb {

namespace {

struct MemoKey {
  uint64_t atom_set;
  VarMask head;
  bool operator==(const MemoKey& o) const {
    return atom_set == o.atom_set && head == o.head;
  }
};
struct MemoKeyHash {
  size_t operator()(const MemoKey& k) const {
    size_t h = Mix64(k.atom_set);
    HashCombine(&h, Mix64(k.head));
    return h;
  }
};

/// Counts minimal plans by mirroring Algorithm 1's recursion.
class MinimalPlanCounter {
 public:
  explicit MinimalPlanCounter(const ConjunctiveQuery& q) : q_(q) {
    SchemaKnowledge none = SchemaKnowledge::None(q);
    atoms_ = MakeWorkAtoms(q, none);
  }

  Result<uint64_t> Count() {
    std::vector<int> all;
    for (int i = 0; i < q_.num_atoms(); ++i) all.push_back(i);
    return CountRec(all, q_.HeadMask());
  }

 private:
  Result<uint64_t> CountRec(const std::vector<int>& idxs, VarMask head) {
    std::vector<WorkAtom> atoms;
    for (int i : idxs) atoms.push_back(atoms_[i]);
    VarMask all = UnionVars(atoms);
    head &= all;
    uint64_t atom_set = 0;
    for (int i : idxs) atom_set |= uint64_t{1} << i;
    MemoKey key{atom_set, head};
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;

    uint64_t total = 0;
    if (atoms.size() == 1) {
      total = 1;
    } else {
      VarMask evars = all & ~head;
      auto comps = ConnectedComponents(atoms, evars);
      auto product_over = [&](const std::vector<std::vector<int>>& comps_local,
                              VarMask sub_head) -> Result<uint64_t> {
        uint64_t prod = 1;
        for (const auto& comp : comps_local) {
          std::vector<int> sub;
          for (int ci : comp) sub.push_back(idxs[ci]);
          std::vector<WorkAtom> sub_atoms;
          for (int i : sub) sub_atoms.push_back(atoms_[i]);
          auto c = CountRec(sub, sub_head & UnionVars(sub_atoms));
          if (!c.ok()) return c.status();
          prod *= *c;
        }
        return prod;
      };
      if (comps.size() > 1) {
        auto p = product_over(comps, head);
        if (!p.ok()) return p.status();
        total = *p;
      } else {
        auto cuts = MinCuts(atoms, evars);
        if (!cuts.ok()) return cuts.status();
        for (VarMask y : *cuts) {
          auto comps2 = ConnectedComponents(atoms, evars & ~y);
          auto p = product_over(comps2, head | y);
          if (!p.ok()) return p.status();
          total += *p;
        }
      }
    }
    memo_.emplace(key, total);
    return total;
  }

  const ConjunctiveQuery& q_;
  std::vector<WorkAtom> atoms_;
  std::unordered_map<MemoKey, uint64_t, MemoKeyHash> memo_;
};

/// Counts ALL plans = safe dissociations (Theorem 18) without enumerating
/// the 2^K lattice.
///
/// NC(A, h) counts the dissociations Delta of sub-atom-set A (head h) whose
/// dissociated atoms are hierarchical AND connected through the existential
/// variables outside h. Such a Delta has a non-empty separator y =
/// SVar(A^Delta) \ h: every atom absorbs y, and removing h ∪ y splits
/// A^Delta into >= 2 components. Those components are unions of the
/// components of the ORIGINAL A - (h ∪ y) — dissociation can merge original
/// components but never split them — and the residual dissociation factors
/// over the groups. Summing over the exact separator y and over partitions
/// of the original components into >= 2 groups counts every safe
/// dissociation exactly once (a Delta is counted only under its true
/// separator: under any smaller y the dissociated query stays connected, so
/// no >= 2-group partition exists).
///
/// The top level allows any number of groups >= 1 (a disconnected
/// dissociated query corresponds to a top-level join).
class SafeDissociationCounter {
 public:
  explicit SafeDissociationCounter(const ConjunctiveQuery& q) : q_(q) {
    SchemaKnowledge none = SchemaKnowledge::None(q);
    atoms_ = MakeWorkAtoms(q, none);
  }

  Result<uint64_t> Count() {
    std::vector<int> all;
    for (int i = 0; i < q_.num_atoms(); ++i) all.push_back(i);
    VarMask head = q_.HeadMask();
    // N(A, h): sum over partitions of the components of A - h into groups
    // (>= 1), each group counted by NC.
    std::vector<WorkAtom> atoms;
    for (int i : all) atoms.push_back(atoms_[i]);
    VarMask evars = UnionVars(atoms) & ~head;
    auto comps = ConnectedComponents(atoms, evars);
    return SumOverPartitions(all, comps, head, /*min_groups=*/1);
  }

 private:
  /// Sum over all set-partitions of `comps` (indices into `idxs`) into at
  /// least `min_groups` groups of the product of NC(group, head).
  Result<uint64_t> SumOverPartitions(const std::vector<int>& idxs,
                                     const std::vector<std::vector<int>>& comps,
                                     VarMask head, int min_groups) {
    // Materialize each component as a list of original atom indices.
    std::vector<std::vector<int>> comp_atoms;
    for (const auto& c : comps) {
      std::vector<int> g;
      for (int ci : c) g.push_back(idxs[ci]);
      comp_atoms.push_back(std::move(g));
    }
    std::vector<std::vector<int>> groups;  // current partition (atom lists)
    return PartitionRec(comp_atoms, 0, &groups, head, min_groups);
  }

  Result<uint64_t> PartitionRec(const std::vector<std::vector<int>>& comp_atoms,
                                size_t next,
                                std::vector<std::vector<int>>* groups,
                                VarMask head, int min_groups) {
    if (next == comp_atoms.size()) {
      if (static_cast<int>(groups->size()) < min_groups) return uint64_t{0};
      uint64_t prod = 1;
      for (const auto& g : *groups) {
        auto c = CountConnected(g, head);
        if (!c.ok()) return c.status();
        if (*c == 0) return uint64_t{0};
        prod *= *c;
      }
      return prod;
    }
    uint64_t total = 0;
    // Standard set-partition recursion: put component `next` into an
    // existing group or start a new one.
    for (size_t g = 0; g < groups->size(); ++g) {
      size_t before = (*groups)[g].size();
      (*groups)[g].insert((*groups)[g].end(), comp_atoms[next].begin(),
                          comp_atoms[next].end());
      auto r = PartitionRec(comp_atoms, next + 1, groups, head, min_groups);
      if (!r.ok()) return r.status();
      total += *r;
      (*groups)[g].resize(before);
    }
    groups->push_back(comp_atoms[next]);
    auto r = PartitionRec(comp_atoms, next + 1, groups, head, min_groups);
    if (!r.ok()) return r.status();
    total += *r;
    groups->pop_back();
    return total;
  }

  /// NC(A, h) with memoization.
  Result<uint64_t> CountConnected(const std::vector<int>& idxs, VarMask head) {
    std::vector<WorkAtom> atoms;
    for (int i : idxs) atoms.push_back(atoms_[i]);
    VarMask all = UnionVars(atoms);
    head &= all;
    uint64_t atom_set = 0;
    for (int i : idxs) atom_set |= uint64_t{1} << i;
    MemoKey key{atom_set, head};
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;

    uint64_t total = 0;
    if (atoms.size() == 1) {
      total = 1;
    } else {
      VarMask evars = all & ~head;
      std::vector<VarId> ev = MaskToVars(evars);
      if (ev.size() > 24) {
        return Status::OutOfRange("plan counting limited to 24 variables");
      }
      for (uint64_t bits = 1; bits < (uint64_t{1} << ev.size()); ++bits) {
        VarMask y = 0;
        uint64_t b = bits;
        while (b) {
          y |= MaskOf(ev[__builtin_ctzll(b)]);
          b &= b - 1;
        }
        auto comps = ConnectedComponents(atoms, evars & ~y);
        if (comps.size() < 2) continue;  // y is not the exact separator
        auto r = SumOverPartitions(idxs, comps, head | y, /*min_groups=*/2);
        if (!r.ok()) return r.status();
        total += *r;
      }
    }
    memo_.emplace(key, total);
    return total;
  }

  const ConjunctiveQuery& q_;
  std::vector<WorkAtom> atoms_;
  std::unordered_map<MemoKey, uint64_t, MemoKeyHash> memo_;
};


/// Counts the paper's Figure 2 "#P" plan space: plans whose joins range over
/// the connected components of the ORIGINAL subquery (no dissociation-merged
/// groups), summing over all cut-sets for the top-most projection.
class PaperTotalPlanCounter {
 public:
  explicit PaperTotalPlanCounter(const ConjunctiveQuery& q) : q_(q) {
    SchemaKnowledge none = SchemaKnowledge::None(q);
    atoms_ = MakeWorkAtoms(q, none);
  }

  Result<uint64_t> Count() {
    std::vector<int> all;
    for (int i = 0; i < q_.num_atoms(); ++i) all.push_back(i);
    return CountRec(all, q_.HeadMask());
  }

 private:
  Result<uint64_t> CountRec(const std::vector<int>& idxs, VarMask head) {
    std::vector<WorkAtom> atoms;
    for (int i : idxs) atoms.push_back(atoms_[i]);
    VarMask all = UnionVars(atoms);
    head &= all;
    uint64_t atom_set = 0;
    for (int i : idxs) atom_set |= uint64_t{1} << i;
    MemoKey key{atom_set, head};
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;

    uint64_t total = 0;
    if (atoms.size() == 1) {
      total = 1;
    } else {
      VarMask evars = all & ~head;
      auto comps = ConnectedComponents(atoms, evars);
      auto product_over = [&](const std::vector<std::vector<int>>& comps_local,
                              VarMask sub_head) -> Result<uint64_t> {
        uint64_t prod = 1;
        for (const auto& comp : comps_local) {
          std::vector<int> sub;
          for (int ci : comp) sub.push_back(idxs[ci]);
          std::vector<WorkAtom> sub_atoms;
          for (int i : sub) sub_atoms.push_back(atoms_[i]);
          auto c = CountRec(sub, sub_head & UnionVars(sub_atoms));
          if (!c.ok()) return c.status();
          prod *= *c;
        }
        return prod;
      };
      if (comps.size() > 1) {
        auto p = product_over(comps, head);
        if (!p.ok()) return p.status();
        total += *p;
      }
      auto cuts = EnumerateCutSets(atoms, evars);
      if (!cuts.ok()) return cuts.status();
      for (VarMask y : *cuts) {
        auto comps2 = ConnectedComponents(atoms, evars & ~y);
        if (comps2.size() < 2) continue;
        auto p = product_over(comps2, head | y);
        if (!p.ok()) return p.status();
        total += *p;
      }
    }
    memo_.emplace(key, total);
    return total;
  }

  const ConjunctiveQuery& q_;
  std::vector<WorkAtom> atoms_;
  std::unordered_map<MemoKey, uint64_t, MemoKeyHash> memo_;
};

}  // namespace

Result<uint64_t> CountMinimalPlans(const ConjunctiveQuery& q) {
  return MinimalPlanCounter(q).Count();
}

Result<uint64_t> CountTotalPlans(const ConjunctiveQuery& q) {
  return PaperTotalPlanCounter(q).Count();
}

Result<uint64_t> CountSafeDissociations(const ConjunctiveQuery& q) {
  return SafeDissociationCounter(q).Count();
}

int DissociationExponent(const ConjunctiveQuery& q) {
  int k = 0;
  VarMask evars = q.EVarMask();
  for (int i = 0; i < q.num_atoms(); ++i) {
    k += MaskCount(evars & ~q.AtomMask(i));
  }
  return k;
}

Result<uint64_t> CountAllDissociations(const ConjunctiveQuery& q) {
  int k = DissociationExponent(q);
  if (k > 63) {
    return Status::OutOfRange("2^" + std::to_string(k) +
                              " dissociations overflow uint64");
  }
  return uint64_t{1} << k;
}

}  // namespace dissodb
