// Query dissociation (Definitions 10-15) and the plan <-> dissociation
// correspondence (Theorem 18).
//
// A dissociation Delta assigns to every atom R_i a set of extra existential
// variables y_i (disjoint from the atom's own variables). The dissociated
// query q^Delta joins on strictly more variables, is an upper bound
// P(q) <= P(q^Delta) (Theorem 12), and when hierarchical ("safe
// dissociation") can be evaluated in PTIME by its unique safe plan.
#ifndef DISSODB_DISSOCIATION_DISSOCIATION_H_
#define DISSODB_DISSOCIATION_DISSOCIATION_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/plan/plan.h"
#include "src/query/analysis.h"
#include "src/query/cq.h"
#include "src/storage/database.h"

namespace dissodb {

/// \brief A dissociation Delta = (y_1, ..., y_m): extra existential
/// variables per atom.
struct Dissociation {
  std::vector<VarMask> extra;

  static Dissociation Empty(const ConjunctiveQuery& q) {
    return Dissociation{std::vector<VarMask>(q.num_atoms(), 0)};
  }
  /// The top dissociation: every atom receives all missing existential vars.
  static Dissociation Top(const ConjunctiveQuery& q);

  bool IsEmpty() const {
    for (VarMask m : extra) {
      if (m) return false;
    }
    return true;
  }
  bool operator==(const Dissociation& o) const { return extra == o.extra; }

  std::string ToString(const ConjunctiveQuery& q) const;
};

/// Partial dissociation order (Definition 15): Delta <= Delta' iff
/// y_i ⊆ y_i' for every atom.
bool DissociationLeq(const Dissociation& a, const Dissociation& b);

/// Probabilistic preorder ⪯p / ⪯p' (Sections 3.3.1-3.3.2): compares only
/// probabilistic atoms, each modulo the FD closure of the atom's variables.
/// With no schema knowledge this coincides with DissociationLeq.
bool DissociationLeqP(const ConjunctiveQuery& q, const SchemaKnowledge& sk,
                      const Dissociation& a, const Dissociation& b);

/// Work atoms of q^Delta (atom variable masks extended by Delta).
std::vector<WorkAtom> ApplyDissociation(const ConjunctiveQuery& q,
                                        const SchemaKnowledge& sk,
                                        const Dissociation& delta);

/// Is q^Delta hierarchical, i.e. is Delta a safe dissociation (Def. 13)?
bool IsSafeDissociation(const ConjunctiveQuery& q, const Dissociation& delta);

/// Validates Delta: per atom, extra ⊆ EVar(q) \ Var(atom).
Status ValidateDissociation(const ConjunctiveQuery& q,
                            const Dissociation& delta);

/// \brief The dissociated instance D^Delta together with the rewritten query
/// q^Delta over fresh relation names (Definition 10(2)). Used by tests to
/// check Theorem 18(2): score(P^Delta) == P(q^Delta).
struct MaterializedDissociation {
  Database db;
  ConjunctiveQuery query;
};

/// Materializes D^Delta by copying each tuple once per combination of
/// active-domain values of its extra variables. `max_rows` guards blowup.
Result<MaterializedDissociation> MaterializeDissociation(
    const Database& db, const ConjunctiveQuery& q, const Dissociation& delta,
    size_t max_rows = 2'000'000);

/// The dissociation Delta_P induced by a plan (Theorem 18 direction P -> ∆):
/// at every join, each child's scans dissociate on the join variables the
/// child is missing; restricted to existential variables.
Dissociation ExtractDissociation(const PlanPtr& plan,
                                 const ConjunctiveQuery& q);

/// The unique safe plan P^Delta of a safe dissociation (Theorem 18 direction
/// ∆ -> P), built by the Lemma 3 recursion on q^Delta. The returned plan
/// scans original relations with the extra variables attached as virtual
/// variables. Fails if Delta is not safe.
Result<PlanPtr> SafePlanForDissociation(const ConjunctiveQuery& q,
                                        const Dissociation& delta);

/// The unique safe plan of a safe (hierarchical) query; convenience wrapper
/// for the empty dissociation.
Result<PlanPtr> SafePlanForQuery(const ConjunctiveQuery& q);

/// Lemma 3 recursion over explicit work atoms (variable masks may include
/// virtual variables); used by the plan-enumeration algorithms. Fails if the
/// atoms are not hierarchical w.r.t. the variables outside `head`.
Result<PlanPtr> SafePlanForWorkAtoms(const ConjunctiveQuery& q,
                                     std::vector<WorkAtom> atoms,
                                     VarMask head);

}  // namespace dissodb

#endif  // DISSODB_DISSOCIATION_DISSOCIATION_H_
