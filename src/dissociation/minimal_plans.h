// Algorithm 1: enumerate all minimal query plans (Theorem 20), with the
// schema-knowledge refinements of Section 3.3:
//  - deterministic relations: MinPCuts + the "at most one probabilistic
//    relation" stopping rule (Theorem 24);
//  - functional dependencies: chase the query through the FD closure
//    (Delta_Gamma) before enumeration (Theorem 27).
//
// For a safe query the result is a single plan, the safe plan, and its score
// equals the exact probability (conservativity; Corollary 28 generalizes the
// Dalvi-Suciu dichotomy).
#ifndef DISSODB_DISSOCIATION_MINIMAL_PLANS_H_
#define DISSODB_DISSOCIATION_MINIMAL_PLANS_H_

#include <vector>

#include "src/common/status.h"
#include "src/dissociation/dissociation.h"
#include "src/plan/plan.h"
#include "src/query/analysis.h"
#include "src/query/cq.h"

namespace dissodb {

/// Which schema knowledge Algorithm 1 may exploit.
struct PlanEnumOptions {
  bool use_deterministic = true;  ///< Section 3.3.1 (MinPCuts + stop rule)
  bool use_fds = true;            ///< Section 3.3.2 (chase Delta_Gamma)
};

/// Enumerates the minimal plans of q. With `sk` empty/None this is plain
/// Algorithm 1; with deterministic relations or FDs the returned set can be
/// strictly smaller (down to one plan when q is safe given the knowledge).
Result<std::vector<PlanPtr>> EnumerateMinimalPlans(
    const ConjunctiveQuery& q, const SchemaKnowledge& sk,
    const PlanEnumOptions& opts = {});

/// Convenience overload without schema knowledge.
Result<std::vector<PlanPtr>> EnumerateMinimalPlans(const ConjunctiveQuery& q);

/// The chase dissociation Delta_Gamma (Section 3.3.2): every atom absorbs
/// the existential variables functionally determined by its own variables.
Dissociation ChaseDissociation(const ConjunctiveQuery& q,
                               const SchemaKnowledge& sk);

/// Is q safe given schema knowledge, i.e. does Algorithm 1 return a single
/// plan whose score is exact (Corollary 28)?
Result<bool> IsSafeQuery(const ConjunctiveQuery& q, const SchemaKnowledge& sk,
                         const PlanEnumOptions& opts = {});

}  // namespace dissodb

#endif  // DISSODB_DISSOCIATION_MINIMAL_PLANS_H_
