#include "src/engine/bindings.h"

namespace dissodb {

Result<std::vector<Value>> Bindings::ParamVector(int num_params) const {
  for (const auto& [idx, v] : params_) {
    if (idx < 0 || idx >= num_params) {
      return Status::InvalidArgument(
          "bound parameter $" + std::to_string(idx) +
          " is out of range: query has " + std::to_string(num_params) +
          " parameter(s)");
    }
  }
  std::vector<Value> out;
  out.reserve(num_params);
  for (int i = 0; i < num_params; ++i) {
    auto it = params_.find(i);
    if (it == params_.end()) {
      return Status::InvalidArgument("parameter $" + std::to_string(i) +
                                     " is unbound");
    }
    out.push_back(it->second);
  }
  return out;
}

std::optional<std::string> Bindings::Fingerprint() const {
  std::string fp;
  for (const auto& [idx, v] : params_) {
    fp += "p" + std::to_string(idx) + "=c" +
          std::to_string(static_cast<int>(v.type())) + ":" +
          std::to_string(v.RawBits()) + ";";
  }
  for (const auto& [idx, ov] : atoms_) {
    if (ov.tag.empty()) return std::nullopt;
    fp += "a" + std::to_string(idx) + "=" + ov.tag + ";";
  }
  return fp;
}

}  // namespace dissodb
