// Prepared-query handles: a query compiled once, canonicalized, and
// executable many times with different Bindings.
//
// QueryEngine::Prepare parses and canonicalizes a query (variables renamed
// to occurrence order, see src/query/canonicalize.h), compiles its
// dissociation plans in canonical variable space, and returns a cheap
// copyable handle over the immutable compiled artifact. Because the plan
// cache and all subplan fingerprints key on the canonical form,
// differently-named but isomorphic queries share one compiled plan and one
// set of ResultCache entries; the engine maps the answer relation back to
// the caller's variable order with a zero-copy column remap.
#ifndef DISSODB_ENGINE_PREPARED_QUERY_H_
#define DISSODB_ENGINE_PREPARED_QUERY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/plan/plan.h"
#include "src/query/canonicalize.h"
#include "src/query/cq.h"

namespace dissodb {

/// The compiled form of a query: either the single min-plan (Opt. 1) or the
/// list of minimal plans evaluated separately. Immutable and shared between
/// the engine's plan cache and every PreparedQuery handle derived from it.
struct CompiledPlans {
  PlanPtr single_plan;           // non-null iff opt1_single_plan
  std::vector<PlanPtr> plans;    // used when opt1 is off
  size_t num_minimal_plans = 0;
  /// True iff the query is safe given the schema knowledge (Corollary 28):
  /// the compiled plan's scores are exact probabilities, not upper bounds.
  /// Set by the lifted analyzer on the fast path and by the minimal-plan
  /// count (== 1) on the legacy path, so the verdict is route-independent.
  bool exact = false;
  /// Whether the lifted compiler (src/lift/) produced single_plan. When
  /// additionally `exact`, minimal-plan enumeration was skipped entirely.
  bool safe_routed = false;
  /// Lifted compilation only: subproblems that needed dissociation's
  /// Min-over-cuts fallback (0 iff the lifted rules resolved every level).
  size_t unsafe_residues = 0;
};

/// \brief Value-type handle over an immutable prepared query. Copy freely;
/// executions are driven through QueryEngine::Execute / Submit.
class PreparedQuery {
 public:
  PreparedQuery() = default;

  bool valid() const { return impl_ != nullptr; }

  /// The query as the caller wrote it (original variable ids).
  const ConjunctiveQuery& original() const { return impl_->original; }
  /// The canonicalized query the plans are compiled against.
  const ConjunctiveQuery& canonical() const { return impl_->canon.query; }
  /// Engine-wide identity of the compiled artifact (canonical rendering
  /// plus the optimization flags it was compiled under).
  const std::string& cache_key() const { return impl_->cache_key; }
  /// Number of "$k" / "?" placeholders a Bindings must fill.
  int num_params() const { return impl_->canon.query.num_params(); }
  /// Whether answers are column-remapped back to the caller's variable
  /// order (false when the query already was in canonical order).
  bool needs_remap() const { return !impl_->canon.identity; }
  /// Whether Prepare was served from the engine's plan cache.
  bool from_plan_cache() const { return impl_->from_plan_cache; }
  size_t num_minimal_plans() const {
    return impl_->compiled->num_minimal_plans;
  }
  /// True iff executions of this handle return exact probabilities (the
  /// query is safe given the schema knowledge), not dissociation bounds.
  bool exact() const { return impl_->compiled->exact; }
  /// Whether the plan came from the lifted safe-plan compiler (src/lift/).
  bool safe_routed() const { return impl_->compiled->safe_routed; }

  struct Impl {
    ConjunctiveQuery original;
    CanonicalizedQuery canon;
    std::string cache_key;
    std::shared_ptr<const CompiledPlans> compiled;
    bool from_plan_cache = false;
    /// False when the query embeds string constants unknown to the
    /// database's pool: their parse-local negative codes are not stable
    /// across queries, so such executions never exchange results with the
    /// shared cache.
    bool share_results = true;
  };

 private:
  friend class QueryEngine;
  explicit PreparedQuery(std::shared_ptr<const Impl> impl)
      : impl_(std::move(impl)) {}

  std::shared_ptr<const Impl> impl_;
};

}  // namespace dissodb

#endif  // DISSODB_ENGINE_PREPARED_QUERY_H_
