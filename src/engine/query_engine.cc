#include "src/engine/query_engine.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <mutex>
#include <utility>

#include "src/anytime/controller.h"
#include "src/dissociation/minimal_plans.h"
#include "src/dissociation/single_plan.h"
#include "src/exec/evaluator.h"
#include "src/exec/semijoin.h"
#include "src/lift/safe_plan.h"
#include "src/query/analysis.h"
#include "src/query/canonicalize.h"
#include "src/query/parser.h"
#include "src/serve/delta_maintenance.h"

namespace dissodb {

namespace {

/// Cache key: canonical query rendering plus the flags that change the
/// compiled artifact.
std::string CacheKey(const ConjunctiveQuery& q, const PropagationOptions& o,
                     bool safe_plan_fast_path) {
  std::string key = q.ToString();
  key += '|';
  key += o.opt1_single_plan ? '1' : '0';
  key += o.opt2_reuse_subplans ? '1' : '0';
  key += o.enum_opts.use_deterministic ? '1' : '0';
  key += o.enum_opts.use_fds ? '1' : '0';
  key += safe_plan_fast_path ? '1' : '0';
  return key;
}

/// String constants unknown to the database pool carry parse-local negative
/// codes; two different strings in two different queries can share a code,
/// so such queries must never exchange results through the shared cache.
bool HasUnknownStringConstants(const ConjunctiveQuery& q) {
  for (int i = 0; i < q.num_atoms(); ++i) {
    for (const Term& t : q.atom(i).terms) {
      if (!t.is_var && !t.IsParam() && t.constant.type() == ValueType::kString &&
          t.constant.AsStringCode() < 0) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

QueryEngine::QueryEngine(std::shared_ptr<const Database> db,
                         EngineOptions opts)
    : db_(std::move(db)),
      opts_(opts),
      m_queries_(metrics_.counter("engine.queries")),
      m_batch_queries_(metrics_.counter("engine.batch_queries")),
      m_prepared_(metrics_.counter("engine.prepared")),
      m_plan_hits_(metrics_.counter("engine.plan_cache.hits")),
      m_plan_misses_(metrics_.counter("engine.plan_cache.misses")),
      m_remaps_(metrics_.counter("engine.canonical_remaps")),
      m_remap_hits_(metrics_.counter("engine.canonical_remap_hits")),
      m_reduction_hits_(metrics_.counter("engine.reduction_cache.hits")),
      m_reduction_misses_(metrics_.counter("engine.reduction_cache.misses")),
      m_traces_(metrics_.counter("engine.traces")),
      m_scan_filtered_(metrics_.counter("scan.filtered")),
      m_scan_parallel_(metrics_.counter("scan.parallel")),
      m_scan_chunks_scanned_(metrics_.counter("scan.chunks_scanned")),
      m_scan_chunks_pruned_(metrics_.counter("scan.chunks_pruned")),
      m_scan_rows_scanned_(metrics_.counter("scan.rows_scanned")),
      m_scan_rows_selected_(metrics_.counter("scan.rows_selected")),
      m_bloom_built_(metrics_.counter("semijoin.bloom_filters_built")),
      m_bloom_skipped_(metrics_.counter("semijoin.bloom_probes_skipped")),
      m_semijoin_reductions_(metrics_.counter("semijoin.reductions")),
      m_delta_maintained_(
          metrics_.counter("engine.result_cache.delta_maintained")),
      m_swept_(metrics_.counter("engine.result_cache.swept")),
      m_safe_routed_(metrics_.counter("engine.safe_plan.routed")),
      m_safe_residue_(metrics_.counter("engine.safe_plan.unsafe_residue")),
      m_safe_fallback_(metrics_.counter("engine.safe_plan.fallback")),
      m_anytime_runs_(metrics_.counter("engine.anytime.runs")),
      m_anytime_exact_(metrics_.counter("engine.anytime.exact")),
      m_anytime_certified_(metrics_.counter("engine.anytime.certified")),
      m_anytime_bounds_only_(metrics_.counter("engine.anytime.bounds_only")),
      m_anytime_deadline_aborts_(
          metrics_.counter("engine.anytime.deadline_aborts")),
      m_anytime_refine_rounds_(
          metrics_.counter("engine.anytime.refine_rounds")),
      m_anytime_refined_answers_(
          metrics_.counter("engine.anytime.refined_answers")),
      m_mc_samples_drawn_(metrics_.counter("mc.samples_drawn")),
      m_execute_ns_(metrics_.histogram("engine.execute_ns")),
      m_commit_append_ns_per_row_(
          metrics_.histogram("commit.append_ns_per_row")),
      m_safe_compile_ns_(metrics_.histogram("engine.safe_plan.compile_ns")),
      m_anytime_rounds_per_query_(
          metrics_.histogram("engine.anytime.refine_rounds_per_query")),
      m_anytime_run_ns_(metrics_.histogram("engine.anytime.run_ns")) {
  if (opts_.result_cache_capacity > 0) {
    result_cache_ = std::make_unique<ResultCache>(opts_.result_cache_capacity);
  }
  if (opts_.result_cache_capacity > 0 || opts_.reduction_cache_capacity > 0) {
    // On every commit: record commit telemetry, roll hot cache entries
    // forward across append-only commits, and sweep version-stale entries
    // (results and Opt. 3 reductions) — anything older than the oldest
    // live snapshot can never be requested again. Registering is
    // const-safe — observing commits mutates no data.
    commit_hook_token_ = db_->RegisterCommitHook(
        [this](const CommitInfo& info) { OnCommit(info); });
  }
}

QueryEngine::~QueryEngine() {
  if (commit_hook_token_ >= 0) {
    db_->UnregisterCommitHook(commit_hook_token_);
  }
}

void QueryEngine::OnCommit(const CommitInfo& info) {
  if (info.append_only && info.appended_rows > 0) {
    m_commit_append_ns_per_row_->Record(info.commit_ns / info.appended_rows);
  }
  if (info.append_only && opts_.delta_maintain_results &&
      opts_.delta_maintain_limit > 0 && result_cache_ != nullptr) {
    MaintainCacheEntries(info);
  }
  SweepStaleResults();
}

void QueryEngine::MaintainCacheEntries(const CommitInfo& info) {
  // The deltas describe exactly the step (info.version - 1) -> info.version
  // (writers serialize), so only entries stored at the pre-commit version
  // are one delta behind. If another writer already published past us
  // (hooks run outside the writer lock), skip: rolling forward with this
  // commit's deltas alone would miss the newer one's rows.
  Snapshot snap = db_->snapshot();
  if (snap.version() != info.version) return;
  auto candidates = result_cache_->CollectMaintainable(
      info.version - 1, opts_.delta_maintain_limit);
  if (candidates.empty()) return;
  std::unordered_map<std::string, size_t> first_new;
  for (const AppendOnlyDelta& d : info.deltas) {
    first_new.emplace(d.name, d.first_new_row);
  }
  Scheduler* scheduler = EnsureScheduler();
  size_t maintained = 0;
  for (auto& c : candidates) {
    auto m = DeltaMaintainEntry(snap, std::move(c.rel), std::move(c.recipe),
                                first_new, scheduler);
    // Not maintainable for this commit (role flip, several changed scans):
    // leave the entry to the ordinary sweep below.
    if (!m.ok()) continue;
    result_cache_->Put(c.key, info.version, std::move(m->rel),
                       std::move(m->recipe));
    ++maintained;
  }
  if (maintained > 0) {
    result_cache_->NoteDeltaMaintained(maintained);
    m_delta_maintained_->Add(maintained);
  }
}

void QueryEngine::SweepStaleResults() {
  const uint64_t min_live = db_->OldestLiveSnapshotVersion();
  if (result_cache_ != nullptr) {
    const size_t swept = result_cache_->EvictOlderThan(min_live);
    if (swept > 0) m_swept_->Add(swept);
  }
  // The Opt. 3 reduction cache is version-keyed too: reductions of dead
  // versions are unhittable (their fingerprint embeds the version) and
  // pin materialized reduced tables, so sweep them on the same hook.
  std::lock_guard lock(reduction_mu_);
  for (auto it = reduction_cache_.begin(); it != reduction_cache_.end();) {
    if (it->second.version < min_live) {
      reduction_lru_.erase(it->second.lru_pos);
      it = reduction_cache_.erase(it);
    } else {
      ++it;
    }
  }
}

QueryEngine QueryEngine::Borrow(const Database& db, EngineOptions opts) {
  // Aliasing shared_ptr: shares no ownership; the caller keeps `db` alive.
  return QueryEngine(std::shared_ptr<const Database>(
                         std::shared_ptr<const Database>(), &db),
                     opts);
}

// ---------------------------------------------------------------------------
// Prepare
// ---------------------------------------------------------------------------

Result<PreparedQuery> QueryEngine::Prepare(std::string_view query_text) {
  auto q = ParseQueryReadOnly(query_text, db_->strings());
  if (!q.ok()) return q.status();
  return Prepare(*q);
}

Result<PreparedQuery> QueryEngine::Prepare(const ConjunctiveQuery& q) {
  auto impl = std::make_shared<PreparedQuery::Impl>();
  impl->original = q;
  if (opts_.canonicalize) {
    auto canon = CanonicalizeQuery(q);
    if (!canon.ok()) return canon.status();
    impl->canon = std::move(*canon);
  } else {
    // Legacy mode: plans are compiled in the caller's variable space and
    // the caller's body order.
    CanonicalizedQuery id;
    id.query = q;
    id.orig_to_canon.resize(q.num_vars());
    id.canon_to_orig.resize(q.num_vars());
    for (VarId v = 0; v < q.num_vars(); ++v) {
      id.orig_to_canon[v] = v;
      id.canon_to_orig[v] = v;
    }
    id.atom_orig_to_canon.resize(q.num_atoms());
    id.atom_canon_to_orig.resize(q.num_atoms());
    for (int i = 0; i < q.num_atoms(); ++i) {
      id.atom_orig_to_canon[i] = i;
      id.atom_canon_to_orig[i] = i;
    }
    impl->canon = std::move(id);
  }
  impl->share_results = !HasUnknownStringConstants(impl->canon.query);
  impl->cache_key = CacheKey(impl->canon.query, opts_.propagation,
                             opts_.safe_plan_fast_path);

  bool cache_hit = false;
  bool renamed_hit = false;
  auto compiled = GetOrCompile(impl->canon.query, impl->cache_key,
                               q.ToString(), &cache_hit, &renamed_hit);
  if (!compiled.ok()) return compiled.status();
  impl->compiled = std::move(*compiled);
  impl->from_plan_cache = cache_hit;

  m_prepared_->Add(1);
  if (renamed_hit) m_remap_hits_->Add(1);
  return PreparedQuery(std::move(impl));
}

Result<std::shared_ptr<const CompiledPlans>> QueryEngine::GetOrCompile(
    const ConjunctiveQuery& q, const std::string& key,
    const std::string& original_text, bool* cache_hit, bool* renamed_hit) {
  *renamed_hit = false;
  if (opts_.plan_cache_capacity > 0) {
    std::lock_guard lock(plan_mu_);
    auto it = plan_cache_.find(key);
    if (it != plan_cache_.end()) {
      // True LRU: a hit refreshes the entry (splice keeps the iterator
      // valid and moves the node to the front).
      plan_lru_.splice(plan_lru_.begin(), plan_lru_, it->second.lru_pos);
      *cache_hit = true;
      *renamed_hit = it->second.original_text != original_text;
      m_plan_hits_->Add(1);
      return it->second.compiled;
    }
  }
  *cache_hit = false;

  // Compile outside any lock: enumeration can be expensive and two threads
  // compiling the same key just race to an identical immutable artifact.
  // Schema knowledge reads a pinned snapshot, so Prepare is safe while
  // writers commit.
  auto sk = SchemaKnowledge::FromSnapshot(q, db_->snapshot());
  if (!sk.ok()) return sk.status();

  auto compiled = std::make_shared<CompiledPlans>();
  if (opts_.safe_plan_fast_path && opts_.propagation.opt1_single_plan) {
    // Lifted fast path (src/lift/): one recursive pass of the Dalvi–Suciu
    // rules. A safe query resolves every level by independent join /
    // independent project and skips both the cut-set scan and the minimal-
    // plan enumeration — the safe plan is the unique minimal plan and its
    // score is exact. Unsafe residues fall back to Min-over-cuts inside the
    // same pass, emitting a plan bit-identical to BuildSinglePlan's; the
    // enumeration then still runs once to report num_minimal_plans (and can
    // upgrade the verdict to exact when it finds a single plan).
    lift::LiftOptions lo;
    lo.reuse_common_subplans = opts_.propagation.opt2_reuse_subplans;
    lo.enum_opts = opts_.propagation.enum_opts;
    const uint64_t t0 = obs::NowNanos();
    auto lifted = lift::CompileSafePlan(q, *sk, lo);
    m_safe_compile_ns_->Record(obs::NowNanos() - t0);
    if (!lifted.ok()) return lifted.status();
    compiled->single_plan = std::move(lifted->plan);
    compiled->safe_routed = true;
    compiled->unsafe_residues = lifted->unsafe_residues;
    if (lifted->exact) {
      compiled->exact = true;
      compiled->num_minimal_plans = 1;
      m_safe_routed_->Add(1);
    } else {
      m_safe_residue_->Add(1);
      auto plans = EnumerateMinimalPlans(q, *sk, opts_.propagation.enum_opts);
      if (!plans.ok()) return plans.status();
      compiled->num_minimal_plans = plans->size();
      compiled->exact = plans->size() == 1;
    }
  } else {
    m_safe_fallback_->Add(1);
    {
      auto plans = EnumerateMinimalPlans(q, *sk, opts_.propagation.enum_opts);
      if (!plans.ok()) return plans.status();
      compiled->num_minimal_plans = plans->size();
      if (!opts_.propagation.opt1_single_plan) {
        compiled->plans = std::move(*plans);
      }
    }
    // A single minimal plan means the query is safe given the knowledge
    // (Corollary 28): the verdict is route-independent.
    compiled->exact = compiled->num_minimal_plans == 1;
    if (opts_.propagation.opt1_single_plan) {
      SinglePlanOptions sp;
      sp.reuse_common_subplans = opts_.propagation.opt2_reuse_subplans;
      sp.enum_opts = opts_.propagation.enum_opts;
      auto plan = BuildSinglePlan(q, *sk, sp);
      if (!plan.ok()) return plan.status();
      compiled->single_plan = std::move(*plan);
    }
  }

  m_plan_misses_->Add(1);
  if (opts_.plan_cache_capacity > 0) {
    std::lock_guard lock(plan_mu_);
    auto it = plan_cache_.find(key);
    if (it != plan_cache_.end()) {
      // Lost a compile race; adopt (and touch) the installed artifact.
      plan_lru_.splice(plan_lru_.begin(), plan_lru_, it->second.lru_pos);
      return it->second.compiled;
    }
    plan_lru_.push_front(key);
    plan_cache_.emplace(
        key, PlanCacheEntry{compiled, original_text, plan_lru_.begin()});
    if (plan_cache_.size() > opts_.plan_cache_capacity) {
      plan_cache_.erase(plan_lru_.back());
      plan_lru_.pop_back();
    }
  }
  return std::shared_ptr<const CompiledPlans>(std::move(compiled));
}

// ---------------------------------------------------------------------------
// Execute / Submit / batches
// ---------------------------------------------------------------------------

Result<QueryResult> QueryEngine::Execute(const PreparedQuery& prepared,
                                         const Bindings& bindings) {
  return ExecuteInternal(prepared, bindings, /*scheduler=*/nullptr,
                         /*use_result_cache=*/false);
}

Result<QueryResult> QueryEngine::Execute(const PreparedQuery& prepared,
                                         const Bindings& bindings,
                                         const Snapshot& snap) {
  if (!db_->OwnsSnapshot(snap)) {
    return Status::InvalidArgument(
        "snapshot is empty or belongs to a different database");
  }
  return ExecuteInternal(prepared, bindings, /*scheduler=*/nullptr,
                         /*use_result_cache=*/false, &snap);
}

Result<QueryResult> QueryEngine::ExecuteInternal(const PreparedQuery& prepared,
                                                 const Bindings& bindings,
                                                 Scheduler* scheduler,
                                                 bool use_result_cache,
                                                 const Snapshot* pinned) {
  if (!prepared.valid()) {
    return Status::InvalidArgument("executing an empty PreparedQuery handle");
  }
  const PreparedQuery::Impl& impl = *prepared.impl_;
  use_result_cache = use_result_cache && impl.share_results;

  // Tracing: per-query opt-in (Bindings::EnableTrace) or engine-wide 1-in-N
  // sampling. Untraced executions carry a null context, so every
  // instrumentation site below costs one branch.
  const uint64_t t_start = obs::NowNanos();
  const bool traced =
      bindings.trace_requested() ||
      (opts_.trace_sample_every > 0 &&
       trace_tick_.fetch_add(1, std::memory_order_relaxed) %
               opts_.trace_sample_every ==
           0);
  obs::TraceContext trace_ctx;
  obs::TraceContext* trace = traced ? &trace_ctx : nullptr;
  uint32_t root = 0;
  if (traced) {
    root = trace_ctx.BeginSpan("execute " + impl.canon.query.ToString(), 0);
  }

  // Parameter substitution: the compiled plans only depend on the query's
  // structure, so one prepared artifact serves every binding; the executed
  // query carries the bound constants (scans filter on them, and subplan
  // fingerprints render them, so distinct parameter values never collide
  // in the result cache).
  const int np = impl.canon.query.num_params();
  ConjunctiveQuery substituted;
  const ConjunctiveQuery* exec_q = &impl.canon.query;
  bool params_shareable = true;
  if (np > 0) {
    auto params = bindings.ParamVector(np);
    if (!params.ok()) return params.status();
    // A bound string constant unknown to the pool carries a parse-local
    // negative code (not stable across queries) — such executions must not
    // exchange results, exactly like unknown strings written in the text.
    for (const Value& v : *params) {
      if (v.type() == ValueType::kString && v.AsStringCode() < 0) {
        params_shareable = false;
      }
    }
    auto sub = SubstituteParams(impl.canon.query, *params);
    if (!sub.ok()) return sub.status();
    substituted = std::move(*sub);
    exec_q = &substituted;
  } else if (bindings.num_params_bound() > 0) {
    return Status::InvalidArgument(
        "bindings provide parameter values but the query has no placeholders");
  }

  // Per-atom bindings arrive in the caller's (original) body order; the
  // canonical body may be a permutation of it (atom-order
  // canonicalization), so remap indices before touching the catalog.
  AtomOverrides effective;
  for (const auto& [idx, ov] : bindings.atom_overrides()) {
    if (idx < 0 || idx >= exec_q->num_atoms() || ov.table == nullptr) {
      return Status::InvalidArgument("atom binding index out of range");
    }
    effective[impl.canon.atom_orig_to_canon[idx]] = ov;
  }

  // Pin the state to execute against: every scan, reduction, and
  // result-cache exchange below reads exactly this snapshot.
  const Snapshot snap = pinned != nullptr ? *pinned : db_->snapshot();
  const uint64_t version = snap.version();
  use_result_cache = use_result_cache && params_shareable;

  // Opt. 3: semi-join-reduce the inputs first. When the bindings are
  // fingerprintable the reduction itself is too — reduction(query text,
  // snapshot version, binding fingerprint) — so reduced tables are cached
  // across executions and the reduced subplans keep sharing results. The
  // binding fingerprint renders canonical atom indices: isomorphic
  // spellings agree on it, and distinct original orders can never collide.
  std::shared_ptr<const std::vector<Table>> reduced_shared;
  std::vector<Table> reduced_local;
  if (opts_.propagation.opt3_semijoin_reduction) {
    obs::ScopedSpan sj_span(trace, "semijoin-reduce", root);
    std::unordered_map<int, const Table*> raw;
    bool all_tagged = true;
    std::string bfp;
    for (const auto& [idx, ov] : effective) {
      raw[idx] = ov.table;
      if (ov.tag.empty()) {
        all_tagged = false;
      } else {
        bfp += "a" + std::to_string(idx) + "=" + ov.tag + ";";
      }
    }
    const bool taggable =
        impl.share_results && params_shareable && all_tagged;
    std::string rtag;
    SemiJoinStats sj_stats;
    bool sj_computed = false;
    if (taggable) {
      rtag = "opt3:" + exec_q->ToString() + "@" + std::to_string(version) +
             "|" + bfp;
      auto red = GetOrReduce(rtag, snap, *exec_q, raw, &sj_stats);
      if (!red.ok()) return red.status();
      reduced_shared = std::move(*red);
      sj_computed = sj_stats.passes > 0;  // zero on a reduction-cache hit
    } else {
      auto red = SemiJoinReduce(snap, *exec_q, raw, &sj_stats);
      if (!red.ok()) return red.status();
      reduced_local = std::move(*red);
      sj_computed = true;
    }
    if (sj_computed) {
      // Previously dropped on the floor: the reduction's Bloom pre-filter
      // counters now land in the engine registry.
      m_semijoin_reductions_->Add(1);
      if (sj_stats.bloom_filters_built > 0) {
        m_bloom_built_->Add(sj_stats.bloom_filters_built);
      }
      if (sj_stats.bloom_probes_skipped > 0) {
        m_bloom_skipped_->Add(sj_stats.bloom_probes_skipped);
      }
    }
    if (trace != nullptr) {
      trace->Annotate(sj_span.id(), "cached",
                      std::string(sj_computed ? "no" : "yes"));
      if (sj_computed) {
        trace->Annotate(sj_span.id(), "passes",
                        static_cast<uint64_t>(sj_stats.passes));
        trace->Annotate(sj_span.id(), "bloom_filters_built",
                        static_cast<uint64_t>(sj_stats.bloom_filters_built));
        trace->Annotate(sj_span.id(), "bloom_probes_skipped",
                        static_cast<uint64_t>(sj_stats.bloom_probes_skipped));
      }
    }
    const std::vector<Table>& reduced =
        reduced_shared ? *reduced_shared : reduced_local;
    effective.clear();
    for (int i = 0; i < exec_q->num_atoms(); ++i) {
      effective[i] = AtomOverride{&reduced[i],
                                  taggable ? rtag : std::string()};
    }
  }

  QueryResult result;
  result.num_minimal_plans = impl.compiled->num_minimal_plans;
  result.from_plan_cache = impl.from_plan_cache;
  result.exact = impl.compiled->exact;

  Rel scores(std::vector<VarId>{});
  ChunkedScanStats scan_stats;
  {
    obs::ScopedSpan eval_span(trace, "evaluate", root);
    if (impl.compiled->single_plan) {
      PlanEvaluator ev(snap, *exec_q);
      for (const auto& [idx, ov] : effective) {
        ev.SetAtomTable(idx, ov.table, ov.tag);
      }
      if (use_result_cache && result_cache_) {
        ev.SetResultCache(result_cache_.get(), version);
        ev.EnableDeltaRecipes(opts_.delta_maintain_results);
      }
      ev.SetScheduler(scheduler);
      if (trace != nullptr) ev.SetTrace(trace, eval_span.id());
      auto rel = ev.Evaluate(impl.compiled->single_plan);
      if (!rel.ok()) return rel.status();
      result.nodes_evaluated = ev.nodes_evaluated();
      result.result_cache_hits = ev.result_cache_hits();
      scan_stats = ev.scan_stats();
      scores = **rel;
    } else {
      auto rel = EvaluatePlansSeparately(snap, *exec_q, impl.compiled->plans,
                                         effective, &scan_stats, trace,
                                         eval_span.id());
      if (!rel.ok()) return rel.status();
      for (const auto& p : impl.compiled->plans) {
        result.nodes_evaluated += MeasurePlan(p).tree_nodes;
      }
      scores = std::move(*rel);
    }
  }

  // Map the answer relation from canonical variable space back to the
  // caller's variable ids (zero-copy column permutation).
  {
    obs::ScopedSpan rank_span(trace, "rank", root);
    if (!impl.canon.identity && scores.arity() > 0) {
      scores = RemapRelVars(scores, impl.canon.canon_to_orig);
      m_remaps_->Add(1);
    }
    result.answers = RankAnswers(scores);
  }

  // Scan counters flow straight into the registry (sharded atomics) — no
  // engine-wide mutex on the execution path anymore.
  if (scan_stats.filtered_scans > 0) {
    m_scan_filtered_->Add(scan_stats.filtered_scans);
  }
  if (scan_stats.parallel_scans > 0) {
    m_scan_parallel_->Add(scan_stats.parallel_scans);
  }
  if (scan_stats.chunks_scanned > 0) {
    m_scan_chunks_scanned_->Add(scan_stats.chunks_scanned);
  }
  if (scan_stats.chunks_pruned > 0) {
    m_scan_chunks_pruned_->Add(scan_stats.chunks_pruned);
  }
  if (scan_stats.rows_scanned > 0) {
    m_scan_rows_scanned_->Add(scan_stats.rows_scanned);
  }
  if (scan_stats.rows_selected > 0) {
    m_scan_rows_selected_->Add(scan_stats.rows_selected);
  }

  m_queries_->Add(1);
  m_execute_ns_->Record(obs::NowNanos() - t_start);
  if (traced) {
    trace_ctx.Annotate(root, "answers",
                       static_cast<uint64_t>(result.answers.size()));
    trace_ctx.Annotate(root, "nodes_evaluated",
                       static_cast<uint64_t>(result.nodes_evaluated));
    trace_ctx.Annotate(root, "result_cache_hits",
                       static_cast<uint64_t>(result.result_cache_hits));
    trace_ctx.Annotate(root, "from_plan_cache",
                       std::string(result.from_plan_cache ? "yes" : "no"));
    trace_ctx.Annotate(root, "safe_plan",
                       std::string(result.exact ? "exact" : "dissociated"));
    trace_ctx.EndSpan(root);
    result.trace =
        std::make_shared<const obs::QueryTrace>(trace_ctx.Finish());
    m_traces_->Add(1);
  }
  return result;
}

Result<AnytimeResult> QueryEngine::RunWithGuarantees(
    const PreparedQuery& prepared, const Bindings& bindings,
    const GuaranteeSpec& spec) {
  if (!prepared.valid()) {
    return Status::InvalidArgument("executing an empty PreparedQuery handle");
  }
  const PreparedQuery::Impl& impl = *prepared.impl_;
  const uint64_t t_start = obs::NowNanos();

  const bool traced =
      bindings.trace_requested() ||
      (opts_.trace_sample_every > 0 &&
       trace_tick_.fetch_add(1, std::memory_order_relaxed) %
               opts_.trace_sample_every ==
           0);
  obs::TraceContext trace_ctx;
  obs::TraceContext* trace = traced ? &trace_ctx : nullptr;
  uint32_t root = 0;
  if (traced) {
    root = trace_ctx.BeginSpan("anytime " + impl.canon.query.ToString(), 0);
  }

  // Parameter substitution and atom-override remap, exactly as
  // ExecuteInternal does them.
  const int np = impl.canon.query.num_params();
  ConjunctiveQuery substituted;
  const ConjunctiveQuery* exec_q = &impl.canon.query;
  if (np > 0) {
    auto params = bindings.ParamVector(np);
    if (!params.ok()) return params.status();
    auto sub = SubstituteParams(impl.canon.query, *params);
    if (!sub.ok()) return sub.status();
    substituted = std::move(*sub);
    exec_q = &substituted;
  } else if (bindings.num_params_bound() > 0) {
    return Status::InvalidArgument(
        "bindings provide parameter values but the query has no placeholders");
  }
  AtomOverrides effective;
  for (const auto& [idx, ov] : bindings.atom_overrides()) {
    if (idx < 0 || idx >= exec_q->num_atoms() || ov.table == nullptr) {
      return Status::InvalidArgument("atom binding index out of range");
    }
    effective[impl.canon.atom_orig_to_canon[idx]] = ov;
  }

  AnytimeInput input;
  input.snap = db_->snapshot();
  input.db = db_.get();
  input.query = exec_q;
  input.compiled = impl.compiled.get();
  input.overrides = std::move(effective);
  input.var_map = impl.canon.identity ? nullptr : &impl.canon.canon_to_orig;
  input.scheduler = EnsureScheduler();
  input.trace = trace;
  input.trace_parent = root;

  auto run = RunAnytime(input, spec);
  if (!run.ok()) return run.status();
  AnytimeOutput& o = *run;

  AnytimeResult result;
  result.verdict = o.verdict;
  result.refine_rounds = o.stats.refine_rounds;
  result.refined_answers = o.stats.refined_answers;
  result.contested_initial = o.stats.contested_initial;
  result.mc_samples_drawn = o.stats.mc_samples_drawn;
  result.certified_prefix = o.stats.certified_prefix;
  result.deadline_hit = o.stats.deadline_hit;
  result.exponents = std::move(o.exponents);

  result.base.num_minimal_plans = impl.compiled->num_minimal_plans;
  result.base.from_plan_cache = impl.from_plan_cache;
  result.base.exact = o.verdict == AnytimeVerdict::kExact;
  result.base.certified = o.verdict != AnytimeVerdict::kBoundsOnly;
  result.base.answers.reserve(o.answers.size());
  result.base.lower_bounds.reserve(o.answers.size());
  for (const BoundedAnswer& a : o.answers) {
    result.base.answers.push_back(RankedAnswer{a.tuple, a.point});
    result.base.lower_bounds.push_back(a.lower);
  }
  result.answers = std::move(o.answers);

  m_queries_->Add(1);
  m_anytime_runs_->Add(1);
  switch (result.verdict) {
    case AnytimeVerdict::kExact:
      m_anytime_exact_->Add(1);
      break;
    case AnytimeVerdict::kCertified:
      m_anytime_certified_->Add(1);
      break;
    case AnytimeVerdict::kBoundsOnly:
      m_anytime_bounds_only_->Add(1);
      break;
  }
  if (result.deadline_hit) m_anytime_deadline_aborts_->Add(1);
  if (result.refine_rounds > 0) {
    m_anytime_refine_rounds_->Add(result.refine_rounds);
  }
  if (result.refined_answers > 0) {
    m_anytime_refined_answers_->Add(result.refined_answers);
  }
  if (result.mc_samples_drawn > 0) {
    m_mc_samples_drawn_->Add(result.mc_samples_drawn);
  }
  m_anytime_rounds_per_query_->Record(result.refine_rounds);
  m_anytime_run_ns_->Record(obs::NowNanos() - t_start);

  if (traced) {
    // The escalation rung this execution ended on: bounds -> refine ->
    // certified (exact counts as certified — every guarantee holds).
    const char* rung =
        result.verdict != AnytimeVerdict::kBoundsOnly
            ? "certified"
            : (result.refine_rounds > 0 ? "refine" : "bounds");
    trace_ctx.Annotate(root, "anytime", std::string(rung));
    trace_ctx.Annotate(root, "verdict",
                       std::string(AnytimeVerdictName(result.verdict)));
    trace_ctx.Annotate(root, "answers",
                       static_cast<uint64_t>(result.answers.size()));
    trace_ctx.Annotate(root, "refine_rounds",
                       static_cast<uint64_t>(result.refine_rounds));
    trace_ctx.Annotate(root, "refined_answers",
                       static_cast<uint64_t>(result.refined_answers));
    trace_ctx.EndSpan(root);
    result.base.trace =
        std::make_shared<const obs::QueryTrace>(trace_ctx.Finish());
    m_traces_->Add(1);
  }
  return result;
}

Result<std::shared_ptr<const std::vector<Table>>> QueryEngine::GetOrReduce(
    const std::string& key, const Snapshot& snap, const ConjunctiveQuery& q,
    const std::unordered_map<int, const Table*>& overrides,
    SemiJoinStats* stats) {
  const bool cacheable =
      !key.empty() && opts_.reduction_cache_capacity > 0;
  if (cacheable) {
    std::lock_guard lock(reduction_mu_);
    auto it = reduction_cache_.find(key);
    if (it != reduction_cache_.end()) {
      reduction_lru_.splice(reduction_lru_.begin(), reduction_lru_,
                            it->second.lru_pos);
      m_reduction_hits_->Add(1);
      return it->second.tables;
    }
  }
  auto r = SemiJoinReduce(snap, q, overrides, stats);
  if (!r.ok()) return r.status();
  auto tables = std::make_shared<const std::vector<Table>>(std::move(*r));
  m_reduction_misses_->Add(1);
  if (cacheable) {
    std::lock_guard lock(reduction_mu_);
    auto it = reduction_cache_.find(key);
    if (it != reduction_cache_.end()) return it->second.tables;  // lost race
    reduction_lru_.push_front(key);
    reduction_cache_.emplace(
        key, ReductionEntry{tables, snap.version(), reduction_lru_.begin()});
    if (reduction_cache_.size() > opts_.reduction_cache_capacity) {
      reduction_cache_.erase(reduction_lru_.back());
      reduction_lru_.pop_back();
    }
  }
  return tables;
}

Scheduler* QueryEngine::EnsureScheduler() {
  {
    std::shared_lock lock(mu_);
    if (scheduler_) return scheduler_.get();
  }
  std::unique_lock lock(mu_);
  if (!scheduler_) {
    scheduler_ = std::make_unique<Scheduler>(opts_.num_threads, &metrics_);
  }
  return scheduler_.get();
}

std::future<Result<QueryResult>> QueryEngine::Submit(PreparedQuery prepared,
                                                     Bindings bindings) {
  Scheduler* scheduler = EnsureScheduler();
  auto task = std::make_shared<std::packaged_task<Result<QueryResult>()>>(
      [this, scheduler, prepared = std::move(prepared),
       bindings = std::move(bindings)]() {
        m_batch_queries_->Add(1);
        return ExecuteInternal(prepared, bindings, scheduler,
                               /*use_result_cache=*/true);
      });
  auto future = task->get_future();
  scheduler->Submit([task] { (*task)(); }, "query");
  return future;
}

std::future<Result<QueryResult>> QueryEngine::Submit(PreparedQuery prepared,
                                                     Bindings bindings,
                                                     Snapshot snap) {
  Scheduler* scheduler = EnsureScheduler();
  auto task = std::make_shared<std::packaged_task<Result<QueryResult>()>>(
      [this, scheduler, prepared = std::move(prepared),
       bindings = std::move(bindings), snap = std::move(snap)]() {
        m_batch_queries_->Add(1);
        if (!db_->OwnsSnapshot(snap)) {
          return Result<QueryResult>(Status::InvalidArgument(
              "snapshot is empty or belongs to a different database"));
        }
        return ExecuteInternal(prepared, bindings, scheduler,
                               /*use_result_cache=*/true, &snap);
      });
  auto future = task->get_future();
  scheduler->Submit([task] { (*task)(); }, "query");
  return future;
}

std::vector<Result<QueryResult>> QueryEngine::ExecuteBatch(
    const std::vector<PreparedQuery>& prepared,
    const std::vector<Bindings>& bindings) {
  std::vector<Result<QueryResult>> out;
  const size_t n = prepared.size();
  if (!bindings.empty() && bindings.size() != n) {
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      out.push_back(Status::InvalidArgument(
          "ExecuteBatch: bindings must be empty or match prepared in size"));
    }
    return out;
  }
  if (n == 0) return out;

  Scheduler* scheduler = EnsureScheduler();
  std::vector<std::future<Result<QueryResult>>> futures;
  futures.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    futures.push_back(
        Submit(prepared[i], bindings.empty() ? Bindings{} : bindings[i]));
  }
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // Work-share while waiting: run queued tasks (other queries of this
    // batch, or their operator morsels) on this thread instead of idling.
    while (futures[i].wait_for(std::chrono::seconds(0)) !=
               std::future_status::ready &&
           scheduler->TryRunOne()) {
    }
    out.push_back(futures[i].get());
  }
  return out;
}

// ---------------------------------------------------------------------------
// Legacy wrappers
// ---------------------------------------------------------------------------

Result<QueryResult> QueryEngine::Run(
    std::string_view query_text,
    const std::unordered_map<int, const Table*>& overrides) {
  auto q = ParseQueryReadOnly(query_text, db_->strings());
  if (!q.ok()) return q.status();
  return Run(*q, overrides);
}

Result<QueryResult> QueryEngine::Run(
    const ConjunctiveQuery& q,
    const std::unordered_map<int, const Table*>& overrides) {
  auto prepared = Prepare(q);
  if (!prepared.ok()) return prepared.status();
  Bindings bindings;
  for (const auto& [idx, table] : overrides) {
    bindings.SetAtomTable(idx, table);  // untagged: conservative semantics
  }
  return ExecuteInternal(*prepared, bindings, /*scheduler=*/nullptr,
                         /*use_result_cache=*/false);
}

Result<double> QueryEngine::RunBoolean(std::string_view query_text,
                                       const Bindings& bindings) {
  auto prepared = Prepare(query_text);
  if (!prepared.ok()) return prepared.status();
  if (!prepared->original().IsBoolean()) {
    return Status::InvalidArgument("query has head variables");
  }
  auto r = ExecuteInternal(*prepared, bindings, /*scheduler=*/nullptr,
                           /*use_result_cache=*/false);
  if (!r.ok()) return r.status();
  if (r->answers.empty()) return 0.0;
  return r->answers[0].score;
}

Result<std::vector<QueryResult>> QueryEngine::RunBatch(
    const std::vector<ConjunctiveQuery>& queries) {
  std::vector<PreparedQuery> prepared;
  prepared.reserve(queries.size());
  for (const auto& q : queries) {
    auto p = Prepare(q);
    if (!p.ok()) return p.status();
    prepared.push_back(std::move(*p));
  }
  auto detailed = ExecuteBatch(prepared);
  std::vector<QueryResult> out;
  out.reserve(detailed.size());
  for (auto& r : detailed) {
    if (!r.ok()) return r.status();  // all-or-nothing legacy semantics
    out.push_back(std::move(*r));
  }
  return out;
}

Result<std::vector<QueryResult>> QueryEngine::RunBatch(
    const std::vector<std::string>& query_texts) {
  std::vector<ConjunctiveQuery> queries;
  queries.reserve(query_texts.size());
  for (const auto& text : query_texts) {
    auto q = ParseQueryReadOnly(text, db_->strings());
    if (!q.ok()) return q.status();
    queries.push_back(std::move(*q));
  }
  return RunBatch(queries);
}

EngineStats QueryEngine::stats() const {
  // A snapshot view over the metrics registry (the source of truth), plus
  // the result cache's and scheduler's own counters.
  EngineStats s;
  s.queries = m_queries_->Value();
  s.batch_queries = m_batch_queries_->Value();
  s.prepared_queries = m_prepared_->Value();
  s.plan_cache_hits = m_plan_hits_->Value();
  s.plan_cache_misses = m_plan_misses_->Value();
  s.canonical_remaps = m_remaps_->Value();
  s.canonical_remap_hits = m_remap_hits_->Value();
  s.reduction_cache_hits = m_reduction_hits_->Value();
  s.reduction_cache_misses = m_reduction_misses_->Value();
  if (result_cache_) {
    ResultCacheStats rc = result_cache_->stats();
    s.result_cache_hits = rc.hits;
    s.result_cache_misses = rc.misses;
    s.result_cache_in_flight_waits = rc.in_flight_waits;
    s.result_cache_evictions = rc.evictions;
    s.result_cache_stale_evictions = rc.stale_evictions;
    s.result_cache_delta_maintained = rc.delta_maintained;
    s.result_cache_swept = m_swept_->Value();
    s.result_cache_entries = rc.entries;
  }
  {
    std::shared_lock lock(mu_);
    if (scheduler_) s.tasks_executed = scheduler_->tasks_executed();
  }
  s.scans.filtered_scans = m_scan_filtered_->Value();
  s.scans.parallel_scans = m_scan_parallel_->Value();
  s.scans.chunks_scanned = m_scan_chunks_scanned_->Value();
  s.scans.chunks_pruned = m_scan_chunks_pruned_->Value();
  s.scans.rows_scanned = m_scan_rows_scanned_->Value();
  s.scans.rows_selected = m_scan_rows_selected_->Value();
  s.semijoin_reductions = m_semijoin_reductions_->Value();
  s.bloom_filters_built = m_bloom_built_->Value();
  s.bloom_probes_skipped = m_bloom_skipped_->Value();
  s.traces_recorded = m_traces_->Value();
  s.safe_plan_routed = m_safe_routed_->Value();
  s.safe_plan_unsafe_residue = m_safe_residue_->Value();
  s.safe_plan_fallback = m_safe_fallback_->Value();
  return s;
}

}  // namespace dissodb
