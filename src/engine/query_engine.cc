#include "src/engine/query_engine.h"

#include <algorithm>
#include <functional>
#include <mutex>

#include "src/dissociation/minimal_plans.h"
#include "src/dissociation/single_plan.h"
#include "src/exec/evaluator.h"
#include "src/exec/semijoin.h"
#include "src/query/analysis.h"
#include "src/query/parser.h"

namespace dissodb {

namespace {

/// Cache key: canonical query rendering plus the flags that change the
/// compiled artifact.
std::string CacheKey(const ConjunctiveQuery& q, const PropagationOptions& o) {
  std::string key = q.ToString();
  key += '|';
  key += o.opt1_single_plan ? '1' : '0';
  key += o.opt2_reuse_subplans ? '1' : '0';
  key += o.enum_opts.use_deterministic ? '1' : '0';
  key += o.enum_opts.use_fds ? '1' : '0';
  return key;
}

}  // namespace

QueryEngine::QueryEngine(std::shared_ptr<const Database> db,
                         EngineOptions opts)
    : db_(std::move(db)), opts_(opts) {
  if (opts_.result_cache_capacity > 0) {
    result_cache_ = std::make_unique<ResultCache>(opts_.result_cache_capacity);
  }
}

QueryEngine QueryEngine::Borrow(const Database& db, EngineOptions opts) {
  // Aliasing shared_ptr: shares no ownership; the caller keeps `db` alive.
  return QueryEngine(std::shared_ptr<const Database>(
                         std::shared_ptr<const Database>(), &db),
                     opts);
}

Result<QueryResult> QueryEngine::Run(
    std::string_view query_text,
    const std::unordered_map<int, const Table*>& overrides) {
  auto q = ParseQueryReadOnly(query_text, db_->strings());
  if (!q.ok()) return q.status();
  return Run(*q, overrides);
}

Result<QueryResult> QueryEngine::Run(
    const ConjunctiveQuery& q,
    const std::unordered_map<int, const Table*>& overrides) {
  return RunInternal(q, overrides, /*scheduler=*/nullptr,
                     /*use_result_cache=*/false);
}

Result<QueryResult> QueryEngine::RunInternal(
    const ConjunctiveQuery& q,
    const std::unordered_map<int, const Table*>& overrides,
    Scheduler* scheduler, bool use_result_cache) {
  bool cache_hit = false;
  auto compiled = GetOrCompile(q, &cache_hit);
  if (!compiled.ok()) return compiled.status();

  const PropagationOptions& popts = opts_.propagation;
  QueryResult result;
  result.num_minimal_plans = (*compiled)->num_minimal_plans;
  result.from_plan_cache = cache_hit;

  // Opt. 3: semi-join-reduce the inputs first.
  std::vector<Table> reduced;
  std::unordered_map<int, const Table*> effective = overrides;
  if (popts.opt3_semijoin_reduction) {
    auto r = SemiJoinReduce(*db_, q, overrides);
    if (!r.ok()) return r.status();
    reduced = std::move(*r);
    for (int i = 0; i < q.num_atoms(); ++i) effective[i] = &reduced[i];
  }

  Rel scores(std::vector<VarId>{});
  ChunkedScanStats scan_stats;
  if ((*compiled)->single_plan) {
    PlanEvaluator ev(*db_, q);
    for (const auto& [idx, table] : effective) ev.SetAtomTable(idx, table);
    if (use_result_cache && result_cache_) {
      ev.SetResultCache(result_cache_.get(), db_->version());
    }
    ev.SetScheduler(scheduler);
    auto rel = ev.Evaluate((*compiled)->single_plan);
    if (!rel.ok()) return rel.status();
    result.nodes_evaluated = ev.nodes_evaluated();
    result.result_cache_hits = ev.result_cache_hits();
    scan_stats = ev.scan_stats();
    scores = **rel;
  } else {
    auto rel = EvaluatePlansSeparately(*db_, q, (*compiled)->plans, effective,
                                       &scan_stats);
    if (!rel.ok()) return rel.status();
    for (const auto& p : (*compiled)->plans) {
      result.nodes_evaluated += MeasurePlan(p).tree_nodes;
    }
    scores = std::move(*rel);
  }
  result.answers = RankAnswers(scores);
  {
    std::lock_guard lock(scan_mu_);
    scan_stats_.MergeFrom(scan_stats);
  }

  queries_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

Result<double> QueryEngine::RunBoolean(std::string_view query_text) {
  auto q = ParseQueryReadOnly(query_text, db_->strings());
  if (!q.ok()) return q.status();
  if (!q->IsBoolean()) {
    return Status::InvalidArgument("query has head variables");
  }
  auto r = Run(*q);
  if (!r.ok()) return r.status();
  if (r->answers.empty()) return 0.0;
  return r->answers[0].score;
}

Scheduler* QueryEngine::EnsureScheduler() {
  {
    std::shared_lock lock(mu_);
    if (scheduler_) return scheduler_.get();
  }
  std::unique_lock lock(mu_);
  if (!scheduler_) {
    scheduler_ = std::make_unique<Scheduler>(opts_.num_threads);
  }
  return scheduler_.get();
}

Result<std::vector<QueryResult>> QueryEngine::RunBatch(
    const std::vector<ConjunctiveQuery>& queries) {
  const size_t n = queries.size();
  std::vector<QueryResult> results(n);
  std::vector<Status> statuses(n);
  if (n == 0) return results;

  Scheduler* scheduler = EnsureScheduler();
  // One task per query; the pool runs them concurrently (the caller thread
  // participates) and each task may fan its own large operators out as
  // morsels on the same pool — ParallelFor is work-sharing, so the nesting
  // cannot deadlock. Cross-query subplan sharing happens inside the
  // evaluator through the engine's ResultCache.
  std::vector<std::function<void()>> tasks;
  tasks.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    tasks.push_back([this, i, &queries, &results, &statuses, scheduler] {
      auto r = RunInternal(queries[i], {}, scheduler,
                           /*use_result_cache=*/true);
      if (r.ok()) {
        results[i] = std::move(*r);
      } else {
        statuses[i] = r.status();
      }
    });
  }
  scheduler->RunAll(std::move(tasks));
  batch_queries_.fetch_add(n, std::memory_order_relaxed);

  for (const auto& s : statuses) {
    if (!s.ok()) return s;
  }
  return results;
}

Result<std::vector<QueryResult>> QueryEngine::RunBatch(
    const std::vector<std::string>& query_texts) {
  std::vector<ConjunctiveQuery> queries;
  queries.reserve(query_texts.size());
  for (const auto& text : query_texts) {
    auto q = ParseQueryReadOnly(text, db_->strings());
    if (!q.ok()) return q.status();
    queries.push_back(std::move(*q));
  }
  return RunBatch(queries);
}

Result<std::shared_ptr<const QueryEngine::CompiledQuery>>
QueryEngine::GetOrCompile(const ConjunctiveQuery& q, bool* cache_hit) {
  const std::string key = CacheKey(q, opts_.propagation);
  if (opts_.plan_cache_capacity > 0) {
    std::shared_lock lock(mu_);
    auto it = plan_cache_.find(key);
    if (it != plan_cache_.end()) {
      *cache_hit = true;
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  *cache_hit = false;

  // Compile outside any lock: enumeration can be expensive and two threads
  // compiling the same key just race to an identical immutable artifact.
  auto sk = SchemaKnowledge::FromDatabase(q, *db_);
  if (!sk.ok()) return sk.status();

  auto compiled = std::make_shared<CompiledQuery>();
  {
    auto plans = EnumerateMinimalPlans(q, *sk, opts_.propagation.enum_opts);
    if (!plans.ok()) return plans.status();
    compiled->num_minimal_plans = plans->size();
    if (!opts_.propagation.opt1_single_plan) compiled->plans = std::move(*plans);
  }
  if (opts_.propagation.opt1_single_plan) {
    SinglePlanOptions sp;
    sp.reuse_common_subplans = opts_.propagation.opt2_reuse_subplans;
    sp.enum_opts = opts_.propagation.enum_opts;
    auto plan = BuildSinglePlan(q, *sk, sp);
    if (!plan.ok()) return plan.status();
    compiled->single_plan = std::move(*plan);
  }

  cache_misses_.fetch_add(1, std::memory_order_relaxed);
  if (opts_.plan_cache_capacity > 0) {
    std::unique_lock lock(mu_);
    auto [it, inserted] = plan_cache_.try_emplace(key, compiled);
    if (inserted) {
      cache_order_.push_back(key);
      if (cache_order_.size() > opts_.plan_cache_capacity) {
        plan_cache_.erase(cache_order_.front());
        cache_order_.erase(cache_order_.begin());
      }
    }
    return it->second;
  }
  return std::shared_ptr<const CompiledQuery>(std::move(compiled));
}

EngineStats QueryEngine::stats() const {
  EngineStats s;
  s.queries = queries_.load(std::memory_order_relaxed);
  s.batch_queries = batch_queries_.load(std::memory_order_relaxed);
  s.plan_cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.plan_cache_misses = cache_misses_.load(std::memory_order_relaxed);
  if (result_cache_) {
    ResultCacheStats rc = result_cache_->stats();
    s.result_cache_hits = rc.hits;
    s.result_cache_misses = rc.misses;
    s.result_cache_in_flight_waits = rc.in_flight_waits;
    s.result_cache_evictions = rc.evictions;
    s.result_cache_entries = rc.entries;
  }
  {
    std::shared_lock lock(mu_);
    if (scheduler_) s.tasks_executed = scheduler_->tasks_executed();
  }
  {
    std::lock_guard lock(scan_mu_);
    s.scans = scan_stats_;
  }
  return s;
}

}  // namespace dissodb
