// Typed, fingerprintable execution-time bindings for prepared queries.
//
// A Bindings object carries everything that varies between executions of
// one PreparedQuery:
//   - constant parameters: values for the "$k" / "?" placeholders in the
//     query text, substituted before evaluation, and
//   - per-atom table selections: a Table bound in place of an atom's
//     catalog table (pre-filtered inputs, per-tenant slices, ...).
//
// Unlike the legacy raw overrides map, bindings are *fingerprintable*:
// parameter values always are (they become constants in the executed
// query, which the subplan fingerprints render), and an atom selection is
// whenever the caller supplies a content tag — a string that uniquely
// identifies the bound table's contents (e.g. "tenant:42@v7"). Two
// executions presenting the same tag for the same atom MUST bind identical
// table contents; in exchange, their subplans participate in the engine's
// shared ResultCache instead of disabling it. Untagged selections keep the
// conservative behavior: subplans touching them are never shared.
//
// Lifetime: bound Table pointers must stay valid until the execution
// completes (for Submit(), until the returned future is resolved).
#ifndef DISSODB_ENGINE_BINDINGS_H_
#define DISSODB_ENGINE_BINDINGS_H_

#include <map>
#include <optional>
#include <string>

#include "src/common/status.h"
#include "src/common/value.h"
#include "src/exec/evaluator.h"

namespace dissodb {

class Bindings {
 public:
  Bindings() = default;

  /// Binds placeholder $`param_idx` to `v`. Chainable.
  Bindings& Set(int param_idx, Value v) {
    params_[param_idx] = v;
    return *this;
  }

  /// Binds atom `atom_idx` (position in the prepared query's body) to
  /// `table`. A non-empty `content_tag` makes the selection fingerprintable
  /// (see file comment). Chainable.
  Bindings& SetAtomTable(int atom_idx, const Table* table,
                         std::string content_tag = {}) {
    atoms_[atom_idx] = AtomOverride{table, std::move(content_tag)};
    return *this;
  }

  /// Requests a span tree for executions running under these bindings,
  /// regardless of the engine's sampling rate (EngineOptions.
  /// trace_sample_every). The trace lands on QueryResult::trace. Chainable.
  Bindings& EnableTrace(bool on = true) {
    trace_ = on;
    return *this;
  }

  bool trace_requested() const { return trace_; }

  bool empty() const { return params_.empty() && atoms_.empty(); }
  size_t num_params_bound() const { return params_.size(); }
  const AtomOverrides& atom_overrides() const { return atoms_; }

  /// The dense parameter vector [$0, ..., $num_params-1]; fails if any
  /// placeholder is unbound or an index is out of range.
  Result<std::vector<Value>> ParamVector(int num_params) const;

  /// Fingerprint of these bindings in the *caller's* index space:
  /// parameter values plus atom content tags; nullopt iff some atom
  /// selection is untagged (the bindings then cannot participate in
  /// result sharing). Diagnostic/test utility — the engine does NOT use
  /// this for its caches: it keys Opt. 3 reductions by (executed query
  /// text, snapshot version, tags rendered at *canonical* atom indices),
  /// so body-permuted spellings agree and distinct spellings cannot
  /// collide. String parameter values must be pool-interned codes to be
  /// stable across queries.
  std::optional<std::string> Fingerprint() const;

 private:
  std::map<int, Value> params_;  // ordered: deterministic fingerprints
  AtomOverrides atoms_;
  bool trace_ = false;  // per-execution tracing opt-in
};

}  // namespace dissodb

#endif  // DISSODB_ENGINE_BINDINGS_H_
