// QueryEngine — the reusable engine facade over one immutable database.
//
// Owns the full pipeline: parse -> canonicalization -> structural analysis /
// schema knowledge -> dissociation plan choice (Algorithms 1-3) -> optional
// semi-join reduction -> vectorized plan evaluation -> ranked answers.
//
// The public surface is a prepared-query API:
//
//   auto prepared = engine.Prepare("q(x) :- R(x,$0), S(x,y)");
//   auto result   = engine.Execute(*prepared, Bindings().Set(0, Value::Int64(7)));
//   auto future   = engine.Submit(*prepared, bindings);   // async, pooled
//
// Prepare compiles once and canonicalizes variable ids (occurrence-order
// renaming), so differently-named but isomorphic queries share one plan-
// cache entry and the same ResultCache fingerprints — answers are mapped
// back to the caller's variable order with a zero-copy column remap.
// Bindings carry constant parameters and per-atom table selections; tagged
// selections (and Opt. 3's semi-join-reduced inputs, which the engine tags
// as reduction(query, db version)) stay fingerprintable and therefore keep
// participating in cross-query result sharing. Thin Run/RunBatch/RunBoolean
// wrappers keep the legacy string-in/answers-out surface working.
//
// Serving layer (src/serve/): the engine owns a bounded ResultCache of
// evaluated subplan relations keyed by (plan fingerprint [+ binding tags],
// database version) — the paper's Opt. 2 subplan sharing lifted from one
// plan DAG to the whole workload — and a Scheduler thread pool. Submit
// enqueues one pooled task per execution and returns a future (per-query
// error delivery); ExecuteBatch submits a whole workload and drains queue
// tasks on the calling thread while it waits. Rankings are bit-identical
// to sequential Execute calls.
//
// Snapshot isolation: every execution runs against an immutable Snapshot —
// either one the caller pinned (Execute/Submit overloads taking a
// Snapshot) or one acquired at execution start. The engine never mutates
// the database (string constants parse through the read-only pool path),
// and all caches are internally synchronized — any number of threads may
// Prepare/Execute/Submit concurrently on one engine *while writer
// transactions commit to the underlying Database*: each execution sees
// exactly one fully-published version, a held snapshot returns
// bit-identical results across commits, and ResultCache entries are
// stamped per snapshot version (entries of versions no held snapshot pins
// are swept on commit via the database's commit hook). Do not destroy the
// engine while a writer is mid-commit on the same database.
#ifndef DISSODB_ENGINE_QUERY_ENGINE_H_
#define DISSODB_ENGINE_QUERY_ENGINE_H_

#include <atomic>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/anytime/anytime.h"
#include "src/common/status.h"
#include "src/dissociation/propagation.h"
#include "src/engine/bindings.h"
#include "src/engine/prepared_query.h"
#include "src/exec/operators.h"
#include "src/exec/ranking.h"
#include "src/exec/semijoin.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/plan/plan.h"
#include "src/query/cq.h"
#include "src/serve/result_cache.h"
#include "src/serve/scheduler.h"
#include "src/storage/database.h"

namespace dissodb {

/// Engine-wide configuration; per-query strategy comes from
/// PropagationOptions (Section 4 optimization toggles).
struct EngineOptions {
  PropagationOptions propagation;
  /// Max cached compiled plans (true LRU; a Prepare hit refreshes the
  /// entry); 0 disables the cache.
  size_t plan_cache_capacity = 1024;
  /// Max cached evaluated subplan relations shared across Submit /
  /// ExecuteBatch / RunBatch workloads; 0 disables the result cache.
  /// Synchronous Execute/Run never consult it, so single-query timings
  /// measure evaluation, not caching.
  size_t result_cache_capacity = 256;
  /// Max cached Opt. 3 semi-join reductions, keyed by (executed query,
  /// database version, binding tags); 0 disables reduction reuse.
  size_t reduction_cache_capacity = 64;
  /// Delta-maintain hot result-cache entries across append-only commits:
  /// instead of sweeping an entry the commit made stale, re-evaluate its
  /// subplan over just the appended rows and republish the merged relation
  /// at the new version (bit-identical to a from-scratch evaluation; see
  /// src/serve/delta_maintenance.h). Non-append commits and unsupported
  /// plan shapes fall back to the ordinary sweep.
  bool delta_maintain_results = true;
  /// Max entries rolled forward per commit, hottest (most recently used)
  /// first; the rest fall to the sweep.
  size_t delta_maintain_limit = 64;
  /// Route Prepare through the lifted safe-plan compiler (src/lift/): the
  /// Dalvi–Suciu rules (independent join, independent project, base atom)
  /// compile hierarchical queries — and hierarchical subqueries of unsafe
  /// ones — directly, reserving cut-set enumeration for genuinely unsafe
  /// residues. Safe queries skip minimal-plan enumeration entirely and
  /// their results are flagged exact. Emitted plans are bit-identical to
  /// the legacy pipeline's on every query, so scores, plan fingerprints,
  /// and caches are unaffected; off = legacy compilation (differential
  /// mode for tests and benches).
  bool safe_plan_fast_path = true;
  /// Canonicalize variable ids at Prepare time so isomorphic queries share
  /// plans and cached results. Off = legacy behavior (plans compiled in
  /// the caller's variable space); used by differential tests and the
  /// micro_prepared baseline comparison.
  bool canonicalize = true;
  /// Worker threads for Submit / batches / morsel-parallel operators;
  /// 0 = hardware concurrency. The pool starts lazily on first use.
  int num_threads = 0;
  /// Trace every Nth execution (1 = every execution, 0 = only executions
  /// whose Bindings request it via EnableTrace). A traced execution builds
  /// a span tree (one span per plan node, annotated with rows, chunk
  /// pruning, cache interactions, SIMD path) attached to its QueryResult;
  /// untraced executions pay a single branch per instrumentation site.
  size_t trace_sample_every = 0;
};

struct EngineStats {
  size_t queries = 0;
  size_t batch_queries = 0;  ///< subset of `queries` served asynchronously
  size_t prepared_queries = 0;  ///< Prepare calls (each Run prepares once)
  size_t plan_cache_hits = 0;
  size_t plan_cache_misses = 0;
  /// Executions whose answers were column-remapped from canonical variable
  /// space back to the caller's variable order.
  size_t canonical_remaps = 0;
  /// Plan-cache hits that only exist because of canonicalization: the
  /// hitting query's original spelling differs from the spelling that
  /// installed the entry, so the legacy (un-canonicalized) cache key would
  /// have missed.
  size_t canonical_remap_hits = 0;
  size_t result_cache_hits = 0;
  size_t result_cache_misses = 0;  ///< actual computations (leaders)
  /// Requests that waited on a concurrent computation of the same subplan
  /// instead of duplicating it (in-flight dedup).
  size_t result_cache_in_flight_waits = 0;
  size_t result_cache_evictions = 0;
  /// Entries swept at commit time because their version is older than the
  /// oldest live snapshot (no execution can ever request them again).
  size_t result_cache_stale_evictions = 0;
  /// Entries rolled forward to the new version by delta maintenance after
  /// an append-only commit (served as hits instead of recomputed).
  size_t result_cache_delta_maintained = 0;
  /// Entries dropped by the commit-time sweep (same count the
  /// engine.result_cache.swept counter exports).
  size_t result_cache_swept = 0;
  size_t result_cache_entries = 0;
  size_t reduction_cache_hits = 0;    ///< Opt. 3 reductions served cached
  size_t reduction_cache_misses = 0;  ///< Opt. 3 reductions computed
  size_t tasks_executed = 0;  ///< scheduler tasks (query tasks + morsels)
  /// Chunked-scan counters aggregated over every evaluated plan (zone-map
  /// pruning effectiveness, chunk-parallel scan usage).
  ChunkedScanStats scans;
  /// Opt. 3 semi-join reductions actually computed (cache hits excluded),
  /// with their Bloom pre-filter counters — previously dropped per-call.
  size_t semijoin_reductions = 0;
  size_t bloom_filters_built = 0;
  size_t bloom_probes_skipped = 0;
  /// Executions that recorded a span tree (sampling or per-query opt-in).
  size_t traces_recorded = 0;
  /// Compiles the lifted analyzer resolved exactly (safe query: enumeration
  /// skipped, results exact).
  size_t safe_plan_routed = 0;
  /// Lifted compiles that hit >= 1 unsafe residue (dissociation reserved
  /// for the residues; scores are upper bounds unless enumeration still
  /// finds a single minimal plan).
  size_t safe_plan_unsafe_residue = 0;
  /// Compiles that bypassed the lifted compiler (fast path disabled or
  /// opt1_single_plan off).
  size_t safe_plan_fallback = 0;
};

struct QueryResult {
  /// Answers sorted by descending propagation score.
  std::vector<RankedAnswer> answers;
  /// Number of minimal plans (1 iff the query is safe given the knowledge).
  size_t num_minimal_plans = 0;
  /// Plan-DAG nodes actually evaluated (shows Opt. 2 sharing).
  size_t nodes_evaluated = 0;
  /// Plan nodes served from the shared result cache instead of evaluated.
  size_t result_cache_hits = 0;
  /// Whether the compiled plan came from the engine's cache.
  bool from_plan_cache = false;
  /// True iff the scores are exact probabilities — the query is safe given
  /// the schema knowledge (Corollary 28), so the safe plan's score *is*
  /// P(q = a). False means dissociation upper bounds.
  bool exact = false;
  /// Span tree of this execution; non-null iff the execution was traced
  /// (EngineOptions.trace_sample_every or Bindings::EnableTrace). Export
  /// with ToText() / ToChromeJson() (Perfetto-loadable).
  std::shared_ptr<const obs::QueryTrace> trace;
  /// Anytime executions only (RunWithGuarantees): per-answer lower bounds
  /// aligned with `answers` (whose scores are then the interval's point
  /// estimates and upper bounds for unrefined answers). Empty for plain
  /// Execute results.
  std::vector<double> lower_bounds;
  /// Anytime executions only: every guarantee the caller requested was met
  /// (verdict kExact or kCertified). Always false for plain Execute.
  bool certified = false;
};

/// Result of QueryEngine::RunWithGuarantees: bounded answers plus the
/// escalation verdict and refinement telemetry. `base` mirrors the answers
/// as an ordinary QueryResult (point scores, lower_bounds, certified) so
/// existing consumers keep working.
struct AnytimeResult {
  /// Sorted by descending point score, ties ascending tuple — positionally
  /// comparable to QueryResult::answers from Execute.
  std::vector<BoundedAnswer> answers;
  AnytimeVerdict verdict = AnytimeVerdict::kBoundsOnly;
  size_t refine_rounds = 0;
  /// Distinct answers refined at all — stays below answers.size() whenever
  /// interval ranking settled some positions from bounds alone.
  size_t refined_answers = 0;
  /// Answers contesting a rank boundary right after the bounds stages.
  size_t contested_initial = 0;
  size_t mc_samples_drawn = 0;
  /// Order-certified top positions (top-k target).
  size_t certified_prefix = 0;
  /// Guarantees unmet because the deadline fired mid-refinement.
  bool deadline_hit = false;
  /// Per-atom oblivious exponents d_i of the lower-bound transform (empty
  /// on the safe-exact route).
  std::vector<double> exponents;
  QueryResult base;
};

class QueryEngine {
 public:
  explicit QueryEngine(std::shared_ptr<const Database> db,
                       EngineOptions opts = {});
  ~QueryEngine();

  /// Non-owning engine over a caller-kept database (examples, benches,
  /// tests). The database must outlive the engine.
  static QueryEngine Borrow(const Database& db, EngineOptions opts = {});

  const Database& db() const { return *db_; }
  const EngineOptions& options() const { return opts_; }

  // -------------------------------------------------------------------------
  // Prepared-query API (primary surface)
  // -------------------------------------------------------------------------

  /// Parses, canonicalizes, and compiles `query_text` ("$k" / "?" terms are
  /// parameter placeholders). Isomorphic queries return handles over the
  /// same cached compiled artifact.
  Result<PreparedQuery> Prepare(std::string_view query_text);

  /// Prepares an already-parsed query.
  Result<PreparedQuery> Prepare(const ConjunctiveQuery& q);

  /// Synchronous execution with `bindings` (parameter values + per-atom
  /// table selections), against a snapshot acquired at call time. Does not
  /// consult the shared result cache — Execute timings measure evaluation,
  /// exactly like the legacy Run.
  Result<QueryResult> Execute(const PreparedQuery& prepared,
                              const Bindings& bindings = {});

  /// Synchronous execution pinned to `snap`: reads exactly that state no
  /// matter how many commits have happened since it was acquired. Repeated
  /// calls with one held snapshot return bit-identical results.
  Result<QueryResult> Execute(const PreparedQuery& prepared,
                              const Bindings& bindings, const Snapshot& snap);

  /// Anytime execution: staged escalation from dissociation bounds to
  /// certified exactness (src/anytime/). Safe queries return exact point
  /// intervals immediately; unsafe queries get [lower, upper] intervals
  /// from the dissociation plans (upper) and their obliviously rescaled
  /// evaluation (lower), then — only for answers whose intervals still
  /// contest a rank boundary or exceed the width budget — lineage-level
  /// refinement (exact WMC or incremental MC) in cancellable rounds until
  /// the guarantees of `spec` hold, the budget dries up, or the deadline
  /// fires. The bounds stages always complete; the deadline gates only
  /// refinement, and an expired deadline returns bounds-only with no
  /// worker left running.
  Result<AnytimeResult> RunWithGuarantees(const PreparedQuery& prepared,
                                          const Bindings& bindings = {},
                                          const GuaranteeSpec& spec = {});

  /// Asynchronous execution: enqueues one pooled task and returns
  /// immediately; the execution snapshots the database when it starts.
  /// Pooled executions share subplans through the result cache. Errors are
  /// delivered per query through the future. Bound table pointers must
  /// stay alive until the future resolves.
  std::future<Result<QueryResult>> Submit(PreparedQuery prepared,
                                          Bindings bindings = {});

  /// Asynchronous execution pinned to `snap` (see the Execute overload).
  /// Result-cache entries are stored under the snapshot's version, so
  /// executions pinned to one snapshot keep sharing subplans across
  /// concurrent commits. The task holds its own Snapshot copy, released
  /// shortly *after* the future resolves (when the pooled task's resources
  /// are destroyed) — so the version stays live, and its cache entries
  /// sweep-exempt, until then.
  std::future<Result<QueryResult>> Submit(PreparedQuery prepared,
                                          Bindings bindings, Snapshot snap);

  /// Batch serving path, rebuilt on Submit: one pooled task per execution,
  /// subplan dedup through the result cache, and the calling thread drains
  /// queue tasks while it waits. Results align with `prepared` by index;
  /// each query fails or succeeds independently. `bindings` is either
  /// empty (no bindings anywhere) or one entry per query.
  std::vector<Result<QueryResult>> ExecuteBatch(
      const std::vector<PreparedQuery>& prepared,
      const std::vector<Bindings>& bindings = {});

  // -------------------------------------------------------------------------
  // Legacy wrappers (thin shims over Prepare/Execute; kept so existing
  // callers migrate mechanically)
  // -------------------------------------------------------------------------

  /// Parses and runs a datalog query. `overrides` rebinds atoms to filtered
  /// tables (per-query selections, untagged — prefer Bindings with content
  /// tags); pointers must stay alive for the call.
  Result<QueryResult> Run(
      std::string_view query_text,
      const std::unordered_map<int, const Table*>& overrides = {});

  /// Runs an already-parsed query.
  Result<QueryResult> Run(
      const ConjunctiveQuery& q,
      const std::unordered_map<int, const Table*>& overrides = {});

  /// Boolean-query convenience: the propagation score as a single number
  /// (0 when no satisfying assignment exists). Routed through the prepared
  /// path, so bindings (parameters, tagged selections) work here too.
  Result<double> RunBoolean(std::string_view query_text,
                            const Bindings& bindings = {});

  /// Batch wrapper over ExecuteBatch with all-or-nothing error semantics:
  /// on any per-query failure the whole batch returns the first error.
  /// Results align with `queries` by index and rankings are bit-identical
  /// to sequential Run calls. Prefer ExecuteBatch for per-query errors.
  Result<std::vector<QueryResult>> RunBatch(
      const std::vector<ConjunctiveQuery>& queries);

  /// Parses, then batch-evaluates.
  Result<std::vector<QueryResult>> RunBatch(
      const std::vector<std::string>& query_texts);

  /// Snapshot view assembled from the engine's metrics registry plus the
  /// result cache and scheduler (see MetricsRegistry for the live handles).
  EngineStats stats() const;

  /// The engine-owned metrics registry: every counter/gauge/histogram the
  /// engine, its scheduler, and its executions record into. Exposes
  /// PrometheusText() for scraping and histogram quantiles for latency
  /// work (e.g. engine.execute_ns, scheduler.queue_wait_ns.query).
  obs::MetricsRegistry& metrics() const { return metrics_; }

 private:
  /// `original_text` is the pre-canonicalization rendering of the query
  /// being prepared; on a hit, `renamed_hit` reports whether it differs
  /// from the spelling that installed the entry (i.e. the hit exists only
  /// because of canonicalization).
  Result<std::shared_ptr<const CompiledPlans>> GetOrCompile(
      const ConjunctiveQuery& q, const std::string& key,
      const std::string& original_text, bool* cache_hit, bool* renamed_hit);

  /// Shared by Execute, Submit tasks, and the legacy wrappers. `scheduler`
  /// enables the morsel-parallel operator paths (nullptr = sequential) and
  /// `use_result_cache` engages the workload-shared subplan cache.
  /// `pinned`, if non-null, is the snapshot to execute against; otherwise
  /// one is acquired here.
  Result<QueryResult> ExecuteInternal(const PreparedQuery& prepared,
                                      const Bindings& bindings,
                                      Scheduler* scheduler,
                                      bool use_result_cache,
                                      const Snapshot* pinned = nullptr);

  /// Opt. 3 support: returns the semi-join reduction of the executed query
  /// under `overrides` against `snap`, cached under `key` when non-empty.
  /// `stats`, if non-null, accumulates the reduction's semi-join counters
  /// (only when the reduction is actually computed, not on a cache hit).
  Result<std::shared_ptr<const std::vector<Table>>> GetOrReduce(
      const std::string& key, const Snapshot& snap, const ConjunctiveQuery& q,
      const std::unordered_map<int, const Table*>& overrides,
      SemiJoinStats* stats);

  /// Commit-hook body: records commit telemetry, delta-maintains hot
  /// result-cache entries across append-only commits, then sweeps entries
  /// below the oldest live snapshot version.
  void OnCommit(const CommitInfo& info);

  /// Rolls hot recipe-carrying result-cache entries forward from the
  /// pre-commit version to `info.version` (append-only commits only).
  void MaintainCacheEntries(const CommitInfo& info);

  /// Sweeps result-cache entries below the oldest live snapshot version
  /// (they can never be requested again).
  void SweepStaleResults();

  /// Starts the thread pool on first use.
  Scheduler* EnsureScheduler();

  std::shared_ptr<const Database> db_;
  EngineOptions opts_;
  /// Registered commit hook (stale-entry sweep); -1 when no result cache.
  int commit_hook_token_ = -1;

  // Compiled-plan cache: true LRU (hits splice to the front).
  struct PlanCacheEntry {
    std::shared_ptr<const CompiledPlans> compiled;
    /// Original (pre-canonicalization) spelling that installed the entry;
    /// a hit from a different spelling is a canonicalization win.
    std::string original_text;
    std::list<std::string>::iterator lru_pos;
  };
  mutable std::mutex plan_mu_;
  std::unordered_map<std::string, PlanCacheEntry> plan_cache_;
  std::list<std::string> plan_lru_;  // front = most recently used

  // Opt. 3 reduction cache (LRU), keyed by reduction fingerprint; entries
  // are version-stamped so the commit-hook sweep can drop reductions no
  // held snapshot can request anymore (the fingerprint embeds the version,
  // so a dead-version entry is unhittable and would otherwise linger).
  struct ReductionEntry {
    std::shared_ptr<const std::vector<Table>> tables;
    uint64_t version = 0;
    std::list<std::string>::iterator lru_pos;
  };
  mutable std::mutex reduction_mu_;
  std::unordered_map<std::string, ReductionEntry> reduction_cache_;
  std::list<std::string> reduction_lru_;  // front = most recently used

  mutable std::shared_mutex mu_;          // guards scheduler_ init
  std::unique_ptr<ResultCache> result_cache_;

  // Engine-owned metrics registry (declared before scheduler_, which records
  // into it) plus cached handles for the hot counters — EngineStats is
  // assembled from these on demand, the registry is the source of truth.
  mutable obs::MetricsRegistry metrics_;
  obs::Counter* m_queries_;
  obs::Counter* m_batch_queries_;
  obs::Counter* m_prepared_;
  obs::Counter* m_plan_hits_;
  obs::Counter* m_plan_misses_;
  obs::Counter* m_remaps_;
  obs::Counter* m_remap_hits_;
  obs::Counter* m_reduction_hits_;
  obs::Counter* m_reduction_misses_;
  obs::Counter* m_traces_;
  obs::Counter* m_scan_filtered_;
  obs::Counter* m_scan_parallel_;
  obs::Counter* m_scan_chunks_scanned_;
  obs::Counter* m_scan_chunks_pruned_;
  obs::Counter* m_scan_rows_scanned_;
  obs::Counter* m_scan_rows_selected_;
  obs::Counter* m_bloom_built_;
  obs::Counter* m_bloom_skipped_;
  obs::Counter* m_semijoin_reductions_;
  obs::Counter* m_delta_maintained_;
  obs::Counter* m_swept_;
  obs::Counter* m_safe_routed_;
  obs::Counter* m_safe_residue_;
  obs::Counter* m_safe_fallback_;
  obs::Counter* m_anytime_runs_;
  obs::Counter* m_anytime_exact_;
  obs::Counter* m_anytime_certified_;
  obs::Counter* m_anytime_bounds_only_;
  obs::Counter* m_anytime_deadline_aborts_;
  obs::Counter* m_anytime_refine_rounds_;
  obs::Counter* m_anytime_refined_answers_;
  obs::Counter* m_mc_samples_drawn_;
  obs::Histogram* m_execute_ns_;
  obs::Histogram* m_commit_append_ns_per_row_;
  obs::Histogram* m_safe_compile_ns_;
  obs::Histogram* m_anytime_rounds_per_query_;
  obs::Histogram* m_anytime_run_ns_;
  /// Round-robin tick for EngineOptions.trace_sample_every.
  std::atomic<uint64_t> trace_tick_{0};
  /// Declared last on purpose: destroyed first, so the pool joins (running
  /// any still-queued Submit tasks to completion) while every member those
  /// tasks touch — caches, stats, counters — is still alive. Callers may
  /// drop a Submit future and destroy the engine without draining it.
  std::unique_ptr<Scheduler> scheduler_;  // lazy; guarded by mu_
};

}  // namespace dissodb

#endif  // DISSODB_ENGINE_QUERY_ENGINE_H_
