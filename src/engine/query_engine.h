// QueryEngine — the reusable engine facade over one immutable database.
//
// Owns the full pipeline: parse -> structural analysis / schema knowledge ->
// dissociation plan choice (Algorithms 1-3) -> optional semi-join reduction
// -> vectorized plan evaluation -> ranked answers. Compiled plans are cached
// by query signature + optimization flags, so repeated queries skip
// enumeration and plan construction entirely.
//
// Thread safety: the engine never mutates the database (string constants
// parse through the read-only pool path), and the plan cache is guarded by
// a shared mutex — any number of threads may call Run() concurrently on one
// engine over one shared immutable Database.
#ifndef DISSODB_ENGINE_QUERY_ENGINE_H_
#define DISSODB_ENGINE_QUERY_ENGINE_H_

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/dissociation/propagation.h"
#include "src/exec/ranking.h"
#include "src/plan/plan.h"
#include "src/query/cq.h"
#include "src/storage/database.h"

namespace dissodb {

/// Engine-wide configuration; per-query strategy comes from
/// PropagationOptions (Section 4 optimization toggles).
struct EngineOptions {
  PropagationOptions propagation;
  /// Max cached compiled plans; 0 disables the cache.
  size_t plan_cache_capacity = 1024;
};

struct EngineStats {
  size_t queries = 0;
  size_t plan_cache_hits = 0;
  size_t plan_cache_misses = 0;
};

struct QueryResult {
  /// Answers sorted by descending propagation score.
  std::vector<RankedAnswer> answers;
  /// Number of minimal plans (1 iff the query is safe given the knowledge).
  size_t num_minimal_plans = 0;
  /// Plan-DAG nodes actually evaluated (shows Opt. 2 sharing).
  size_t nodes_evaluated = 0;
  /// Whether the compiled plan came from the engine's cache.
  bool from_plan_cache = false;
};

class QueryEngine {
 public:
  explicit QueryEngine(std::shared_ptr<const Database> db,
                       EngineOptions opts = {});

  /// Non-owning engine over a caller-kept database (examples, benches,
  /// tests). The database must outlive the engine.
  static QueryEngine Borrow(const Database& db, EngineOptions opts = {});

  const Database& db() const { return *db_; }
  const EngineOptions& options() const { return opts_; }

  /// Parses and runs a datalog query. `overrides` rebinds atoms to filtered
  /// tables (per-query selections); pointers must stay alive for the call.
  Result<QueryResult> Run(
      std::string_view query_text,
      const std::unordered_map<int, const Table*>& overrides = {});

  /// Runs an already-parsed query.
  Result<QueryResult> Run(
      const ConjunctiveQuery& q,
      const std::unordered_map<int, const Table*>& overrides = {});

  /// Boolean-query convenience: the propagation score as a single number
  /// (0 when no satisfying assignment exists).
  Result<double> RunBoolean(std::string_view query_text);

  EngineStats stats() const;

 private:
  /// A compiled query: either the single min-plan (Opt. 1) or the list of
  /// minimal plans evaluated separately.
  struct CompiledQuery {
    PlanPtr single_plan;          // non-null iff opt1_single_plan
    std::vector<PlanPtr> plans;   // used when opt1 is off
    size_t num_minimal_plans = 0;
  };

  Result<std::shared_ptr<const CompiledQuery>> GetOrCompile(
      const ConjunctiveQuery& q, bool* cache_hit);

  std::shared_ptr<const Database> db_;
  EngineOptions opts_;

  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const CompiledQuery>>
      plan_cache_;
  std::vector<std::string> cache_order_;  // insertion order (FIFO eviction)
  std::atomic<size_t> queries_{0};
  std::atomic<size_t> cache_hits_{0};
  std::atomic<size_t> cache_misses_{0};
};

}  // namespace dissodb

#endif  // DISSODB_ENGINE_QUERY_ENGINE_H_
