// QueryEngine — the reusable engine facade over one immutable database.
//
// Owns the full pipeline: parse -> structural analysis / schema knowledge ->
// dissociation plan choice (Algorithms 1-3) -> optional semi-join reduction
// -> vectorized plan evaluation -> ranked answers. Compiled plans are cached
// by query signature + optimization flags, so repeated queries skip
// enumeration and plan construction entirely.
//
// Serving layer (src/serve/): the engine also owns a bounded ResultCache of
// evaluated subplan relations keyed by (plan fingerprint, database version)
// — the paper's Opt. 2 subplan sharing lifted from one plan DAG to the
// whole workload — and a Scheduler thread pool. RunBatch evaluates many
// queries at once: identical subplans across the batch are computed once
// through the cache, the residual work is fanned out on the pool, and the
// morsel-parallel operators split large joins/groupings across cores.
// Rankings are bit-identical to sequential Run calls.
//
// Thread safety: the engine never mutates the database (string constants
// parse through the read-only pool path), and both caches are internally
// synchronized — any number of threads may call Run()/RunBatch()
// concurrently on one engine over one shared immutable Database.
#ifndef DISSODB_ENGINE_QUERY_ENGINE_H_
#define DISSODB_ENGINE_QUERY_ENGINE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/dissociation/propagation.h"
#include "src/exec/operators.h"
#include "src/exec/ranking.h"
#include "src/plan/plan.h"
#include "src/query/cq.h"
#include "src/serve/result_cache.h"
#include "src/serve/scheduler.h"
#include "src/storage/database.h"

namespace dissodb {

/// Engine-wide configuration; per-query strategy comes from
/// PropagationOptions (Section 4 optimization toggles).
struct EngineOptions {
  PropagationOptions propagation;
  /// Max cached compiled plans; 0 disables the cache.
  size_t plan_cache_capacity = 1024;
  /// Max cached evaluated subplan relations shared across the queries of
  /// RunBatch workloads; 0 disables the result cache. Plain Run never
  /// consults it, so single-query timings measure evaluation, not caching.
  /// Caveat: opt3_semijoin_reduction rebinds every atom to a per-query
  /// reduced table, which makes every subplan override-tainted — sound,
  /// but no subplan is ever shared, so batch workloads that want cache
  /// sharing should leave opt3 off (the default).
  size_t result_cache_capacity = 256;
  /// Worker threads for RunBatch / morsel-parallel operators;
  /// 0 = hardware concurrency. The pool starts lazily on first RunBatch.
  int num_threads = 0;
};

struct EngineStats {
  size_t queries = 0;
  size_t batch_queries = 0;  ///< subset of `queries` served through RunBatch
  size_t plan_cache_hits = 0;
  size_t plan_cache_misses = 0;
  size_t result_cache_hits = 0;
  size_t result_cache_misses = 0;  ///< actual computations (leaders)
  /// Requests that waited on a concurrent computation of the same subplan
  /// instead of duplicating it (in-flight dedup).
  size_t result_cache_in_flight_waits = 0;
  size_t result_cache_evictions = 0;
  size_t result_cache_entries = 0;
  size_t tasks_executed = 0;  ///< scheduler tasks (query tasks + morsels)
  /// Chunked-scan counters aggregated over every evaluated plan (zone-map
  /// pruning effectiveness, chunk-parallel scan usage).
  ChunkedScanStats scans;
};

struct QueryResult {
  /// Answers sorted by descending propagation score.
  std::vector<RankedAnswer> answers;
  /// Number of minimal plans (1 iff the query is safe given the knowledge).
  size_t num_minimal_plans = 0;
  /// Plan-DAG nodes actually evaluated (shows Opt. 2 sharing).
  size_t nodes_evaluated = 0;
  /// Plan nodes served from the shared result cache instead of evaluated.
  size_t result_cache_hits = 0;
  /// Whether the compiled plan came from the engine's cache.
  bool from_plan_cache = false;
};

class QueryEngine {
 public:
  explicit QueryEngine(std::shared_ptr<const Database> db,
                       EngineOptions opts = {});

  /// Non-owning engine over a caller-kept database (examples, benches,
  /// tests). The database must outlive the engine.
  static QueryEngine Borrow(const Database& db, EngineOptions opts = {});

  const Database& db() const { return *db_; }
  const EngineOptions& options() const { return opts_; }

  /// Parses and runs a datalog query. `overrides` rebinds atoms to filtered
  /// tables (per-query selections); pointers must stay alive for the call.
  Result<QueryResult> Run(
      std::string_view query_text,
      const std::unordered_map<int, const Table*>& overrides = {});

  /// Runs an already-parsed query.
  Result<QueryResult> Run(
      const ConjunctiveQuery& q,
      const std::unordered_map<int, const Table*>& overrides = {});

  /// Boolean-query convenience: the propagation score as a single number
  /// (0 when no satisfying assignment exists).
  Result<double> RunBoolean(std::string_view query_text);

  /// Batch serving path: evaluates all `queries`, deduplicating shared
  /// subplans through the result cache and scheduling the per-query work
  /// on the thread pool (morsel-parallel operators split the large joins
  /// and groupings further). Results align with `queries` by index and
  /// rankings are bit-identical to sequential Run calls. On any per-query
  /// failure the whole batch returns the first error (batches are
  /// homogeneous workloads; partial delivery is the caller's job if ever
  /// needed).
  Result<std::vector<QueryResult>> RunBatch(
      const std::vector<ConjunctiveQuery>& queries);

  /// Parses, then batch-evaluates.
  Result<std::vector<QueryResult>> RunBatch(
      const std::vector<std::string>& query_texts);

  EngineStats stats() const;

 private:
  /// A compiled query: either the single min-plan (Opt. 1) or the list of
  /// minimal plans evaluated separately.
  struct CompiledQuery {
    PlanPtr single_plan;          // non-null iff opt1_single_plan
    std::vector<PlanPtr> plans;   // used when opt1 is off
    size_t num_minimal_plans = 0;
  };

  Result<std::shared_ptr<const CompiledQuery>> GetOrCompile(
      const ConjunctiveQuery& q, bool* cache_hit);

  /// Shared by Run and the batch tasks; `scheduler` enables the
  /// morsel-parallel operator paths (nullptr = sequential operators) and
  /// `use_result_cache` engages the workload-shared subplan cache. Plain
  /// Run passes neither, so single-query evaluation keeps its exact
  /// pre-serving semantics (strategy benchmarks and node-count tests
  /// measure evaluation, not caching).
  Result<QueryResult> RunInternal(
      const ConjunctiveQuery& q,
      const std::unordered_map<int, const Table*>& overrides,
      Scheduler* scheduler, bool use_result_cache);

  /// Starts the thread pool on first use.
  Scheduler* EnsureScheduler();

  std::shared_ptr<const Database> db_;
  EngineOptions opts_;

  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const CompiledQuery>>
      plan_cache_;
  std::vector<std::string> cache_order_;  // insertion order (FIFO eviction)
  std::unique_ptr<ResultCache> result_cache_;
  std::unique_ptr<Scheduler> scheduler_;  // lazy; guarded by mu_
  mutable std::mutex scan_mu_;            // guards scan_stats_
  ChunkedScanStats scan_stats_;
  std::atomic<size_t> queries_{0};
  std::atomic<size_t> batch_queries_{0};
  std::atomic<size_t> cache_hits_{0};
  std::atomic<size_t> cache_misses_{0};
};

}  // namespace dissodb

#endif  // DISSODB_ENGINE_QUERY_ENGINE_H_
