// Runtime SIMD dispatch for the operator hot paths.
//
// The vectorized kernels (AVX2 batch hashing, selection-vector gathers,
// fused probability accumulation) live next to their scalar reference
// implementations and are selected per call through UseAvx2(). Three
// independent gates compose:
//
//   - Compile time: the DISSODB_SIMD CMake option (default ON). When OFF,
//     DISSODB_DISABLE_SIMD_BUILD is defined, no intrinsics are compiled,
//     and UseAvx2() is constant-false — the scalar-fallback CI job builds
//     this way (plus UBSan) so the reference path stays a complete build.
//   - Startup: the DISSODB_DISABLE_SIMD environment variable forces the
//     scalar path in a SIMD-capable binary (differential oracle runs),
//     and the CPUID check keeps non-AVX2 machines on the scalar path.
//   - Test: SetSimdEnabledForTesting() flips dispatch mid-process so
//     differential tests can run both paths in one binary.
//
// Contract: hashing and gathers are bit-exact between paths (integer
// lanes); the fused probability accumulation is allowed a documented ULP
// tolerance (see ProjectIndependent) but is deterministic run-to-run —
// lane assignment and reduction order are fixed, never data- or
// thread-dependent.
#ifndef DISSODB_COMMON_SIMD_H_
#define DISSODB_COMMON_SIMD_H_

#if !defined(DISSODB_DISABLE_SIMD_BUILD) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define DISSODB_SIMD_COMPILED 1
#else
#define DISSODB_SIMD_COMPILED 0
#endif

namespace dissodb {
namespace simd {

/// True iff the AVX2 kernels are compiled in, the CPU supports them, and
/// neither DISSODB_DISABLE_SIMD nor a test override forces scalar.
/// A relaxed atomic load — cheap enough to consult once per span/batch
/// (never per element).
bool UseAvx2();

/// Forces dispatch for differential tests: `false` pins the scalar
/// reference path; `true` restores the startup decision (which may still
/// be scalar on non-AVX2 hardware or under DISSODB_DISABLE_SIMD).
void SetSimdEnabledForTesting(bool enabled);

/// The startup decision itself (compiled + CPU + env), independent of any
/// test override. Tests use this to know whether a SIMD-vs-scalar
/// comparison is actually exercising two different paths.
bool Avx2Available();

/// Hardware-gather (vpgatherqq) dispatch for selection-vector gathers.
/// Off by default even with AVX2: on Skylake-derived servers the Downfall
/// (GDS) microcode mitigation makes hardware gathers several times slower
/// than a prefetched scalar loop, so the fast default is scalar and the
/// vector kernel is opt-in via DISSODB_SIMD_GATHER=1 for unaffected CPUs.
/// Requires UseAvx2() — the AVX2 gates above still apply.
bool UseHardwareGather();

/// Forces the hardware-gather decision for differential tests (the kernel
/// must stay correct even where it is not the default): `true`/`false`
/// overrides, and tests restore the startup decision by re-running with
/// the opposite flag around the scalar capture.
void SetHardwareGatherForTesting(bool enabled);

}  // namespace simd
}  // namespace dissodb

#endif  // DISSODB_COMMON_SIMD_H_
