// Deterministic pseudo-random number generation (xoshiro256**).
//
// All generators in the project are seeded explicitly so every experiment,
// test and example is reproducible bit-for-bit.
#ifndef DISSODB_COMMON_RNG_H_
#define DISSODB_COMMON_RNG_H_

#include <cstdint>

namespace dissodb {

/// \brief xoshiro256** PRNG. Small, fast, and deterministic across platforms
/// (unlike std::mt19937 distributions, whose output is not pinned by the
/// standard when filtered through std::uniform_*_distribution).
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound) (bound > 0); unbiased via rejection.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Bernoulli draw with success probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t s_[4];
};

}  // namespace dissodb

#endif  // DISSODB_COMMON_RNG_H_
