// Hash combiners used by join keys, plan canonicalization and memo tables.
#ifndef DISSODB_COMMON_HASH_H_
#define DISSODB_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace dissodb {

/// Mixes `v` into the running hash `seed` (boost::hash_combine style, 64-bit).
inline void HashCombine(size_t* seed, size_t v) {
  *seed ^= v + 0x9e3779b97f4a7c15ULL + (*seed << 6) + (*seed >> 2);
}

/// 64-bit finalizer (splitmix64); good avalanche for integer keys.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Hashes a contiguous range of integer-like values.
template <typename It>
size_t HashRange(It begin, It end) {
  size_t seed = 0x51ed270b;
  for (It it = begin; it != end; ++it) {
    HashCombine(&seed, static_cast<size_t>(Mix64(static_cast<uint64_t>(*it))));
  }
  return seed;
}

template <typename T>
struct VectorHash {
  size_t operator()(const std::vector<T>& v) const {
    return HashRange(v.begin(), v.end());
  }
};

}  // namespace dissodb

#endif  // DISSODB_COMMON_HASH_H_
