#include "src/common/simd.h"

#include <atomic>
#include <cstdlib>

namespace dissodb {
namespace simd {

namespace {

bool DetectAvx2() {
#if DISSODB_SIMD_COMPILED
  if (std::getenv("DISSODB_DISABLE_SIMD") != nullptr) return false;
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

/// Startup decision, computed once; the test override only narrows it.
bool StartupAvx2() {
  static const bool available = DetectAvx2();
  return available;
}

std::atomic<bool>& TestOverrideOff() {
  static std::atomic<bool> off{false};
  return off;
}

}  // namespace

namespace {

std::atomic<int>& GatherOverride() {
  static std::atomic<int> v{-1};  // -1 none, 0 forced off, 1 forced on
  return v;
}

}  // namespace

bool Avx2Available() { return StartupAvx2(); }

bool UseHardwareGather() {
  if (!UseAvx2()) return false;
  const int ov = GatherOverride().load(std::memory_order_relaxed);
  if (ov >= 0) return ov != 0;
  static const bool opt_in = std::getenv("DISSODB_SIMD_GATHER") != nullptr;
  return opt_in;
}

void SetHardwareGatherForTesting(bool enabled) {
  GatherOverride().store(enabled ? 1 : 0, std::memory_order_relaxed);
}

bool UseAvx2() {
  return StartupAvx2() && !TestOverrideOff().load(std::memory_order_relaxed);
}

void SetSimdEnabledForTesting(bool enabled) {
  TestOverrideOff().store(!enabled, std::memory_order_relaxed);
}

}  // namespace simd
}  // namespace dissodb
