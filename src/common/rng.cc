#include "src/common/rng.h"

#include <cassert>

#include "src/common/hash.h"

namespace dissodb {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  // Seed the state with splitmix64 as recommended by the xoshiro authors.
  uint64_t x = seed;
  for (auto& s : s_) {
    x += 0x9e3779b97f4a7c15ULL;
    s = Mix64(x);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0,1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

}  // namespace dissodb
