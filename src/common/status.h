// Status / Result error-handling primitives (RocksDB/Arrow idiom: no
// exceptions cross public API boundaries).
#ifndef DISSODB_COMMON_STATUS_H_
#define DISSODB_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace dissodb {

/// \brief Outcome of an operation that can fail without a payload.
///
/// A default-constructed Status is OK. Failed statuses carry a code and a
/// human-readable message.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kAlreadyExists,
    kOutOfRange,
    kUnimplemented,
    kInternal,
  };

  Status() : code_(Code::kOk) {}
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(Code::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + msg_;
  }

 private:
  static std::string CodeName(Code c) {
    switch (c) {
      case Code::kOk: return "OK";
      case Code::kInvalidArgument: return "InvalidArgument";
      case Code::kNotFound: return "NotFound";
      case Code::kAlreadyExists: return "AlreadyExists";
      case Code::kOutOfRange: return "OutOfRange";
      case Code::kUnimplemented: return "Unimplemented";
      case Code::kInternal: return "Internal";
    }
    return "Unknown";
  }

  Code code_;
  std::string msg_;
};

/// \brief Either a value of type T or an error Status.
///
/// Minimal StatusOr. `ok()` must be checked before dereferencing; violating
/// this is an assertion failure in debug builds and undefined in release.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : v_(std::move(status)) {    // NOLINT(runtime/explicit)
    assert(!std::get<Status>(v_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(v_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(v_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> v_;
};

#define DISSODB_RETURN_NOT_OK(expr)            \
  do {                                         \
    ::dissodb::Status _st = (expr);            \
    if (!_st.ok()) return _st;                 \
  } while (0)

}  // namespace dissodb

#endif  // DISSODB_COMMON_STATUS_H_
